(** Bounded model checker for {!Prelude.Vatomic} programs.

    Only meaningful in the [analysis] dune profile, where Vatomic
    routes every shared-memory operation through {!Prelude.Vhook}; the
    checker installs a hook that suspends the acting fiber before each
    operation and so controls the interleaving completely. In the
    default profile (check {!Prelude.Vatomic.instrumented}) scenarios
    run straight through with real atomics and the checker explores
    exactly one schedule — callers should refuse to draw conclusions
    from that.

    All entry points are deterministic: a given scenario, bound and
    seed always explore the same schedules, and any violation carries a
    schedule string that {!replay} re-executes decision for
    decision. *)

type scenario = {
  name : string;
  nprocs : int;  (** number of processes; at most 10 (schedule digits) *)
  instantiate : unit -> (int -> unit) * (unit -> unit);
      (** Fresh shared state per run. Returns [(body, finish)]: [body p]
          is process [p]'s program; [finish ()] checks final-state
          invariants (raise to signal violation) after all processes
          returned, with instrumentation disabled. *)
}

type violation_kind =
  | Assertion  (** a process or the final check raised *)
  | Race  (** unordered conflicting plain accesses (happens-before) *)
  | Deadlock  (** every unfinished process is blocked in a futile spin *)
  | Step_budget  (** a run exceeded [max_steps] — likely livelock *)
  | Replay_divergence  (** a pinned schedule no longer matches the code *)

val pp_violation_kind : Format.formatter -> violation_kind -> unit

type violation = {
  vkind : violation_kind;
  message : string;
  schedule : string;  (** digit string of process ids, one per decision *)
}

type stats = {
  mutable executions : int;  (** runs that reached a final state *)
  mutable cut_sleep : int;  (** runs pruned by sleep sets *)
  mutable cut_bound : int;  (** runs cut by the preemption bound *)
  mutable transitions : int;
  mutable max_depth : int;
  mutable capped : bool;  (** stopped at the execution budget *)
}

val pp_stats : Format.formatter -> stats -> unit

type outcome = { stats : stats; violation : violation option }

val explore :
  ?preemption_bound:int ->
  ?sleep_sets:bool ->
  ?max_steps:int ->
  ?max_execs:int ->
  scenario ->
  outcome
(** Exhaustive depth-first exploration, stopping at the first
    violation. [max_execs] (default 1e6) caps the number of runs;
    hitting it sets [stats.capped].

    Two sound configurations, selected by [preemption_bound]:
    - omitted (default): unbounded exploration with sleep-set pruning —
      exhaustive up to Mazurkiewicz-trace equivalence (commuting
      adjacent independent operations);
    - [~preemption_bound:k]: every schedule with at most [k]
      preemptions, sleep sets off — iterative context bounding.

    The two prunings are each sound alone but not combined (a sleeping
    process's representative schedule may itself have been bound-cut),
    so [sleep_sets] defaults to [preemption_bound = None]; overriding
    both on together is a heuristic search, not exhaustive. *)

val random_walk : ?seed:int -> ?walks:int -> ?max_steps:int -> scenario -> outcome
(** [walks] (default 200) uniformly random schedules from the seeded
    generator; same seed, same schedules. Complements [explore] beyond
    the preemption bound. *)

val replay : ?max_steps:int -> scenario -> string -> violation option
(** Re-execute one schedule. [None] if the run reaches a passing final
    state; otherwise the violation it hits — including
    [Replay_divergence] if the schedule no longer matches the
    scenario's behaviour (e.g. after a code change). *)
