(** Rule compilation: the evaluation hot path.

    {!compile} turns an {!Ast.rule} into a fixed instruction sequence:

    - constants are interned once, at compile time — no [Symbol.intern]
      during matching;
    - variables become integer slots in a flat reusable [int array]
      environment (no assoc lists). Boundness is static: with a fixed
      literal order and depth-first enumeration, each slot is written by
      the [Bind] of its first occurrence before any read, so argument
      positions specialize to bind/check-slot/check-const ops and no
      unbinding is needed on backtrack;
    - body literals are reordered by a greedy static selectivity
      heuristic — negations and comparisons fire as soon as their
      variables are bound (they only filter), and among the remaining
      positive atoms the next generator is the one with the fewest
      unbound variables, ties broken by relation cardinality at plan
      time then by original position. The semi-naive delta literal, when
      present, is forced first so every subsequent literal probes with
      delta-bound values;
    - index probes go through {!Matcher.view.iter_matching} — no list is
      allocated per probe, and the probed column's check is elided
      (the index bucket already guarantees it).

    Reordering is semantics-preserving: positive conjunction is
    commutative, and filters are only moved to points where all their
    variables are bound (range restriction guarantees such a point
    exists). The head tuple handed to [on_derived] is a scratch buffer
    valid only for the duration of the callback — consumers must copy to
    retain, which {!Relation.add} already does.

    Plans carry their scratch state, so a single plan (and hence a
    single {!exec}) must not be executed reentrantly from inside its own
    callbacks; {!run} enforces this with a running flag and raises on
    violation. Callbacks must also not mutate relations the rule is
    probing — use {!exec_rule_deferred} when they do. *)

type t
(** A compiled plan for one rule, with the delta position (if any) fixed
    at compile time. *)

val compile : ?delta:int -> symbols:Symbol.t -> card:(string -> int) -> Ast.rule -> t
(** [compile ?delta ~symbols ~card rule] plans [rule]. [card] supplies
    per-predicate cardinalities for the join-order heuristic (cost only,
    never semantics). [delta] is the body position of the semi-naive
    literal; it must name a positive atom.
    @raise Invalid_argument on aggregate body terms, a non-positive
    delta literal, or a rule that is not range-restricted. *)

val run :
  ?delta:Relation.t ->
  ?shard:int * int ->
  ?late_view:Matcher.view ->
  ?witness:int * (Relation.tuple -> unit) ->
  view:Matcher.view ->
  work:int ref ->
  on_derived:(Relation.tuple -> unit) ->
  t ->
  unit
(** Enumerate all derivations of the plan's head against [view].
    [delta] is required iff the plan was compiled with a delta position;
    that literal then ranges over [delta] instead of the view.
    [shard = (s, k)] restricts the delta literal to the tuples
    {!Relation.shard_of_tuple} (key column 0) assigns to shard [s] of
    [k]: running the same plan for every [s] partitions the delta
    exactly, which is how a sharded maintenance task probes only its
    own slice while reading frozen full views of everything else.
    [late_view], meaningful only on a delta plan, switches body literals
    whose {e original} position follows the delta position (positive
    probes and negation checks alike) to read [late_view] while earlier
    literals keep reading [view] — the split the telescoped signed-delta
    identity Δ(R₁⋈…⋈Rₖ) = Σᵢ new₁…newᵢ₋₁·Δᵢ·oldᵢ₊₁…oldₖ needs, exact for
    batches touching several body predicates (including self-joins).
    Late flags are baked at compile time from the delta position, so the
    same memoized per-delta-position plans serve single-view and
    split-view execution. Defaults to [view].
    [witness = (i, f)] calls [f] immediately before each [on_derived]
    emission with the tuple the body literal at {e original} position
    [i] matched on that derivation — the supporter witness the counting
    engine's well-founded support index stamps levels from. Positions
    survive the selectivity reorder (each step remembers its syntactic
    position), and the delta literal participates like any other. The
    witness tuple is the store's own array: valid only inside [f], copy
    to retain. If no body literal has position [i], [f] sees whatever
    was last stashed (initially [[||]]) — callers pass positions of
    positive body atoms only.
    [work] counts tuples and filter checks examined, as the interpreter
    does. [on_derived] receives a scratch tuple — copy to retain;
    duplicates are possible, callers dedupe via {!Relation.add}.
    [on_derived] must not mutate any relation reachable from [view],
    [late_view] or [delta] (the probes walk live index buckets):
    mutating consumers go through {!exec_rule_deferred}.
    @raise Invalid_argument on reentrant execution of the same plan. *)

(** {2 Engine dispatch}

    {!Eval}, {!Incremental} and {!Aggregate} evaluate rules through an
    {!exec}, which either runs compiled plans (memoized per delta
    position, so fixpoint rounds reuse them) or delegates to the
    interpretive {!Matcher.eval_rule} — the reference oracle for
    differential testing. *)

type engine = Compiled | Interpreted

val default_engine : engine
(** {!Compiled}. *)

type exec

val executor : engine:engine -> symbols:Symbol.t -> card:(string -> int) -> Ast.rule -> exec
(** Plans are compiled lazily, on first use of each delta position, and
    cached for the lifetime of the [exec]. *)

val exec_rule :
  ?delta:int * Relation.t ->
  ?shard:int * int ->
  ?late_view:Matcher.view ->
  ?witness:int * (Relation.tuple -> unit) ->
  view:Matcher.view ->
  work:int ref ->
  on_derived:(Relation.tuple -> unit) ->
  exec ->
  unit
(** Same contract as {!Matcher.eval_rule}; [delta = (i, d)] makes body
    literal [i] range over [d], and [shard] restricts it to one hash
    partition (see {!run}; on the interpretive engine the partition is
    materialized, oracle-only cost). [late_view] and [witness] are the
    split-view and witness-extraction modes of {!run}; the interpretive
    oracle supports neither.
    Like {!run}, [on_derived] must not mutate relations the rule is
    reading.
    @raise Invalid_argument for [late_view] or [witness] on the
    interpretive engine. *)

val prepare : ?delta:int -> exec -> unit
(** Force compilation of the plan a later {!exec_rule} call with the
    same [delta] position would build lazily. Compilation interns the
    rule's constants into the shared symbol table; a parallel driver
    calls this for every plan it may need {e before} spawning worker
    domains, so task-time execution only reads the memoized store.
    No-op on the interpretive engine and on already-compiled plans. *)

(** {2 Static effect extraction}

    {!Analyze} derives per-rule read sets from the compiled instruction
    sequence — the artifact that executes — so ownership verification
    checks what the plan actually probes, not what the AST suggests it
    should. *)

val reads : t -> string list
(** Distinct predicates probed by the plan's [Match] (positive) and
    [Reject] (negation) steps, sorted. The semi-naive delta step is not
    included: its relation is caller-supplied, and the corresponding
    predicate appears as an ordinary read in the base plan. *)

val body_reads : Ast.rule -> string list
(** Distinct predicates of the rule body's positive and negated atoms,
    sorted — the AST-level superset of {!reads}, used where no plan can
    be compiled (interpretive engine, aggregate rules). *)

val exec_reads : exec -> string list
(** Read set of an executor: the union of {!reads} over its compiled
    plans when the base plan exists, else {!body_reads} of its rule.
    Never compiles anything and never raises. *)

val exec_rule_deferred :
  ?delta:int * Relation.t ->
  ?shard:int * int ->
  ?late_view:Matcher.view ->
  view:Matcher.view ->
  work:int ref ->
  keep:(Relation.tuple -> bool) ->
  on_derived:(Relation.tuple -> unit) ->
  exec ->
  unit
(** {!exec_rule} for consumers whose [on_derived] mutates relations the
    rule may be probing (the head relation of a recursive rule, the
    incremental net-delta overlay). Enumeration runs first, against
    frozen state; head tuples satisfying the read-only pre-filter [keep]
    are copied into a buffer and handed to [on_derived] only after the
    enumeration — and every live bucket walk — has finished. [keep] is
    called on the scratch buffer and must not mutate anything; it exists
    so duplicate derivations are discarded without allocation.
    [on_derived] receives tuples it may retain, in derivation order, and
    must still dedupe (the same new tuple can be buffered twice within
    one call). *)
