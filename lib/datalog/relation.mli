(** Materialized relations: sets of interned tuples with lazy per-column
    hash indexes for join probing. *)

type tuple = int array

type t

val create : arity:int -> t

val arity : t -> int

val cardinality : t -> int

val mem : t -> tuple -> bool

val add : t -> tuple -> bool
(** [true] iff the tuple was new. Invalidates indexes incrementally. *)

val remove : t -> tuple -> bool
(** [true] iff the tuple was present. *)

val iter : (tuple -> unit) -> t -> unit
(** Iteration walks live hashtable state, so the relation must not be
    mutated while a walk is in progress (callers buffer derived updates
    and apply them afterwards — see {!Plan.exec_rule_deferred}). A
    best-effort version check raises [Invalid_argument] when a callback
    mutates the iterated relation, instead of silently skipping tuples
    when a resize relinks buckets mid-walk. The same contract applies to
    {!fold}, {!iter_matching} and {!fold_matching}. *)

val fold : ('acc -> tuple -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> tuple list

val copy : t -> t

val clear : t -> unit

val iter_matching : t -> col:int -> value:int -> (tuple -> unit) -> unit
(** Apply a function to every tuple whose [col]th component equals
    [value]; O(matches) via a lazily-built index kept consistent under
    [add]/[remove], with no per-probe allocation. The tuples handed out
    are the relation's own arrays: callers must not mutate them and must
    copy before retaining (as {!add} does). The callback must not mutate
    the probed relation (see {!iter}); raises [Invalid_argument] if it
    does. *)

val fold_matching : t -> col:int -> value:int -> ('acc -> tuple -> 'acc) -> 'acc -> 'acc
(** Fold variant of {!iter_matching}. *)

val prepare : ?cols:int list -> t -> unit
(** Eagerly finalize the per-column probe indexes ([cols], default all
    columns) before the relation is shared read-only across domains.
    Lazy builds are themselves safe to race — a probe that finds no
    index constructs one fully and publishes it atomically, so a
    sibling domain sees either nothing or a finished index — but eager
    preparation avoids sibling readers duplicating the build work.
    @raise Invalid_argument on an out-of-range column. *)

val find : t -> col:int -> value:int -> tuple list
(** Tuples whose [col]th component equals [value]. Compatibility wrapper
    over {!fold_matching}: allocates the result list; probe loops should
    use {!iter_matching}. *)

val choose_probe_col : t -> bound:(int -> bool) -> int option
(** Some column index on which a probe makes sense: the first column
    for which [bound] is true. *)

(** {2 Sharding}

    Hash partitioning for intra-component parallel maintenance: tuples
    are assigned to one of [k] shards by an FNV-1a mix of a single key
    column, a pure function of the tuple — identical on every domain
    and every run. *)

val shard_of_value : shards:int -> int -> int
(** [shard_of_value ~shards v] is the shard of key element [v], in
    [0 .. shards-1] ([0] when [shards <= 1]). *)

val shard_of_tuple : col:int -> shards:int -> tuple -> int
(** Shard of a tuple by its [col]th element (clamped to column 0 when
    out of range; nullary tuples map to shard 0). *)

type relation = t

module Sharded : sig
  (** A relation partitioned into [shards] sub-stores by
      {!shard_of_tuple} on column 0. Shard task [s] owns exactly
      [shard t s]; the coordinator merges shards in index order
      0..k-1, so iteration and merge order are canonical and
      run-to-run deterministic. *)

  type t

  val create : arity:int -> shards:int -> t
  (** @raise Invalid_argument when [shards < 1]. *)

  val shards : t -> int

  val shard : t -> int -> relation
  (** The [s]th sub-store (a plain relation usable as a semi-naive
      delta). @raise Invalid_argument on an out-of-range index. *)

  val owner : t -> tuple -> int
  (** The shard index {!add} would route this tuple to. *)

  val add : t -> tuple -> bool
  (** Route by key hash into the owning sub-store; [true] iff new. *)

  val mem : t -> tuple -> bool

  val cardinality : t -> int

  val iter : (tuple -> unit) -> t -> unit
  (** Canonical order: every tuple of shard 0, then shard 1, … *)

  val merge_into : t -> relation -> int
  (** Add every tuple into [dst] in canonical shard order; returns the
      number of tuples that were new to [dst]. *)
end
