module Core = struct
  (* Buckets are flat vectors with a head index rather than linked
     [Queue.t]s: the multicore executor drives [next_ready] a quarter
     million times per second, and a queue cell per activation (plus
     the [option] returned by every heap peek) is enough minor-heap
     traffic to force stop-the-world collections that stall every
     domain. The hot paths below ([min_queued_level_i], [next_ready],
     [next_ready_into]) are allocation-free. *)
  type t = {
    g : Dag.Graph.t;
    levels : int array;
    buckets : Intf.task Prelude.Vec.t array;
    heads : int array; (* per level: bucket slots before this are consumed *)
    queued_levels : int Prelude.Heap.t; (* lazy: may hold stale/duplicate levels *)
    running_at : int array;
    running_levels : int Prelude.Heap.t; (* lazy *)
    started : Prelude.Bitset.t;
    active : Prelude.Bitset.t;
    ops : Intf.ops;
  }

  let create ?ops ?levels g =
    let levels = match levels with Some l -> l | None -> Dag.Levels.compute g in
    let nlevels = Dag.Levels.count levels in
    let n = Dag.Graph.node_count g in
    {
      g;
      levels;
      buckets = Array.init (max nlevels 1) (fun _ -> Prelude.Vec.create ~dummy:0 ());
      heads = Array.make (max nlevels 1) 0;
      queued_levels = Prelude.Heap.create ~cmp:compare ~dummy:0 ();
      running_at = Array.make (max nlevels 1) 0;
      running_levels = Prelude.Heap.create ~cmp:compare ~dummy:0 ();
      started = Prelude.Bitset.create n;
      active = Prelude.Bitset.create n;
      ops = (match ops with Some o -> o | None -> Intf.zero_ops ());
    }

  let graph t = t.g
  let levels t = t.levels
  let ops t = t.ops
  let active t = t.active
  let is_started t u = Prelude.Bitset.mem t.started u

  let[@inline] bucket_is_empty t l =
    t.heads.(l) >= Prelude.Vec.length t.buckets.(l)

  let on_activated t u =
    let l = t.levels.(u) in
    t.ops.bucket_ops <- t.ops.bucket_ops + 1;
    Prelude.Bitset.add t.active u;
    if bucket_is_empty t l then Prelude.Heap.push t.queued_levels l;
    Prelude.Vec.push t.buckets.(l) u

  let on_started t u =
    let l = t.levels.(u) in
    t.ops.bucket_ops <- t.ops.bucket_ops + 1;
    Prelude.Bitset.add t.started u;
    if t.running_at.(l) = 0 then Prelude.Heap.push t.running_levels l;
    t.running_at.(l) <- t.running_at.(l) + 1

  let on_completed t u =
    let l = t.levels.(u) in
    t.ops.bucket_ops <- t.ops.bucket_ops + 1;
    Prelude.Bitset.remove t.active u;
    t.running_at.(l) <- t.running_at.(l) - 1;
    assert (t.running_at.(l) >= 0)

  (* Drop started tasks from the bucket front, then stale heap entries.
     Returns the level, or -1 when no active unstarted task is queued. *)
  let rec min_queued_level_i t =
    if Prelude.Heap.is_empty t.queued_levels then -1
    else begin
      let l = Prelude.Heap.top_exn t.queued_levels in
      let q = t.buckets.(l) in
      let len = Prelude.Vec.length q in
      let h = ref t.heads.(l) in
      while !h < len && Prelude.Bitset.mem t.started (Prelude.Vec.get q !h) do
        incr h;
        t.ops.bucket_ops <- t.ops.bucket_ops + 1
      done;
      t.heads.(l) <- !h;
      if !h >= len then begin
        ignore (Prelude.Heap.pop_exn t.queued_levels);
        t.ops.bucket_ops <- t.ops.bucket_ops + 1;
        min_queued_level_i t
      end
      else l
    end

  let rec min_running_level_i t =
    if Prelude.Heap.is_empty t.running_levels then -1
    else begin
      let l = Prelude.Heap.top_exn t.running_levels in
      if t.running_at.(l) > 0 then l
      else begin
        ignore (Prelude.Heap.pop_exn t.running_levels);
        t.ops.bucket_ops <- t.ops.bucket_ops + 1;
        min_running_level_i t
      end
    end

  let min_queued_level t =
    match min_queued_level_i t with -1 -> None | l -> Some l

  let min_running_level t =
    match min_running_level_i t with -1 -> None | l -> Some l

  (* front of bucket [l] is active and unstarted (cleaned above) *)
  let[@inline] pop_front t l =
    let h = t.heads.(l) in
    t.heads.(l) <- h + 1;
    Prelude.Vec.get t.buckets.(l) h

  let next_ready t =
    match min_queued_level_i t with
    | -1 -> None
    | la ->
      t.ops.bucket_ops <- t.ops.bucket_ops + 1;
      let lr = min_running_level_i t in
      if lr >= 0 && lr < la then None else Some (pop_front t la)

  (* Batched [next_ready]+[on_started]: each iteration performs exactly
     the sequential pair's checks and counter updates, so the released
     schedule (and the ops accounting) is identical — marking each task
     started before the next pop is what keeps a freshly emptied level
     gating the one above it mid-batch. *)
  let next_ready_into t into max =
    let k = ref 0 in
    let blocked = ref false in
    while (not !blocked) && !k < max do
      match min_queued_level_i t with
      | -1 -> blocked := true
      | la ->
        t.ops.bucket_ops <- t.ops.bucket_ops + 1;
        let lr = min_running_level_i t in
        if lr >= 0 && lr < la then blocked := true
        else begin
          let u = pop_front t la in
          on_started t u;
          Array.unsafe_set into !k u;
          incr k
        end
    done;
    !k

  let memory_words t =
    let n = Dag.Graph.node_count t.g in
    (* levels + per-level running counts and bucket heads + two bitsets
       of capacity n, each (n + 62) / 63 one-word limbs *)
    n
    + (2 * Array.length t.running_at)
    + (2 * ((n + 62) / 63))
end

let make ?ops ?levels g =
  let t = Core.create ?ops ?levels g in
  {
    Intf.name = "LevelBased";
    on_activated = Core.on_activated t;
    on_started = Core.on_started t;
    on_completed = Core.on_completed t;
    next_ready = (fun () -> Core.next_ready t);
    next_ready_into = Some (fun into max -> Core.next_ready_into t into max);
    ops = Core.ops t;
    memory_words = (fun () -> Core.memory_words t);
  }

let factory = { Intf.fname = "levelbased"; make = (fun g -> make g) }
