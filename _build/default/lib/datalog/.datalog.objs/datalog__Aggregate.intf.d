lib/datalog/aggregate.mli: Ast Matcher Relation Symbol
