type t = {
  graph : Dag.Graph.t;
  levels : int array;
  ilist : Dag.Interval_list.t;
}

let prepare graph =
  {
    graph;
    levels = Dag.Levels.compute graph;
    ilist = Dag.Interval_list.build (Dag.Graph.transpose graph);
  }

let graph t = t.graph

let levels t = t.levels

let interval_list t = t.ilist

(* Structural identity: updates against a stable program rebuild a
   fresh-but-identical condensation each time, so physical equality is
   too strict. O(V + E), negligible next to the avoided precompute. *)
let same_graph a b =
  a == b
  || Dag.Graph.node_count a = Dag.Graph.node_count b
     && Dag.Graph.edge_count a = Dag.Graph.edge_count b
     &&
     let ok = ref true in
     Dag.Graph.iter_edges a (fun ~src ~dst ~eid ->
         if Dag.Graph.edge_src b eid <> src || Dag.Graph.edge_dst b eid <> dst then
           ok := false);
     !ok

let guard t g =
  if not (same_graph t.graph g) then
    invalid_arg "Prepared: factory applied to a different graph than prepared"

let level_based_factory t =
  {
    Intf.fname = "levelbased";
    make =
      (fun g ->
        guard t g;
        Level_based.make ~levels:t.levels g);
  }

let lookahead_factory t ~k =
  {
    Intf.fname = Printf.sprintf "lbl:%d" k;
    make =
      (fun g ->
        guard t g;
        Lookahead.make ~levels:t.levels ~k g);
  }

let logicblox_factory ?scan_batch t =
  {
    Intf.fname = "logicblox";
    make =
      (fun g ->
        guard t g;
        Logicblox.make ?scan_batch ~ilist:t.ilist g);
  }

let hybrid_factory ?scan_batch t =
  {
    Intf.fname = "hybrid";
    make =
      (fun g ->
        guard t g;
        match scan_batch with
        | Some scan_batch ->
          Hybrid.make_batched ~levels:t.levels ~ilist:t.ilist ~scan_batch g
        | None -> Hybrid.make ~levels:t.levels ~ilist:t.ilist g);
  }

let signal_factory t =
  {
    Intf.fname = "signal";
    make =
      (fun g ->
        guard t g;
        Signal.make g);
  }
