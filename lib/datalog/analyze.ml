(* Static program analysis. Effect sets are extracted from compiled
   {!Plan} instruction sequences — the artifact that executes — so the
   ownership verifier checks what plans actually probe; the AST is only
   a fallback for rules no plan can represent (aggregate heads) and for
   the interpretive engine. Everything here is pure: compilation runs
   against a scratch symbol table and a zero cardinality oracle, never
   touching the database the program will maintain. *)

type strategy = Dred | Counting

type recursion = Nonrecursive | Linear | Nonlinear

type rule_info = {
  rule_index : int;
  head : string;
  reads : string list;
  plan_derived : bool;
  in_comp_pos : int;
}

type comp_info = {
  comp : int;
  stratum : int;
  members : string list;
  extensional : bool;
  rule_count : int;
  exit_rules : int;
  recursion : recursion;
  has_negation : bool;
  has_aggregate : bool;
  reads : string list;
  external_reads : string list;
  writes : string list;
  deltas : string list;
  shardable : bool;
  level_index : bool;
  verdict : strategy;
  reason : string;
}

type t = {
  anal : Stratify.t;
  engine : Plan.engine;
  rules : rule_info array;
  comps : comp_info array;
}

let strategy_name = function Dred -> "dred" | Counting -> "counting"

let recursion_name = function
  | Nonrecursive -> "nonrecursive"
  | Linear -> "linear"
  | Nonlinear -> "nonlinear"

let comp_of_anal (anal : Stratify.t) name =
  match Hashtbl.find_opt anal.Stratify.index_of name with
  | None -> None
  | Some i -> Some anal.Stratify.condensation.Dag.Scc.component.(i)

let comp_of_pred t name = comp_of_anal t.anal name

(* ---- ownership -------------------------------------------------- *)

let check_ownership (anal : Stratify.t) ~comp ~writes ~reads =
  let cond = anal.Stratify.condensation in
  if comp < 0 || comp >= cond.Dag.Scc.count then
    Error (Printf.sprintf "ownership: unknown component %d" comp)
  else begin
    (* components the task may read: [comp] and its condensation
       ancestors (dependencies, transitively) *)
    let allowed = Array.make cond.Dag.Scc.count false in
    let rec mark c =
      if not allowed.(c) then begin
        allowed.(c) <- true;
        Dag.Graph.iter_pred cond.Dag.Scc.dag c (fun ~src ~eid:_ -> mark src)
      end
    in
    mark comp;
    let name c =
      String.concat ","
        (List.map
           (fun i -> anal.Stratify.predicates.(i))
           (Array.to_list cond.Dag.Scc.members.(c)))
    in
    let err = ref None in
    let fail fmt =
      Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt
    in
    List.iter
      (fun w ->
        match comp_of_anal anal w with
        | None -> fail "ownership: write target %s is not a program predicate" w
        | Some c when c <> comp ->
          fail "ownership: task for component %d [%s] writes %s, owned by component %d [%s]"
            comp (name comp) w c (name c)
        | Some _ -> ())
      writes;
    List.iter
      (fun r ->
        match comp_of_anal anal r with
        | None -> fail "ownership: read %s is not a program predicate" r
        | Some c when not allowed.(c) ->
          fail "ownership: task for component %d [%s] reads %s (component %d [%s]), which is not upstream of it"
            comp (name comp) r c (name c)
        | Some _ -> ())
      reads;
    match !err with None -> Ok () | Some m -> Error m
  end

(* ---- per-rule effects ------------------------------------------- *)

let rule_effects ~engine (r : Ast.rule) =
  match engine with
  | Plan.Interpreted -> (Plan.body_reads r, false)
  | Plan.Compiled -> (
    (* scratch symbol table, zero cardinality oracle: the plan's join
       order is irrelevant here, only its Match/Reject steps are read *)
    try
      let plan = Plan.compile ~symbols:(Symbol.create ()) ~card:(fun _ -> 0) r in
      (Plan.reads plan, true)
    with Invalid_argument _ ->
      (* aggregate heads and other non-plannable shapes *)
      (Plan.body_reads r, false))

(* ---- analysis --------------------------------------------------- *)

let union_sorted ls = List.sort_uniq String.compare (List.concat ls)

let run ?(engine = Plan.default_engine) ~anal (program : Ast.program) =
  let cond = anal.Stratify.condensation in
  let ncomp = cond.Dag.Scc.count in
  (* predicate arity from any atom occurrence (for shardability) *)
  let arity_of = Hashtbl.create 32 in
  let note_atom (a : Ast.atom) =
    if not (Hashtbl.mem arity_of a.Ast.pred) then
      Hashtbl.replace arity_of a.Ast.pred (List.length a.Ast.args)
  in
  List.iter
    (fun (r : Ast.rule) ->
      note_atom r.Ast.head;
      List.iter
        (function Ast.Pos a | Ast.Neg a -> note_atom a | Ast.Cmp _ -> ())
        r.Ast.body)
    program;
  let comp_of name = comp_of_anal anal name in
  (* per-rule effect sets (non-fact rules only; facts read nothing) *)
  let rule_infos = ref [] in
  List.iteri
    (fun i (r : Ast.rule) ->
      if r.Ast.body <> [] then begin
        let reads, plan_derived = rule_effects ~engine r in
        let head_comp = comp_of r.Ast.head.Ast.pred in
        let in_comp_pos =
          List.fold_left
            (fun n lit ->
              match lit with
              | Ast.Pos a when comp_of a.Ast.pred = head_comp -> n + 1
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> n)
            0 r.Ast.body
        in
        rule_infos :=
          { rule_index = i; head = r.Ast.head.Ast.pred; reads; plan_derived; in_comp_pos }
          :: !rule_infos
      end)
    program;
  let rule_infos = Array.of_list (List.rev !rule_infos) in
  (* roll up per component *)
  let comps =
    Array.init ncomp (fun c ->
        let members =
          List.sort String.compare
            (List.map
               (fun i -> anal.Stratify.predicates.(i))
               (Array.to_list cond.Dag.Scc.members.(c)))
        in
        let extensional =
          List.for_all
            (fun p ->
              match Hashtbl.find_opt anal.Stratify.index_of p with
              | Some i -> anal.Stratify.edb.(i)
              | None -> true)
            members
        in
        let comp_rules = Stratify.rules_for_comp anal program c in
        let comp_rules = List.filter (fun (r : Ast.rule) -> r.Ast.body <> []) comp_rules in
        let infos =
          Array.to_list rule_infos
          |> List.filter (fun ri -> comp_of ri.head = Some c)
        in
        let rule_count = List.length infos in
        let exit_rules = List.length (List.filter (fun ri -> ri.in_comp_pos = 0) infos) in
        let recursive_rules = List.filter (fun ri -> ri.in_comp_pos > 0) infos in
        let recursion =
          if recursive_rules = [] then Nonrecursive
          else if List.for_all (fun ri -> ri.in_comp_pos = 1) recursive_rules then Linear
          else Nonlinear
        in
        let has_negation =
          List.exists
            (fun (r : Ast.rule) ->
              List.exists
                (function Ast.Neg _ -> true | Ast.Pos _ | Ast.Cmp _ -> false)
                r.Ast.body)
            comp_rules
        in
        let has_aggregate = List.exists Ast.rule_is_aggregate comp_rules in
        let reads = union_sorted (List.map (fun (ri : rule_info) -> ri.reads) infos) in
        let external_reads =
          List.filter (fun p -> not (List.mem p members)) reads
        in
        let writes =
          List.sort_uniq String.compare (List.map (fun ri -> ri.head) infos)
        in
        let deltas =
          (* positive body predicates drive delta plans (read side);
             member heads have their delta pairs written *)
          let pos =
            List.concat_map
              (fun (r : Ast.rule) ->
                List.filter_map
                  (function
                    | Ast.Pos a -> Some a.Ast.pred
                    | Ast.Neg _ | Ast.Cmp _ -> None)
                  r.Ast.body)
              comp_rules
          in
          union_sorted [ pos; writes ]
        in
        let shardable =
          List.for_all
            (fun p ->
              match Hashtbl.find_opt arity_of p with
              | Some a -> a >= 1
              | None -> false)
            members
        in
        (* the well-founded support index (per-tuple [level]/[low])
           attributes derivations through the single in-component atom
           of a linear rule — exactly the shapes below qualify *)
        let level_index =
          (not extensional) && rule_count > 0
          && engine = Plan.Compiled
          && (not has_aggregate) && (not has_negation)
          && recursion = Linear
        in
        let verdict, reason =
          if extensional || rule_count = 0 then
            (Counting, "extensional (facts only): nothing to rederive either way")
          else if engine = Plan.Interpreted then
            (Dred, "interpretive engine: counting maintenance requires compiled plans")
          else if has_aggregate then
            (Dred, "aggregates maintain by recompute-and-diff, which counting cannot amortize")
          else if has_negation then
            (Dred, "negation flips delta signs from lower strata; DRed's rederive handles it uniformly")
          else
            match recursion with
            | Nonrecursive ->
              (Counting, "nonrecursive: derivation counts make deletions exact, no overdeletion phase")
            | Linear when 2 * exit_rules >= rule_count ->
              ( Counting,
                Printf.sprintf
                  "linear recursion with strong exit support (%d/%d exit rules): the level index proves most suspects O(1)"
                  exit_rules rule_count )
            | Linear ->
              ( Dred,
                Printf.sprintf
                  "linear recursion but weak exit support (%d/%d exit rules): backward search would dominate despite the level index"
                  exit_rules rule_count )
            | Nonlinear ->
              (Dred, "nonlinear recursion: rederivation via counting suspects degenerates to DRed's cost")
        in
        let stratum = anal.Stratify.stratum_of_comp.(c) in
        {
          comp = c;
          stratum;
          members;
          extensional;
          rule_count;
          exit_rules;
          recursion;
          has_negation;
          has_aggregate;
          reads;
          external_reads;
          writes;
          deltas;
          shardable;
          level_index;
          verdict;
          reason;
        })
  in
  { anal; engine; rules = rule_infos; comps }

let program ?engine (p : Ast.program) = run ?engine ~anal:(Stratify.analyze p) p

let verify t =
  Array.fold_left
    (fun acc ci ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if ci.extensional then Ok ()
        else check_ownership t.anal ~comp:ci.comp ~writes:ci.writes ~reads:ci.reads)
    (Ok ()) t.comps

(* ---- reports ---------------------------------------------------- *)

let pp_set ppf = function
  | [] -> Format.pp_print_string ppf "{}"
  | l -> Format.fprintf ppf "{%s}" (String.concat " " l)

let pp_report ppf t =
  let anal = t.anal in
  Format.fprintf ppf "predicates: %d  components: %d  strata: %d  engine: %s@."
    (Array.length anal.Stratify.predicates)
    anal.Stratify.condensation.Dag.Scc.count anal.Stratify.stratum_count
    (match t.engine with Plan.Compiled -> "compiled" | Plan.Interpreted -> "interpreted");
  Array.iter
    (fun c ->
      let ci = t.comps.(c) in
      if ci.extensional then
        Format.fprintf ppf "stratum %d  component %d  %a: extensional@." ci.stratum
          ci.comp pp_set ci.members
      else begin
        Format.fprintf ppf
          "stratum %d  component %d  %a: %s, %d rule%s (%d exit)%s%s%s@."
          ci.stratum ci.comp pp_set ci.members (recursion_name ci.recursion)
          ci.rule_count
          (if ci.rule_count = 1 then "" else "s")
          ci.exit_rules
          (if ci.has_negation then ", negation" else "")
          (if ci.has_aggregate then ", aggregates" else "")
          ((if ci.shardable then ", shardable" else ", not shardable")
          ^ if ci.level_index then ", level index" else "");
        Format.fprintf ppf "  reads %a  writes %a  deltas %a@." pp_set ci.reads
          pp_set ci.writes pp_set ci.deltas;
        Format.fprintf ppf "  advisor: %s — %s@." (strategy_name ci.verdict) ci.reason
      end)
    (Stratify.scc_order anal);
  Array.iter
    (fun ri ->
      Format.fprintf ppf "rule %d: %s <- %a%s@." ri.rule_index ri.head pp_set ri.reads
        (if ri.plan_derived then "" else " [ast]"))
    t.rules;
  match verify t with
  | Ok () ->
    Format.fprintf ppf "ownership: verified (every component writes itself, reads only upstream)@."
  | Error m -> Format.fprintf ppf "ownership: VIOLATION — %s@." m

(* Strict JSON, by hand: lib/datalog does not depend on a JSON printer,
   and the emitted object must round-trip through [Obs.Json.parse]
   (pinned by the CLI tests). *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_report t =
  let b = Buffer.create 1024 in
  let str s = Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape s)) in
  let strs l =
    Buffer.add_char b '[';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char b ',';
        str s)
      l;
    Buffer.add_char b ']'
  in
  let anal = t.anal in
  Buffer.add_string b
    (Printf.sprintf "{\"predicates\":%d,\"components\":%d,\"strata\":%d,\"engine\":\"%s\","
       (Array.length anal.Stratify.predicates)
       anal.Stratify.condensation.Dag.Scc.count anal.Stratify.stratum_count
       (match t.engine with Plan.Compiled -> "compiled" | Plan.Interpreted -> "interpreted"));
  Buffer.add_string b "\"rules\":[";
  Array.iteri
    (fun i ri ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"index\":%d,\"head\":\"%s\",\"plan\":%b,\"reads\":"
           ri.rule_index (json_escape ri.head) ri.plan_derived);
      strs ri.reads;
      Buffer.add_char b '}')
    t.rules;
  Buffer.add_string b "],\"comps\":[";
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      let ci = t.comps.(c) in
      Buffer.add_string b
        (Printf.sprintf
           "{\"comp\":%d,\"stratum\":%d,\"extensional\":%b,\"recursion\":\"%s\",\"rules\":%d,\"exit_rules\":%d,\"negation\":%b,\"aggregate\":%b,\"shardable\":%b,\"level_index\":%b,\"advice\":\"%s\",\"reason\":\"%s\",\"members\":"
           ci.comp ci.stratum ci.extensional (recursion_name ci.recursion)
           ci.rule_count ci.exit_rules ci.has_negation ci.has_aggregate
           ci.shardable ci.level_index (strategy_name ci.verdict)
           (json_escape ci.reason));
      strs ci.members;
      Buffer.add_string b ",\"reads\":";
      strs ci.reads;
      Buffer.add_string b ",\"external_reads\":";
      strs ci.external_reads;
      Buffer.add_string b ",\"writes\":";
      strs ci.writes;
      Buffer.add_string b ",\"deltas\":";
      strs ci.deltas;
      Buffer.add_char b '}')
    (Stratify.scc_order anal);
  Buffer.add_string b "],\"ownership\":";
  (match verify t with
  | Ok () -> str "verified"
  | Error m -> str m);
  Buffer.add_char b '}';
  Buffer.contents b
