(** Schedule-log validation against the model of Section II.

    Checks, for a log produced with [record_log = true]:
    + exactly the active set [W] was executed, each task once;
    + no task started before every one of its activated ancestors
      (ancestors in the full DAG [G] that lie in [W]) had finished;
    + starts and finishes are consistent ([start <= finish], and a
      task's finish covers at least its span).

    Ancestor checks BFS the full DAG, so reserve this for test-sized
    traces. *)

val check :
  ?check_spans:bool -> Workload.Trace.t -> Engine.log_entry array -> (unit, string) result
(** [check_spans] (default true) verifies each task ran at least its
    span; disable when the log's timestamps are in a different unit
    than the trace's work (e.g. real seconds from the multicore
    executor). *)

val check_run : Workload.Trace.t -> Engine.run -> (unit, string) result
(** Convenience: fails if the run carried no log. *)
