(** Reachability queries (BFS-based reference implementations).

    These are the ground truth that the interval-list encoding and the
    schedulers' readiness logic are tested against, and they implement
    Figure 1's descendant statistics. *)

val descendants : Graph.t -> int -> Prelude.Bitset.t
(** All nodes reachable from [u], excluding [u] itself. *)

val ancestors : Graph.t -> int -> Prelude.Bitset.t
(** All nodes that reach [u], excluding [u] itself. *)

val descendants_of_set : Graph.t -> int array -> Prelude.Bitset.t
(** Union of descendants of the given nodes (the seeds excluded unless
    reachable from another seed). *)

val is_ancestor : Graph.t -> anc:int -> desc:int -> bool
(** BFS from [anc]; [false] when [anc = desc]. *)

val count_descendants : Graph.t -> int -> int

val reachable_within : Graph.t -> seeds:int array -> max_level:int ->
  levels:int array -> Prelude.Bitset.t
(** Descendants of [seeds] restricted to nodes of level <= [max_level];
    the traversal never expands beyond that level. This is the bounded
    BFS used by the LookAhead scheduler (Section VI-B). *)
