(* A retail-flavoured workload in the spirit of the LogicBlox deployment
   the paper describes (Section I: "a suite of data mining and machine
   learning tools for retail").

   Base data: a product category tree, a region tree of stores, SKU
   placements, and per-store stocking. Derived layers compute category
   closure, regional assortment rollups, and promotion eligibility with
   stratified negation. A nightly "assortment change" (move a category,
   delist a SKU) then triggers incremental maintenance, whose task DAG
   the schedulers race on.

   Run with: dune exec examples/retail_assortment.exe *)

let rules =
  {|
  % category hierarchy closure
  cat_anc(X, Y)  :- subcat(X, Y).
  cat_anc(X, Z)  :- cat_anc(X, Y), subcat(Y, Z).

  % region hierarchy closure
  reg_anc(X, Y)  :- subregion(X, Y).
  reg_anc(X, Z)  :- reg_anc(X, Y), subregion(Y, Z).

  % a SKU belongs to every ancestor of its category
  sku_in(S, C)   :- sku_cat(S, C).
  sku_in(S, A)   :- sku_cat(S, C), cat_anc(A, C).

  % a store carries a category if it stocks some SKU in it
  carries(St, C) :- stocks(St, S), sku_in(S, C).

  % regional assortment: a region offers a category if any store under
  % it carries it
  store_in(St, R)   :- store_region(St, R).
  store_in(St, A)   :- store_region(St, R), reg_anc(A, R).
  offers(R, C)      :- store_in(St, R), carries(St, C).

  % promotion eligibility: promoted categories a region does NOT offer
  % are expansion gaps (stratified negation over a recursive layer)
  gap(R, C)      :- promo(C), region(R), !offers(R, C).
  region(R)      :- subregion(R, X).
  region(R)      :- subregion(X, R).

  % rollups (stratified aggregation, the LogicBlox retail staple):
  % assortment breadth per region, stock value per store, chain-wide max
  breadth(R, cnt(C))    :- offers(R, C).
  stockvalue(St, sum(P)) :- stocks(St, S), skuprice(S, P).
  widest(max(B))         :- breadth(R, B).
|}

let facts () =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* category tree: 3 levels, fanout 4 *)
  for i = 0 to 3 do
    addf "subcat(\"root\", \"cat%d\").\n" i;
    for j = 0 to 3 do
      addf "subcat(\"cat%d\", \"cat%d_%d\").\n" i i j
    done
  done;
  (* region tree: country -> 4 regions -> 4 districts *)
  for r = 0 to 3 do
    addf "subregion(\"country\", \"reg%d\").\n" r;
    for d = 0 to 3 do
      addf "subregion(\"reg%d\", \"dist%d_%d\").\n" r r d
    done
  done;
  (* stores, SKUs, stocking: deterministic pseudo-random placement *)
  let rng = Prelude.Rng.create 2020 in
  for st = 0 to 31 do
    addf "store_region(\"store%d\", \"dist%d_%d\").\n" st (st mod 4) (st / 8)
  done;
  for sku = 0 to 127 do
    addf "sku_cat(\"sku%d\", \"cat%d_%d\").\n" sku (sku mod 4) (Prelude.Rng.int rng 4);
    addf "skuprice(\"sku%d\", %d).\n" sku (5 + Prelude.Rng.int rng 95);
    (* each SKU stocked in a handful of stores *)
    for _ = 1 to 3 do
      addf "stocks(\"store%d\", \"sku%d\").\n" (Prelude.Rng.int rng 32) sku
    done
  done;
  addf "promo(\"cat0\"). promo(\"cat2_1\"). promo(\"cat3\").\n";
  Buffer.contents buf

let () =
  let session = Incr_sched.materialize (rules ^ facts ()) in
  Format.printf "Materialized retail db: %d tuples@."
    (Datalog.Database.total_tuples session.Incr_sched.db);
  Format.printf "Expansion gaps before the nightly update: %d@."
    (List.length (Incr_sched.query session "gap"));
  (match Incr_sched.query session "widest" with
  | [ a ] -> Format.printf "Widest regional assortment: %a@.@." Datalog.Ast.pp_atom a
  | _ -> ());
  (* nightly assortment change: category 2_1 folds into category 3;
     sku7 is delisted chain-wide; a district gains a store *)
  let tt =
    Incr_sched.update session
      ~additions:[ {|subcat("cat3","cat2_1")|}; {|store_region("store99","dist1_2")|};
                   {|stocks("store99","sku11")|} ]
      ~deletions:[ {|subcat("cat2","cat2_1")|}; {|sku_cat("sku7","cat3_1")|} ]
  in
  Format.printf "Maintenance touched:@.";
  List.iter
    (fun (c : Datalog.Incremental.pred_change) ->
      Format.printf "  %-10s +%-5d -%-5d@." c.Datalog.Incremental.pred
        c.Datalog.Incremental.added c.Datalog.Incremental.removed)
    tt.Datalog.To_trace.report.Datalog.Incremental.changes;
  Format.printf "Expansion gaps after: %d@.@."
    (List.length (Incr_sched.query session "gap"));
  let trace = tt.Datalog.To_trace.trace in
  Format.printf "Maintenance DAG: %a@." Workload.Trace.pp_stats
    (Workload.Trace.stats trace);
  Format.printf "@.Scheduling the maintenance:@.";
  List.iter
    (fun m -> Format.printf "  %a@." Incr_sched.pp_result_row m)
    (Incr_sched.compare ~procs:4 trace)
