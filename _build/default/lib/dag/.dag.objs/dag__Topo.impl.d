lib/dag/topo.ml: Array Graph Option Prelude
