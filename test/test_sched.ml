(* Scheduler tests: every scheduler is exercised through the simulation
   engine on hand-built and random traces, and each schedule is checked
   against the Section II model (single execution, no task before an
   activated ancestor). *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let all_factories =
  [
    Sched.Level_based.factory;
    Sched.Lookahead.factory ~k:1;
    Sched.Lookahead.factory ~k:3;
    Sched.Lookahead.factory ~k:10;
    Sched.Logicblox.factory;
    Sched.Signal.factory;
    Sched.Hybrid.factory;
    Sched.Hybrid.factory_batched ~scan_batch:1;
    Sched.Hybrid.factory_batched ~scan_batch:4;
  ]

let run_valid ?(procs = 3) trace factory =
  let config = { Simulator.Engine.procs; op_cost = 1e-7; record_log = true } in
  let r = Simulator.Engine.run ~config ~sched:factory trace in
  (match Simulator.Validate.check_run trace r with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s produced an invalid schedule: %s" factory.Sched.Intf.fname e);
  r.Simulator.Engine.metrics

(* Hand-built trace: diamond where one branch's change dies out.
   0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4; edge 2->3 does not propagate. *)
let partial_diamond () =
  let graph =
    Dag.Graph.of_edges ~nodes:5 [| (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) |]
  in
  let edge_changed = [| true; true; true; false; true |] in
  Workload.Trace.create ~name:"partial-diamond" ~graph
    ~kind:(Array.make 5 Workload.Trace.Task)
    ~shape:(Array.make 5 Workload.Trace.Unit)
    ~initial:[| 0 |] ~edge_changed

(* Random small traces as a QCheck generator. *)
let trace_gen =
  QCheck.Gen.(
    2 -- 18 >>= fun n ->
    list_size (0 -- (3 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >>= fun pairs ->
    array_size (return (6 * n)) bool >>= fun coin ->
    int_bound 3 >|= fun extra_initial ->
    let edges =
      pairs
      |> List.filter_map (fun (a, b) ->
             if a < b then Some (a, b) else if b < a then Some (b, a) else None)
      |> List.sort_uniq compare
      |> Array.of_list
    in
    let graph = Dag.Graph.of_edges ~nodes:n edges in
    let edge_changed =
      Array.init (Dag.Graph.edge_count graph) (fun e -> coin.(e mod Array.length coin))
    in
    let sources = Dag.Graph.sources graph in
    let k = min (Array.length sources) (1 + extra_initial) in
    let initial = Array.sub sources 0 k in
    Workload.Trace.create ~name:"qcheck" ~graph
      ~kind:(Array.make n Workload.Trace.Task)
      ~shape:(Array.init n (fun i -> Workload.Trace.Seq (1.0 +. float_of_int (i mod 4))))
      ~initial ~edge_changed)

let arb_trace =
  QCheck.make
    ~print:(fun (t : Workload.Trace.t) ->
      Format.asprintf "%a" Workload.Trace.pp_stats (Workload.Trace.stats t))
    trace_gen

(* ---------- validity across schedulers ---------- *)

let validity_tests =
  List.map
    (fun factory ->
      test `Quick
        (Printf.sprintf "%s: valid on partial diamond" factory.Sched.Intf.fname)
        (fun () ->
          let m = run_valid (partial_diamond ()) factory in
          (* W = {0,1,2,3,4}: 2's input changed even though its output
             change dies; 3 activated via 1. *)
          check_int "executed" 5 m.Simulator.Metrics.tasks_executed))
    all_factories

let qcheck_validity =
  List.map
    (fun factory ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "%s: valid schedules on random traces" factory.Sched.Intf.fname)
        ~count:150 arb_trace
        (fun trace ->
          let config = { Simulator.Engine.procs = 2; op_cost = 1e-7; record_log = true } in
          let r = Simulator.Engine.run ~config ~sched:factory trace in
          match Simulator.Validate.check_run trace r with
          | Ok () -> true
          | Error _ -> false))
    all_factories

(* ---------- LevelBased semantics ---------- *)

let index_of arr x =
  let found = ref (-1) in
  Array.iteri (fun i y -> if y = x && !found < 0 then found := i) arr;
  if !found < 0 then Alcotest.failf "task %d never ran" x;
  !found

let lb_respects_levels () =
  (* two independent chains; LB on one processor must drain level by level *)
  let graph = Dag.Graph.of_edges ~nodes:5 [| (0, 1); (1, 2); (3, 4) |] in
  let trace =
    Workload.Trace.create ~name:"two-chains" ~graph
      ~kind:(Array.make 5 Workload.Trace.Task)
      ~shape:(Array.make 5 (Workload.Trace.Seq 1.0))
      ~initial:[| 0; 3 |]
      ~edge_changed:[| true; true; true |]
  in
  let config = { Simulator.Engine.procs = 1; op_cost = 0.0; record_log = true } in
  let r = Simulator.Engine.run ~config ~sched:Sched.Level_based.factory trace in
  let log = Option.get r.Simulator.Engine.log in
  let starts = Array.map (fun e -> e.Simulator.Engine.task) log in
  let pos = index_of starts in
  check_bool "0 before 1" true (pos 0 < pos 1);
  check_bool "3 before 4" true (pos 3 < pos 4);
  check_bool "4 before 2" true (pos 4 < pos 2);
  check_bool "1 before 2" true (pos 1 < pos 2)

let lb_skips_empty_levels () =
  let trace = Workload.Pathological.deep_chain ~n:6 in
  let m = run_valid ~procs:1 trace Sched.Level_based.factory in
  Alcotest.(check (float 1e-6)) "serial chain" 6.0 m.Simulator.Metrics.exec_time

(* ---------- tight example (Theorem 9 / Figure 2) ---------- *)

let tight_example_shapes () =
  let levels = 12 in
  let trace = Workload.Pathological.tight_example ~levels in
  let config = { Simulator.Engine.procs = 32; op_cost = 0.0; record_log = true } in
  let lb = Simulator.Engine.run ~config ~sched:Sched.Level_based.factory trace in
  let opt =
    Simulator.Engine.run ~config ~sched:(Simulator.Engine.clairvoyant_factory trace) trace
  in
  (* LB pays sum_{i=2..L}(L-i+1) + 1 = L(L-1)/2 + 1; OPT pays L *)
  Alcotest.(check (float 1e-6)) "LB quadratic"
    (float_of_int ((levels * (levels - 1) / 2) + 1))
    lb.Simulator.Engine.metrics.Simulator.Metrics.makespan;
  Alcotest.(check (float 1e-6)) "OPT linear" (float_of_int levels)
    opt.Simulator.Engine.metrics.Simulator.Metrics.makespan;
  let lbl =
    Simulator.Engine.run ~config ~sched:(Sched.Lookahead.factory ~k:levels) trace
  in
  Alcotest.(check (float 1e-6)) "LBL rescues" (float_of_int levels)
    lbl.Simulator.Engine.metrics.Simulator.Metrics.makespan

(* ---------- LogicBlox scheduler ---------- *)

let logicblox_broom_quadratic () =
  let spine = 100 and fan = 100 in
  let trace = Workload.Pathological.broom ~spine ~fan in
  let m_lbx = run_valid ~procs:4 trace Sched.Logicblox.factory in
  let m_lb = run_valid ~procs:4 trace Sched.Level_based.factory in
  let q = m_lbx.Simulator.Metrics.ops.Sched.Intf.queries in
  check_bool "quadratic queries" true (q > spine * fan / 2);
  check_bool "levelbased linear" true
    (Sched.Intf.total_ops m_lb.Simulator.Metrics.ops < 20 * (spine + fan))

let logicblox_memory_reported () =
  let trace =
    Workload.Pathological.interval_blowup ~width:40 ~layers:3 ~density:0.5 ~seed:1
  in
  let m = run_valid ~procs:4 trace Sched.Logicblox.factory in
  let m_lb = run_valid ~procs:4 trace Sched.Level_based.factory in
  check_bool "interval lists dominate" true
    (m.Simulator.Metrics.memory_words > 5 * m_lb.Simulator.Metrics.memory_words)

(* ---------- Signal propagation ---------- *)

let signal_messages_cover_graph () =
  let n = 50 in
  let trace = Workload.Pathological.deep_chain ~n in
  let m = run_valid ~procs:1 trace Sched.Signal.factory in
  check_int "one message per edge" (n - 1) m.Simulator.Metrics.ops.Sched.Intf.messages

let signal_messages_despite_tiny_active_set () =
  (* a long inactive tail still receives no-change signals *)
  let graph = Dag.Graph.of_edges ~nodes:6 [| (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) |] in
  let trace =
    Workload.Trace.create ~name:"dead-tail" ~graph
      ~kind:(Array.make 6 Workload.Trace.Task)
      ~shape:(Array.make 6 Workload.Trace.Unit)
      ~initial:[| 0 |]
      ~edge_changed:[| false; false; false; false; false |]
  in
  let m = run_valid ~procs:1 trace Sched.Signal.factory in
  check_int "only the source executed" 1 m.Simulator.Metrics.tasks_executed;
  check_int "but every edge carried a signal" 5
    m.Simulator.Metrics.ops.Sched.Intf.messages

(* ---------- Hybrid ---------- *)

let hybrid_beats_logicblox_on_broom () =
  let trace = Workload.Pathological.broom ~spine:200 ~fan:200 in
  let h = run_valid ~procs:4 trace Sched.Hybrid.factory in
  let l = run_valid ~procs:4 trace Sched.Logicblox.factory in
  check_bool "hybrid cheaper decisions" true
    (Sched.Intf.total_ops h.Simulator.Metrics.ops
    < Sched.Intf.total_ops l.Simulator.Metrics.ops)

(* Section V: LevelBased combines with ANY heuristic — here with signal
   propagation as the co-scheduler. *)
let hybrid_with_signal_co () =
  let factory =
    {
      Sched.Intf.fname = "hybrid-signal";
      make =
        (fun g ->
          Sched.Hybrid.make_with ~name:"Hybrid(LB+Signal)"
            ~co:(fun ~ops g -> Sched.Signal.make ~ops g)
            g);
    }
  in
  let trace = Workload.Pathological.tight_example ~levels:10 in
  let m = run_valid ~procs:16 trace factory in
  check_bool "escapes the LB worst case via the co-scheduler" true
    (m.Simulator.Metrics.makespan < 46.0 (* LB alone pays L(L-1)/2+1 = 46 *));
  let trace2 = partial_diamond () in
  ignore (run_valid trace2 factory)

let hybrid_matches_best_makespan () =
  let trace = Workload.Pathological.tight_example ~levels:10 in
  let config = { Simulator.Engine.procs = 16; op_cost = 0.0; record_log = true } in
  let h = Simulator.Engine.run ~config ~sched:Sched.Hybrid.factory trace in
  check_bool "hybrid escapes LB worst case" true
    (h.Simulator.Engine.metrics.Simulator.Metrics.makespan < 2.0 *. 10.0)

(* ---------- Clairvoyant ---------- *)

(* Greedy list scheduling on the revealed H obeys Graham's bound. *)
let clairvoyant_graham_qcheck =
  QCheck.Test.make ~name:"clairvoyant: <= w/P + realized span (Graham)" ~count:150
    arb_trace (fun trace ->
      let procs = 2 in
      let config = { Simulator.Engine.procs; op_cost = 0.0; record_log = false } in
      let m =
        (Simulator.Engine.run ~config
           ~sched:(Simulator.Engine.clairvoyant_factory trace)
           trace)
          .Simulator.Engine.metrics
      in
      let w = Workload.Trace.total_active_work trace in
      let span = Workload.Trace.active_critical_path trace in
      m.Simulator.Metrics.makespan <= (w /. float_of_int procs) +. span +. 1e-9)

let clairvoyant_bounds_qcheck =
  QCheck.Test.make ~name:"clairvoyant: >= max(w/P, realized span)" ~count:100 arb_trace
    (fun trace ->
      let procs = 2 in
      let config = { Simulator.Engine.procs; op_cost = 0.0; record_log = false } in
      let m =
        (Simulator.Engine.run ~config
           ~sched:(Simulator.Engine.clairvoyant_factory trace)
           trace)
          .Simulator.Engine.metrics
      in
      let w = Workload.Trace.total_active_work trace in
      let span = Workload.Trace.active_critical_path trace in
      m.Simulator.Metrics.makespan >= (w /. float_of_int procs) -. 1e-9
      && m.Simulator.Metrics.makespan >= span -. 1e-9)

(* ---------- Lookahead ---------- *)

let lookahead_invalid_k () =
  Alcotest.check_raises "k=0" (Invalid_argument "Lookahead: k must be >= 1") (fun () ->
      ignore ((Sched.Lookahead.factory ~k:0).Sched.Intf.make (Dag.Graph.empty 1)))

let lookahead_valid_any_k () =
  let graph = Dag.Graph.of_edges ~nodes:5 [| (0, 1); (1, 2); (2, 3); (0, 4) |] in
  let trace =
    Workload.Trace.create ~name:"promote" ~graph
      ~kind:(Array.make 5 Workload.Trace.Task)
      ~shape:
        [|
          Workload.Trace.Seq 1.0; Seq 5.0; Seq 5.0; Seq 5.0; Workload.Trace.Seq 1.0;
        |]
      ~initial:[| 0 |]
      ~edge_changed:[| true; true; true; true |]
  in
  List.iter
    (fun k -> ignore (run_valid ~procs:2 trace (Sched.Lookahead.factory ~k)))
    [ 1; 2; 5; 50 ]

let lookahead_promotion_effective () =
  let trace = Workload.Pathological.tight_example ~levels:14 in
  let config = { Simulator.Engine.procs = 16; op_cost = 0.0; record_log = true } in
  let lb =
    (Simulator.Engine.run ~config ~sched:Sched.Level_based.factory trace)
      .Simulator.Engine.metrics
      .Simulator.Metrics.makespan
  in
  let lbl =
    (Simulator.Engine.run ~config ~sched:(Sched.Lookahead.factory ~k:2) trace)
      .Simulator.Engine.metrics
      .Simulator.Metrics.makespan
  in
  check_bool "even k=2 helps here" true (lbl < lb)

let lookahead_monotone_in_k () =
  let trace = Workload.Pathological.tight_example ~levels:16 in
  let config = { Simulator.Engine.procs = 32; op_cost = 0.0; record_log = false } in
  let makespan k =
    (Simulator.Engine.run ~config ~sched:(Sched.Lookahead.factory ~k) trace)
      .Simulator.Engine.metrics
      .Simulator.Metrics.makespan
  in
  let m1 = makespan 1 and m4 = makespan 4 and m16 = makespan 16 in
  check_bool "k=4 no worse than k=1" true (m4 <= m1 +. 1e-9);
  check_bool "k=16 no worse than k=4" true (m16 <= m4 +. 1e-9)

(* ---------- Prepared (shared precomputation) ---------- *)

let prepared_equivalent () =
  let trace = Workload.Pathological.tight_example ~levels:12 in
  let prep = Sched.Prepared.prepare trace.Workload.Trace.graph in
  let config = { Simulator.Engine.procs = 4; op_cost = 1e-7; record_log = false } in
  List.iter
    (fun (plain, prepared) ->
      let m f =
        (Simulator.Engine.run ~config ~sched:f trace).Simulator.Engine.metrics
      in
      let a = m plain and b = m prepared in
      Alcotest.(check (float 1e-9))
        (plain.Sched.Intf.fname ^ ": same makespan")
        a.Simulator.Metrics.makespan b.Simulator.Metrics.makespan;
      check_int
        (plain.Sched.Intf.fname ^ ": same ops")
        (Sched.Intf.total_ops a.Simulator.Metrics.ops)
        (Sched.Intf.total_ops b.Simulator.Metrics.ops))
    [
      (Sched.Level_based.factory, Sched.Prepared.level_based_factory prep);
      (Sched.Lookahead.factory ~k:4, Sched.Prepared.lookahead_factory prep ~k:4);
      (Sched.Logicblox.factory, Sched.Prepared.logicblox_factory prep);
      (Sched.Hybrid.factory, Sched.Prepared.hybrid_factory prep);
      (Sched.Signal.factory, Sched.Prepared.signal_factory prep);
    ]

let prepared_amortizes () =
  (* on a trace with an expensive interval build, the prepared factory's
     per-run cost collapses *)
  let trace =
    Workload.Pathological.interval_blowup ~width:80 ~layers:3 ~density:0.5 ~seed:9
  in
  let prep = Sched.Prepared.prepare trace.Workload.Trace.graph in
  let config = { Simulator.Engine.procs = 4; op_cost = 1e-7; record_log = false } in
  let cold =
    (Simulator.Engine.run ~config ~sched:Sched.Logicblox.factory trace)
      .Simulator.Engine.metrics
      .Simulator.Metrics.precompute_wallclock
  in
  let warm =
    (Simulator.Engine.run ~config ~sched:(Sched.Prepared.logicblox_factory prep) trace)
      .Simulator.Engine.metrics
      .Simulator.Metrics.precompute_wallclock
  in
  check_bool "warm precompute is much cheaper" true (warm < cold /. 5.0)

let prepared_guards_graph () =
  let t1 = Workload.Pathological.deep_chain ~n:5 in
  let t2 = Workload.Pathological.deep_chain ~n:6 in
  let prep = Sched.Prepared.prepare t1.Workload.Trace.graph in
  let factory = Sched.Prepared.level_based_factory prep in
  match factory.Sched.Intf.make t2.Workload.Trace.graph with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of a foreign graph"

(* ---------- Registry ---------- *)

let registry_known () =
  List.iter
    (fun name ->
      match Sched.Registry.find name with
      | Some _ -> ()
      | None -> Alcotest.failf "registry must know %s" name)
    [
      "levelbased"; "lb"; "LB"; "logicblox"; "signal"; "hybrid"; "lbl:7";
      "lookahead:3"; "hybrid:16";
    ]

let registry_unknown () =
  check_bool "unknown" true (Sched.Registry.find "unknown" = None);
  check_bool "bad k" true (Sched.Registry.find "lbl:0" = None);
  check_bool "bad k syntax" true (Sched.Registry.find "lbl:x" = None);
  Alcotest.check_raises "find_exn" (Invalid_argument "unknown scheduler \"nope\"")
    (fun () -> ignore (Sched.Registry.find_exn "nope"))

let registry_names_resolve () =
  List.iter
    (fun name ->
      match Sched.Registry.find name with
      | Some f -> check_bool "name matches" true (f.Sched.Intf.fname <> "")
      | None -> Alcotest.failf "advertised name %s must resolve" name)
    Sched.Registry.names

(* ---------- ops accounting ---------- *)

let ops_shared_in_hybrid () =
  let trace = partial_diamond () in
  let ops = Sched.Intf.zero_ops () in
  let inst = Sched.Hybrid.make ~ops trace.Workload.Trace.graph in
  check_bool "hybrid shares the ops record" true (inst.Sched.Intf.ops == ops)

let ops_pp_and_total () =
  let ops = Sched.Intf.zero_ops () in
  ops.Sched.Intf.queries <- 2;
  ops.Sched.Intf.messages <- 3;
  check_int "total" 5 (Sched.Intf.total_ops ops);
  let other = Sched.Intf.zero_ops () in
  other.Sched.Intf.bucket_ops <- 4;
  Sched.Intf.add_ops ~into:ops other;
  check_int "after add" 9 (Sched.Intf.total_ops ops);
  let s = Format.asprintf "%a" Sched.Intf.pp_ops ops in
  check_bool "pp nonempty" true (String.length s > 10)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

(* Pin the LevelBased memory accounting: the bitset term must be the
   ceiling division 2 * ((n + 62) / 63) — the floor version 2 * (n / 63)
   under-counted by up to two words — and the live cardinality of the
   active set must not leak into the footprint (footprint is capacity,
   not occupancy). Cross-checked against the actual backing-store size
   reported by [Bitset.storage_words]. *)
let lb_memory_words_formula () =
  List.iter
    (fun width ->
      let trace = Workload.Pathological.unit_layers ~width ~layers:3 ~fanout:2 ~seed:1 in
      let g = trace.Workload.Trace.graph in
      let n = Dag.Graph.node_count g in
      let core = Sched.Level_based.Core.create g in
      let nlevels = Dag.Levels.count (Sched.Level_based.Core.levels core) in
      let bitset_words = (n + 62) / 63 in
      check_int
        (Printf.sprintf "formula for n=%d" n)
        (n + (2 * max nlevels 1) + (2 * bitset_words))
        (Sched.Level_based.Core.memory_words core);
      (* ceil-div matches the bitset's real backing store (one slack
         word aside) and never under-counts it *)
      let bs = Prelude.Bitset.create n in
      check_int "bitset storage" (bitset_words + 1) (Prelude.Bitset.storage_words bs);
      (* occupancy must not change the reported footprint *)
      let before = Sched.Level_based.Core.memory_words core in
      Sched.Level_based.Core.on_activated core 0;
      Sched.Level_based.Core.on_activated core 1;
      check_int "footprint ignores occupancy" before
        (Sched.Level_based.Core.memory_words core))
    [ 1; 20; 21; 63 ]

let () =
  Alcotest.run "sched"
    [
      ("validity", validity_tests @ qsuite qcheck_validity);
      ( "levelbased",
        [
          test `Quick "respects level order" lb_respects_levels;
          test `Quick "serial chain" lb_skips_empty_levels;
          test `Quick "memory accounting formula" lb_memory_words_formula;
        ] );
      ("tight-example", [ test `Quick "Theorem 9 shapes" tight_example_shapes ]);
      ( "logicblox",
        [
          test `Quick "broom is quadratic" logicblox_broom_quadratic;
          test `Quick "interval memory reported" logicblox_memory_reported;
        ] );
      ( "signal",
        [
          test `Quick "messages cover the graph" signal_messages_cover_graph;
          test `Quick "messages despite tiny active set"
            signal_messages_despite_tiny_active_set;
        ] );
      ( "hybrid",
        [
          test `Quick "cheaper than LogicBlox on broom" hybrid_beats_logicblox_on_broom;
          test `Quick "escapes LB worst case" hybrid_matches_best_makespan;
          test `Quick "combines with any heuristic (signal co)" hybrid_with_signal_co;
        ] );
      ("clairvoyant", qsuite [ clairvoyant_graham_qcheck; clairvoyant_bounds_qcheck ]);
      ( "lookahead",
        [
          test `Quick "rejects k=0" lookahead_invalid_k;
          test `Quick "valid for all k" lookahead_valid_any_k;
          test `Quick "promotion reduces makespan" lookahead_promotion_effective;
          test `Quick "monotone in k on tight example" lookahead_monotone_in_k;
        ] );
      ( "prepared",
        [
          test `Quick "equivalent to cold factories" prepared_equivalent;
          test `Quick "amortizes precomputation" prepared_amortizes;
          test `Quick "guards against foreign graphs" prepared_guards_graph;
        ] );
      ( "registry",
        [
          test `Quick "known names" registry_known;
          test `Quick "unknown names" registry_unknown;
          test `Quick "advertised names resolve" registry_names_resolve;
        ] );
      ( "ops",
        [
          test `Quick "hybrid shares counters" ops_shared_in_hybrid;
          test `Quick "totals and printing" ops_pp_and_total;
        ] );
    ]
