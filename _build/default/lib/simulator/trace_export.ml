let write ?(labels = string_of_int) oc ~procs (log : Engine.log_entry array) =
  let entries = Array.copy log in
  Array.sort
    (fun a b -> compare (a.Engine.start, a.Engine.task) (b.Engine.start, b.Engine.task))
    entries;
  (* greedy row assignment: first row free at the task's start time *)
  let free_at = Array.make (max procs 1) 0.0 in
  let row_of entry =
    let eps = 1e-12 in
    let row = ref (-1) in
    for r = 0 to Array.length free_at - 1 do
      if !row < 0 && free_at.(r) <= entry.Engine.start +. eps then row := r
    done;
    let r = if !row >= 0 then !row else 0 in
    if entry.Engine.finish > free_at.(r) then free_at.(r) <- entry.Engine.finish;
    r
  in
  let us t = t *. 1e6 in
  output_string oc "[\n";
  Array.iteri
    (fun i e ->
      let row = row_of e in
      Printf.fprintf oc
        "  {\"name\": %S, \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \
         \"dur\": %.3f}%s\n"
        (labels e.Engine.task) row (us e.Engine.start)
        (us (e.Engine.finish -. e.Engine.start))
        (if i = Array.length entries - 1 then "" else ","))
    entries;
  output_string oc "]\n"

let to_file ?labels path ~procs log =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write ?labels oc ~procs log)
