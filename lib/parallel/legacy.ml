(* The original big-lock executor, kept as the baseline for the
   dispatch benchmark: every scheduler call, status transition,
   activation and log append happens under one global mutex, and every
   completion broadcasts the condition variable at every waiting
   worker. See Executor for the replacement.

   The only change from the seed protocol is the startup barrier: all
   workers rendezvous after [Domain.spawn], and the makespan epoch is
   taken by the last arriver — identical to Executor's, so the two
   executors' [wall_makespan] measure dispatch from the same
   post-spawn instant and neither is charged for domain spawn time.
   Everything past the barrier is the seed dispatch protocol,
   unchanged. *)

type status = Inactive | Active | Running | Done

let now () = Unix.gettimeofday ()

let spin seconds =
  if seconds > 0.0 then begin
    let deadline = now () +. seconds in
    while now () < deadline do
      ignore (Sys.opaque_identity 0)
    done
  end

(* All cross-worker mutable state below is guarded by [lock]; it is
   held in [Vatomic.Plain] cells so the analysis build's happens-before
   checker can verify that claim (every access is ordered through the
   big mutex) rather than trusting it. *)
module Plain = Prelude.Vatomic.Plain

let run ?(domains = 4) ?(work_unit = 1e-4) ~sched (trace : Workload.Trace.t) =
  if domains < 1 then invalid_arg "Legacy.run: need at least one domain";
  let g = trace.Workload.Trace.graph in
  let n = Dag.Graph.node_count g in
  let inst = sched.Sched.Intf.make g in
  let lock = Mutex.create () in
  let work_ready = Condition.create () in
  let status = Array.make n Inactive in
  let activated = Plain.make 0 in
  let completed = Plain.make 0 in
  let running = Plain.make 0 in
  let failed = Plain.make None in
  let log =
    Prelude.Vec.create
      ~dummy:{ Executor.task = 0; start = 0.0; finish = 0.0; worker = 0 }
      ()
  in
  let work_executed = Plain.make 0.0 in
  (* startup barrier (see header): the last worker to arrive stamps
     the epoch, so dispatch is measured from a common post-spawn
     instant *)
  let arrived = ref 0 in
  let epoch_ref = ref 0.0 in
  let bmutex = Mutex.create () in
  let bcond = Condition.create () in
  let barrier () =
    Mutex.lock bmutex;
    incr arrived;
    if !arrived = domains then begin
      epoch_ref := now ();
      Condition.broadcast bcond
    end
    else
      while !arrived < domains do
        Condition.wait bcond bmutex
      done;
    Mutex.unlock bmutex
  in
  let activate u =
    match status.(u) with
    | Inactive ->
      status.(u) <- Active;
      Plain.set activated (Plain.get activated + 1);
      inst.Sched.Intf.on_activated u
    | Active -> ()
    | Running | Done ->
      Plain.set failed (Some (Printf.sprintf "task %d activated after it ran" u))
  in
  Mutex.lock lock;
  Array.iter activate trace.Workload.Trace.initial;
  Mutex.unlock lock;
  let worker wid =
    barrier ();
    let epoch = !epoch_ref in
    Mutex.lock lock;
    let rec loop () =
      if Plain.get failed <> None then ()
      else if Plain.get completed = Plain.get activated && Plain.get running = 0 then
        (* nothing active remains and nothing can activate more *)
        Condition.broadcast work_ready
      else begin
        match inst.Sched.Intf.next_ready () with
        | Some u ->
          (match status.(u) with
          | Active -> ()
          | Inactive | Running | Done ->
            Plain.set failed
              (Some (Printf.sprintf "scheduler released task %d unsafely" u)));
          if Plain.get failed = None then begin
            status.(u) <- Running;
            Plain.set running (Plain.get running + 1);
            inst.Sched.Intf.on_started u;
            Mutex.unlock lock;
            let start = now () -. epoch in
            let work = Workload.Trace.work trace u in
            spin (work *. work_unit);
            let finish = now () -. epoch in
            Mutex.lock lock;
            status.(u) <- Done;
            Plain.set running (Plain.get running - 1);
            Plain.set completed (Plain.get completed + 1);
            Plain.set work_executed (Plain.get work_executed +. work);
            Prelude.Vec.push log { Executor.task = u; start; finish; worker = wid };
            Dag.Graph.iter_succ g u (fun ~dst ~eid ->
                if trace.Workload.Trace.edge_changed.(eid) then activate dst);
            inst.Sched.Intf.on_completed u;
            Condition.broadcast work_ready;
            loop ()
          end
          else Condition.broadcast work_ready
        | None ->
          if Plain.get running = 0 then begin
            Plain.set failed
              (Some
                 (Printf.sprintf
                    "scheduler stalled: %d of %d activated tasks incomplete, none \
                     running"
                    (Plain.get activated - Plain.get completed)
                    (Plain.get activated)));
            Condition.broadcast work_ready
          end
          else begin
            Condition.wait work_ready lock;
            loop ()
          end
      end
    in
    loop ();
    Mutex.unlock lock
  in
  (* empty minor heap before spawning, as in Executor: a minor
     collection with live domains stops all of them *)
  Gc.minor ();
  let handles = List.init domains (fun wid -> Domain.spawn (fun () -> worker wid)) in
  List.iter Domain.join handles;
  (match Plain.get failed with
  | Some msg -> failwith ("Executor: " ^ msg)
  | None -> ());
  let log = Prelude.Vec.to_array log in
  let wall_makespan =
    Array.fold_left (fun acc r -> Float.max acc r.Executor.finish) 0.0 log
  in
  {
    Executor.wall_makespan;
    tasks_executed = Plain.get completed;
    tasks_activated = Plain.get activated;
    ops = inst.Sched.Intf.ops;
    worker_ops = Array.init domains (fun _ -> Sched.Intf.zero_ops ());
    log;
    work_executed = Plain.get work_executed;
    steals = 0;
  }
