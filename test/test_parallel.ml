(* Multicore executor tests. The container may expose a single core, so
   these check protocol correctness (coverage, single execution,
   precedence on real timestamps, deadlock detection) rather than
   wall-clock speedup. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let run_checked ?(domains = 3) ?(work_unit = 5e-5) trace factory =
  let r = Parallel.Executor.run ~domains ~work_unit ~sched:factory trace in
  (match Parallel.Executor.check trace r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid parallel schedule: %s" factory.Sched.Intf.fname e);
  r

let all_schedulers_valid () =
  let trace = Workload.Pathological.unit_layers ~width:10 ~layers:6 ~fanout:2 ~seed:11 in
  List.iter
    (fun factory ->
      let r = run_checked trace factory in
      check_int
        (Printf.sprintf "%s executes the active set" factory.Sched.Intf.fname)
        60 r.Parallel.Executor.tasks_executed)
    [
      Sched.Level_based.factory;
      Sched.Lookahead.factory ~k:3;
      Sched.Logicblox.factory;
      Sched.Signal.factory;
      Sched.Hybrid.factory;
    ]

let partial_activation_respected () =
  (* chain whose second half never activates *)
  let graph = Dag.Graph.of_edges ~nodes:6 [| (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) |] in
  let trace =
    Workload.Trace.create ~name:"half" ~graph
      ~kind:(Array.make 6 Workload.Trace.Task)
      ~shape:(Array.make 6 Workload.Trace.Unit)
      ~initial:[| 0 |]
      ~edge_changed:[| true; true; false; true; true |]
  in
  let r = run_checked trace Sched.Hybrid.factory in
  check_int "stops at the dead edge" 3 r.Parallel.Executor.tasks_executed;
  check_int "activations counted" 3 r.Parallel.Executor.tasks_activated

let precedence_on_wallclock () =
  let trace = Workload.Pathological.tight_example ~levels:8 in
  let r = run_checked ~domains:4 trace Sched.Level_based.factory in
  (* sanity beyond [check]: the j-chain must appear in order *)
  let finish = Array.make 64 0.0 in
  Array.iter
    (fun e -> finish.(e.Parallel.Executor.task) <- e.Parallel.Executor.finish)
    r.Parallel.Executor.log;
  Array.iter
    (fun (e : Parallel.Executor.task_record) ->
      if e.task >= 1 && e.task < 8 then
        check_bool "chain ordered" true (e.start >= finish.(e.task - 1) -. 1e-6))
    r.Parallel.Executor.log

let deadlock_detected () =
  let lazy_factory =
    {
      Sched.Intf.fname = "lazy";
      make =
        (fun _g ->
          {
            Sched.Intf.name = "lazy";
            on_activated = (fun _ -> ());
            on_started = (fun _ -> ());
            on_completed = (fun _ -> ());
            next_ready = (fun () -> None);
            next_ready_into = None;
            ops = Sched.Intf.zero_ops ();
            memory_words = (fun () -> 0);
          })
    }
  in
  let trace = Workload.Pathological.deep_chain ~n:3 in
  match Parallel.Executor.run ~domains:2 ~sched:lazy_factory trace with
  | exception Failure msg ->
    check_bool "mentions the stall" true
      (String.length msg > 0
      && String.sub msg 0 8 = "Executor")
  | _ -> Alcotest.fail "expected a deadlock failure"

let work_accounting () =
  let graph = Dag.Graph.empty 3 in
  let trace =
    Workload.Trace.create ~name:"w" ~graph
      ~kind:(Array.make 3 Workload.Trace.Task)
      ~shape:[| Workload.Trace.Seq 2.0; Seq 3.0; Seq 4.0 |]
      ~initial:[| 0; 1; 2 |] ~edge_changed:[||]
  in
  let r = run_checked trace Sched.Level_based.factory in
  Alcotest.(check (float 1e-9)) "work executed" 9.0 r.Parallel.Executor.work_executed;
  check_bool "wall at least the critical work" true
    (r.Parallel.Executor.wall_makespan >= 4.0 *. 5e-5 *. 0.5)

(* Randomized stress: traces spanning high fan-out, heavy-tailed work
   skew and pure zero-work dispatch, crossed with domains {1,2,4,8} and
   every scheduler. Every run must produce a valid schedule
   ([Executor.check]) and execute exactly the set it activated. Traces
   are kept small so the full matrix stays quick at [work_unit = 0]. *)

let stress_schedulers =
  [
    Sched.Level_based.factory;
    Sched.Lookahead.factory ~k:4;
    Sched.Logicblox.factory;
    Sched.Signal.factory;
    Sched.Hybrid.factory;
  ]

let stress_trace ~variant ~seed =
  match variant with
  | `Fanout ->
    (* wide layers, high out-degree: many simultaneous activations *)
    Workload.Pathological.unit_layers ~width:24 ~layers:8 ~fanout:6 ~seed
  | `Skewed ->
    (* heavy tail: most tasks near-unit, one in ten ~30x heavier *)
    let duration rng _u =
      if Prelude.Rng.bernoulli rng 0.1 then
        Workload.Trace.Seq (Prelude.Rng.uniform rng ~lo:10.0 ~hi:30.0)
      else Workload.Trace.Seq (0.1 +. Prelude.Rng.float rng)
    in
    Workload.Synthetic.generate ~duration ~name:"stress-skew"
      {
        Workload.Synthetic.nodes = 240;
        edges = 700;
        levels = 10;
        initial = 6;
        active_jobs = 150;
        descendants = None;
        task_fraction = 0.8;
        seed;
      }
  | `Zero ->
    (* pure dispatch: every task zero work, scheduler overhead only *)
    let duration _rng _u = Workload.Trace.Seq 0.0 in
    Workload.Synthetic.generate ~duration ~name:"stress-zero"
      {
        Workload.Synthetic.nodes = 200;
        edges = 520;
        levels = 8;
        initial = 5;
        active_jobs = 120;
        descendants = None;
        task_fraction = 1.0;
        seed;
      }

let stress_matrix () =
  List.iter
    (fun (vname, variant, seed) ->
      let trace = stress_trace ~variant ~seed in
      List.iter
        (fun domains ->
          List.iter
            (fun (factory : Sched.Intf.factory) ->
              let r =
                Parallel.Executor.run ~domains ~work_unit:0.0 ~sched:factory trace
              in
              (match Parallel.Executor.check trace r with
              | Ok () -> ()
              | Error e ->
                Alcotest.failf "%s/%s d=%d: invalid schedule: %s" vname
                  factory.Sched.Intf.fname domains e);
              check_int
                (Printf.sprintf "%s/%s d=%d executes what it activates" vname
                   factory.Sched.Intf.fname domains)
                r.Parallel.Executor.tasks_activated
                r.Parallel.Executor.tasks_executed)
            stress_schedulers)
        [ 1; 2; 4; 8 ])
    [ ("fanout", `Fanout, 42); ("skew", `Skewed, 43); ("zero", `Zero, 44) ]

let unsafe_release_detected () =
  (* A scheduler that violates the release protocol by handing every
     activated task out twice. The executor's claim CAS (the only
     Active->Running edge) must reject the second copy. *)
  let rogue_factory =
    {
      Sched.Intf.fname = "rogue";
      make =
        (fun _g ->
          let q = Queue.create () in
          {
            Sched.Intf.name = "rogue";
            on_activated =
              (fun u ->
                Queue.add u q;
                Queue.add u q);
            on_started = (fun _ -> ());
            on_completed = (fun _ -> ());
            next_ready = (fun () -> Queue.take_opt q);
            next_ready_into = None;
            ops = Sched.Intf.zero_ops ();
            memory_words = (fun () -> 0);
          });
    }
  in
  let contains_unsafely msg =
    let n = String.length msg in
    let rec find i = i + 8 <= n && (String.sub msg i 8 = "unsafely" || find (i + 1)) in
    find 0
  in
  let trace = Workload.Pathological.unit_layers ~width:6 ~layers:3 ~fanout:2 ~seed:5 in
  match Parallel.Executor.run ~domains:2 ~work_unit:0.0 ~sched:rogue_factory trace with
  | exception Failure msg ->
    check_bool "reports the unsafe release" true (contains_unsafely msg)
  | _ -> Alcotest.fail "expected the executor to reject the rogue scheduler"

(* ---- run_task: arbitrary task bodies on the executor ---- *)

let run_task_bodies_execute_once () =
  (* every activated task's closure runs exactly once, and a body sees
     its predecessors' writes (precedence = happens-before) *)
  let n = 32 in
  let graph = Dag.Graph.of_edges ~nodes:n (Array.init (n - 1) (fun i -> (i, i + 1))) in
  let trace =
    Workload.Trace.create ~name:"closure-chain" ~graph
      ~kind:(Array.make n Workload.Trace.Task)
      ~shape:(Array.make n (Workload.Trace.Seq 1.0))
      ~initial:[| 0 |]
      ~edge_changed:(Array.make (n - 1) true)
  in
  let hits = Array.make n 0 in
  let prefix = Array.make n (-1) in
  let run_task ~wid:_ u =
    hits.(u) <- hits.(u) + 1;
    prefix.(u) <- (if u = 0 then 0 else prefix.(u - 1) + 1)
  in
  let r =
    Parallel.Executor.run ~domains:4 ~work_unit:0.0 ~run_task
      ~sched:Sched.Level_based.factory trace
  in
  (match Parallel.Executor.check trace r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e);
  check_int "all tasks executed" n r.Parallel.Executor.tasks_executed;
  Array.iteri (fun u h -> check_int (Printf.sprintf "task %d ran once" u) 1 h) hits;
  (* the chained prefix is only correct if each body observed the
     previous body's write before running *)
  Array.iteri (fun u p -> check_int (Printf.sprintf "prefix at %d" u) u p) prefix

let run_task_failure_propagates () =
  let trace = Workload.Pathological.deep_chain ~n:4 in
  let run_task ~wid:_ u = if u = 2 then failwith "boom" in
  match
    Parallel.Executor.run ~domains:2 ~work_unit:0.0 ~run_task
      ~sched:Sched.Level_based.factory trace
  with
  | exception Failure msg ->
    let mentions s msg =
      let n = String.length msg and m = String.length s in
      let rec find i = i + m <= n && (String.sub msg i m = s || find (i + 1)) in
      find 0
    in
    check_bool "names the task" true (mentions "task 2" msg);
    check_bool "carries the exception" true (mentions "boom" msg)
  | _ -> Alcotest.fail "expected the body's exception to surface as Failure"

(* ---- frozen relations under concurrent domain reads ---- *)

(* Regression for the lazy-index hazard: two domains probing a frozen
   relation concurrently. Both the pre-built path (Relation.prepare)
   and the racing-builders path (no prepare; both domains trigger the
   index build and publish atomically) must serve exactly the right
   buckets. Under tsan/an unsound index publication this test is the
   one that trips. *)
let frozen_relation_concurrent_reads () =
  let n = 400 in
  let check_reads ~prepared () =
    let r = Datalog.Relation.create ~arity:2 in
    for i = 0 to n - 1 do
      ignore (Datalog.Relation.add r [| i mod 20; i |])
    done;
    if prepared then Datalog.Relation.prepare ~cols:[ 0 ] r;
    let hammer () =
      let total = ref 0 in
      for _ = 1 to 200 do
        for v = 0 to 19 do
          Datalog.Relation.iter_matching r ~col:0 ~value:v (fun _ -> incr total)
        done
      done;
      !total
    in
    let d1 = Domain.spawn hammer and d2 = Domain.spawn hammer in
    let t1 = Domain.join d1 and t2 = Domain.join d2 in
    check_int (Printf.sprintf "domain 1 (prepared=%b)" prepared) (200 * n) t1;
    check_int (Printf.sprintf "domain 2 (prepared=%b)" prepared) (200 * n) t2
  in
  check_reads ~prepared:true ();
  check_reads ~prepared:false ()

(* ---- tiny 2-domain maintenance parity, riding `make test` ---- *)

let parallel_maintenance_smoke () =
  let src =
    "edge(\"a\",\"b\"). edge(\"b\",\"c\"). edge(\"c\",\"d\"). edge(\"d\",\"e\").\n\
     path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n\
     node(X) :- edge(X,Y).\nnode(Y) :- edge(X,Y).\n\
     unreach(X,Y) :- node(X), node(Y), !path(X,Y), X != Y.\n"
  in
  let program = Datalog.Parser.parse src in
  let load () =
    let db = Datalog.Database.create () in
    let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
    db
  in
  let adds = [ Datalog.Parser.parse_atom {|edge("e","a")|} ] in
  let dels = [ Datalog.Parser.parse_atom {|edge("b","c")|} ] in
  let serial = load () and par = load () in
  let _ = Datalog.Incremental.apply serial program ~additions:adds ~deletions:dels in
  let _ =
    Datalog.Incremental.apply_parallel ~domains:2 par program ~additions:adds
      ~deletions:dels
  in
  match Datalog.Eval.databases_agree serial par with
  | Ok () -> ()
  | Error e -> Alcotest.failf "parallel maintenance diverged: %s" e

let agrees_with_simulator_counts () =
  let trace = Workload.Pathological.broom ~spine:15 ~fan:20 in
  let r = run_checked trace Sched.Hybrid.factory in
  let sim =
    Simulator.Engine.run
      ~config:{ Simulator.Engine.procs = 3; op_cost = 0.0; record_log = false }
      ~sched:Sched.Hybrid.factory trace
  in
  check_int "same execution count"
    sim.Simulator.Engine.metrics.Simulator.Metrics.tasks_executed
    r.Parallel.Executor.tasks_executed

let () =
  Alcotest.run "parallel"
    [
      ( "executor",
        [
          test `Quick "all schedulers valid on real domains" all_schedulers_valid;
          test `Quick "partial activation respected" partial_activation_respected;
          test `Quick "precedence on wall clock" precedence_on_wallclock;
          test `Quick "deadlock detected" deadlock_detected;
          test `Quick "work accounting" work_accounting;
          test `Quick "agrees with the simulator" agrees_with_simulator_counts;
        ] );
      ( "run-task",
        [
          test `Quick "bodies execute once, ordered" run_task_bodies_execute_once;
          test `Quick "body failure propagates" run_task_failure_propagates;
        ] );
      ( "maintenance",
        [
          test `Quick "frozen relation: concurrent reads" frozen_relation_concurrent_reads;
          test `Quick "2-domain maintenance parity" parallel_maintenance_smoke;
        ] );
      ( "stress",
        [
          test `Quick "random traces x domains x schedulers" stress_matrix;
          test `Quick "unsafe release detected" unsafe_release_detected;
        ] );
    ]
