(** Session loop for [dms serve]: reads protocol lines, executes them
    against an {!Engine}, writes replies.

    Every command yields zero or more data lines plus one [ok]/[err]
    terminator; a malformed line is an [err] reply and the session
    continues. In async mode, commits run on a background domain and
    their results surface as [note] lines prepended to the next
    reply. *)

type t

val create : ?async:bool -> Engine.t -> t
(** [async] (default false): [commit] returns immediately and the
    maintenance runs on a background domain, with overlapping commit
    requests coalesced (see {!Engine.commit_async}). *)

val handle_line : t -> string -> string list * bool
(** Execute one client line; returns the reply lines and whether the
    session should end ([quit]). Blank lines and [#] comments yield
    [([], false)]. Never raises on malformed input — errors become
    [err] replies. *)

val run_channels : t -> in_channel -> out_channel -> bool
(** Serve one session until [quit] or EOF, flushing after every
    command; waits out background commits before returning. [true] iff
    the client said [quit] (rather than hanging up). *)

val serve_socket : t -> string -> unit
(** Bind a Unix domain socket at the given path (unlinking any stale
    one) and serve client connections sequentially; a client sending
    [quit] stops the whole server (EOF only ends that connection). *)
