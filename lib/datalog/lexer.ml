type token =
  | IDENT of string
  | VAR of string
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE
  | BANG
  | OP of Ast.cmp
  | EOF

type located = { token : token; line : int; col : int }

exception Error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error (st : state) message =
  raise (Error { line = st.line; col = st.col; message })

let is_digit c = c >= '0' && c <= '9'

let is_lower c = c >= 'a' && c <= 'z'

let is_upper c = c >= 'A' && c <= 'Z'

let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '_'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '%' -> skip_line st
  | Some '/' when peek2 st = Some '/' -> skip_line st
  | Some _ | None -> ()

and skip_line st =
  (match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
    advance st;
    skip_line st);
  match peek st with
  | Some '\n' ->
    advance st;
    skip_trivia st
  | Some _ | None -> skip_trivia st

let lex_while st pred =
  let start = st.pos in
  while (match peek st with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
      | Some ('"' | '\\') ->
        Buffer.add_char buf (Option.get (peek st));
        advance st;
        go ()
      | Some c -> error st (Printf.sprintf "bad escape '\\%c'" c)
      | None -> error st "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col in
  let mk token = { token; line; col } in
  match peek st with
  | None -> mk EOF
  | Some '(' -> advance st; mk LPAREN
  | Some ')' -> advance st; mk RPAREN
  | Some ',' -> advance st; mk COMMA
  | Some '.' -> advance st; mk PERIOD
  | Some ':' ->
    advance st;
    if peek st = Some '-' then begin
      advance st;
      mk TURNSTILE
    end
    else error st "expected ':-'"
  | Some '!' ->
    advance st;
    if peek st = Some '=' then begin
      advance st;
      mk (OP Ast.Neq)
    end
    else mk BANG
  | Some '=' -> advance st; mk (OP Ast.Eq)
  | Some '<' ->
    advance st;
    if peek st = Some '=' then begin
      advance st;
      mk (OP Ast.Le)
    end
    else mk (OP Ast.Lt)
  | Some '>' ->
    advance st;
    if peek st = Some '=' then begin
      advance st;
      mk (OP Ast.Ge)
    end
    else mk (OP Ast.Gt)
  | Some '"' -> mk (STRING (lex_string st))
  | Some '-' ->
    advance st;
    if (match peek st with Some c -> is_digit c | None -> false) then
      mk (INT (-int_of_string (lex_while st is_digit)))
    else error st "expected digits after '-'"
  | Some c when is_digit c -> mk (INT (int_of_string (lex_while st is_digit)))
  | Some c when is_lower c -> mk (IDENT (lex_while st is_ident_char))
  | Some c when is_upper c || c = '_' -> mk (VAR (lex_while st is_ident_char))
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.token = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | VAR s -> Format.fprintf ppf "variable %S" s
  | INT i -> Format.fprintf ppf "integer %d" i
  | STRING s -> Format.fprintf ppf "string %S" s
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | COMMA -> Format.pp_print_string ppf "','"
  | PERIOD -> Format.pp_print_string ppf "'.'"
  | TURNSTILE -> Format.pp_print_string ppf "':-'"
  | BANG -> Format.pp_print_string ppf "'!'"
  | OP _ -> Format.pp_print_string ppf "comparison operator"
  | EOF -> Format.pp_print_string ppf "end of input"
