lib/datalog/aggregate.ml: Array Ast Hashtbl List Matcher Option Printf Symbol
