lib/workload/pathological.mli: Trace
