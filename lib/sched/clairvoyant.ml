type t = {
  in_w : Prelude.Bitset.t; (* the active set W, precomputed *)
  h_pending : int array; (* unfinished H-parents per W-node *)
  ready : (float * Intf.task) Prelude.Heap.t; (* (-remaining span, task) *)
  started : Prelude.Bitset.t;
  g : Dag.Graph.t;
  edge_changed : int -> bool;
  ops : Intf.ops;
}

(* W = closure of [initial] under changed edges. *)
let active_closure g ~initial ~edge_changed =
  let n = Dag.Graph.node_count g in
  let in_w = Prelude.Bitset.create n in
  let queue = Queue.create () in
  Array.iter
    (fun s ->
      if not (Prelude.Bitset.mem in_w s) then begin
        Prelude.Bitset.add in_w s;
        Queue.add s queue
      end)
    initial;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Dag.Graph.iter_succ g u (fun ~dst ~eid ->
        if edge_changed eid && not (Prelude.Bitset.mem in_w dst) then begin
          Prelude.Bitset.add in_w dst;
          Queue.add dst queue
        end)
  done;
  in_w

(* Remaining critical path within H from each W-node (inclusive). *)
let remaining_span g ~in_w ~edge_changed ~work =
  let order = Dag.Topo.sort_exn g in
  let n = Dag.Graph.node_count g in
  let span = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let u = order.(i) in
    if Prelude.Bitset.mem in_w u then begin
      let best = ref 0.0 in
      Dag.Graph.iter_succ g u (fun ~dst ~eid ->
          if edge_changed eid && Prelude.Bitset.mem in_w dst && span.(dst) > !best
          then best := span.(dst));
      span.(u) <- work.(u) +. !best
    end
  done;
  span

let make ?ops ~initial ~edge_changed ~work g =
  let n = Dag.Graph.node_count g in
  if Array.length work <> n then invalid_arg "Clairvoyant.make: work length";
  let ops = match ops with Some o -> o | None -> Intf.zero_ops () in
  let in_w = active_closure g ~initial ~edge_changed in
  let span = remaining_span g ~in_w ~edge_changed ~work in
  let h_pending = Array.make n 0 in
  for u = 0 to n - 1 do
    if Prelude.Bitset.mem in_w u then
      Dag.Graph.iter_pred g u (fun ~src ~eid ->
          if edge_changed eid && Prelude.Bitset.mem in_w src then
            h_pending.(u) <- h_pending.(u) + 1)
  done;
  let cmp (a, u) (b, v) = if a = b then compare u v else compare a b in
  let t =
    {
      in_w;
      h_pending;
      ready = Prelude.Heap.create ~cmp ~dummy:(0.0, 0) ();
      started = Prelude.Bitset.create n;
      g;
      edge_changed;
      ops;
    }
  in
  Prelude.Bitset.iter
    (fun u ->
      if h_pending.(u) = 0 then Prelude.Heap.push t.ready (-.span.(u), u))
    in_w;
  let rec pop () =
    match Prelude.Heap.pop t.ready with
    | None -> None
    | Some (_, u) -> if Prelude.Bitset.mem t.started u then pop () else Some u
  in
  {
    Intf.name = "Clairvoyant";
    on_activated = (fun _ -> ());
    on_started = (fun u -> Prelude.Bitset.add t.started u);
    on_completed =
      (fun u ->
        Dag.Graph.iter_succ t.g u (fun ~dst ~eid ->
            if t.edge_changed eid && Prelude.Bitset.mem t.in_w dst then begin
              t.h_pending.(dst) <- t.h_pending.(dst) - 1;
              t.ops.Intf.bucket_ops <- t.ops.Intf.bucket_ops + 1;
              if t.h_pending.(dst) = 0 then
                Prelude.Heap.push t.ready (-.span.(dst), dst)
            end));
    next_ready = pop;
    next_ready_into = None;
    ops;
    memory_words = (fun () -> 3 * n);
  }
