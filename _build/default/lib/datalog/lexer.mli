(** Hand-written Datalog lexer.

    Tokens: lowercase identifiers (predicate/constant symbols),
    uppercase-or-underscore-initial identifiers (variables), integers,
    double-quoted strings (constant symbols), punctuation
    [( ) , . :- ! = != < <= > >=]. Comments run from ['%'] or ["//"] to
    end of line. *)

type token =
  | IDENT of string  (** lowercase-initial identifier *)
  | VAR of string  (** uppercase- or [_]-initial identifier *)
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE  (** [:-] *)
  | BANG
  | OP of Ast.cmp
  | EOF

type located = { token : token; line : int; col : int }

exception Error of { line : int; col : int; message : string }

val tokenize : string -> located list
(** @raise Error on invalid input. *)

val pp_token : Format.formatter -> token -> unit
