lib/dag/dot.ml: Format Graph
