lib/workload/paper_traces.ml: Array Float Prelude Printf Synthetic Trace
