type t = int array

let make n = Array.make n 0

let length = Array.length

external get : t -> int -> int = "prelude_aia_get" [@@noalloc]

external set : t -> int -> int -> unit = "prelude_aia_set" [@@noalloc]

external cas : t -> int -> int -> int -> bool = "prelude_aia_cas" [@@noalloc]
