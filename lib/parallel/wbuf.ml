(* A bounded FIFO ring of task ids guarded by a tiny test-and-set
   spinlock. The owner pushes refilled batches and pops from the front;
   idle peers steal the front half. Every operation is a handful of
   loads and stores, and contention is rare (a thief only shows up when
   it has nothing else to do), so a spinlock beats both a Mutex (futex
   round-trip) and a lock-free deque (fences on the owner's fast path)
   at this scale. *)

type t = {
  lock : int Atomic.t;
  slots : int array;
  mask : int;
  mutable head : int; (* pop end; slots in [head, tail) are live *)
  mutable tail : int;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create capacity =
  if capacity < 1 then invalid_arg "Wbuf.create: capacity < 1";
  let cap = next_pow2 capacity 1 in
  { lock = Atomic.make 0; slots = Array.make cap 0; mask = cap - 1; head = 0; tail = 0 }

let capacity t = t.mask + 1

let acquire t =
  while not (Atomic.compare_and_set t.lock 0 1) do
    Domain.cpu_relax ()
  done

let release t = Atomic.set t.lock 0

let length t = t.tail - t.head

(* Owner only. Returns how many of [tasks.(off .. off+len-1)] were
   accepted (all of them unless the ring is full). *)
let push_batch t tasks off len =
  acquire t;
  let room = capacity t - length t in
  let n = min len room in
  for i = 0 to n - 1 do
    t.slots.((t.tail + i) land t.mask) <- tasks.(off + i)
  done;
  t.tail <- t.tail + n;
  release t;
  n

(* Returns -1 when empty: the pop is the owner's per-task fast path,
   and an option would allocate on every success. Task ids are node
   ids, always >= 0. *)
let pop t =
  acquire t;
  let r =
    if t.head = t.tail then -1
    else begin
      let u = t.slots.(t.head land t.mask) in
      t.head <- t.head + 1;
      u
    end
  in
  release t;
  r

(* Owner only. Pop up to [max] tasks from the front into
   [tasks.(0 .. n-1)], returning [n]. One lock round-trip amortized
   over the whole batch; keep [max] modest so most of the ring stays
   visible to thieves. *)
let pop_batch t tasks max =
  acquire t;
  let n = min max (length t) in
  for i = 0 to n - 1 do
    tasks.(i) <- t.slots.((t.head + i) land t.mask)
  done;
  t.head <- t.head + n;
  release t;
  n

(* Steal the front half (at least one) of [victim] into [tasks],
   returning the count. Called by a thief; [tasks] must have room for
   [capacity victim] entries. Locks only the victim — the thief's own
   ring is touched by its owner afterwards, so no lock ordering issue
   can arise. *)
let steal_into victim tasks =
  acquire victim;
  let len = length victim in
  let n = if len = 0 then 0 else (len + 1) / 2 in
  for i = 0 to n - 1 do
    tasks.(i) <- victim.slots.((victim.head + i) land victim.mask)
  done;
  victim.head <- victim.head + n;
  release victim;
  n
