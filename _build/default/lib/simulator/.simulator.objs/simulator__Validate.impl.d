lib/simulator/validate.ml: Array Dag Engine Prelude Printf Result Workload
