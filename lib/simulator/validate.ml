let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let check_coverage (trace : Workload.Trace.t) (log : Engine.log_entry array) =
  let w = Workload.Trace.active_set trace in
  let seen = Prelude.Bitset.create (Dag.Graph.node_count trace.graph) in
  let rec entries i =
    if i >= Array.length log then Ok ()
    else begin
      let e = log.(i) in
      if not (Prelude.Bitset.mem w e.Engine.task) then
        err "task %d executed but not in the active set" e.Engine.task
      else if Prelude.Bitset.mem seen e.Engine.task then
        err "task %d executed twice" e.Engine.task
      else begin
        Prelude.Bitset.add seen e.Engine.task;
        entries (i + 1)
      end
    end
  in
  let* () = entries 0 in
  if Prelude.Bitset.cardinal seen <> Prelude.Bitset.cardinal w then
    err "executed %d tasks but the active set has %d"
      (Prelude.Bitset.cardinal seen)
      (Prelude.Bitset.cardinal w)
  else Ok ()

let check_times (trace : Workload.Trace.t) (log : Engine.log_entry array) =
  let eps = 1e-9 in
  let rec go i =
    if i >= Array.length log then Ok ()
    else begin
      let e = log.(i) in
      let span =
        match trace.kind.(e.Engine.task) with
        | Workload.Trace.Predicate -> 0.0
        | Workload.Trace.Task -> Workload.Trace.shape_span trace.shape.(e.Engine.task)
      in
      if e.Engine.start > e.Engine.finish +. eps then
        err "task %d starts after it finishes" e.Engine.task
      else if e.Engine.finish -. e.Engine.start +. eps < span then
        err "task %d ran for %.9f but its span is %.9f" e.Engine.task
          (e.Engine.finish -. e.Engine.start)
          span
      else go (i + 1)
    end
  in
  go 0

let check_precedence (trace : Workload.Trace.t) (log : Engine.log_entry array) =
  let w = Workload.Trace.active_set trace in
  let g = trace.graph in
  let n = Dag.Graph.node_count g in
  let finish = Array.make n infinity in
  Array.iter (fun e -> finish.(e.Engine.task) <- e.Engine.finish) log;
  (* [latest.(u)]: the max finish time over u's proper active
     ancestors ([latest_who] the arg max) — a linear forward DP over a
     topological order. An active ancestor that never executed keeps
     finish = infinity and so is flagged, as before. This replaces a
     per-log-entry ancestor BFS (O(V·(V+E)) total, minutes on a
     100k-task chain) with one O(V+E) pass. *)
  let order = Dag.Topo.sort_exn g in
  let latest = Array.make n neg_infinity in
  let latest_who = Array.make n (-1) in
  Array.iter
    (fun u ->
      let own = if Prelude.Bitset.mem w u then finish.(u) else neg_infinity in
      let lu = latest.(u) and wu = latest_who.(u) in
      Dag.Graph.iter_succ g u (fun ~dst ~eid:_ ->
          if own > latest.(dst) then begin
            latest.(dst) <- own;
            latest_who.(dst) <- u
          end;
          if lu > latest.(dst) then begin
            latest.(dst) <- lu;
            latest_who.(dst) <- wu
          end))
    order;
  let eps = 1e-9 in
  let rec go i =
    if i >= Array.length log then Ok ()
    else begin
      let e = log.(i) in
      if latest.(e.Engine.task) > e.Engine.start +. eps then
        let a = latest_who.(e.Engine.task) in
        err "task %d started at %.9f before active ancestor %d finished at %.9f"
          e.Engine.task e.Engine.start a finish.(a)
      else go (i + 1)
    end
  in
  go 0

let check ?(check_spans = true) trace log =
  let* () = check_coverage trace log in
  let* () = if check_spans then check_times trace log else Ok () in
  check_precedence trace log

let check_run trace (r : Engine.run) =
  match r.Engine.log with
  | None -> Error "run recorded no log (set record_log)"
  | Some log -> check trace log
