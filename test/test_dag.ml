(* Tests for the DAG substrate: structure, topological order, levels,
   reachability, interval lists, critical paths, SCC condensation. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* A diamond with a tail:  0 -> 1 -> 3 -> 4,  0 -> 2 -> 3. *)
let diamond () =
  Dag.Graph.of_edges ~nodes:5 [| (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) |]

let chain n = Dag.Graph.of_edges ~nodes:n (Array.init (n - 1) (fun i -> (i, i + 1)))

(* Random DAG generator for properties: nodes 0..n-1, edges only i -> j
   with i < j, so acyclicity holds by construction. *)
let random_dag_gen =
  QCheck.Gen.(
    2 -- 25 >>= fun n ->
    list_size (0 -- (3 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >|= fun pairs ->
    let edges =
      pairs
      |> List.filter_map (fun (a, b) ->
             if a < b then Some (a, b) else if b < a then Some (b, a) else None)
      |> List.sort_uniq compare
    in
    (n, Array.of_list edges))

let random_dag =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b)
              (Array.to_list edges))))
    random_dag_gen

(* ---------- Graph ---------- *)

let graph_basic () =
  let g = diamond () in
  check_int "nodes" 5 (Dag.Graph.node_count g);
  check_int "edges" 5 (Dag.Graph.edge_count g);
  check_int "out 0" 2 (Dag.Graph.out_degree g 0);
  check_int "in 3" 2 (Dag.Graph.in_degree g 3);
  Alcotest.(check (array int)) "succ 0" [| 1; 2 |] (Dag.Graph.succ g 0);
  Alcotest.(check (array int)) "pred 3" [| 1; 2 |] (Dag.Graph.pred g 3);
  Alcotest.(check (array int)) "sources" [| 0 |] (Dag.Graph.sources g);
  Alcotest.(check (array int)) "sinks" [| 4 |] (Dag.Graph.sinks g);
  check_bool "mem_edge" true (Dag.Graph.mem_edge g 0 2);
  check_bool "mem_edge rev" false (Dag.Graph.mem_edge g 2 0)

let graph_edge_ids () =
  let g = diamond () in
  check_int "edge 0 src" 0 (Dag.Graph.edge_src g 0);
  check_int "edge 0 dst" 1 (Dag.Graph.edge_dst g 0);
  check_int "edge 4 src" 3 (Dag.Graph.edge_src g 4);
  check_int "edge 4 dst" 4 (Dag.Graph.edge_dst g 4);
  let count = ref 0 in
  Dag.Graph.iter_edges g (fun ~src:_ ~dst:_ ~eid -> count := !count + eid);
  check_int "edge ids 0..4" 10 !count

let graph_transpose () =
  let g = diamond () in
  let t = Dag.Graph.transpose g in
  Alcotest.(check (array int)) "succ in transpose" [| 1; 2 |] (Dag.Graph.succ t 3);
  check_int "edge src flipped" 1 (Dag.Graph.edge_src t 0);
  check_int "edge dst flipped" 0 (Dag.Graph.edge_dst t 0);
  Alcotest.(check (array int)) "sources of transpose = sinks" [| 4 |]
    (Dag.Graph.sources t)

let graph_builder_errors () =
  let b = Dag.Graph.Builder.create ~nodes:2 () in
  Alcotest.check_raises "bad edge"
    (Invalid_argument "Graph.Builder.add_edge: (0,2) with 2 nodes") (fun () ->
      ignore (Dag.Graph.Builder.add_edge b 0 2))

let graph_parallel_edges () =
  let g = Dag.Graph.of_edges ~nodes:2 [| (0, 1); (0, 1) |] in
  check_int "parallel kept" 2 (Dag.Graph.edge_count g);
  check_int "out degree counts both" 2 (Dag.Graph.out_degree g 0)

(* ---------- Topo ---------- *)

let topo_diamond () =
  let g = diamond () in
  match Dag.Topo.sort g with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
    check_bool "valid order" true (Dag.Topo.check_order g order);
    Alcotest.(check (array int)) "deterministic smallest-first" [| 0; 1; 2; 3; 4 |] order

let topo_cycle () =
  let g = Dag.Graph.of_edges ~nodes:3 [| (0, 1); (1, 2); (2, 0) |] in
  check_bool "cycle" false (Dag.Topo.is_dag g);
  Alcotest.check_raises "sort_exn" (Invalid_argument "Topo.sort_exn: graph has a cycle")
    (fun () -> ignore (Dag.Topo.sort_exn g))

let topo_self_loop () =
  let g = Dag.Graph.of_edges ~nodes:2 [| (0, 0); (0, 1) |] in
  check_bool "self loop is a cycle" false (Dag.Topo.is_dag g)

let topo_check_order_rejects () =
  let g = diamond () in
  check_bool "wrong order" false (Dag.Topo.check_order g [| 4; 3; 2; 1; 0 |]);
  check_bool "not a permutation" false (Dag.Topo.check_order g [| 0; 0; 1; 2; 3 |]);
  check_bool "wrong length" false (Dag.Topo.check_order g [| 0; 1; 2 |])

let topo_qcheck =
  QCheck.Test.make ~name:"topo: sort of a random DAG is valid" ~count:300 random_dag
    (fun (n, edges) ->
      let g = Dag.Graph.of_edges ~nodes:n edges in
      match Dag.Topo.sort g with
      | None -> false
      | Some order -> Dag.Topo.check_order g order)

(* ---------- Levels ---------- *)

let levels_diamond () =
  let g = diamond () in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2; 3 |] (Dag.Levels.compute g);
  check_int "count" 4 (Dag.Levels.count (Dag.Levels.compute g));
  Alcotest.(check (array int)) "histogram" [| 1; 2; 1; 1 |]
    (Dag.Levels.histogram (Dag.Levels.compute g))

let levels_longest_path_wins () =
  let g = Dag.Graph.of_edges ~nodes:3 [| (0, 2); (0, 1); (1, 2) |] in
  Alcotest.(check (array int)) "levels" [| 0; 1; 2 |] (Dag.Levels.compute g)

let levels_check () =
  let g = diamond () in
  check_bool "valid" true (Dag.Levels.check g (Dag.Levels.compute g));
  check_bool "invalid" false (Dag.Levels.check g [| 0; 1; 1; 2; 2 |])

let levels_agree_qcheck =
  QCheck.Test.make ~name:"levels: DP equals peeling" ~count:300 random_dag
    (fun (n, edges) ->
      let g = Dag.Graph.of_edges ~nodes:n edges in
      Dag.Levels.compute g = Dag.Levels.compute_by_peeling g)

let levels_valid_qcheck =
  QCheck.Test.make ~name:"levels: computed levels satisfy the invariant" ~count:300
    random_dag (fun (n, edges) ->
      let g = Dag.Graph.of_edges ~nodes:n edges in
      Dag.Levels.check g (Dag.Levels.compute g))

(* ---------- Reach ---------- *)

let reach_diamond () =
  let g = diamond () in
  Alcotest.(check (list int)) "descendants of 0" [ 1; 2; 3; 4 ]
    (Prelude.Bitset.to_list (Dag.Reach.descendants g 0));
  Alcotest.(check (list int)) "ancestors of 3" [ 0; 1; 2 ]
    (Prelude.Bitset.to_list (Dag.Reach.ancestors g 3));
  check_bool "is_ancestor" true (Dag.Reach.is_ancestor g ~anc:0 ~desc:4);
  check_bool "self is not ancestor" false (Dag.Reach.is_ancestor g ~anc:3 ~desc:3);
  check_int "count" 4 (Dag.Reach.count_descendants g 0)

let reach_bounded () =
  let g = chain 10 in
  let levels = Dag.Levels.compute g in
  let within = Dag.Reach.reachable_within g ~seeds:[| 0 |] ~max_level:4 ~levels in
  Alcotest.(check (list int)) "bounded" [ 1; 2; 3; 4 ] (Prelude.Bitset.to_list within)

let reach_set () =
  let g = diamond () in
  let d = Dag.Reach.descendants_of_set g [| 1; 2 |] in
  Alcotest.(check (list int)) "set descendants" [ 3; 4 ] (Prelude.Bitset.to_list d)

(* ---------- Interval lists ---------- *)

let ilist_diamond () =
  let g = diamond () in
  let il = Dag.Interval_list.build g in
  for u = 0 to 4 do
    for v = 0 to 4 do
      let expected = u = v || Dag.Reach.is_ancestor g ~anc:u ~desc:v in
      if Dag.Interval_list.is_descendant il ~of_:u v <> expected then
        Alcotest.failf "wrong verdict for (%d,%d)" u v
    done
  done

let ilist_positions_bijective () =
  let g = diamond () in
  let il = Dag.Interval_list.build g in
  for u = 0 to 4 do
    check_int "inverse" u
      (Dag.Interval_list.node_at il (Dag.Interval_list.position il u))
  done

let ilist_chain_compact () =
  let g = chain 100 in
  let il = Dag.Interval_list.build g in
  for u = 0 to 99 do
    check_int "one interval on a chain" 1 (Dag.Interval_list.interval_count il u)
  done;
  check_int "total" 100 (Dag.Interval_list.total_intervals il)

let ilist_cycle_rejected () =
  let g = Dag.Graph.of_edges ~nodes:2 [| (0, 1); (1, 0) |] in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Interval_list.build: graph has a cycle") (fun () ->
      ignore (Dag.Interval_list.build g))

let ilist_intervals_sorted_disjoint () =
  let g =
    Dag.Graph.of_edges ~nodes:8
      [| (0, 2); (1, 3); (2, 4); (3, 4); (4, 5); (2, 6); (3, 7) |]
  in
  let il = Dag.Interval_list.build g in
  for u = 0 to 7 do
    let ivs = Dag.Interval_list.intervals il u in
    Array.iteri
      (fun i (lo, hi) ->
        if lo > hi then Alcotest.fail "inverted interval";
        if i > 0 then begin
          let _, prev_hi = ivs.(i - 1) in
          if lo <= prev_hi + 1 then Alcotest.fail "overlapping/adjacent intervals"
        end)
      ivs
  done

let ilist_qcheck =
  QCheck.Test.make ~name:"interval list: equals BFS reachability" ~count:200 random_dag
    (fun (n, edges) ->
      let g = Dag.Graph.of_edges ~nodes:n edges in
      let il = Dag.Interval_list.build g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let reach = Dag.Reach.descendants g u in
        for v = 0 to n - 1 do
          let expected = u = v || Prelude.Bitset.mem reach v in
          if Dag.Interval_list.is_descendant il ~of_:u v <> expected then ok := false
        done
      done;
      !ok)

let ilist_transpose_qcheck =
  QCheck.Test.make ~name:"interval list on transpose: ancestor queries" ~count:100
    random_dag (fun (n, edges) ->
      let g = Dag.Graph.of_edges ~nodes:n edges in
      let il = Dag.Interval_list.build (Dag.Graph.transpose g) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let expected = u = v || Dag.Reach.is_ancestor g ~anc:v ~desc:u in
          if Dag.Interval_list.is_descendant il ~of_:u v <> expected then ok := false
        done
      done;
      !ok)

(* ---------- Critical path ---------- *)

let critical_chain () =
  let g = chain 4 in
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "length" 10.0 (Dag.Critical_path.length g ~weights);
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Dag.Critical_path.path g ~weights)

let critical_diamond () =
  let g = diamond () in
  let weights = [| 1.0; 5.0; 1.0; 1.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "heavy branch wins" 8.0
    (Dag.Critical_path.length g ~weights);
  Alcotest.(check (list int)) "path through 1" [ 0; 1; 3; 4 ]
    (Dag.Critical_path.path g ~weights)

let critical_empty () =
  let g = Dag.Graph.empty 0 in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Dag.Critical_path.length g ~weights:[||])

(* ---------- SCC ---------- *)

let scc_cycle () =
  let g = Dag.Graph.of_edges ~nodes:4 [| (0, 1); (1, 2); (2, 0); (2, 3) |] in
  let c = Dag.Scc.condense g in
  check_int "two components" 2 c.Dag.Scc.count;
  check_int "condensed nodes" 2 (Dag.Graph.node_count c.Dag.Scc.dag);
  check_int "condensed edges" 1 (Dag.Graph.edge_count c.Dag.Scc.dag);
  check_bool "condensation is a DAG" true (Dag.Topo.is_dag c.Dag.Scc.dag);
  check_bool "0,1,2 together" true
    (c.Dag.Scc.component.(0) = c.Dag.Scc.component.(1)
    && c.Dag.Scc.component.(1) = c.Dag.Scc.component.(2));
  check_bool "3 separate" true (c.Dag.Scc.component.(3) <> c.Dag.Scc.component.(0))

let scc_dag_is_identity () =
  let g = diamond () in
  let c = Dag.Scc.condense g in
  check_int "components" 5 c.Dag.Scc.count;
  Array.iter
    (fun members -> check_int "singleton" 1 (Array.length members))
    c.Dag.Scc.members

let scc_self_loop_not_trivial () =
  let g = Dag.Graph.of_edges ~nodes:2 [| (0, 0); (0, 1) |] in
  let c = Dag.Scc.condense g in
  check_int "two comps" 2 c.Dag.Scc.count;
  check_bool "self-loop comp is recursive" false
    (Dag.Scc.is_trivial g c c.Dag.Scc.component.(0));
  check_bool "other comp trivial" true (Dag.Scc.is_trivial g c c.Dag.Scc.component.(1))

let scc_qcheck_partition =
  QCheck.Test.make ~name:"scc: members partition nodes, condensation acyclic"
    ~count:200
    QCheck.(
      pair (2 -- 20) (list_of_size Gen.(0 -- 60) (pair (int_bound 19) (int_bound 19))))
    (fun (n, pairs) ->
      let edges =
        List.filter (fun (a, b) -> a < n && b < n && a <> b) pairs |> Array.of_list
      in
      let g = Dag.Graph.of_edges ~nodes:n edges in
      let c = Dag.Scc.condense g in
      let seen = Array.make n 0 in
      Array.iter (Array.iter (fun u -> seen.(u) <- seen.(u) + 1)) c.Dag.Scc.members;
      Array.for_all (fun k -> k = 1) seen && Dag.Topo.is_dag c.Dag.Scc.dag)

let scc_qcheck_mutual_reach =
  QCheck.Test.make ~name:"scc: same component iff mutually reachable" ~count:100
    QCheck.(
      pair (2 -- 12) (list_of_size Gen.(0 -- 40) (pair (int_bound 11) (int_bound 11))))
    (fun (n, pairs) ->
      let edges =
        List.filter (fun (a, b) -> a < n && b < n && a <> b) pairs |> Array.of_list
      in
      let g = Dag.Graph.of_edges ~nodes:n edges in
      let comp, _ = Dag.Scc.components g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let du = Dag.Reach.descendants g u in
        for v = 0 to n - 1 do
          if u <> v then begin
            let dv = Dag.Reach.descendants g v in
            let mutual = Prelude.Bitset.mem du v && Prelude.Bitset.mem dv u in
            if comp.(u) = comp.(v) <> mutual then ok := false
          end
        done
      done;
      !ok)

(* ---------- Dot ---------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec find i = i + nl <= hl && (String.sub haystack i nl = needle || find (i + 1)) in
  find 0

let dot_output () =
  let g = chain 3 in
  let out = Format.asprintf "%a" (fun ppf g -> Dag.Dot.pp ppf g) g in
  check_bool "has digraph" true (contains out "digraph G");
  check_bool "has edge" true (contains out "n0 -> n1");
  check_bool "has node" true (contains out "n2 [label=")

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "dag"
    [
      ( "graph",
        [
          test `Quick "basic structure" graph_basic;
          test `Quick "edge ids" graph_edge_ids;
          test `Quick "transpose" graph_transpose;
          test `Quick "builder errors" graph_builder_errors;
          test `Quick "parallel edges kept" graph_parallel_edges;
        ] );
      ( "topo",
        [
          test `Quick "diamond" topo_diamond;
          test `Quick "cycle detection" topo_cycle;
          test `Quick "self loop" topo_self_loop;
          test `Quick "check_order rejects" topo_check_order_rejects;
        ]
        @ qsuite [ topo_qcheck ] );
      ( "levels",
        [
          test `Quick "diamond" levels_diamond;
          test `Quick "longest path wins" levels_longest_path_wins;
          test `Quick "validity checker" levels_check;
        ]
        @ qsuite [ levels_agree_qcheck; levels_valid_qcheck ] );
      ( "reach",
        [
          test `Quick "diamond" reach_diamond;
          test `Quick "bounded BFS" reach_bounded;
          test `Quick "descendants of a set" reach_set;
        ] );
      ( "interval-list",
        [
          test `Quick "diamond exact" ilist_diamond;
          test `Quick "positions bijective" ilist_positions_bijective;
          test `Quick "chain is compact" ilist_chain_compact;
          test `Quick "cycles rejected" ilist_cycle_rejected;
          test `Quick "intervals sorted and disjoint" ilist_intervals_sorted_disjoint;
        ]
        @ qsuite [ ilist_qcheck; ilist_transpose_qcheck ] );
      ( "critical-path",
        [
          test `Quick "chain" critical_chain;
          test `Quick "diamond" critical_diamond;
          test `Quick "empty graph" critical_empty;
        ] );
      ( "scc",
        [
          test `Quick "cycle collapses" scc_cycle;
          test `Quick "DAG is identity" scc_dag_is_identity;
          test `Quick "self loop recursive" scc_self_loop_not_trivial;
        ]
        @ qsuite [ scc_qcheck_partition; scc_qcheck_mutual_reach ] );
      ("dot", [ test `Quick "emits nodes and edges" dot_output ]);
    ]
