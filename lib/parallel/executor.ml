module Vatomic = Prelude.Vatomic

type task_record = { task : int; start : float; finish : float; worker : int }

type result = {
  wall_makespan : float;
  tasks_executed : int;
  tasks_activated : int;
  ops : Sched.Intf.ops;
  worker_ops : Sched.Intf.ops array;
  log : task_record array;
  work_executed : float;
  steals : int;
}

(* Task lifecycle, CAS-driven:

     Inactive --activate--> Active --claim--> Running --finish--> Done

   [activate] is raced by every completing parent with a changed edge;
   the CAS guarantees exactly one wins and delivers [on_activated].
   [claim] happens when the executor accepts a task released by the
   scheduler; a failed claim CAS means the scheduler released a task
   that was never activated, was already claimed, or already ran —
   the safety violations the seed executor caught under its big lock,
   now caught without one. *)
let inactive = 0

let active = 1

let running = 2

let done_ = 3

(* Per-worker execution log as three flat arrays. The obvious
   [task_record Vec.t] costs a record block plus two boxed floats per
   task — measurable at dispatch rates of ~1M tasks/s — whereas float
   array stores are unboxed. Records are materialised once, at join. *)
type tlog = {
  mutable t_task : int array;
  mutable t_start : float array;
  mutable t_finish : float array;
  mutable t_len : int;
}

let tlog_create capacity =
  let cap = max 1024 capacity in
  { t_task = Array.make cap 0;
    t_start = Array.make cap 0.0;
    t_finish = Array.make cap 0.0;
    t_len = 0 }

let tlog_grow l =
  let cap = Array.length l.t_task in
  let nt = Array.make (2 * cap) 0
  and ns = Array.make (2 * cap) 0.0
  and nf = Array.make (2 * cap) 0.0 in
  Array.blit l.t_task 0 nt 0 l.t_len;
  Array.blit l.t_start 0 ns 0 l.t_len;
  Array.blit l.t_finish 0 nf 0 l.t_len;
  l.t_task <- nt;
  l.t_start <- ns;
  l.t_finish <- nf

let[@inline] tlog_push l task start finish =
  if l.t_len = Array.length l.t_task then tlog_grow l;
  let i = l.t_len in
  l.t_task.(i) <- task;
  l.t_start.(i) <- start;
  l.t_finish.(i) <- finish;
  l.t_len <- i + 1

let run ?(domains = 4) ?(work_unit = 1e-4) ?(batch = 64) ?run_task
    ?(obs = Obs.Trace.disabled) ~sched (trace : Workload.Trace.t) =
  if domains < 1 then invalid_arg "Executor.run: need at least one domain";
  if batch < 1 then invalid_arg "Executor.run: need a positive batch";
  let g = trace.Workload.Trace.graph in
  let n = Dag.Graph.node_count g in
  (* a real task body replaces the simulated duration entirely; spin
     calibration would only waste startup time *)
  let timed = work_unit > 0.0 && Option.is_none run_task in
  if timed then Spinwork.calibrate ();
  (* per-worker observability rings: [Ring.null] (emit = one branch)
     when tracing is off, so every instrumentation site below stays
     unconditional on the hot path *)
  let rings = Array.init domains (Obs.Trace.ring obs) in
  let psched = Sched.Protected.make ~rings ~workers:domains sched g in
  (* flat atomic status array: one cache line touch per transition
     instead of a pointer chase into a boxed [Atomic.t] per task.
     Ordering: loads acquire, final-state stores release, lifecycle
     CASes SC — see the transition comments below and the stub header.
     Routed through Vatomic so the analysis build can interleave the
     claim/activate races deterministically. *)
  let status = Vatomic.Int_array.make n in
  (* [activated]: SC counter; must be incremented before the winning
     activation is delivered to the scheduler so [terminated] can never
     see completed > activated (see [terminated]) *)
  let activated = Vatomic.make 0 in
  (* [failure]: one-shot publication; the CAS in [fail] is SC, readers
     only need the acquire of [get] to see the message contents *)
  let failure = Vatomic.make None in
  (* Parking lot: an eventcount plus one mutex/condvar pair used only
     for sleeping. Any publication of work increments [events] first;
     an idle worker snapshots [events] before its last search and only
     sleeps if no event intervened, so wakeups cannot be lost. Wakers
     signal exactly as many workers as they have spare cores for
     (broadcast only on termination or failure) — no thundering herd,
     and no churn when the host is oversubscribed. *)
  (* [events]/[parked]: both must be SC — the park/wake protocol's
     correctness argument (in [park] below) is a classic store-buffering
     pattern: waker writes events then reads parked, parker writes
     parked then reads events; with anything weaker than SC both could
     read stale values and a wakeup would be lost. This is the pair the
     analysis build's park/wake scenario exercises. *)
  let events = Vatomic.make 0 in
  let parked = Vatomic.make 0 in
  let pmutex = Mutex.create () in
  let pcond = Condition.create () in
  let cores = Domain.recommended_domain_count () in
  (* How many sleeping workers a core could actually run right now.
     Waking beyond this just burns context switches: on a fully loaded
     (or single-core) host the woken worker preempts the one holding
     the work. Racy reads are fine — this gates an optimisation, never
     progress (an unwoken parker is woken at the next event or at
     termination, and any non-parked worker drains the scheduler by
     itself). *)
  let wake_budget () =
    let sleeping = Vatomic.get parked in
    if sleeping = 0 then 0
    else
      let active_workers = domains - sleeping in
      if active_workers >= cores then 0 else min sleeping (cores - active_workers)
  in
  let wake k =
    if k > 0 && Vatomic.get parked > 0 then begin
      Mutex.lock pmutex;
      let p = Vatomic.get parked in
      if p > 0 then
        if k >= p then Condition.broadcast pcond
        else
          for _ = 1 to k do
            Condition.signal pcond
          done;
      Mutex.unlock pmutex
    end
  in
  let wake_all () =
    Vatomic.incr events;
    Mutex.lock pmutex;
    Condition.broadcast pcond;
    Mutex.unlock pmutex
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        ignore (Vatomic.compare_and_set failure None (Some msg));
        wake_all ())
      fmt
  in
  let park ring e =
    let t0 =
      if Obs.Ring.enabled ring then Prelude.Mclock.now () else 0.0
    in
    Mutex.lock pmutex;
    (* order matters: register as parked *before* re-checking the
       eventcount. A waker increments [events] before reading [parked];
       with both atomics sequentially consistent, either we see its
       event here and skip the sleep, or it sees our registration and
       signals — a lost wakeup would need both reads to miss. *)
    Vatomic.incr parked;
    while Vatomic.get events = e do
      Condition.wait pcond pmutex
    done;
    Vatomic.decr parked;
    Mutex.unlock pmutex;
    if Obs.Ring.enabled ring then
      Obs.Ring.emit ring ~kind:Obs.Event.park ~a:0 ~b:(Obs.Ring.ns_of ring t0)
  in
  (* [completed] is incremented inside the scheduler critical section
     (after the batch's activations were both counted in [activated]
     and delivered), so completed <= activated always, and equality
     means every activated task has fully completed: the termination
     test. Read completed first — activated can only have grown since,
     so a stale equal pair still implies a true equal pair. *)
  let terminated () =
    let c = Sched.Protected.completed psched in
    c = Vatomic.get activated
  in
  (* initial activations: no concurrency yet *)
  Array.iter
    (fun u ->
      Vatomic.Int_array.set status u active;
      Vatomic.incr activated)
    trace.Workload.Trace.initial;
  Sched.Protected.activate psched ~wid:0 trace.Workload.Trace.initial;
  let bufs = Array.init domains (fun _ -> Wbuf.create batch) in
  let cap = Wbuf.capacity bufs.(0) in
  (* size the per-worker logs so steady-state pushes never grow the
     arrays mid-dispatch: total log entries across workers is bounded
     by the node count *)
  let logs = Array.init domains (fun _ -> tlog_create ((n / domains) + 1)) in
  let works = Array.make domains 0.0 in
  let steal_counts = Array.make domains 0 in
  let edge_changed = trace.Workload.Trace.edge_changed in
  (* per-task work cost, flattened once: [Trace.work] chases a shape
     block per call, which is a cache miss on big traces *)
  let workv = Array.init n (fun u -> Workload.Trace.work trace u) in
  let soff, sdst, seid = Dag.Graph.csr_succ g in
  (* Start barrier: every domain finishes spawning and runtime setup
     before the epoch is taken by the last arriver, so the measured
     makespan covers dispatch, not [Domain.spawn]. The mutex hand-off
     publishes [epoch_ref] to all workers. *)
  let arrived = ref 0 in
  let epoch_ref = ref 0.0 in
  let bmutex = Mutex.create () in
  let bcond = Condition.create () in
  let barrier () =
    Mutex.lock bmutex;
    incr arrived;
    if !arrived = domains then begin
      epoch_ref := Prelude.Mclock.now ();
      Condition.broadcast bcond
    end
    else
      while !arrived < domains do
        Condition.wait bcond bmutex
      done;
    Mutex.unlock bmutex
  in
  let worker wid =
    let buf = bufs.(wid) in
    let tmp = Array.make cap 0 in
    let scratch = Array.make cap 0 in
    (* pending completions, flushed to the scheduler in one batched
       critical section: completed tasks in order, their newly
       activated children flattened, and a per-task child count. Flat
       arrays: [comp_tasks]/[counts] are bounded by the batch size,
       [acts] grows (a task can activate any number of children). *)
    let comp_tasks = Array.make cap 0 in
    let counts = Array.make cap 0 in
    let ncomp = ref 0 in
    let acts = ref (Array.make (4 * cap) 0) in
    let nacts = ref 0 in
    let push_act dst =
      if !nacts = Array.length !acts then begin
        let bigger = Array.make (2 * !nacts) 0 in
        Array.blit !acts 0 bigger 0 !nacts;
        acts := bigger
      end;
      !acts.(!nacts) <- dst;
      incr nacts
    in
    (* spinning before parking only pays when a core is actually free
       to produce work meanwhile; oversubscribed, it steals the CPU
       from the worker it is waiting on — park immediately instead *)
    let backoff =
      Prelude.Backoff.create ~limit:(if domains > cores then 0 else 10) ()
    in
    let log = logs.(wid) in
    let ring = Array.unsafe_get rings wid in
    let traced = Obs.Ring.enabled ring in
    barrier ();
    let epoch = !epoch_ref in
    (* One clock read per task: a task's recorded start is the previous
       time stamp on this worker — the preceding task's finish, or the
       moment its batch was obtained from the scheduler (refill/steal),
       whichever came last. This understates the true start by at most
       the executor's own per-task overhead, and it can never violate
       precedence in the log: a task only enters this worker's ring at
       a refill (or steal) that happened after every activating
       parent's completion was flushed, and that refill re-stamps the
       clock — so recorded start >= refill stamp >= parent's recorded
       finish. Kept in a one-element float array: a [float ref] boxes
       every store (3 words per task), and on a saturated host that
       allocation rate forces minor collections whose stop-the-world
       handshake must wake every parked domain. *)
    let last_stamp = Array.make 1 0.0 in
    let rec try_activate dst =
      (* acquire load: pairs with the winner's SC CAS / the release
         store of [done_] so the failure branch reads a settled state *)
      match Vatomic.Int_array.get status dst with
      | s when s = inactive ->
        (* SC CAS: the activation race — every completing parent with a
           changed edge attempts it, exactly one transition wins *)
        if Vatomic.Int_array.cas status dst inactive active then begin
          Vatomic.incr activated;
          push_act dst
        end
        else try_activate dst
      | s when s = active -> ()
      | _ -> fail "task %d activated after it ran" dst
    in
    let flush () =
      if !ncomp > 0 then begin
        let nact = !nacts in
        Sched.Protected.complete_batch psched ~wid ~tasks:comp_tasks ~ntasks:!ncomp
          ~acts:!acts ~counts;
        ncomp := 0;
        nacts := 0;
        if terminated () then wake_all ()
        else begin
          (* even an activation-free completion can unlock scheduler-
             gated tasks (e.g. the next level), so always publish the
             event; only signal sleepers when there are activations to
             hand them and spare cores to run them *)
          Vatomic.incr events;
          if nact > 0 then begin
            let k = min nact (wake_budget ()) in
            wake k;
            if traced && k > 0 then
              Obs.Ring.emit ring ~kind:Obs.Event.wake ~a:k ~b:0
          end
        end
      end
    in
    let execute_task u =
      let start = Array.unsafe_get last_stamp 0 in
      let work = Array.unsafe_get workv u in
      (match run_task with
      | None -> if timed then Spinwork.spin (work *. work_unit)
      | Some f -> (
        (* a raising body must not abandon the completion protocol:
           route it through [fail] (every worker exits, Domain.join
           returns) and finish this task normally — leaving it
           unfinished would park peers forever on a dead run *)
        try f ~wid u with e -> fail "task %d raised: %s" u (Printexc.to_string e)));
      let finish = Prelude.Mclock.now () -. epoch in
      Array.unsafe_set last_stamp 0 finish;
      tlog_push log u start finish;
      (* reuse the per-task stamps already taken for the log; [start]
         and [finish] are relative to the barrier epoch *)
      if traced then
        Obs.Ring.emit_at ring
          ~t_ns:(Obs.Ring.ns_of ring (epoch +. finish))
          ~kind:Obs.Event.task ~a:u
          ~b:(Obs.Ring.ns_of ring (epoch +. start));
      works.(wid) <- works.(wid) +. work;
      (* release store: final-state publication; any parent that later
         reads [done_] in [try_activate] must also see this task's side
         effects (additionally ordered by the scheduler lock at flush) *)
      Vatomic.Int_array.set status u done_;
      let before = !nacts in
      let lo = Array.unsafe_get soff u in
      let hi = Array.unsafe_get soff (u + 1) - 1 in
      for j = lo to hi do
        if Array.unsafe_get edge_changed (Array.unsafe_get seid j) then
          try_activate (Array.unsafe_get sdst j)
      done;
      let i = !ncomp in
      comp_tasks.(i) <- u;
      counts.(i) <- !nacts - before;
      ncomp := i + 1;
      (* flush eagerly when this completion activated someone a parked
         peer could pick up on a spare core, or when the batch is full;
         otherwise batches drain at the next refill. On a saturated
         host eager flushing would wake workers that have nowhere to
         run and halve the batch size for nothing. *)
      if !ncomp >= cap || (!nacts > before && wake_budget () > 0) then flush ()
    in
    (* claim a scheduler-released task; a failed CAS is a safety
       violation by the scheduler. SC CAS: the claim must be totally
       ordered against the activation CAS and against other claim
       attempts, so a double release shows up as exactly one failed
       CAS rather than a silent double run. *)
    let claim u =
      if not (Vatomic.Int_array.cas status u active running) then
        fail "scheduler released task %d unsafely" u
    in
    let try_steal () =
      let got = ref 0 in
      let i = ref 1 in
      while !got = 0 && !i < domains do
        let victim = bufs.((wid + !i) mod domains) in
        if Wbuf.length victim > 0 then got := Wbuf.steal_into victim scratch;
        incr i
      done;
      !got
    in
    (* drain the private ring with no shared-state checks at all: every
       task in it is already claimed, and failure/termination are
       re-examined once the ring is empty (a bounded delay). Tasks come
       out a small batch per lock round-trip — large enough to amortize
       the ring spinlock to noise, small enough that thieves still see
       most of the ring *)
    let dq = Array.make 32 0 in
    let rec drain () =
      let k = Wbuf.pop_batch buf dq 32 in
      if k > 0 then begin
        for i = 0 to k - 1 do
          execute_task (Array.unsafe_get dq i)
        done;
        drain ()
      end
    in
    (* Workers beyond the core count park before their first search:
       on an oversubscribed host they could only time-slice against the
       workers already running, adding context switches and GC
       synchronization for zero extra throughput. They are normal
       parkers — woken the moment a flush finds both an activation and
       a spare core for them ([wake_budget]), or at termination.
       Worker 0 never parks here (cores >= 1), so progress and the
       termination broadcast are unaffected. The eventcount snapshot
       must precede the termination test: on a tiny trace worker 0 can
       finish everything before this worker even gets scheduled, and a
       park that missed that final broadcast would sleep forever —
       with the snapshot taken first, the terminating wake_all either
       happens-before the test (seen here) or bumps [events] after the
       snapshot (defeats the park). *)
    if wid >= cores then begin
      let e = Vatomic.get events in
      if (not (terminated ())) && Vatomic.get failure = None then park ring e
    end;
    let rec loop () =
      match Vatomic.get failure with
      | Some _ -> ()
      | None ->
        drain ();
        (* ring is dry: retire pending completions before asking the
           scheduler — they may be exactly what unlocks the next batch
           (and Drained detection requires it) *)
        flush ();
        if terminated () then wake_all ()
        else begin
          (* snapshot the eventcount before the final search; any work
             published after this point bumps it and defeats the park *)
          let e = Vatomic.get events in
          let steal_t0 = if traced then Prelude.Mclock.now () else 0.0 in
          let stolen = try_steal () in
          if traced then
            Obs.Ring.emit ring ~kind:Obs.Event.steal ~a:stolen
              ~b:(Obs.Ring.ns_of ring steal_t0);
          if stolen > 0 then begin
            Prelude.Backoff.reset backoff;
            steal_counts.(wid) <- steal_counts.(wid) + stolen;
            ignore (Wbuf.push_batch buf scratch 0 stolen);
            last_stamp.(0) <- Prelude.Mclock.now () -. epoch;
            loop ()
          end
          else
            match Sched.Protected.refill psched ~wid ~into:tmp with
            | Sched.Protected.Got k ->
              Prelude.Backoff.reset backoff;
              for i = 0 to k - 1 do
                claim tmp.(i)
              done;
              ignore (Wbuf.push_batch buf tmp 0 k);
              last_stamp.(0) <- Prelude.Mclock.now () -. epoch;
              (* more work probably remains behind us in the scheduler
                 and our surplus is stealable: if a core is free for a
                 parked peer, wake one, which wakes another if it also
                 finds a batch — exponential wake diffusion *)
              if k > 1 && wake_budget () > 0 then begin
                Vatomic.incr events;
                wake 1;
                if traced then
                  Obs.Ring.emit ring ~kind:Obs.Event.wake ~a:1 ~b:0
              end;
              loop ()
            | Sched.Protected.Pending ->
              if Prelude.Backoff.is_exhausted backoff then begin
                park ring e;
                Prelude.Backoff.reset backoff
              end
              else Prelude.Backoff.once backoff;
              loop ()
            | Sched.Protected.Drained ->
              (* nothing ready, nothing in flight: either done, or the
                 scheduler gave up with activated tasks remaining *)
              if terminated () then wake_all ()
              else
                fail
                  "scheduler stalled: %d of %d activated tasks incomplete, none \
                   running"
                  (Vatomic.get activated - Sched.Protected.completed psched)
                  (Vatomic.get activated)
        end
    in
    loop ()
  in
  (* Enter dispatch with an empty minor heap: setup (scheduler
     precompute, work table) leaves megabytes of garbage behind, and a
     minor collection once the domains exist is a stop-the-world event
     that must interrupt every one of them — collect while we are
     still alone instead. *)
  Gc.minor ();
  let handles = List.init domains (fun wid -> Domain.spawn (fun () -> worker wid)) in
  List.iter Domain.join handles;
  (match Vatomic.get failure with
  | Some msg -> failwith ("Executor: " ^ msg)
  | None -> ());
  let total = Array.fold_left (fun acc l -> acc + l.t_len) 0 logs in
  let log = Array.make total { task = 0; start = 0.0; finish = 0.0; worker = 0 } in
  let pos = ref 0 in
  Array.iteri
    (fun w l ->
      for i = 0 to l.t_len - 1 do
        log.(!pos) <-
          { task = l.t_task.(i);
            start = l.t_start.(i);
            finish = l.t_finish.(i);
            worker = w };
        incr pos
      done)
    logs;
  Array.sort (fun a b -> Float.compare a.finish b.finish) log;
  let wall_makespan = Array.fold_left (fun acc r -> Float.max acc r.finish) 0.0 log in
  {
    wall_makespan;
    tasks_executed = Sched.Protected.completed psched;
    tasks_activated = Vatomic.get activated;
    ops = Sched.Protected.ops psched;
    worker_ops = Sched.Protected.worker_ops psched;
    log;
    work_executed = Array.fold_left ( +. ) 0.0 works;
    steals = Array.fold_left ( + ) 0 steal_counts;
  }

let check trace result =
  let entries =
    Array.map
      (fun r -> { Simulator.Engine.task = r.task; start = r.start; finish = r.finish })
      result.log
  in
  Simulator.Validate.check ~check_spans:false trace entries
