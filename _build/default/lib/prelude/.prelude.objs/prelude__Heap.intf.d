lib/prelude/heap.mli:
