type pred_change = { pred : string; added : int; removed : int }

type comp_activity = {
  comp : int;
  work : int;
  output_changed : bool;
  input_changed : bool;
}

type report = {
  changes : pred_change list;
  activity : comp_activity list;
  analysis : Stratify.t;
}

(* Net per-predicate deltas relative to the pre-update snapshot. A
   tuple sits in at most one of the two tables; re-adding a removed
   tuple cancels instead of double-booking. *)
type deltas = {
  added : (string, Relation.t) Hashtbl.t;
  removed : (string, Relation.t) Hashtbl.t;
}

let delta_rel tbl pred ~arity =
  match Hashtbl.find_opt tbl pred with
  | Some r -> r
  | None ->
    let r = Relation.create ~arity in
    Hashtbl.add tbl pred r;
    r

let nonempty tbl pred =
  match Hashtbl.find_opt tbl pred with
  | Some r -> Relation.cardinality r > 0
  | None -> false

let record_add (d : deltas) pred ~arity tup =
  let removed = delta_rel d.removed pred ~arity in
  if not (Relation.remove removed tup) then
    ignore (Relation.add (delta_rel d.added pred ~arity) tup)

let record_remove (d : deltas) pred ~arity tup =
  let added = delta_rel d.added pred ~arity in
  if not (Relation.remove added tup) then
    ignore (Relation.add (delta_rel d.removed pred ~arity) tup)

(* Replace the [i]th body literal (a negated atom) by its positive
   counterpart so that the semi-naive delta can range over it: a
   derivation enabled/disabled by a change to a negated input is found
   by unifying that literal against exactly the changed tuples. *)
let flip_negation (rule : Ast.rule) i =
  let body =
    List.mapi
      (fun j lit ->
        if j = i then
          match lit with
          | Ast.Neg a -> Ast.Pos a
          | Ast.Pos _ | Ast.Cmp _ -> invalid_arg "flip_negation: literal not negated"
        else lit)
      rule.Ast.body
  in
  { rule with Ast.body }

let check_edb (anal : Stratify.t) (a : Ast.atom) =
  if not (Ast.atom_is_ground a) then
    invalid_arg (Printf.sprintf "Incremental: update atom %s is not ground" a.Ast.pred);
  match Hashtbl.find_opt anal.Stratify.index_of a.Ast.pred with
  | Some i when not anal.Stratify.edb.(i) ->
    invalid_arg
      (Printf.sprintf "Incremental: %s is intensional; update base facts only"
         a.Ast.pred)
  | Some _ | None -> ()

(* Maintenance algorithm selector: classic delete/rederive (DRed), the
   counting engine — per-tuple derivation counts with Backward/Forward
   search for recursive components — or [Auto], which asks the static
   advisor ({!Analyze}) to pick per component. Whatever the selector,
   maintenance runs with one *resolved* strategy per condensation
   component; [Dred]/[Counting] resolve uniformly, [Auto] per the
   advisor. *)
type maint = Dred | Counting | Auto

let default_warn msg = Printf.eprintf "warning: %s\n%!" msg

(* Resolve the per-component strategies. Counting composes with
   sharded phase rounds since the count/level side tables shard the
   same way the tuple stores do (per-shard signed-delta buffers,
   merged in shard order); no downgrade is needed for [shards > 1]
   anymore. The interpretive engine still cannot serve counting (no
   split-view or witness mode) — that combination is rejected up
   front by [check_maint_engine]. *)
let resolve_strategies ~engine ~shards:_ ~on_warn:_ anal program maint =
  let n = anal.Stratify.condensation.Dag.Scc.count in
  match maint with
  | Dred -> Array.make n Analyze.Dred
  | Counting -> Array.make n Analyze.Counting
  | Auto ->
    let az = Analyze.run ~engine ~anal program in
    Array.init n (fun c -> az.Analyze.comps.(c).Analyze.verdict)

(* ---- the update context -----------------------------------------

   Everything component maintenance shares. After the serial prologue
   ([make_ctx], base updates, [prepare_deltas], [prepare_comp] /
   [precompile_comp]) the context's *structure* is frozen: the delta
   and relation hashtables gain no further entries, the views and plan
   stores are read-only. From then on [process_comp c] writes only the
   relations and delta relations of component [c]'s own predicates —
   every body predicate is upstream or same-component by construction
   of the dependency graph — which is the ownership rule that makes
   running components in parallel safe (see {!apply_parallel}). *)
type ctx = {
  db : Database.t;
  program : Ast.program;
  anal : Stratify.t;
  engine : Plan.engine;
  strategy : Analyze.strategy array;  (* resolved per component *)
  sanitize : bool;
  on_warn : string -> unit;
  symbols : Symbol.t;
  card : string -> int;
  make_exec : Ast.rule -> Plan.exec;
  d : deltas;
  old_view : Matcher.view;
  new_view : Matcher.view;
}

let make_ctx ?(shards = 1) ?(sanitize = false) ?(on_warn = default_warn) ~engine
    ~maint db program =
  Aggregate.validate program;
  let anal = Stratify.analyze program in
  let strategy = resolve_strategies ~engine ~shards ~on_warn anal program maint in
  Matcher.register db program;
  let symbols = Database.symbols db in
  let card pred =
    match Database.find db pred with Some r -> Relation.cardinality r | None -> 0
  in
  let make_exec r = Plan.executor ~engine ~symbols ~card r in
  let new_view = Matcher.view_of_db db in
  let d = { added = Hashtbl.create 16; removed = Hashtbl.create 16 } in
  (* The pre-update state as a delta overlay over the live database:
     old = (new \ added) ∪ removed. The net-delta invariant maintained
     by [record_add]/[record_remove] (a tuple sits in at most one table,
     cancellation on re-add) makes this identity hold at every point
     during processing, so no O(database) snapshot copy is needed. *)
  let old_view =
    let added p = Hashtbl.find_opt d.added p in
    let removed p = Hashtbl.find_opt d.removed p in
    let non_empty = function
      | Some r when Relation.cardinality r > 0 -> Some r
      | Some _ | None -> None
    in
    {
      Matcher.mem =
        (fun p tup ->
          let in_removed =
            match removed p with Some r -> Relation.mem r tup | None -> false
          in
          in_removed
          ||
          let in_added =
            match added p with Some r -> Relation.mem r tup | None -> false
          in
          (not in_added)
          && (match Database.find db p with
             | Some r -> Relation.mem r tup
             | None -> false));
      iter_matching =
        (fun p ~col ~value f ->
          (match Database.find db p with
          | Some r -> (
            match non_empty (added p) with
            | Some a ->
              Relation.iter_matching r ~col ~value (fun t ->
                  if not (Relation.mem a t) then f t)
            | None -> Relation.iter_matching r ~col ~value f)
          | None -> ());
          match non_empty (removed p) with
          | Some r -> Relation.iter_matching r ~col ~value f
          | None -> ());
      iter =
        (fun p f ->
          (match Database.find db p with
          | Some r -> (
            match non_empty (added p) with
            | Some a -> Relation.iter (fun t -> if not (Relation.mem a t) then f t) r
            | None -> Relation.iter f r)
          | None -> ());
          match removed p with Some r -> Relation.iter f r | None -> ());
    }
  in
  { db; program; anal; engine; strategy; sanitize; on_warn; symbols; card;
    make_exec; d; old_view; new_view }

let apply_base_updates ctx ~additions ~deletions =
  List.iter
    (fun (a : Ast.atom) ->
      let tup = Database.intern_atom ctx.db a in
      let rel = Database.relation ctx.db a.Ast.pred ~arity:(Array.length tup) in
      if Relation.remove rel tup then
        record_remove ctx.d a.Ast.pred ~arity:(Array.length tup) tup)
    deletions;
  List.iter
    (fun (a : Ast.atom) ->
      let tup = Database.intern_atom ctx.db a in
      let rel = Database.relation ctx.db a.Ast.pred ~arity:(Array.length tup) in
      if Relation.add rel tup then
        record_add ctx.d a.Ast.pred ~arity:(Array.length tup) tup)
    additions

(* Pre-create the delta relation pair of every analyzed predicate, so
   the delta hashtables never grow a new entry during component
   processing — structural mutation of a shared hashtable is the one
   thing [record_add]/[record_remove] would otherwise do outside their
   component's write set. ([Matcher.register] has already created every
   predicate's relation, fixing the arities.) *)
let prepare_deltas ctx =
  Array.iter
    (fun name ->
      match Database.find ctx.db name with
      | None -> ()
      | Some rel ->
        let arity = Relation.arity rel in
        ignore (delta_rel ctx.d.added name ~arity);
        ignore (delta_rel ctx.d.removed name ~arity))
    ctx.anal.Stratify.predicates

(* ---- per-component preparation ----------------------------------

   Everything a component's maintenance needs, resolved up front: its
   rules with one shared executor each (so every (rule, delta position)
   plan is compiled at most once per update), plus the flipped-positive
   variant of each negated literal — shared by phases A and C, where
   the original code rebuilt it per trigger. *)

type prepared_rule = {
  rule : Ast.rule;
  ex : Plan.exec;
  flipped : (int * Ast.rule * Plan.exec) list;  (* keyed by negated body position *)
}

(* [Rules] holds one independently compiled plan set per shard task
   (length 1 when unsharded): plans carry non-reentrant scratch state,
   so the per-shard enumerations of a sharded phase round must never
   share one. Shard [s]'s list is touched only by the thread running
   shard [s] (the crew pins shards to domains). *)
type comp_body =
  | Extensional
  | Aggregate_rule of Ast.rule
  | Rules of prepared_rule list array

type prepared_comp = {
  comp : int;
  members : int array;
  comp_preds : (string, unit) Hashtbl.t;
  tag : string;  (* sanitizer owner/writer tag: names the component *)
  body : comp_body;
}

let prepare_comp ?(shards = 1) ctx comp =
  let anal = ctx.anal in
  let members = anal.Stratify.condensation.Dag.Scc.members.(comp) in
  let comp_preds = Hashtbl.create 4 in
  Array.iter
    (fun p -> Hashtbl.replace comp_preds anal.Stratify.predicates.(p) ())
    members;
  let tag =
    Printf.sprintf "component %d [%s]" comp
      (String.concat " "
         (List.map
            (fun p -> anal.Stratify.predicates.(p))
            (Array.to_list members)))
  in
  let rules =
    List.filter
      (fun (r : Ast.rule) -> r.Ast.body <> [])
      (Stratify.rules_for_comp anal ctx.program comp)
  in
  let body =
    match rules with
    | [] -> Extensional
    | [ r ] when Ast.rule_is_aggregate r -> Aggregate_rule r
    | rules ->
      let prepare_set () =
        List.map
          (fun (r : Ast.rule) ->
            let flipped =
              List.mapi (fun i lit -> (i, lit)) r.Ast.body
              |> List.filter_map (fun (i, lit) ->
                     match lit with
                     | Ast.Neg _ ->
                       let fr = flip_negation r i in
                       Some (i, fr, ctx.make_exec fr)
                     | Ast.Pos _ | Ast.Cmp _ -> None)
            in
            { rule = r; ex = ctx.make_exec r; flipped })
          rules
      in
      Rules (Array.init (max 1 shards) (fun _ -> prepare_set ()))
  in
  { comp; members; comp_preds; tag; body }

(* Compile every plan a component's phases could reach: the base plan
   (phase B), a delta plan per positive body position (phases A/C and
   the in-component cascades), and a delta plan per flipped negation —
   for every shard's plan set. Compilation interns constants into the
   shared symbol table and consults relation cardinalities, so the
   parallel driver runs this serially, before any worker domain
   exists. *)
let precompile_comp pc =
  match pc.body with
  | Extensional | Aggregate_rule _ -> ()
  | Rules prs_by_shard ->
    Array.iter
      (fun prs ->
        List.iter
          (fun pr ->
            Plan.prepare pr.ex;
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos _ -> Plan.prepare ~delta:i pr.ex
                | Ast.Neg _ | Ast.Cmp _ -> ())
              pr.rule.Ast.body;
            List.iter (fun (i, _, fex) -> Plan.prepare ~delta:i fex) pr.flipped)
          prs)
      prs_by_shard

let flipped_for pr i =
  let rec go = function
    | [] -> invalid_arg "Incremental: missing flipped plan"
    | (j, fr, fex) :: rest -> if j = i then (fr, fex) else go rest
  in
  go pr.flipped

(* ---- counting maintenance helpers ------------------------------- *)

(* [base] with the [plus] tuples restored and the [minus] tuples
   hidden, per predicate — the same overlay shape as the global old
   view, but over one cascade round's delta: a death round enumerates
   with [plus] = this round's deaths (the pre-round state), a birth
   round with [minus] = this round's births. Invariants: [plus] is
   disjoint from [base] (its tuples were just removed) and [minus] is
   contained in [base] (just added / still present), so membership is
   plus-hit, else minus-miss, else base. *)
let overlay_view ~plus ~minus (base : Matcher.view) =
  let find tbl p =
    match Hashtbl.find_opt tbl p with
    | Some r when Relation.cardinality r > 0 -> Some r
    | Some _ | None -> None
  in
  {
    Matcher.mem =
      (fun p tup ->
        (match find plus p with Some r -> Relation.mem r tup | None -> false)
        || ((match find minus p with
            | Some r -> not (Relation.mem r tup)
            | None -> true)
           && base.Matcher.mem p tup));
    iter_matching =
      (fun p ~col ~value f ->
        (match find minus p with
        | Some m ->
          base.Matcher.iter_matching p ~col ~value (fun t ->
              if not (Relation.mem m t) then f t)
        | None -> base.Matcher.iter_matching p ~col ~value f);
        match find plus p with
        | Some r -> Relation.iter_matching r ~col ~value f
        | None -> ());
    iter =
      (fun p f ->
        (match find minus p with
        | Some m -> base.Matcher.iter p (fun t -> if not (Relation.mem m t) then f t)
        | None -> base.Matcher.iter p f);
        match find plus p with Some r -> Relation.iter f r | None -> ());
  }

(* The single in-component positive body atom of a linear recursive
   rule, as (original position, predicate); [None] for exit rules and
   for non-linear recursion. Only derivations through a linear rule
   carry a usable supporter witness: with two in-component atoms the
   well-founded level of a derivation is the max over both, which a
   single witness cannot name — such derivations stay out of [low]
   (an undercount, the safe direction). *)
let linear_pos comp_preds (r : Ast.rule) =
  let found = ref [] in
  List.iteri
    (fun i lit ->
      match lit with
      | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred ->
        found := (i, a.Ast.pred) :: !found
      | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
    r.Ast.body;
  match !found with [ (i, p) ] -> Some (i, p) | _ -> None

(* (Re)build a [Rules] component's derivation-count side tables — and
   the well-founded support index — against [view], level-stratified:

   - exit pass: each exit rule's base plan enumerates its derivations
     in one full join; heads get [exits] and level 0 (an exit
     derivation is acyclic support by construction);
   - recursive fixpoint: recursive-rule derivations are enumerated
     semi-naively over the *leveled* subset of the component — round
     [r]'s delta is the set of tuples first leveled in round [r - 1],
     telescoped through {!Plan.run}'s [late_view] so each derivation
     is counted exactly once — giving exact [recs] and, as a
     byproduct, iteration levels: a tuple first derivable in round [r]
     gets level [r]. [low] counts the derivations of linear rules
     whose witness supporter has a *cell* level strictly below the
     head's level; pinned supporters (no cell) and non-linear rules
     contribute nothing, so [low] may undercount but never overcounts;
   - stall: when the deltas dry up with component tuples still
     unleveled, their support runs through base facts listed for
     derived predicates (which no rule re-derives). All still-unleveled
     present tuples are pinned at level 0 — without cells, so the
     settle path keeps treating such base facts defensively — and join
     the next delta, so their consumers' derivations are still
     enumerated exactly once and the fixpoint resumes.

   Attaches fresh tables ([shards] cell partitions each) and returns
   them keyed by head predicate; the caller stamps them synced once
   store and counts agree. *)
let recount_comp ctx (pc : prepared_comp) prs ~shards ~view ~work =
  let is_rec (r : Ast.rule) =
    List.exists
      (function
        | Ast.Pos a -> Hashtbl.mem pc.comp_preds a.Ast.pred
        | Ast.Neg _ | Ast.Cmp _ -> false)
      r.Ast.body
  in
  let counts_of : (string, Relation.counts) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun pr ->
      let pred = pr.rule.Ast.head.Ast.pred in
      if not (Hashtbl.mem counts_of pred) then begin
        let rel =
          Database.relation ctx.db pred ~arity:(List.length pr.rule.Ast.head.Ast.args)
        in
        Hashtbl.add counts_of pred (Relation.counts_attach ~shards rel)
      end)
    prs;
  List.iter
    (fun pr ->
      if not (is_rec pr.rule) then begin
        let c = Hashtbl.find counts_of pr.rule.Ast.head.Ast.pred in
        Plan.exec_rule ~view ~work
          ~on_derived:(fun tup ->
            let cell = Relation.count_cell c tup in
            cell.Relation.exits <- cell.Relation.exits + 1;
            cell.Relation.level <- 0)
          pr.ex
      end)
    prs;
  let rec_prs = List.filter (fun pr -> is_rec pr.rule) prs in
  if rec_prs <> [] then begin
    let arity_of pred =
      match Database.find ctx.db pred with
      | Some rel -> Relation.arity rel
      | None -> invalid_arg "Incremental.recount: unregistered predicate"
    in
    let fresh_rel tbl pred =
      match Hashtbl.find_opt tbl pred with
      | Some r -> r
      | None ->
        let r = Relation.create ~arity:(arity_of pred) in
        Hashtbl.add tbl pred r;
        r
    in
    let leveled : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
    let pinned : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
    let is_pinned pred tup =
      match Hashtbl.find_opt pinned pred with
      | Some r -> Relation.mem r tup
      | None -> false
    in
    let in_comp p = Hashtbl.mem pc.comp_preds p in
    let leveled_view =
      {
        Matcher.mem =
          (fun p tup ->
            if in_comp p then
              match Hashtbl.find_opt leveled p with
              | Some r -> Relation.mem r tup
              | None -> false
            else view.Matcher.mem p tup);
        iter_matching =
          (fun p ~col ~value f ->
            if in_comp p then (
              match Hashtbl.find_opt leveled p with
              | Some r -> Relation.iter_matching r ~col ~value f
              | None -> ())
            else view.Matcher.iter_matching p ~col ~value f);
        iter =
          (fun p f ->
            if in_comp p then (
              match Hashtbl.find_opt leveled p with
              | Some r -> Relation.iter f r
              | None -> ())
            else view.Matcher.iter p f);
      }
    in
    let no_overlay : (string, Relation.t) Hashtbl.t = Hashtbl.create 1 in
    let live tbl =
      Hashtbl.fold (fun _ r acc -> acc || Relation.cardinality r > 0) tbl false
    in
    let sup_cell_level pred tup =
      match Hashtbl.find_opt counts_of pred with
      | Some c -> (
        match Relation.count_find c tup with
        | Some cell -> cell.Relation.level
        | None -> max_int)
      | None -> max_int
    in
    (* round 1's delta: the exit-leveled tuples *)
    let round = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
    Hashtbl.iter
      (fun pred c ->
        Relation.counts_iter
          (fun tup cell ->
            if cell.Relation.level = 0 then begin
              ignore (Relation.add (fresh_rel leveled pred) tup);
              ignore (Relation.add (fresh_rel !round pred) tup)
            end)
          c)
      counts_of;
    let r = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      if live !round then begin
        incr r;
        let cur = !round in
        let next = Hashtbl.create 4 in
        let late = overlay_view ~plus:no_overlay ~minus:cur leveled_view in
        List.iter
          (fun pr ->
            let hpred = pr.rule.Ast.head.Ast.pred in
            let c = Hashtbl.find counts_of hpred in
            let lin = linear_pos pc.comp_preds pr.rule in
            let supr = ref max_int in
            let witness =
              match lin with
              | Some (w, p) -> Some (w, fun tup -> supr := sup_cell_level p tup)
              | None -> None
            in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when in_comp a.Ast.pred -> (
                  match Hashtbl.find_opt cur a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    Plan.exec_rule ?witness ~view:leveled_view ~late_view:late
                      ~delta:(i, delta) ~work
                      ~on_derived:(fun h ->
                        let cell = Relation.count_cell c h in
                        cell.Relation.recs <- cell.Relation.recs + 1;
                        let s = if lin = None then max_int else !supr in
                        if cell.Relation.level < max_int then begin
                          if s < cell.Relation.level then
                            cell.Relation.low <- cell.Relation.low + 1
                        end
                        else if not (is_pinned hpred h) then begin
                          (* first derivable this round: will get level
                             [r]; staged so it joins the leveled set
                             only at round end *)
                          if s < !r then cell.Relation.low <- cell.Relation.low + 1;
                          ignore (Relation.add (fresh_rel next hpred) h)
                        end)
                      pr.ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              pr.rule.Ast.body)
          rec_prs;
        (* staged fresh levels are assigned only now: the round's views
           must not see mid-round additions *)
        Hashtbl.iter
          (fun pred srel ->
            let c = Hashtbl.find counts_of pred in
            Relation.iter
              (fun tup ->
                (match Relation.count_find c tup with
                | Some cell ->
                  if cell.Relation.level = max_int then cell.Relation.level <- !r
                | None -> ());
                ignore (Relation.add (fresh_rel leveled pred) tup))
              srel)
          next;
        round := next
      end
      else begin
        (* stalled: pin still-unleveled present tuples at level 0 *)
        let fresh = Hashtbl.create 4 in
        let any = ref false in
        Hashtbl.iter
          (fun pred () ->
            view.Matcher.iter pred (fun tup ->
                let already =
                  match Hashtbl.find_opt leveled pred with
                  | Some lr -> Relation.mem lr tup
                  | None -> false
                in
                if not already then begin
                  ignore (Relation.add (fresh_rel pinned pred) tup);
                  ignore (Relation.add (fresh_rel leveled pred) tup);
                  ignore (Relation.add (fresh_rel fresh pred) tup);
                  any := true
                end))
          pc.comp_preds;
        if !any then round := fresh else continue_ := false
      end
    done
  end;
  counts_of

(* ---- per-component maintenance (DRed phases A/B/C) -------------- *)

(* Shared intra-component fan-out machinery, one per update: the crew
   ([Shard_crew.run] serializes concurrent component tasks internally
   so two executor workers can both reach a sharded phase round), the
   shard count, and one dedicated obs ring per non-coordinator shard.
   Crew worker [j] always runs shard [j] and at most one fan-out is in
   flight, so the rings keep their single-writer contract; shard 0
   runs on the coordinating thread and shares its ring. *)
type shard_ctx = {
  crew : Parallel.Shard_crew.t;
  nshards : int;
  shard_rings : Obs.Ring.t array;  (* length [nshards]; slot 0 unused *)
}

let process_comp_unsanitized ?(ring = Obs.Ring.null) ?shard_ctx ctx (pc : prepared_comp) =
  let anal = ctx.anal in
  let d = ctx.d in
  let comp = pc.comp in
  (* DRed phase spans (delete / rederive / insert), one per phase per
     component, tagged with the component id; a single mutable start
     stamp suffices because phases never nest *)
  let traced = Obs.Ring.enabled ring in
  let phase0 = ref 0 in
  let phase_begin () = if traced then phase0 := Obs.Ring.now_ns ring in
  let phase_end kind = if traced then Obs.Ring.emit ring ~kind ~a:comp ~b:!phase0 in
  let comp_preds = pc.comp_preds in
  let head_arity (r : Ast.rule) = List.length r.Ast.head.Ast.args in
  let head_rel (r : Ast.rule) =
    Database.relation ctx.db r.Ast.head.Ast.pred ~arity:(head_arity r)
  in
  let members_changed () =
    Array.exists
      (fun p ->
        nonempty d.added anal.Stratify.predicates.(p)
        || nonempty d.removed anal.Stratify.predicates.(p))
      pc.members
  in
  let input_changed_of rules =
    List.exists
      (fun (r : Ast.rule) ->
        List.exists
          (function
            | Ast.Pos a | Ast.Neg a ->
              (not (Hashtbl.mem comp_preds a.Ast.pred))
              && (nonempty d.added a.Ast.pred || nonempty d.removed a.Ast.pred)
            | Ast.Cmp _ -> false)
          r.Ast.body)
      rules
  in
  match pc.body with
  | Extensional ->
    (* extensional component: its delta is the base update itself *)
    { comp; work = 0; output_changed = members_changed (); input_changed = false }
  | Aggregate_rule r ->
    (* aggregates are functional: recompute when dirty, diff exactly *)
    let input_changed = input_changed_of [ r ] in
    let work = ref 0 in
    if input_changed then begin
      phase_begin ();
      let pred = r.Ast.head.Ast.pred in
      let arity = head_arity r in
      let rel = Database.relation ctx.db pred ~arity in
      let fresh = Relation.create ~arity in
      List.iter
        (fun tup -> ignore (Relation.add fresh tup))
        (Aggregate.evaluate ~engine:ctx.engine ~symbols:ctx.symbols ~view:ctx.new_view
           ~card:ctx.card ~work r);
      let stale =
        Relation.fold
          (fun acc tup -> if Relation.mem fresh tup then acc else tup :: acc)
          [] rel
      in
      List.iter
        (fun tup ->
          ignore (Relation.remove rel tup);
          record_remove d pred ~arity tup)
        stale;
      Relation.iter
        (fun tup -> if Relation.add rel tup then record_add d pred ~arity tup)
        fresh;
      (* functional recompute-and-diff is closest to rederivation *)
      phase_end Obs.Event.dred_rederive
    end;
    { comp; work = !work; output_changed = members_changed (); input_changed }
  | Rules prs_by_shard ->
    let prs = prs_by_shard.(0) in
    let input_changed = input_changed_of (List.map (fun pr -> pr.rule) prs) in
    let work = ref 0 in
    let keep_new (r : Ast.rule) =
      let rel = head_rel r in
      fun tup -> not (Relation.mem rel tup)
    in
    (* ---- Phase B: rederivation over the new state ----
       Shared by both drivers; serial either way — after overdeletion
       the phase is empty for insert-only batches, and its fixpoint
       mutates [overdeleted] mid-enumeration. *)
    let rederive overdeleted =
      phase_begin ();
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun pr ->
            let r = pr.rule in
            match Hashtbl.find_opt overdeleted r.Ast.head.Ast.pred with
            | Some o when Relation.cardinality o > 0 ->
              Plan.exec_rule_deferred ~view:ctx.new_view ~work
                ~keep:(Relation.mem o)
                ~on_derived:(fun tup ->
                  if Relation.mem o tup then begin
                    let pred = r.Ast.head.Ast.pred in
                    let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
                    if Relation.add rel tup then begin
                      record_add d pred ~arity:(head_arity r) tup;
                      ignore (Relation.remove o tup);
                      changed := true
                    end
                  end)
                pr.ex
            | Some _ | None -> ())
          prs
      done;
      phase_end Obs.Event.dred_rederive
    in
    let run_phases_serial () =
      (* ---- Phase A: overdeletion against the old state ---- *)
      phase_begin ();
      let overdeleted : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      let overdelete (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
        if Relation.remove rel tup then begin
          record_remove d pred ~arity:(head_arity r) tup;
          ignore (Relation.add (delta_rel overdeleted pred ~arity:(head_arity r)) tup)
        end
      in
      (* round 0: external triggers. All staging callbacks here and in
         phases B/C mutate state the enumeration is reading — the head
         relation probed by recursive rules, and the net-delta overlay
         [old_view] iterates — so every exec goes through
         {!Plan.exec_rule_deferred}: derive first against frozen state,
         apply after the walk. The deferral does not change the old
         view: overdeletion removes from the live relation and records
         into [d.removed], which cancel out under the overlay. *)
      let round = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let stage_round (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
        if Relation.mem rel tup then begin
          (* not yet overdeleted this phase *)
          overdelete r tup;
          ignore (Relation.add (delta_rel !round pred ~arity:(head_arity r)) tup)
        end
      in
      List.iter
        (fun pr ->
          let r = pr.rule in
          List.iteri
            (fun i lit ->
              match lit with
              | Ast.Pos a when nonempty d.removed a.Ast.pred ->
                Plan.exec_rule_deferred ~view:ctx.old_view
                  ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                  ~work
                  ~keep:(Relation.mem (head_rel r))
                  ~on_derived:(stage_round r) pr.ex
              | Ast.Neg a when nonempty d.added a.Ast.pred ->
                let fr, fex = flipped_for pr i in
                Plan.exec_rule_deferred ~view:ctx.old_view
                  ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                  ~work
                  ~keep:(Relation.mem (head_rel fr))
                  ~on_derived:(stage_round fr) fex
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
            r.Ast.body)
        prs;
      (* cascade within the component *)
      while Hashtbl.length !round > 0 do
        let prev = !round in
        round := Hashtbl.create 4;
        List.iter
          (fun pr ->
            let r = pr.rule in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt prev a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    Plan.exec_rule_deferred ~view:ctx.old_view ~delta:(i, delta) ~work
                      ~keep:(Relation.mem (head_rel r))
                      ~on_derived:(stage_round r) pr.ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          prs;
        (* tuples staged this round that were already overdeleted in a
           previous round were filtered by [stage_round]'s mem check *)
        ()
      done;
      phase_end Obs.Event.dred_delete;
      rederive overdeleted;
      (* ---- Phase C: insertion against the new state ---- *)
      phase_begin ();
      let roundc = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let stage_add (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
        if Relation.add rel tup then begin
          record_add d pred ~arity:(head_arity r) tup;
          ignore (Relation.add (delta_rel !roundc pred ~arity:(head_arity r)) tup)
        end
      in
      List.iter
        (fun pr ->
          let r = pr.rule in
          List.iteri
            (fun i lit ->
              match lit with
              | Ast.Pos a
                when (not (Hashtbl.mem comp_preds a.Ast.pred))
                     && nonempty d.added a.Ast.pred ->
                Plan.exec_rule_deferred ~view:ctx.new_view
                  ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                  ~work ~keep:(keep_new r) ~on_derived:(stage_add r) pr.ex
              | Ast.Neg a when nonempty d.removed a.Ast.pred ->
                let fr, fex = flipped_for pr i in
                Plan.exec_rule_deferred ~view:ctx.new_view
                  ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                  ~work
                  ~keep:(keep_new fr)
                  ~on_derived:(stage_add fr) fex
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
            r.Ast.body)
        prs;
      while Hashtbl.length !roundc > 0 do
        let prev = !roundc in
        roundc := Hashtbl.create 4;
        List.iter
          (fun pr ->
            let r = pr.rule in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt prev a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    Plan.exec_rule_deferred ~view:ctx.new_view ~delta:(i, delta) ~work
                      ~keep:(keep_new r) ~on_derived:(stage_add r) pr.ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          prs
      done;
      phase_end Obs.Event.dred_insert
    in
    (* ---- sharded phase drivers ----
       Each phase round fans out into [nshards] enumerations over
       frozen state: round 0 partitions the base deltas with Plan's
       [?shard] filter, later rounds read their own slice of the
       previous round's {!Relation.Sharded} delta. Shard job [s]
       writes only its private candidate buffer ((component, shard)
       ownership); the coordinator merges the buffers in shard order
       0..k-1 behind the crew barrier, so the insertion order of every
       relation and delta is a pure function of the derivations —
       deterministic run to run. Duplicates across shards (or that a
       serial walk's staging would have suppressed mid-round) are
       dropped by the merge's mem/add checks; derivations a serial
       walk found through tuples staged mid-round reappear here as
       next-round delta hits, so the fixpoint is unchanged — only the
       work counts can differ. *)
    let run_phases_sharded sc =
      let k = sc.nshards in
      let card_of tbl pred =
        match Hashtbl.find_opt tbl pred with
        | Some r -> Relation.cardinality r
        | None -> 0
      in
      (* below this many driving tuples a round stays on the caller:
         the crew round-trip costs more than it buys *)
      let gate = 4 * k in
      let fanout ~par enumerate =
        let bufs = Array.make k [] in
        let works = Array.make k 0 in
        let job s =
          let ring_s = if s = 0 then ring else sc.shard_rings.(s) in
          let t0 = if Obs.Ring.enabled ring_s then Obs.Ring.now_ns ring_s else 0 in
          let w = ref 0 in
          let acc = ref [] in
          let emit r tup = acc := (r, tup) :: !acc in
          enumerate ~shard:s ~sprs:prs_by_shard.(s) ~emit ~work:w;
          bufs.(s) <- List.rev !acc;
          works.(s) <- !w;
          if Obs.Ring.enabled ring_s then
            Obs.Ring.emit ring_s ~kind:Obs.Event.shard ~a:s ~b:t0
        in
        if par then Parallel.Shard_crew.run sc.crew job
        else
          for s = 0 to k - 1 do
            job s
          done;
        Array.iter (fun w -> work := !work + w) works;
        bufs
      in
      let sdelta tbl pred ~arity =
        match Hashtbl.find_opt tbl pred with
        | Some s -> s
        | None ->
          let s = Relation.Sharded.create ~arity ~shards:k in
          Hashtbl.add tbl pred s;
          s
      in
      (* ---- Phase A ---- *)
      phase_begin ();
      let overdeleted : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      let snext = ref (Hashtbl.create 4 : (string, Relation.Sharded.t) Hashtbl.t) in
      let staged = ref 0 in
      let merge_delete bufs =
        staged := 0;
        Array.iter
          (List.iter (fun ((r : Ast.rule), tup) ->
               let pred = r.Ast.head.Ast.pred in
               let arity = head_arity r in
               let rel = Database.relation ctx.db pred ~arity in
               if Relation.mem rel tup then begin
                 ignore (Relation.remove rel tup);
                 record_remove d pred ~arity tup;
                 ignore (Relation.add (delta_rel overdeleted pred ~arity) tup);
                 ignore (Relation.Sharded.add (sdelta !snext pred ~arity) tup);
                 incr staged
               end))
          bufs
      in
      let size0 =
        List.fold_left
          (fun acc pr ->
            List.fold_left
              (fun acc lit ->
                match lit with
                | Ast.Pos a -> acc + card_of d.removed a.Ast.pred
                | Ast.Neg a -> acc + card_of d.added a.Ast.pred
                | Ast.Cmp _ -> acc)
              acc pr.rule.Ast.body)
          0 prs
      in
      merge_delete
        (fanout ~par:(size0 >= gate) (fun ~shard ~sprs ~emit ~work ->
             List.iter
               (fun pr ->
                 let r = pr.rule in
                 List.iteri
                   (fun i lit ->
                     match lit with
                     | Ast.Pos a when nonempty d.removed a.Ast.pred ->
                       Plan.exec_rule_deferred ~view:ctx.old_view
                         ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                         ~shard:(shard, k) ~work
                         ~keep:(Relation.mem (head_rel r))
                         ~on_derived:(emit r) pr.ex
                     | Ast.Neg a when nonempty d.added a.Ast.pred ->
                       let fr, fex = flipped_for pr i in
                       Plan.exec_rule_deferred ~view:ctx.old_view
                         ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                         ~shard:(shard, k) ~work
                         ~keep:(Relation.mem (head_rel fr))
                         ~on_derived:(emit fr) fex
                     | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                   r.Ast.body)
               sprs));
      while !staged > 0 do
        let prev = !snext in
        let par = !staged >= gate in
        snext := Hashtbl.create 4;
        merge_delete
          (fanout ~par (fun ~shard ~sprs ~emit ~work ->
               List.iter
                 (fun pr ->
                   let r = pr.rule in
                   List.iteri
                     (fun i lit ->
                       match lit with
                       | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                         match Hashtbl.find_opt prev a.Ast.pred with
                         | Some sd ->
                           let slice = Relation.Sharded.shard sd shard in
                           if Relation.cardinality slice > 0 then
                             Plan.exec_rule_deferred ~view:ctx.old_view
                               ~delta:(i, slice) ~work
                               ~keep:(Relation.mem (head_rel r))
                               ~on_derived:(emit r) pr.ex
                         | None -> ())
                       | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                     r.Ast.body)
                 sprs))
      done;
      phase_end Obs.Event.dred_delete;
      rederive overdeleted;
      (* ---- Phase C ---- *)
      phase_begin ();
      let snextc = ref (Hashtbl.create 4 : (string, Relation.Sharded.t) Hashtbl.t) in
      let merge_insert bufs =
        staged := 0;
        Array.iter
          (List.iter (fun ((r : Ast.rule), tup) ->
               let pred = r.Ast.head.Ast.pred in
               let arity = head_arity r in
               let rel = Database.relation ctx.db pred ~arity in
               if Relation.add rel tup then begin
                 record_add d pred ~arity tup;
                 ignore (Relation.Sharded.add (sdelta !snextc pred ~arity) tup);
                 incr staged
               end))
          bufs
      in
      let sizec =
        List.fold_left
          (fun acc pr ->
            List.fold_left
              (fun acc lit ->
                match lit with
                | Ast.Pos a when not (Hashtbl.mem comp_preds a.Ast.pred) ->
                  acc + card_of d.added a.Ast.pred
                | Ast.Neg a -> acc + card_of d.removed a.Ast.pred
                | Ast.Pos _ | Ast.Cmp _ -> acc)
              acc pr.rule.Ast.body)
          0 prs
      in
      merge_insert
        (fanout ~par:(sizec >= gate) (fun ~shard ~sprs ~emit ~work ->
             List.iter
               (fun pr ->
                 let r = pr.rule in
                 List.iteri
                   (fun i lit ->
                     match lit with
                     | Ast.Pos a
                       when (not (Hashtbl.mem comp_preds a.Ast.pred))
                            && nonempty d.added a.Ast.pred ->
                       Plan.exec_rule_deferred ~view:ctx.new_view
                         ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                         ~shard:(shard, k) ~work ~keep:(keep_new r)
                         ~on_derived:(emit r) pr.ex
                     | Ast.Neg a when nonempty d.removed a.Ast.pred ->
                       let fr, fex = flipped_for pr i in
                       Plan.exec_rule_deferred ~view:ctx.new_view
                         ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                         ~shard:(shard, k) ~work
                         ~keep:(keep_new fr)
                         ~on_derived:(emit fr) fex
                     | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                   r.Ast.body)
               sprs));
      while !staged > 0 do
        let prev = !snextc in
        let par = !staged >= gate in
        snextc := Hashtbl.create 4;
        merge_insert
          (fanout ~par (fun ~shard ~sprs ~emit ~work ->
               List.iter
                 (fun pr ->
                   let r = pr.rule in
                   List.iteri
                     (fun i lit ->
                       match lit with
                       | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                         match Hashtbl.find_opt prev a.Ast.pred with
                         | Some sd ->
                           let slice = Relation.Sharded.shard sd shard in
                           if Relation.cardinality slice > 0 then
                             Plan.exec_rule_deferred ~view:ctx.new_view
                               ~delta:(i, slice) ~work ~keep:(keep_new r)
                               ~on_derived:(emit r) pr.ex
                         | None -> ())
                       | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                     r.Ast.body)
                 sprs))
      done;
      phase_end Obs.Event.dred_insert
    in
    (* ---- counting maintenance (derivation counts + B/F search) ----

       The deletion-side replacement for DRed's overdelete/rederive:
       per-tuple derivation counts (split exit/recursive) live in
       {!Relation}'s side table and are maintained by signed delta
       propagation — a tuple dies exactly when its count reaches zero,
       so nothing is over-deleted and rederivation shrinks to a
       backward check of the few decremented-but-surviving tuples
       without exit support. Every enumeration uses the telescoped
       split-view form: the delta literal at body position i joins
       positions j < i against the already-updated state and positions
       j > i against the not-yet-updated state ({!Plan.run}'s
       [late_view]), which makes the signed counts exact for arbitrary
       batches, self-joins included. Work inside the component is
       serialized as: external deltas (round 0), then death cascade
       rounds, then backward removals (looping with further cascades),
       then birth rounds — and each round's enumerations read exactly
       the store state that order implies: deaths/births already
       applied count as "early" state, the round's own delta restored/
       hidden via {!overlay_view} is the "late" state.

       The well-founded support index rides in the same cells: [level]
       is the recount fixpoint round of a tuple's first well-founded
       derivation (immutable once assigned — lowering it would
       misclassify later derivation deaths) and [low] counts surviving
       linear-rule derivations whose witness supporter sits at a
       strictly lower level. The backward search pops its suspects in
       ascending level order and condemns each failed probe by filing
       a debt against every consumer derivation the index counted
       through it; a suspect with [exits = 0] but [low] minus its debt
       positive is then proven without any body re-evaluation — every
       supporter a surviving [low] entry can name sits at a strictly
       lower level, so it was resolved (and, if condemned, debited)
       before the suspect popped, and the chain bottoms out in level-0
       exit support. If a relied-on supporter is removed on a later
       outer round, that removal's cascade decrements [low] and
       re-suspects the dependent — the same repair that covers proofs
       through tuples the round later removes.
       Attribution is witness-based: every enumeration of a linear
       recursive rule extracts the tuple its single in-component atom
       matched ({!Plan.run}'s [witness]) and classifies the derivation
       against the head's level, looking supporter levels of tuples
       killed earlier in the run up in a morgue. Non-linear
       derivations never enter [low]: it may undercount (costing a
       probe), never overcount (which would be unsound).

       With a shard context ([sharded]), propagation rounds — round 0,
       death cascades, birth rounds — fan out across the shard crew
       exactly like the DRed phase rounds: shard job [s] enumerates
       only its hash slice of the round's delta through its own plan
       set, accumulating signed count deltas and suspect touches in
       private buffers; the coordinator merges the buffers into the
       global scratch in shard order 0..k-1 behind the crew barrier
       (counts add; newborn levels take the minimum, [low] keeps the
       contributions attaining it) and settles serially, so store,
       counts and index end up exactly as the serial walk's. The
       backward search stays serial: its worklist is the small suspect
       cone, already cut down by the O(1) level check. *)
    let run_phases_counting sharded =
      let rec_rule (r : Ast.rule) =
        List.exists
          (function
            | Ast.Pos a -> Hashtbl.mem comp_preds a.Ast.pred
            | Ast.Neg _ | Ast.Cmp _ -> false)
          r.Ast.body
      in
      let recursive = List.exists (fun pr -> rec_rule pr.rule) prs in
      let heads : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun pr ->
          let pred = pr.rule.Ast.head.Ast.pred in
          if not (Hashtbl.mem heads pred) then Hashtbl.add heads pred (head_rel pr.rule))
        prs;
      (* counts: trust them only if stamped at the relations' current
         versions; any other mutation path (DRed, Eval, direct edits)
         bumped the version, so rebuild against the pre-update state.
         Comp relations are untouched at this point and upstream deltas
         cancel out under the old view, so the rebuild is exact. *)
      let stale =
        Hashtbl.fold
          (fun _ rel acc -> acc || Relation.counts_synced rel = None)
          heads false
      in
      let nshards = match sharded with Some shc -> shc.nshards | None -> 1 in
      let counts_of =
        if stale then recount_comp ctx pc prs ~shards:nshards ~view:ctx.old_view ~work
        else begin
          let tbl = Hashtbl.create 4 in
          Hashtbl.iter
            (fun pred rel ->
              match Relation.counts_synced rel with
              | Some c -> Hashtbl.add tbl pred c
              | None -> assert false)
            heads;
          tbl
        end
      in
      let no_overlay : (string, Relation.t) Hashtbl.t = Hashtbl.create 0 in
      let tbl_live tbl =
        Hashtbl.fold (fun _ r acc -> acc || Relation.cardinality r > 0) tbl false
      in
      (* morgue: levels of tuples this run killed, so later death
         attribution can still classify derivations through them. One
         run is enough scope — across batches every surviving
         derivation's body tuples are alive, their levels in live
         cells. (Reuses [Relation.counts] as a tuple-keyed map.) *)
      let morgue : (string, Relation.counts) Hashtbl.t = Hashtbl.create 4 in
      let morgue_put pred tup level =
        if level < max_int then begin
          let m =
            match Hashtbl.find_opt morgue pred with
            | Some m -> m
            | None ->
              let m = Relation.counts_create () in
              Hashtbl.add morgue pred m;
              m
          in
          (Relation.count_cell m tup).Relation.level <- level
        end
      in
      let canon_cell pred tup =
        match Hashtbl.find_opt counts_of pred with
        | Some c -> Relation.count_find c tup
        | None -> None
      in
      (* a supporter's level: its live cell's, else the morgue's, else
         unknown. Base facts listed for derived predicates carry no
         cell and so always read [max_int] — everywhere, so births and
         deaths through them classify identically (neither touches
         [low]). *)
      let sup_level pred tup =
        match canon_cell pred tup with
        | Some cell -> cell.Relation.level
        | None -> (
          match Hashtbl.find_opt morgue pred with
          | Some m -> (
            match Relation.count_find m tup with
            | Some cell -> cell.Relation.level
            | None -> max_int)
          | None -> max_int)
      in
      (* scratch signed count deltas of the round being enumerated;
         [dec_touched] accumulates every tuple that lost a derivation —
         the backward phase's suspect pool (recursive comps only; a
         tuple with surviving exit support never needs the check).
         [sct]/[dec] parameterize the targets so shard jobs can fill
         private buffers; the serial path passes the globals. *)
      let sc : (string, Relation.counts) Hashtbl.t = Hashtbl.create 4 in
      let dec_touched : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      let bump ~sct ~dec pred exit sign sup tup =
        let c =
          match Hashtbl.find_opt sct pred with
          | Some c -> c
          | None ->
            let c = Relation.counts_create () in
            Hashtbl.add sct pred c;
            c
        in
        let cell = Relation.count_cell c tup in
        if exit then cell.Relation.exits <- cell.Relation.exits + sign
        else cell.Relation.recs <- cell.Relation.recs + sign;
        (* index attribution. The canonical store is frozen while a
           round enumerates, so the encoding branches on whether the
           tuple already has a canonical cell: existing cells
           accumulate a signed [low] delta (scratch [level] stays
           [max_int]; the merge treats equal levels additively), while
           an uncelled tuple is a newborn candidate — scratch [level]
           takes the least candidate level seen this round (0 for an
           exit derivation, supporter + 1 for a leveled linear one)
           and [low] counts the recursive derivations attaining it. *)
        (match canon_cell pred tup with
        | Some ccell ->
          if (not exit) && sup < ccell.Relation.level then
            cell.Relation.low <- cell.Relation.low + sign
        | None ->
          if sign > 0 then
            if exit then begin
              if cell.Relation.level > 0 then begin
                cell.Relation.level <- 0;
                cell.Relation.low <- 0
              end
            end
            else if sup < max_int then begin
              let cand = sup + 1 in
              if cand < cell.Relation.level then begin
                cell.Relation.level <- cand;
                cell.Relation.low <- 1
              end
              else if cand = cell.Relation.level then
                cell.Relation.low <- cell.Relation.low + 1
            end);
        if sign < 0 && recursive then
          ignore (Relation.add (delta_rel dec pred ~arity:(Array.length tup)) tup)
      in
      let pending_births = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let take_births () =
        let b = !pending_births in
        pending_births := Hashtbl.create 4;
        b
      in
      (* Apply a round's net signed deltas to the counts. Deaths (a
         present tuple's total reaching zero) are applied to the store
         immediately and returned for the next cascade round; births
         (positive support for an absent tuple) are only queued — they
         are applied after all deletion-side work, so the backward
         search never sees half-inserted state. Decrements aimed at a
         tuple with no cell are support through something this batch
         already killed: discarded, like the increments such a tuple's
         own count would have carried. *)
      let settle () =
        let deaths : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
        (* merge the scratch [low] delta into a live cell; [low] stays
           within [0, recs] — the clamps only absorb attribution the
           index deliberately undercounts (e.g. a decrement whose birth
           predated the index), never inflate it *)
        let merge_low (cell : Relation.count_cell) dlow =
          let low = cell.Relation.low + dlow in
          let low = if low < 0 then 0 else low in
          cell.Relation.low <-
            (if low > cell.Relation.recs then cell.Relation.recs else low)
        in
        let fresh_cell c tup (dcell : Relation.count_cell) dex drec =
          let cell = Relation.count_cell c tup in
          cell.Relation.exits <- dex;
          cell.Relation.recs <- drec;
          cell.Relation.level <- dcell.Relation.level;
          let l = if dcell.Relation.low < 0 then 0 else dcell.Relation.low in
          cell.Relation.low <- (if l > drec then drec else l)
        in
        Hashtbl.iter
          (fun pred (round_counts : Relation.counts) ->
            let rel = Hashtbl.find heads pred in
            let c = Hashtbl.find counts_of pred in
            let arity = Relation.arity rel in
            Relation.counts_iter
              (fun tup dcell ->
                let dex = dcell.Relation.exits and drec = dcell.Relation.recs in
                if dex <> 0 || drec <> 0 || dcell.Relation.low <> 0 then
                  if Relation.mem rel tup then (
                    match Relation.count_find c tup with
                    | Some cell ->
                      cell.Relation.exits <- cell.Relation.exits + dex;
                      cell.Relation.recs <- cell.Relation.recs + drec;
                      merge_low cell dcell.Relation.low;
                      if Relation.count_total cell <= 0 then begin
                        morgue_put pred tup cell.Relation.level;
                        Relation.count_drop c tup;
                        ignore (Relation.remove rel tup);
                        record_remove d pred ~arity tup;
                        ignore (Relation.add (delta_rel deaths pred ~arity) tup)
                      end
                    | None ->
                      (* present but never counted: a base fact listed
                         for this derived predicate. New derivations
                         attach a cell (with the newborn level the
                         scratch collected); stray decrements are bogus
                         and keep the fact pinned. *)
                      if dex + drec > 0 then fresh_cell c tup dcell dex drec)
                  else
                    match Relation.count_find c tup with
                    | Some cell ->
                      cell.Relation.exits <- cell.Relation.exits + dex;
                      cell.Relation.recs <- cell.Relation.recs + drec;
                      merge_low cell dcell.Relation.low;
                      if Relation.count_total cell <= 0 then begin
                        morgue_put pred tup cell.Relation.level;
                        Relation.count_drop c tup
                      end
                      else
                        ignore (Relation.add (delta_rel !pending_births pred ~arity) tup)
                    | None ->
                      if dex + drec > 0 then begin
                        fresh_cell c tup dcell dex drec;
                        ignore (Relation.add (delta_rel !pending_births pred ~arity) tup)
                      end)
              round_counts)
          sc;
        Hashtbl.reset sc;
        deaths
      in
      (* deterministic per-shard buffer merges, in shard order. For a
         tuple both shards touched the encodings agree (the canonical
         store is frozen while a round enumerates): existing-cell
         entries all carry scratch level [max_int] so their signed
         [low] deltas add; newborn candidates keep the least level and
         sum the [low] contributions attaining it. *)
      let merge_scratch dst_tbl src_tbl =
        Hashtbl.iter
          (fun pred (src : Relation.counts) ->
            let dstc =
              match Hashtbl.find_opt dst_tbl pred with
              | Some c -> c
              | None ->
                let c = Relation.counts_create () in
                Hashtbl.add dst_tbl pred c;
                c
            in
            Relation.counts_iter
              (fun tup scell ->
                let dcell = Relation.count_cell dstc tup in
                dcell.Relation.exits <- dcell.Relation.exits + scell.Relation.exits;
                dcell.Relation.recs <- dcell.Relation.recs + scell.Relation.recs;
                if scell.Relation.level < dcell.Relation.level then begin
                  dcell.Relation.level <- scell.Relation.level;
                  dcell.Relation.low <- scell.Relation.low
                end
                else if scell.Relation.level = dcell.Relation.level then
                  dcell.Relation.low <- dcell.Relation.low + scell.Relation.low)
              src)
          src_tbl
      in
      let merge_dec dst src =
        Hashtbl.iter
          (fun pred r ->
            Relation.iter
              (fun tup ->
                ignore (Relation.add (delta_rel dst pred ~arity:(Array.length tup)) tup))
              r)
          src
      in
      (* run one propagation round's enumerations: serially into the
         global scratch, or fanned out over the shard crew when the
         driving delta is worth the crew round-trip. Shard jobs only
         read shared state (store views, canonical cells, morgue) and
         fill private buffers, merged here behind the barrier. *)
      let fanout_round ~size enumerate =
        match sharded with
        | Some shc when size >= 4 * shc.nshards ->
          let k = shc.nshards in
          let scs = Array.init k (fun _ -> Hashtbl.create 4) in
          let decs = Array.init k (fun _ -> Hashtbl.create 4) in
          let works = Array.make k 0 in
          let job s =
            let ring_s = if s = 0 then ring else shc.shard_rings.(s) in
            let t0 = if Obs.Ring.enabled ring_s then Obs.Ring.now_ns ring_s else 0 in
            let w = ref 0 in
            enumerate ~sprs:prs_by_shard.(s) ~sct:scs.(s) ~dec:decs.(s)
              ~shard:(Some (s, k)) ~work:w;
            works.(s) <- !w;
            if Obs.Ring.enabled ring_s then
              Obs.Ring.emit ring_s ~kind:Obs.Event.shard ~a:s ~b:t0
          in
          Parallel.Shard_crew.run shc.crew job;
          Array.iter (fun w -> work := !work + w) works;
          Array.iter (fun s_sc -> merge_scratch sc s_sc) scs;
          Array.iter (fun s_dec -> merge_dec dec_touched s_dec) decs
        | Some _ | None ->
          enumerate ~sprs:prs ~sct:sc ~dec:dec_touched ~shard:None ~work
      in
      (* one in-component cascade round: the delta (this round's deaths
         or births, already applied to the store) drives every rule at
         its in-component positions; [pre] is the pre-round state for
         the late positions. For a linear rule the delta position is
         its only in-component atom, so the witness is the delta tuple
         itself; its level is read at emission time. Only scratch
         counts are written, so the non-deferred executor is safe. *)
      let enumerate_in_comp ~sign ~round ~pre ~sprs ~sct ~dec ~shard ~work =
        List.iter
          (fun pr ->
            let r = pr.rule in
            let hpred = r.Ast.head.Ast.pred in
            let lin = linear_pos comp_preds r in
            let supr = ref max_int in
            let witness =
              match lin with
              | Some (w, p) -> Some (w, fun tup -> supr := sup_level p tup)
              | None -> None
            in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt round a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    (* in-comp delta position ⇒ recursive rule *)
                    Plan.exec_rule ?witness ?shard ~view:ctx.new_view ~late_view:pre
                      ~delta:(i, delta) ~work
                      ~on_derived:(fun h ->
                        bump ~sct ~dec hpred false sign
                          (if lin = None then max_int else !supr)
                          h)
                      pr.ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          sprs
      in
      let round_size round =
        Hashtbl.fold (fun _ r acc -> acc + Relation.cardinality r) round 0
      in
      let cascade_deaths deaths0 =
        phase_begin ();
        let pending = ref deaths0 in
        while tbl_live !pending do
          let round = !pending in
          let pre = overlay_view ~plus:round ~minus:no_overlay ctx.new_view in
          fanout_round ~size:(round_size round) (enumerate_in_comp ~sign:(-1) ~round ~pre);
          pending := settle ()
        done;
        phase_end Obs.Event.cnt_forward
      in
      (* Backward phase: of the tuples that lost a derivation and
         survived without exit support, decide which still have a
         well-founded derivation. Worklist search: a suspect is hidden,
         then checked goal-directedly — its constants substituted into
         each recursive rule's body, looking for one satisfying match
         in the visible state (exit-supported survivors, upstream
         relations, peers not under suspicion). Exit rules can't prove
         a suspect: exits = 0 means no exit derivation exists, and
         hiding suspects (all same-component) doesn't change exit-rule
         bodies. The suspect pool is every present exits = 0 tuple in
         the component — a superset of any unfounded set, so an
         unfounded cycle cannot prove its members off each other via a
         not-yet-suspected peer: every such peer is itself suspect and
         hidden until resolved. Tuples with exit support are
         well-founded and never enter, which keeps the pool small
         next to DRed's overdeletion on densely supported relations.

         Within the pool the well-founded support index replaces most
         probes with an O(1) check. Suspects resolve in ascending
         cell-level order. A probe failure condemns the suspect and
         debits every consumer derivation the index counted through
         it (the linear-rule matches where it is the strictly-lower-
         level witness) in a side ledger — the condemned tuple's level
         certificate is stale, so consumers must not rely on it. A
         suspect whose [low] minus its debt is positive is proven
         without evaluation: each surviving [low] entry names a
         supporter at a strictly lower level, every strictly-lower
         suspect was already resolved (debts filed) by the drain
         order, so that supporter is either outside the pool or
         proven, and induction on levels grounds the chain in exit
         support. The debt can overshoot when [low] undercounted —
         that costs a probe, never soundness.

         Peers whose probe failed only because a later-proven suspect
         was hidden at the time re-prove in a post-drain retry sweep
         that repeats until a pass removes nothing. What survives
         unproven is supported only through the failed set itself —
         an unfounded cycle — and is removed, its counts discarded.
         Because every proof rests only on visible tuples (resolved-
         proven or exit-supported, neither of which the removal can
         kill), one backward round per batch suffices — see the drain
         site for the cascade argument. *)
      let head_env (r : Ast.rule) tup =
        let env = ref [] and ok = ref true in
        List.iteri
          (fun i t ->
            if !ok then
              match t with
              | Ast.Var v -> (
                match List.assoc_opt v !env with
                | Some x -> if x <> tup.(i) then ok := false
                | None -> env := (v, tup.(i)) :: !env)
              | Ast.Const c ->
                if Symbol.const_of ctx.symbols tup.(i) <> c then ok := false
              | Ast.Agg _ -> ok := false)
          r.Ast.head.Ast.args;
        if !ok then Some !env else None
      in
      let rec_prs = List.filter (fun pr -> rec_rule pr.rule) prs in
      (* goal-directed body order, fixed once per component: positives
         ascending by live cardinality so the probe hits the small
         relation first (edge before path, in transitive-closure
         terms); negations and comparisons last — range restriction
         binds their variables once every positive has run. The head
         bindings seed the matcher's environment as interned codes, so
         bound atoms resolve by index probe or O(1) membership. *)
      let probe_prs =
        let sorted pr =
          let pos, rest =
            List.partition (function Ast.Pos _ -> true | _ -> false) pr.rule.Ast.body
          in
          let key = function
            | Ast.Pos a -> ctx.card a.Ast.pred
            | Ast.Neg _ | Ast.Cmp _ -> max_int
          in
          List.stable_sort (fun x y -> compare (key x) (key y)) pos @ rest
        in
        List.map (fun pr -> (pr, sorted pr)) rec_prs
      in
      let exception Proved in
      let provable ~hide pred tup =
        List.exists
          (fun (pr, body) ->
            pr.rule.Ast.head.Ast.pred = pred
            &&
            match head_env pr.rule tup with
            | None -> false
            | Some env -> (
              try
                Matcher.eval_body ~symbols:ctx.symbols ~view:hide ~env ~work
                  ~on_env:(fun _ -> raise Proved)
                  body;
                false
              with Proved -> true))
          probe_prs
      in
      let o1_hits = ref 0 and full_probes = ref 0 in
      (* linear recursive rules with their in-component atom position:
         the only derivations the level index counts, hence the only
         ones a condemnation needs to debit *)
      let lin_prs =
        List.filter_map
          (fun pr ->
            if rec_rule pr.rule then
              match linear_pos comp_preds pr.rule with
              | Some (i, p) -> Some (pr, i, p)
              | None -> None
            else None)
          prs
      in
      let backward_prove () =
        let cell_of pred tup = Relation.count_find (Hashtbl.find counts_of pred) tup in
        (* trigger: some present tuple lost a derivation this round and
           is left without exit support — only then can anything have
           become unfounded. The scan is O(touched). *)
        let triggered = ref false in
        Hashtbl.iter
          (fun pred srel ->
            if not !triggered then
              let rel = Hashtbl.find heads pred in
              Relation.iter
                (fun tup ->
                  if (not !triggered) && Relation.mem rel tup then
                    match cell_of pred tup with
                    | Some cell when cell.Relation.exits = 0 -> triggered := true
                    | Some _ | None -> ())
                srel)
          dec_touched;
        Hashtbl.reset dec_touched;
        if not !triggered then None
        else begin
          (* suspect pool: every present tuple without exit support in
             the component — a superset of whatever is actually
             unfounded, so no consumer closure is needed to catch
             cycles that vouch for themselves through a not-yet-
             suspected peer. Enumerating consumers of each suspect
             (a join per cone member) used to dominate the phase;
             pool admission here is one cell inspection per tuple.

             Only probe-needing suspects materialize in the worklist:
             a tuple the index vouches for ([low - debt > 0]) is
             proven by its cell alone and never allocates an entry —
             the bulk of the pool, so the scan is field tests over
             the count table and nothing else. Initially that admits
             exactly the [low = 0] suspects; when a condemnation's
             debits exhaust a consumer's [low], the consumer joins
             its level bucket dynamically (always strictly above the
             drain frontier, so ascending order is preserved —
             [pending_levels] keeps the not-yet-drained level set
             sorted). Each entry carries its cell to spare re-hashing
             at resolution. *)
          let module Levels = Set.Make (Int) in
          let buckets :
              (int, (string * Relation.tuple * Relation.count_cell) list ref) Hashtbl.t
              =
            Hashtbl.create 64
          in
          let pending_levels = ref Levels.empty in
          let suspects = ref 0 and probe_admitted = ref 0 in
          let admit pred tup cell =
            incr probe_admitted;
            let lvl = cell.Relation.level in
            (match Hashtbl.find_opt buckets lvl with
            | Some l -> l := (pred, tup, cell) :: !l
            | None -> Hashtbl.replace buckets lvl (ref [ (pred, tup, cell) ]));
            pending_levels := Levels.add lvl !pending_levels
          in
          (* the present-check guards against queued births (in counts,
             not yet in the store); with none pending, counts ⊆ store
             — [settle] drops the cell of anything it removes — and
             the per-tuple membership hash is skipped wholesale *)
          let check_mem = tbl_live !pending_births in
          Hashtbl.iter
            (fun pred c ->
              let rel = Hashtbl.find heads pred in
              Relation.counts_iter
                (fun tup cell ->
                  if cell.Relation.exits = 0 && ((not check_mem) || Relation.mem rel tup)
                  then begin
                    incr suspects;
                    if cell.Relation.low = 0 then admit pred tup cell
                  end)
                c)
            counts_of;
          (* debts are filed straight into the consumer's cell ([debt]
             field): [low - debt] is the count of index entries still
             safe to rely on, read as field arithmetic — no side-ledger
             hashing on the O(1) path. [debited] remembers every
             touched cell so the debts are unwound before returning;
             cells persist across batches and must come back clean. *)
          let debited : Relation.count_cell list ref = ref [] in
          let condemned : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
          let condemn pred tup lvl =
            (* first failure only: debit every consumer derivation the
               level index counted through this tuple (linear rules
               where it is the strictly-lower-level witness). A level
               of max_int never entered any [low], so there is nothing
               to debit. *)
            if
              lvl < max_int
              && Relation.add (delta_rel condemned pred ~arity:(Array.length tup)) tup
            then begin
              let singleton = Relation.create ~arity:(Array.length tup) in
              ignore (Relation.add singleton tup);
              List.iter
                (fun (pr, i, p) ->
                  if p = pred then
                    let hpred = pr.rule.Ast.head.Ast.pred in
                    Plan.exec_rule ~view:ctx.new_view ~delta:(i, singleton) ~work
                      ~on_derived:(fun h ->
                        match cell_of hpred h with
                        | Some hc
                          when lvl < hc.Relation.level && hc.Relation.exits = 0 ->
                          if hc.Relation.debt = 0 then debited := hc :: !debited;
                          hc.Relation.debt <- hc.Relation.debt + 1;
                          (* the debit that exhausts [low] turns an
                             index-vouched consumer into a probe case:
                             it joins its level bucket now (its level is
                             strictly above the frontier). Pending
                             births carry cells but are absent from the
                             store and must stay out of the pool. *)
                          if
                            hc.Relation.debt = hc.Relation.low
                            && ((not check_mem)
                               || Relation.mem (Hashtbl.find heads hpred) h)
                          then admit hpred (Array.copy h) hc
                        | Some _ | None -> ())
                      pr.ex)
                lin_prs
            end
          in
          (* frontier visibility. The pool is never materialized as a
             hidden-tuple relation: a suspect's fate is read straight
             off its cell against the drain frontier, so the O(1) path
             writes nothing at all. With [frontier] at level L:
               - exits > 0, or no cell: visible (never a suspect);
               - level > L: hidden (unresolved — the ascending drain
                 has not reached it);
               - level < L: resolved — hidden iff its probe failed;
               - level = L: its O(1) fate is already stable. Debts
                 against a level-L tuple arise only from condemnations
                 at strictly lower levels, all complete before L
                 drains, so [low] minus debt > 0 here means the tuple
                 *will be* O(1)-proven — visible now, even mid-bucket.
                 Otherwise it is visible only once its probe succeeds
                 ([probe_proven], which retry successes also join —
                 level-max_int tuples have no other route to
                 visibility after the drain parks the frontier there. *)
          let failed : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
          let probe_proven : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
          let frontier = ref min_int in
          let in_tbl tbl pred tup =
            match Hashtbl.find_opt tbl pred with
            | Some r -> Relation.mem r tup
            | None -> false
          in
          (* probes ask about one predicate many times in a row; a
             physical-equality memo spares the string hash per
             candidate the index bucket hands out *)
          let memo_pred = ref "" and memo_counts = ref None in
          let counts_for pred =
            if pred == !memo_pred then !memo_counts
            else begin
              memo_pred := pred;
              memo_counts := Hashtbl.find_opt counts_of pred;
              !memo_counts
            end
          in
          let hidden pred tup =
            match counts_for pred with
            | None -> false
            | Some c -> (
              match Relation.count_find c tup with
              | None -> false
              | Some cell ->
                cell.Relation.exits = 0
                &&
                let lvl = cell.Relation.level in
                if lvl > !frontier then true
                else if lvl < !frontier then in_tbl failed pred tup
                else
                  not
                    (cell.Relation.low - cell.Relation.debt > 0
                    || in_tbl probe_proven pred tup))
          in
          let hide =
            let base = ctx.new_view in
            {
              Matcher.mem =
                (fun p tup -> base.Matcher.mem p tup && not (hidden p tup));
              iter_matching =
                (fun p ~col ~value f ->
                  base.Matcher.iter_matching p ~col ~value (fun t ->
                      if not (hidden p t) then f t));
              iter =
                (fun p f ->
                  base.Matcher.iter p (fun t -> if not (hidden p t) then f t));
            }
          in
          (* drain ascending. Every bucket entry needs its probe — the
             index-vouched majority never entered. A bucket is stable
             while draining: condemnations at level L debit only
             strictly-higher consumers, so dynamic admissions land in
             later buckets (possibly at levels unseen at admission,
             which is why the level set is consulted afresh each
             step). Suspects never admitted are O(1) proofs — counted
             by subtraction, having cost no work at all. *)
          let rec drain () =
            match Levels.min_elt_opt !pending_levels with
            | None -> ()
            | Some lvl ->
              pending_levels := Levels.remove lvl !pending_levels;
              frontier := lvl;
              List.iter
                (fun (pred, tup, cell) ->
                  incr full_probes;
                  if provable ~hide pred tup then
                    ignore
                      (Relation.add
                         (delta_rel probe_proven pred ~arity:(Array.length tup))
                         tup)
                  else begin
                    ignore
                      (Relation.add
                         (delta_rel failed pred ~arity:(Array.length tup))
                         tup);
                    condemn pred tup cell.Relation.level
                  end)
                !(Hashtbl.find buckets lvl);
              drain ()
          in
          drain ();
          o1_hits := !o1_hits + !suspects - !probe_admitted;
          frontier := max_int;
          (* retry sweep: a suspect that failed its probe only because
             a later-proven peer was hidden at the time re-proves here.
             Passes repeat until one removes nothing; what then remains
             is supported only through the failed set itself. The O(1)
             check cannot fire anew — [low] is fixed and debts only
             grow — so these are full probes, counted as such. *)
          let retry = ref true in
          while !retry do
            retry := false;
            let pending = ref [] in
            Hashtbl.iter
              (fun pred u ->
                Relation.iter
                  (fun tup ->
                    let lvl =
                      match cell_of pred tup with
                      | Some c -> c.Relation.level
                      | None -> max_int
                    in
                    pending := (lvl, pred, tup) :: !pending)
                  u)
              failed;
            List.iter
              (fun (_, pred, tup) ->
                let u = Hashtbl.find failed pred in
                if Relation.mem u tup then begin
                  incr full_probes;
                  if provable ~hide pred tup then begin
                    ignore (Relation.remove u tup);
                    ignore
                      (Relation.add
                         (delta_rel probe_proven pred ~arity:(Array.length tup))
                         tup);
                    retry := true
                  end
                end)
              (List.sort compare !pending)
          done;
          let deaths : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
          let any = ref false in
          Hashtbl.iter
            (fun pred u ->
              if Relation.cardinality u > 0 then begin
                any := true;
                let rel = Hashtbl.find heads pred in
                let c = Hashtbl.find counts_of pred in
                let arity = Relation.arity rel in
                Relation.iter
                  (fun tup ->
                    (match Relation.count_find c tup with
                    | Some cell -> morgue_put pred tup cell.Relation.level
                    | None -> ());
                    Relation.count_drop c tup;
                    ignore (Relation.remove rel tup);
                    record_remove d pred ~arity tup;
                    ignore (Relation.add (delta_rel deaths pred ~arity) tup))
                  u
              end)
            failed;
          (* unwind the debts — cells outlive this call *)
          List.iter (fun (c : Relation.count_cell) -> c.Relation.debt <- 0) !debited;
          if !any then Some deaths else None
        end
      in
      let apply_births pending =
        let applied : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
        Hashtbl.iter
          (fun pred r ->
            if Relation.cardinality r > 0 then begin
              let rel = Hashtbl.find heads pred in
              let c = Hashtbl.find counts_of pred in
              let arity = Relation.arity rel in
              Relation.iter
                (fun tup ->
                  (* re-check: support queued earlier may have been
                     cancelled by later decrements *)
                  match Relation.count_find c tup with
                  | Some cell when Relation.count_total cell > 0 ->
                    if Relation.add rel tup then begin
                      record_add d pred ~arity tup;
                      ignore (Relation.add (delta_rel applied pred ~arity) tup)
                    end
                  | Some _ | None -> ())
                r
            end)
          pending;
        applied
      in
      let rec birth_rounds round =
        if tbl_live round then begin
          let pre = overlay_view ~plus:no_overlay ~minus:round ctx.new_view in
          fanout_round ~size:(round_size round) (enumerate_in_comp ~sign:1 ~round ~pre);
          (* increments only: settle can queue further births but can
             produce no deaths *)
          ignore (settle ());
          birth_rounds (apply_births (take_births ()))
        end
      in
      begin
        (* round 0: propagate the external update's signed deltas.
           Added tuples of a positive literal derive with sign +1 and
           removed with -1; for a negated literal the signs flip and
           the flipped-positive plan ranges over the change. Late
           positions read the old view — comp relations are untouched
           during the round, so old and new agree on them, exactly the
           "externals first" serialization. *)
        phase_begin ();
        let size0 =
          let card_of tbl pred =
            match Hashtbl.find_opt tbl pred with
            | Some r -> Relation.cardinality r
            | None -> 0
          in
          List.fold_left
            (fun acc pr ->
              List.fold_left
                (fun acc lit ->
                  match lit with
                  | Ast.Pos a when not (Hashtbl.mem comp_preds a.Ast.pred) ->
                    acc + card_of d.added a.Ast.pred + card_of d.removed a.Ast.pred
                  | Ast.Neg a ->
                    acc + card_of d.added a.Ast.pred + card_of d.removed a.Ast.pred
                  | Ast.Pos _ | Ast.Cmp _ -> acc)
                acc pr.rule.Ast.body)
            0 prs
        in
        let enumerate_round0 ~sprs ~sct ~dec ~shard ~work =
          List.iter
            (fun pr ->
              let r = pr.rule in
              let hpred = r.Ast.head.Ast.pred in
              let exit = not (rec_rule r) in
              (* a recursive rule's in-comp atom is an ordinary Match
                 step here (the delta is external), which is what the
                 witness mechanism is for; flipped plans keep body
                 positions, so the same witness serves them *)
              let lin = linear_pos comp_preds r in
              let supr = ref max_int in
              let witness =
                match lin with
                | Some (w, p) -> Some (w, fun tup -> supr := sup_level p tup)
                | None -> None
              in
              let emit sign h =
                bump ~sct ~dec hpred exit sign
                  (if lin = None then max_int else !supr)
                  h
              in
              List.iteri
                (fun i lit ->
                  match lit with
                  | Ast.Pos a when not (Hashtbl.mem comp_preds a.Ast.pred) ->
                    if nonempty d.added a.Ast.pred then
                      Plan.exec_rule ?witness ?shard ~view:ctx.new_view
                        ~late_view:ctx.old_view
                        ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                        ~work ~on_derived:(emit 1) pr.ex;
                    if nonempty d.removed a.Ast.pred then
                      Plan.exec_rule ?witness ?shard ~view:ctx.new_view
                        ~late_view:ctx.old_view
                        ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                        ~work
                        ~on_derived:(emit (-1))
                        pr.ex
                  | Ast.Neg a ->
                    if nonempty d.added a.Ast.pred || nonempty d.removed a.Ast.pred
                    then begin
                      let _, fex = flipped_for pr i in
                      if nonempty d.added a.Ast.pred then
                        Plan.exec_rule ?witness ?shard ~view:ctx.new_view
                          ~late_view:ctx.old_view
                          ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                          ~work
                          ~on_derived:(emit (-1))
                          fex;
                      if nonempty d.removed a.Ast.pred then
                        Plan.exec_rule ?witness ?shard ~view:ctx.new_view
                          ~late_view:ctx.old_view
                          ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                          ~work ~on_derived:(emit 1) fex
                    end
                  | Ast.Pos _ | Ast.Cmp _ -> ())
                r.Ast.body)
            sprs
        in
        fanout_round ~size:size0 enumerate_round0;
        let deaths0 = settle () in
        phase_end Obs.Event.cnt_propagate;
        cascade_deaths deaths0;
        if recursive then begin
          phase_begin ();
          let more = backward_prove () in
          phase_end Obs.Event.cnt_backward;
          (match more with
          | None -> ()
          | Some deaths ->
            (* One round suffices. Every surviving suspect's proof was
               checked against visible tuples only — resolved-proven
               peers and exit-supported tuples — and none of those die
               here: the cascade strips exactly the derivations running
               through the removed unfounded set, so each survivor
               keeps its witnessing derivation and a positive count,
               and exit counts are untouched (exit-rule bodies hold no
               component predicates). Nothing new becomes unfounded,
               so the re-verification trigger the cascade accumulates
               is vacuous — drop it. *)
            cascade_deaths deaths;
            Hashtbl.reset dec_touched);
          if traced then begin
            Obs.Ring.emit ring ~kind:Obs.Event.cnt_o1_hit ~a:!o1_hits ~b:comp;
            Obs.Ring.emit ring ~kind:Obs.Event.cnt_full_probe ~a:!full_probes ~b:comp
          end
        end;
        phase_begin ();
        birth_rounds (apply_births (take_births ()));
        phase_end Obs.Event.cnt_forward;
        Hashtbl.iter (fun _ rel -> Relation.counts_sync rel) heads
      end
    in
    (match ctx.strategy.(comp) with
    (* nothing upstream changed ⇒ no deltas can reach this component;
       skipping also avoids rebuilding stale counts nobody needs yet *)
    | Analyze.Counting ->
      if input_changed then
        run_phases_counting
          (match shard_ctx with
          | Some sc when sc.nshards > 1 && Array.length prs_by_shard = sc.nshards ->
            Some sc
          | Some _ | None -> None)
    | Analyze.Dred -> (
      match shard_ctx with
      | Some sc when sc.nshards > 1 && Array.length prs_by_shard = sc.nshards ->
        run_phases_sharded sc
      | Some _ | None -> run_phases_serial ()));
    { comp; work = !work; output_changed = members_changed (); input_changed }

(* Every mutation a component's maintenance performs — store writes,
   delta recording, cascade staging — happens on the thread running
   this call (shard crew jobs only fill private buffers; merges run
   here), so one writer scope around the whole body is exactly the
   ownership granularity the sanitizer checks. *)
let process_comp ?ring ?shard_ctx ctx (pc : prepared_comp) =
  if ctx.sanitize then
    Relation.Sanitize.with_writer pc.tag (fun () ->
        process_comp_unsanitized ?ring ?shard_ctx ctx pc)
  else process_comp_unsanitized ?ring ?shard_ctx ctx pc

(* ---- report assembly -------------------------------------------- *)

let assemble_report ctx slots =
  (* components the parallel run never reached are provably untouched
     (no upstream delta, see [apply_parallel]); report them exactly as
     the serial walk would: zero work, nothing changed *)
  let activity =
    Stratify.scc_order ctx.anal
    |> Array.to_list
    |> List.map (fun c ->
           match slots.(c) with
           | Some a -> a
           | None ->
             { comp = c; work = 0; output_changed = false; input_changed = false })
  in
  let changes =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun pred r ->
        if Relation.cardinality r > 0 then
          Hashtbl.replace tbl pred (Relation.cardinality r, 0))
      ctx.d.added;
    Hashtbl.iter
      (fun pred r ->
        if Relation.cardinality r > 0 then begin
          let a = match Hashtbl.find_opt tbl pred with Some (a, _) -> a | None -> 0 in
          Hashtbl.replace tbl pred (a, Relation.cardinality r)
        end)
      ctx.d.removed;
    Hashtbl.fold (fun pred (added, removed) acc -> { pred; added; removed } :: acc) tbl []
    |> List.sort (fun a b -> String.compare a.pred b.pred)
  in
  { changes; activity; analysis = ctx.anal }

(* Tag every relation of every component — the store and its delta
   pair — with the owning component's writer tag, so that any mutation
   from outside that component's [process_comp] scope raises
   {!Relation.Sanitize.Violation}. Tags go on *after* the base updates
   (which legitimately run untagged, on the caller's thread) and come
   off in [with_sanitize]'s finally, leaving the database as reusable
   as the sanitizer found it. *)
let sanitize_tag_all ctx prepared =
  Array.iter
    (fun pc ->
      Array.iter
        (fun p ->
          let name = ctx.anal.Stratify.predicates.(p) in
          (match Database.find ctx.db name with
          | Some rel -> Relation.Sanitize.set_owner rel ~name ~owner:pc.tag
          | None -> ());
          (match Hashtbl.find_opt ctx.d.added name with
          | Some r -> Relation.Sanitize.set_owner r ~name:("+" ^ name) ~owner:pc.tag
          | None -> ());
          match Hashtbl.find_opt ctx.d.removed name with
          | Some r -> Relation.Sanitize.set_owner r ~name:("-" ^ name) ~owner:pc.tag
          | None -> ())
        pc.members)
    prepared

let sanitize_untag_all ctx =
  Array.iter
    (fun name ->
      (match Database.find ctx.db name with
      | Some rel -> Relation.Sanitize.clear_owner rel
      | None -> ());
      (match Hashtbl.find_opt ctx.d.added name with
      | Some r -> Relation.Sanitize.clear_owner r
      | None -> ());
      match Hashtbl.find_opt ctx.d.removed name with
      | Some r -> Relation.Sanitize.clear_owner r
      | None -> ())
    ctx.anal.Stratify.predicates

let with_sanitize ctx prepared f =
  if not ctx.sanitize then f ()
  else begin
    sanitize_tag_all ctx prepared;
    Fun.protect ~finally:(fun () -> sanitize_untag_all ctx) f
  end

let setup ?(shards = 1) ?sanitize ?on_warn ~engine ~maint db program ~additions
    ~deletions =
  let ctx = make_ctx ~shards ?sanitize ?on_warn ~engine ~maint db program in
  List.iter (check_edb ctx.anal) additions;
  List.iter (check_edb ctx.anal) deletions;
  apply_base_updates ctx ~additions ~deletions;
  prepare_deltas ctx;
  let n = Dag.Graph.node_count ctx.anal.Stratify.condensation.Dag.Scc.dag in
  (ctx, Array.init n (prepare_comp ~shards ctx))

(* the serial component walk, shared by [apply] and [apply_parallel]'s
   small-update fallback; records DRed phase spans on ring 0 *)
let run_serial_walk ~obs ?shard_ctx ctx prepared =
  let slots = Array.make (Array.length prepared) None in
  let ring = Obs.Trace.ring obs 0 in
  Array.iter
    (fun c -> slots.(c) <- Some (process_comp ~ring ?shard_ctx ctx prepared.(c)))
    (Stratify.scc_order ctx.anal);
  assemble_report ctx slots

let check_maint_engine ~who maint engine =
  match (maint, engine) with
  | Counting, Plan.Interpreted ->
    invalid_arg
      (who
     ^ ": counting maintenance requires the compiled engine (the interpretive \
        oracle has no split-view mode)")
  (* Auto resolves to DRed everywhere under the interpretive engine *)
  | (Counting | Dred | Auto), _ -> ()

let apply ?(engine = Plan.default_engine) ?(maint = Dred) ?sanitize ?on_warn
    ?(obs = Obs.Trace.disabled) db program ~additions ~deletions =
  check_maint_engine ~who:"Incremental.apply" maint engine;
  let ctx, prepared = setup ?sanitize ?on_warn ~engine ~maint db program ~additions ~deletions in
  with_sanitize ctx prepared (fun () -> run_serial_walk ~obs ctx prepared)

(* Build and stamp the counting side tables of every derived component
   against the database's current (materialized) contents — one full-
   join pass per rule. Callers run this once after {!Eval}
   materialization so the first [apply ~maint:Counting] update doesn't
   pay the rebuild inside the measured batch; skipping it is still
   correct, merely slower once. *)
let prime ?(engine = Plan.default_engine) db program =
  check_maint_engine ~who:"Incremental.prime" Counting engine;
  let ctx = make_ctx ~engine ~maint:Counting db program in
  let work = ref 0 in
  Array.iter
    (fun c ->
      let pc = prepare_comp ctx c in
      match pc.body with
      | Extensional | Aggregate_rule _ -> ()
      | Rules prs_by_shard ->
        ignore (recount_comp ctx pc prs_by_shard.(0) ~shards:1 ~view:ctx.new_view ~work);
        Array.iter
          (fun p ->
            match Database.find ctx.db ctx.anal.Stratify.predicates.(p) with
            | Some rel -> Relation.counts_sync rel
            | None -> ())
          pc.members)
    (Stratify.scc_order ctx.anal);
  !work

(* ---- parallel maintenance over the multicore executor -----------

   One executor task per condensation component, running the exact
   serial [process_comp] body. Safety rests on two facts:

   - {e ownership}: a component task writes only its own predicates'
     relations and delta relations (every head predicate of its rules
     is a member); everything it reads — body predicates, through the
     views — is upstream or same-component in the dependency DAG.

   - {e quiescence by precedence}: the executor starts a task only
     after every *activated* ancestor completed. The trace below marks
     every edge changed (which inputs actually changed is only
     discovered as upstream tasks run, so the activation wavefront is
     conservative), hence a task's released state implies each of its
     ancestor chains from the initial set is fully completed: had any
     chain a first-incomplete node, that node would be activated and
     incomplete, and the scheduler would still be holding this task.
     Ancestors outside the wavefront never run and never touch their
     relations. Either way every upstream read observes settled state,
     with happens-before established by the scheduler's lock
     ({!Sched.Protected}) on the release path.

   The serial prologue above freezes all shared structure (plans
   compiled, delta tables pre-created, relations registered); the one
   remaining cross-component write — aggregate tasks interning fresh
   constants — is what {!Symbol}'s internal mutex is for.

   With [shards > 1] each component task additionally fans its phase
   rounds out over a {!Parallel.Shard_crew} (see [process_comp]); the
   crew is created once per update and shared — its entry mutex
   serializes fan-outs from concurrently running component tasks.

   When the conservative activation wavefront holds fewer than
   [serial_threshold] tasks, the executor's domain spawn-and-join
   costs more than the update itself (measured on the wide-48tc bench:
   0.87x at 2 domains for a 96-task trace on a small host); such
   updates run the plain serial walk instead — still sharded when
   [shards > 1]. *)

let serial_task_threshold = 8

(* Static ownership verification: the safety argument of the parallel
   driver — each component task writes only its own predicates, reads
   only upstream ones — checked against the effect sets of the plans
   that will actually run, instead of trusted by construction. Read
   sets come from {!Plan.exec_reads} over the precompiled plan stores
   (base, per-delta, flipped-negation variants), write sets from the
   rule heads; {!Analyze.check_ownership} decides against the
   condensation. Aggregate components have no plans; their single rule
   is checked from its body. *)
let verify_ownership ctx prepared =
  let union_reads acc reads =
    List.fold_left (fun acc p -> if List.mem p acc then acc else p :: acc) acc reads
  in
  Array.fold_left
    (fun acc (pc : prepared_comp) ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match pc.body with
        | Extensional -> Ok ()
        | Aggregate_rule r ->
          Analyze.check_ownership ctx.anal ~comp:pc.comp
            ~writes:[ r.Ast.head.Ast.pred ] ~reads:(Plan.body_reads r)
        | Rules prs_by_shard ->
          let writes, reads =
            Array.fold_left
              (fun acc prs ->
                List.fold_left
                  (fun (ws, rs) pr ->
                    let rs = union_reads rs (Plan.exec_reads pr.ex) in
                    let rs =
                      List.fold_left
                        (fun rs (_, _, fex) -> union_reads rs (Plan.exec_reads fex))
                        rs pr.flipped
                    in
                    let h = pr.rule.Ast.head.Ast.pred in
                    ((if List.mem h ws then ws else h :: ws), rs))
                  acc prs)
              ([], []) prs_by_shard
          in
          Analyze.check_ownership ctx.anal ~comp:pc.comp ~writes ~reads))
    (Ok ()) prepared

let apply_parallel ?(engine = Plan.default_engine) ?(maint = Dred) ?(domains = 4)
    ?(shards = 1) ?(serial_threshold = serial_task_threshold) ?sched ?sanitize
    ?on_warn ?(obs = Obs.Trace.disabled) db program ~additions ~deletions =
  if shards < 1 then invalid_arg "Incremental.apply_parallel: shards < 1";
  check_maint_engine ~who:"Incremental.apply_parallel" maint engine;
  if domains <= 1 && shards <= 1 then
    apply ~engine ~maint ?sanitize ?on_warn ~obs db program ~additions ~deletions
  else begin
    (match engine with
    | Plan.Compiled -> ()
    | Plan.Interpreted ->
      invalid_arg
        "Incremental.apply_parallel: the interpretive oracle is not domain-safe; \
         use the compiled engine");
    let sched = match sched with Some s -> s | None -> Sched.Level_based.factory in
    let ctx, prepared =
      setup ~shards ?sanitize ?on_warn ~engine ~maint db program ~additions ~deletions
    in
    Array.iter precompile_comp prepared;
    with_sanitize ctx prepared @@ fun () ->
    match verify_ownership ctx prepared with
    | Error msg ->
      (* a plan set reaching outside its declared ownership would make
         parallel dispatch unsound: refuse it and run serially, which
         needs no ownership at all *)
      ctx.on_warn
        ("apply_parallel: static ownership verification failed — " ^ msg
       ^ "; refusing parallel dispatch, running the serial walk");
      run_serial_walk ~obs ctx prepared
    | Ok () ->
    let cond = ctx.anal.Stratify.condensation in
    let g = cond.Dag.Scc.dag in
    let n = Dag.Graph.node_count g in
    (* initial tasks: extensional components whose base facts changed *)
    let initial =
      Array.to_list (Array.init n Fun.id)
      |> List.filter (fun c ->
             let members = cond.Dag.Scc.members.(c) in
             Array.for_all (fun p -> ctx.anal.Stratify.edb.(p)) members
             && Array.exists
                  (fun p ->
                    let name = ctx.anal.Stratify.predicates.(p) in
                    nonempty ctx.d.added name || nonempty ctx.d.removed name)
                  members)
      |> Array.of_list
    in
    if Array.length initial = 0 then assemble_report ctx (Array.make n None)
    else begin
      let kind = Array.make n Workload.Trace.Task in
      let shape = Array.make n (Workload.Trace.Seq 1.0) in
      let edge_changed = Array.make (Dag.Graph.edge_count g) true in
      let trace =
        Workload.Trace.create ~name:"dred-parallel" ~graph:g ~kind ~shape ~initial
          ~edge_changed
      in
      (* active tasks under the conservative all-edges-changed
         wavefront — an upper bound on how many component tasks the
         executor could run for this update *)
      let active =
        let s = Workload.Trace.stats trace in
        s.Workload.Trace.initial_tasks + s.Workload.Trace.active_jobs
      in
      let with_shard_ctx f =
        if shards <= 1 then f None
        else begin
          let crew = Parallel.Shard_crew.create ~shards in
          Fun.protect
            ~finally:(fun () -> Parallel.Shard_crew.shutdown crew)
            (fun () ->
              let shard_rings =
                (* crew worker [j] (= shard j, j >= 1) owns the ring
                   after the executor workers' *)
                Array.init shards (fun s ->
                    if s = 0 then Obs.Ring.null
                    else Obs.Trace.ring obs (max 1 domains + s - 1))
              in
              f (Some { crew; nshards = shards; shard_rings }))
        end
      in
      with_shard_ctx (fun shard_ctx ->
          if domains <= 1 || active < serial_threshold then
            run_serial_walk ~obs ?shard_ctx ctx prepared
          else begin
            let slots = Array.make n None in
            let run_task ~wid c =
              slots.(c) <-
                Some
                  (process_comp ~ring:(Obs.Trace.ring obs wid) ?shard_ctx ctx
                     prepared.(c))
            in
            ignore
              (Parallel.Executor.run ~domains ~work_unit:0.0 ~run_task ~obs ~sched
                 trace);
            assemble_report ctx slots
          end)
    end
  end
