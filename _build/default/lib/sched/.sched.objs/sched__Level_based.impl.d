lib/sched/level_based.ml: Array Dag Intf Prelude Queue
