exception Error of { line : int; col : int; message : string }

type state = { mutable toks : Lexer.located list }

let errf (l : Lexer.located) fmt =
  Printf.ksprintf
    (fun message -> raise (Error { line = l.Lexer.line; col = l.Lexer.col; message }))
    fmt

let peek st =
  match st.toks with [] -> assert false (* EOF sentinel present *) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let tok_str tok = Format.asprintf "%a" Lexer.pp_token tok

let expect st tok what =
  let t = peek st in
  if t.Lexer.token = tok then advance st
  else errf t "expected %s, found %s" what (tok_str t.Lexer.token)

let agg_of_name = function
  | "cnt" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

(* [head] permits aggregate terms like [sum(X)]. *)
let parse_term ?(head = false) st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.VAR v ->
    advance st;
    Ast.Var v
  | Lexer.IDENT s -> (
    advance st;
    match (agg_of_name s, (peek st).Lexer.token) with
    | Some agg, Lexer.LPAREN when head -> (
      advance st;
      let t2 = peek st in
      match t2.Lexer.token with
      | Lexer.VAR v ->
        advance st;
        expect st Lexer.RPAREN "')'";
        Ast.Agg (agg, v)
      | tok -> errf t2 "expected a variable under %s(...), found %s" s (tok_str tok))
    | _ -> Ast.Const (Ast.Sym s))
  | Lexer.STRING s ->
    advance st;
    Ast.Const (Ast.Sym s)
  | Lexer.INT i ->
    advance st;
    Ast.Const (Ast.Int i)
  | tok -> errf t "expected a term, found %s" (tok_str tok)

let parse_atom_at ?(head = false) st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.IDENT pred ->
    advance st;
    if (peek st).Lexer.token = Lexer.LPAREN then begin
      advance st;
      let rec args acc =
        let acc = parse_term ~head st :: acc in
        match (peek st).Lexer.token with
        | Lexer.COMMA ->
          advance st;
          args acc
        | _ ->
          expect st Lexer.RPAREN "')'";
          List.rev acc
      in
      { Ast.pred; args = args [] }
    end
    else { Ast.pred; args = [] }
  | tok -> errf t "expected a predicate, found %s" (tok_str tok)

let parse_literal st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.BANG ->
    advance st;
    Ast.Neg (parse_atom_at st)
  | Lexer.IDENT _ -> (
    (* could be an atom, or a symbol constant in a comparison *)
    let atom = parse_atom_at st in
    match ((peek st).Lexer.token, atom.Ast.args) with
    | Lexer.OP op, [] ->
      advance st;
      let rhs = parse_term st in
      Ast.Cmp (op, Ast.Const (Ast.Sym atom.Ast.pred), rhs)
    | _ -> Ast.Pos atom)
  | Lexer.VAR _ | Lexer.INT _ | Lexer.STRING _ -> (
    let lhs = parse_term st in
    let t2 = peek st in
    match t2.Lexer.token with
    | Lexer.OP op ->
      advance st;
      let rhs = parse_term st in
      Ast.Cmp (op, lhs, rhs)
    | tok -> errf t2 "expected a comparison operator, found %s" (tok_str tok))
  | tok -> errf t "expected a literal, found %s" (tok_str tok)

let parse_clause st =
  let start = peek st in
  let head = parse_atom_at ~head:true st in
  let t = peek st in
  let rule =
    match t.Lexer.token with
    | Lexer.PERIOD ->
      advance st;
      { Ast.head; body = [] }
    | Lexer.TURNSTILE ->
      advance st;
      let rec body acc =
        let acc = parse_literal st :: acc in
        match (peek st).Lexer.token with
        | Lexer.COMMA ->
          advance st;
          body acc
        | _ ->
          expect st Lexer.PERIOD "'.'";
          List.rev acc
      in
      { Ast.head; body = body [] }
    | tok -> errf t "expected '.' or ':-', found %s" (tok_str tok)
  in
  if not (Ast.range_restricted rule) then
    errf start "clause for %s is not range-restricted" head.Ast.pred;
  rule

let with_lexer f src =
  try f src
  with Lexer.Error { line; col; message } -> raise (Error { line; col; message })

let parse src =
  with_lexer
    (fun src ->
      let st = { toks = Lexer.tokenize src } in
      let rec clauses acc =
        if (peek st).Lexer.token = Lexer.EOF then List.rev acc
        else clauses (parse_clause st :: acc)
      in
      clauses [])
    src

let parse_atom src =
  with_lexer
    (fun src ->
      let st = { toks = Lexer.tokenize src } in
      let atom = parse_atom_at st in
      (match (peek st).Lexer.token with
      | Lexer.PERIOD -> advance st
      | _ -> ());
      let t = peek st in
      if t.Lexer.token <> Lexer.EOF then errf t "trailing input after atom";
      atom)
    src
