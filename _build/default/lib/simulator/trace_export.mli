(** Schedule visualization: export a run's task log as Chrome trace
    events (the [chrome://tracing] / Perfetto JSON array format).

    Tasks appear as complete events ("ph":"X") with one row per task;
    durations are the virtual seconds of the simulation scaled to
    microseconds. Load the file in Perfetto or chrome://tracing to see
    level barriers, idle gaps, and the scheduling-overhead stalls. *)

val write :
  ?labels:(int -> string) ->
  out_channel ->
  procs:int ->
  Engine.log_entry array ->
  unit
(** Tasks are binned onto [procs] rows greedily by start time (the
    engine does not record physical processor ids; the greedy binning
    reconstructs a consistent assignment for sequential tasks). *)

val to_file :
  ?labels:(int -> string) -> string -> procs:int -> Engine.log_entry array -> unit
