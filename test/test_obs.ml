(* Observability stack: ring accounting, Chrome export round trip,
   summary math, and maintenance parity with tracing on. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---- ring ---- *)

let ring_capacity_rounds_up () =
  let r = Obs.Ring.create ~capacity:5 ~epoch:0.0 () in
  check_int "rounded to a power of two" 8 (Obs.Ring.capacity r)

let ring_wraparound_accounting () =
  let cap = 8 in
  let r = Obs.Ring.create ~capacity:cap ~epoch:0.0 () in
  let n = 20 in
  for i = 0 to n - 1 do
    Obs.Ring.emit_at r ~t_ns:(i * 100) ~kind:Obs.Event.task ~a:i ~b:(i * 100)
  done;
  check_int "written counts every emit" n (Obs.Ring.written r);
  check_int "length capped at capacity" cap (Obs.Ring.length r);
  check_int "dropped = written - retained" (n - cap) (Obs.Ring.dropped r);
  (* iter yields exactly the newest [cap] records, oldest first *)
  let seen = ref [] in
  Obs.Ring.iter r (fun ~kind:_ ~t_ns:_ ~a ~b:_ -> seen := a :: !seen);
  let got = List.rev !seen in
  let expected = List.init cap (fun i -> n - cap + i) in
  check_bool "oldest-retained to newest" true (got = expected);
  check_int "iter visits length records" cap (List.length got)

let ring_below_capacity_iterates_all () =
  let r = Obs.Ring.create ~capacity:16 ~epoch:0.0 () in
  for i = 0 to 4 do
    Obs.Ring.emit_at r ~t_ns:i ~kind:Obs.Event.wake ~a:i ~b:0
  done;
  check_int "no drops below capacity" 0 (Obs.Ring.dropped r);
  let count = ref 0 in
  Obs.Ring.iter r (fun ~kind:_ ~t_ns:_ ~a:_ ~b:_ -> incr count);
  check_int "iter sees every record" 5 !count

let null_ring_is_inert () =
  check_bool "disabled" false (Obs.Ring.enabled Obs.Ring.null);
  Obs.Ring.emit Obs.Ring.null ~kind:Obs.Event.task ~a:1 ~b:2;
  Obs.Ring.emit_at Obs.Ring.null ~t_ns:0 ~kind:Obs.Event.task ~a:1 ~b:2;
  check_int "emit on null records nothing" 0 (Obs.Ring.written Obs.Ring.null);
  let count = ref 0 in
  Obs.Ring.iter Obs.Ring.null (fun ~kind:_ ~t_ns:_ ~a:_ ~b:_ -> incr count);
  check_int "nothing to iterate" 0 !count

let trace_out_of_range_is_null () =
  let tr = Obs.Trace.create ~domains:2 () in
  check_bool "in range enabled" true (Obs.Ring.enabled (Obs.Trace.ring tr 1));
  check_bool "out of range -> null" false
    (Obs.Ring.enabled (Obs.Trace.ring tr 2));
  check_bool "negative -> null" false
    (Obs.Ring.enabled (Obs.Trace.ring tr (-1)));
  check_bool "disabled trace -> null" false
    (Obs.Ring.enabled (Obs.Trace.ring Obs.Trace.disabled 0))

(* ---- event conventions ---- *)

let event_names_round_trip () =
  for k = 0 to Obs.Event.count - 1 do
    match Obs.Event.of_name (Obs.Event.name k) with
    | Some k' -> check_int (Obs.Event.name k) k k'
    | None -> Alcotest.failf "kind %d does not round trip" k
  done;
  check_bool "unknown name" true (Obs.Event.of_name "nonsense" = None)

let sched_span_includes_wait () =
  check_int "sched span starts at acquire - wait" 700
    (Obs.Event.span_start_ns Obs.Event.sched_refill ~a:300 ~b:1000);
  check_int "plain span starts at b" 1000
    (Obs.Event.span_start_ns Obs.Event.task ~a:300 ~b:1000)

(* ---- summary ---- *)

let summary_math () =
  let ev wid kind t0 t1 arg =
    { Obs.Summary.wid; kind; t0_ns = t0; t1_ns = t1; arg }
  in
  let events =
    [
      (* worker 0: two tasks of 1000ns, one failed steal of 500ns *)
      ev 0 Obs.Event.task 0 1_000 7;
      ev 0 Obs.Event.steal 1_000 1_500 0;
      ev 0 Obs.Event.task 1_500 2_500 8;
      (* worker 1: a park of 2000ns and a wake instant *)
      ev 1 Obs.Event.park 0 2_000 0;
      ev 1 Obs.Event.wake 2_000 2_000 1;
    ]
  in
  let s = Obs.Summary.of_events ~domains:2 events in
  let w0 = s.Obs.Summary.workers.(0) and w1 = s.Obs.Summary.workers.(1) in
  check_int "w0 tasks" 2 w0.Obs.Summary.tasks;
  check_int "w0 steal attempts" 1 w0.Obs.Summary.steal_attempts;
  check_int "w0 stolen" 0 w0.Obs.Summary.stolen;
  check_int "w1 wakes" 1 w1.Obs.Summary.wakes;
  let close what a b = Alcotest.(check (float 1e-12)) what a b in
  close "w0 busy" 2e-6 w0.Obs.Summary.busy_s;
  close "w0 steal time" 5e-7 w0.Obs.Summary.steal_s;
  close "w1 park" 2e-6 w1.Obs.Summary.park_s;
  close "makespan first-start to last-end" 2.5e-6 s.Obs.Summary.makespan_s;
  close "w0 idle = makespan - busy - steal" 0.0 w0.Obs.Summary.idle_s;
  close "utilization = busy / (workers * makespan)"
    (2e-6 /. (2.0 *. 2.5e-6))
    s.Obs.Summary.utilization;
  check_int "event count" 5 s.Obs.Summary.events

let summary_counts_dred_phases () =
  let ev kind t0 t1 arg =
    { Obs.Summary.wid = 0; kind; t0_ns = t0; t1_ns = t1; arg }
  in
  let s =
    Obs.Summary.of_events ~domains:1
      [
        ev Obs.Event.dred_delete 0 100 3;
        ev Obs.Event.dred_rederive 100 400 3;
        ev Obs.Event.dred_insert 400 500 3;
      ]
  in
  let close what a b = Alcotest.(check (float 1e-15)) what a b in
  close "delete" 1e-7 s.Obs.Summary.dred_delete_s;
  close "rederive" 3e-7 s.Obs.Summary.dred_rederive_s;
  close "insert" 1e-7 s.Obs.Summary.dred_insert_s;
  (* no executor tasks ran: DRed time is the serial-path busy fallback *)
  close "busy falls back to dred time" 5e-7 s.Obs.Summary.busy_s

(* ---- json parser ---- *)

let json_parses_and_rejects () =
  let open Obs.Json in
  (match parse {|{"a": [1, 2.5, -3e2], "b": "x\nA", "c": [true, null]}|} with
  | Object kvs ->
    check_int "three members" 3 (List.length kvs);
    (match List.assoc "b" kvs with
    | String s -> check_bool "escapes decoded" true (s = "x\nA")
    | _ -> Alcotest.fail "b should be a string")
  | _ -> Alcotest.fail "expected an object");
  let rejects s =
    match parse s with
    | exception Parse_error _ -> ()
    | _ -> Alcotest.failf "parser accepted %S" s
  in
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\": NaN}";
  rejects "[1] trailing"

(* ---- executor with tracing + chrome export round trip ---- *)

let traced_executor_run () =
  let trace = Workload.Pathological.unit_layers ~width:8 ~layers:4 ~fanout:2 ~seed:7 in
  let obs = Obs.Trace.create ~domains:2 () in
  let r =
    Parallel.Executor.run ~domains:2 ~work_unit:1e-6 ~obs
      ~sched:Sched.Level_based.factory trace
  in
  check_bool "events were recorded" true (Obs.Trace.written obs > 0);
  let s = Obs.Summary.of_trace obs in
  let tasks =
    Array.fold_left
      (fun acc (w : Obs.Summary.worker) -> acc + w.Obs.Summary.tasks)
      0 s.Obs.Summary.workers
  in
  check_int "one task span per executed task" r.Parallel.Executor.tasks_executed
    tasks;
  check_bool "makespan positive" true (s.Obs.Summary.makespan_s > 0.0);
  (* chrome export -> strict parse -> normalized events round trip *)
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.to_file ~task_label:string_of_int path obs;
      let json = Obs.Json.of_file path in
      let events = Obs.Export.events_of_json json in
      check_int "every retained record survives the round trip"
        (Obs.Trace.written obs - Obs.Trace.dropped obs)
        (List.length events);
      let s' = Obs.Export.summary_of_json json in
      check_int "re-read summary sees the same events" s.Obs.Summary.events
        s'.Obs.Summary.events;
      let tasks' =
        Array.fold_left
          (fun acc (w : Obs.Summary.worker) -> acc + w.Obs.Summary.tasks)
          0 s'.Obs.Summary.workers
      in
      check_int "re-read summary sees the same tasks" tasks tasks')

(* ---- maintenance parity with tracing on ---- *)

let maintenance_unchanged_by_tracing () =
  let src =
    "edge(\"a\",\"b\"). edge(\"b\",\"c\"). edge(\"c\",\"d\"). edge(\"d\",\"e\").\n\
     path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n\
     node(X) :- edge(X,Y).\nnode(Y) :- edge(X,Y).\n\
     unreach(X,Y) :- node(X), node(Y), !path(X,Y), X != Y.\n"
  in
  let program = Datalog.Parser.parse src in
  let load () =
    let db = Datalog.Database.create () in
    let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
    db
  in
  let adds = [ Datalog.Parser.parse_atom {|edge("e","a")|} ] in
  let dels = [ Datalog.Parser.parse_atom {|edge("b","c")|} ] in
  let reference = load () in
  let _ =
    Datalog.Incremental.apply reference program ~additions:adds ~deletions:dels
  in
  List.iter
    (fun domains ->
      let obs = Obs.Trace.create ~domains:(max 1 domains) () in
      let db = load () in
      let _ =
        Datalog.Incremental.apply_parallel ~domains ~obs db program
          ~additions:adds ~deletions:dels
      in
      (match Datalog.Eval.databases_agree reference db with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "tracing changed maintenance at domains=%d: %s" domains e);
      check_bool
        (Printf.sprintf "dred spans recorded at domains=%d" domains)
        true
        (Obs.Trace.written obs > 0))
    [ 1; 2; 4 ]

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          test `Quick "capacity rounds up" ring_capacity_rounds_up;
          test `Quick "wraparound accounting" ring_wraparound_accounting;
          test `Quick "below capacity" ring_below_capacity_iterates_all;
          test `Quick "null ring inert" null_ring_is_inert;
          test `Quick "trace out of range" trace_out_of_range_is_null;
        ] );
      ( "events",
        [
          test `Quick "names round trip" event_names_round_trip;
          test `Quick "sched span includes wait" sched_span_includes_wait;
        ] );
      ( "summary",
        [
          test `Quick "per-worker math" summary_math;
          test `Quick "dred phase totals" summary_counts_dred_phases;
        ] );
      ( "json", [ test `Quick "parses and rejects" json_parses_and_rejects ] );
      ( "export",
        [ test `Quick "traced run round trips" traced_executor_run ] );
      ( "maintenance",
        [ test `Quick "parity under tracing" maintenance_unchanged_by_tracing ] );
    ]
