lib/datalog/matcher.mli: Ast Database Relation Symbol
