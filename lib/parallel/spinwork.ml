(* Calibrated busy-work. The seed executor's spin loop called
   Unix.gettimeofday on every iteration, which both floors the
   resolution of short tasks at the syscall cost and hammers the VDSO
   from every domain at once. Instead we calibrate, once, how many
   iterations of an opaque inner loop fit in a microsecond, then check
   the monotonic clock only once per chunk of roughly that size. *)

(* Written once by [calibrate] before any domain is spawned, then read
   by every worker; a [Vatomic.Plain] cell rather than a bare ref so
   the analysis build would flag any write that races the workers. *)
let iters_per_usec = Prelude.Vatomic.Plain.make 0.0

let calibration_target = 5e-3 (* seconds of calibration loop *)

let calibrate () =
  if Prelude.Vatomic.Plain.get iters_per_usec = 0.0 then begin
    let block = 50_000 in
    let t0 = Prelude.Mclock.now () in
    let iters = ref 0 in
    while Prelude.Mclock.now () -. t0 < calibration_target do
      for _ = 1 to block do
        ignore (Sys.opaque_identity 0)
      done;
      iters := !iters + block
    done;
    let dt = Prelude.Mclock.now () -. t0 in
    Prelude.Vatomic.Plain.set iters_per_usec
      (Float.max 1.0 (float_of_int !iters *. 1e-6 /. dt))
  end

let spin seconds =
  if seconds > 0.0 then begin
    if Prelude.Vatomic.Plain.get iters_per_usec = 0.0 then calibrate ();
    let deadline = Prelude.Mclock.now () +. seconds in
    (* chunk ~2us of work between clock reads, bounded so a mis-
       calibration can never overshoot grossly *)
    let chunk = int_of_float (2.0 *. Prelude.Vatomic.Plain.get iters_per_usec) in
    let chunk = max 32 (min chunk 1_000_000) in
    while Prelude.Mclock.now () < deadline do
      for _ = 1 to chunk do
        ignore (Sys.opaque_identity 0)
      done
    done
  end
