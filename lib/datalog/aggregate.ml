let validate (program : Ast.program) =
  let defs = Hashtbl.create 16 in
  List.iter
    (fun (r : Ast.rule) ->
      let pred = r.Ast.head.Ast.pred in
      Hashtbl.replace defs pred (1 + Option.value (Hashtbl.find_opt defs pred) ~default:0))
    program;
  List.iter
    (fun (r : Ast.rule) ->
      if Ast.rule_is_aggregate r then begin
        if r.Ast.body = [] then
          invalid_arg
            (Printf.sprintf "Aggregate: %s has an aggregate head but no body"
               r.Ast.head.Ast.pred);
        if Hashtbl.find defs r.Ast.head.Ast.pred > 1 then
          invalid_arg
            (Printf.sprintf
               "Aggregate: %s must be defined by exactly one rule (it aggregates)"
               r.Ast.head.Ast.pred)
      end)
    program

module Tuple_tbl = Hashtbl.Make (struct
  type t = int array

  (* same monomorphic equality / FNV-1a idiom as Relation's tuple
     table: no list allocation, no generic structural path *)
  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec eq i = i = n || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1)) in
    eq 0

  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193
    done;
    !h land max_int
end)

let evaluate ~engine ~symbols ~view ~card ~work (rule : Ast.rule) =
  let head_args = Array.of_list rule.Ast.head.Ast.args in
  let group_positions =
    Array.to_list head_args
    |> List.mapi (fun i t -> (i, t))
    |> List.filter_map (fun (i, t) ->
           match t with Ast.Var _ | Ast.Const _ -> Some i | Ast.Agg _ -> None)
  in
  let agg_positions =
    Array.to_list head_args
    |> List.mapi (fun i t -> (i, t))
    |> List.filter_map (fun (i, t) ->
           match t with Ast.Agg (op, v) -> Some (i, op, v) | Ast.Var _ | Ast.Const _ -> None)
  in
  (* distinct projections onto (group terms, aggregated variables),
     enumerated by a synthetic rule whose plain head is exactly that
     projection row — so the aggregate body runs on the same compiled
     (or interpreted) hot path as any other rule *)
  let proj_rule =
    {
      Ast.head =
        {
          Ast.pred = rule.Ast.head.Ast.pred;
          args =
            List.map (fun i -> head_args.(i)) group_positions
            @ List.map (fun (_, _, v) -> Ast.Var v) agg_positions;
        };
      body = rule.Ast.body;
    }
  in
  let rows = Tuple_tbl.create 64 in
  Plan.exec_rule ~view ~work
    ~on_derived:(fun row ->
      (* [row] is the executor's scratch buffer: copy only when new *)
      if not (Tuple_tbl.mem rows row) then Tuple_tbl.add rows (Array.copy row) ())
    (Plan.executor ~engine ~symbols ~card proj_rule);
  (* fold per group *)
  let ngroups = List.length group_positions in
  let acc : (int array, (int option * int) array) Hashtbl.t = Hashtbl.create 64 in
  (* per agg position: (running value as code option, count) *)
  Tuple_tbl.iter
    (fun row () ->
      let key = Array.sub row 0 ngroups in
      let vals = Array.sub row ngroups (Array.length row - ngroups) in
      let cur =
        match Hashtbl.find_opt acc key with
        | Some c -> c
        | None ->
          let c = Array.make (Array.length vals) (None, 0) in
          Hashtbl.add acc key c;
          c
      in
      List.iteri
        (fun j (_, op, _) ->
          let prev, count = cur.(j) in
          let code = vals.(j) in
          let require_int c =
            match Symbol.const_of symbols c with
            | Ast.Int i -> i
            | Ast.Sym _ ->
              invalid_arg
                (Printf.sprintf "Aggregate: sum over a non-integer in %s"
                   rule.Ast.head.Ast.pred)
          in
          let next =
            match (op, prev) with
            | Ast.Count, _ -> prev
            | Ast.Sum, None ->
              ignore (require_int code);
              Some code
            | (Ast.Min | Ast.Max), None -> Some code
            | Ast.Sum, Some p ->
              Some (Symbol.intern symbols (Ast.Int (require_int p + require_int code)))
            | Ast.Min, Some p ->
              Some (if Symbol.compare_codes symbols code p < 0 then code else p)
            | Ast.Max, Some p ->
              Some (if Symbol.compare_codes symbols code p > 0 then code else p)
          in
          cur.(j) <- (next, count + 1))
        agg_positions)
    rows;
  (* materialize head tuples *)
  let out = ref [] in
  Hashtbl.iter
    (fun key folded ->
      let tup = Array.make (Array.length head_args) 0 in
      List.iteri (fun gi pos -> tup.(pos) <- key.(gi)) group_positions;
      List.iteri
        (fun j (pos, op, _) ->
          let value, count = folded.(j) in
          tup.(pos) <-
            (match (op, value) with
            | Ast.Count, _ -> Symbol.intern symbols (Ast.Int count)
            | (Ast.Sum | Ast.Min | Ast.Max), Some code -> code
            | (Ast.Sum | Ast.Min | Ast.Max), None -> assert false))
        agg_positions;
      out := tup :: !out)
    acc;
  !out
