lib/workload/pathological.ml: Array Dag Hashtbl Prelude Printf Trace
