test/test_parallel.ml: Alcotest Array Dag List Parallel Printf Sched Simulator String Workload
