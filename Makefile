.PHONY: all build test analyze bench bench-smoke bench-check bench-datalog bench-maintain-par bench-maintain-shard bench-maintain-count bench-serve model-check model-check-smoke ci clean

all: build

build:
	dune build @all

# OCAMLRUNPARAM=b: backtraces from any executor failure inside the
# stress matrix (test/test_parallel.ml runs up to 8 domains per case)
test: model-check-smoke
	OCAMLRUNPARAM=b dune runtest

# static analysis of every example program: strata, effect sets,
# ownership verification, maintenance advice; exits non-zero on lint
# errors (warnings pass)
analyze:
	@for f in examples/*.dl; do \
	  echo "== $$f"; \
	  dune exec bin/dms.exe -- analyze $$f || exit 1; \
	done

# exhaustive bounded model checking of the executor's concurrency
# protocols (lib/analysis); needs the instrumented Vatomic, hence the
# analysis profile. The smoke variant is part of `make test`.
model-check:
	dune exec --profile analysis bin/model_check.exe

model-check-smoke:
	dune exec --profile analysis bin/model_check.exe -- --smoke

bench:
	dune exec bench/main.exe

# compiled plans vs the interpreter: materialization + maintenance
# batches on twin databases, plus the executor-composed row; writes
# BENCH_datalog.json
bench-datalog:
	dune exec bench/main.exe -- datalog

# real parallel DRed maintenance (Incremental.apply_parallel) vs the
# serial walk at 2/4/8 worker domains, with a database-parity assert
# on every configuration; writes BENCH_maintain_par.json
bench-maintain-par:
	dune exec bench/main.exe -- maintain-par

# intra-component parallelism: the shards x domains grid on a single
# big-SCC workload, database-parity asserted on every cell; writes
# BENCH_maintain_shard.json
bench-maintain-shard:
	dune exec bench/main.exe -- maintain-shard

# counting vs DRed maintenance on deletion-heavy update streams, with
# a database-parity assert on every program x mix cell; writes
# BENCH_maintain_count.json
bench-maintain-count:
	dune exec bench/main.exe -- maintain-count

# sustained update-server throughput: open-loop replay of a synthetic
# update stream through Server.Engine in sync and async (coalescing)
# modes, parity-asserted against a one-shot Incr_sched.update twin;
# writes BENCH_serve.json
bench-serve:
	dune exec bench/main.exe -- serve

# tiny traces through the full dispatch matrix (both executors, all
# domain counts, Executor.check everywhere), a small compiled-vs-
# interpreter pass, a 2-domain parallel-maintenance parity pass, the
# sharded-maintenance parity grid, the counting-vs-DRed parity grid,
# and the update-server replay (parity against a one-shot twin);
# seconds; writes BENCH_*_smoke.json into the current directory
bench-smoke:
	dune exec bench/main.exe -- dispatch-smoke datalog-smoke maintain-par-smoke maintain-shard-smoke maintain-count-smoke serve-smoke

# compare the BENCH_*_smoke.json of the last `make bench-smoke` against
# the committed baselines: fails on parity drift (task/tuple/changed
# counts, workload structure), never on timing noise — policy in
# EXPERIMENTS.md. Refresh baselines by copying the fresh files over
# tools/baselines/ when a change legitimately moves the counts.
bench-check:
	dune exec tools/bench_check.exe -- --baseline tools/baselines --fresh .

# what .github/workflows/ci.yml runs per compiler
ci: build test analyze bench-smoke bench-check

clean:
	dune clean
