(** Job traces: the unit of evaluation input (paper, Section VI-A).

    A trace packages the computation DAG [G], per-node task shapes
    (processing time and internal parallelism), the initially dirtied
    nodes, and the change oracle: for every edge, whether the source's
    re-execution sends a changed output across it. The active graph
    [H = (W, F)] of the paper is derived data ({!active_set}): [W] is
    the closure of the initial set under changed edges.

    Nodes are either activatable tasks or zero-cost predicate plumbing
    (Figure 1 distinguishes the two). *)

type node_kind = Task | Predicate

(** Internal structure of one task, in the DAG-of-subtasks model of
    Section IV. *)
type shape =
  | Unit  (** one unit-duration chip *)
  | Seq of float  (** sequential: work = span = duration *)
  | Par of float  (** fully parallelizable: [ceil work] unit chips *)
  | Stages of { width : int; length : int; chip : float }
      (** [length] sequential stages of [width] parallel chips each:
          work = width*length*chip, span = length*chip *)

val shape_work : shape -> float

val shape_span : shape -> float

type t = {
  name : string;
  graph : Dag.Graph.t;
  kind : node_kind array;
  shape : shape array;
  initial : int array;  (** initially-dirty nodes, sorted, distinct *)
  edge_changed : bool array;  (** indexed by edge id *)
}

val create :
  name:string ->
  graph:Dag.Graph.t ->
  kind:node_kind array ->
  shape:shape array ->
  initial:int array ->
  edge_changed:bool array ->
  t
(** Validates: graph acyclic, array lengths, initial ids sorted/distinct
    and in range. @raise Invalid_argument otherwise. *)

val active_set : t -> Prelude.Bitset.t
(** The active set [W]: closure of [initial] under changed edges. *)

val work : t -> int -> float
(** Work of one node ([0] for predicate nodes regardless of shape). *)

val total_active_work : t -> float
(** The paper's [w]: total work over the active set. *)

type stats = {
  nodes : int;
  edges : int;
  initial_tasks : int;
  active_jobs : int;  (** activated descendants, i.e. |W| - |initial| *)
  levels : int;  (** the paper's [L] = number of levels of [G] *)
  activatable : int;  (** nodes of kind [Task] *)
  active_work : float;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

val levels : t -> int array
(** Levels of [graph] (computed fresh; callers cache). *)

val active_critical_path : t -> float
(** Maximum total work along any path of the active graph [H] — a lower
    bound on any schedule's makespan, used to calibrate reconstructed
    traces against published makespans. *)
