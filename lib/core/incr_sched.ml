type result = Simulator.Metrics.t

let config ?(procs = 8) ?(op_cost = 1e-7) ?(validate = false) () =
  { Simulator.Engine.procs; op_cost; record_log = validate }

let schedule ?procs ?op_cost ?(validate = false) ~sched trace =
  let factory = Sched.Registry.find_exn sched in
  let config = config ?procs ?op_cost ~validate () in
  let run = Simulator.Engine.run ~config ~sched:factory trace in
  if validate then begin
    match Simulator.Validate.check_run trace run with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "invalid schedule from %s: %s" sched e)
  end;
  run.Simulator.Engine.metrics

let default_comparison = [ "levelbased"; "lbl:10"; "logicblox"; "hybrid" ]

let compare ?procs ?op_cost ?(scheds = default_comparison) trace =
  List.map (fun sched -> schedule ?procs ?op_cost ~sched trace) scheds

let clairvoyant ?procs ?op_cost trace =
  let config = config ?procs ?op_cost () in
  let sched = Simulator.Engine.clairvoyant_factory trace in
  (Simulator.Engine.run ~config ~sched trace).Simulator.Engine.metrics

let trace_of_file = Workload.Trace_io.of_file

let trace_of_string = Workload.Trace_io.of_string

type datalog_session = { db : Datalog.Database.t; program : Datalog.Ast.program }

let materialize ?(lint = false) src =
  let program = Datalog.Parser.parse src in
  let db = Datalog.Database.create () in
  let _analysis, _stats = Datalog.Eval.run ~lint db program in
  { db; program }

let lint session = Datalog.Lint.check session.program

let update ?work_unit ?maint ?domains ?shards ?sanitize ?trace ?obs session
    ~additions ~deletions =
  let parse = List.map Datalog.Parser.parse_atom in
  let additions = parse additions and deletions = parse deletions in
  match (obs, trace) with
  | Some obs, _ ->
    (* the caller owns the rings (and their export); a long-lived
       server threads one trace through many updates this way *)
    Datalog.To_trace.of_update ?work_unit ?maint ?domains ?shards ?sanitize ~obs
      session.db session.program ~additions ~deletions
  | None, None ->
    Datalog.To_trace.of_update ?work_unit ?maint ?domains ?shards ?sanitize
      session.db session.program ~additions ~deletions
  | None, Some path ->
    (* one ring per executor worker, plus one per crew worker (shard
       [j >= 1] emits on ring [domains + j - 1], see
       {!Datalog.Incremental.apply_parallel}) *)
    let nd = max 1 (Option.value domains ~default:1) in
    let ns = max 1 (Option.value shards ~default:1) in
    let obs = Obs.Trace.create ~domains:(nd + ns - 1) () in
    let tt =
      Datalog.To_trace.of_update ?work_unit ?maint ?domains ?shards ?sanitize
        ~obs session.db session.program ~additions ~deletions
    in
    (* name task (and DRed) spans by their component's predicates *)
    let labels = tt.Datalog.To_trace.labels in
    let task_label c =
      if c >= 0 && c < Array.length labels then labels.(c) else string_of_int c
    in
    Obs.Export.to_file ~task_label path obs;
    tt

let query session pred =
  match Datalog.Database.find session.db pred with
  | None -> []
  | Some rel ->
    Datalog.Relation.to_list rel
    |> List.map (Datalog.Database.tuple_to_atom session.db pred)
    |> List.sort Stdlib.compare

let pp_result = Simulator.Metrics.pp

let pp_result_row = Simulator.Metrics.pp_row
