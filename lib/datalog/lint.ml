(* Rule diagnostics. {!Ast.range_restricted} answers yes/no — good
   enough for the parser's gate, useless for telling an author *which*
   variable sank a 40-line program. This module re-derives the same
   analysis but keeps the evidence: every violated obligation becomes a
   diagnostic naming the rule, the variable and the literal, and the
   error set is empty exactly when [Ast.range_restricted] holds (a
   property the test suite pins). Warnings flag likely typos —
   variables used only once — without rejecting the program. *)

type severity = Warning | Error

type diagnostic = {
  rule_index : int;  (* 0-based position in the program *)
  pred : string;  (* head predicate, for grouping *)
  severity : severity;
  code : string;
  message : string;
}

exception Failed of diagnostic list

let atom_str a = Format.asprintf "%a" Ast.pp_atom a

(* Variables of a term list, with multiplicity, in order. *)
let term_vars ts =
  List.filter_map (fun t -> Ast.term_var t) ts

let literal_terms = function
  | Ast.Pos a | Ast.Neg a -> a.Ast.args
  | Ast.Cmp (_, t1, t2) -> [ t1; t2 ]

let check_rule ~rule_index (r : Ast.rule) =
  let diags = ref [] in
  let emit severity code fmt =
    Format.kasprintf
      (fun message ->
        diags := { rule_index; pred = r.Ast.head.Ast.pred; severity; code; message } :: !diags)
      fmt
  in
  (* positively bound variables, as in Ast.range_restricted *)
  let positive = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Pos a ->
        List.iter (fun v -> Hashtbl.replace positive v ()) (Ast.vars_of_atom a)
      | Ast.Neg _ | Ast.Cmp _ -> ())
    r.Ast.body;
  let bound v = Hashtbl.mem positive v in
  (* 1. every head variable must be positively bound *)
  List.iter
    (fun v ->
      if not (bound v) then
        emit Error "unrestricted-head-variable"
          "head variable %s is not bound by any positive body literal" v)
    (Ast.vars_of_atom r.Ast.head);
  (* 2. negation and comparisons only over bound variables *)
  List.iter
    (function
      | Ast.Pos _ -> ()
      | Ast.Neg a ->
        List.iter
          (fun v ->
            if not (bound v) then
              emit Error "unbound-negated-variable"
                "variable %s in negated literal !%s is unbound; negation as \
                 failure needs every argument bound by a positive literal"
                v (atom_str a))
          (Ast.vars_of_atom a)
      | Ast.Cmp (_, t1, t2) as lit ->
        List.iter
          (fun v ->
            if not (bound v) then
              emit Error "unbound-comparison-variable"
                "variable %s in comparison %s is unbound; comparisons filter \
                 bindings, they cannot generate them"
                v
                (Format.asprintf "%a" Ast.pp_literal lit))
          (term_vars [ t1; t2 ]))
    r.Ast.body;
  (* 3. aggregates are a head-only construct *)
  List.iter
    (fun lit ->
      List.iter
        (function
          | Ast.Agg (a, v) ->
            emit Error "body-aggregate" "aggregate %a(%s) is not allowed in a rule body"
              Ast.pp_agg a v
          | Ast.Var _ | Ast.Const _ -> ())
        (literal_terms lit))
    r.Ast.body;
  (* 4. singleton variables: one occurrence across the whole rule is a
     likely typo (a join that never joins); an _-prefixed name opts
     out, matching the usual Datalog/Prolog convention *)
  let occurrences = Hashtbl.create 16 in
  let note v =
    Hashtbl.replace occurrences v
      (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences v))
  in
  List.iter note (term_vars r.Ast.head.Ast.args);
  List.iter (fun lit -> List.iter note (term_vars (literal_terms lit))) r.Ast.body;
  Hashtbl.iter
    (fun v n ->
      if n = 1 && not (String.length v > 0 && v.[0] = '_') then
        emit Warning "singleton-variable"
          "variable %s occurs only once in the rule; prefix it with _ if that \
           is intentional"
          v)
    occurrences;
  (* deterministic order for stable output: errors first, then by code
     and message (Hashtbl iteration order is unspecified) *)
  List.sort
    (fun a b ->
      match Stdlib.compare a.severity b.severity with
      | 0 -> Stdlib.compare (a.code, a.message) (b.code, b.message)
      | c -> -c)
    !diags

(* Rename variables to V0, V1, … by first occurrence (head first, then
   body in literal order), so alpha-equivalent rules print identically. *)
let canonical_rule (r : Ast.rule) =
  let map = Hashtbl.create 8 in
  let fresh = ref 0 in
  let rename v =
    match Hashtbl.find_opt map v with
    | Some v' -> v'
    | None ->
      let v' = Printf.sprintf "V%d" !fresh in
      incr fresh;
      Hashtbl.add map v v';
      v'
  in
  let term = function
    | Ast.Var v -> Ast.Var (rename v)
    | Ast.Const _ as t -> t
    | Ast.Agg (a, v) -> Ast.Agg (a, rename v)
  in
  let atom a = { a with Ast.args = List.map term a.Ast.args } in
  let literal = function
    | Ast.Pos a -> Ast.Pos (atom a)
    | Ast.Neg a -> Ast.Neg (atom a)
    | Ast.Cmp (c, t1, t2) -> Ast.Cmp (c, term t1, term t2)
  in
  { Ast.head = atom r.Ast.head; body = List.map literal r.Ast.body }

(* Whole-program lints; all warnings, so the [errors = [] iff every rule
   is range-restricted] property is untouched. *)
let check_program (p : Ast.program) =
  let diags = ref [] in
  let emit rule_index pred code fmt =
    Format.kasprintf
      (fun message ->
        diags := { rule_index; pred; severity = Warning; code; message } :: !diags)
      fmt
  in
  (* duplicate rules: syntactically identical after canonicalization *)
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i r ->
      let key = Format.asprintf "%a" Ast.pp_rule (canonical_rule r) in
      match Hashtbl.find_opt seen key with
      | Some j ->
        emit i r.Ast.head.Ast.pred "duplicate-rule"
          "rule duplicates rule %d up to variable renaming; it adds no derivations"
          j
      | None -> Hashtbl.add seen key i)
    p;
  (* derived predicates no rule body ever reads *)
  let read = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (function
          | Ast.Pos a | Ast.Neg a -> Hashtbl.replace read a.Ast.pred ()
          | Ast.Cmp _ -> ())
        r.Ast.body)
    p;
  let flagged = Hashtbl.create 16 in
  List.iteri
    (fun i r ->
      let pred = r.Ast.head.Ast.pred in
      if
        (not (Ast.rule_is_fact r))
        && (not (Hashtbl.mem read pred))
        && not (Hashtbl.mem flagged pred)
      then begin
        Hashtbl.add flagged pred ();
        emit i pred "unused-idb-predicate"
          "derived predicate %s is never read by any rule body; dead weight \
           unless it is the query output"
          pred
      end)
    p;
  List.rev !diags

let check (p : Ast.program) =
  List.concat (List.mapi (fun i r -> check_rule ~rule_index:i r) p)
  @ check_program p

let errors diags = List.filter (fun d -> d.severity = Error) diags

let enforce p = match errors (check p) with [] -> () | errs -> raise (Failed errs)

let pp_severity ppf s =
  Format.pp_print_string ppf (match s with Warning -> "warning" | Error -> "error")

let pp_diagnostic ppf d =
  Format.fprintf ppf "rule %d (%s): %a: %s [%s]" d.rule_index d.pred pp_severity
    d.severity d.message d.code

let pp ppf diags =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_diagnostic ppf diags

let () =
  Printexc.register_printer (function
    | Failed diags ->
      Some (Format.asprintf "Datalog lint failed:@,%a" pp diags)
    | _ -> None)
