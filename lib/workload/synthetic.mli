(** Layered random DAG generator, calibrated to structural targets.

    Generates traces matching exact node/edge/level/initial counts and
    an approximate active-set size, which is how the proprietary
    LogicBlox production traces of Table I are reconstructed (see
    DESIGN.md, substitution table). The construction places every
    non-source node at its level by giving it at least one parent on the
    previous layer; extra edges go to random lower layers. Per-edge
    change flags are thresholded against fixed per-edge uniforms, and
    the threshold is binary-searched so the activation closure hits the
    requested active-job count as closely as possible (the closure size
    is monotone in the threshold). *)

type params = {
  nodes : int;
  edges : int;  (** must be >= nodes - (size of layer 0) *)
  levels : int;
  initial : int;  (** number of initially-dirty sources *)
  active_jobs : int;  (** target |W| - initial (best effort) *)
  descendants : int option;
      (** optional target for the number of descendants of the dirty
          sources (Figure 1 reports this for trace #1); steers which
          sources get dirtied. Requires a source layer of <= 4096 nodes
          to take effect. *)
  task_fraction : float;
      (** fraction of nodes that are activatable tasks; realized as an
          exact count (dirty sources are always tasks) *)
  seed : int;
}

val generate :
  ?duration:(Prelude.Rng.t -> int -> Trace.shape) ->
  name:string ->
  params ->
  Trace.t
(** [duration rng u] draws the shape of task node [u]; default samples
    [Seq] durations from a lognormal with unit scale. Predicate nodes
    always get [Seq 0.]. @raise Invalid_argument on infeasible params
    (e.g. more levels than nodes, or too few edges to realize them). *)

val scale_shapes : Trace.t -> factor:float -> Trace.t
(** Multiply every duration by [factor] — used to calibrate a trace's
    total active work against a published makespan. *)

(** Random base-fact update streams for exercising the incremental
    maintenance engines, emitted as fact strings (parse with
    {!Datalog.Parser.parse_atom} or feed to [Incr_sched.update]). Edges
    live in a banded acyclic space — [u < v <= u + span] over constants
    [v0 .. v(nodes-1)] — so transitive-closure programs stay finite and
    stratified. *)
module Update_stream : sig
  type params = {
    nodes : int;  (** number of constants *)
    span : int;  (** max forward distance of an edge (>= 1) *)
    base_edges : int;  (** edges materialized before the first batch *)
    batches : int;
    batch_ops : int;  (** insert/delete operations attempted per batch *)
    delete_fraction : float;
        (** probability that an operation deletes a live edge rather
            than inserting a fresh one; [0.0] = insert-only, [0.9] =
            deletion-heavy *)
    seed : int;
  }

  type t = {
    base : string list;  (** initial facts, e.g. ["edge(\"v0\",\"v3\")"] *)
    steps : (string list * string list) list;
        (** per batch: (additions, deletions). Within one batch an edge
            appears on at most one side, deletions are always live and
            insertions always fresh, so every batch is a well-formed
            update against the state left by its predecessors — which
            means the steps are only meaningful applied in order, from
            the start, to a database primed with [base] exactly once.
            Consumers that walk the stream incrementally (the serve
            bench driver) should go through a {!cursor} so position is
            explicit and a drifted replay is impossible. *)
  }

  val generate : ?pred:string -> params -> t
  (** [pred] names the emitted predicate (default ["edge"]). Operations
      that cannot be satisfied (delete on an empty live set, insert
      into an exhausted edge space) are skipped, so a batch may carry
      fewer than [batch_ops] changes.
      @raise Invalid_argument on infeasible params. *)

  type cursor
  (** A forward-only position in a stream's [steps]. The stream itself
      is immutable; the cursor is the reuse story: prime the database
      with [base] once, then call {!next} until it returns [None].
      Steps cannot be skipped or replayed out of order through a
      cursor, so a consumer cannot silently apply a batch against a
      state it was not generated for. *)

  val cursor : t -> cursor
  (** A fresh cursor positioned before the first step. Independent
      cursors on the same stream do not interfere. *)

  val next : cursor -> (string list * string list) option
  (** The next [(additions, deletions)] batch, advancing the cursor;
      [None] when exhausted. *)

  val reset : cursor -> unit
  (** Rewind to before the first step. Only sound if the caller also
      rebuilds the database back to [base] (e.g. re-materializes): the
      steps assume that exact starting state. *)

  val consumed : cursor -> int
  (** Number of steps taken since creation or the last {!reset}. *)
end
