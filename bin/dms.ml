(* dms — Datalog maintenance scheduling: CLI over the library.

   Subcommands:
     gen      generate a synthetic or paper trace and write it out
     info     print structural statistics of a trace (Table I row)
     run      simulate one scheduler on a trace
     compare  simulate several schedulers on a trace
     dot      export a trace's DAG to Graphviz
     datalog  materialize a program, apply an incremental update
     serve    long-lived epoch server over a materialized program
     analyze  static report: effect sets, ownership, maintenance advice
     trace    summarize a recorded maintenance timeline *)

open Cmdliner

let read_trace path =
  if Filename.check_suffix path ".dl" then
    invalid_arg "expected a trace file, not a Datalog program"
  else Workload.Trace_io.of_file path

let trace_arg =
  let doc =
    "Input trace: either a file path, or paper:N (N in 1..11) for the \
     reconstructed LogicBlox job traces of Table I."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let resolve_trace spec =
  match String.split_on_char ':' spec with
  | [ "paper"; n ] -> (
    match int_of_string_opt n with
    | Some id -> Workload.Paper_traces.generate id
    | None -> invalid_arg "paper:N expects an integer")
  | [ "tight"; n ] -> Workload.Pathological.tight_example ~levels:(int_of_string n)
  | [ "chain"; n ] -> Workload.Pathological.deep_chain ~n:(int_of_string n)
  | _ -> read_trace spec

let procs_arg =
  let doc = "Number of simulated processors." in
  Arg.(value & opt int 8 & info [ "p"; "procs" ] ~docv:"P" ~doc)

let op_cost_arg =
  let doc = "Virtual seconds charged per scheduler operation." in
  Arg.(value & opt float 1e-7 & info [ "op-cost" ] ~docv:"SECONDS" ~doc)

let validate_arg =
  let doc = "Validate the schedule against the model (slow on big traces)." in
  Arg.(value & flag & info [ "validate" ] ~doc)

let sched_arg =
  let doc =
    Printf.sprintf "Scheduler to simulate (%s)." (String.concat ", " Sched.Registry.names)
  in
  Arg.(value & opt string "hybrid" & info [ "s"; "scheduler" ] ~docv:"NAME" ~doc)

let scheds_arg =
  let doc = "Comma-separated schedulers to compare." in
  Arg.(
    value
    & opt string "levelbased,lbl:10,logicblox,hybrid"
    & info [ "schedulers" ] ~docv:"NAMES" ~doc)

let wrap f = try f (); 0 with
  | Invalid_argument e | Failure e ->
    Format.eprintf "error: %s@." e;
    1
  | Datalog.Parser.Error { line; col; message } ->
    Format.eprintf "error: %d:%d: %s@." line col message;
    1
  | Datalog.Lint.Failed diagnostics ->
    Format.eprintf "%a@." Datalog.Lint.pp diagnostics;
    1

(* ---- gen ---- *)

let gen_cmd =
  let nodes =
    Arg.(value & opt int 10_000 & info [ "nodes" ] ~docv:"N" ~doc:"Node count.")
  in
  let edges =
    Arg.(value & opt int 16_000 & info [ "edges" ] ~docv:"M" ~doc:"Edge count.")
  in
  let levels =
    Arg.(value & opt int 50 & info [ "levels" ] ~docv:"L" ~doc:"Level count.")
  in
  let initial =
    Arg.(value & opt int 8 & info [ "initial" ] ~docv:"K" ~doc:"Initially dirty sources.")
  in
  let active =
    Arg.(value & opt int 500 & info [ "active" ] ~docv:"A" ~doc:"Target active jobs.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output trace file.")
  in
  let run nodes edges levels initial active seed out =
    wrap (fun () ->
        let params =
          {
            Workload.Synthetic.nodes; edges; levels; initial;
            active_jobs = active; descendants = None; task_fraction = 0.5; seed;
          }
        in
        let trace = Workload.Synthetic.generate ~name:(Filename.basename out) params in
        Workload.Trace_io.to_file out trace;
        Format.printf "wrote %s: %a@." out Workload.Trace.pp_stats
          (Workload.Trace.stats trace))
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic layered trace.")
    Term.(const run $ nodes $ edges $ levels $ initial $ active $ seed $ out)

(* ---- info ---- *)

let info_cmd =
  let run spec =
    wrap (fun () ->
        let trace = resolve_trace spec in
        Format.printf "%s: %a@." trace.Workload.Trace.name Workload.Trace.pp_stats
          (Workload.Trace.stats trace))
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print structural statistics of a trace (a Table I row).")
    Term.(const run $ trace_arg)

(* ---- run ---- *)

let run_cmd =
  let run spec sched procs op_cost validate =
    wrap (fun () ->
        let trace = resolve_trace spec in
        let m = Incr_sched.schedule ~procs ~op_cost ~validate ~sched trace in
        Format.printf "%a@." Incr_sched.pp_result m)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one scheduler on a trace.")
    Term.(const run $ trace_arg $ sched_arg $ procs_arg $ op_cost_arg $ validate_arg)

(* ---- compare ---- *)

let compare_cmd =
  let run spec scheds procs op_cost =
    wrap (fun () ->
        let trace = resolve_trace spec in
        let scheds = String.split_on_char ',' scheds in
        Format.printf "%s (P=%d)@." trace.Workload.Trace.name procs;
        List.iter
          (fun sched ->
            let m = Incr_sched.schedule ~procs ~op_cost ~sched trace in
            Format.printf "  %a@." Incr_sched.pp_result_row m)
          scheds;
        let opt = Incr_sched.clairvoyant ~procs ~op_cost trace in
        Format.printf "  %a@." Incr_sched.pp_result_row opt)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Simulate several schedulers on the same trace.")
    Term.(const run $ trace_arg $ scheds_arg $ procs_arg $ op_cost_arg)

(* ---- dot ---- *)

let dot_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output .dot file.")
  in
  let run spec out =
    wrap (fun () ->
        let trace = resolve_trace spec in
        let active = Workload.Trace.active_set trace in
        let style =
          {
            Dag.Dot.default_style with
            color =
              (fun u ->
                if Prelude.Bitset.mem active u then Some "orangered" else None);
          }
        in
        Dag.Dot.to_file ~style out trace.Workload.Trace.graph;
        Format.printf "wrote %s (%d nodes, active highlighted)@." out
          (Dag.Graph.node_count trace.Workload.Trace.graph))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a trace's DAG to Graphviz, active graph highlighted.")
    Term.(const run $ trace_arg $ out)

(* ---- shared maintenance knobs (datalog, serve) ---- *)

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"Run the incremental maintenance itself on N worker domains \
               (real parallelism via the multicore executor; 1 = serial).")

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K"
         ~doc:"Split each component's maintenance phase rounds (DRed delete \
               and insert, counting propagation) into K hash-sharded \
               fan-out tasks (intra-component parallelism; 1 = unsharded).")

let maint_arg =
  let maint_conv =
    Arg.enum
      [
        ("dred", Datalog.Incremental.Dred);
        ("counting", Datalog.Incremental.Counting);
        ("auto", Datalog.Incremental.Auto);
      ]
  in
  Arg.(value & opt maint_conv Datalog.Incremental.Dred & info [ "maint" ] ~docv:"ALG"
         ~doc:"Maintenance strategy: 'dred' (delete-rederive, the default), \
               'counting' (per-tuple derivation counts with a well-founded \
               support index and backward/forward search; no rederivation \
               storm on deletion-heavy updates; composes with --shards), \
               or 'auto' (the static advisor picks per component — see \
               'dms analyze').")

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(* ---- datalog ---- *)

let datalog_cmd =
  let program =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.dl"
           ~doc:"Datalog program file (facts and rules).")
  in
  let queries =
    Arg.(value & opt_all string [] & info [ "q"; "query" ] ~docv:"PRED"
           ~doc:"Print all facts of this predicate (repeatable).")
  in
  let adds =
    Arg.(value & opt_all string [] & info [ "add" ] ~docv:"ATOM"
           ~doc:"Base fact to insert incrementally, e.g. 'edge(\"a\",\"b\")'.")
  in
  let dels =
    Arg.(value & opt_all string [] & info [ "del" ] ~docv:"ATOM"
           ~doc:"Base fact to delete incrementally.")
  in
  let lint_flag =
    Arg.(value & flag & info [ "lint" ]
           ~doc:"Report rule diagnostics (unbound variables with names, \
                 singleton variables) before evaluating.")
  in
  let sanitize_arg =
    Arg.(value & flag & info [ "sanitize" ]
           ~doc:"Arm the write-set sanitizer: tag every relation with its \
                 owning component task and fail loudly on any cross-component \
                 mutation (debug aid; see DESIGN.md).")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record the maintenance run's per-worker timeline and write \
                 it as Chrome trace_event JSON (open in chrome://tracing or \
                 Perfetto; summarize with 'dms trace FILE').")
  in
  let run program queries adds dels lint sched procs domains shards maint sanitize
      trace =
    wrap (fun () ->
        let src = read_file program in
        let session = Incr_sched.materialize ~lint src in
        if lint then begin
          match Incr_sched.lint session with
          | [] -> Format.printf "lint: clean@."
          | diags -> Format.printf "%a@." Datalog.Lint.pp diags
        end;
        Format.printf "materialized %d tuples@."
          (Datalog.Database.total_tuples session.Incr_sched.db);
        if adds <> [] || dels <> [] || trace <> None then begin
          let tt =
            Incr_sched.update ~maint ~domains ~shards ~sanitize ?trace session
              ~additions:adds ~deletions:dels
          in
          if domains > 1 || shards > 1 then
            Format.printf "maintained on %d domains x %d shards@." domains shards;
          (match trace with
          | Some path -> Format.printf "timeline written to %s@." path
          | None -> ());
          Format.printf "update changed:@.";
          List.iter
            (fun (c : Datalog.Incremental.pred_change) ->
              Format.printf "  %-16s +%-6d -%-6d@." c.Datalog.Incremental.pred
                c.Datalog.Incremental.added c.Datalog.Incremental.removed)
            tt.Datalog.To_trace.report.Datalog.Incremental.changes;
          let trace = tt.Datalog.To_trace.trace in
          Format.printf "maintenance DAG: %a@." Workload.Trace.pp_stats
            (Workload.Trace.stats trace);
          let m = Incr_sched.schedule ~procs ~sched trace in
          Format.printf "%a@." Incr_sched.pp_result_row m
        end;
        List.iter
          (fun pred ->
            let atoms = Incr_sched.query session pred in
            Format.printf "%s: %d facts@." pred (List.length atoms);
            List.iter (fun a -> Format.printf "  %a.@." Datalog.Ast.pp_atom a) atoms)
          queries)
  in
  Cmd.v
    (Cmd.info "datalog"
       ~doc:
         "Materialize a Datalog program; optionally apply an incremental update \
          and schedule its maintenance DAG.")
    Term.(
      const run $ program $ queries $ adds $ dels $ lint_flag $ sched_arg $ procs_arg
      $ domains_arg $ shards_arg $ maint_arg $ sanitize_arg $ trace_out)

(* ---- serve ---- *)

let serve_cmd =
  let program =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.dl"
           ~doc:"Datalog program to materialize and serve.")
  in
  let stdio =
    Arg.(value & flag & info [ "stdio" ]
           ~doc:"Serve one session on stdin/stdout — the default transport; \
                 lets scripts and CI drive the server without networking. \
                 Protocol replies go to stdout, status banners to stderr.")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix domain socket instead, serving client \
                 connections sequentially; a client sending 'quit' stops \
                 the server.")
  in
  let async =
    Arg.(value & flag & info [ "async" ]
           ~doc:"Run each commit's maintenance on a background domain: \
                 queries keep being served from the published epoch while \
                 the next one maintains, and commit requests arriving \
                 mid-flight coalesce into one follow-up batch.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record every commit's maintenance timeline plus the server's \
                 epoch/admission/commit spans, and write Chrome trace_event \
                 JSON on exit (summarize with 'dms trace FILE').")
  in
  let run program stdio socket maint domains shards async trace =
    wrap (fun () ->
        let session = Incr_sched.materialize (read_file program) in
        let obs =
          match trace with
          | None -> Obs.Trace.disabled
          | Some _ ->
            Obs.Trace.create ~domains:(max 1 domains + max 1 shards - 1) ()
        in
        let engine = Server.Engine.create ~maint ~domains ~shards ~obs session in
        let repl = Server.Repl.create ~async engine in
        Format.eprintf "dms serve: epoch 0 ready, %d tuples (%s)@."
          (Datalog.Database.total_tuples session.Incr_sched.db)
          (match socket with
          | Some path when not stdio -> "socket " ^ path
          | Some _ | None -> "stdio");
        (match socket with
        | Some path when not stdio -> Server.Repl.serve_socket repl path
        | Some _ | None -> ignore (Server.Repl.run_channels repl stdin stdout));
        match trace with
        | Some path ->
          Server.Engine.export engine path;
          Format.eprintf "timeline written to %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a materialized program as a long-lived epoch server: \
          line-protocol insert/remove/commit/query/stats commands, commits \
          maintained incrementally through the scheduling machinery, queries \
          answered from immutable post-commit snapshots.")
    Term.(
      const run $ program $ stdio $ socket $ maint_arg $ domains_arg
      $ shards_arg $ async $ trace_out)

(* ---- analyze ---- *)

let analyze_cmd =
  let program =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.dl"
           ~doc:"Datalog program file to analyze (not evaluated).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the report as strict JSON instead of text.")
  in
  let run program json =
    wrap (fun () ->
        let src = read_file program in
        let prog = Datalog.Parser.parse src in
        let diags = Datalog.Lint.check prog in
        (match Datalog.Lint.errors diags with
        | [] -> ()
        | errs -> raise (Datalog.Lint.Failed errs));
        (* warnings to stderr, so --json output stays parseable *)
        (match diags with
        | [] -> ()
        | ds -> Format.eprintf "%a@." Datalog.Lint.pp ds);
        let t = Datalog.Analyze.program prog in
        if json then print_endline (Datalog.Analyze.json_report t)
        else Format.printf "%a@." Datalog.Analyze.pp_report t)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze a Datalog program: strata and effect sets per \
          component, recursion class, ownership verification, and the \
          per-component maintenance-strategy advice behind --maint auto. \
          Fails (exit 1) on lint errors.")
    Term.(const run $ program $ json)

(* ---- trace (summarize a recorded timeline) ---- *)

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json"
           ~doc:"Chrome trace_event JSON written by 'dms datalog --trace' or \
                 the bench harness.")
  in
  let run file =
    wrap (fun () ->
        let json =
          try Obs.Json.of_file file
          with Obs.Json.Parse_error msg ->
            invalid_arg (Printf.sprintf "%s: %s" file msg)
        in
        let s = Obs.Export.summary_of_json json in
        Format.printf "@[<v>%s: %d events across %d workers%s@,%a@]@." file
          s.Obs.Summary.events
          (Array.length s.Obs.Summary.workers)
          (if s.Obs.Summary.dropped > 0 then
             Printf.sprintf " (%d dropped to ring wraparound)"
               s.Obs.Summary.dropped
           else "")
          Obs.Summary.pp s)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Summarize a recorded maintenance timeline (per-worker busy / \
             scheduler / steal / park / idle breakdown).")
    Term.(const run $ file)

(* ---- schedule (chrome trace export) ---- *)

let schedule_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output Chrome-trace JSON file (open in chrome://tracing).")
  in
  let run spec sched procs op_cost out =
    wrap (fun () ->
        let trace = resolve_trace spec in
        let config = { Simulator.Engine.procs; op_cost; record_log = true } in
        let r =
          Simulator.Engine.run ~config
            ~sched:(Sched.Registry.find_exn sched)
            trace
        in
        (match r.Simulator.Engine.log with
        | Some log -> Simulator.Trace_export.to_file out ~procs log
        | None -> failwith "no log recorded");
        Format.printf "%a@.schedule written to %s@." Incr_sched.pp_result
          r.Simulator.Engine.metrics out)
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Simulate a scheduler and export the schedule as a Chrome trace.")
    Term.(const run $ trace_arg $ sched_arg $ procs_arg $ op_cost_arg $ out)

let main =
  let doc = "Datalog incremental-maintenance scheduling (IPDPS 2020 reproduction)." in
  Cmd.group (Cmd.info "dms" ~version:"1.0.0" ~doc)
    [ gen_cmd; info_cmd; run_cmd; compare_cmd; dot_cmd; schedule_cmd; datalog_cmd;
      serve_cmd; analyze_cmd; trace_cmd ]

let () = exit (Cmd.eval' main)
