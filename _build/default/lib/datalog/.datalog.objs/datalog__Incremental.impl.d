lib/datalog/incremental.ml: Aggregate Array Ast Dag Database Hashtbl List Matcher Printf Relation Stratify String
