(** Real multicore execution of a trace (OCaml 5 domains), built for
    low coordination overhead.

    Where {!Simulator.Engine} charges virtual time, this executor runs
    the schedule for real — and unlike the original big-lock design
    (retained as {!Legacy} for benchmarking), it keeps the hot paths
    off any global lock:

    - task status is an atomic state machine
      (Inactive → Active → Running → Done via CAS), so activation
      races, double-release detection and completion counting need no
      lock;
    - the scheduler itself stays single-threaded behind
      {!Sched.Protected}: workers refill a private bounded ready-buffer
      in batches (one short critical section per batch, [on_started]
      delivered at release), and completions hand a task's discovered
      activations plus [on_completed] to the scheduler in one batched
      critical section;
    - idle workers steal from peers' buffers before touching the
      scheduler lock;
    - each worker appends to a private log, merged after join;
    - idle workers spin with bounded exponential backoff, then park on
      an eventcount; wakeups are targeted (one signal per unit of new
      work) instead of broadcast.

    The protocol seen by the scheduler is the same as the simulator's:
    activations are delivered before the completion of the parent that
    caused them, and every task runs exactly once. Termination is
    detected lock-free from completed = activated (activations are
    counted before the counting of their parent's completion).

    Task durations are realized as calibrated busy-work against the
    monotonic clock ({!Spinwork}); durations below ~50 us are dominated
    by scheduling noise. Inner task parallelism ([Par]/[Stages]) is
    executed sequentially inside the owning worker. *)

type task_record = {
  task : int;
  start : float;  (** seconds since the run began (monotonic) *)
  finish : float;
  worker : int;  (** domain index that executed the task *)
}

type result = {
  wall_makespan : float;  (** real seconds from start to last completion *)
  tasks_executed : int;
  tasks_activated : int;
  ops : Sched.Intf.ops;  (** aggregate scheduler decision work *)
  worker_ops : Sched.Intf.ops array;
      (** {!ops} attributed to the worker whose critical section did
          the work; sums to [ops] *)
  log : task_record array;  (** completion order *)
  work_executed : float;  (** simulated-work units actually spun *)
  steals : int;  (** tasks moved between worker buffers *)
}

val run :
  ?domains:int ->
  ?work_unit:float ->
  ?batch:int ->
  ?run_task:(wid:int -> int -> unit) ->
  ?obs:Obs.Trace.t ->
  sched:Sched.Intf.factory ->
  Workload.Trace.t ->
  result
(** [run ~domains ~work_unit ~batch ~sched trace] executes the whole
    active set on [domains] worker domains (default 4), spinning
    [work_unit] real seconds per unit of task work (default [1e-4]).
    [batch] (default 16, rounded up to a power of two) bounds both the
    per-worker ready-buffer and the number of tasks pulled from the
    scheduler per critical section.

    [run_task] replaces the simulated spin entirely: when given, task
    [u]'s body is [run_task ~wid u] executed on worker domain [wid]
    (spin calibration is skipped; [work_unit] only scales the logged
    [work_executed]). The dispatch protocol is unchanged, so the body
    runs exactly once, strictly after every body of an activated
    ancestor task has returned and its completion was flushed to the
    scheduler — the precedence guarantee real maintenance work
    ({!Datalog.Incremental.apply_parallel}) relies on for quiescent
    upstream reads. A body must confine its writes to state owned by
    its task; if it raises, the run is aborted (every worker exits at
    its next shared-state check) and {!run} raises [Failure] with the
    task id and exception.

    [obs] (default {!Obs.Trace.disabled}) collects a timeline into the
    trace's per-worker rings: task spans (reusing the per-task log
    stamps — no extra clock reads), steal attempts with their yield,
    park spans, wake instants, and — via {!Sched.Protected} — one span
    per scheduler critical section recording measured lock wait and
    hold. Disabled, every instrumentation site is a single branch on
    [Ring.enabled]; summarize afterwards with {!Obs.Summary.of_trace}.
    @raise Failure if the scheduler deadlocks (no ready task while
    activated tasks remain and nothing is running) or violates safety
    (releases a task that was never activated, twice, or after it ran;
    activates a task after it ran), or if [run_task] raises. *)

val check : Workload.Trace.t -> result -> (unit, string) Stdlib.result
(** Model validation on the real timestamps: exactly the active set ran,
    each task once, and no task started before its activated ancestors
    finished. *)
