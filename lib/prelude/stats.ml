type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then 0.0 else t.min
  let max t = if t.n = 0 then 0.0 else t.max
  let total (t : t) = t.total

  let summary t =
    {
      count = t.n;
      mean = mean t;
      stddev = stddev t;
      min = min t;
      max = max t;
      total = t.total;
    }
end

let summarize xs =
  let acc = Acc.create () in
  Array.iter (Acc.add acc) xs;
  Acc.summary acc

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g total=%.4g"
    s.count s.mean s.stddev s.min s.max s.total
