type style = {
  label : int -> string;
  color : int -> string option;
  rankdir : string;
}

let default_style =
  { label = string_of_int; color = (fun _ -> None); rankdir = "TB" }

let pp ?(style = default_style) ppf g =
  Format.fprintf ppf "digraph G {@.";
  Format.fprintf ppf "  rankdir=%s;@." style.rankdir;
  Format.fprintf ppf "  node [shape=circle, fontsize=9];@.";
  for u = 0 to Graph.node_count g - 1 do
    match style.color u with
    | Some c ->
      Format.fprintf ppf "  n%d [label=\"%s\", style=filled, fillcolor=\"%s\"];@."
        u (style.label u) c
    | None -> Format.fprintf ppf "  n%d [label=\"%s\"];@." u (style.label u)
  done;
  Graph.iter_edges g (fun ~src ~dst ~eid:_ ->
      Format.fprintf ppf "  n%d -> n%d;@." src dst);
  Format.fprintf ppf "}@."

let to_file ?style path g =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try pp ?style ppf g
   with e ->
     close_out oc;
     raise e);
  Format.pp_print_flush ppf ();
  close_out oc
