(* The original big-lock executor, kept as the baseline for the
   dispatch benchmark: every scheduler call, status transition,
   activation and log append happens under one global mutex, and every
   completion broadcasts the condition variable at every waiting
   worker. See Executor for the replacement.

   The only change from the seed protocol is the startup barrier: all
   workers rendezvous after [Domain.spawn], and the makespan epoch is
   taken by the last arriver — identical to Executor's, so the two
   executors' [wall_makespan] measure dispatch from the same
   post-spawn instant and neither is charged for domain spawn time.
   Everything past the barrier is the seed dispatch protocol,
   unchanged. *)

type status = Inactive | Active | Running | Done

let now () = Unix.gettimeofday ()

let spin seconds =
  if seconds > 0.0 then begin
    let deadline = now () +. seconds in
    while now () < deadline do
      ignore (Sys.opaque_identity 0)
    done
  end

(* All cross-worker mutable state below is guarded by [lock]; it is
   held in [Vatomic.Plain] cells so the analysis build's happens-before
   checker can verify that claim (every access is ordered through the
   big mutex) rather than trusting it. *)
module Plain = Prelude.Vatomic.Plain

let run ?(domains = 4) ?(work_unit = 1e-4) ?(obs = Obs.Trace.disabled) ~sched
    (trace : Workload.Trace.t) =
  if domains < 1 then invalid_arg "Legacy.run: need at least one domain";
  let g = trace.Workload.Trace.graph in
  let n = Dag.Graph.node_count g in
  let inst = sched.Sched.Intf.make g in
  let lock = Mutex.create () in
  (* Per-worker scheduler-op attribution, same snapshot/credit scheme
     as Sched.Protected: scheduler calls all happen under [lock] with
     the calling worker known, so the delta of the instance's
     cumulative counters across each scheduler-touching section is
     credited to that worker. (The seed reported all-zero worker_ops;
     see legacy.mli.) *)
  let per_worker = Array.init domains (fun _ -> Sched.Intf.zero_ops ()) in
  let snap () =
    let o = inst.Sched.Intf.ops in
    ( o.Sched.Intf.queries,
      o.Sched.Intf.scans,
      o.Sched.Intf.messages,
      o.Sched.Intf.bucket_ops,
      o.Sched.Intf.bfs_steps )
  in
  let credit wid (q, s, m, b, f) =
    let o = inst.Sched.Intf.ops and w = per_worker.(wid) in
    w.Sched.Intf.queries <- w.Sched.Intf.queries + o.Sched.Intf.queries - q;
    w.Sched.Intf.scans <- w.Sched.Intf.scans + o.Sched.Intf.scans - s;
    w.Sched.Intf.messages <- w.Sched.Intf.messages + o.Sched.Intf.messages - m;
    w.Sched.Intf.bucket_ops <- w.Sched.Intf.bucket_ops + o.Sched.Intf.bucket_ops - b;
    w.Sched.Intf.bfs_steps <- w.Sched.Intf.bfs_steps + o.Sched.Intf.bfs_steps - f
  in
  let work_ready = Condition.create () in
  let status = Array.make n Inactive in
  let activated = Plain.make 0 in
  let completed = Plain.make 0 in
  let running = Plain.make 0 in
  let failed = Plain.make None in
  let log =
    Prelude.Vec.create
      ~dummy:{ Executor.task = 0; start = 0.0; finish = 0.0; worker = 0 }
      ()
  in
  let work_executed = Plain.make 0.0 in
  (* startup barrier (see header): the last worker to arrive stamps
     the epoch, so dispatch is measured from a common post-spawn
     instant *)
  let arrived = ref 0 in
  let epoch_ref = ref 0.0 in
  let bmutex = Mutex.create () in
  let bcond = Condition.create () in
  let barrier () =
    Mutex.lock bmutex;
    incr arrived;
    if !arrived = domains then begin
      epoch_ref := now ();
      Condition.broadcast bcond
    end
    else
      while !arrived < domains do
        Condition.wait bcond bmutex
      done;
    Mutex.unlock bmutex
  in
  let activate u =
    match status.(u) with
    | Inactive ->
      status.(u) <- Active;
      Plain.set activated (Plain.get activated + 1);
      inst.Sched.Intf.on_activated u
    | Active -> ()
    | Running | Done ->
      Plain.set failed (Some (Printf.sprintf "task %d activated after it ran" u))
  in
  Mutex.lock lock;
  (* initial activations run on the spawning thread; their scheduler
     work is credited to worker 0, mirroring Executor's
     [Protected.activate ~wid:0] *)
  let s0 = snap () in
  Array.iter activate trace.Workload.Trace.initial;
  credit 0 s0;
  Mutex.unlock lock;
  let worker wid =
    barrier ();
    let epoch = !epoch_ref in
    let ring = Obs.Trace.ring obs wid in
    let traced = Obs.Ring.enabled ring in
    (* big-lock scheduler sections carry no separately measured lock
       wait (the lock is held across the whole dispatch loop), so the
       span's wait field is 0 and [t0] is the section start *)
    let emit_sched kind t0 =
      if traced then Obs.Ring.emit ring ~kind ~a:0 ~b:(Obs.Ring.ns_of ring t0)
    in
    Mutex.lock lock;
    let rec loop () =
      if Plain.get failed <> None then ()
      else if Plain.get completed = Plain.get activated && Plain.get running = 0 then
        (* nothing active remains and nothing can activate more *)
        Condition.broadcast work_ready
      else begin
        let sq = snap () in
        let nr_t0 = if traced then Prelude.Mclock.now () else 0.0 in
        match inst.Sched.Intf.next_ready () with
        | Some u ->
          (match status.(u) with
          | Active -> ()
          | Inactive | Running | Done ->
            Plain.set failed
              (Some (Printf.sprintf "scheduler released task %d unsafely" u)));
          if Plain.get failed = None then begin
            status.(u) <- Running;
            Plain.set running (Plain.get running + 1);
            inst.Sched.Intf.on_started u;
            credit wid sq;
            emit_sched Obs.Event.sched_refill nr_t0;
            Mutex.unlock lock;
            let start = now () -. epoch in
            let mstart = if traced then Prelude.Mclock.now () else 0.0 in
            let work = Workload.Trace.work trace u in
            spin (work *. work_unit);
            let mfinish = if traced then Prelude.Mclock.now () else 0.0 in
            let finish = now () -. epoch in
            Mutex.lock lock;
            if traced then
              Obs.Ring.emit_at ring
                ~t_ns:(Obs.Ring.ns_of ring mfinish)
                ~kind:Obs.Event.task ~a:u
                ~b:(Obs.Ring.ns_of ring mstart);
            let sc = snap () in
            let cb_t0 = if traced then Prelude.Mclock.now () else 0.0 in
            status.(u) <- Done;
            Plain.set running (Plain.get running - 1);
            Plain.set completed (Plain.get completed + 1);
            Plain.set work_executed (Plain.get work_executed +. work);
            Prelude.Vec.push log { Executor.task = u; start; finish; worker = wid };
            Dag.Graph.iter_succ g u (fun ~dst ~eid ->
                if trace.Workload.Trace.edge_changed.(eid) then activate dst);
            inst.Sched.Intf.on_completed u;
            credit wid sc;
            emit_sched Obs.Event.sched_complete cb_t0;
            Condition.broadcast work_ready;
            loop ()
          end
          else begin
            credit wid sq;
            Condition.broadcast work_ready
          end
        | None ->
          credit wid sq;
          if Plain.get running = 0 then begin
            Plain.set failed
              (Some
                 (Printf.sprintf
                    "scheduler stalled: %d of %d activated tasks incomplete, none \
                     running"
                    (Plain.get activated - Plain.get completed)
                    (Plain.get activated)));
            Condition.broadcast work_ready
          end
          else begin
            let p0 = if traced then Prelude.Mclock.now () else 0.0 in
            Condition.wait work_ready lock;
            if traced then
              Obs.Ring.emit ring ~kind:Obs.Event.park ~a:0
                ~b:(Obs.Ring.ns_of ring p0);
            loop ()
          end
      end
    in
    loop ();
    Mutex.unlock lock
  in
  (* empty minor heap before spawning, as in Executor: a minor
     collection with live domains stops all of them *)
  Gc.minor ();
  let handles = List.init domains (fun wid -> Domain.spawn (fun () -> worker wid)) in
  List.iter Domain.join handles;
  (match Plain.get failed with
  | Some msg -> failwith ("Executor: " ^ msg)
  | None -> ());
  let log = Prelude.Vec.to_array log in
  let wall_makespan =
    Array.fold_left (fun acc r -> Float.max acc r.Executor.finish) 0.0 log
  in
  {
    Executor.wall_makespan;
    tasks_executed = Plain.get completed;
    tasks_activated = Plain.get activated;
    ops = inst.Sched.Intf.ops;
    worker_ops = per_worker;
    log;
    work_executed = Plain.get work_executed;
    (* structural, not unmeasured: the big-lock design has no worker
       buffers, so nothing can be stolen *)
    steals = 0;
  }
