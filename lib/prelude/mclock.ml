external now : unit -> (float[@unboxed])
  = "prelude_mclock_now" "prelude_mclock_now_unboxed"
[@@noalloc]
