(** Streaming and batch summary statistics for benchmark reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

val summarize : float array -> summary
(** Summary of a sample. [count = 0] yields zeros/NaN-free defaults. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], by linear interpolation on the
    sorted sample. @raise Invalid_argument on an empty sample. *)

val pp_summary : Format.formatter -> summary -> unit

(** Streaming accumulator (Welford's algorithm): numerically stable
    mean/variance without storing the sample. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val summary : t -> summary
end
