lib/datalog/to_trace.ml: Array Dag Hashtbl Incremental List Stratify String Workload
