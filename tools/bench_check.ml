(* bench_check — compare fresh BENCH smoke JSON against committed
   baselines, failing on parity regressions but never on timing noise.

   What counts as parity (the whitelist below): structural and
   count-valued fields that are deterministic given the bench's fixed
   RNG seeds — task/tuple/changed counts, workload and mode names,
   domain sets, engine/executor labels, fixed config (work_unit,
   batch, sched). Timing fields (seconds, rates, speedups) vary run to
   run and are ignored; see EXPERIMENTS.md for the tolerance policy.
   Whole subtrees that summarize a timing-dependent choice (headline,
   the measured breakdown, measured-vs-modeled overhead) are skipped.

   Both files must still be strict JSON — the parser rejects NaN and
   Infinity, so an emitter printing a non-finite number fails here
   even though the field's value is never compared.

   Usage: bench_check --baseline DIR --fresh DIR *)

let files =
  [
    "BENCH_executor_smoke.json";
    "BENCH_datalog_smoke.json";
    "BENCH_maintain_par_smoke.json";
    "BENCH_maintain_shard_smoke.json";
    "BENCH_maintain_count_smoke.json";
    "BENCH_serve_smoke.json";
  ]

(* keys whose values must match exactly *)
let whitelist =
  [
    "benchmark"; "program"; "phase"; "engine"; "workload"; "mode"; "trace";
    "executor"; "tuples"; "tasks"; "changed"; "domains"; "work_unit"; "batch";
    "sched"; "shards"; "databases_agree"; "maint"; "mix"; "batches"; "advice";
    (* serve: offered rate is fixed config; ops admitted and sync-mode
       commit counts are deterministic (the async rows report their
       timing-dependent run counts under "runs"/"net_changed", which
       stay unchecked) *)
    "rate"; "ops"; "commits";
  ]

(* subtrees that exist to report measurements; skipped entirely *)
let skip = [ "headline"; "breakdown"; "sched_overhead"; "counting_phases" ]

(* present but host-dependent *)
let ignore_keys = [ "host_cores" ]

let errors = ref []

let fail path fmt =
  Printf.ksprintf (fun msg -> errors := (path ^ ": " ^ msg) :: !errors) fmt

let pp_leaf = function
  | Obs.Json.Null -> "null"
  | Obs.Json.Bool b -> string_of_bool b
  | Obs.Json.Number f ->
    if Float.is_integer f then string_of_int (int_of_float f)
    else string_of_float f
  | Obs.Json.String s -> Printf.sprintf "%S" s
  | Obs.Json.Array _ -> "<array>"
  | Obs.Json.Object _ -> "<object>"

(* [key] is the object member name that led here; whitelisted leaves
   must be equal, everything else may drift (timing) *)
let rec compare_values ~key path (base : Obs.Json.t) (fresh : Obs.Json.t) =
  match (base, fresh) with
  | Obs.Json.Object b, Obs.Json.Object f ->
    List.iter
      (fun (k, bv) ->
        if List.mem k skip || List.mem k ignore_keys then ()
        else
          match List.assoc_opt k f with
          | Some fv -> compare_values ~key:k (path ^ "." ^ k) bv fv
          | None ->
            if List.mem k whitelist then fail path "missing key %S in fresh" k)
      b;
    List.iter
      (fun (k, _) ->
        if List.mem k whitelist && List.assoc_opt k b = None then
          fail path "unexpected new key %S in fresh" k)
      f
  | Obs.Json.Array b, Obs.Json.Array f ->
    let nb = List.length b and nf = List.length f in
    if nb <> nf then fail path "array length %d in baseline, %d in fresh" nb nf
    else
      List.iteri
        (fun i (bv, fv) ->
          compare_values ~key (Printf.sprintf "%s[%d]" path i) bv fv)
        (List.combine b f)
  | (Obs.Json.Object _ | Obs.Json.Array _), _
  | _, (Obs.Json.Object _ | Obs.Json.Array _) ->
    fail path "baseline is %s but fresh is %s" (pp_leaf base) (pp_leaf fresh)
  | _ ->
    if List.mem key whitelist && base <> fresh then
      fail path "baseline %s, fresh %s" (pp_leaf base) (pp_leaf fresh)

let load dir file =
  let path = Filename.concat dir file in
  match Obs.Json.of_file path with
  | j -> Some j
  | exception Obs.Json.Parse_error msg ->
    fail path "invalid JSON: %s" msg;
    None
  | exception Sys_error msg ->
    fail path "unreadable: %s" msg;
    None

let () =
  let baseline = ref "" and fresh = ref "" in
  let rec parse_args = function
    | "--baseline" :: dir :: rest ->
      baseline := dir;
      parse_args rest
    | "--fresh" :: dir :: rest ->
      fresh := dir;
      parse_args rest
    | [] -> ()
    | arg :: _ ->
      prerr_endline ("usage: bench_check --baseline DIR --fresh DIR (got " ^ arg ^ ")");
      exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !baseline = "" || !fresh = "" then begin
    prerr_endline "usage: bench_check --baseline DIR --fresh DIR";
    exit 2
  end;
  List.iter
    (fun file ->
      match (load !baseline file, load !fresh file) with
      | Some b, Some f -> compare_values ~key:"" file b f
      | _ -> ())
    files;
  match List.rev !errors with
  | [] ->
    Printf.printf "bench_check: %d files match the committed baselines\n"
      (List.length files)
  | errs ->
    List.iter (fun e -> Printf.eprintf "bench_check: %s\n" e) errs;
    Printf.eprintf "bench_check: %d parity mismatch(es)\n" (List.length errs);
    exit 1
