(** Incremental maintenance of Datalog programs as DAG scheduling —
    one-stop facade.

    Reproduction of Singh et al., "A Scheduling Approach to Incremental
    Maintenance of Datalog Programs", IPDPS 2020. The underlying
    libraries remain directly usable:

    - [Dag] — DAG substrate: levels, reachability, interval lists, SCC;
    - [Sched] — the schedulers: LevelBased, LBL(k), LogicBlox, signal
      propagation, Hybrid, plus the offline clairvoyant reference;
    - [Workload] — traces, generators, the Table I reconstructions;
    - [Simulator] — the discrete-event engine, Theorem 10 meta-scheduler,
      schedule validation;
    - [Datalog] — the Datalog engine (parser, stratified semi-naive
      evaluation, DRed incremental maintenance, DAG extraction).

    Quick start:
    {[
      let trace = Incr_sched.trace_of_string my_trace_text in
      let results = Incr_sched.compare ~procs:8 trace in
      List.iter (Format.printf "%a@." Incr_sched.pp_result) results
    ]} *)

type result = Simulator.Metrics.t

val schedule :
  ?procs:int ->
  ?op_cost:float ->
  ?validate:bool ->
  sched:string ->
  Workload.Trace.t ->
  result
(** Run one named scheduler (see {!Sched.Registry.names}) on a trace.
    With [validate] (default off; expensive on big traces) the schedule
    is checked against the Section II model and any violation raises
    [Failure]. @raise Invalid_argument on an unknown scheduler name. *)

val compare :
  ?procs:int ->
  ?op_cost:float ->
  ?scheds:string list ->
  Workload.Trace.t ->
  result list
(** Run several schedulers (default: LevelBased, LBL(10), LogicBlox,
    Hybrid) on the same trace. *)

val clairvoyant : ?procs:int -> ?op_cost:float -> Workload.Trace.t -> result
(** The offline lower-bound reference for a trace. *)

val trace_of_file : string -> Workload.Trace.t

val trace_of_string : ?name:string -> string -> Workload.Trace.t

(** {1 Datalog entry points} *)

type datalog_session = {
  db : Datalog.Database.t;
  program : Datalog.Ast.program;
}

val materialize : ?lint:bool -> string -> datalog_session
(** Parse a program and compute its full materialization. [lint]
    (default off) re-checks range restriction with named-variable
    diagnostics before evaluating.
    @raise Datalog.Parser.Error on syntax errors
    @raise Datalog.Lint.Failed when [lint] and the check fails
    @raise Datalog.Stratify.Unstratifiable on negative recursion. *)

val lint : datalog_session -> Datalog.Lint.diagnostic list
(** All lint diagnostics (warnings included) for the session's
    program; see {!Datalog.Lint.pp}. *)

val update :
  ?work_unit:float ->
  ?maint:Datalog.Incremental.maint ->
  ?domains:int ->
  ?shards:int ->
  ?sanitize:bool ->
  ?trace:string ->
  ?obs:Obs.Trace.t ->
  datalog_session ->
  additions:string list ->
  deletions:string list ->
  Datalog.To_trace.t
(** Apply a base-fact update incrementally (atoms given as text, e.g.
    ["edge(\"a\",\"b\")"]) and return the revealed scheduling trace.
    [maint] (default DRed) selects the maintenance strategy — see
    {!Datalog.Incremental.maint}; ["auto"]-style per-component advice
    is [Datalog.Incremental.Auto]. [sanitize] (default off) arms the
    runtime write-set sanitizer (see {!Datalog.Relation.Sanitize}).
    [domains] (default 1) > 1 performs the maintenance in parallel on
    that many worker domains; [shards] (default 1) > 1 additionally
    fans each component's maintenance phase rounds — DRed's delete and
    insert rounds, counting's propagation rounds — out over that many
    shard tasks (see {!Datalog.Incremental.apply_parallel}). [trace] records
    the maintenance run's per-worker timeline — one ring per executor
    worker plus one per extra shard — and writes it to the given path
    as Chrome trace_event JSON (chrome://tracing or Perfetto; task
    spans named by component predicates, shard fan-out as [shard j]
    spans) — summarize it with [dms trace] or
    {!Obs.Export.summary_of_json}. [obs] instead records into
    caller-owned rings (sized for [domains + shards - 1] writers, see
    {!Datalog.Incremental.apply_parallel}) and leaves export to the
    caller — the update server threads one trace through many commits
    this way; when both are given [obs] wins and [trace] is ignored. *)

val query : datalog_session -> string -> Datalog.Ast.atom list
(** All facts of a predicate, sorted. *)

val pp_result : Format.formatter -> result -> unit

val pp_result_row : Format.formatter -> result -> unit
