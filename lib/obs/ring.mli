(** Fixed-capacity per-worker event ring.

    One record is four flat ints — [(kind, t_ns, a, b)], see
    {!Event} for the field conventions — stored in parallel int
    arrays: recording allocates nothing and the arrays contain no
    pointers for the GC to scan. Capacity is rounded up to a power of
    two; on overflow the oldest records are overwritten and counted in
    {!dropped}, never silently.

    Single-writer: only the owning worker may {!emit}; {!iter} is for
    after that domain has quiesced (the executor reads rings only
    after joining its domains). The publish cursor goes through
    {!Prelude.Vatomic} so the [--profile analysis] build can check the
    write-slots-then-bump-cursor ordering. *)

type t

val null : t
(** The shared disabled ring: {!emit} on it is a single branch. Use it
    wherever an optional ring is absent so call sites stay
    unconditional. *)

val create : ?capacity:int -> epoch:float -> unit -> t
(** [capacity] (default 16384 records, ~512 KiB) is rounded up to a
    power of two. [epoch] is the {!Prelude.Mclock} reading that all
    stamps are relative to; rings sharing a trace share it. *)

val enabled : t -> bool
(** [false] exactly for {!null}. Guard any work beyond the emit call
    itself (extra clock reads, label formatting) behind this. *)

val epoch : t -> float

val capacity : t -> int

val ns_of : t -> float -> int
(** Convert an absolute {!Prelude.Mclock} reading (seconds) to integer
    nanoseconds since the ring's epoch. *)

val now_ns : t -> int
(** [ns_of t (Mclock.now ())]. *)

val emit : t -> kind:Event.kind -> a:int -> b:int -> unit
(** Record an event stamped now. Disabled rings return after one
    branch; enabled cost is one clock read and four int stores. *)

val emit_at : t -> t_ns:int -> kind:Event.kind -> a:int -> b:int -> unit
(** Record with an explicit stamp (when the caller already read the
    clock, e.g. the executor's per-task stamps). *)

val written : t -> int
(** Total records ever emitted, including overwritten ones. *)

val length : t -> int
(** Records currently retained ([min written capacity]). *)

val dropped : t -> int
(** [written - length]: records lost to wraparound. *)

val iter : t -> (kind:Event.kind -> t_ns:int -> a:int -> b:int -> unit) -> unit
(** Oldest retained to newest. Only after the writer has quiesced. *)
