(** Incremental maintenance of a materialized database under base-fact
    updates, with two engine-selectable algorithms ({!maint}).

    {b DRed} (delete-rederive), with stratified negation, processed
    stratum by stratum:

    + {e overdelete}: semi-naively propagate deletions (and additions
      under negated literals), matching the remaining body against the
      pre-update snapshot; remove everything possibly affected;
    + {e rederive}: re-add overdeleted tuples with surviving alternative
      derivations, to fixpoint;
    + {e insert}: semi-naively propagate additions (and deletions under
      negated literals) against the post-update state.

    {b Counting} (with Backward/Forward search for recursive
    components, after Hu/Motik/Horrocks' "Optimised Maintenance of
    Datalog Materialisations"): every derived tuple carries its number
    of distinct derivations, split into exit-rule and recursive-rule
    support ({!Relation.count_cell}). An update propagates {e signed
    count deltas} — each enumeration joins the changed tuples at body
    position i against already-updated state before i and not-yet-
    updated state after i ({!Plan.run}'s [late_view]) — and a tuple is
    deleted exactly when its count reaches zero. Nothing is
    over-deleted, so DRed's rederivation storm disappears; only
    decremented-but-surviving tuples with no exit support need the
    backward check for an alternative well-founded derivation — and
    the support index ({!Relation.count_cell.level} / [low]) settles
    most of those in O(1) — while forward propagation restarts only
    from genuinely dead tuples.
    Counts live in a side table stamped with the relation version
    ({!Relation.counts_synced}); they are rebuilt transparently when
    stale (first use, or after DRed/Eval touched the relation), or
    ahead of time with {!prime}.

    This is the computation whose task DAG the paper's schedulers order:
    each dependency-graph component is one task, activated exactly when
    the update actually changes one of its inputs. {!apply} records per-
    component activity so {!To_trace} can build that DAG. *)

type pred_change = {
  pred : string;
  added : int;  (** net tuples gained vs. the pre-update state *)
  removed : int;  (** net tuples lost *)
}

type comp_activity = {
  comp : int;  (** component id in the {!Stratify.t} condensation *)
  work : int;  (** tuples examined while maintaining this component *)
  output_changed : bool;  (** did any predicate of the component change *)
  input_changed : bool;
      (** did any predicate feeding this component change (i.e. would
          the paper's runtime have activated this task) *)
}

type report = {
  changes : pred_change list;  (** predicates with a net change, sorted *)
  activity : comp_activity list;  (** every component, evaluation order *)
  analysis : Stratify.t;
}

type maint = Dred | Counting | Auto
(** Maintenance algorithm. All restore exactly the same database; they
    differ in how deletions are paid for. [Counting] requires the
    compiled engine ({!Plan.Compiled}); aggregate components use the
    same recompute-and-diff under either. The count side tables carry
    the {e well-founded support index} — each tuple's first-derivation
    fixpoint round ({!Relation.count_cell.level}) and its count of
    surviving strictly-lower-level supporters ([low]) — which lets the
    backward search prove most deletion-suspects in O(1) instead of
    re-evaluating rule bodies. Counting composes with [shards > 1]:
    the side tables shard with the tuple stores and propagation rounds
    fan out like DRed's. DRed can still win on updates that wipe out
    most of a materialization — counting's per-derivation bookkeeping
    then costs more than deleting everything and rederiving the little
    that remains.

    Whatever the selector, maintenance runs with one {e resolved}
    strategy per condensation component. [Dred] and [Counting] resolve
    uniformly; [Auto] asks the static advisor ({!Analyze}) per
    component — Counting where its features say it is safe and
    profitable (nonrecursive, or linear recursion with strong exit
    support, no negation or aggregates), DRed otherwise. The one
    combination counting cannot serve (the interpretive engine under
    [Auto]) downgrades the affected components to DRed with a message
    through [on_warn] instead of failing. *)

val apply :
  ?engine:Plan.engine ->
  ?maint:maint ->
  ?sanitize:bool ->
  ?on_warn:(string -> unit) ->
  ?obs:Obs.Trace.t ->
  Database.t ->
  Ast.program ->
  additions:Ast.atom list ->
  deletions:Ast.atom list ->
  report
(** Update base facts and restore the materialization. [db] must hold a
    completed materialization of [program] (via {!Eval.run}). Atoms must
    be ground and extensional. [engine] (default {!Plan.Compiled})
    selects compiled plans or the interpretive oracle; both restore the
    same database. [maint] (default {!Dred}) selects the maintenance
    algorithm. [sanitize] (default false) arms the write-set sanitizer:
    every relation and delta pair is tagged with its owning component,
    each component's maintenance runs inside a matching
    {!Relation.Sanitize.with_writer} scope, and a mutation that crosses
    component ownership raises {!Relation.Sanitize.Violation} naming
    the relation and both tasks (tags are removed before returning).
    [on_warn] (default: print to stderr) receives advisory downgrade
    messages — see {!maint}. [obs] (default disabled) records a phase
    span per maintained component on the trace's ring 0 — delete /
    rederive / insert under DRed, count-propagate / backward / forward
    under Counting, tagged with the component id.
    @raise Invalid_argument on a non-ground or intensional atom, or for
    [~maint:Counting] with the interpretive engine. *)

val prime : ?engine:Plan.engine -> Database.t -> Ast.program -> int
(** Build and version-stamp the derivation-count side tables of every
    derived predicate against the database's current (materialized)
    contents — one full-join pass per rule; returns the tuples
    examined. Optional: the first [apply ~maint:Counting] rebuilds
    stale counts itself; priming just moves that cost out of the
    update. Counts are per program: priming with one program and
    maintaining with another is only safe if the database was touched
    in between (the version stamp then forces a rebuild).
    @raise Invalid_argument with the interpretive engine. *)

val serial_task_threshold : int
(** Default [serial_threshold] of {!apply_parallel}: activation
    wavefronts smaller than this run the serial walk — the executor's
    domain spawn-and-join overhead exceeds the update cost on such
    small task counts. *)

val apply_parallel :
  ?engine:Plan.engine ->
  ?maint:maint ->
  ?domains:int ->
  ?shards:int ->
  ?serial_threshold:int ->
  ?sched:Sched.Intf.factory ->
  ?sanitize:bool ->
  ?on_warn:(string -> unit) ->
  ?obs:Obs.Trace.t ->
  Database.t ->
  Ast.program ->
  additions:Ast.atom list ->
  deletions:Ast.atom list ->
  report
(** {!apply}, with the components maintained as real tasks on the
    multicore executor ({!Parallel.Executor}) under [sched] (default
    the paper's LevelBased scheduler), [domains] worker domains
    (default 4; [domains <= 1] with [shards <= 1] falls back to the
    serial walk). The task DAG is the condensation of the predicate
    dependency graph with every edge marked changed — which inputs
    actually changed is only discovered as tasks run — and the changed
    extensional components as initial tasks. Each task writes only its
    own component's relations and deltas and reads upstream state that
    the scheduler's precedence guarantees is quiescent, so the final
    database and report are the serial ones (up to interning order of
    aggregate-minted constants, and [work] counts, whose phase-B round
    structure may differ with hashing order). All plans are compiled
    and delta tables created serially before the first task runs.

    [shards] (default 1) additionally splits each component's DRed
    delete and insert rounds into per-shard enumerations over a
    {!Parallel.Shard_crew}: round inputs are partitioned by the
    {!Relation.shard_of_tuple} hash of the delta tuple's key column,
    each shard derives into a private buffer against frozen state, and
    the coordinator merges buffers in shard order 0..k-1 behind the
    crew barrier — so results, including iteration order, stay
    deterministic and equal to the serial walk's (again up to [work]
    counts: cross-shard duplicate derivations are dropped at the merge
    rather than at staging time).

    When the conservative wavefront holds fewer than [serial_threshold]
    (default {!serial_task_threshold}) active component tasks, the
    update runs the serial walk — still sharded when [shards > 1] —
    instead of paying the executor's spawn-and-join overhead.

    [maint] (default {!Dred}) selects the per-component maintenance
    strategy, as in {!apply}; component-level parallelism (ownership +
    precedence) is algorithm-agnostic, and counting shards natively —
    with [shards > 1] each counting component's propagation rounds
    (the external delta, death cascades, birth rounds) partition by
    the same key-column hash, each shard accumulating signed count
    deltas in private buffers that the coordinator merges in shard
    order (counts add, newborn levels take the minimum) before
    settling serially, so counts, the level index, and the database
    equal the serial walk's. The backward search stays serial: its
    worklist is the suspect cone, already cut down by the O(1) level
    check.

    Before dispatching any task, the driver statically verifies the
    ownership rule it relies on: every prepared component's write set
    (rule heads) and read set (the {!Plan.exec_reads} of its compiled
    plan stores, flipped-negation variants included) are checked by
    {!Analyze.check_ownership} against the condensation. A violation —
    a plan probing a relation that is neither same-component nor
    upstream — refuses parallel dispatch: the update runs the serial
    walk, which needs no ownership, and [on_warn] carries the verifier
    message. [sanitize] additionally arms the runtime write-set checks
    of {!apply} (tags work unchanged across worker domains: the writer
    scope is domain-local).

    [obs] (default disabled) threads the executor's per-worker tracing
    (task / steal / park / scheduler-lock events) through the run and
    adds maintenance phase spans on the executing worker's ring;
    sharded rounds add [shard] spans, shard 0 on the coordinating
    worker's ring, shard [j >= 1] on ring [max 1 domains + j - 1].
    Recording never changes maintenance results.
    @raise Invalid_argument on a non-ground or intensional atom, if
    [shards < 1], or if [engine] is {!Plan.Interpreted} with
    [domains > 1] or [shards > 1] or [maint = Counting]
    @raise Failure if a maintenance task raises. *)
