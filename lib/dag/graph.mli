(** Immutable directed graphs in compressed-sparse-row form.

    Nodes are dense integers [0, n). Every edge carries a stable edge id
    in [0, m) — the position in insertion order — which the workload
    layer uses to attach change-propagation flags to edges (the active
    graph [F] of the paper is a subset of edges selected by id).

    The structure itself permits cycles (the Datalog predicate graph has
    them before SCC condensation); DAG-only algorithms check or document
    their precondition. *)

type t

(** Mutable builder; [build] freezes into CSR form. *)
module Builder : sig
  type graph := t
  type t

  val create : ?nodes:int -> unit -> t
  (** [create ~nodes ()] starts with [nodes] nodes and no edges. *)

  val add_node : t -> int
  (** Append one node; returns its id. *)

  val node_count : t -> int

  val add_edge : t -> int -> int -> int
  (** [add_edge b u v] adds edge [u -> v] and returns its edge id.
      Nodes must already exist. Parallel edges and self-loops are
      permitted (a self-loop makes the graph cyclic, which DAG-only
      algorithms reject downstream). *)

  val build : t -> graph
end

val of_edges : nodes:int -> (int * int) array -> t
(** Edge ids follow array order. *)

val empty : int -> t
(** [empty n] has [n] nodes and no edges. *)

val node_count : t -> int

val edge_count : t -> int

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_succ : t -> int -> (dst:int -> eid:int -> unit) -> unit

val csr_succ : t -> int array * int array * int array
(** [(off, dst, eid)]: node [u]'s out-edges occupy
    [off.(u) .. off.(u+1) - 1] of [dst]/[eid]. The graph's own internal
    arrays, exposed for dispatch-rate hot loops where even the
    per-edge closure call of {!iter_succ} shows up — callers must not
    mutate them. *)

val iter_pred : t -> int -> (src:int -> eid:int -> unit) -> unit

val succ : t -> int -> int array

val pred : t -> int -> int array

val edge_src : t -> int -> int
(** Source of an edge id. *)

val edge_dst : t -> int -> int

val iter_edges : t -> (src:int -> dst:int -> eid:int -> unit) -> unit

val sources : t -> int array
(** Nodes with in-degree 0, ascending. *)

val sinks : t -> int array

val transpose : t -> t
(** Reversed graph. Edge ids are preserved: edge [eid] in the transpose
    runs [dst -> src] of the original edge [eid]. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] — O(out_degree u). *)

val pp_stats : Format.formatter -> t -> unit
