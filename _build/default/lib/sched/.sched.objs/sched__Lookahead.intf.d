lib/sched/lookahead.mli: Dag Intf
