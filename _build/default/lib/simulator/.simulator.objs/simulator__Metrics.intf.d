lib/simulator/metrics.mli: Format Sched
