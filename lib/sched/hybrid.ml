let make_with ~name ~co ?ops ?levels g =
  let ops = match ops with Some o -> o | None -> Intf.zero_ops () in
  (* Both components accumulate into the same counters so the hybrid's
     reported overhead is the true combined decision cost. *)
  let lb = Level_based.make ~ops ?levels g in
  let co_inst = co ~ops g in
  let forward f_lb f_co u =
    f_lb u;
    f_co u
  in
  {
    Intf.name;
    on_activated = forward lb.Intf.on_activated co_inst.Intf.on_activated;
    on_started = forward lb.Intf.on_started co_inst.Intf.on_started;
    on_completed = forward lb.Intf.on_completed co_inst.Intf.on_completed;
    next_ready =
      (fun () ->
        (* cheap component first; the heuristic's search only runs when
           LevelBased has nothing safe to offer (shared ready queue of
           Section V) *)
        match lb.Intf.next_ready () with
        | Some u -> Some u
        | None -> co_inst.Intf.next_ready ());
    next_ready_into = None;
    ops;
    memory_words = (fun () -> lb.Intf.memory_words () + co_inst.Intf.memory_words ());
  }

(* The bounded scan batch is the hybrid's second lever: LevelBased keeps
   processors fed, so the LogicBlox component may amortize its
   active-queue scanning across events instead of paying a full rescan
   per completion. *)
let co_scan_batch = 32

let make_batched ?ops ?levels ?ilist ~scan_batch g =
  make_with
    ~name:(Printf.sprintf "Hybrid(batch=%d)" scan_batch)
    ~co:(fun ~ops g -> Logicblox.make ~ops ~scan_batch ?ilist g)
    ?ops ?levels g

let make ?ops ?levels ?ilist g =
  make_with ~name:"Hybrid(LB+LogicBlox)"
    ~co:(fun ~ops g -> Logicblox.make ~ops ~scan_batch:co_scan_batch ?ilist g)
    ?ops ?levels g

let factory = { Intf.fname = "hybrid"; make = (fun g -> make g) }

let factory_batched ~scan_batch =
  {
    Intf.fname = Printf.sprintf "hybrid:%d" scan_batch;
    make = (fun g -> make_batched ~scan_batch g);
  }
