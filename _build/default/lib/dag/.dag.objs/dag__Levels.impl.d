lib/dag/levels.ml: Array Graph List Topo
