(** Recursive-descent parser for Datalog programs.

    Grammar:
    {v
    program  ::= clause*
    clause   ::= atom '.' | atom ':-' body '.'
    body     ::= literal (',' literal)*
    literal  ::= atom | '!' atom | term op term
    atom     ::= ident '(' term (',' term)* ')' | ident
    term     ::= VARIABLE | ident | integer | string
    v}
    A bare lowercase identifier as a term is a symbol constant; as an
    atom it is a zero-arity predicate. *)

exception Error of { line : int; col : int; message : string }

val parse : string -> Ast.program
(** @raise Error on syntax errors,
    and also when a clause is not range-restricted. *)

val parse_atom : string -> Ast.atom
(** A single ground or non-ground atom, e.g. ["edge(a, B)"]. *)
