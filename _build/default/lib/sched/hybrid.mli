(** The hybrid scheduling scheme (paper, Sections V and VI-B).

    Runs LevelBased next to any heuristic co-scheduler with a shared
    notion of ready work. All events are forwarded to both components;
    when the engine asks for work, the cheap LevelBased component is
    consulted first and the heuristic's (potentially expensive) search
    only runs when LevelBased has nothing safe to offer. Both components
    tolerate externally-started tasks, so each task still executes once.

    On instances where the heuristic shines, its discoveries keep
    processors saturated exactly as before; on its pathological
    instances LevelBased keeps feeding work while the heuristic would
    stall — the best-of-both-worlds behaviour of Theorem 10 realized
    with a shared ready queue rather than processor splitting. *)

val make :
  ?ops:Intf.ops ->
  ?levels:int array ->
  ?ilist:Dag.Interval_list.t ->
  Dag.Graph.t ->
  Intf.instance
(** LevelBased combined with the reimplemented LogicBlox scheduler —
    the configuration measured in Table III. [levels]/[ilist] reuse
    precomputations (see {!Prepared}). *)

val make_with :
  name:string ->
  co:(ops:Intf.ops -> Dag.Graph.t -> Intf.instance) ->
  ?ops:Intf.ops ->
  ?levels:int array ->
  Dag.Graph.t ->
  Intf.instance
(** [make_with ~name ~co] combines LevelBased with any co-scheduler
    (the "any other heuristic" of Section V). The co-scheduler must
    accumulate into the [ops] record it is given. *)

val factory : Intf.factory

val make_batched :
  ?ops:Intf.ops ->
  ?levels:int array ->
  ?ilist:Dag.Interval_list.t ->
  scan_batch:int ->
  Dag.Graph.t ->
  Intf.instance
(** Hybrid with an explicit co-scheduler scan batch (default 32 in
    {!make}); the ablation knob for the bounded-scan design choice. *)

val factory_batched : scan_batch:int -> Intf.factory
