examples/retail_assortment.mli:
