(** The online scheduler interface (the problem of Section II).

    The simulation engine owns the ground truth — which edges carry
    changed outputs — and reveals it to the scheduler one event at a
    time, exactly as the runtime of a Datalog system would:

    - [on_activated u]: task [u]'s input changed ([u] joined the active
      set [W]). Delivered at most once per task, and always before the
      [on_completed] of the parent whose output change caused it.
    - [next_ready ()]: the engine has an idle processor; the scheduler
      may hand over any task that is {e safe}: no ancestor of it (in the
      full DAG [G]) is currently active-and-unexecuted or running.
      Returning [None] is always allowed; liveness requires that when
      nothing is running and active tasks remain, some task is returned.
    - [on_started u]: the engine dispatched [u] (possibly found via a
      co-scheduler in the hybrid scheme — every component scheduler must
      tolerate tasks it did not itself propose being started).
    - [on_completed u]: [u] finished; its activations were already
      delivered.

    Schedulers account their decision work in an {!ops} record; the
    engine converts operation counts into virtual scheduling time, which
    is how "scheduling overhead" becomes part of the makespan, as in the
    paper's Tables II and III. *)

type task = int

(** Abstract operation counters. Each counted operation is O(1)-ish
    work inside the scheduler; the engine assigns a virtual duration per
    operation (see {!Simulator.Engine}). *)
type ops = {
  mutable queries : int;  (** interval-list / ancestor queries *)
  mutable scans : int;  (** active-queue scan passes *)
  mutable messages : int;  (** signal-propagation messages *)
  mutable bucket_ops : int;  (** level-bucket pushes/pops/peeks *)
  mutable bfs_steps : int;  (** lookahead BFS node/edge visits *)
}

val zero_ops : unit -> ops

val total_ops : ops -> int
(** Unweighted op count. *)

val weighted_ops : ops -> float
(** Cost-weighted op count, which is what the engine converts into
    virtual time. An interval-list probe (binary search over a
    fragmented array, or a word sweep over the active bitset) costs far
    more than a level-bucket push, so the weights are: queries 20,
    scans 5, lookahead BFS steps 2, messages and bucket ops 1. *)

val add_ops : into:ops -> ops -> unit

val pp_ops : Format.formatter -> ops -> unit

(** A live scheduler attached to one DAG instance. *)
type instance = {
  name : string;
  on_activated : task -> unit;
  on_started : task -> unit;
  on_completed : task -> unit;
  next_ready : unit -> task option;
  next_ready_into : (task array -> int -> int) option;
      (** Optional batched release path for multicore adapters:
          [fill into max] behaves exactly like repeatedly calling
          [next_ready ()] followed by [on_started u] on each released
          task — including every safety decision in between — writing
          the tasks to [into.(0 .. k-1)] and returning [k <= max].
          Schedulers whose single-task path allocates (options, queue
          cells) implement this so a thread-safe wrapper can drain a
          whole buffer allocation-free in one critical section;
          [None] means the wrapper falls back to the single-task
          calls. The sequential engine never uses it. *)
  ops : ops;  (** live counters, updated as the scheduler works *)
  memory_words : unit -> int;
      (** current resident footprint of scheduler state, in words;
          includes precomputed structures (interval lists, levels) *)
}

type factory = {
  fname : string;
  make : Dag.Graph.t -> instance;
      (** runs the scheduler's precomputation; the engine times it *)
}
