type t = {
  inst : Intf.instance;
  lock : Mutex.t;
  per_worker : Intf.ops array;
  (* per-worker observability rings ([Obs.Ring.null] when tracing is
     off): each critical section records one span — lock wait plus
     hold — so the *measured* scheduler overhead can be set against
     the op-count model the [ops] record implements *)
  rings : Obs.Ring.t array;
  mutable outstanding : int;
  (* [completed] is the one field read outside [lock] (the executor's
     termination test); SC counter via Vatomic so the analysis build
     can check the completed<=activated ordering argument. The batched
     bump in [complete_batch] happens inside the critical section,
     after the batch's activations were delivered. *)
  completed : int Prelude.Vatomic.t;
}

type refill = Got of int | Pending | Drained

let make ?rings ~workers (factory : Intf.factory) g =
  if workers < 1 then invalid_arg "Protected.make: need at least one worker";
  let rings =
    match rings with
    | Some r when Array.length r >= workers -> r
    | Some _ -> invalid_arg "Protected.make: rings array shorter than workers"
    | None -> Array.make workers Obs.Ring.null
  in
  {
    inst = factory.Intf.make g;
    lock = Mutex.create ();
    per_worker = Array.init workers (fun _ -> Intf.zero_ops ());
    rings;
    outstanding = 0;
    completed = Prelude.Vatomic.make 0;
  }

let name t = t.inst.Intf.name

let ops t = t.inst.Intf.ops

let worker_ops t = t.per_worker

let completed t = Prelude.Vatomic.get t.completed

(* Per-worker op attribution: snapshot the instance's cumulative
   counters entering the critical section, credit the delta to the
   calling worker on the way out. The instance record stays the single
   source of truth for the aggregate. *)
let credit t wid ~q ~s ~m ~b ~f =
  let o = t.inst.Intf.ops and w = t.per_worker.(wid) in
  w.Intf.queries <- w.Intf.queries + o.Intf.queries - q;
  w.Intf.scans <- w.Intf.scans + o.Intf.scans - s;
  w.Intf.messages <- w.Intf.messages + o.Intf.messages - m;
  w.Intf.bucket_ops <- w.Intf.bucket_ops + o.Intf.bucket_ops - b;
  w.Intf.bfs_steps <- w.Intf.bfs_steps + o.Intf.bfs_steps - f

(* [kind] tags the emitted span (refill / complete / activate). The
   two clock reads bracket the lock acquisition, so the span records
   both the wait (contention) and the hold (scheduler work); both are
   skipped entirely when the worker's ring is disabled. The emit
   itself lands after the unlock — it touches only the caller's own
   ring, never shared state. *)
let[@inline] locked t wid kind body =
  let ring = Array.unsafe_get t.rings wid in
  let traced = Obs.Ring.enabled ring in
  let t0 = if traced then Prelude.Mclock.now () else 0.0 in
  Mutex.lock t.lock;
  let t1 = if traced then Prelude.Mclock.now () else 0.0 in
  let o = t.inst.Intf.ops in
  let q = o.Intf.queries
  and s = o.Intf.scans
  and m = o.Intf.messages
  and b = o.Intf.bucket_ops
  and f = o.Intf.bfs_steps in
  let result = body t.inst in
  credit t wid ~q ~s ~m ~b ~f;
  Mutex.unlock t.lock;
  if traced then begin
    let b0 = Obs.Ring.ns_of ring t0 and b1 = Obs.Ring.ns_of ring t1 in
    Obs.Ring.emit ring ~kind ~a:(b1 - b0) ~b:b1
  end;
  result

let activate t ~wid tasks =
  locked t wid Obs.Event.sched_activate (fun inst ->
      Array.iter inst.Intf.on_activated tasks)

let memory_words t =
  Mutex.lock t.lock;
  let w = t.inst.Intf.memory_words () in
  Mutex.unlock t.lock;
  w

let refill t ~wid ~into =
  let max = Array.length into in
  let k, out =
    locked t wid Obs.Event.sched_refill (fun inst ->
        let k =
          (* prefer the scheduler's allocation-free batched path; the
             fallback pairs [next_ready] with [on_started] one task at
             a time, which is semantically identical *)
          match inst.Intf.next_ready_into with
          | Some fill -> fill into max
          | None ->
            let k = ref 0 in
            let exception Dry in
            (try
               while !k < max do
                 match inst.Intf.next_ready () with
                 | Some u ->
                   inst.Intf.on_started u;
                   into.(!k) <- u;
                   incr k
                 | None -> raise Dry
               done
             with Dry -> ());
            !k
        in
        t.outstanding <- t.outstanding + k;
        (k, t.outstanding))
  in
  if k > 0 then Got k else if out > 0 then Pending else Drained

let complete_batch t ~wid ~tasks ~ntasks ~acts ~counts =
  locked t wid Obs.Event.sched_complete (fun inst ->
      let pos = ref 0 in
      for i = 0 to ntasks - 1 do
        let c = Array.unsafe_get counts i in
        for j = !pos to !pos + c - 1 do
          inst.Intf.on_activated (Array.unsafe_get acts j)
        done;
        pos := !pos + c;
        inst.Intf.on_completed (Array.unsafe_get tasks i)
      done;
      (* counter updates batched: [completed] must only rise after the
         corresponding activations were delivered (the termination
         invariant), which holds a fortiori when the whole batch lands
         before the single bump *)
      t.outstanding <- t.outstanding - ntasks;
      ignore (Prelude.Vatomic.fetch_and_add t.completed ntasks))
