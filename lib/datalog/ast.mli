(** Abstract syntax of Datalog programs.

    Classic Datalog with stratified negation and comparison built-ins:
    {v
    edge("a", "b").
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    far(X, Y)  :- path(X, Y), !edge(X, Y).
    big(X)     :- size(X, N), N >= 10.
    v} *)

type const = Sym of string | Int of int

type agg = Count | Sum | Min | Max

type term =
  | Var of string
  | Const of const
  | Agg of agg * string
      (** aggregate over a body variable; legal only in rule heads —
          [total(X, sum(C)) :- line(X, I), cost(I, C).] groups body
          matches by the plain head variables and folds the aggregate
          over the {e distinct} (group, aggregated-variable) bindings *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom  (** stratified negation *)
  | Cmp of cmp * term * term  (** built-in; both terms must be bound *)

type rule = { head : atom; body : literal list }
(** A rule with an empty body whose head is ground is a fact. *)

type program = rule list

val compare_const : const -> const -> int
(** Total order: integers numerically, then symbols lexicographically. *)

val atom_is_ground : atom -> bool

val rule_is_fact : rule -> bool

val term_var : term -> string option
(** The variable a term binds or mentions: [Var v] and [Agg (_, v)]
    yield [v], constants [None]. *)

val vars_of_atom : atom -> string list
(** Distinct variables, in order of first occurrence; aggregate-bound
    variables included. *)

val rule_is_aggregate : rule -> bool
(** The head mentions at least one aggregate term. *)

val range_restricted : rule -> bool
(** Every head variable (aggregated or not) and every variable under
    negation or comparison appears in some positive body atom (facts:
    head must be ground). Aggregate terms may only appear in heads. *)

val pp_agg : Format.formatter -> agg -> unit

val pp_const : Format.formatter -> const -> unit

val pp_term : Format.formatter -> term -> unit

val pp_atom : Format.formatter -> atom -> unit

val pp_literal : Format.formatter -> literal -> unit

val pp_rule : Format.formatter -> rule -> unit

val pp_program : Format.formatter -> program -> unit
