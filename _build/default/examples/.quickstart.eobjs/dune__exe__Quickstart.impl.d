examples/quickstart.ml: Array Dag Format Incr_sched List Prelude String Workload
