(* Model-checking scenarios for the lock-free executor.

   Each scenario is a 2–3 process program over {!Prelude.Vatomic}
   state, small enough for exhaustive bounded exploration yet shaped
   exactly like one of the executor's synchronization protocols:

   - [lifecycle]: the CAS task state machine of Executor.run —
     activation raced by two completing parents, scheduler-gated claim,
     run-once invariant;
   - [steal_vs_pop]: the *real* {!Parallel.Wbuf} code — an owner
     pushing and popping batches while a thief probes and steals; the
     happens-before checker verifies the ring's spinlock discipline,
     the final check that no task is lost or duplicated;
   - [park_wake]: the eventcount parking protocol (events/parked pair,
     mutex-protected registration, persistent wake token standing in
     for the condition variable, as in Executor.run's [park]/[wake]);
   - [protected_batch]: Sched.Protected.complete_batch's termination
     counters — activations delivered before the [completed] bump, and
     the executor's read-completed-first termination test;
   - [comp_ownership]: the component-ownership protocol of
     Incremental.apply_parallel — plain relation writes confined to
     the owning task, downstream reads gated on the scheduler's
     release rather than on mere activation;
   - [shard_ownership]: the (component, shard) buffer-ownership rule
     of the sharded phase rounds — each shard job stages only into its
     private buffer, the coordinator merges behind the crew barrier.

   Every safe scenario has a deliberately broken sibling ([Buggy])
   whose counterexample the checker must find; those schedules are
   pinned as regression tests in test/test_analysis.ml. Mutexes and
   condition variables cannot be used under the checker (they would
   block the whole domain), so the scenarios model them with the same
   primitives the real code's comments argue about: a CAS spinlock for
   the mutex, a persistent token for the condvar. *)

module V = Prelude.Vatomic

(* CAS spinlock standing in for Mutex: the failed-CAS respin is
   recognized by the checker's futility rule, so waiting is explored
   as blocking, not as unbounded spinning. *)
let lock m =
  while not (V.compare_and_set m 0 1) do
    ()
  done

let unlock m = V.set m 0

type expectation = Safe | Buggy

(* ---- 1. task lifecycle: activate race + gated claim ------------- *)

let inactive = 0

let active = 1

let running = 2

let done_ = 3

let lifecycle ~atomic_activate =
  {
    Mc.name = (if atomic_activate then "lifecycle" else "lifecycle-buggy-activate");
    nprocs = 2;
    instantiate =
      (fun () ->
        (* tasks 0 and 1 are parents already running; task 2 is their
           shared child, reachable over changed edges from both *)
        let status = V.Int_array.make 3 in
        V.Int_array.set status 0 running;
        V.Int_array.set status 1 running;
        let activations = V.make 0 in
        let runs = V.make 0 in
        let flushed = V.make 0 in
        let body p =
          (* complete own parent: final-state publication *)
          V.Int_array.set status p done_;
          (* Executor.run's try_activate, verbatim protocol *)
          let rec try_activate () =
            match V.Int_array.get status 2 with
            | s when s = inactive ->
              if atomic_activate then begin
                if V.Int_array.cas status 2 inactive active then V.incr activations
                else try_activate ()
              end
              else begin
                (* broken: read-check-then-write lets both parents win *)
                V.Int_array.set status 2 active;
                V.incr activations
              end
            | s when s = active -> ()
            | s -> failwith (Printf.sprintf "task 2 activated after it ran (status %d)" s)
          in
          try_activate ();
          (* flush own completion; the scheduler releases the child
             only once both parents' completions are flushed *)
          ignore (V.fetch_and_add flushed 1);
          if V.get flushed = 2 then
            if V.Int_array.cas status 2 active running then begin
              V.incr runs;
              V.Int_array.set status 2 done_
            end
        in
        let finish () =
          assert (V.get activations = 1);
          assert (V.get runs = 1);
          assert (V.Int_array.get status 2 = done_)
        in
        (body, finish));
  }

(* ---- 2. steal vs. local pop on the real Wbuf -------------------- *)

let steal_vs_pop =
  {
    Mc.name = "steal-vs-pop";
    nprocs = 2;
    instantiate =
      (fun () ->
        let buf = Parallel.Wbuf.create 4 in
        let tasks = [| 10; 11; 12; 13 |] in
        (* per-process result lists: each process writes only its own
           slot, so a plain array is race-free by construction *)
        let got = [| []; [] |] in
        let body p =
          if p = 0 then begin
            let pushed = Parallel.Wbuf.push_batch buf tasks 0 4 in
            assert (pushed = 4);
            let tmp = Array.make 2 0 in
            let rec drain () =
              let k = Parallel.Wbuf.pop_batch buf tmp 2 in
              if k > 0 then begin
                for i = 0 to k - 1 do
                  got.(0) <- tmp.(i) :: got.(0)
                done;
                drain ()
              end
            in
            drain ()
          end
          else begin
            (* the executor's thief: racy occupancy probe, then steal *)
            if Parallel.Wbuf.length buf > 0 then begin
              let scratch = Array.make (Parallel.Wbuf.capacity buf) 0 in
              let n = Parallel.Wbuf.steal_into buf scratch in
              for i = 0 to n - 1 do
                got.(1) <- scratch.(i) :: got.(1)
              done
            end
          end
        in
        let finish () =
          let all = List.sort compare (got.(0) @ got.(1)) in
          (* every pushed task obtained exactly once: no loss, no dup *)
          assert (all = [ 10; 11; 12; 13 ])
        in
        (body, finish));
  }

(* ---- 3. eventcount park vs. wake -------------------------------- *)

let park_wake ~recheck =
  {
    Mc.name = (if recheck then "park-wake" else "park-wake-buggy-lost-wakeup");
    nprocs = 2;
    instantiate =
      (fun () ->
        let events = V.make 0 in
        let parked = V.make 0 in
        let pmutex = V.make 0 in
        (* persistent token in place of the condition variable: a
           signal sent before the sleeper arrives is not lost *)
        let token = V.make 0 in
        let work = V.make 0 in
        let got = V.make 0 in
        let try_take () = V.compare_and_set work 1 0 in
        let producer () =
          V.set work 1;
          (* publish the event BEFORE reading [parked]: the SC
             store-buffering argument from Executor.run *)
          V.incr events;
          lock pmutex;
          if V.get parked > 0 then V.set token 1;
          unlock pmutex
        in
        let worker () =
          if try_take () then V.incr got
          else begin
            (* snapshot the eventcount before the final search *)
            let e = V.get events in
            if try_take () then V.incr got
            else begin
              lock pmutex;
              V.incr parked;
              if (not recheck) || V.get events = e then begin
                (* sleep: release the mutex, block on the token *)
                unlock pmutex;
                while not (V.compare_and_set token 1 0) do
                  ()
                done;
                lock pmutex
              end;
              V.decr parked;
              unlock pmutex;
              (* woken (or the park was skipped): work must be there *)
              assert (try_take ());
              V.incr got
            end
          end
        in
        let body p = if p = 0 then producer () else worker () in
        let finish () =
          assert (V.get got = 1);
          assert (V.get work = 0)
        in
        (body, finish));
  }

(* ---- 4. Protected batching: termination counters ---------------- *)

let protected_batch ~deliver_first =
  {
    Mc.name =
      (if deliver_first then "protected-batch" else "protected-batch-buggy-early-bump");
    nprocs = 2;
    instantiate =
      (fun () ->
        (* one root task (pre-activated) whose completion activates one
           child; a worker-side observer runs the executor's
           termination test concurrently, without the lock *)
        let m = V.make 0 in
        let activated = V.make 1 in
        let completed = V.make 0 in
        let all_done = V.make 0 in
        let completer () =
          (* complete_batch for the root: deliver the activation, then
             bump completed — or the broken order *)
          lock m;
          if deliver_first then begin
            V.incr activated;
            V.incr completed
          end
          else begin
            V.incr completed;
            V.incr activated
          end;
          unlock m;
          (* complete_batch for the child: publish all-done before the
             final bump so termination implies it *)
          lock m;
          V.set all_done 1;
          V.incr completed;
          unlock m
        in
        let observer () =
          for _ = 1 to 2 do
            (* Executor.terminated: read completed FIRST — activated
               can only have grown since *)
            let c = V.get completed in
            let a = V.get activated in
            assert (c <= a);
            if c = a then assert (V.get all_done = 1)
          done
        in
        let body p = if p = 0 then completer () else observer () in
        let finish () = assert (V.get completed = 2 && V.get activated = 2) in
        (body, finish));
  }

(* ---- 5. race detector demo -------------------------------------- *)

let plain_race ~locked =
  {
    Mc.name = (if locked then "plain-locked" else "plain-race-buggy");
    nprocs = 2;
    instantiate =
      (fun () ->
        let m = V.make 0 in
        let cell = V.Plain.make 0 in
        let body p =
          if locked then begin
            lock m;
            V.Plain.set cell (V.Plain.get cell + (p + 1));
            unlock m
          end
          else V.Plain.set cell (V.Plain.get cell + (p + 1))
        in
        let finish () = assert (V.Plain.get cell > 0) in
        (body, finish));
  }

(* ---- 6. parallel maintenance: component ownership --------------- *)

(* The protocol behind Incremental.apply_parallel: each DRed task
   mutates only its own component's relations (plain, unsynchronized
   writes) and reads upstream relations only after the scheduler has
   released it — i.e. after every upstream task's completion has been
   flushed through the Protected lock, which is the happens-before
   edge. Modeled with two components: upstream (process 0) writes its
   relation [up] and then publishes completion; downstream (process 1)
   blocks on the release gate, reads [up] and writes its own relation
   [down]. The buggy sibling starts the downstream task on the early
   "activated" signal — delivered as soon as the first changed input
   arrives, before the upstream is quiescent — and mutates [up]
   directly (the ownership violation). The vector-clock checker must
   flag the unordered conflicting plain accesses as a race. *)
let comp_ownership ~gated =
  {
    Mc.name = (if gated then "comp-ownership" else "comp-ownership-buggy-eager");
    nprocs = 2;
    instantiate =
      (fun () ->
        (* relations are plain cells: the real code's tuple tables are
           unsynchronized too, that is the point of the ownership rule *)
        let up = V.Plain.make 0 in
        let down = V.Plain.make 0 in
        let activated = V.make 0 in
        let released = V.make 0 in
        let upstream () =
          V.Plain.set up 1;
          (* activation travels as soon as a changed input exists,
             strictly before the component is done writing *)
          V.set activated 1;
          V.Plain.set up 2;
          (* completion flush: the scheduler releases dependents only
             after this (Protected.complete under the lock) *)
          V.set released 1
        in
        let downstream () =
          if gated then begin
            (* wait for the release, the executor's claim CAS *)
            while not (V.compare_and_set released 1 2) do
              ()
            done;
            V.Plain.set down (V.Plain.get up + 10)
          end
          else begin
            (* broken: run on mere activation and write the upstream
               relation while its owner may still be writing *)
            while not (V.compare_and_set activated 1 2) do
              ()
            done;
            V.Plain.set up (V.Plain.get up + 10)
          end
        in
        let body p = if p = 0 then upstream () else downstream () in
        let finish () =
          if gated then begin
            (* the downstream read saw the fully-written upstream *)
            assert (V.Plain.get up = 2);
            assert (V.Plain.get down = 12)
          end
          else assert (V.Plain.get up > 0)
        in
        (body, finish));
  }

(* ---- 7. intra-component sharding: buffer ownership -------------- *)

(* The (component, shard) ownership rule behind the sharded phase
   rounds of Incremental.process_comp: during a fan-out, shard job [s]
   writes only its own candidate buffer (a plain, unsynchronized
   store), and the coordinator reads every buffer only behind the
   crew's completion barrier — Shard_crew's mutex handoff, modeled
   here as the worker's atomic done-flag that the coordinator
   CAS-claims. Process 0 is the coordinator running shard 0 into
   [buf0]; process 1 is the crew worker running shard 1 into [buf1].
   The buggy sibling has the worker also stage into the coordinator's
   buffer — the cross-shard write the ownership rule forbids — which
   races the coordinator's own plain write to [buf0]: the vector-clock
   checker must flag it. *)
let shard_ownership ~confined =
  {
    Mc.name =
      (if confined then "shard-ownership" else "shard-ownership-buggy-cross-write");
    nprocs = 2;
    instantiate =
      (fun () ->
        (* candidate buffers are plain cells, like the per-shard
           tuple buffers in the real fan-out *)
        let buf0 = V.Plain.make 0 in
        let buf1 = V.Plain.make 0 in
        let done1 = V.make 0 in
        let merged = V.Plain.make 0 in
        let coordinator () =
          (* shard 0 runs on the calling thread *)
          V.Plain.set buf0 5;
          (* crew barrier: claim the worker's completion *)
          while not (V.compare_and_set done1 1 2) do
            ()
          done;
          (* deterministic merge, shard order 0 then 1 *)
          V.Plain.set merged (V.Plain.get buf0 + V.Plain.get buf1)
        in
        let worker () =
          if confined then V.Plain.set buf1 7
          else begin
            (* broken: stage into shard 0's buffer while its owner may
               still be writing it *)
            V.Plain.set buf0 (V.Plain.get buf0 + 7);
            V.Plain.set buf1 0
          end;
          (* completion publish: the release half of the barrier *)
          V.set done1 1
        in
        let body p = if p = 0 then coordinator () else worker () in
        let finish () =
          if confined then assert (V.Plain.get merged = 12)
          else assert (V.Plain.get merged >= 0)
        in
        (body, finish));
  }

(* ---- 8. observability: ring publish/consume --------------------- *)

(* Obs.Ring's single-writer protocol: the owning worker writes a
   record's slots (plain stores into the flat arrays) and only then
   bumps the published cursor through Vatomic; a consumer loads the
   cursor first and touches only slots the cursor covers, so every
   record it reads is fully written — the cursor is the happens-before
   edge. The buggy sibling bumps the cursor before writing the slot:
   the consumer can then read a record the writer is still filling in,
   and the two plain slot accesses are unordered — a race the
   vector-clock checker must flag. *)
let ring_publish ~publish_after =
  {
    Mc.name =
      (if publish_after then "ring-publish" else "ring-publish-buggy-early-cursor");
    nprocs = 2;
    instantiate =
      (fun () ->
        let slot = V.Plain.make 0 in
        let published = V.make 0 in
        let seen = V.Plain.make (-1) in
        let writer () =
          if publish_after then begin
            V.Plain.set slot 42;
            V.set published 1
          end
          else begin
            (* broken: cursor visible while the slot is still blank *)
            V.set published 1;
            V.Plain.set slot 42
          end
        in
        let consumer () =
          if V.get published = 1 then V.Plain.set seen (V.Plain.get slot)
        in
        let body p = if p = 0 then writer () else consumer () in
        let finish () =
          (* a consumed record is a whole record; -1 = cursor not yet
             visible, nothing consumed, also fine *)
          if publish_after then assert (V.Plain.get seen = -1 || V.Plain.get seen = 42)
        in
        (body, finish));
  }

let safe =
  [
    lifecycle ~atomic_activate:true;
    steal_vs_pop;
    park_wake ~recheck:true;
    protected_batch ~deliver_first:true;
    plain_race ~locked:true;
    comp_ownership ~gated:true;
    shard_ownership ~confined:true;
    ring_publish ~publish_after:true;
  ]

let buggy =
  [
    lifecycle ~atomic_activate:false;
    park_wake ~recheck:false;
    protected_batch ~deliver_first:false;
    plain_race ~locked:false;
    comp_ownership ~gated:false;
    shard_ownership ~confined:false;
    ring_publish ~publish_after:false;
  ]

let all =
  List.map (fun s -> (s, Safe)) safe @ List.map (fun s -> (s, Buggy)) buggy

let find name =
  match List.find_opt (fun (s, _) -> s.Mc.name = name) all with
  | Some (s, _) -> s
  | None -> invalid_arg ("Scenarios.find: unknown scenario " ^ name)
