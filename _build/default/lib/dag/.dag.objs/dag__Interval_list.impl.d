lib/dag/interval_list.ml: Array Graph Prelude Sys Topo
