(* Measured makespan breakdown from a trace: where each worker's
   wall-clock went (busy / scheduler / steal / park / idle), plus DRed
   phase totals and a critical-path utilization figure. Works on
   normalized events so the same pass serves both live rings
   ([of_trace]) and a re-parsed Chrome file ([dms trace]). *)

type event = { wid : int; kind : Event.kind; t0_ns : int; t1_ns : int; arg : int }

type worker = {
  wid : int;
  busy_s : float;
  sched_s : float;
  steal_s : float;
  park_s : float;
  idle_s : float;
  tasks : int;
  steal_attempts : int;
  stolen : int;
  wakes : int;
  events : int;
  dropped : int;
}

type t = {
  workers : worker array;
  makespan_s : float;
  busy_s : float;
  sched_s : float;
  steal_s : float;
  park_s : float;
  idle_s : float;
  utilization : float;
  dred_delete_s : float;
  dred_rederive_s : float;
  dred_insert_s : float;
  cnt_propagate_s : float;
  cnt_backward_s : float;
  cnt_forward_s : float;
  cnt_o1_hits : int;
  cnt_full_probes : int;
  srv_commit_s : float;
  srv_epoch_s : float;
  srv_commits : int;
  srv_epochs : int;
  srv_admitted : int;
  events : int;
  dropped : int;
}

let seconds ns = float_of_int ns /. 1e9

let of_events ~domains ?dropped events =
  let domains = max 1 domains in
  let busy = Array.make domains 0 in
  let sched = Array.make domains 0 in
  let steal = Array.make domains 0 in
  let park = Array.make domains 0 in
  let dred = Array.make domains 0 in
  let tasks = Array.make domains 0 in
  let attempts = Array.make domains 0 in
  let stolen = Array.make domains 0 in
  let wakes = Array.make domains 0 in
  let nevents = Array.make domains 0 in
  let dd = ref 0 and dr = ref 0 and di = ref 0 in
  let cp = ref 0 and cb = ref 0 and cf = ref 0 in
  let co1 = ref 0 and cpr = ref 0 in
  let sc = ref 0 and se = ref 0 in
  let ncommits = ref 0 and nepochs = ref 0 and nadmitted = ref 0 in
  let lo = ref max_int and hi = ref min_int in
  List.iter
    (fun (e : event) ->
      if e.wid >= 0 && e.wid < domains then begin
        let w = e.wid in
        nevents.(w) <- nevents.(w) + 1;
        if e.t0_ns < !lo then lo := e.t0_ns;
        if e.t1_ns > !hi then hi := e.t1_ns;
        let d = e.t1_ns - e.t0_ns in
        if e.kind = Event.task then begin
          busy.(w) <- busy.(w) + d;
          tasks.(w) <- tasks.(w) + 1
        end
        else if e.kind = Event.steal then begin
          steal.(w) <- steal.(w) + d;
          attempts.(w) <- attempts.(w) + 1;
          stolen.(w) <- stolen.(w) + e.arg
        end
        else if e.kind = Event.park then park.(w) <- park.(w) + d
        else if e.kind = Event.wake then wakes.(w) <- wakes.(w) + e.arg
        else if e.kind = Event.cnt_o1_hit then co1 := !co1 + e.arg
        else if e.kind = Event.cnt_full_probe then cpr := !cpr + e.arg
        else if e.kind = Event.srv_admit then nadmitted := !nadmitted + e.arg
        else if e.kind = Event.srv_commit then begin
          (* commit spans contain the maintenance phases, which do
             their own busy accounting — count the span only here *)
          sc := !sc + d;
          incr ncommits
        end
        else if e.kind = Event.srv_epoch then begin
          se := !se + d;
          incr nepochs
        end
        else if Event.is_sched e.kind then sched.(w) <- sched.(w) + d
        else if Event.is_dred e.kind then begin
          dred.(w) <- dred.(w) + d;
          if e.kind = Event.dred_delete then dd := !dd + d
          else if e.kind = Event.dred_rederive then dr := !dr + d
          else di := !di + d
        end
        else if Event.is_cnt e.kind then begin
          (* counting phases share the maintenance accumulator: on the
             serial path (no executor tasks) they are the busy time *)
          dred.(w) <- dred.(w) + d;
          if e.kind = Event.cnt_propagate then cp := !cp + d
          else if e.kind = Event.cnt_backward then cb := !cb + d
          else cf := !cf + d
        end
      end)
    events;
  let makespan_ns = if !hi > !lo then !hi - !lo else 0 in
  let makespan_s = seconds makespan_ns in
  let workers =
    Array.init domains (fun w ->
        (* a worker that ran no executor tasks but recorded DRed
           phases (the serial maintenance path) counts those as its
           busy time — they are nested inside tasks otherwise *)
        let busy_ns = if tasks.(w) > 0 then busy.(w) else dred.(w) in
        let accounted = busy_ns + sched.(w) + steal.(w) + park.(w) in
        {
          wid = w;
          busy_s = seconds busy_ns;
          sched_s = seconds sched.(w);
          steal_s = seconds steal.(w);
          park_s = seconds park.(w);
          idle_s = seconds (max 0 (makespan_ns - accounted));
          tasks = tasks.(w);
          steal_attempts = attempts.(w);
          stolen = stolen.(w);
          wakes = wakes.(w);
          events = nevents.(w);
          dropped = (match dropped with Some a when w < Array.length a -> a.(w) | _ -> 0);
        })
  in
  let sum f = Array.fold_left (fun acc w -> acc +. f w) 0.0 workers in
  let busy_s = sum (fun w -> w.busy_s) in
  {
    workers;
    makespan_s;
    busy_s;
    sched_s = sum (fun w -> w.sched_s);
    steal_s = sum (fun w -> w.steal_s);
    park_s = sum (fun w -> w.park_s);
    idle_s = sum (fun w -> w.idle_s);
    utilization =
      (if makespan_s > 0.0 then busy_s /. (float_of_int domains *. makespan_s) else 0.0);
    dred_delete_s = seconds !dd;
    dred_rederive_s = seconds !dr;
    dred_insert_s = seconds !di;
    cnt_propagate_s = seconds !cp;
    cnt_backward_s = seconds !cb;
    cnt_forward_s = seconds !cf;
    cnt_o1_hits = !co1;
    cnt_full_probes = !cpr;
    srv_commit_s = seconds !sc;
    srv_epoch_s = seconds !se;
    srv_commits = !ncommits;
    srv_epochs = !nepochs;
    srv_admitted = !nadmitted;
    events = Array.fold_left ( + ) 0 nevents;
    dropped =
      (match dropped with Some a -> Array.fold_left ( + ) 0 a | None -> 0);
  }

let of_trace tr =
  let n = Trace.domains tr in
  let events = ref [] in
  let dropped = Array.make (max 1 n) 0 in
  for w = 0 to n - 1 do
    let r = Trace.ring tr w in
    dropped.(w) <- Ring.dropped r;
    Ring.iter r (fun ~kind ~t_ns ~a ~b ->
        let t0_ns =
          if Event.is_instant kind then t_ns else Event.span_start_ns kind ~a ~b
        in
        events := { wid = w; kind; t0_ns; t1_ns = t_ns; arg = a } :: !events)
  done;
  of_events ~domains:n ~dropped !events

let sched_overhead_s (t : t) = t.sched_s

let pp ppf t =
  let n = Array.length t.workers in
  Format.fprintf ppf "makespan %.6f s over %d worker%s, utilization %.1f%%@,"
    t.makespan_s n
    (if n = 1 then "" else "s")
    (100.0 *. t.utilization);
  Format.fprintf ppf
    "totals: busy %.6f s, scheduler %.6f s (lock wait + hold), steal %.6f s, park \
     %.6f s, idle %.6f s@,"
    t.busy_s t.sched_s t.steal_s t.park_s t.idle_s;
  if t.dred_delete_s +. t.dred_rederive_s +. t.dred_insert_s > 0.0 then
    Format.fprintf ppf "DRed phases: delete %.6f s, rederive %.6f s, insert %.6f s@,"
      t.dred_delete_s t.dred_rederive_s t.dred_insert_s;
  if t.cnt_propagate_s +. t.cnt_backward_s +. t.cnt_forward_s > 0.0 then
    Format.fprintf ppf
      "Counting phases: propagate %.6f s, backward %.6f s, forward %.6f s@,"
      t.cnt_propagate_s t.cnt_backward_s t.cnt_forward_s;
  if t.cnt_o1_hits + t.cnt_full_probes > 0 then
    Format.fprintf ppf
      "Counting suspects: %d proven O(1) by the level index, %d full probes@,"
      t.cnt_o1_hits t.cnt_full_probes;
  if t.srv_commits + t.srv_epochs + t.srv_admitted > 0 then
    Format.fprintf ppf
      "Server: %d commit%s totaling %.6f s, %d closed epoch%s totaling %.6f s, \
       %d ops admitted@,"
      t.srv_commits
      (if t.srv_commits = 1 then "" else "s")
      t.srv_commit_s t.srv_epochs
      (if t.srv_epochs = 1 then "" else "s")
      t.srv_epoch_s t.srv_admitted;
  Format.fprintf ppf "%4s %10s %10s %10s %10s %10s %6s %6s %7s@," "wid" "busy" "sched"
    "steal" "park" "idle" "tasks" "stolen" "events";
  Array.iter
    (fun (w : worker) ->
      Format.fprintf ppf "%4d %10.6f %10.6f %10.6f %10.6f %10.6f %6d %6d %7d%s@,"
        w.wid w.busy_s w.sched_s w.steal_s w.park_s w.idle_s w.tasks w.stolen w.events
        (if w.dropped > 0 then Printf.sprintf " (dropped %d)" w.dropped else ""))
    t.workers;
  if t.dropped > 0 then
    Format.fprintf ppf "WARNING: %d event%s dropped to ring wraparound@," t.dropped
      (if t.dropped = 1 then "" else "s")

let json t =
  let buf = Buffer.create 1024 in
  let fld name v = Printf.bprintf buf "\"%s\": %.9f, " name v in
  Buffer.add_string buf "{ ";
  fld "makespan_s" t.makespan_s;
  fld "utilization" t.utilization;
  fld "busy_s" t.busy_s;
  fld "sched_s" t.sched_s;
  fld "steal_s" t.steal_s;
  fld "park_s" t.park_s;
  fld "idle_s" t.idle_s;
  Printf.bprintf buf
    "\"dred\": { \"delete_s\": %.9f, \"rederive_s\": %.9f, \"insert_s\": %.9f }, "
    t.dred_delete_s t.dred_rederive_s t.dred_insert_s;
  Printf.bprintf buf
    "\"cnt\": { \"propagate_s\": %.9f, \"backward_s\": %.9f, \"forward_s\": %.9f, \
     \"o1_hits\": %d, \"full_probes\": %d }, "
    t.cnt_propagate_s t.cnt_backward_s t.cnt_forward_s t.cnt_o1_hits t.cnt_full_probes;
  Printf.bprintf buf
    "\"srv\": { \"commit_s\": %.9f, \"epoch_s\": %.9f, \"commits\": %d, \
     \"epochs\": %d, \"admitted\": %d }, "
    t.srv_commit_s t.srv_epoch_s t.srv_commits t.srv_epochs t.srv_admitted;
  Printf.bprintf buf "\"events\": %d, \"dropped\": %d, \"workers\": [ " t.events
    t.dropped;
  Array.iteri
    (fun i (w : worker) ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf
        "{ \"wid\": %d, \"busy_s\": %.9f, \"sched_s\": %.9f, \"steal_s\": %.9f, \
         \"park_s\": %.9f, \"idle_s\": %.9f, \"tasks\": %d, \"steal_attempts\": %d, \
         \"stolen\": %d, \"wakes\": %d, \"events\": %d, \"dropped\": %d }"
        w.wid w.busy_s w.sched_s w.steal_s w.park_s w.idle_s w.tasks w.steal_attempts
        w.stolen w.wakes w.events w.dropped)
    t.workers;
  Buffer.add_string buf " ] }";
  Buffer.contents buf
