lib/dag/dot.mli: Format Graph
