let parse_k prefix name =
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

let find name =
  match String.lowercase_ascii name with
  | "levelbased" | "lb" -> Some Level_based.factory
  | "logicblox" -> Some Logicblox.factory
  | "signal" -> Some Signal.factory
  | "hybrid" -> Some Hybrid.factory
  | lname -> (
    match parse_k "lbl:" lname with
    | Some k when k >= 1 -> Some (Lookahead.factory ~k)
    | Some _ | None -> (
      match parse_k "lookahead:" lname with
      | Some k when k >= 1 -> Some (Lookahead.factory ~k)
      | Some _ | None -> (
        match parse_k "hybrid:" lname with
        | Some scan_batch when scan_batch >= 1 -> Some (Hybrid.factory_batched ~scan_batch)
        | Some _ | None -> None)))

let find_exn name =
  match find name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "unknown scheduler %S" name)

let names = [ "levelbased"; "lbl:5"; "lbl:10"; "lbl:15"; "lbl:20"; "logicblox"; "signal"; "hybrid" ]
