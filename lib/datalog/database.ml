type t = { symbols : Symbol.t; relations : (string, Relation.t) Hashtbl.t }

let create () = { symbols = Symbol.create (); relations = Hashtbl.create 32 }

let symbols t = t.symbols

let relation t name ~arity =
  match Hashtbl.find_opt t.relations name with
  | Some r ->
    if Relation.arity r <> arity then
      invalid_arg
        (Printf.sprintf "Database: predicate %s used with arity %d, declared %d" name
           arity (Relation.arity r));
    r
  | None ->
    let r = Relation.create ~arity in
    Hashtbl.add t.relations name r;
    r

let find t name = Hashtbl.find_opt t.relations name

let predicates t =
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) t.relations []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let intern_code t pred = function
  | Ast.Const c -> Symbol.intern t.symbols c
  | Ast.Var v ->
    invalid_arg (Printf.sprintf "Database: atom %s has variable %s" pred v)
  | Ast.Agg _ ->
    invalid_arg (Printf.sprintf "Database: atom %s has an aggregate term" pred)

(* Called once per fact on every insert/retract, including the bulk
   update batches of {!Incremental}: build the tuple array directly
   instead of a List.map-then-Array.of_list pair, with arity fast paths
   for the unary/binary facts that dominate real programs. *)
let intern_atom t (a : Ast.atom) =
  let tup =
    match a.args with
    | [] -> [||]
    | [ t1 ] -> [| intern_code t a.pred t1 |]
    | [ t1; t2 ] ->
      let c1 = intern_code t a.pred t1 in
      [| c1; intern_code t a.pred t2 |]
    | args ->
      let n = List.length args in
      let tup = Array.make n 0 in
      List.iteri (fun i arg -> tup.(i) <- intern_code t a.pred arg) args;
      tup
  in
  ignore (relation t a.pred ~arity:(Array.length tup));
  tup

let add_fact t a =
  let tup = intern_atom t a in
  Relation.add (relation t a.Ast.pred ~arity:(Array.length tup)) tup

let remove_fact t a =
  let tup = intern_atom t a in
  Relation.remove (relation t a.Ast.pred ~arity:(Array.length tup)) tup

let mem_fact t a =
  let tup = intern_atom t a in
  Relation.mem (relation t a.Ast.pred ~arity:(Array.length tup)) tup

let tuple_to_atom t name tup =
  {
    Ast.pred = name;
    args = Array.to_list (Array.map (fun c -> Ast.Const (Symbol.const_of t.symbols c)) tup);
  }

let copy t =
  let fresh = { symbols = t.symbols; relations = Hashtbl.create 32 } in
  Hashtbl.iter (fun name r -> Hashtbl.add fresh.relations name (Relation.copy r)) t.relations;
  fresh

let total_tuples t =
  Hashtbl.fold (fun _ r acc -> acc + Relation.cardinality r) t.relations 0

let pp ppf t =
  List.iter
    (fun (name, r) ->
      let atoms =
        List.map (tuple_to_atom t name) (Relation.to_list r)
        |> List.sort compare
      in
      List.iter (fun a -> Format.fprintf ppf "%a.@." Ast.pp_atom a) atoms)
    (predicates t)
