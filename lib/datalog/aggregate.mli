(** Stratified aggregation: [cnt], [sum], [min], [max] in rule heads.

    An aggregate rule
    {[ total(X, sum(C)) :- line(X, I), cost(I, C). ]}
    groups the body's variable bindings by the plain head variables and
    folds each aggregate over the {e distinct} projections onto
    (group variables, aggregated variables) — set semantics, so
    duplicate derivations of the same binding do not double count.

    Aggregation is non-monotone, so these rules stratify like negation:
    every body predicate must sit in a strictly lower stratum
    ({!Stratify} enforces this by treating their dependencies as
    negative), and an aggregated predicate must be defined by exactly
    that one rule ({!validate}). Incremental maintenance recomputes an
    aggregate component outright when any input changed and diffs the
    output — aggregates are functional, so the diff is exact. *)

val validate : Ast.program -> unit
(** Every aggregate head predicate is defined by exactly one rule and
    no facts. @raise Invalid_argument otherwise. *)

val evaluate :
  engine:Plan.engine ->
  symbols:Symbol.t ->
  view:Matcher.view ->
  card:(string -> int) ->
  work:int ref ->
  Ast.rule ->
  Relation.tuple list
(** Full output of one aggregate rule against the given view. Distinct
    tuples, unspecified order. The body is enumerated through
    {!Plan.executor} — as a compiled plan or via the interpretive
    oracle, per [engine] — with [card] feeding the join-order
    heuristic.
    @raise Invalid_argument if [sum] meets a non-integer value. *)
