(** Bounded exponential backoff for lock-free retry loops.

    A worker that repeatedly fails to find work spins with
    exponentially growing pauses ([Domain.cpu_relax], 1, 2, 4, ...,
    [2^limit] relaxations) before escalating to a real park on a
    condition variable. This keeps short idle gaps off the futex path
    while bounding the busy-wait burned on long ones. *)

type t

val create : ?limit:int -> unit -> t
(** [create ~limit ()] caps the pause at [2^limit] relaxations
    (default [limit = 10], i.e. 1024). *)

val once : t -> unit
(** Pause for the current step and double the next step (saturating). *)

val is_exhausted : t -> bool
(** [true] once the cap has been reached: time to park properly. *)

val reset : t -> unit
(** Call after successfully finding work. *)
