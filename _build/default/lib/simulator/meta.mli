(** The meta-scheduler A' of Theorem 10 / Corollary 11.

    Given any scheduler [A] and a memory budget, A' dedicates half the
    processors to [A] and half to LevelBased, run independently (tasks
    may execute twice); it finishes when either finishes, so its
    makespan is at most 2 min(T_A, T_LB) relative to full-width runs.
    If [A]'s footprint exceeds half the budget, [A] is dropped and
    LevelBased gets every processor.

    Here the two halves are two independent simulations; the reported
    makespan is the earlier finisher's, and the memory check uses the
    scheduler's post-precomputation footprint (interval lists dominate
    the LogicBlox scheduler's usage, so the check at that point is the
    binding one). *)

type result = {
  winner : string;  (** name of the sub-scheduler that finished first *)
  a_aborted : bool;  (** [A] exceeded its half of the memory budget *)
  makespan : float;
  a_metrics : Metrics.t option;  (** absent when aborted *)
  lb_metrics : Metrics.t;
  memory_words : int;  (** combined footprint actually used *)
  budget_words : int;
}

val run :
  ?config:Engine.config ->
  budget_words:int ->
  a:Sched.Intf.factory ->
  Workload.Trace.t ->
  result

val pp_result : Format.formatter -> result -> unit
