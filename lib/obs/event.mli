(** Trace event kinds.

    Events are flat int records [(kind, t_ns, a, b)]; every span is a
    single record carrying its own start stamp in [b] (and, for
    scheduler sections, the lock wait in [a]), so recording never
    needs a matching begin/end pass and the ring can drop oldest
    records without orphaning half a span. Timestamps are integer
    nanoseconds since the owning trace's epoch. *)

type kind = int

val task : kind
(** Task execution span: [a] = task id, [b] = start, [t] = finish. *)

val steal : kind
(** Steal attempt span: [a] = tasks obtained (0 = failed attempt),
    [b] = start, [t] = end. *)

val park : kind
(** Blocked-on-eventcount span: [b] = park start, [t] = wake. *)

val wake : kind
(** Instant: this worker asked the eventcount to wake [a] peers. *)

val sched_refill : kind
val sched_complete : kind
val sched_activate : kind
(** Batched scheduler-lock sections ({!Sched.Protected}): [t] =
    release stamp, [b] = acquire stamp, [a] = nanoseconds spent
    waiting for the lock; the full section spans [b - a, t]. *)

val dred_delete : kind
val dred_rederive : kind
val dred_insert : kind
(** DRed maintenance phases per condensation component: [a] =
    component id, [b] = phase start, [t] = phase end. *)

val shard : kind
(** One shard task's slice of a sharded maintenance round: [a] =
    shard id, [b] = start, [t] = end. *)

val cnt_propagate : kind
val cnt_backward : kind
val cnt_forward : kind
(** Counting maintenance phases per condensation component
    ({!Incremental.apply} with [~maint:Counting]): count-delta
    propagation from the external update, backward alternative-
    derivation search, and forward death/birth cascades. Fields as for
    the [dred_*] kinds: [a] = component id, [b] = phase start, [t] =
    phase end. *)

val cnt_o1_hit : kind
val cnt_full_probe : kind
(** Instants: how the counting backward phase disposed of its
    deletion-suspects in one component — [a] = number of suspects
    proven by the O(1) well-founded support index (surviving
    strictly-lower-level supporter, no body re-evaluation), resp.
    number that needed a full goal-directed {!Matcher.eval_body}
    probe; [b] = component id. Emitted once per component that ran a
    backward phase. *)

val srv_admit : kind
(** Instant: the update server admitted a client batch for
    maintenance — [a] = operations admitted, [b] = the epoch the
    batch will produce. *)

val srv_commit : kind
(** Server commit span — one maintenance run between admission and
    snapshot publication: [a] = epoch produced, [b] = commit start,
    [t] = publish. *)

val srv_epoch : kind
(** Server epoch-lifetime span, emitted when the epoch's snapshot is
    superseded: [a] = epoch id, [b] = the stamp its snapshot was
    published, [t] = the stamp the next snapshot replaced it. *)

val count : int
(** Number of kinds; valid kinds are [0 .. count - 1]. *)

val name : kind -> string

val of_name : string -> kind option

val is_instant : kind -> bool

val is_sched : kind -> bool

val is_dred : kind -> bool

val is_cnt : kind -> bool

val is_srv : kind -> bool

val span_start_ns : kind -> a:int -> b:int -> int
(** Start of the full span (for sched sections, including the lock
    wait) in ns since the trace epoch. *)
