(** Calibrated busy-work for realizing simulated task durations.

    [spin s] burns roughly [s] seconds of CPU. The inner loop is
    calibrated (iterations per microsecond, measured once against the
    monotonic clock) so the clock is consulted once per ~2 microsecond
    chunk rather than on every iteration. *)

val calibrate : unit -> unit
(** Measure the inner-loop rate if not yet measured (~5 ms). Call once
    before spawning worker domains; [spin] self-calibrates otherwise,
    which would repeat the measurement in every domain. *)

val spin : float -> unit
