(** Bridge from Datalog maintenance to the scheduling model.

    The paper's computation DAG is the condensed predicate dependency
    graph: one task per mutually-recursive component, dataflow edges
    between components. Applying a base-fact update reveals the active
    graph: a component's task is dirtied exactly when a feeding
    component's output actually changed.

    [of_update] performs the incremental maintenance (via
    {!Incremental.apply}), then packages what the maintenance observed
    into a {!Workload.Trace.t}: initial tasks are the changed base
    components, an edge propagates change iff its source component's
    output changed, and each task's processing time is its measured
    maintenance work scaled by [work_unit]. The resulting trace can be
    fed to every scheduler in the suite, closing the loop from Datalog
    program to Tables II/III-style experiments. *)

type t = {
  trace : Workload.Trace.t;
  report : Incremental.report;
  labels : string array;  (** task node -> predicate names of its component *)
}

val of_update :
  ?work_unit:float ->
  ?engine:Plan.engine ->
  ?maint:Incremental.maint ->
  ?domains:int ->
  ?shards:int ->
  ?sanitize:bool ->
  ?on_warn:(string -> unit) ->
  ?obs:Obs.Trace.t ->
  Database.t ->
  Ast.program ->
  additions:Ast.atom list ->
  deletions:Ast.atom list ->
  t
(** [db] must hold a completed materialization (see {!Eval.run}); it is
    updated in place. [work_unit] converts tuples-examined into seconds
    of simulated processing time (default [1e-6]). [engine] and [maint]
    (default DRed) are passed through to {!Incremental.apply} —
    [~maint:Counting] maintains by derivation counts instead of
    delete-rederive. [domains] (default 1) > 1 or
    [shards] (default 1) > 1 runs the maintenance itself in parallel
    via {!Incremental.apply_parallel} — [shards] splits each
    component's DRed phase rounds into per-shard fan-out tasks; the
    resulting trace is built from that run's report the same way.
    [sanitize] and [on_warn] are passed through — the write-set
    sanitizer and the downgrade/ownership warning sink of
    {!Incremental.apply}. [obs] records the maintenance run's timeline (see
    {!Incremental.apply_parallel}); the [labels] field names its task
    spans when exporting with {!Obs.Export.to_file}. *)

val node_of_pred : t -> string -> int option
(** The task node evaluating the given predicate. *)
