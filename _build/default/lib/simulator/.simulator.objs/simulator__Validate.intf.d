lib/simulator/validate.mli: Engine Workload
