(* Incremental maintenance of a recursive Datalog program, end to end:
   materialize, update base facts, extract the revealed task DAG, and
   compare the paper's schedulers on it.

   The program computes reachability and same-generation over a tree —
   the classic recursive-Datalog benchmarks — plus a stratified-negation
   layer on top.

   Run with: dune exec examples/datalog_incremental.exe *)

let program_text =
  {|
  % --- base data: a binary tree of departments, filled in below ---
  % parent(X, Y): Y is a child department of X.

  ancestor(X, Y) :- parent(X, Y).
  ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).

  % same-generation: classic doubly-recursive benchmark
  sg(X, Y) :- parent(P, X), parent(P, Y), X != Y.
  sg(X, Y) :- parent(PX, X), sg(PX, PY), parent(PY, Y).

  dept(X) :- parent(X, Y).
  dept(Y) :- parent(X, Y).

  % stratified negation: leaves have no children
  leaf(X) :- dept(X), !inner(X).
  inner(X) :- parent(X, Y).
|}

(* Facts for a complete binary tree of the given depth. *)
let tree_facts depth =
  let buf = Buffer.create 1024 in
  let rec go node d =
    if d < depth then begin
      let l = (2 * node) + 1 and r = (2 * node) + 2 in
      Buffer.add_string buf (Printf.sprintf "parent(\"d%d\", \"d%d\").\n" node l);
      Buffer.add_string buf (Printf.sprintf "parent(\"d%d\", \"d%d\").\n" node r);
      go l (d + 1);
      go r (d + 1)
    end
  in
  go 0 0;
  Buffer.contents buf

let () =
  let session = Incr_sched.materialize (program_text ^ tree_facts 7) in
  Format.printf "Materialized: %d tuples across %d predicates@."
    (Datalog.Database.total_tuples session.Incr_sched.db)
    (List.length (Datalog.Database.predicates session.Incr_sched.db));
  (* reorganization: department d1 moves under d2; a new leaf appears *)
  let tt =
    Incr_sched.update session
      ~additions:[ {|parent("d2","d1")|}; {|parent("d125","d300")|} ]
      ~deletions:[ {|parent("d0","d1")|} ]
  in
  Format.printf "@.Update changed:@.";
  List.iter
    (fun (c : Datalog.Incremental.pred_change) ->
      Format.printf "  %-10s +%-6d -%-6d@." c.Datalog.Incremental.pred
        c.Datalog.Incremental.added c.Datalog.Incremental.removed)
    tt.Datalog.To_trace.report.Datalog.Incremental.changes;
  let trace = tt.Datalog.To_trace.trace in
  Format.printf "@.Revealed task DAG: %a@." Workload.Trace.pp_stats
    (Workload.Trace.stats trace);
  Array.iteri
    (fun node label -> Format.printf "  task %d = {%s}@." node label)
    tt.Datalog.To_trace.labels;
  Format.printf "@.Scheduling the maintenance on 4 processors:@.";
  let results =
    Incr_sched.compare ~procs:4
      ~scheds:[ "levelbased"; "logicblox"; "hybrid"; "signal" ]
      trace
  in
  List.iter (fun m -> Format.printf "  %a@." Incr_sched.pp_result_row m) results;
  Format.printf "@.(ancestor facts now: %d; leaves: %d)@."
    (List.length (Incr_sched.query session "ancestor"))
    (List.length (Incr_sched.query session "leaf"))
