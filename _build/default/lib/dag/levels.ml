let compute g =
  let order = Topo.sort_exn g in
  let n = Graph.node_count g in
  let level = Array.make n 0 in
  Array.iter
    (fun u ->
      Graph.iter_succ g u (fun ~dst ~eid:_ ->
          if level.(u) + 1 > level.(dst) then level.(dst) <- level.(u) + 1))
    order;
  level

let compute_by_peeling g =
  let n = Graph.node_count g in
  let indeg = Array.init n (Graph.in_degree g) in
  let level = Array.make n (-1) in
  let frontier = ref [] in
  for u = n - 1 downto 0 do
    if indeg.(u) = 0 then frontier := u :: !frontier
  done;
  let l = ref 0 in
  let removed = ref 0 in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun u ->
        level.(u) <- !l;
        incr removed;
        Graph.iter_succ g u (fun ~dst ~eid:_ ->
            indeg.(dst) <- indeg.(dst) - 1;
            if indeg.(dst) = 0 then next := dst :: !next))
      !frontier;
    frontier := List.rev !next;
    incr l
  done;
  if !removed <> n then invalid_arg "Levels.compute_by_peeling: graph has a cycle";
  level

let max_level levels = Array.fold_left max (-1) levels

let count levels = max_level levels + 1

let histogram levels =
  let h = Array.make (count levels) 0 in
  Array.iter (fun l -> h.(l) <- h.(l) + 1) levels;
  h

let check g levels =
  let n = Graph.node_count g in
  Array.length levels = n
  && begin
       let ok = ref true in
       for u = 0 to n - 1 do
         if Graph.in_degree g u = 0 then begin
           if levels.(u) <> 0 then ok := false
         end
         else begin
           (* some predecessor exactly one level below, none at or above *)
           let witness = ref false in
           Graph.iter_pred g u (fun ~src ~eid:_ ->
               if levels.(src) >= levels.(u) then ok := false;
               if levels.(src) = levels.(u) - 1 then witness := true);
           if not !witness then ok := false
         end
       done;
       !ok
     end
