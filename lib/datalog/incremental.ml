type pred_change = { pred : string; added : int; removed : int }

type comp_activity = {
  comp : int;
  work : int;
  output_changed : bool;
  input_changed : bool;
}

type report = {
  changes : pred_change list;
  activity : comp_activity list;
  analysis : Stratify.t;
}

(* Net per-predicate deltas relative to the pre-update snapshot. A
   tuple sits in at most one of the two tables; re-adding a removed
   tuple cancels instead of double-booking. *)
type deltas = {
  added : (string, Relation.t) Hashtbl.t;
  removed : (string, Relation.t) Hashtbl.t;
}

let delta_rel tbl pred ~arity =
  match Hashtbl.find_opt tbl pred with
  | Some r -> r
  | None ->
    let r = Relation.create ~arity in
    Hashtbl.add tbl pred r;
    r

let nonempty tbl pred =
  match Hashtbl.find_opt tbl pred with
  | Some r -> Relation.cardinality r > 0
  | None -> false

let record_add (d : deltas) pred ~arity tup =
  let removed = delta_rel d.removed pred ~arity in
  if not (Relation.remove removed tup) then
    ignore (Relation.add (delta_rel d.added pred ~arity) tup)

let record_remove (d : deltas) pred ~arity tup =
  let added = delta_rel d.added pred ~arity in
  if not (Relation.remove added tup) then
    ignore (Relation.add (delta_rel d.removed pred ~arity) tup)

(* Replace the [i]th body literal (a negated atom) by its positive
   counterpart so that the semi-naive delta can range over it: a
   derivation enabled/disabled by a change to a negated input is found
   by unifying that literal against exactly the changed tuples. *)
let flip_negation (rule : Ast.rule) i =
  let body =
    List.mapi
      (fun j lit ->
        if j = i then
          match lit with
          | Ast.Neg a -> Ast.Pos a
          | Ast.Pos _ | Ast.Cmp _ -> invalid_arg "flip_negation: literal not negated"
        else lit)
      rule.Ast.body
  in
  { rule with Ast.body }

let check_edb (anal : Stratify.t) (a : Ast.atom) =
  if not (Ast.atom_is_ground a) then
    invalid_arg (Printf.sprintf "Incremental: update atom %s is not ground" a.Ast.pred);
  match Hashtbl.find_opt anal.Stratify.index_of a.Ast.pred with
  | Some i when not anal.Stratify.edb.(i) ->
    invalid_arg
      (Printf.sprintf "Incremental: %s is intensional; update base facts only"
         a.Ast.pred)
  | Some _ | None -> ()

(* Maintenance algorithm selector: classic delete/rederive (DRed), the
   counting engine — per-tuple derivation counts with Backward/Forward
   search for recursive components — or [Auto], which asks the static
   advisor ({!Analyze}) to pick per component. Whatever the selector,
   maintenance runs with one *resolved* strategy per condensation
   component; [Dred]/[Counting] resolve uniformly (modulo the
   counting-vs-shards downgrade below), [Auto] per the advisor. *)
type maint = Dred | Counting | Auto

let default_warn msg = Printf.eprintf "warning: %s\n%!" msg

(* Resolve the per-component strategies. Counting settles each round's
   deltas against a single canonical count table, so it cannot run
   under sharded phase rounds: rather than reject the combination (the
   old behavior was a hard [Invalid_argument]), downgrade the affected
   components to DRed — which shards fine — and say so through
   [on_warn]. The same downgrade covers the interpretive engine, which
   has no split-view mode. *)
let resolve_strategies ~engine ~shards ~on_warn anal program maint =
  let n = anal.Stratify.condensation.Dag.Scc.count in
  match maint with
  | Dred -> Array.make n Analyze.Dred
  | Counting ->
    if shards > 1 then begin
      on_warn
        "counting maintenance does not compose with sharded phase rounds \
         (shards > 1); running every stratum under DRed instead";
      Array.make n Analyze.Dred
    end
    else Array.make n Analyze.Counting
  | Auto ->
    let az = Analyze.run ~engine ~anal program in
    Array.init n (fun c ->
        let ci = az.Analyze.comps.(c) in
        match ci.Analyze.verdict with
        | Analyze.Counting when shards > 1 && not ci.Analyze.extensional ->
          on_warn
            (Printf.sprintf
               "maint auto: component %d [%s] prefers counting, which does not \
                compose with shards > 1; running it under DRed"
               c
               (String.concat " " ci.Analyze.members));
          Analyze.Dred
        | v -> v)

(* ---- the update context -----------------------------------------

   Everything component maintenance shares. After the serial prologue
   ([make_ctx], base updates, [prepare_deltas], [prepare_comp] /
   [precompile_comp]) the context's *structure* is frozen: the delta
   and relation hashtables gain no further entries, the views and plan
   stores are read-only. From then on [process_comp c] writes only the
   relations and delta relations of component [c]'s own predicates —
   every body predicate is upstream or same-component by construction
   of the dependency graph — which is the ownership rule that makes
   running components in parallel safe (see {!apply_parallel}). *)
type ctx = {
  db : Database.t;
  program : Ast.program;
  anal : Stratify.t;
  engine : Plan.engine;
  strategy : Analyze.strategy array;  (* resolved per component *)
  sanitize : bool;
  on_warn : string -> unit;
  symbols : Symbol.t;
  card : string -> int;
  make_exec : Ast.rule -> Plan.exec;
  d : deltas;
  old_view : Matcher.view;
  new_view : Matcher.view;
}

let make_ctx ?(shards = 1) ?(sanitize = false) ?(on_warn = default_warn) ~engine
    ~maint db program =
  Aggregate.validate program;
  let anal = Stratify.analyze program in
  let strategy = resolve_strategies ~engine ~shards ~on_warn anal program maint in
  Matcher.register db program;
  let symbols = Database.symbols db in
  let card pred =
    match Database.find db pred with Some r -> Relation.cardinality r | None -> 0
  in
  let make_exec r = Plan.executor ~engine ~symbols ~card r in
  let new_view = Matcher.view_of_db db in
  let d = { added = Hashtbl.create 16; removed = Hashtbl.create 16 } in
  (* The pre-update state as a delta overlay over the live database:
     old = (new \ added) ∪ removed. The net-delta invariant maintained
     by [record_add]/[record_remove] (a tuple sits in at most one table,
     cancellation on re-add) makes this identity hold at every point
     during processing, so no O(database) snapshot copy is needed. *)
  let old_view =
    let added p = Hashtbl.find_opt d.added p in
    let removed p = Hashtbl.find_opt d.removed p in
    let non_empty = function
      | Some r when Relation.cardinality r > 0 -> Some r
      | Some _ | None -> None
    in
    {
      Matcher.mem =
        (fun p tup ->
          let in_removed =
            match removed p with Some r -> Relation.mem r tup | None -> false
          in
          in_removed
          ||
          let in_added =
            match added p with Some r -> Relation.mem r tup | None -> false
          in
          (not in_added)
          && (match Database.find db p with
             | Some r -> Relation.mem r tup
             | None -> false));
      iter_matching =
        (fun p ~col ~value f ->
          (match Database.find db p with
          | Some r -> (
            match non_empty (added p) with
            | Some a ->
              Relation.iter_matching r ~col ~value (fun t ->
                  if not (Relation.mem a t) then f t)
            | None -> Relation.iter_matching r ~col ~value f)
          | None -> ());
          match non_empty (removed p) with
          | Some r -> Relation.iter_matching r ~col ~value f
          | None -> ());
      iter =
        (fun p f ->
          (match Database.find db p with
          | Some r -> (
            match non_empty (added p) with
            | Some a -> Relation.iter (fun t -> if not (Relation.mem a t) then f t) r
            | None -> Relation.iter f r)
          | None -> ());
          match removed p with Some r -> Relation.iter f r | None -> ());
    }
  in
  { db; program; anal; engine; strategy; sanitize; on_warn; symbols; card;
    make_exec; d; old_view; new_view }

let apply_base_updates ctx ~additions ~deletions =
  List.iter
    (fun (a : Ast.atom) ->
      let tup = Database.intern_atom ctx.db a in
      let rel = Database.relation ctx.db a.Ast.pred ~arity:(Array.length tup) in
      if Relation.remove rel tup then
        record_remove ctx.d a.Ast.pred ~arity:(Array.length tup) tup)
    deletions;
  List.iter
    (fun (a : Ast.atom) ->
      let tup = Database.intern_atom ctx.db a in
      let rel = Database.relation ctx.db a.Ast.pred ~arity:(Array.length tup) in
      if Relation.add rel tup then
        record_add ctx.d a.Ast.pred ~arity:(Array.length tup) tup)
    additions

(* Pre-create the delta relation pair of every analyzed predicate, so
   the delta hashtables never grow a new entry during component
   processing — structural mutation of a shared hashtable is the one
   thing [record_add]/[record_remove] would otherwise do outside their
   component's write set. ([Matcher.register] has already created every
   predicate's relation, fixing the arities.) *)
let prepare_deltas ctx =
  Array.iter
    (fun name ->
      match Database.find ctx.db name with
      | None -> ()
      | Some rel ->
        let arity = Relation.arity rel in
        ignore (delta_rel ctx.d.added name ~arity);
        ignore (delta_rel ctx.d.removed name ~arity))
    ctx.anal.Stratify.predicates

(* ---- per-component preparation ----------------------------------

   Everything a component's maintenance needs, resolved up front: its
   rules with one shared executor each (so every (rule, delta position)
   plan is compiled at most once per update), plus the flipped-positive
   variant of each negated literal — shared by phases A and C, where
   the original code rebuilt it per trigger. *)

type prepared_rule = {
  rule : Ast.rule;
  ex : Plan.exec;
  flipped : (int * Ast.rule * Plan.exec) list;  (* keyed by negated body position *)
}

(* [Rules] holds one independently compiled plan set per shard task
   (length 1 when unsharded): plans carry non-reentrant scratch state,
   so the per-shard enumerations of a sharded phase round must never
   share one. Shard [s]'s list is touched only by the thread running
   shard [s] (the crew pins shards to domains). *)
type comp_body =
  | Extensional
  | Aggregate_rule of Ast.rule
  | Rules of prepared_rule list array

type prepared_comp = {
  comp : int;
  members : int array;
  comp_preds : (string, unit) Hashtbl.t;
  tag : string;  (* sanitizer owner/writer tag: names the component *)
  body : comp_body;
}

let prepare_comp ?(shards = 1) ctx comp =
  let anal = ctx.anal in
  let members = anal.Stratify.condensation.Dag.Scc.members.(comp) in
  let comp_preds = Hashtbl.create 4 in
  Array.iter
    (fun p -> Hashtbl.replace comp_preds anal.Stratify.predicates.(p) ())
    members;
  let tag =
    Printf.sprintf "component %d [%s]" comp
      (String.concat " "
         (List.map
            (fun p -> anal.Stratify.predicates.(p))
            (Array.to_list members)))
  in
  let rules =
    List.filter
      (fun (r : Ast.rule) -> r.Ast.body <> [])
      (Stratify.rules_for_comp anal ctx.program comp)
  in
  let body =
    match rules with
    | [] -> Extensional
    | [ r ] when Ast.rule_is_aggregate r -> Aggregate_rule r
    | rules ->
      let prepare_set () =
        List.map
          (fun (r : Ast.rule) ->
            let flipped =
              List.mapi (fun i lit -> (i, lit)) r.Ast.body
              |> List.filter_map (fun (i, lit) ->
                     match lit with
                     | Ast.Neg _ ->
                       let fr = flip_negation r i in
                       Some (i, fr, ctx.make_exec fr)
                     | Ast.Pos _ | Ast.Cmp _ -> None)
            in
            { rule = r; ex = ctx.make_exec r; flipped })
          rules
      in
      Rules (Array.init (max 1 shards) (fun _ -> prepare_set ()))
  in
  { comp; members; comp_preds; tag; body }

(* Compile every plan a component's phases could reach: the base plan
   (phase B), a delta plan per positive body position (phases A/C and
   the in-component cascades), and a delta plan per flipped negation —
   for every shard's plan set. Compilation interns constants into the
   shared symbol table and consults relation cardinalities, so the
   parallel driver runs this serially, before any worker domain
   exists. *)
let precompile_comp pc =
  match pc.body with
  | Extensional | Aggregate_rule _ -> ()
  | Rules prs_by_shard ->
    Array.iter
      (fun prs ->
        List.iter
          (fun pr ->
            Plan.prepare pr.ex;
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos _ -> Plan.prepare ~delta:i pr.ex
                | Ast.Neg _ | Ast.Cmp _ -> ())
              pr.rule.Ast.body;
            List.iter (fun (i, _, fex) -> Plan.prepare ~delta:i fex) pr.flipped)
          prs)
      prs_by_shard

let flipped_for pr i =
  let rec go = function
    | [] -> invalid_arg "Incremental: missing flipped plan"
    | (j, fr, fex) :: rest -> if j = i then (fr, fex) else go rest
  in
  go pr.flipped

(* ---- counting maintenance helpers ------------------------------- *)

(* [base] with the [plus] tuples restored and the [minus] tuples
   hidden, per predicate — the same overlay shape as the global old
   view, but over one cascade round's delta: a death round enumerates
   with [plus] = this round's deaths (the pre-round state), a birth
   round with [minus] = this round's births. Invariants: [plus] is
   disjoint from [base] (its tuples were just removed) and [minus] is
   contained in [base] (just added / still present), so membership is
   plus-hit, else minus-miss, else base. *)
let overlay_view ~plus ~minus (base : Matcher.view) =
  let find tbl p =
    match Hashtbl.find_opt tbl p with
    | Some r when Relation.cardinality r > 0 -> Some r
    | Some _ | None -> None
  in
  {
    Matcher.mem =
      (fun p tup ->
        (match find plus p with Some r -> Relation.mem r tup | None -> false)
        || ((match find minus p with
            | Some r -> not (Relation.mem r tup)
            | None -> true)
           && base.Matcher.mem p tup));
    iter_matching =
      (fun p ~col ~value f ->
        (match find minus p with
        | Some m ->
          base.Matcher.iter_matching p ~col ~value (fun t ->
              if not (Relation.mem m t) then f t)
        | None -> base.Matcher.iter_matching p ~col ~value f);
        match find plus p with
        | Some r -> Relation.iter_matching r ~col ~value f
        | None -> ());
    iter =
      (fun p f ->
        (match find minus p with
        | Some m -> base.Matcher.iter p (fun t -> if not (Relation.mem m t) then f t)
        | None -> base.Matcher.iter p f);
        match find plus p with Some r -> Relation.iter f r | None -> ());
  }

(* (Re)build a [Rules] component's derivation-count side tables by
   enumerating every rule's derivations against [view] (each rule's
   base plan — the one full-join pass counting ever needs). Attaches
   fresh tables and returns them keyed by head predicate; the caller
   stamps them synced once store and counts agree. *)
let recount_comp ctx (pc : prepared_comp) prs ~view ~work =
  let is_rec (r : Ast.rule) =
    List.exists
      (function
        | Ast.Pos a -> Hashtbl.mem pc.comp_preds a.Ast.pred
        | Ast.Neg _ | Ast.Cmp _ -> false)
      r.Ast.body
  in
  let counts_of : (string, Relation.counts) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun pr ->
      let pred = pr.rule.Ast.head.Ast.pred in
      if not (Hashtbl.mem counts_of pred) then begin
        let rel =
          Database.relation ctx.db pred ~arity:(List.length pr.rule.Ast.head.Ast.args)
        in
        Hashtbl.add counts_of pred (Relation.counts_attach rel)
      end)
    prs;
  List.iter
    (fun pr ->
      let c = Hashtbl.find counts_of pr.rule.Ast.head.Ast.pred in
      let exit = not (is_rec pr.rule) in
      Plan.exec_rule ~view ~work
        ~on_derived:(fun tup ->
          let cell = Relation.count_cell c tup in
          if exit then cell.Relation.exits <- cell.Relation.exits + 1
          else cell.Relation.recs <- cell.Relation.recs + 1)
        pr.ex)
    prs;
  counts_of

(* ---- per-component maintenance (DRed phases A/B/C) -------------- *)

(* Shared intra-component fan-out machinery, one per update: the crew
   ([Shard_crew.run] serializes concurrent component tasks internally
   so two executor workers can both reach a sharded phase round), the
   shard count, and one dedicated obs ring per non-coordinator shard.
   Crew worker [j] always runs shard [j] and at most one fan-out is in
   flight, so the rings keep their single-writer contract; shard 0
   runs on the coordinating thread and shares its ring. *)
type shard_ctx = {
  crew : Parallel.Shard_crew.t;
  nshards : int;
  shard_rings : Obs.Ring.t array;  (* length [nshards]; slot 0 unused *)
}

let process_comp_unsanitized ?(ring = Obs.Ring.null) ?shard_ctx ctx (pc : prepared_comp) =
  let anal = ctx.anal in
  let d = ctx.d in
  let comp = pc.comp in
  (* DRed phase spans (delete / rederive / insert), one per phase per
     component, tagged with the component id; a single mutable start
     stamp suffices because phases never nest *)
  let traced = Obs.Ring.enabled ring in
  let phase0 = ref 0 in
  let phase_begin () = if traced then phase0 := Obs.Ring.now_ns ring in
  let phase_end kind = if traced then Obs.Ring.emit ring ~kind ~a:comp ~b:!phase0 in
  let comp_preds = pc.comp_preds in
  let head_arity (r : Ast.rule) = List.length r.Ast.head.Ast.args in
  let head_rel (r : Ast.rule) =
    Database.relation ctx.db r.Ast.head.Ast.pred ~arity:(head_arity r)
  in
  let members_changed () =
    Array.exists
      (fun p ->
        nonempty d.added anal.Stratify.predicates.(p)
        || nonempty d.removed anal.Stratify.predicates.(p))
      pc.members
  in
  let input_changed_of rules =
    List.exists
      (fun (r : Ast.rule) ->
        List.exists
          (function
            | Ast.Pos a | Ast.Neg a ->
              (not (Hashtbl.mem comp_preds a.Ast.pred))
              && (nonempty d.added a.Ast.pred || nonempty d.removed a.Ast.pred)
            | Ast.Cmp _ -> false)
          r.Ast.body)
      rules
  in
  match pc.body with
  | Extensional ->
    (* extensional component: its delta is the base update itself *)
    { comp; work = 0; output_changed = members_changed (); input_changed = false }
  | Aggregate_rule r ->
    (* aggregates are functional: recompute when dirty, diff exactly *)
    let input_changed = input_changed_of [ r ] in
    let work = ref 0 in
    if input_changed then begin
      phase_begin ();
      let pred = r.Ast.head.Ast.pred in
      let arity = head_arity r in
      let rel = Database.relation ctx.db pred ~arity in
      let fresh = Relation.create ~arity in
      List.iter
        (fun tup -> ignore (Relation.add fresh tup))
        (Aggregate.evaluate ~engine:ctx.engine ~symbols:ctx.symbols ~view:ctx.new_view
           ~card:ctx.card ~work r);
      let stale =
        Relation.fold
          (fun acc tup -> if Relation.mem fresh tup then acc else tup :: acc)
          [] rel
      in
      List.iter
        (fun tup ->
          ignore (Relation.remove rel tup);
          record_remove d pred ~arity tup)
        stale;
      Relation.iter
        (fun tup -> if Relation.add rel tup then record_add d pred ~arity tup)
        fresh;
      (* functional recompute-and-diff is closest to rederivation *)
      phase_end Obs.Event.dred_rederive
    end;
    { comp; work = !work; output_changed = members_changed (); input_changed }
  | Rules prs_by_shard ->
    let prs = prs_by_shard.(0) in
    let input_changed = input_changed_of (List.map (fun pr -> pr.rule) prs) in
    let work = ref 0 in
    let keep_new (r : Ast.rule) =
      let rel = head_rel r in
      fun tup -> not (Relation.mem rel tup)
    in
    (* ---- Phase B: rederivation over the new state ----
       Shared by both drivers; serial either way — after overdeletion
       the phase is empty for insert-only batches, and its fixpoint
       mutates [overdeleted] mid-enumeration. *)
    let rederive overdeleted =
      phase_begin ();
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun pr ->
            let r = pr.rule in
            match Hashtbl.find_opt overdeleted r.Ast.head.Ast.pred with
            | Some o when Relation.cardinality o > 0 ->
              Plan.exec_rule_deferred ~view:ctx.new_view ~work
                ~keep:(Relation.mem o)
                ~on_derived:(fun tup ->
                  if Relation.mem o tup then begin
                    let pred = r.Ast.head.Ast.pred in
                    let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
                    if Relation.add rel tup then begin
                      record_add d pred ~arity:(head_arity r) tup;
                      ignore (Relation.remove o tup);
                      changed := true
                    end
                  end)
                pr.ex
            | Some _ | None -> ())
          prs
      done;
      phase_end Obs.Event.dred_rederive
    in
    let run_phases_serial () =
      (* ---- Phase A: overdeletion against the old state ---- *)
      phase_begin ();
      let overdeleted : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      let overdelete (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
        if Relation.remove rel tup then begin
          record_remove d pred ~arity:(head_arity r) tup;
          ignore (Relation.add (delta_rel overdeleted pred ~arity:(head_arity r)) tup)
        end
      in
      (* round 0: external triggers. All staging callbacks here and in
         phases B/C mutate state the enumeration is reading — the head
         relation probed by recursive rules, and the net-delta overlay
         [old_view] iterates — so every exec goes through
         {!Plan.exec_rule_deferred}: derive first against frozen state,
         apply after the walk. The deferral does not change the old
         view: overdeletion removes from the live relation and records
         into [d.removed], which cancel out under the overlay. *)
      let round = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let stage_round (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
        if Relation.mem rel tup then begin
          (* not yet overdeleted this phase *)
          overdelete r tup;
          ignore (Relation.add (delta_rel !round pred ~arity:(head_arity r)) tup)
        end
      in
      List.iter
        (fun pr ->
          let r = pr.rule in
          List.iteri
            (fun i lit ->
              match lit with
              | Ast.Pos a when nonempty d.removed a.Ast.pred ->
                Plan.exec_rule_deferred ~view:ctx.old_view
                  ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                  ~work
                  ~keep:(Relation.mem (head_rel r))
                  ~on_derived:(stage_round r) pr.ex
              | Ast.Neg a when nonempty d.added a.Ast.pred ->
                let fr, fex = flipped_for pr i in
                Plan.exec_rule_deferred ~view:ctx.old_view
                  ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                  ~work
                  ~keep:(Relation.mem (head_rel fr))
                  ~on_derived:(stage_round fr) fex
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
            r.Ast.body)
        prs;
      (* cascade within the component *)
      while Hashtbl.length !round > 0 do
        let prev = !round in
        round := Hashtbl.create 4;
        List.iter
          (fun pr ->
            let r = pr.rule in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt prev a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    Plan.exec_rule_deferred ~view:ctx.old_view ~delta:(i, delta) ~work
                      ~keep:(Relation.mem (head_rel r))
                      ~on_derived:(stage_round r) pr.ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          prs;
        (* tuples staged this round that were already overdeleted in a
           previous round were filtered by [stage_round]'s mem check *)
        ()
      done;
      phase_end Obs.Event.dred_delete;
      rederive overdeleted;
      (* ---- Phase C: insertion against the new state ---- *)
      phase_begin ();
      let roundc = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let stage_add (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation ctx.db pred ~arity:(head_arity r) in
        if Relation.add rel tup then begin
          record_add d pred ~arity:(head_arity r) tup;
          ignore (Relation.add (delta_rel !roundc pred ~arity:(head_arity r)) tup)
        end
      in
      List.iter
        (fun pr ->
          let r = pr.rule in
          List.iteri
            (fun i lit ->
              match lit with
              | Ast.Pos a
                when (not (Hashtbl.mem comp_preds a.Ast.pred))
                     && nonempty d.added a.Ast.pred ->
                Plan.exec_rule_deferred ~view:ctx.new_view
                  ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                  ~work ~keep:(keep_new r) ~on_derived:(stage_add r) pr.ex
              | Ast.Neg a when nonempty d.removed a.Ast.pred ->
                let fr, fex = flipped_for pr i in
                Plan.exec_rule_deferred ~view:ctx.new_view
                  ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                  ~work
                  ~keep:(keep_new fr)
                  ~on_derived:(stage_add fr) fex
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
            r.Ast.body)
        prs;
      while Hashtbl.length !roundc > 0 do
        let prev = !roundc in
        roundc := Hashtbl.create 4;
        List.iter
          (fun pr ->
            let r = pr.rule in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt prev a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    Plan.exec_rule_deferred ~view:ctx.new_view ~delta:(i, delta) ~work
                      ~keep:(keep_new r) ~on_derived:(stage_add r) pr.ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          prs
      done;
      phase_end Obs.Event.dred_insert
    in
    (* ---- sharded phase drivers ----
       Each phase round fans out into [nshards] enumerations over
       frozen state: round 0 partitions the base deltas with Plan's
       [?shard] filter, later rounds read their own slice of the
       previous round's {!Relation.Sharded} delta. Shard job [s]
       writes only its private candidate buffer ((component, shard)
       ownership); the coordinator merges the buffers in shard order
       0..k-1 behind the crew barrier, so the insertion order of every
       relation and delta is a pure function of the derivations —
       deterministic run to run. Duplicates across shards (or that a
       serial walk's staging would have suppressed mid-round) are
       dropped by the merge's mem/add checks; derivations a serial
       walk found through tuples staged mid-round reappear here as
       next-round delta hits, so the fixpoint is unchanged — only the
       work counts can differ. *)
    let run_phases_sharded sc =
      let k = sc.nshards in
      let card_of tbl pred =
        match Hashtbl.find_opt tbl pred with
        | Some r -> Relation.cardinality r
        | None -> 0
      in
      (* below this many driving tuples a round stays on the caller:
         the crew round-trip costs more than it buys *)
      let gate = 4 * k in
      let fanout ~par enumerate =
        let bufs = Array.make k [] in
        let works = Array.make k 0 in
        let job s =
          let ring_s = if s = 0 then ring else sc.shard_rings.(s) in
          let t0 = if Obs.Ring.enabled ring_s then Obs.Ring.now_ns ring_s else 0 in
          let w = ref 0 in
          let acc = ref [] in
          let emit r tup = acc := (r, tup) :: !acc in
          enumerate ~shard:s ~sprs:prs_by_shard.(s) ~emit ~work:w;
          bufs.(s) <- List.rev !acc;
          works.(s) <- !w;
          if Obs.Ring.enabled ring_s then
            Obs.Ring.emit ring_s ~kind:Obs.Event.shard ~a:s ~b:t0
        in
        if par then Parallel.Shard_crew.run sc.crew job
        else
          for s = 0 to k - 1 do
            job s
          done;
        Array.iter (fun w -> work := !work + w) works;
        bufs
      in
      let sdelta tbl pred ~arity =
        match Hashtbl.find_opt tbl pred with
        | Some s -> s
        | None ->
          let s = Relation.Sharded.create ~arity ~shards:k in
          Hashtbl.add tbl pred s;
          s
      in
      (* ---- Phase A ---- *)
      phase_begin ();
      let overdeleted : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      let snext = ref (Hashtbl.create 4 : (string, Relation.Sharded.t) Hashtbl.t) in
      let staged = ref 0 in
      let merge_delete bufs =
        staged := 0;
        Array.iter
          (List.iter (fun ((r : Ast.rule), tup) ->
               let pred = r.Ast.head.Ast.pred in
               let arity = head_arity r in
               let rel = Database.relation ctx.db pred ~arity in
               if Relation.mem rel tup then begin
                 ignore (Relation.remove rel tup);
                 record_remove d pred ~arity tup;
                 ignore (Relation.add (delta_rel overdeleted pred ~arity) tup);
                 ignore (Relation.Sharded.add (sdelta !snext pred ~arity) tup);
                 incr staged
               end))
          bufs
      in
      let size0 =
        List.fold_left
          (fun acc pr ->
            List.fold_left
              (fun acc lit ->
                match lit with
                | Ast.Pos a -> acc + card_of d.removed a.Ast.pred
                | Ast.Neg a -> acc + card_of d.added a.Ast.pred
                | Ast.Cmp _ -> acc)
              acc pr.rule.Ast.body)
          0 prs
      in
      merge_delete
        (fanout ~par:(size0 >= gate) (fun ~shard ~sprs ~emit ~work ->
             List.iter
               (fun pr ->
                 let r = pr.rule in
                 List.iteri
                   (fun i lit ->
                     match lit with
                     | Ast.Pos a when nonempty d.removed a.Ast.pred ->
                       Plan.exec_rule_deferred ~view:ctx.old_view
                         ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                         ~shard:(shard, k) ~work
                         ~keep:(Relation.mem (head_rel r))
                         ~on_derived:(emit r) pr.ex
                     | Ast.Neg a when nonempty d.added a.Ast.pred ->
                       let fr, fex = flipped_for pr i in
                       Plan.exec_rule_deferred ~view:ctx.old_view
                         ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                         ~shard:(shard, k) ~work
                         ~keep:(Relation.mem (head_rel fr))
                         ~on_derived:(emit fr) fex
                     | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                   r.Ast.body)
               sprs));
      while !staged > 0 do
        let prev = !snext in
        let par = !staged >= gate in
        snext := Hashtbl.create 4;
        merge_delete
          (fanout ~par (fun ~shard ~sprs ~emit ~work ->
               List.iter
                 (fun pr ->
                   let r = pr.rule in
                   List.iteri
                     (fun i lit ->
                       match lit with
                       | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                         match Hashtbl.find_opt prev a.Ast.pred with
                         | Some sd ->
                           let slice = Relation.Sharded.shard sd shard in
                           if Relation.cardinality slice > 0 then
                             Plan.exec_rule_deferred ~view:ctx.old_view
                               ~delta:(i, slice) ~work
                               ~keep:(Relation.mem (head_rel r))
                               ~on_derived:(emit r) pr.ex
                         | None -> ())
                       | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                     r.Ast.body)
                 sprs))
      done;
      phase_end Obs.Event.dred_delete;
      rederive overdeleted;
      (* ---- Phase C ---- *)
      phase_begin ();
      let snextc = ref (Hashtbl.create 4 : (string, Relation.Sharded.t) Hashtbl.t) in
      let merge_insert bufs =
        staged := 0;
        Array.iter
          (List.iter (fun ((r : Ast.rule), tup) ->
               let pred = r.Ast.head.Ast.pred in
               let arity = head_arity r in
               let rel = Database.relation ctx.db pred ~arity in
               if Relation.add rel tup then begin
                 record_add d pred ~arity tup;
                 ignore (Relation.Sharded.add (sdelta !snextc pred ~arity) tup);
                 incr staged
               end))
          bufs
      in
      let sizec =
        List.fold_left
          (fun acc pr ->
            List.fold_left
              (fun acc lit ->
                match lit with
                | Ast.Pos a when not (Hashtbl.mem comp_preds a.Ast.pred) ->
                  acc + card_of d.added a.Ast.pred
                | Ast.Neg a -> acc + card_of d.removed a.Ast.pred
                | Ast.Pos _ | Ast.Cmp _ -> acc)
              acc pr.rule.Ast.body)
          0 prs
      in
      merge_insert
        (fanout ~par:(sizec >= gate) (fun ~shard ~sprs ~emit ~work ->
             List.iter
               (fun pr ->
                 let r = pr.rule in
                 List.iteri
                   (fun i lit ->
                     match lit with
                     | Ast.Pos a
                       when (not (Hashtbl.mem comp_preds a.Ast.pred))
                            && nonempty d.added a.Ast.pred ->
                       Plan.exec_rule_deferred ~view:ctx.new_view
                         ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                         ~shard:(shard, k) ~work ~keep:(keep_new r)
                         ~on_derived:(emit r) pr.ex
                     | Ast.Neg a when nonempty d.removed a.Ast.pred ->
                       let fr, fex = flipped_for pr i in
                       Plan.exec_rule_deferred ~view:ctx.new_view
                         ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                         ~shard:(shard, k) ~work
                         ~keep:(keep_new fr)
                         ~on_derived:(emit fr) fex
                     | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                   r.Ast.body)
               sprs));
      while !staged > 0 do
        let prev = !snextc in
        let par = !staged >= gate in
        snextc := Hashtbl.create 4;
        merge_insert
          (fanout ~par (fun ~shard ~sprs ~emit ~work ->
               List.iter
                 (fun pr ->
                   let r = pr.rule in
                   List.iteri
                     (fun i lit ->
                       match lit with
                       | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                         match Hashtbl.find_opt prev a.Ast.pred with
                         | Some sd ->
                           let slice = Relation.Sharded.shard sd shard in
                           if Relation.cardinality slice > 0 then
                             Plan.exec_rule_deferred ~view:ctx.new_view
                               ~delta:(i, slice) ~work ~keep:(keep_new r)
                               ~on_derived:(emit r) pr.ex
                         | None -> ())
                       | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                     r.Ast.body)
                 sprs))
      done;
      phase_end Obs.Event.dred_insert
    in
    (* ---- counting maintenance (derivation counts + B/F search) ----

       The deletion-side replacement for DRed's overdelete/rederive:
       per-tuple derivation counts (split exit/recursive) live in
       {!Relation}'s side table and are maintained by signed delta
       propagation — a tuple dies exactly when its count reaches zero,
       so nothing is over-deleted and rederivation shrinks to a
       backward check of the few decremented-but-surviving tuples
       without exit support. Every enumeration uses the telescoped
       split-view form: the delta literal at body position i joins
       positions j < i against the already-updated state and positions
       j > i against the not-yet-updated state ({!Plan.run}'s
       [late_view]), which makes the signed counts exact for arbitrary
       batches, self-joins included. Work inside the component is
       serialized as: external deltas (round 0), then death cascade
       rounds, then backward removals (looping with further cascades),
       then birth rounds — and each round's enumerations read exactly
       the store state that order implies: deaths/births already
       applied count as "early" state, the round's own delta restored/
       hidden via {!overlay_view} is the "late" state. *)
    let run_phases_counting () =
      let rec_rule (r : Ast.rule) =
        List.exists
          (function
            | Ast.Pos a -> Hashtbl.mem comp_preds a.Ast.pred
            | Ast.Neg _ | Ast.Cmp _ -> false)
          r.Ast.body
      in
      let recursive = List.exists (fun pr -> rec_rule pr.rule) prs in
      let heads : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun pr ->
          let pred = pr.rule.Ast.head.Ast.pred in
          if not (Hashtbl.mem heads pred) then Hashtbl.add heads pred (head_rel pr.rule))
        prs;
      (* counts: trust them only if stamped at the relations' current
         versions; any other mutation path (DRed, Eval, direct edits)
         bumped the version, so rebuild against the pre-update state.
         Comp relations are untouched at this point and upstream deltas
         cancel out under the old view, so the rebuild is exact. *)
      let stale =
        Hashtbl.fold
          (fun _ rel acc -> acc || Relation.counts_synced rel = None)
          heads false
      in
      let counts_of =
        if stale then recount_comp ctx pc prs ~view:ctx.old_view ~work
        else begin
          let tbl = Hashtbl.create 4 in
          Hashtbl.iter
            (fun pred rel ->
              match Relation.counts_synced rel with
              | Some c -> Hashtbl.add tbl pred c
              | None -> assert false)
            heads;
          tbl
        end
      in
      let no_overlay : (string, Relation.t) Hashtbl.t = Hashtbl.create 0 in
      let tbl_live tbl =
        Hashtbl.fold (fun _ r acc -> acc || Relation.cardinality r > 0) tbl false
      in
      (* scratch signed count deltas of the round being enumerated;
         [dec_touched] accumulates every tuple that lost a derivation —
         the backward phase's suspect pool (recursive comps only; a
         tuple with surviving exit support never needs the check) *)
      let sc : (string, Relation.counts) Hashtbl.t = Hashtbl.create 4 in
      let dec_touched : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      let bump pred exit sign tup =
        let c =
          match Hashtbl.find_opt sc pred with
          | Some c -> c
          | None ->
            let c = Relation.counts_create () in
            Hashtbl.add sc pred c;
            c
        in
        let cell = Relation.count_cell c tup in
        if exit then cell.Relation.exits <- cell.Relation.exits + sign
        else cell.Relation.recs <- cell.Relation.recs + sign;
        if sign < 0 && recursive then
          ignore (Relation.add (delta_rel dec_touched pred ~arity:(Array.length tup)) tup)
      in
      let pending_births = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let take_births () =
        let b = !pending_births in
        pending_births := Hashtbl.create 4;
        b
      in
      (* Apply a round's net signed deltas to the counts. Deaths (a
         present tuple's total reaching zero) are applied to the store
         immediately and returned for the next cascade round; births
         (positive support for an absent tuple) are only queued — they
         are applied after all deletion-side work, so the backward
         search never sees half-inserted state. Decrements aimed at a
         tuple with no cell are support through something this batch
         already killed: discarded, like the increments such a tuple's
         own count would have carried. *)
      let settle () =
        let deaths : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
        Hashtbl.iter
          (fun pred (round_counts : Relation.counts) ->
            let rel = Hashtbl.find heads pred in
            let c = Hashtbl.find counts_of pred in
            let arity = Relation.arity rel in
            Relation.counts_iter
              (fun tup dcell ->
                let dex = dcell.Relation.exits and drec = dcell.Relation.recs in
                if dex <> 0 || drec <> 0 then
                  if Relation.mem rel tup then (
                    match Relation.count_find c tup with
                    | Some cell ->
                      cell.Relation.exits <- cell.Relation.exits + dex;
                      cell.Relation.recs <- cell.Relation.recs + drec;
                      if Relation.count_total cell <= 0 then begin
                        Relation.count_drop c tup;
                        ignore (Relation.remove rel tup);
                        record_remove d pred ~arity tup;
                        ignore (Relation.add (delta_rel deaths pred ~arity) tup)
                      end
                    | None ->
                      (* present but never counted: a base fact listed
                         for this derived predicate. New derivations
                         attach a cell; stray decrements are bogus and
                         keep the fact pinned. *)
                      if dex + drec > 0 then begin
                        let cell = Relation.count_cell c tup in
                        cell.Relation.exits <- dex;
                        cell.Relation.recs <- drec
                      end)
                  else
                    match Relation.count_find c tup with
                    | Some cell ->
                      cell.Relation.exits <- cell.Relation.exits + dex;
                      cell.Relation.recs <- cell.Relation.recs + drec;
                      if Relation.count_total cell <= 0 then Relation.count_drop c tup
                      else
                        ignore (Relation.add (delta_rel !pending_births pred ~arity) tup)
                    | None ->
                      if dex + drec > 0 then begin
                        let cell = Relation.count_cell c tup in
                        cell.Relation.exits <- dex;
                        cell.Relation.recs <- drec;
                        ignore (Relation.add (delta_rel !pending_births pred ~arity) tup)
                      end)
              round_counts)
          sc;
        Hashtbl.reset sc;
        deaths
      in
      (* one in-component cascade round: the delta (this round's deaths
         or births, already applied to the store) drives every rule at
         its in-component positions; [pre] is the pre-round state for
         the late positions. Only scratch counts are written, so the
         non-deferred executor is safe. *)
      let enumerate_in_comp ~sign ~round ~pre =
        List.iter
          (fun pr ->
            let r = pr.rule in
            let hpred = r.Ast.head.Ast.pred in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt round a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    (* in-comp delta position ⇒ recursive rule *)
                    Plan.exec_rule ~view:ctx.new_view ~late_view:pre ~delta:(i, delta)
                      ~work ~on_derived:(bump hpred false sign) pr.ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          prs
      in
      let cascade_deaths deaths0 =
        phase_begin ();
        let pending = ref deaths0 in
        while tbl_live !pending do
          let round = !pending in
          let pre = overlay_view ~plus:round ~minus:no_overlay ctx.new_view in
          enumerate_in_comp ~sign:(-1) ~round ~pre;
          pending := settle ()
        done;
        phase_end Obs.Event.cnt_forward
      in
      (* Backward phase: of the tuples that lost a derivation and
         survived without exit support, decide which still have a
         well-founded derivation. Worklist search: a suspect is hidden,
         then checked goal-directedly — its constants substituted into
         each recursive rule's body, looking for one satisfying match
         in the visible state (exit-supported survivors, upstream
         relations, peers not under suspicion). Exit rules can't prove
         a suspect: exits = 0 means no exit derivation exists, and
         hiding suspects (all same-component) doesn't change exit-rule
         bodies. A proven suspect is unhidden and stops the search; a
         failed one stays hidden and extends the proof obligation to
         its consumers — anything whose support may run through it,
         i.e. present exits = 0 tuples it derives — which join the
         worklist. Without that spread an unfounded cycle proves its
         members off each other, each off a not-yet-suspected peer
         whose only support loops back through the suspect. Tuples
         with exit support are well-founded and never enter, which
         keeps the explored cone small next to DRed's overdeletion on
         densely supported relations. A final fixpoint re-checks
         failures against late proofs; what survives is supported only
         through the suspect set itself — an unfounded cycle — and is
         removed, its counts discarded. A proof through a tuple this
         round later removes is repaired by the outer loop: the
         removal's cascade decrements the dependent, re-suspecting
         it. *)
      let head_env (r : Ast.rule) tup =
        let env = ref [] and ok = ref true in
        List.iteri
          (fun i t ->
            if !ok then
              match t with
              | Ast.Var v -> (
                match List.assoc_opt v !env with
                | Some x -> if x <> tup.(i) then ok := false
                | None -> env := (v, tup.(i)) :: !env)
              | Ast.Const c ->
                if Symbol.const_of ctx.symbols tup.(i) <> c then ok := false
              | Ast.Agg _ -> ok := false)
          r.Ast.head.Ast.args;
        if !ok then Some !env else None
      in
      let subst_term env t =
        match t with
        | Ast.Var v -> (
          match List.assoc_opt v env with
          | Some code -> Ast.Const (Symbol.const_of ctx.symbols code)
          | None -> t)
        | Ast.Const _ | Ast.Agg _ -> t
      in
      let subst_lit env = function
        | Ast.Pos a -> Ast.Pos { a with Ast.args = List.map (subst_term env) a.Ast.args }
        | Ast.Neg a -> Ast.Neg { a with Ast.args = List.map (subst_term env) a.Ast.args }
        | Ast.Cmp (op, t1, t2) -> Ast.Cmp (op, subst_term env t1, subst_term env t2)
      in
      let rec_prs = List.filter (fun pr -> rec_rule pr.rule) prs in
      let exception Proved in
      let provable ~hide pred tup =
        List.exists
          (fun pr ->
            pr.rule.Ast.head.Ast.pred = pred
            &&
            match head_env pr.rule tup with
            | None -> false
            | Some env -> (
              let body = List.map (subst_lit env) pr.rule.Ast.body in
              (* goal-directed order: positives ascending by live
                 cardinality so the probe hits the small relation first
                 (edge before path, in transitive-closure terms);
                 negations and comparisons last — range restriction
                 binds their variables once every positive has run *)
              let pos, rest =
                List.partition (function Ast.Pos _ -> true | _ -> false) body
              in
              let key = function
                | Ast.Pos a -> ctx.card a.Ast.pred
                | Ast.Neg _ | Ast.Cmp _ -> max_int
              in
              let body =
                List.stable_sort (fun x y -> compare (key x) (key y)) pos @ rest
              in
              try
                Matcher.eval_body ~symbols:ctx.symbols ~view:hide ~work
                  ~on_env:(fun _ -> raise Proved)
                  body;
                false
              with Proved -> true))
          rec_prs
      in
      let backward_prove () =
        let unproven : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
        let queue : (string * Relation.tuple) Queue.t = Queue.create () in
        Hashtbl.iter
          (fun pred srel ->
            let rel = Hashtbl.find heads pred in
            let c = Hashtbl.find counts_of pred in
            let arity = Relation.arity rel in
            Relation.iter
              (fun tup ->
                if Relation.mem rel tup then
                  match Relation.count_find c tup with
                  | Some cell when cell.Relation.exits = 0 ->
                    if Relation.add (delta_rel unproven pred ~arity) tup then
                      (* iteration hands out a reused buffer; the queue
                         outlives the probe *)
                      Queue.add (pred, Array.copy tup) queue
                  | Some _ | None -> ())
              srel)
          dec_touched;
        Hashtbl.reset dec_touched;
        if Queue.is_empty queue then None
        else begin
          let hide = overlay_view ~plus:no_overlay ~minus:unproven ctx.new_view in
          (* consumers of [tup]: each head the recursive rules derive
             through it in the current state *)
          let each_consumer pred tup f =
            let singleton = Relation.create ~arity:(Array.length tup) in
            ignore (Relation.add singleton tup);
            List.iter
              (fun pr ->
                let hpred = pr.rule.Ast.head.Ast.pred in
                List.iteri
                  (fun i lit ->
                    match lit with
                    | Ast.Pos a when a.Ast.pred = pred ->
                      Plan.exec_rule ~view:ctx.new_view ~delta:(i, singleton)
                        ~work ~on_derived:(f hpred) pr.ex
                    | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
                  pr.rule.Ast.body)
              rec_prs
          in
          (* once proven a tuple is exempt from re-tainting for the
             rest of this call: its proof ran against tuples visible at
             the time, and if one of those is removed later the
             removal's cascade re-suspects the dependents on the next
             outer round *)
          let proven : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
          let in_proven pred tup =
            match Hashtbl.find_opt proven pred with
            | Some r -> Relation.mem r tup
            | None -> false
          in
          while not (Queue.is_empty queue) do
            let pred, tup = Queue.pop queue in
            match Hashtbl.find_opt unproven pred with
            | Some u when Relation.mem u tup ->
              if provable ~hide pred tup then begin
                ignore (Relation.remove u tup);
                ignore
                  (Relation.add (delta_rel proven pred ~arity:(Array.length tup)) tup);
                (* a peer that failed only because [tup] was hidden
                   re-proves now that it isn't *)
                each_consumer pred tup (fun hpred h ->
                    match Hashtbl.find_opt unproven hpred with
                    | Some hu when Relation.mem hu h ->
                      Queue.add (hpred, Array.copy h) queue
                    | Some _ | None -> ())
              end
              else begin
                each_consumer pred tup (fun hpred h ->
                    let hrel = Hashtbl.find heads hpred in
                    if Relation.mem hrel h then
                      match Relation.count_find (Hashtbl.find counts_of hpred) h with
                      | Some cell
                        when cell.Relation.exits = 0 && not (in_proven hpred h) ->
                        if
                          Relation.add
                            (delta_rel unproven hpred ~arity:(Relation.arity hrel))
                            h
                        then Queue.add (hpred, Array.copy h) queue
                      | Some _ | None -> ())
              end
            | Some _ | None -> ()
          done;
          let deaths : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
          let any = ref false in
          Hashtbl.iter
            (fun pred u ->
              if Relation.cardinality u > 0 then begin
                any := true;
                let rel = Hashtbl.find heads pred in
                let c = Hashtbl.find counts_of pred in
                let arity = Relation.arity rel in
                Relation.iter
                  (fun tup ->
                    Relation.count_drop c tup;
                    ignore (Relation.remove rel tup);
                    record_remove d pred ~arity tup;
                    ignore (Relation.add (delta_rel deaths pred ~arity) tup))
                  u
              end)
            unproven;
          if !any then Some deaths else None
        end
      in
      let apply_births pending =
        let applied : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
        Hashtbl.iter
          (fun pred r ->
            if Relation.cardinality r > 0 then begin
              let rel = Hashtbl.find heads pred in
              let c = Hashtbl.find counts_of pred in
              let arity = Relation.arity rel in
              Relation.iter
                (fun tup ->
                  (* re-check: support queued earlier may have been
                     cancelled by later decrements *)
                  match Relation.count_find c tup with
                  | Some cell when Relation.count_total cell > 0 ->
                    if Relation.add rel tup then begin
                      record_add d pred ~arity tup;
                      ignore (Relation.add (delta_rel applied pred ~arity) tup)
                    end
                  | Some _ | None -> ())
                r
            end)
          pending;
        applied
      in
      let rec birth_rounds round =
        if tbl_live round then begin
          let pre = overlay_view ~plus:no_overlay ~minus:round ctx.new_view in
          enumerate_in_comp ~sign:1 ~round ~pre;
          (* increments only: settle can queue further births but can
             produce no deaths *)
          ignore (settle ());
          birth_rounds (apply_births (take_births ()))
        end
      in
      begin
        (* round 0: propagate the external update's signed deltas.
           Added tuples of a positive literal derive with sign +1 and
           removed with -1; for a negated literal the signs flip and
           the flipped-positive plan ranges over the change. Late
           positions read the old view — comp relations are untouched
           during the round, so old and new agree on them, exactly the
           "externals first" serialization. *)
        phase_begin ();
        List.iter
          (fun pr ->
            let r = pr.rule in
            let hpred = r.Ast.head.Ast.pred in
            let exit = not (rec_rule r) in
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when not (Hashtbl.mem comp_preds a.Ast.pred) ->
                  if nonempty d.added a.Ast.pred then
                    Plan.exec_rule ~view:ctx.new_view ~late_view:ctx.old_view
                      ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                      ~work ~on_derived:(bump hpred exit 1) pr.ex;
                  if nonempty d.removed a.Ast.pred then
                    Plan.exec_rule ~view:ctx.new_view ~late_view:ctx.old_view
                      ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                      ~work
                      ~on_derived:(bump hpred exit (-1))
                      pr.ex
                | Ast.Neg a ->
                  if nonempty d.added a.Ast.pred || nonempty d.removed a.Ast.pred
                  then begin
                    let _, fex = flipped_for pr i in
                    if nonempty d.added a.Ast.pred then
                      Plan.exec_rule ~view:ctx.new_view ~late_view:ctx.old_view
                        ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                        ~work
                        ~on_derived:(bump hpred exit (-1))
                        fex;
                    if nonempty d.removed a.Ast.pred then
                      Plan.exec_rule ~view:ctx.new_view ~late_view:ctx.old_view
                        ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                        ~work ~on_derived:(bump hpred exit 1) fex
                  end
                | Ast.Pos _ | Ast.Cmp _ -> ())
              r.Ast.body)
          prs;
        let deaths0 = settle () in
        phase_end Obs.Event.cnt_propagate;
        cascade_deaths deaths0;
        if recursive then begin
          let continue_bf = ref true in
          while !continue_bf do
            phase_begin ();
            let more = backward_prove () in
            phase_end Obs.Event.cnt_backward;
            match more with
            | None -> continue_bf := false
            | Some deaths -> cascade_deaths deaths
          done
        end;
        phase_begin ();
        birth_rounds (apply_births (take_births ()));
        phase_end Obs.Event.cnt_forward;
        Hashtbl.iter (fun _ rel -> Relation.counts_sync rel) heads
      end
    in
    (match ctx.strategy.(comp) with
    (* nothing upstream changed ⇒ no deltas can reach this component;
       skipping also avoids rebuilding stale counts nobody needs yet *)
    | Analyze.Counting -> if input_changed then run_phases_counting ()
    | Analyze.Dred -> (
      match shard_ctx with
      | Some sc when sc.nshards > 1 && Array.length prs_by_shard = sc.nshards ->
        run_phases_sharded sc
      | Some _ | None -> run_phases_serial ()));
    { comp; work = !work; output_changed = members_changed (); input_changed }

(* Every mutation a component's maintenance performs — store writes,
   delta recording, cascade staging — happens on the thread running
   this call (shard crew jobs only fill private buffers; merges run
   here), so one writer scope around the whole body is exactly the
   ownership granularity the sanitizer checks. *)
let process_comp ?ring ?shard_ctx ctx (pc : prepared_comp) =
  if ctx.sanitize then
    Relation.Sanitize.with_writer pc.tag (fun () ->
        process_comp_unsanitized ?ring ?shard_ctx ctx pc)
  else process_comp_unsanitized ?ring ?shard_ctx ctx pc

(* ---- report assembly -------------------------------------------- *)

let assemble_report ctx slots =
  (* components the parallel run never reached are provably untouched
     (no upstream delta, see [apply_parallel]); report them exactly as
     the serial walk would: zero work, nothing changed *)
  let activity =
    Stratify.scc_order ctx.anal
    |> Array.to_list
    |> List.map (fun c ->
           match slots.(c) with
           | Some a -> a
           | None ->
             { comp = c; work = 0; output_changed = false; input_changed = false })
  in
  let changes =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun pred r ->
        if Relation.cardinality r > 0 then
          Hashtbl.replace tbl pred (Relation.cardinality r, 0))
      ctx.d.added;
    Hashtbl.iter
      (fun pred r ->
        if Relation.cardinality r > 0 then begin
          let a = match Hashtbl.find_opt tbl pred with Some (a, _) -> a | None -> 0 in
          Hashtbl.replace tbl pred (a, Relation.cardinality r)
        end)
      ctx.d.removed;
    Hashtbl.fold (fun pred (added, removed) acc -> { pred; added; removed } :: acc) tbl []
    |> List.sort (fun a b -> String.compare a.pred b.pred)
  in
  { changes; activity; analysis = ctx.anal }

(* Tag every relation of every component — the store and its delta
   pair — with the owning component's writer tag, so that any mutation
   from outside that component's [process_comp] scope raises
   {!Relation.Sanitize.Violation}. Tags go on *after* the base updates
   (which legitimately run untagged, on the caller's thread) and come
   off in [with_sanitize]'s finally, leaving the database as reusable
   as the sanitizer found it. *)
let sanitize_tag_all ctx prepared =
  Array.iter
    (fun pc ->
      Array.iter
        (fun p ->
          let name = ctx.anal.Stratify.predicates.(p) in
          (match Database.find ctx.db name with
          | Some rel -> Relation.Sanitize.set_owner rel ~name ~owner:pc.tag
          | None -> ());
          (match Hashtbl.find_opt ctx.d.added name with
          | Some r -> Relation.Sanitize.set_owner r ~name:("+" ^ name) ~owner:pc.tag
          | None -> ());
          match Hashtbl.find_opt ctx.d.removed name with
          | Some r -> Relation.Sanitize.set_owner r ~name:("-" ^ name) ~owner:pc.tag
          | None -> ())
        pc.members)
    prepared

let sanitize_untag_all ctx =
  Array.iter
    (fun name ->
      (match Database.find ctx.db name with
      | Some rel -> Relation.Sanitize.clear_owner rel
      | None -> ());
      (match Hashtbl.find_opt ctx.d.added name with
      | Some r -> Relation.Sanitize.clear_owner r
      | None -> ());
      match Hashtbl.find_opt ctx.d.removed name with
      | Some r -> Relation.Sanitize.clear_owner r
      | None -> ())
    ctx.anal.Stratify.predicates

let with_sanitize ctx prepared f =
  if not ctx.sanitize then f ()
  else begin
    sanitize_tag_all ctx prepared;
    Fun.protect ~finally:(fun () -> sanitize_untag_all ctx) f
  end

let setup ?(shards = 1) ?sanitize ?on_warn ~engine ~maint db program ~additions
    ~deletions =
  let ctx = make_ctx ~shards ?sanitize ?on_warn ~engine ~maint db program in
  List.iter (check_edb ctx.anal) additions;
  List.iter (check_edb ctx.anal) deletions;
  apply_base_updates ctx ~additions ~deletions;
  prepare_deltas ctx;
  let n = Dag.Graph.node_count ctx.anal.Stratify.condensation.Dag.Scc.dag in
  (ctx, Array.init n (prepare_comp ~shards ctx))

(* the serial component walk, shared by [apply] and [apply_parallel]'s
   small-update fallback; records DRed phase spans on ring 0 *)
let run_serial_walk ~obs ?shard_ctx ctx prepared =
  let slots = Array.make (Array.length prepared) None in
  let ring = Obs.Trace.ring obs 0 in
  Array.iter
    (fun c -> slots.(c) <- Some (process_comp ~ring ?shard_ctx ctx prepared.(c)))
    (Stratify.scc_order ctx.anal);
  assemble_report ctx slots

let check_maint_engine ~who maint engine =
  match (maint, engine) with
  | Counting, Plan.Interpreted ->
    invalid_arg
      (who
     ^ ": counting maintenance requires the compiled engine (the interpretive \
        oracle has no split-view mode)")
  (* Auto resolves to DRed everywhere under the interpretive engine *)
  | (Counting | Dred | Auto), _ -> ()

let apply ?(engine = Plan.default_engine) ?(maint = Dred) ?sanitize ?on_warn
    ?(obs = Obs.Trace.disabled) db program ~additions ~deletions =
  check_maint_engine ~who:"Incremental.apply" maint engine;
  let ctx, prepared = setup ?sanitize ?on_warn ~engine ~maint db program ~additions ~deletions in
  with_sanitize ctx prepared (fun () -> run_serial_walk ~obs ctx prepared)

(* Build and stamp the counting side tables of every derived component
   against the database's current (materialized) contents — one full-
   join pass per rule. Callers run this once after {!Eval}
   materialization so the first [apply ~maint:Counting] update doesn't
   pay the rebuild inside the measured batch; skipping it is still
   correct, merely slower once. *)
let prime ?(engine = Plan.default_engine) db program =
  check_maint_engine ~who:"Incremental.prime" Counting engine;
  let ctx = make_ctx ~engine ~maint:Counting db program in
  let work = ref 0 in
  Array.iter
    (fun c ->
      let pc = prepare_comp ctx c in
      match pc.body with
      | Extensional | Aggregate_rule _ -> ()
      | Rules prs_by_shard ->
        ignore (recount_comp ctx pc prs_by_shard.(0) ~view:ctx.new_view ~work);
        Array.iter
          (fun p ->
            match Database.find ctx.db ctx.anal.Stratify.predicates.(p) with
            | Some rel -> Relation.counts_sync rel
            | None -> ())
          pc.members)
    (Stratify.scc_order ctx.anal);
  !work

(* ---- parallel maintenance over the multicore executor -----------

   One executor task per condensation component, running the exact
   serial [process_comp] body. Safety rests on two facts:

   - {e ownership}: a component task writes only its own predicates'
     relations and delta relations (every head predicate of its rules
     is a member); everything it reads — body predicates, through the
     views — is upstream or same-component in the dependency DAG.

   - {e quiescence by precedence}: the executor starts a task only
     after every *activated* ancestor completed. The trace below marks
     every edge changed (which inputs actually changed is only
     discovered as upstream tasks run, so the activation wavefront is
     conservative), hence a task's released state implies each of its
     ancestor chains from the initial set is fully completed: had any
     chain a first-incomplete node, that node would be activated and
     incomplete, and the scheduler would still be holding this task.
     Ancestors outside the wavefront never run and never touch their
     relations. Either way every upstream read observes settled state,
     with happens-before established by the scheduler's lock
     ({!Sched.Protected}) on the release path.

   The serial prologue above freezes all shared structure (plans
   compiled, delta tables pre-created, relations registered); the one
   remaining cross-component write — aggregate tasks interning fresh
   constants — is what {!Symbol}'s internal mutex is for.

   With [shards > 1] each component task additionally fans its phase
   rounds out over a {!Parallel.Shard_crew} (see [process_comp]); the
   crew is created once per update and shared — its entry mutex
   serializes fan-outs from concurrently running component tasks.

   When the conservative activation wavefront holds fewer than
   [serial_threshold] tasks, the executor's domain spawn-and-join
   costs more than the update itself (measured on the wide-48tc bench:
   0.87x at 2 domains for a 96-task trace on a small host); such
   updates run the plain serial walk instead — still sharded when
   [shards > 1]. *)

let serial_task_threshold = 8

(* Static ownership verification: the safety argument of the parallel
   driver — each component task writes only its own predicates, reads
   only upstream ones — checked against the effect sets of the plans
   that will actually run, instead of trusted by construction. Read
   sets come from {!Plan.exec_reads} over the precompiled plan stores
   (base, per-delta, flipped-negation variants), write sets from the
   rule heads; {!Analyze.check_ownership} decides against the
   condensation. Aggregate components have no plans; their single rule
   is checked from its body. *)
let verify_ownership ctx prepared =
  let union_reads acc reads =
    List.fold_left (fun acc p -> if List.mem p acc then acc else p :: acc) acc reads
  in
  Array.fold_left
    (fun acc (pc : prepared_comp) ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match pc.body with
        | Extensional -> Ok ()
        | Aggregate_rule r ->
          Analyze.check_ownership ctx.anal ~comp:pc.comp
            ~writes:[ r.Ast.head.Ast.pred ] ~reads:(Plan.body_reads r)
        | Rules prs_by_shard ->
          let writes, reads =
            Array.fold_left
              (fun acc prs ->
                List.fold_left
                  (fun (ws, rs) pr ->
                    let rs = union_reads rs (Plan.exec_reads pr.ex) in
                    let rs =
                      List.fold_left
                        (fun rs (_, _, fex) -> union_reads rs (Plan.exec_reads fex))
                        rs pr.flipped
                    in
                    let h = pr.rule.Ast.head.Ast.pred in
                    ((if List.mem h ws then ws else h :: ws), rs))
                  acc prs)
              ([], []) prs_by_shard
          in
          Analyze.check_ownership ctx.anal ~comp:pc.comp ~writes ~reads))
    (Ok ()) prepared

let apply_parallel ?(engine = Plan.default_engine) ?(maint = Dred) ?(domains = 4)
    ?(shards = 1) ?(serial_threshold = serial_task_threshold) ?sched ?sanitize
    ?on_warn ?(obs = Obs.Trace.disabled) db program ~additions ~deletions =
  if shards < 1 then invalid_arg "Incremental.apply_parallel: shards < 1";
  check_maint_engine ~who:"Incremental.apply_parallel" maint engine;
  if domains <= 1 && shards <= 1 then
    apply ~engine ~maint ?sanitize ?on_warn ~obs db program ~additions ~deletions
  else begin
    (match engine with
    | Plan.Compiled -> ()
    | Plan.Interpreted ->
      invalid_arg
        "Incremental.apply_parallel: the interpretive oracle is not domain-safe; \
         use the compiled engine");
    let sched = match sched with Some s -> s | None -> Sched.Level_based.factory in
    let ctx, prepared =
      setup ~shards ?sanitize ?on_warn ~engine ~maint db program ~additions ~deletions
    in
    Array.iter precompile_comp prepared;
    with_sanitize ctx prepared @@ fun () ->
    match verify_ownership ctx prepared with
    | Error msg ->
      (* a plan set reaching outside its declared ownership would make
         parallel dispatch unsound: refuse it and run serially, which
         needs no ownership at all *)
      ctx.on_warn
        ("apply_parallel: static ownership verification failed — " ^ msg
       ^ "; refusing parallel dispatch, running the serial walk");
      run_serial_walk ~obs ctx prepared
    | Ok () ->
    let cond = ctx.anal.Stratify.condensation in
    let g = cond.Dag.Scc.dag in
    let n = Dag.Graph.node_count g in
    (* initial tasks: extensional components whose base facts changed *)
    let initial =
      Array.to_list (Array.init n Fun.id)
      |> List.filter (fun c ->
             let members = cond.Dag.Scc.members.(c) in
             Array.for_all (fun p -> ctx.anal.Stratify.edb.(p)) members
             && Array.exists
                  (fun p ->
                    let name = ctx.anal.Stratify.predicates.(p) in
                    nonempty ctx.d.added name || nonempty ctx.d.removed name)
                  members)
      |> Array.of_list
    in
    if Array.length initial = 0 then assemble_report ctx (Array.make n None)
    else begin
      let kind = Array.make n Workload.Trace.Task in
      let shape = Array.make n (Workload.Trace.Seq 1.0) in
      let edge_changed = Array.make (Dag.Graph.edge_count g) true in
      let trace =
        Workload.Trace.create ~name:"dred-parallel" ~graph:g ~kind ~shape ~initial
          ~edge_changed
      in
      (* active tasks under the conservative all-edges-changed
         wavefront — an upper bound on how many component tasks the
         executor could run for this update *)
      let active =
        let s = Workload.Trace.stats trace in
        s.Workload.Trace.initial_tasks + s.Workload.Trace.active_jobs
      in
      let with_shard_ctx f =
        if shards <= 1 then f None
        else begin
          let crew = Parallel.Shard_crew.create ~shards in
          Fun.protect
            ~finally:(fun () -> Parallel.Shard_crew.shutdown crew)
            (fun () ->
              let shard_rings =
                (* crew worker [j] (= shard j, j >= 1) owns the ring
                   after the executor workers' *)
                Array.init shards (fun s ->
                    if s = 0 then Obs.Ring.null
                    else Obs.Trace.ring obs (max 1 domains + s - 1))
              in
              f (Some { crew; nshards = shards; shard_rings }))
        end
      in
      with_shard_ctx (fun shard_ctx ->
          if domains <= 1 || active < serial_threshold then
            run_serial_walk ~obs ?shard_ctx ctx prepared
          else begin
            let slots = Array.make n None in
            let run_task ~wid c =
              slots.(c) <-
                Some
                  (process_comp ~ring:(Obs.Trace.ring obs wid) ?shard_ctx ctx
                     prepared.(c))
            in
            ignore
              (Parallel.Executor.run ~domains ~work_unit:0.0 ~run_task ~obs ~sched
                 trace);
            assemble_report ctx slots
          end)
    end
  end
