lib/datalog/eval.mli: Ast Database Stratify
