(* Bounded model checker for Vatomic programs.

   Runs every process of a scenario as an effect-suspended fiber on a
   single domain. The [analysis]-profile {!Prelude.Vatomic} reports
   each shared operation through {!Prelude.Vhook} *before* performing
   it; the installed hook performs {!Step}, which suspends the fiber
   and hands the checker its continuation plus a description of the
   pending operation. The checker therefore always knows every
   process's next shared access, decides who moves, and resumes that
   fiber — the memory operation then executes for real (the Vatomic
   cells are backed by actual atomics) before the fiber runs on to its
   next shared access. One decision sequence = one interleaving,
   deterministic and replayable from its schedule string.

   Exploration is a stateless depth-first search: each run re-executes
   the scenario from a fresh instantiation following the recorded
   prefix of choices, then extends it with a non-preemptive default
   policy. Three prunings keep it bounded:

   - preemption bound: switching away from a process that is still
     runnable costs one preemption; runs may spend at most
     [preemption_bound] of them (Musuvathi & Qadeer's iterative
     context bounding — most concurrency bugs need very few);
   - sleep sets (Godefroid): after a subtree rooted at choice [p] is
     fully explored, [p] sleeps in the sibling subtrees until some
     dependent operation (same location, at least one write) executes,
     eliminating interleavings that only commute independent steps —
     the DPOR-lite of the issue;
   - spin futility: a CAS that would fail, retried by the same process
     immediately after it already failed on the same location, cannot
     change anything; the process is considered blocked until another
     process writes that location. This makes spinlock acquire loops
     (Wbuf) explorable without unrolling unbounded failed spins, while
     leaving one-shot CAS failure handling (executor activation races)
     fully explored.

   A vector-clock happens-before checker rides along on the same
   stream of operations: atomic accesses synchronize (SC, as OCaml
   atomics are), plain [Vatomic.Plain] accesses are checked for
   unordered conflicts and reported as races. *)

module Vhook = Prelude.Vhook

type _ Effect.t += Step : Vhook.info -> unit Effect.t

type scenario = {
  name : string;
  nprocs : int;
  instantiate : unit -> (int -> unit) * (unit -> unit);
}

type violation_kind = Assertion | Race | Deadlock | Step_budget | Replay_divergence

let pp_violation_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Assertion -> "assertion"
    | Race -> "race"
    | Deadlock -> "deadlock"
    | Step_budget -> "step-budget"
    | Replay_divergence -> "replay-divergence")

type violation = { vkind : violation_kind; message : string; schedule : string }

type stats = {
  mutable executions : int;  (* runs that reached a final state *)
  mutable cut_sleep : int;  (* runs pruned by sleep sets *)
  mutable cut_bound : int;  (* runs cut by the preemption bound *)
  mutable transitions : int;
  mutable max_depth : int;
  mutable capped : bool;  (* stopped at the execution budget *)
}

type outcome = { stats : stats; violation : violation option }

let new_stats () =
  {
    executions = 0;
    cut_sleep = 0;
    cut_bound = 0;
    transitions = 0;
    max_depth = 0;
    capped = false;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d executions (%d sleep-set cuts, %d bound cuts, %d transitions, depth <= %d)%s"
    s.executions s.cut_sleep s.cut_bound s.transitions s.max_depth
    (if s.capped then " [CAPPED]" else "")

(* ---- per-run machinery ---------------------------------------- *)

type pstate =
  | Pending of (unit, unit) Effect.Deep.continuation * Vhook.info
  | Finished

exception Abort_run

type runtime = {
  states : pstate option array;  (* None until started *)
  mutable cur : int;
  mutable crashed : (int * exn) option;
  mutable aborting : bool;
  (* spin futility: [Some loc] when the process's last executed
     operation was a CAS on [loc] that failed *)
  spin_sig : int option array;
  (* happens-before state *)
  clocks : Vclock.t array;
  sync_clock : (int, Vclock.t) Hashtbl.t;
  plain_clock : (int, Vclock.t * Vclock.t) Hashtbl.t;  (* writes, reads *)
  mutable race : string option;
  trace : Buffer.t;
}

let make_runtime n =
  {
    states = Array.make n None;
    cur = -1;
    crashed = None;
    aborting = false;
    spin_sig = Array.make n None;
    clocks = Array.init n (fun _ -> Vclock.make n);
    sync_clock = Hashtbl.create 64;
    plain_clock = Hashtbl.create 64;
    race = None;
    trace = Buffer.create 64;
  }

let run_segment rt p f =
  rt.cur <- p;
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> rt.states.(rt.cur) <- Some Finished);
      exnc =
        (fun e ->
          rt.states.(rt.cur) <- Some Finished;
          if not rt.aborting then
            if rt.crashed = None then rt.crashed <- Some (rt.cur, e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Step info ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                rt.states.(rt.cur) <- Some (Pending (k, info)))
          | _ -> None);
    }

let start_proc rt p body = run_segment rt p (fun () -> body p)

let resume rt p =
  match rt.states.(p) with
  | Some (Pending (k, _)) ->
    rt.cur <- p;
    Effect.Deep.continue k ()
  | _ -> invalid_arg "Mc.resume: process has no pending operation"

(* Kill every still-suspended fiber so its stack unwinds (Fun.protect
   style cleanup in scenario code, if any, runs). A discontinued fiber
   may in principle perform further steps before dying; loop with a
   small fuel budget. *)
let abort_run rt =
  rt.aborting <- true;
  let fuel = ref 1000 in
  let rec kill p =
    if !fuel > 0 then
      match rt.states.(p) with
      | Some (Pending (k, _)) ->
        decr fuel;
        rt.cur <- p;
        (try Effect.Deep.discontinue k Abort_run with _ -> ());
        kill p
      | _ -> ()
  in
  Array.iteri (fun p _ -> kill p) rt.states

let is_write = function
  | Vhook.Awrite | Vhook.Aupdate | Vhook.Pwrite -> true
  | Vhook.Aread | Vhook.Pread | Vhook.Racy_read -> false

let dependent (a : Vhook.info) (b : Vhook.info) =
  a.Vhook.loc = b.Vhook.loc && (is_write a.Vhook.kind || is_write b.Vhook.kind)

(* A process is runnable when it has a pending operation that is not a
   futile respin of a CAS that just failed on an unchanged location. *)
let runnable rt p =
  match rt.states.(p) with
  | Some (Pending (_, info)) -> (
    match (info.Vhook.kind, rt.spin_sig.(p)) with
    | Vhook.Aupdate, Some loc when loc = info.Vhook.loc -> not (info.Vhook.futile ())
    | _ -> true)
  | _ -> false

let pending_info rt p =
  match rt.states.(p) with Some (Pending (_, info)) -> Some info | _ -> None

(* Happens-before bookkeeping for the operation [info] about to be
   executed by [p]. [will_fail] tells whether a CAS is about to fail
   (it then synchronizes only as a read). Atomic accesses are treated
   as fully synchronizing (join both ways), which matches OCaml's
   SC-for-atomics model; plain accesses are race-checked against the
   location's write/read clocks, FastTrack-style. *)
let hb_step rt p (info : Vhook.info) ~will_fail =
  let c = rt.clocks.(p) in
  let n = Vclock.size c in
  let sync_acquire loc =
    match Hashtbl.find_opt rt.sync_clock loc with
    | Some l -> Vclock.join ~into:c l
    | None -> ()
  in
  let sync_release loc = Hashtbl.replace rt.sync_clock loc (Vclock.copy c) in
  let plain_state loc =
    match Hashtbl.find_opt rt.plain_clock loc with
    | Some ws -> ws
    | None ->
      let ws = (Vclock.make n, Vclock.make n) in
      Hashtbl.add rt.plain_clock loc ws;
      ws
  in
  let report kind q =
    if rt.race = None then
      rt.race <-
        Some
          (Printf.sprintf "plain %s of location %d by P%d races with P%d" kind
             info.Vhook.loc p q)
  in
  (match info.Vhook.kind with
  | Vhook.Aread -> sync_acquire info.Vhook.loc
  | Vhook.Awrite ->
    sync_acquire info.Vhook.loc;
    Vclock.tick c p;
    sync_release info.Vhook.loc
  | Vhook.Aupdate ->
    sync_acquire info.Vhook.loc;
    if not will_fail then begin
      Vclock.tick c p;
      sync_release info.Vhook.loc
    end
  | Vhook.Pread ->
    let w, r = plain_state info.Vhook.loc in
    for q = 0 to n - 1 do
      if q <> p && Vclock.get w q > Vclock.get c q then report "read" q
    done;
    Vclock.tick c p;
    Vclock.set r p (Vclock.get c p)
  | Vhook.Pwrite ->
    let w, r = plain_state info.Vhook.loc in
    for q = 0 to n - 1 do
      if q <> p && (Vclock.get w q > Vclock.get c q || Vclock.get r q > Vclock.get c q)
      then report "write" q
    done;
    Vclock.tick c p;
    Vclock.set w p (Vclock.get c p)
  | Vhook.Racy_read ->
    (* intentionally unsynchronized: no race check, no edges *)
    ());
  ()

(* Execute process [p]'s pending operation: account for it, resume the
   fiber (the real memory operation happens now), record the decision. *)
let execute rt p =
  (match pending_info rt p with
  | Some info ->
    let will_fail =
      info.Vhook.kind = Vhook.Aupdate && info.Vhook.futile ()
    in
    hb_step rt p info ~will_fail;
    rt.spin_sig.(p) <- (if will_fail then Some info.Vhook.loc else None)
  | None -> invalid_arg "Mc.execute: no pending operation");
  Buffer.add_char rt.trace (Char.chr (Char.code '0' + p));
  resume rt p

let schedule_of rt = Buffer.contents rt.trace

(* ---- one run under a choice policy ----------------------------- *)

type run_end =
  | Run_done  (* every process finished; final check passed *)
  | Run_cut_sleep
  | Run_cut_bound
  | Run_violation of violation_kind * string

(* Shared driver: [choose] picks the next process among the runnable
   ones (already filtered); it may also cut the run. *)
let drive scenario ~max_steps ~(choose : runtime -> step:int -> int list -> int option)
    ~(cut : run_end option ref) =
  let body, finish = scenario.instantiate () in
  let rt = make_runtime scenario.nprocs in
  let finished = ref None in
  let old_hook = !Vhook.hook in
  Vhook.hook := (fun info -> Effect.perform (Step info));
  Vhook.active := true;
  Fun.protect
    ~finally:(fun () ->
      Vhook.active := false;
      Vhook.hook := old_hook;
      abort_run rt)
    (fun () ->
      for p = 0 to scenario.nprocs - 1 do
        start_proc rt p body
      done;
      let step = ref 0 in
      while !finished = None do
        (match rt.crashed with
        | Some (p, e) ->
          finished :=
            Some
              (Run_violation
                 (Assertion, Printf.sprintf "P%d raised %s" p (Printexc.to_string e)))
        | None -> (
          match rt.race with
          | Some msg -> finished := Some (Run_violation (Race, msg))
          | None ->
            let pending =
              List.filter
                (fun p -> match rt.states.(p) with Some (Pending _) -> true | _ -> false)
                (List.init scenario.nprocs Fun.id)
            in
            let candidates = List.filter (runnable rt) pending in
            if pending = [] then begin
              (* all processes returned: final invariant check, with
                 the hook off so it reads raw values *)
              Vhook.active := false;
              (match finish () with
              | () -> finished := Some Run_done
              | exception e ->
                finished :=
                  Some
                    (Run_violation
                       ( Assertion,
                         Printf.sprintf "final check failed: %s" (Printexc.to_string e)
                       )));
              Vhook.active := true
            end
            else if candidates = [] then
              finished :=
                Some
                  (Run_violation
                     ( Deadlock,
                       Printf.sprintf "all of %d pending processes are blocked spinning"
                         (List.length pending) ))
            else if !step >= max_steps then
              finished :=
                Some
                  (Run_violation
                     (Step_budget, Printf.sprintf "no final state within %d steps" max_steps))
            else begin
              match choose rt ~step:!step candidates with
              | None -> finished := Some (match !cut with Some c -> c | None -> Run_cut_sleep)
              | Some p ->
                execute rt p;
                incr step
            end));
        ()
      done;
      (rt, match !finished with Some e -> e | None -> assert false))

(* ---- exhaustive DFS with preemption bound and sleep sets -------- *)

type frame = {
  mutable chosen : int;
  mutable done_ : int list;  (* fully explored choices at this node *)
  mutable candidates : int list;
  mutable sleep : int list;  (* sleep set on entry (path-determined) *)
  mutable preempts : int;  (* preemptions spent before this node *)
  mutable prev : int;  (* process that moved at the previous step *)
}

let explore ?preemption_bound ?(sleep_sets = preemption_bound = None)
    ?(max_steps = 5000) ?(max_execs = 1_000_000) scenario =
  (* Sleep sets and preemption bounding are each sound alone but not
     together: a sleeping process is redundant only because an
     equivalent schedule (its op commuted leftward) lies in an already
     explored subtree — under a bound that representative may itself
     have been bound-cut, so pruning on top of bounding can miss
     behaviours reachable within the bound (cf. bounded partial-order
     reduction). Hence the default pairing: unbounded exploration uses
     sleep sets (exhaustive up to Mazurkiewicz-trace equivalence),
     bounded exploration disables them (exhaustive for <= bound
     preemptions). Passing both explicitly is allowed for experiments
     but is a heuristic, not exhaustive. *)
  let preemption_bound =
    match preemption_bound with Some b -> b | None -> max_int
  in
  let stats = new_stats () in
  let frames : frame Prelude.Vec.t =
    Prelude.Vec.create
      ~dummy:{ chosen = -1; done_ = []; candidates = []; sleep = []; preempts = 0; prev = -1 }
      ()
  in
  let violation = ref None in
  let stop = ref false in
  while not !stop do
    (* one run following the frame prefix, extending with the default
       non-preemptive policy; live sleep set recomputed along the way *)
    let live_sleep = ref [] in
    let cut = ref None in
    let choose rt ~step candidates =
      let frame_opt =
        if step < Prelude.Vec.length frames then Some (Prelude.Vec.get frames step)
        else None
      in
      let prev =
        if step = 0 then -1
        else (Prelude.Vec.get frames (step - 1)).chosen
      in
      let preempts =
        if step = 0 then 0
        else
          let pf = Prelude.Vec.get frames (step - 1) in
          pf.preempts
          + if pf.prev >= 0 && pf.chosen <> pf.prev && List.mem pf.prev pf.candidates then 1 else 0
      in
      let sleep = !live_sleep in
      let choice =
        match frame_opt with
        | Some f ->
          (* follow the prefix; refresh the recorded context (it is
             deterministic, but [done_] may have grown) *)
          f.candidates <- candidates;
          f.sleep <- sleep;
          f.preempts <- preempts;
          f.prev <- prev;
          Some f.chosen
        | None ->
          let asleep = List.rev_append sleep [] in
          let eligible =
            List.filter (fun p -> not (List.mem p asleep)) candidates
          in
          let affordable p =
            let cost = if prev >= 0 && p <> prev && List.mem prev candidates then 1 else 0 in
            preempts + cost <= preemption_bound
          in
          let eligible_b = List.filter affordable eligible in
          let pick =
            if List.mem prev eligible_b then Some prev
            else (match eligible_b with [] -> None | p :: _ -> Some p)
          in
          (match pick with
          | None ->
            cut := Some (if eligible = [] then Run_cut_sleep else Run_cut_bound);
            None
          | Some p ->
            Prelude.Vec.push frames
              { chosen = p; done_ = []; candidates; sleep; preempts; prev };
            Some p)
      in
      (match choice with
      | Some p when sleep_sets ->
        (* the sleep set below this node: the inherited sleepers plus
           this node's fully explored siblings (classic sleep sets:
           [done_] choices are redundant in the remaining subtrees),
           minus anyone whose pending op depends on the op about to
           execute — those represent genuinely different interleavings
           again *)
        let f = Prelude.Vec.get frames step in
        let base = List.rev_append f.done_ sleep in
        let op = match pending_info rt p with Some i -> i | None -> assert false in
        live_sleep :=
          List.filter
            (fun q ->
              q <> p
              &&
              match pending_info rt q with
              | Some oq -> not (dependent op oq)
              | None -> false)
            base
      | _ -> ());
      choice
    in
    let _rt, run_end = drive scenario ~max_steps ~choose ~cut in
    stats.max_depth <- max stats.max_depth (Prelude.Vec.length frames);
    stats.transitions <- stats.transitions + Prelude.Vec.length frames;
    (match run_end with
    | Run_done -> stats.executions <- stats.executions + 1
    | Run_cut_sleep -> stats.cut_sleep <- stats.cut_sleep + 1
    | Run_cut_bound -> stats.cut_bound <- stats.cut_bound + 1
    | Run_violation (vkind, message) ->
      violation := Some { vkind; message; schedule = schedule_of _rt };
      stop := true);
    if not !stop then begin
      if stats.executions + stats.cut_sleep + stats.cut_bound >= max_execs then begin
        stats.capped <- true;
        stop := true
      end
      else begin
        (* backtrack: deepest frame with an unexplored admissible
           sibling *)
        let rec backtrack () =
          if Prelude.Vec.length frames = 0 then stop := true
          else begin
            let i = Prelude.Vec.length frames - 1 in
            let f = Prelude.Vec.get frames i in
            f.done_ <- f.chosen :: f.done_;
            let excluded = List.rev_append f.sleep f.done_ in
            let affordable p =
              let cost =
                if f.prev >= 0 && p <> f.prev && List.mem f.prev f.candidates then 1
                else 0
              in
              f.preempts + cost <= preemption_bound
            in
            let alts =
              List.filter
                (fun p -> (not (List.mem p excluded)) && affordable p)
                f.candidates
            in
            match alts with
            | a :: _ -> f.chosen <- a
            | [] ->
              ignore (Prelude.Vec.pop frames);
              backtrack ()
          end
        in
        backtrack ()
      end
    end
  done;
  { stats; violation = !violation }

(* ---- random walk ------------------------------------------------ *)

let random_walk ?(seed = 1) ?(walks = 200) ?(max_steps = 5000) scenario =
  let rng = Prelude.Rng.create seed in
  let stats = new_stats () in
  let violation = ref None in
  let w = ref 0 in
  while !w < walks && !violation = None do
    incr w;
    let cut = ref None in
    let choose _rt ~step:_ candidates =
      Some (List.nth candidates (Prelude.Rng.int rng (List.length candidates)))
    in
    let rt, run_end = drive scenario ~max_steps ~choose ~cut in
    stats.transitions <- stats.transitions + Buffer.length rt.trace;
    stats.max_depth <- max stats.max_depth (Buffer.length rt.trace);
    (match run_end with
    | Run_done -> stats.executions <- stats.executions + 1
    | Run_cut_sleep | Run_cut_bound -> ()
    | Run_violation (vkind, message) ->
      violation := Some { vkind; message; schedule = schedule_of rt })
  done;
  { stats; violation = !violation }

(* ---- deterministic replay --------------------------------------- *)

let replay ?(max_steps = 5000) scenario schedule =
  let cut = ref None in
  let choose _rt ~step candidates =
    if step >= String.length schedule then None
    else
      let p = Char.code schedule.[step] - Char.code '0' in
      if List.mem p candidates then Some p
      else begin
        cut :=
          Some
            (Run_violation
               ( Replay_divergence,
                 Printf.sprintf "step %d: P%d is not runnable (schedule %S)" step p
                   schedule ));
        None
      end
  in
  let rt, run_end = drive scenario ~max_steps ~choose ~cut in
  match run_end with
  | Run_done -> None
  | Run_cut_sleep | Run_cut_bound ->
    (* the schedule string ran out before the run finished: that is a
       divergence unless it was cut deliberately *)
    Some
      {
        vkind = Replay_divergence;
        message =
          Printf.sprintf "schedule %S exhausted after %d steps without a final state"
            schedule (Buffer.length rt.trace);
        schedule = schedule_of rt;
      }
  | Run_violation (vkind, message) -> Some { vkind; message; schedule = schedule_of rt }
