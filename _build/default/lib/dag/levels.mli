(** Node levels (paper, Section II-B).

    The level of a node is the maximum number of edges on any path from
    any source node to it; sources have level 0. This is the entire
    precomputed state of the LevelBased scheduler: O(V+E) time, O(V)
    space (Theorem 2). *)

val compute : Graph.t -> int array
(** Longest-path DP over a topological order.
    @raise Invalid_argument on a cyclic graph. *)

val compute_by_peeling : Graph.t -> int array
(** The formulation of Section VI-A: repeatedly assign level [l] to all
    in-degree-zero nodes, delete them, increment [l]. Agrees with
    [compute] on every DAG (property-tested); kept as an executable
    specification. @raise Invalid_argument on a cyclic graph. *)

val max_level : int array -> int
(** Highest level present; [-1] for an empty graph. The paper's [L] is
    the number of levels, i.e. [max_level + 1]. *)

val count : int array -> int
(** The paper's [L]: number of distinct level values, [max_level + 1]. *)

val histogram : int array -> int array
(** [histogram levels].(l) = number of nodes at level [l]. *)

val check : Graph.t -> int array -> bool
(** Validity: sources at 0; for every edge (u,v), level v > level u; and
    every non-source node has a predecessor exactly one level below. *)
