(** Materialized relations: sets of interned tuples with lazy per-column
    hash indexes for join probing. *)

type tuple = int array

type t

val create : arity:int -> t

val arity : t -> int

val cardinality : t -> int

val mem : t -> tuple -> bool

val add : t -> tuple -> bool
(** [true] iff the tuple was new. Invalidates indexes incrementally. *)

val remove : t -> tuple -> bool
(** [true] iff the tuple was present. *)

val iter : (tuple -> unit) -> t -> unit
(** Iteration walks live hashtable state, so the relation must not be
    mutated while a walk is in progress (callers buffer derived updates
    and apply them afterwards — see {!Plan.exec_rule_deferred}). A
    best-effort version check raises [Invalid_argument] when a callback
    mutates the iterated relation, instead of silently skipping tuples
    when a resize relinks buckets mid-walk. The same contract applies to
    {!fold}, {!iter_matching} and {!fold_matching}. *)

val fold : ('acc -> tuple -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> tuple list

val copy : t -> t

val clear : t -> unit

val iter_matching : t -> col:int -> value:int -> (tuple -> unit) -> unit
(** Apply a function to every tuple whose [col]th component equals
    [value]; O(matches) via a lazily-built index kept consistent under
    [add]/[remove], with no per-probe allocation. The tuples handed out
    are the relation's own arrays: callers must not mutate them and must
    copy before retaining (as {!add} does). The callback must not mutate
    the probed relation (see {!iter}); raises [Invalid_argument] if it
    does. *)

val fold_matching : t -> col:int -> value:int -> ('acc -> tuple -> 'acc) -> 'acc -> 'acc
(** Fold variant of {!iter_matching}. *)

val prepare : ?cols:int list -> t -> unit
(** Eagerly finalize the per-column probe indexes ([cols], default all
    columns) before the relation is shared read-only across domains.
    Lazy builds are themselves safe to race — a probe that finds no
    index constructs one fully and publishes it atomically, so a
    sibling domain sees either nothing or a finished index — but eager
    preparation avoids sibling readers duplicating the build work.
    @raise Invalid_argument on an out-of-range column. *)

val find : t -> col:int -> value:int -> tuple list
(** Tuples whose [col]th component equals [value]. Compatibility wrapper
    over {!fold_matching}: allocates the result list; probe loops should
    use {!iter_matching}. *)

val choose_probe_col : t -> bound:(int -> bool) -> int option
(** Some column index on which a probe makes sense: the first column
    for which [bound] is true. *)

(** {2 Derivation counts}

    Per-tuple derivation counts for {!Incremental}'s counting
    maintenance engine, held in a side table next to the tuple store:
    the non-counting path ([add]/[remove]/[mem]/probes) never touches
    them, so DRed maintenance pays nothing for their existence. Counts
    are split per tuple into [exits] — derivations by {e exit} rules
    (no body atom in the head's own SCC, hence acyclic support) — and
    [recs], derivations by recursive rules; the counting engine's
    backward phase uses the split to skip exit-supported tuples.

    [level] and [low] form the {e well-founded support index}. [level]
    is the stratified-fixpoint round of the tuple's first well-founded
    derivation (Soufflé's [@iteration]): [0] for exit-supported
    tuples, [r >= 1] for tuples first leveled in recursive round [r],
    [max_int] for "unknown". Levels are immutable once assigned:
    lowering one retroactively changes how later derivation deaths
    classify against it, which can leave [low] overcounting. [low]
    counts the surviving recursive derivations whose supporter is
    known to sit at a strictly lower level — it may undercount
    (derivations with unknown supporters are never counted) but never
    overcounts, so [exits = 0 && low > 0] soundly exempts a
    deletion-suspect from the full backward re-proof.

    Staleness is detected by version stamp: {!counts_sync} records the
    relation version the counts were made consistent with, and any
    later mutation outside the counting engine (which bumps the
    version) makes {!counts_synced} return [None], forcing a rebuild
    instead of trusting stale counts. {!clear} drops the side table.

    Cells are partitioned into [shards] tables by {!shard_of_tuple} on
    key column 0 — the same pure hash the {!Sharded} tuple stores use —
    so sharded counting rounds route cell traffic shard-locally;
    {!counts_iter} walks shards in index order 0..k-1, keeping
    iteration canonical regardless of insertion interleaving. *)

type count_cell = {
  mutable exits : int;
  mutable recs : int;
  mutable level : int;
  mutable low : int;
  mutable debt : int;
      (** backward-phase scratch: how many of [low]'s entries were
          condemned by the running backward call. Always zero between
          calls — the phase resets what it filed. In the cell rather
          than a side ledger so the O(1) well-foundedness check
          ([exits = 0 && low - debt > 0]) is pure field arithmetic. *)
}

type counts

val counts_create : ?shards:int -> unit -> counts
(** A free-standing count table (starts unsynced) with [shards]
    (default 1) cell partitions; used for scratch accumulation of
    signed count deltas. @raise Invalid_argument when [shards < 1]. *)

val counts_attach : ?shards:int -> t -> counts
(** Replace the relation's count table with a fresh empty one (not yet
    synced) and return it. *)

val counts_detach : t -> unit

val counts_synced : t -> counts option
(** The attached count table, but only if it was synced at the
    relation's current version; [None] when absent or stale. *)

val counts_sync : t -> unit
(** Stamp the attached count table as consistent with the relation's
    current contents. No-op when no table is attached. *)

val counts_shards : counts -> int
(** Number of cell partitions the table was created with. *)

val count_cell : counts -> tuple -> count_cell
(** Find or create the cell for a tuple (counts zero, [level = max_int],
    [low = 0]); the key is copied on insert, as in {!add}. *)

val count_find : counts -> tuple -> count_cell option

val count_total : count_cell -> int
(** [exits + recs]. *)

val count_drop : counts -> tuple -> unit

val counts_iter : (tuple -> count_cell -> unit) -> counts -> unit
(** Walks cell partitions in index order 0..k-1. *)

val counts_cardinality : counts -> int

(** {2 Sharding}

    Hash partitioning for intra-component parallel maintenance: tuples
    are assigned to one of [k] shards by an FNV-1a mix of a single key
    column, a pure function of the tuple — identical on every domain
    and every run. *)

val shard_of_value : shards:int -> int -> int
(** [shard_of_value ~shards v] is the shard of key element [v], in
    [0 .. shards-1] ([0] when [shards <= 1]). *)

val shard_of_tuple : col:int -> shards:int -> tuple -> int
(** Shard of a tuple by its [col]th element (clamped to column 0 when
    out of range; nullary tuples map to shard 0). *)

type relation = t

(** {2 Write-set sanitizer}

    Debug-mode runtime enforcement of the ownership discipline that
    {!Analyze.check_ownership} verifies statically: maintenance tags
    each relation with its owning task's string, tasks run inside
    {!Sanitize.with_writer} scopes, and every mutation
    ([add]/[remove]/[clear] — including no-op writes, since a task
    reaching for a foreign relation is a bug regardless of outcome)
    checks tag against the current scope. The scope lives in
    domain-local storage, so checks work unchanged when tasks run on
    worker domains. Untagged relations (the default) pay one field read
    per mutation. *)

module Sanitize : sig
  exception Violation of string
  (** Raised by a mutation of an owned relation from outside a matching
      writer scope; the message names the relation, its owner and the
      offending writer. *)

  val set_owner : relation -> name:string -> owner:string -> unit

  val clear_owner : relation -> unit

  val owner : relation -> string option

  val writer : unit -> string option
  (** The current domain's active writer tag, if any. *)

  val with_writer : string -> (unit -> 'a) -> 'a
  (** Run [f] with the current domain's writer tag set; restores the
      previous tag on exit (scopes nest). *)
end

module Sharded : sig
  (** A relation partitioned into [shards] sub-stores by
      {!shard_of_tuple} on column 0. Shard task [s] owns exactly
      [shard t s]; the coordinator merges shards in index order
      0..k-1, so iteration and merge order are canonical and
      run-to-run deterministic. *)

  type t

  val create : arity:int -> shards:int -> t
  (** @raise Invalid_argument when [shards < 1]. *)

  val shards : t -> int

  val shard : t -> int -> relation
  (** The [s]th sub-store (a plain relation usable as a semi-naive
      delta). @raise Invalid_argument on an out-of-range index. *)

  val owner : t -> tuple -> int
  (** The shard index {!add} would route this tuple to. *)

  val add : t -> tuple -> bool
  (** Route by key hash into the owning sub-store; [true] iff new. *)

  val mem : t -> tuple -> bool

  val cardinality : t -> int

  val iter : (tuple -> unit) -> t -> unit
  (** Canonical order: every tuple of shard 0, then shard 1, … *)

  val merge_into : t -> relation -> int
  (** Add every tuple into [dst] in canonical shard order; returns the
      number of tuples that were new to [dst]. *)
end
