lib/sched/registry.mli: Intf
