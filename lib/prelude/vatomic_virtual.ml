(* Vatomic, analysis implementation (dune profile [analysis]).

   Structurally the same interface as [vatomic_real.ml], but every
   operation first reports itself through {!Vhook}. When the model
   checker is driving ([Vhook.active]), the installed hook performs an
   effect that suspends the calling fiber; the real memory operation
   below the hook call executes only when the checker's scheduler
   resumes it. Because the checker runs all fibers on one domain, the
   "atomic" backing operations are then trivially serialized in
   exactly the order the checker chose — which is what makes a
   recorded schedule replayable bit-for-bit.

   When no checker is active (e.g. the regular test suite compiled
   under this profile), every operation degrades to the real atomic
   plus one predictable branch on [Vhook.active]. *)

type 'a t = { v : 'a Stdlib.Atomic.t; id : int }

let instrumented = true

let make v = { v = Stdlib.Atomic.make v; id = Vhook.fresh_loc () }

let get t =
  Vhook.note t.id Vhook.Aread;
  Stdlib.Atomic.get t.v

let set t x =
  Vhook.note t.id Vhook.Awrite;
  Stdlib.Atomic.set t.v x

let exchange t x =
  Vhook.note t.id Vhook.Aupdate;
  Stdlib.Atomic.exchange t.v x

let compare_and_set t expected desired =
  Vhook.note_cas t.id (fun () -> Stdlib.Atomic.get t.v != expected);
  Stdlib.Atomic.compare_and_set t.v expected desired

let fetch_and_add t d =
  Vhook.note t.id Vhook.Aupdate;
  Stdlib.Atomic.fetch_and_add t.v d

let incr t = ignore (fetch_and_add t 1)

let decr t = ignore (fetch_and_add t (-1))

module Plain = struct
  type 'a t = { mutable v : 'a; id : int }

  let make v : _ t = { v; id = Vhook.fresh_loc () }

  let get (t : _ t) =
    Vhook.note t.id Vhook.Pread;
    t.v

  let set (t : _ t) x =
    Vhook.note t.id Vhook.Pwrite;
    t.v <- x

  let get_racy (t : _ t) =
    Vhook.note t.id Vhook.Racy_read;
    t.v
end

module Int_array = struct
  (* Per-element location ids: a contiguous range reserved at creation,
     so the checker's dependence analysis distinguishes accesses to
     different slots of the same status array. *)
  type t = { a : Atomic_int_array.t; base : int }

  let make n = { a = Atomic_int_array.make n; base = Vhook.fresh_locs n }

  let length t = Atomic_int_array.length t.a

  let get t i =
    Vhook.note (t.base + i) Vhook.Aread;
    Atomic_int_array.get t.a i

  let set t i x =
    Vhook.note (t.base + i) Vhook.Awrite;
    Atomic_int_array.set t.a i x

  let cas t i expected desired =
    Vhook.note_cas (t.base + i) (fun () -> Atomic_int_array.get t.a i <> expected);
    Atomic_int_array.cas t.a i expected desired
end
