(* Workload layer tests: trace model, serialization round-trips, the
   synthetic generator's structural guarantees, the Table I
   reconstructions, and the pathological instances. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---------- Trace model ---------- *)

let mk_diamond ?(changed = [| true; true; true; true |]) () =
  let graph = Dag.Graph.of_edges ~nodes:4 [| (0, 1); (0, 2); (1, 3); (2, 3) |] in
  Workload.Trace.create ~name:"d" ~graph
    ~kind:[| Workload.Trace.Task; Task; Predicate; Task |]
    ~shape:[| Workload.Trace.Seq 2.0; Seq 3.0; Seq 100.0; Seq 4.0 |]
    ~initial:[| 0 |] ~edge_changed:changed

let trace_shapes () =
  Alcotest.(check (float 1e-9)) "unit work" 1.0 (Workload.Trace.shape_work Unit);
  Alcotest.(check (float 1e-9)) "seq work" 5.0 (Workload.Trace.shape_work (Seq 5.0));
  Alcotest.(check (float 1e-9)) "par span" 1.0 (Workload.Trace.shape_span (Par 7.0));
  Alcotest.(check (float 1e-9)) "stages work" 24.0
    (Workload.Trace.shape_work (Stages { width = 3; length = 4; chip = 2.0 }));
  Alcotest.(check (float 1e-9)) "stages span" 8.0
    (Workload.Trace.shape_span (Stages { width = 3; length = 4; chip = 2.0 }))

let trace_predicate_work_is_zero () =
  let t = mk_diamond () in
  Alcotest.(check (float 1e-9)) "task work" 2.0 (Workload.Trace.work t 0);
  Alcotest.(check (float 1e-9)) "predicate work" 0.0 (Workload.Trace.work t 2)

let trace_active_closure () =
  let t = mk_diamond ~changed:[| true; false; true; true |] () in
  (* 0 -> 1 propagates, 0 -> 2 does not; 3 reached via 1 *)
  Alcotest.(check (list int)) "active" [ 0; 1; 3 ]
    (Prelude.Bitset.to_list (Workload.Trace.active_set t));
  let s = Workload.Trace.stats t in
  check_int "active jobs" 2 s.Workload.Trace.active_jobs;
  check_int "initial" 1 s.Workload.Trace.initial_tasks;
  Alcotest.(check (float 1e-9)) "active work" 9.0 s.Workload.Trace.active_work

let trace_critical_path () =
  let t = mk_diamond () in
  (* paths in H: 0(2) -> 1(3) -> 3(4) = 9; through predicate 2 it is 2+0+4 = 6 *)
  Alcotest.(check (float 1e-9)) "cp" 9.0 (Workload.Trace.active_critical_path t)

let trace_validation_errors () =
  let graph = Dag.Graph.of_edges ~nodes:2 [| (0, 1); (1, 0) |] in
  Alcotest.check_raises "cycle" (Invalid_argument "Trace.create: graph has a cycle")
    (fun () ->
      ignore
        (Workload.Trace.create ~name:"bad" ~graph
           ~kind:(Array.make 2 Workload.Trace.Task)
           ~shape:(Array.make 2 Workload.Trace.Unit)
           ~initial:[| 0 |] ~edge_changed:[| true; true |]));
  let graph = Dag.Graph.of_edges ~nodes:2 [| (0, 1) |] in
  Alcotest.check_raises "unsorted initial"
    (Invalid_argument "Trace.create: initial not sorted/distinct") (fun () ->
      ignore
        (Workload.Trace.create ~name:"bad" ~graph
           ~kind:(Array.make 2 Workload.Trace.Task)
           ~shape:(Array.make 2 Workload.Trace.Unit)
           ~initial:[| 1; 0 |] ~edge_changed:[| true |]));
  Alcotest.check_raises "negative work" (Invalid_argument "Trace: negative work")
    (fun () ->
      ignore
        (Workload.Trace.create ~name:"bad" ~graph
           ~kind:(Array.make 2 Workload.Trace.Task)
           ~shape:[| Workload.Trace.Seq (-1.0); Unit |]
           ~initial:[| 0 |] ~edge_changed:[| true |]))

(* ---------- Trace IO ---------- *)

let io_round_trip () =
  let t = mk_diamond ~changed:[| true; false; true; true |] () in
  let buf = Buffer.create 256 in
  let tmp = Filename.temp_file "trace" ".txt" in
  Workload.Trace_io.to_file tmp t;
  let t' = Workload.Trace_io.of_file tmp in
  Sys.remove tmp;
  ignore buf;
  check_int "nodes" 4 (Dag.Graph.node_count t'.Workload.Trace.graph);
  check_int "edges" 4 (Dag.Graph.edge_count t'.Workload.Trace.graph);
  Alcotest.(check (array bool)) "changed flags" t.Workload.Trace.edge_changed
    t'.Workload.Trace.edge_changed;
  Alcotest.(check (array int)) "initial" t.Workload.Trace.initial t'.Workload.Trace.initial;
  check_bool "kinds" true (t.Workload.Trace.kind = t'.Workload.Trace.kind);
  check_bool "shapes" true (t.Workload.Trace.shape = t'.Workload.Trace.shape)

let io_of_string () =
  let t =
    Workload.Trace_io.of_string ~name:"inline"
      "nodes 3\nnode 1 P seq 0\nedge 0 1 1\nedge 1 2 0\ninitial 0\n# comment\n"
  in
  check_int "nodes" 3 (Dag.Graph.node_count t.Workload.Trace.graph);
  check_bool "kind" true (t.Workload.Trace.kind.(1) = Workload.Trace.Predicate);
  check_bool "edge flags" true (t.Workload.Trace.edge_changed = [| true; false |])

let io_parse_errors () =
  let bad input msg =
    match Workload.Trace_io.of_string input with
    | exception Failure e ->
      check_bool (Printf.sprintf "%s mentions context" msg) true (String.length e > 0)
    | _ -> Alcotest.failf "expected failure: %s" msg
  in
  bad "edge 0 1 1\n" "missing nodes";
  bad "nodes 2\nedge 0 1 2\n" "bad change flag";
  bad "nodes 1\nnode 0 X unit\n" "bad kind";
  bad "nodes 1\nfrobnicate\n" "unknown record"

let io_qcheck_round_trip =
  let gen =
    QCheck.Gen.(
      2 -- 15 >>= fun n ->
      list_size (0 -- (2 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >|= fun pairs ->
      let edges =
        pairs
        |> List.filter_map (fun (a, b) ->
               if a < b then Some (a, b) else if b < a then Some (b, a) else None)
        |> List.sort_uniq compare
        |> Array.of_list
      in
      let graph = Dag.Graph.of_edges ~nodes:n edges in
      let shapes =
        [|
          Workload.Trace.Unit;
          Seq 2.5;
          Par 4.0;
          Stages { width = 2; length = 3; chip = 0.5 };
        |]
      in
      Workload.Trace.create ~name:"rt" ~graph
        ~kind:(Array.init n (fun i -> if i mod 3 = 0 then Workload.Trace.Predicate else Task))
        ~shape:(Array.init n (fun i -> shapes.(i mod 4)))
        ~initial:(if Array.length (Dag.Graph.sources graph) > 0 then [| (Dag.Graph.sources graph).(0) |] else [||])
        ~edge_changed:(Array.init (Array.length edges) (fun e -> e mod 2 = 0)))
  in
  QCheck.Test.make ~name:"trace io: write/read round trip" ~count:100 (QCheck.make gen)
    (fun t ->
      let tmp = Filename.temp_file "trace" ".txt" in
      Workload.Trace_io.to_file tmp t;
      let t' = Workload.Trace_io.of_file tmp in
      Sys.remove tmp;
      t.Workload.Trace.kind = t'.Workload.Trace.kind
      && t.Workload.Trace.shape = t'.Workload.Trace.shape
      && t.Workload.Trace.initial = t'.Workload.Trace.initial
      && t.Workload.Trace.edge_changed = t'.Workload.Trace.edge_changed
      && Dag.Graph.node_count t.Workload.Trace.graph
         = Dag.Graph.node_count t'.Workload.Trace.graph)

(* ---------- Synthetic generator ---------- *)

let synth_params =
  {
    Workload.Synthetic.nodes = 2000;
    edges = 3500;
    levels = 25;
    initial = 12;
    active_jobs = 150;
    descendants = None;
    task_fraction = 0.5;
    seed = 7;
  }

let synth_structure () =
  let t = Workload.Synthetic.generate ~name:"synth" synth_params in
  let s = Workload.Trace.stats t in
  check_int "nodes" 2000 s.Workload.Trace.nodes;
  check_int "edges" 3500 s.Workload.Trace.edges;
  check_int "levels" 25 s.Workload.Trace.levels;
  check_int "initial" 12 s.Workload.Trace.initial_tasks;
  check_bool "active jobs near target" true
    (abs (s.Workload.Trace.active_jobs - 150) < 100)

let synth_initial_are_task_sources () =
  let t = Workload.Synthetic.generate ~name:"synth" synth_params in
  Array.iter
    (fun u ->
      check_int "source" 0 (Dag.Graph.in_degree t.Workload.Trace.graph u);
      check_bool "task kind" true (t.Workload.Trace.kind.(u) = Workload.Trace.Task))
    t.Workload.Trace.initial

let synth_deterministic () =
  let a = Workload.Synthetic.generate ~name:"a" synth_params in
  let b = Workload.Synthetic.generate ~name:"b" synth_params in
  check_bool "same structure" true
    (a.Workload.Trace.edge_changed = b.Workload.Trace.edge_changed
    && a.Workload.Trace.shape = b.Workload.Trace.shape);
  let c =
    Workload.Synthetic.generate ~name:"c" { synth_params with Workload.Synthetic.seed = 8 }
  in
  check_bool "different seed differs" true
    (a.Workload.Trace.edge_changed <> c.Workload.Trace.edge_changed
    || a.Workload.Trace.shape <> c.Workload.Trace.shape)

let synth_infeasible () =
  Alcotest.check_raises "levels > nodes"
    (Invalid_argument "Synthetic: need nodes >= levels >= 1") (fun () ->
      ignore
        (Workload.Synthetic.generate ~name:"x"
           { synth_params with Workload.Synthetic.nodes = 10; levels = 11 }));
  match
    Workload.Synthetic.generate ~name:"x"
      { synth_params with Workload.Synthetic.edges = 100 }
  with
  | exception Invalid_argument msg ->
    check_bool "mentions edges" true
      (String.length msg > 20 && String.sub msg 0 20 = "Synthetic: need >= 1")
  | _ -> Alcotest.fail "expected rejection of too few edges"

let synth_scale () =
  let t = Workload.Synthetic.generate ~name:"s" synth_params in
  let t2 = Workload.Synthetic.scale_shapes t ~factor:3.0 in
  Alcotest.(check (float 1e-6)) "work scales" (3.0 *. Workload.Trace.total_active_work t)
    (Workload.Trace.total_active_work t2)

(* ---------- Paper traces ---------- *)

let paper_specs_complete () =
  check_int "eleven" 11 (Array.length Workload.Paper_traces.specs);
  Array.iteri
    (fun i s ->
      check_int "id" (i + 1) s.Workload.Paper_traces.id;
      check_bool "positive target" true (s.Workload.Paper_traces.target_exec > 0.0))
    Workload.Paper_traces.specs;
  check_int "eight processors" 8 Workload.Paper_traces.processors

let paper_trace5_structure () =
  (* #5 is the small one; generate and compare to Table I *)
  let t = Workload.Paper_traces.generate 5 in
  let s = Workload.Trace.stats t in
  let spec = Workload.Paper_traces.spec 5 in
  check_int "nodes" spec.Workload.Paper_traces.nodes s.Workload.Trace.nodes;
  check_int "edges" spec.Workload.Paper_traces.edges s.Workload.Trace.edges;
  check_int "levels" spec.Workload.Paper_traces.levels s.Workload.Trace.levels;
  check_int "initial" spec.Workload.Paper_traces.initial_tasks
    s.Workload.Trace.initial_tasks

let paper_trace8_structure () =
  let t = Workload.Paper_traces.generate 8 in
  let s = Workload.Trace.stats t in
  let spec = Workload.Paper_traces.spec 8 in
  check_int "nodes" spec.Workload.Paper_traces.nodes s.Workload.Trace.nodes;
  check_int "edges" spec.Workload.Paper_traces.edges s.Workload.Trace.edges;
  check_int "levels" spec.Workload.Paper_traces.levels s.Workload.Trace.levels;
  check_bool "active jobs in range" true
    (let a = s.Workload.Trace.active_jobs
     and target = spec.Workload.Paper_traces.active_jobs in
     abs (a - target) < max 80 (target / 2))

let paper_trace5_calibration () =
  let t = Workload.Paper_traces.generate 5 in
  let spec = Workload.Paper_traces.spec 5 in
  let cp = Workload.Trace.active_critical_path t in
  let w = Workload.Trace.total_active_work t in
  let estimate = Float.max cp (w /. 8.0) in
  check_bool "calibrated to target" true
    (abs_float (estimate -. spec.Workload.Paper_traces.target_exec) /. spec.Workload.Paper_traces.target_exec < 0.01)

let paper_bad_id () =
  Alcotest.check_raises "id 0" (Invalid_argument "Paper_traces.spec: no job trace #0")
    (fun () -> ignore (Workload.Paper_traces.spec 0));
  Alcotest.check_raises "id 12" (Invalid_argument "Paper_traces.spec: no job trace #12")
    (fun () -> ignore (Workload.Paper_traces.spec 12))

(* ---------- Pathological ---------- *)

let tight_structure () =
  let levels = 9 in
  let t = Workload.Pathological.tight_example ~levels in
  let s = Workload.Trace.stats t in
  check_int "nodes" ((2 * levels) - 1) s.Workload.Trace.nodes;
  check_int "levels" levels s.Workload.Trace.levels;
  check_int "everything active" ((2 * levels) - 2) s.Workload.Trace.active_jobs;
  (* total work: L units of j plus sum_{i=2..L} (L-i+1) *)
  Alcotest.(check (float 1e-9)) "work"
    (float_of_int (levels + (levels * (levels - 1) / 2)))
    s.Workload.Trace.active_work

let broom_structure () =
  let t = Workload.Pathological.broom ~spine:10 ~fan:5 in
  let s = Workload.Trace.stats t in
  check_int "nodes" 15 s.Workload.Trace.nodes;
  check_int "edges" (9 + 10) s.Workload.Trace.edges;
  check_int "levels" 11 s.Workload.Trace.levels;
  check_int "all active" 14 s.Workload.Trace.active_jobs

let chain_structure () =
  let t = Workload.Pathological.deep_chain ~n:7 in
  let s = Workload.Trace.stats t in
  check_int "levels = nodes" 7 s.Workload.Trace.levels;
  check_int "active" 6 s.Workload.Trace.active_jobs

let blowup_structure () =
  let t = Workload.Pathological.interval_blowup ~width:10 ~layers:3 ~density:0.4 ~seed:3 in
  let s = Workload.Trace.stats t in
  check_int "nodes" 30 s.Workload.Trace.nodes;
  check_int "levels" 3 s.Workload.Trace.levels;
  check_int "everything active" 20 s.Workload.Trace.active_jobs

let unit_layers_structure () =
  let t = Workload.Pathological.unit_layers ~width:8 ~layers:5 ~fanout:2 ~seed:4 in
  let s = Workload.Trace.stats t in
  check_int "nodes" 40 s.Workload.Trace.nodes;
  check_int "levels" 5 s.Workload.Trace.levels;
  Alcotest.(check (float 1e-9)) "unit work" 40.0 s.Workload.Trace.active_work

(* ---------- Update_stream ---------- *)

let stream_params : Workload.Synthetic.Update_stream.params =
  {
    nodes = 40;
    span = 6;
    base_edges = 30;
    batches = 5;
    batch_ops = 8;
    delete_fraction = 0.4;
    seed = 11;
  }

let stream_cursor_walks_in_order () =
  let open Workload.Synthetic.Update_stream in
  let s = generate stream_params in
  let c = cursor s in
  check_int "starts unconsumed" 0 (consumed c);
  let walked = ref [] in
  let rec go () =
    match next c with
    | None -> ()
    | Some step ->
      walked := step :: !walked;
      go ()
  in
  go ();
  check_int "consumed all" (List.length s.steps) (consumed c);
  check_bool "exhausted stays exhausted" true (next c = None);
  check_bool "same steps, same order" true (List.rev !walked = s.steps)

let stream_cursor_reset_and_independence () =
  let open Workload.Synthetic.Update_stream in
  let s = generate stream_params in
  let a = cursor s and b = cursor s in
  let first = next a in
  check_bool "fresh cursor unaffected by sibling" true (next b = first);
  ignore (next a);
  reset a;
  check_int "reset rewinds" 0 (consumed a);
  check_bool "reset replays from the start" true (next a = first);
  check_int "sibling keeps its position" 1 (consumed b)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "workload"
    [
      ( "trace",
        [
          test `Quick "shape work and span" trace_shapes;
          test `Quick "predicate nodes cost nothing" trace_predicate_work_is_zero;
          test `Quick "active closure" trace_active_closure;
          test `Quick "active critical path" trace_critical_path;
          test `Quick "validation" trace_validation_errors;
        ] );
      ( "trace-io",
        [
          test `Quick "round trip" io_round_trip;
          test `Quick "of_string" io_of_string;
          test `Quick "parse errors" io_parse_errors;
        ]
        @ qsuite [ io_qcheck_round_trip ] );
      ( "synthetic",
        [
          test `Quick "exact structural targets" synth_structure;
          test `Quick "initial nodes are task sources" synth_initial_are_task_sources;
          test `Quick "deterministic per seed" synth_deterministic;
          test `Quick "infeasible parameters rejected" synth_infeasible;
          test `Quick "shape scaling" synth_scale;
        ] );
      ( "paper-traces",
        [
          test `Quick "specs complete" paper_specs_complete;
          test `Quick "trace #5 structure" paper_trace5_structure;
          test `Slow "trace #8 structure" paper_trace8_structure;
          test `Quick "trace #5 calibration" paper_trace5_calibration;
          test `Quick "bad ids rejected" paper_bad_id;
        ] );
      ( "pathological",
        [
          test `Quick "tight example" tight_structure;
          test `Quick "broom" broom_structure;
          test `Quick "deep chain" chain_structure;
          test `Quick "interval blowup" blowup_structure;
          test `Quick "unit layers" unit_layers_structure;
        ] );
      ( "update-stream",
        [
          test `Quick "cursor walks in order" stream_cursor_walks_in_order;
          test `Quick "reset and independence" stream_cursor_reset_and_independence;
        ] );
    ]
