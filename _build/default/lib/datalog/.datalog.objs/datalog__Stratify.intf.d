lib/datalog/stratify.mli: Ast Dag Hashtbl
