(** Rule-body matching: the join machinery shared by from-scratch
    evaluation ({!Eval}) and incremental maintenance ({!Incremental}).

    A {!view} abstracts "which database state a literal is matched
    against" — the live database, a frozen pre-update snapshot, or a
    delta relation — so DRed's overdeletion phase can read the old state
    while insertion reads the new one. *)

type view = {
  mem : string -> Relation.tuple -> bool;
  iter_matching : string -> col:int -> value:int -> (Relation.tuple -> unit) -> unit;
      (** index probe: every tuple whose [col]th component is [value],
          handed out without per-probe allocation *)
  iter : string -> (Relation.tuple -> unit) -> unit;
}

val view_of_db : Database.t -> view
(** Live view: reads through to the database as it changes. *)

val resolve_term :
  symbols:Symbol.t -> (string * int) list -> Ast.term -> int option
(** Constant interning / variable lookup under an environment.
    @raise Invalid_argument on an aggregate term. *)

val eval_body :
  symbols:Symbol.t ->
  view:view ->
  ?delta:int * Relation.t ->
  ?env:(string * int) list ->
  work:int ref ->
  on_env:((string * int) list -> unit) ->
  Ast.literal list ->
  unit
(** Enumerate all variable bindings satisfying the body; the aggregate
    evaluator consumes raw environments instead of head tuples. [env]
    (default empty) seeds the environment — goal-directed probes bind
    head variables to interned codes up front, which both restricts
    the search and keeps constants out of the string path. An atom
    fully ground under the environment is answered by a [mem] lookup
    rather than an index-bucket scan. *)

val eval_rule :
  symbols:Symbol.t ->
  view:view ->
  ?delta:int * Relation.t ->
  work:int ref ->
  on_derived:(Relation.tuple -> unit) ->
  Ast.rule ->
  unit
(** Enumerate all derivations of [rule]'s head. With [delta = (i, d)],
    body literal [i] (which must be positive) ranges over [d] instead of
    the view — the semi-naive restriction. Negated literals and
    comparisons are evaluated under the view once their variables are
    bound (range restriction guarantees they are). [work] counts tuples
    examined, the per-task cost proxy used by {!To_trace}.
    [on_derived] may see duplicate tuples; callers dedupe via
    [Relation.add]'s return value. *)

val register : Database.t -> Ast.program -> unit
(** Create every predicate mentioned by the program (fixing arities).
    @raise Invalid_argument on an arity clash. *)
