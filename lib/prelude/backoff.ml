type t = { mutable pow : int; limit : int }

let create ?(limit = 10) () =
  if limit < 0 then invalid_arg "Backoff.create: negative limit";
  { pow = 0; limit }

let reset b = b.pow <- 0

let is_exhausted b = b.pow >= b.limit

let once b =
  let spins = 1 lsl min b.pow b.limit in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done;
  if b.pow < b.limit then b.pow <- b.pow + 1
