lib/sched/logicblox.ml: Array Dag Intf Prelude Queue
