let all_tasks n = Array.make n Trace.Task

let all_changed m = Array.make m true

(* Theorem 9: j_i at node i-1 (unit, chain); k_i at node L-1 + (i-1) for
   i in 2..L, released by j_{i-1}, with work = span = L - i + 1. *)
let tight_example ~levels =
  if levels < 2 then invalid_arg "Pathological.tight_example: levels >= 2";
  let l = levels in
  let n = l + (l - 1) in
  let b = Dag.Graph.Builder.create ~nodes:n () in
  let j i = i - 1 (* 1-based j index to node id *) in
  let k i = l + (i - 2) (* i in 2..L *) in
  for i = 2 to l do
    ignore (Dag.Graph.Builder.add_edge b (j (i - 1)) (j i));
    ignore (Dag.Graph.Builder.add_edge b (j (i - 1)) (k i))
  done;
  let graph = Dag.Graph.Builder.build b in
  let shape = Array.make n Trace.Unit in
  for i = 2 to l do
    shape.(k i) <- Trace.Seq (float_of_int (l - i + 1))
  done;
  Trace.create ~name:(Printf.sprintf "tight-example-L%d" l) ~graph
    ~kind:(all_tasks n) ~shape ~initial:[| j 1 |]
    ~edge_changed:(all_changed (Dag.Graph.edge_count graph))

let deep_chain ~n =
  if n < 1 then invalid_arg "Pathological.deep_chain: n >= 1";
  let edges = Array.init (n - 1) (fun i -> (i, i + 1)) in
  let graph = Dag.Graph.of_edges ~nodes:n edges in
  Trace.create ~name:(Printf.sprintf "deep-chain-%d" n) ~graph ~kind:(all_tasks n)
    ~shape:(Array.make n Trace.Unit) ~initial:[| 0 |]
    ~edge_changed:(all_changed (n - 1))

let broom ~spine ~fan =
  if spine < 2 || fan < 1 then invalid_arg "Pathological.broom";
  let n = spine + fan in
  let b = Dag.Graph.Builder.create ~nodes:n () in
  for i = 0 to spine - 2 do
    ignore (Dag.Graph.Builder.add_edge b i (i + 1))
  done;
  for j = 0 to fan - 1 do
    ignore (Dag.Graph.Builder.add_edge b 0 (spine + j));
    ignore (Dag.Graph.Builder.add_edge b (spine - 1) (spine + j))
  done;
  let graph = Dag.Graph.Builder.build b in
  Trace.create ~name:(Printf.sprintf "broom-%dx%d" spine fan) ~graph
    ~kind:(all_tasks n) ~shape:(Array.make n Trace.Unit) ~initial:[| 0 |]
    ~edge_changed:(all_changed (Dag.Graph.edge_count graph))

let interval_blowup ~width ~layers ~density ~seed =
  if width < 1 || layers < 2 then invalid_arg "Pathological.interval_blowup";
  let rng = Prelude.Rng.create seed in
  let n = width * layers in
  let node l i = (l * width) + i in
  let b = Dag.Graph.Builder.create ~nodes:n () in
  for l = 1 to layers - 1 do
    for i = 0 to width - 1 do
      (* spanning parent pins the level *)
      let p = Prelude.Rng.int rng width in
      ignore (Dag.Graph.Builder.add_edge b (node (l - 1) p) (node l i));
      for jj = 0 to width - 1 do
        if jj <> p && Prelude.Rng.bernoulli rng density then
          ignore (Dag.Graph.Builder.add_edge b (node (l - 1) jj) (node l i))
      done
    done
  done;
  let graph = Dag.Graph.Builder.build b in
  Trace.create
    ~name:(Printf.sprintf "interval-blowup-w%d-l%d" width layers)
    ~graph ~kind:(all_tasks n) ~shape:(Array.make n Trace.Unit)
    ~initial:(Array.init width (fun i -> i))
    ~edge_changed:(all_changed (Dag.Graph.edge_count graph))

let unit_layers ~width ~layers ~fanout ~seed =
  if width < 1 || layers < 1 || fanout < 1 then invalid_arg "Pathological.unit_layers";
  let rng = Prelude.Rng.create seed in
  let n = width * layers in
  let node l i = (l * width) + i in
  let b = Dag.Graph.Builder.create ~nodes:n () in
  let seen = Hashtbl.create (4 * n) in
  let add u v =
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      ignore (Dag.Graph.Builder.add_edge b u v)
    end
  in
  for l = 1 to layers - 1 do
    for i = 0 to width - 1 do
      add (node (l - 1) (Prelude.Rng.int rng width)) (node l i);
      for _ = 2 to fanout do
        add (node (l - 1) (Prelude.Rng.int rng width)) (node l i)
      done
    done
  done;
  let graph = Dag.Graph.Builder.build b in
  Trace.create ~name:(Printf.sprintf "unit-layers-w%d-l%d" width layers) ~graph
    ~kind:(all_tasks n) ~shape:(Array.make n Trace.Unit)
    ~initial:(Array.init width (fun i -> i))
    ~edge_changed:(all_changed (Dag.Graph.edge_count graph))
