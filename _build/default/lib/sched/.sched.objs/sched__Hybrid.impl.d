lib/sched/hybrid.ml: Intf Level_based Logicblox Printf
