lib/simulator/trace_export.mli: Engine
