(** Rule diagnostics: {!Ast.range_restricted} with evidence.

    The parser rejects programs that are not range-restricted, but only
    says so per clause; this module names the offending variable and
    literal, and adds non-fatal warnings for likely mistakes. The error
    set is empty iff [Ast.range_restricted] holds for every rule, so it
    can also gate programs assembled directly as {!Ast.program} values
    without going through the parser.

    Error codes: [unrestricted-head-variable], [unbound-negated-variable],
    [unbound-comparison-variable], [body-aggregate].
    Warning codes: [singleton-variable] (suppressed for [_]-prefixed
    names), and two whole-program lints only {!check} can see:
    [duplicate-rule] (a rule syntactically identical to an earlier one
    after variables are renamed by first occurrence — it can add no
    derivations) and [unused-idb-predicate] (a predicate derived by
    some rule but never read by any rule body; flagged once, at its
    first defining rule — harmless when it is the intended query
    output). *)

type severity = Warning | Error

type diagnostic = {
  rule_index : int;  (** 0-based position of the rule in the program *)
  pred : string;  (** head predicate *)
  severity : severity;
  code : string;
  message : string;
}

exception Failed of diagnostic list
(** Raised by {!enforce}; carries the error-severity diagnostics. *)

val check_rule : rule_index:int -> Ast.rule -> diagnostic list
(** Diagnostics for one rule, errors first, deterministic order. *)

val check : Ast.program -> diagnostic list
(** Every rule's {!check_rule} diagnostics (in rule order), followed by
    the whole-program warnings ([duplicate-rule],
    [unused-idb-predicate]). *)

val errors : diagnostic list -> diagnostic list
(** The [Error]-severity subset. *)

val enforce : Ast.program -> unit
(** @raise Failed if [check] yields any error. Warnings pass. *)

val pp_severity : Format.formatter -> severity -> unit

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val pp : Format.formatter -> diagnostic list -> unit
