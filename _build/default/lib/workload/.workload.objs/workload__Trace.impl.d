lib/workload/trace.ml: Array Dag Float Format Prelude Queue
