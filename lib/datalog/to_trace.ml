type t = {
  trace : Workload.Trace.t;
  report : Incremental.report;
  labels : string array;
}

let of_update ?(work_unit = 1e-6) ?engine ?maint ?(domains = 1) ?(shards = 1)
    ?sanitize ?on_warn ?obs db program ~additions ~deletions =
  let report =
    if domains > 1 || shards > 1 then
      Incremental.apply_parallel ?engine ?maint ~domains ~shards ?sanitize
        ?on_warn ?obs db program ~additions ~deletions
    else
      Incremental.apply ?engine ?maint ?sanitize ?on_warn ?obs db program
        ~additions ~deletions
  in
  let anal = report.Incremental.analysis in
  let cond = anal.Stratify.condensation in
  let graph = cond.Dag.Scc.dag in
  let n = Dag.Graph.node_count graph in
  let labels =
    Array.init n (fun c ->
        cond.Dag.Scc.members.(c)
        |> Array.to_list
        |> List.map (fun p -> anal.Stratify.predicates.(p))
        |> String.concat ",")
  in
  let work = Array.make n 0.0 in
  let output_changed = Array.make n false in
  let is_source = Array.make n false in
  Array.iteri (fun c members -> is_source.(c) <- Array.length members > 0) cond.Dag.Scc.members;
  List.iter
    (fun (a : Incremental.comp_activity) ->
      work.(a.Incremental.comp) <- float_of_int a.Incremental.work *. work_unit;
      output_changed.(a.Incremental.comp) <- a.Incremental.output_changed)
    report.Incremental.activity;
  (* initial tasks: extensional components whose facts changed *)
  let initial =
    List.filter_map
      (fun (a : Incremental.comp_activity) ->
        let c = a.Incremental.comp in
        let edb =
          Array.for_all (fun p -> anal.Stratify.edb.(p)) cond.Dag.Scc.members.(c)
        in
        if edb && a.Incremental.output_changed then Some c else None)
      report.Incremental.activity
    |> List.sort compare
    |> Array.of_list
  in
  let edge_changed =
    Array.init (Dag.Graph.edge_count graph) (fun eid ->
        output_changed.(Dag.Graph.edge_src graph eid))
  in
  let shape = Array.map (fun wk -> Workload.Trace.Seq wk) work in
  let kind = Array.make n Workload.Trace.Task in
  let trace =
    Workload.Trace.create ~name:"datalog-update" ~graph ~kind ~shape ~initial
      ~edge_changed
  in
  { trace; report; labels }

let node_of_pred t name =
  let anal = t.report.Incremental.analysis in
  match Hashtbl.find_opt anal.Stratify.index_of name with
  | None -> None
  | Some p -> Some anal.Stratify.condensation.Dag.Scc.component.(p)
