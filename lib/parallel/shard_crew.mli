(** A fixed crew of worker domains for intra-task shard fan-out.

    The trace executor ({!Executor}) parallelizes across tasks of a
    static DAG; sharded incremental maintenance
    ({!Datalog.Incremental.apply_parallel}) also needs parallelism
    {e inside} one task — each semi-naive round of a DRed phase fans
    the shard slices out, barriers, and the coordinator merges. Rounds
    are data-dependent, so they cannot be nodes of the executor's
    pre-built DAG; the crew provides the missing primitive: [k-1]
    long-lived worker domains plus the calling thread execute one job
    per shard and {!run} returns only after every shard finished — the
    barrier.

    Safety contract (the (component, shard) ownership rule): the job
    for shard [s] must write only state owned by shard [s] (its private
    buffer slots); everything else it reads must be frozen for the
    duration of the call. The mutex/condvar handoff in {!run}
    establishes happens-before between the caller and every worker in
    both directions, so plain (unsynchronized) buffer slots are safe.

    {!run} is serialized internally: concurrent callers (two component
    tasks fanning out at once) queue on the crew's mutex and their
    fan-outs interleave at round granularity. *)

type t

val create : shards:int -> t
(** Spawn [shards - 1] worker domains (none when [shards <= 1]).
    @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val run : t -> (int -> unit) -> unit
(** [run t job] executes [job s] for every shard [s] in [0..shards-1]
    — shard 0 on the calling thread, shard [s > 0] always on the same
    dedicated worker domain — and returns after all of them finished.
    If any job raises, {!run} still waits for the rest, then re-raises
    one of the exceptions in the caller. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; {!run} after shutdown raises
    [Invalid_argument]. *)
