lib/datalog/database.mli: Ast Format Relation Symbol
