(** Vector clocks for the happens-before checker.

    A clock maps each process id to the number of events of that
    process known to have happened before the clock's owner's current
    point. Event [e1] happens-before [e2] iff [e1]'s clock is
    componentwise [leq] [e2]'s; two events with [Concurrent] clocks are
    unordered, and unordered conflicting accesses to the same plain
    location are races. *)

type t

val make : int -> t
(** All-zero clock over [n] processes. *)

val size : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

val tick : t -> int -> unit
(** Advance process [i]'s own component. *)

val copy : t -> t

val join : into:t -> t -> unit
(** Componentwise maximum, in place. *)

val leq : t -> t -> bool

type cmp = Equal | Before | After | Concurrent

val compare : t -> t -> cmp

val pp : Format.formatter -> t -> unit
