lib/dag/topo.mli: Graph
