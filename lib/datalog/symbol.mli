(** Constant interning: maps ground constants to dense integers so that
    tuples are flat [int array]s. One table per database.

    Domain-safe: [intern] serializes writers on a mutex (parallel
    maintenance tasks mint aggregate results concurrently), while
    [const_of]/[compare_codes]/[count] stay lock-free over an
    atomically published snapshot of the constant store. *)

type t

val create : unit -> t

val intern : t -> Ast.const -> int

val const_of : t -> int -> Ast.const
(** @raise Invalid_argument on an unknown code. *)

val count : t -> int

val compare_codes : t -> int -> int -> int
(** Order by the constants' {!Ast.compare_const}, not by code. *)
