lib/simulator/engine.mli: Metrics Sched Workload
