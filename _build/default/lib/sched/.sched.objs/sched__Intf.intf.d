lib/sched/intf.mli: Dag Format
