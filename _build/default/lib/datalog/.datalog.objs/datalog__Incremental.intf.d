lib/datalog/incremental.mli: Ast Database Stratify
