type 'a t = { v : 'a Vec.t; cmp : 'a -> 'a -> int }

let create ?(capacity = 16) ~cmp ~dummy () =
  { v = Vec.create ~capacity ~dummy (); cmp }

let size h = Vec.length h.v

let is_empty h = Vec.is_empty h.v

let swap h i j =
  let a = Vec.get h.v i and b = Vec.get h.v j in
  Vec.set h.v i b;
  Vec.set h.v j a

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (Vec.get h.v i) (Vec.get h.v parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h.v in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && h.cmp (Vec.get h.v l) (Vec.get h.v !smallest) < 0 then smallest := l;
  if r < n && h.cmp (Vec.get h.v r) (Vec.get h.v !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  Vec.push h.v x;
  sift_up h (Vec.length h.v - 1)

let peek h = if is_empty h then None else Some (Vec.get h.v 0)

let top_exn h = Vec.get h.v 0

let pop h =
  match Vec.length h.v with
  | 0 -> None
  | 1 -> Vec.pop h.v
  | n ->
    let root = Vec.get h.v 0 in
    let last = Vec.pop_exn h.v in
    ignore n;
    Vec.set h.v 0 last;
    sift_down h 0;
    Some root

let pop_exn h =
  match pop h with Some x -> x | None -> invalid_arg "Heap.pop_exn: empty"

let clear h = Vec.clear h.v

let of_array ~cmp ~dummy a =
  let h = create ~capacity:(max 1 (Array.length a)) ~cmp ~dummy () in
  Array.iter (fun x -> Vec.push h.v x) a;
  for i = (Array.length a / 2) - 1 downto 0 do
    sift_down h i
  done;
  h

let to_sorted_list h =
  let rec drain acc =
    match pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
