exception Deadlock of { time : float; remaining : int }

exception Double_start of int

exception Premature of int
(* a task ran before activation, or was activated after running:
   single-execution violation — a scheduler bug the engine traps *)

type config = { procs : int; op_cost : float; record_log : bool }

let default_config = { procs = 8; op_cost = 1e-7; record_log = false }

type log_entry = { task : int; start : float; finish : float }

type run = { metrics : Metrics.t; log : log_entry array option }

type status = Inactive | Active | Running | Done

type task_state = {
  mutable stages : float array list; (* stages not yet released *)
  mutable chips_left : int; (* chips outstanding in the current stage *)
  start_time : float;  (* records are replaced whole, never mutated here *)
}

(* Expand a task into its chip stages (Section IV task model). *)
let expand kind shape =
  match (kind, shape) with
  | Workload.Trace.Predicate, _ -> [ [| 0.0 |] ]
  | Workload.Trace.Task, Workload.Trace.Unit -> [ [| 1.0 |] ]
  | Workload.Trace.Task, Workload.Trace.Seq w -> [ [| w |] ]
  | Workload.Trace.Task, Workload.Trace.Par w ->
    if w <= 0.0 then [ [| 0.0 |] ]
    else begin
      let chips = int_of_float (ceil w) in
      [ Array.make chips (w /. float_of_int chips) ]
    end
  | Workload.Trace.Task, Workload.Trace.Stages { width; length; chip } ->
    List.init length (fun _ -> Array.make width chip)

let run ?(config = default_config) ~sched (trace : Workload.Trace.t) =
  if config.procs < 1 then invalid_arg "Engine.run: need at least one processor";
  let g = trace.graph in
  let n = Dag.Graph.node_count g in
  let wall_start = Unix.gettimeofday () in
  let inst = sched.Sched.Intf.make g in
  let precompute_wallclock = Unix.gettimeofday () -. wall_start in
  let status = Array.make n Inactive in
  let tstate = Array.make n { stages = []; chips_left = 0; start_time = 0.0 } in
  let clock = ref 0.0 in
  let sched_overhead = ref 0.0 in
  let sched_wallclock = ref 0.0 in
  let charged_ops = ref 0.0 in
  let idle = ref config.procs in
  let pending : (int * float) Queue.t = Queue.create () in
  let cmp (t1, s1, _) (t2, s2, _) =
    if t1 = t2 then compare s1 s2 else compare t1 t2
  in
  let events = Prelude.Heap.create ~cmp ~dummy:(0.0, 0, 0) () in
  let seq = ref 0 in
  let executed = ref 0 in
  let activated = ref 0 in
  let total_work = ref 0.0 in
  let log = Prelude.Vec.create ~dummy:{ task = 0; start = 0.0; finish = 0.0 } () in
  let wall f =
    let s = Unix.gettimeofday () in
    let r = f () in
    sched_wallclock := !sched_wallclock +. (Unix.gettimeofday () -. s);
    r
  in
  (* Convert newly-counted scheduler ops into virtual time (weighted:
     an interval probe costs more than a bucket push). *)
  let charge () =
    let total = Sched.Intf.weighted_ops inst.Sched.Intf.ops in
    let delta = total -. !charged_ops in
    if delta > 0.0 then begin
      charged_ops := total;
      let cost = delta *. config.op_cost in
      sched_overhead := !sched_overhead +. cost;
      clock := !clock +. cost
    end
  in
  let activate v =
    match status.(v) with
    | Inactive ->
      status.(v) <- Active;
      incr activated;
      wall (fun () -> inst.Sched.Intf.on_activated v)
    | Active -> () (* several parents may dirty the same node *)
    | Running | Done -> raise (Premature v)
  in
  let release_stage u stage =
    let st = tstate.(u) in
    st.chips_left <- Array.length stage;
    Array.iter
      (fun dur ->
        total_work := !total_work +. dur;
        Queue.add (u, dur) pending)
      stage
  in
  let start_task u =
    (match status.(u) with
    | Active -> ()
    | Running | Done -> raise (Double_start u)
    | Inactive -> raise (Premature u));
    status.(u) <- Running;
    incr executed;
    wall (fun () -> inst.Sched.Intf.on_started u);
    (match expand trace.kind.(u) trace.shape.(u) with
    | [] -> assert false
    | stage :: rest ->
      tstate.(u) <- { stages = rest; chips_left = 0; start_time = !clock };
      release_stage u stage)
  in
  let rec dispatch () =
    while !idle > 0 && not (Queue.is_empty pending) do
      let u, dur = Queue.pop pending in
      decr idle;
      Prelude.Heap.push events (!clock +. dur, !seq, u);
      incr seq
    done;
    if !idle > 0 then begin
      match wall (fun () -> inst.Sched.Intf.next_ready ()) with
      | Some u ->
        charge ();
        start_task u;
        charge ();
        dispatch ()
      | None -> charge ()
    end
  in
  Array.iter activate trace.initial;
  charge ();
  dispatch ();
  while not (Prelude.Heap.is_empty events) do
    let t, _, u = Prelude.Heap.pop_exn events in
    if t > !clock then clock := t;
    incr idle;
    let st = tstate.(u) in
    st.chips_left <- st.chips_left - 1;
    if st.chips_left = 0 then begin
      match st.stages with
      | stage :: rest ->
        st.stages <- rest;
        release_stage u stage
      | [] ->
        status.(u) <- Done;
        if config.record_log then
          Prelude.Vec.push log { task = u; start = st.start_time; finish = !clock };
        (* reveal activations before announcing the completion *)
        Dag.Graph.iter_succ g u (fun ~dst ~eid ->
            if trace.edge_changed.(eid) then activate dst);
        wall (fun () -> inst.Sched.Intf.on_completed u);
        charge ()
    end;
    dispatch ()
  done;
  let remaining = ref 0 in
  Array.iter (function Active | Running -> incr remaining | Inactive | Done -> ()) status;
  if !remaining > 0 then raise (Deadlock { time = !clock; remaining = !remaining });
  let makespan = !clock in
  let metrics =
    {
      Metrics.scheduler = inst.Sched.Intf.name;
      makespan;
      sched_overhead = !sched_overhead;
      exec_time = makespan -. !sched_overhead;
      total_work = !total_work;
      tasks_executed = !executed;
      tasks_activated = !activated;
      ops = inst.Sched.Intf.ops;
      precompute_wallclock;
      sched_wallclock = !sched_wallclock;
      memory_words = inst.Sched.Intf.memory_words ();
      utilization =
        (if makespan > 0.0 then
           !total_work /. (makespan *. float_of_int config.procs)
         else 1.0);
      procs = config.procs;
    }
  in
  { metrics; log = (if config.record_log then Some (Prelude.Vec.to_array log) else None) }

let run_all ?config ~scheds trace =
  List.map (fun sched -> run ?config ~sched trace) scheds

let clairvoyant_factory ?procs (trace : Workload.Trace.t) =
  ignore procs;
  let n = Dag.Graph.node_count trace.graph in
  let work = Array.init n (Workload.Trace.work trace) in
  {
    Sched.Intf.fname = "clairvoyant";
    make =
      (fun g ->
        Sched.Clairvoyant.make ~initial:trace.initial
          ~edge_changed:(fun eid -> trace.edge_changed.(eid))
          ~work g);
  }
