let longest_from_sources g ~weights =
  let n = Graph.node_count g in
  if Array.length weights <> n then invalid_arg "Critical_path: weight length";
  let order = Topo.sort_exn g in
  let best = Array.make n 0.0 in
  Array.iter
    (fun u ->
      best.(u) <- best.(u) +. weights.(u);
      Graph.iter_succ g u (fun ~dst ~eid:_ ->
          if best.(u) > best.(dst) then best.(dst) <- best.(u)))
    order;
  best

let length g ~weights =
  let best = longest_from_sources g ~weights in
  Array.fold_left max 0.0 best

let path g ~weights =
  let n = Graph.node_count g in
  if n = 0 then []
  else begin
    let best = longest_from_sources g ~weights in
    let endpoint = ref 0 in
    for u = 1 to n - 1 do
      if best.(u) > best.(!endpoint) then endpoint := u
    done;
    (* walk backwards greedily through a predecessor achieving the value *)
    let rec back u acc =
      let acc = u :: acc in
      let target = best.(u) -. weights.(u) in
      let prev = ref None in
      Graph.iter_pred g u (fun ~src ~eid:_ ->
          match !prev with
          | Some _ -> ()
          | None -> if abs_float (best.(src) -. target) < 1e-9 then prev := Some src);
      match !prev with None -> acc | Some p -> back p acc
    in
    back !endpoint []
  end
