type t = {
  ilist : Dag.Interval_list.t; (* built on transpose: descendant-set there = ancestor-set here *)
  active_pos : Prelude.Bitset.t; (* positions of active unexecuted + running nodes *)
  active_nodes : Intf.task Prelude.Vec.t; (* same set, iterable in O(card) *)
  vec_index : int array; (* node -> index in active_nodes, -1 if absent *)
  scan_list : Intf.task Prelude.Vec.t; (* active tasks awaiting a safety verdict *)
  ready : Intf.task Queue.t;
  started : Prelude.Bitset.t;
  scan_batch : int; (* max entries examined per scan while tasks run *)
  mutable cursor : int; (* resumable scan position *)
  mutable running : int;
  mutable stamp : int; (* bumped on every activation/completion *)
  mutable futile_stamp : int; (* stamp at the last empty-handed scan *)
  ops : Intf.ops;
  n : int;
}

let create ?ops ?(scan_batch = max_int) ?ilist g =
  if scan_batch < 1 then invalid_arg "Logicblox: scan_batch must be >= 1";
  let n = Dag.Graph.node_count g in
  {
    ilist =
      (match ilist with
      | Some il -> il
      | None -> Dag.Interval_list.build (Dag.Graph.transpose g));
    active_pos = Prelude.Bitset.create n;
    active_nodes = Prelude.Vec.create ~dummy:0 ();
    vec_index = Array.make n (-1);
    scan_list = Prelude.Vec.create ~dummy:0 ();
    ready = Queue.create ();
    started = Prelude.Bitset.create n;
    scan_batch;
    cursor = 0;
    running = 0;
    stamp = 0;
    futile_stamp = -1;
    ops = (match ops with Some o -> o | None -> Intf.zero_ops ());
    n;
  }

let on_activated t u =
  t.stamp <- t.stamp + 1;
  Prelude.Vec.push t.scan_list u;
  t.vec_index.(u) <- Prelude.Vec.length t.active_nodes;
  Prelude.Vec.push t.active_nodes u;
  Prelude.Bitset.add t.active_pos (Dag.Interval_list.position t.ilist u)

let on_started t u =
  t.running <- t.running + 1;
  Prelude.Bitset.add t.started u

let on_completed t u =
  t.stamp <- t.stamp + 1;
  t.running <- t.running - 1;
  Prelude.Bitset.remove t.active_pos (Dag.Interval_list.position t.ilist u);
  let i = t.vec_index.(u) in
  assert (i >= 0);
  let removed = Prelude.Vec.swap_remove t.active_nodes i in
  assert (removed = u);
  if i < Prelude.Vec.length t.active_nodes then
    t.vec_index.(Prelude.Vec.get t.active_nodes i) <- i;
  t.vec_index.(u) <- -1

(* Is any active node an ancestor of [u]? Two equivalent probes with
   different costs: sweep u's ancestor intervals over the active-set
   bitset (cost ~ words spanned), or test each active node against u's
   interval list (cost ~ |active| * log #intervals) — the scan the
   paper describes, constant-time at best and O(n) at worst. Pick the
   cheaper one for the current active set. The encoding's intervals
   cover u itself, so u is masked/skipped. *)
let safe t u =
  let ivs_words = Dag.Interval_list.range_words t.ilist u in
  let card = Prelude.Bitset.cardinal t.active_pos in
  if ivs_words <= 4 * card then begin
    let p = Dag.Interval_list.position t.ilist u in
    Prelude.Bitset.remove t.active_pos p;
    let blocked = ref false in
    let ivs = Dag.Interval_list.intervals t.ilist u in
    let i = ref 0 in
    let len = Array.length ivs in
    while (not !blocked) && !i < len do
      let lo, hi = ivs.(!i) in
      t.ops.queries <- t.ops.queries + 1;
      if Prelude.Bitset.exists_in_range t.active_pos ~lo ~hi then blocked := true;
      incr i
    done;
    Prelude.Bitset.add t.active_pos p;
    not !blocked
  end
  else begin
    let blocked = ref false in
    let i = ref 0 in
    let len = Prelude.Vec.length t.active_nodes in
    while (not !blocked) && !i < len do
      let w = Prelude.Vec.get t.active_nodes !i in
      t.ops.queries <- t.ops.queries + 1;
      if w <> u && Dag.Interval_list.is_descendant t.ilist ~of_:u w then blocked := true;
      incr i
    done;
    not !blocked
  end

let rec pop_ready t =
  if Queue.is_empty t.ready then None
  else begin
    let u = Queue.pop t.ready in
    if Prelude.Bitset.mem t.started u then pop_ready t else Some u
  end

(* One scan pass: examine up to [budget] entries from the resumable
   cursor, wrapping; ready tasks move to the ready queue. Returns how
   many tasks it enqueued. *)
let scan t ~budget =
  t.ops.scans <- t.ops.scans + 1;
  let found = ref 0 in
  let examined = ref 0 in
  let limit = min budget (Prelude.Vec.length t.scan_list) in
  while !examined < limit && not (Prelude.Vec.is_empty t.scan_list) do
    if t.cursor >= Prelude.Vec.length t.scan_list then t.cursor <- 0;
    let u = Prelude.Vec.get t.scan_list t.cursor in
    if Prelude.Bitset.mem t.started u then
      ignore (Prelude.Vec.swap_remove t.scan_list t.cursor)
    else if safe t u then begin
      Queue.add u t.ready;
      incr found;
      ignore (Prelude.Vec.swap_remove t.scan_list t.cursor)
    end
    else t.cursor <- t.cursor + 1;
    incr examined
  done;
  !found

let next_ready t =
  match pop_ready t with
  | Some u -> Some u
  | None ->
    if Prelude.Vec.is_empty t.scan_list then None
    else if t.running = 0 then begin
      (* Nothing is running, so some minimal active task is necessarily
         ready; the scan must be exhaustive or the engine would stall. *)
      ignore (scan t ~budget:(Prelude.Vec.length t.scan_list));
      t.futile_stamp <- -1;
      pop_ready t
    end
    else if t.stamp = t.futile_stamp then
      (* nothing has changed since the last empty-handed pass *)
      None
    else begin
      (* While tasks run, one (possibly bounded) pass per new event:
         completions re-trigger scanning, and the resumable cursor
         spreads a big queue across events. *)
      let found = scan t ~budget:t.scan_batch in
      if found = 0 then t.futile_stamp <- t.stamp else t.futile_stamp <- -1;
      pop_ready t
    end

let memory_words t =
  Dag.Interval_list.memory_words t.ilist
  + (2 * (t.n / 63))
  + Prelude.Vec.length t.scan_list
  + Queue.length t.ready

let make ?ops ?scan_batch ?ilist g =
  let t = create ?ops ?scan_batch ?ilist g in
  {
    Intf.name = "LogicBlox";
    on_activated = on_activated t;
    on_started = on_started t;
    on_completed = on_completed t;
    next_ready = (fun () -> next_ready t);
    next_ready_into = None;
    ops = t.ops;
    memory_words = (fun () -> memory_words t);
  }

let factory = { Intf.fname = "logicblox"; make = (fun g -> make g) }

let precomputed_memory_words g =
  Dag.Interval_list.memory_words (Dag.Interval_list.build (Dag.Graph.transpose g))
