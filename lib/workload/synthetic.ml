type params = {
  nodes : int;
  edges : int;
  levels : int;
  initial : int;
  active_jobs : int;
  descendants : int option;
  task_fraction : float;
  seed : int;
}

let default_duration rng _u =
  Trace.Seq (Prelude.Rng.lognormal rng ~mu:0.0 ~sigma:1.2)

(* Layer sizes: every layer >= 1; layer 0 >= initial; sum = nodes. *)
let layer_sizes rng p =
  if p.levels < 1 || p.nodes < p.levels then
    invalid_arg "Synthetic: need nodes >= levels >= 1";
  if p.initial < 1 || p.initial > p.nodes - p.levels + 1 then
    invalid_arg "Synthetic: infeasible initial count";
  let sizes = Array.make p.levels 1 in
  sizes.(0) <- max 1 p.initial;
  let remaining = p.nodes - p.levels - (sizes.(0) - 1) in
  if remaining < 0 then invalid_arg "Synthetic: infeasible initial count";
  for _ = 1 to remaining do
    let l = Prelude.Rng.int rng p.levels in
    sizes.(l) <- sizes.(l) + 1
  done;
  sizes

let generate ?(duration = default_duration) ~name p =
  let rng = Prelude.Rng.create p.seed in
  let sizes = layer_sizes rng p in
  let layer_start = Array.make (p.levels + 1) 0 in
  for l = 0 to p.levels - 1 do
    layer_start.(l + 1) <- layer_start.(l) + sizes.(l)
  done;
  let layer_of = Array.make p.nodes 0 in
  for l = 0 to p.levels - 1 do
    for u = layer_start.(l) to layer_start.(l + 1) - 1 do
      layer_of.(u) <- l
    done
  done;
  let tree_edges = p.nodes - sizes.(0) in
  if p.edges < tree_edges then
    invalid_arg
      (Printf.sprintf "Synthetic: need >= %d edges to realize the levels" tree_edges);
  let b = Dag.Graph.Builder.create ~nodes:p.nodes () in
  let seen = Hashtbl.create (2 * p.edges) in
  let add_edge u v =
    if Hashtbl.mem seen (u, v) then false
    else begin
      Hashtbl.add seen (u, v) ();
      ignore (Dag.Graph.Builder.add_edge b u v);
      true
    end
  in
  (* Pick a parent on layer [l-1] for a node at index [i] of a layer of
     [cur] nodes, biased towards the aligned position: production
     Datalog DAGs are locally banded (rule outputs feed nearby rules),
     which keeps ancestor sets contiguous and interval lists compact —
     the "usually compact" regime of Section II-C. *)
  let local_parent rng ~l ~i ~cur ~band =
    let prev = sizes.(l - 1) in
    let aligned = i * prev / max cur 1 in
    let jitter = Prelude.Rng.int rng ((2 * band) + 1) - band in
    let idx = max 0 (min (prev - 1) (aligned + jitter)) in
    layer_start.(l - 1) + idx
  in
  (* spanning parents pin every node to its layer as its level *)
  let tree_parent = Array.make p.nodes (-1) in
  for u = layer_start.(1) to p.nodes - 1 do
    let l = layer_of.(u) in
    let i = u - layer_start.(l) in
    let band = max 4 (sizes.(l - 1) / 24) in
    let parent = local_parent rng ~l ~i ~cur:sizes.(l) ~band in
    tree_parent.(u) <- parent;
    ignore (add_edge parent u)
  done;
  (* Extra edges: predominantly shortcuts to tree ancestors — these add
     dependencies without adding reachability, which is what keeps
     production interval lists compact ("usually, but not always,
     compact", Section II-C) — plus a minority of genuine cross edges
     banded near the target. *)
  let tree_ancestor rng v =
    let rec up u steps =
      if steps = 0 || tree_parent.(u) < 0 then u else up tree_parent.(u) (steps - 1)
    in
    let hops = 2 + Prelude.Rng.int rng 6 in
    up tree_parent.(v) hops
  in
  let extra = p.edges - tree_edges in
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = (50 * extra) + 1000 in
  while !added < extra && !attempts < max_attempts do
    incr attempts;
    let v = layer_start.(1) + Prelude.Rng.int rng (p.nodes - layer_start.(1)) in
    let u =
      if Prelude.Rng.bernoulli rng 0.95 then tree_ancestor rng v
      else begin
        let lv = layer_of.(v) in
        let i = v - layer_start.(lv) in
        (* widen the band as collisions accumulate so placement terminates *)
        let band = max 8 (sizes.(lv - 1) / 12) + (!attempts / max 1 extra * 8) in
        local_parent rng ~l:lv ~i ~cur:sizes.(lv) ~band
      end
    in
    if u <> v && add_edge u v then incr added
  done;
  if !added < extra then
    invalid_arg "Synthetic: could not place the requested number of edges";
  let graph = Dag.Graph.Builder.build b in
  let m = Dag.Graph.edge_count graph in
  (* fixed per-edge uniforms make the closure size monotone in the threshold *)
  let coin = Array.init m (fun _ -> Prelude.Rng.float rng) in
  let reachable_from initial =
    Prelude.Bitset.cardinal (Dag.Reach.descendants_of_set graph initial)
  in
  let initial = Array.init p.initial (fun i -> i) in
  let source_cones () =
    Array.init sizes.(0) (fun s -> (Dag.Reach.count_descendants graph s, s))
  in
  (* Choose which sources get dirtied. With a descendant-count target
     (Figure 1 publishes one for trace #1), pick sources whose cones are
     each near target/k; otherwise, if the default sources cannot even
     reach the activation target, pick the largest cones. Both need a
     small source layer to be affordable. *)
  let initial =
    if p.initial > 1024 || sizes.(0) > 4096 then initial
    else begin
      match p.descendants with
      | Some d ->
        (* cones overlap, so the union falls short of the sum; try a few
           per-source inflation factors and keep the closest union *)
        let cones = source_cones () in
        let selection mult =
          let per = max 1 (d * mult / (10 * max 1 p.initial)) in
          let scored = Array.copy cones in
          Array.sort
            (fun (a, _) (b, _) -> compare (abs (a - per)) (abs (b - per)))
            scored;
          let chosen = Array.map snd (Array.sub scored 0 p.initial) in
          Array.sort compare chosen;
          chosen
        in
        let best = ref (selection 10) in
        let best_err = ref (abs (reachable_from !best - d)) in
        List.iter
          (fun mult ->
            let c = selection mult in
            let err = abs (reachable_from c - d) in
            if err < !best_err then begin
              best := c;
              best_err := err
            end)
          [ 11; 12; 13; 14; 16 ];
        !best
      | None ->
        if reachable_from initial >= p.active_jobs then initial
        else begin
          let cones = source_cones () in
          Array.sort (fun (a, _) (b, _) -> compare b a) cones;
          let chosen = Array.map snd (Array.sub cones 0 p.initial) in
          Array.sort compare chosen;
          chosen
        end
    end
  in
  let closure_size threshold =
    let w = Prelude.Bitset.create p.nodes in
    let queue = Queue.create () in
    Array.iter
      (fun s ->
        Prelude.Bitset.add w s;
        Queue.add s queue)
      initial;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Dag.Graph.iter_succ graph u (fun ~dst ~eid ->
          if coin.(eid) < threshold && not (Prelude.Bitset.mem w dst) then begin
            Prelude.Bitset.add w dst;
            Queue.add dst queue
          end)
    done;
    Prelude.Bitset.cardinal w - p.initial
  in
  let target = p.active_jobs in
  (* Stop the coarse threshold well below the target: near the
     percolation threshold individual edges gate huge cones, so the
     greedy edge-by-edge phase needs headroom to stay fine-grained. *)
  let coarse_target = max 1 (target / 3) in
  let lo = ref 0.0 and hi = ref 1.0 in
  for _ = 1 to 40 do
    let mid = 0.5 *. (!lo +. !hi) in
    if closure_size mid < coarse_target then lo := mid else hi := mid
  done;
  (* The percolation threshold is chunky (one hub edge can gate a huge
     cone), so refine from the under-shooting endpoint by enabling
     individual edges in coin order, preferring edges whose downstream
     cone does not badly overshoot the target. *)
  let edge_changed = Array.init m (fun e -> coin.(e) < !lo) in
  let w = Prelude.Bitset.create p.nodes in
  let queue = Queue.create () in
  let grow_from u =
    if not (Prelude.Bitset.mem w u) then begin
      Prelude.Bitset.add w u;
      Queue.add u queue;
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        Dag.Graph.iter_succ graph x (fun ~dst ~eid ->
            if edge_changed.(eid) && not (Prelude.Bitset.mem w dst) then begin
              Prelude.Bitset.add w dst;
              Queue.add dst queue
            end)
      done
    end
  in
  Array.iter grow_from initial;
  let active () = Prelude.Bitset.cardinal w - p.initial in
  let candidates =
    let c = Array.init m Fun.id in
    Array.sort (fun a b -> compare coin.(a) coin.(b)) c;
    Array.to_list c |> List.filter (fun e -> coin.(e) >= !lo)
  in
  let cone_size ~limit e =
    (* downstream cone the edge would add, without committing; the BFS
       stops past [limit] since any larger cone is rejected anyway *)
    if (not (Prelude.Bitset.mem w (Dag.Graph.edge_src graph e)))
       || Prelude.Bitset.mem w (Dag.Graph.edge_dst graph e)
    then 0
    else begin
      let seen = Hashtbl.create 64 in
      let q = Queue.create () in
      Hashtbl.replace seen (Dag.Graph.edge_dst graph e) ();
      Queue.add (Dag.Graph.edge_dst graph e) q;
      while (not (Queue.is_empty q)) && Hashtbl.length seen <= limit do
        let x = Queue.pop q in
        Dag.Graph.iter_succ graph x (fun ~dst ~eid ->
            if
              edge_changed.(eid)
              && (not (Prelude.Bitset.mem w dst))
              && not (Hashtbl.mem seen dst)
            then begin
              Hashtbl.replace seen dst ();
              Queue.add dst q
            end)
      done;
      Hashtbl.length seen
    end
  in
  let enable e =
    edge_changed.(e) <- true;
    if
      Prelude.Bitset.mem w (Dag.Graph.edge_src graph e)
      && not (Prelude.Bitset.mem w (Dag.Graph.edge_dst graph e))
    then grow_from (Dag.Graph.edge_dst graph e)
  in
  let refine () =
    List.iter
      (fun e ->
        let remaining = target - active () in
        if remaining > 0 && not edge_changed.(e) then begin
          let cone = cone_size ~limit:(max 1 remaining) e in
          if cone > 0 && cone <= max 1 remaining then enable e
        end)
      candidates
  in
  (* When only cones bigger than the deficit remain, take the smallest
     available one (sampled, bounded BFS) and resume: overshoot is then
     bounded by the graph's granularity rather than by its total reach. *)
  let smallest_jump () =
    let remaining = target - active () in
    let limit = max (4 * remaining) 1024 in
    let best = ref None in
    let sampled = ref 0 in
    List.iter
      (fun e ->
        if !sampled < 3000 && not edge_changed.(e) then begin
          let cone = cone_size ~limit e in
          if cone > 0 then begin
            incr sampled;
            match !best with
            | Some (bc, _) when bc <= cone -> ()
            | Some _ | None -> best := Some (cone, e)
          end
        end)
      candidates;
    Option.map snd !best
  in
  refine ();
  let rounds = ref 0 in
  while active () < target && !rounds < 64 do
    incr rounds;
    (match smallest_jump () with
    | Some e -> enable e
    | None -> rounds := 64);
    refine ()
  done;
  (* exactly [task_fraction * nodes] activatable tasks, dirty sources
     always among them *)
  let kind = Array.make p.nodes Trace.Predicate in
  Array.iter (fun u -> kind.(u) <- Trace.Task) initial;
  let task_target =
    max (Array.length initial)
      (int_of_float (Float.round (p.task_fraction *. float_of_int p.nodes)))
  in
  let order = Array.init p.nodes Fun.id in
  Prelude.Rng.shuffle rng order;
  let assigned = ref (Array.length initial) in
  Array.iter
    (fun u ->
      if !assigned < task_target && kind.(u) = Trace.Predicate then begin
        kind.(u) <- Trace.Task;
        incr assigned
      end)
    order;
  let shape =
    Array.init p.nodes (fun u ->
        match kind.(u) with
        | Trace.Predicate -> Trace.Seq 0.0
        | Trace.Task -> duration rng u)
  in
  Trace.create ~name ~graph ~kind ~shape ~initial ~edge_changed

(* ---- base-fact update streams -------------------------------------
   Random streams of insert/delete batches over a banded acyclic edge
   space, emitted as fact strings so callers can feed them straight to
   [Incr_sched.update] / the Datalog parser. The band (v - u bounded by
   [span]) keeps the edge relation a DAG, so transitive-closure-style
   programs stay finite, and keeps joins selective the way production
   dependency graphs are. *)
module Update_stream = struct
  type params = {
    nodes : int;
    span : int;
    base_edges : int;
    batches : int;
    batch_ops : int;
    delete_fraction : float;
    seed : int;
  }

  type t = { base : string list; steps : (string list * string list) list }

  (* Replay discipline: each step is a delta against the state left by
     its predecessors, so a consumer must prime [base] exactly once and
     then take the steps in order from the start. The cursor encodes
     that contract — it only moves forward, and [reset] rewinds to the
     first step on the understanding that the caller rebuilds the base
     state too. *)
  type cursor = {
    stream : t;
    mutable rest : (string list * string list) list;
    mutable consumed : int;
  }

  let cursor stream = { stream; rest = stream.steps; consumed = 0 }

  let next c =
    match c.rest with
    | [] -> None
    | step :: rest ->
      c.rest <- rest;
      c.consumed <- c.consumed + 1;
      Some step

  let reset c =
    c.rest <- c.stream.steps;
    c.consumed <- 0

  let consumed c = c.consumed

  let fact ~pred u v = Printf.sprintf "%s(\"v%d\",\"v%d\")" pred u v

  let generate ?(pred = "edge") (p : params) =
    if p.nodes < 2 then invalid_arg "Update_stream: need nodes >= 2";
    if p.span < 1 then invalid_arg "Update_stream: need span >= 1";
    if p.delete_fraction < 0.0 || p.delete_fraction > 1.0 then
      invalid_arg "Update_stream: delete_fraction outside [0, 1]";
    let span = min p.span (p.nodes - 1) in
    let rng = Prelude.Rng.create p.seed in
    (* live edges in a dense array for O(1) uniform sampling and
       swap-removal; the table maps an edge to its array slot *)
    let slot = Hashtbl.create (4 * max 16 p.base_edges) in
    let live = ref [||] in
    let nlive = ref 0 in
    let push e =
      if !nlive = Array.length !live then begin
        let bigger = Array.make (max 16 (2 * !nlive)) e in
        Array.blit !live 0 bigger 0 !nlive;
        live := bigger
      end;
      !live.(!nlive) <- e;
      Hashtbl.replace slot e !nlive;
      incr nlive
    in
    let remove_at i =
      let e = !live.(i) in
      Hashtbl.remove slot e;
      decr nlive;
      if i < !nlive then begin
        let last = !live.(!nlive) in
        !live.(i) <- last;
        Hashtbl.replace slot last i
      end;
      e
    in
    let sample_fresh () =
      (* rejection-sample an absent banded edge; the edge space has
         ~nodes*span slots, far more than any live set we grow *)
      let rec go attempts =
        if attempts > 10_000 then None
        else begin
          let d = 1 + Prelude.Rng.int rng span in
          if d >= p.nodes then go (attempts + 1)
          else begin
            let u = Prelude.Rng.int rng (p.nodes - d) in
            let e = (u, u + d) in
            if Hashtbl.mem slot e then go (attempts + 1) else Some e
          end
        end
      in
      go 0
    in
    let base = ref [] in
    for _ = 1 to p.base_edges do
      match sample_fresh () with
      | None -> invalid_arg "Update_stream: edge space too small for base_edges"
      | Some (u, v) ->
        push (u, v);
        base := fact ~pred u v :: !base
    done;
    (* within one batch an edge appears at most once, on one side:
       inserting then deleting (or vice versa) the same fact in a single
       [apply] call has no defined order *)
    let touched = Hashtbl.create 64 in
    let step () =
      Hashtbl.reset touched;
      let adds = ref [] and dels = ref [] in
      for _ = 1 to p.batch_ops do
        let want_delete =
          !nlive > 0 && Prelude.Rng.bernoulli rng p.delete_fraction
        in
        if want_delete then begin
          let rec pick attempts =
            if attempts > 64 || !nlive = 0 then ()
            else begin
              let i = Prelude.Rng.int rng !nlive in
              let e = !live.(i) in
              if Hashtbl.mem touched e then pick (attempts + 1)
              else begin
                let u, v = remove_at i in
                Hashtbl.replace touched e ();
                dels := fact ~pred u v :: !dels
              end
            end
          in
          pick 0
        end
        else begin
          (* sample_fresh only consults the live set, so it can hand
             back an edge deleted earlier in this very batch; retry so
             the one-side-per-batch invariant above actually holds *)
          let rec fresh_untouched attempts =
            if attempts > 64 then None
            else
              match sample_fresh () with
              | None -> None
              | Some e when Hashtbl.mem touched e ->
                fresh_untouched (attempts + 1)
              | Some e -> Some e
          in
          match fresh_untouched 0 with
          | None -> ()
          | Some ((u, v) as e) ->
            push e;
            Hashtbl.replace touched e ();
            adds := fact ~pred u v :: !adds
        end
      done;
      (List.rev !adds, List.rev !dels)
    in
    let steps = List.init p.batches (fun _ -> step ()) in
    { base = List.rev !base; steps }
end

let scale_shapes (t : Trace.t) ~factor =
  let scale = function
    | Trace.Unit -> Trace.Seq factor
    | Trace.Seq w -> Trace.Seq (w *. factor)
    | Trace.Par w -> Trace.Par (w *. factor)
    | Trace.Stages { width; length; chip } ->
      Trace.Stages { width; length; chip = chip *. factor }
  in
  { t with shape = Array.map scale t.shape }
