type pred_change = { pred : string; added : int; removed : int }

type comp_activity = {
  comp : int;
  work : int;
  output_changed : bool;
  input_changed : bool;
}

type report = {
  changes : pred_change list;
  activity : comp_activity list;
  analysis : Stratify.t;
}

(* Net per-predicate deltas relative to the pre-update snapshot. A
   tuple sits in at most one of the two tables; re-adding a removed
   tuple cancels instead of double-booking. *)
type deltas = {
  added : (string, Relation.t) Hashtbl.t;
  removed : (string, Relation.t) Hashtbl.t;
}

let delta_rel tbl pred ~arity =
  match Hashtbl.find_opt tbl pred with
  | Some r -> r
  | None ->
    let r = Relation.create ~arity in
    Hashtbl.add tbl pred r;
    r

let nonempty tbl pred =
  match Hashtbl.find_opt tbl pred with
  | Some r -> Relation.cardinality r > 0
  | None -> false

let record_add (d : deltas) pred ~arity tup =
  let removed = delta_rel d.removed pred ~arity in
  if not (Relation.remove removed tup) then
    ignore (Relation.add (delta_rel d.added pred ~arity) tup)

let record_remove (d : deltas) pred ~arity tup =
  let added = delta_rel d.added pred ~arity in
  if not (Relation.remove added tup) then
    ignore (Relation.add (delta_rel d.removed pred ~arity) tup)

(* Replace the [i]th body literal (a negated atom) by its positive
   counterpart so that the semi-naive delta can range over it: a
   derivation enabled/disabled by a change to a negated input is found
   by unifying that literal against exactly the changed tuples. *)
let flip_negation (rule : Ast.rule) i =
  let body =
    List.mapi
      (fun j lit ->
        if j = i then
          match lit with
          | Ast.Neg a -> Ast.Pos a
          | Ast.Pos _ | Ast.Cmp _ -> invalid_arg "flip_negation: literal not negated"
        else lit)
      rule.Ast.body
  in
  { rule with Ast.body }

let check_edb (anal : Stratify.t) (a : Ast.atom) =
  if not (Ast.atom_is_ground a) then
    invalid_arg (Printf.sprintf "Incremental: update atom %s is not ground" a.Ast.pred);
  match Hashtbl.find_opt anal.Stratify.index_of a.Ast.pred with
  | Some i when not anal.Stratify.edb.(i) ->
    invalid_arg
      (Printf.sprintf "Incremental: %s is intensional; update base facts only"
         a.Ast.pred)
  | Some _ | None -> ()

let apply ?(engine = Plan.default_engine) db program ~additions ~deletions =
  Aggregate.validate program;
  let anal = Stratify.analyze program in
  Matcher.register db program;
  List.iter (check_edb anal) additions;
  List.iter (check_edb anal) deletions;
  let symbols = Database.symbols db in
  let card pred =
    match Database.find db pred with Some r -> Relation.cardinality r | None -> 0
  in
  let make_exec r = Plan.executor ~engine ~symbols ~card r in
  let new_view = Matcher.view_of_db db in
  let d = { added = Hashtbl.create 16; removed = Hashtbl.create 16 } in
  (* The pre-update state as a delta overlay over the live database:
     old = (new \ added) ∪ removed. The net-delta invariant maintained
     by [record_add]/[record_remove] (a tuple sits in at most one table,
     cancellation on re-add) makes this identity hold at every point
     during processing, so no O(database) snapshot copy is needed. *)
  let old_view =
    let added p = Hashtbl.find_opt d.added p in
    let removed p = Hashtbl.find_opt d.removed p in
    let non_empty = function
      | Some r when Relation.cardinality r > 0 -> Some r
      | Some _ | None -> None
    in
    {
      Matcher.mem =
        (fun p tup ->
          let in_removed =
            match removed p with Some r -> Relation.mem r tup | None -> false
          in
          in_removed
          ||
          let in_added =
            match added p with Some r -> Relation.mem r tup | None -> false
          in
          (not in_added)
          && (match Database.find db p with
             | Some r -> Relation.mem r tup
             | None -> false));
      iter_matching =
        (fun p ~col ~value f ->
          (match Database.find db p with
          | Some r -> (
            match non_empty (added p) with
            | Some a ->
              Relation.iter_matching r ~col ~value (fun t ->
                  if not (Relation.mem a t) then f t)
            | None -> Relation.iter_matching r ~col ~value f)
          | None -> ());
          match non_empty (removed p) with
          | Some r -> Relation.iter_matching r ~col ~value f
          | None -> ());
      iter =
        (fun p f ->
          (match Database.find db p with
          | Some r -> (
            match non_empty (added p) with
            | Some a -> Relation.iter (fun t -> if not (Relation.mem a t) then f t) r
            | None -> Relation.iter f r)
          | None -> ());
          match removed p with Some r -> Relation.iter f r | None -> ());
    }
  in
  (* base updates *)
  List.iter
    (fun a ->
      let tup = Database.intern_atom db a in
      let rel = Database.relation db a.Ast.pred ~arity:(Array.length tup) in
      if Relation.remove rel tup then
        record_remove d a.Ast.pred ~arity:(Array.length tup) tup)
    deletions;
  List.iter
    (fun a ->
      let tup = Database.intern_atom db a in
      let rel = Database.relation db a.Ast.pred ~arity:(Array.length tup) in
      if Relation.add rel tup then record_add d a.Ast.pred ~arity:(Array.length tup) tup)
    additions;
  let head_arity (r : Ast.rule) = List.length r.Ast.head.Ast.args in
  let head_rel (r : Ast.rule) =
    Database.relation db r.Ast.head.Ast.pred ~arity:(head_arity r)
  in
  let activity = ref [] in
  let process_comp comp =
    let members = anal.Stratify.condensation.Dag.Scc.members.(comp) in
    let comp_preds = Hashtbl.create 4 in
    Array.iter
      (fun p -> Hashtbl.replace comp_preds anal.Stratify.predicates.(p) ())
      members;
    let rules =
      List.filter
        (fun (r : Ast.rule) -> r.Ast.body <> [])
        (Stratify.rules_for_comp anal program comp)
    in
    let work = ref 0 in
    if rules = [] then begin
      (* extensional component: its delta is the base update itself *)
      let output_changed =
        Array.exists
          (fun p ->
            nonempty d.added anal.Stratify.predicates.(p)
            || nonempty d.removed anal.Stratify.predicates.(p))
          members
      in
      activity := { comp; work = 0; output_changed; input_changed = false } :: !activity
    end
    else begin
      let input_changed =
        List.exists
          (fun (r : Ast.rule) ->
            List.exists
              (function
                | Ast.Pos a | Ast.Neg a ->
                  (not (Hashtbl.mem comp_preds a.Ast.pred))
                  && (nonempty d.added a.Ast.pred || nonempty d.removed a.Ast.pred)
                | Ast.Cmp _ -> false)
              r.Ast.body)
          rules
      in
      match rules with
      | [ r ] when Ast.rule_is_aggregate r ->
        (* aggregates are functional: recompute when dirty, diff exactly *)
        let work = ref 0 in
        if input_changed then begin
          let pred = r.Ast.head.Ast.pred in
          let arity = head_arity r in
          let rel = Database.relation db pred ~arity in
          let fresh = Relation.create ~arity in
          List.iter
            (fun tup -> ignore (Relation.add fresh tup))
            (Aggregate.evaluate ~engine ~symbols ~view:new_view ~card ~work r);
          let stale =
            Relation.fold
              (fun acc tup -> if Relation.mem fresh tup then acc else tup :: acc)
              [] rel
          in
          List.iter
            (fun tup ->
              ignore (Relation.remove rel tup);
              record_remove d pred ~arity tup)
            stale;
          Relation.iter
            (fun tup -> if Relation.add rel tup then record_add d pred ~arity tup)
            fresh
        end;
        let output_changed =
          Array.exists
            (fun p ->
              nonempty d.added anal.Stratify.predicates.(p)
              || nonempty d.removed anal.Stratify.predicates.(p))
            members
        in
        activity := { comp; work = !work; output_changed; input_changed } :: !activity
      | rules ->
      (* one executor per rule, shared by all three phases and every
         cascade round, so each (rule, delta position) plan is compiled
         at most once per update *)
      let execs = List.map (fun r -> (r, make_exec r)) rules in
      (* ---- Phase A: overdeletion against the old state ---- *)
      let overdeleted : (string, Relation.t) Hashtbl.t = Hashtbl.create 4 in
      let overdelete (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation db pred ~arity:(head_arity r) in
        if Relation.remove rel tup then begin
          record_remove d pred ~arity:(head_arity r) tup;
          ignore (Relation.add (delta_rel overdeleted pred ~arity:(head_arity r)) tup)
        end
      in
      (* round 0: external triggers. All staging callbacks here and in
         phases B/C mutate state the enumeration is reading — the head
         relation probed by recursive rules, and the net-delta overlay
         [old_view] iterates — so every exec goes through
         {!Plan.exec_rule_deferred}: derive first against frozen state,
         apply after the walk. The deferral does not change the old
         view: overdeletion removes from the live relation and records
         into [d.removed], which cancel out under the overlay. *)
      let round = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let stage_round (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation db pred ~arity:(head_arity r) in
        if Relation.mem rel tup then begin
          (* not yet overdeleted this phase *)
          overdelete r tup;
          ignore (Relation.add (delta_rel !round pred ~arity:(head_arity r)) tup)
        end
      in
      List.iter
        (fun ((r : Ast.rule), ex) ->
          List.iteri
            (fun i lit ->
              match lit with
              | Ast.Pos a when nonempty d.removed a.Ast.pred ->
                Plan.exec_rule_deferred ~view:old_view
                  ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                  ~work
                  ~keep:(Relation.mem (head_rel r))
                  ~on_derived:(stage_round r) ex
              | Ast.Neg a when nonempty d.added a.Ast.pred ->
                let flipped = flip_negation r i in
                Plan.exec_rule_deferred ~view:old_view
                  ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                  ~work
                  ~keep:(Relation.mem (head_rel flipped))
                  ~on_derived:(stage_round flipped)
                  (make_exec flipped)
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
            r.Ast.body)
        execs;
      (* cascade within the component *)
      while Hashtbl.length !round > 0 do
        let prev = !round in
        round := Hashtbl.create 4;
        List.iter
          (fun ((r : Ast.rule), ex) ->
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt prev a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    Plan.exec_rule_deferred ~view:old_view ~delta:(i, delta) ~work
                      ~keep:(Relation.mem (head_rel r))
                      ~on_derived:(stage_round r) ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          execs;
        (* tuples staged this round that were already overdeleted in a
           previous round were filtered by [stage_round]'s mem check *)
        ()
      done;
      (* ---- Phase B: rederivation over the new state ---- *)
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun ((r : Ast.rule), ex) ->
            match Hashtbl.find_opt overdeleted r.Ast.head.Ast.pred with
            | Some o when Relation.cardinality o > 0 ->
              Plan.exec_rule_deferred ~view:new_view ~work
                ~keep:(Relation.mem o)
                ~on_derived:(fun tup ->
                  if Relation.mem o tup then begin
                    let pred = r.Ast.head.Ast.pred in
                    let rel = Database.relation db pred ~arity:(head_arity r) in
                    if Relation.add rel tup then begin
                      record_add d pred ~arity:(head_arity r) tup;
                      ignore (Relation.remove o tup);
                      changed := true
                    end
                  end)
                ex
            | Some _ | None -> ())
          execs
      done;
      (* ---- Phase C: insertion against the new state ---- *)
      let roundc = ref (Hashtbl.create 4 : (string, Relation.t) Hashtbl.t) in
      let stage_add (r : Ast.rule) tup =
        let pred = r.Ast.head.Ast.pred in
        let rel = Database.relation db pred ~arity:(head_arity r) in
        if Relation.add rel tup then begin
          record_add d pred ~arity:(head_arity r) tup;
          ignore (Relation.add (delta_rel !roundc pred ~arity:(head_arity r)) tup)
        end
      in
      let keep_new (r : Ast.rule) =
        let rel = head_rel r in
        fun tup -> not (Relation.mem rel tup)
      in
      List.iter
        (fun ((r : Ast.rule), ex) ->
          List.iteri
            (fun i lit ->
              match lit with
              | Ast.Pos a
                when (not (Hashtbl.mem comp_preds a.Ast.pred))
                     && nonempty d.added a.Ast.pred ->
                Plan.exec_rule_deferred ~view:new_view
                  ~delta:(i, Hashtbl.find d.added a.Ast.pred)
                  ~work ~keep:(keep_new r) ~on_derived:(stage_add r) ex
              | Ast.Neg a when nonempty d.removed a.Ast.pred ->
                let flipped = flip_negation r i in
                Plan.exec_rule_deferred ~view:new_view
                  ~delta:(i, Hashtbl.find d.removed a.Ast.pred)
                  ~work
                  ~keep:(keep_new flipped)
                  ~on_derived:(stage_add flipped)
                  (make_exec flipped)
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
            r.Ast.body)
        execs;
      while Hashtbl.length !roundc > 0 do
        let prev = !roundc in
        roundc := Hashtbl.create 4;
        List.iter
          (fun ((r : Ast.rule), ex) ->
            List.iteri
              (fun i lit ->
                match lit with
                | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> (
                  match Hashtbl.find_opt prev a.Ast.pred with
                  | Some delta when Relation.cardinality delta > 0 ->
                    Plan.exec_rule_deferred ~view:new_view ~delta:(i, delta) ~work
                      ~keep:(keep_new r) ~on_derived:(stage_add r) ex
                  | Some _ | None -> ())
                | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
              r.Ast.body)
          execs
      done;
      let output_changed =
        Array.exists
          (fun p ->
            nonempty d.added anal.Stratify.predicates.(p)
            || nonempty d.removed anal.Stratify.predicates.(p))
          members
      in
      activity := { comp; work = !work; output_changed; input_changed } :: !activity
    end
  in
  Array.iter process_comp (Stratify.scc_order anal);
  let changes =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun pred r ->
        if Relation.cardinality r > 0 then Hashtbl.replace tbl pred (Relation.cardinality r, 0))
      d.added;
    Hashtbl.iter
      (fun pred r ->
        if Relation.cardinality r > 0 then begin
          let a = match Hashtbl.find_opt tbl pred with Some (a, _) -> a | None -> 0 in
          Hashtbl.replace tbl pred (a, Relation.cardinality r)
        end)
      d.removed;
    Hashtbl.fold (fun pred (added, removed) acc -> { pred; added; removed } :: acc) tbl []
    |> List.sort (fun a b -> String.compare a.pred b.pred)
  in
  { changes; activity = List.rev !activity; analysis = anal }
