lib/datalog/symbol.mli: Ast
