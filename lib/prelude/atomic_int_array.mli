(** Flat array of ints with atomic access (acquire loads, release
    stores, seq-cst compare-and-swap).

    [int Atomic.t array] boxes every element: each access chases a
    pointer to a two-word block, an extra cache miss per operation on
    large arrays. This is a plain [int array] whose fields are read and
    written with C11 atomics via stubs — the representation of
    choice for big per-task state machines (e.g. executor task status).

    All indices are unchecked except through {!length}; callers index
    within bounds as with [Array.unsafe_*]. *)

type t

val make : int -> t
(** [make n] is an array of [n] zeros. *)

val length : t -> int

external get : t -> int -> int = "prelude_aia_get" [@@noalloc]

external set : t -> int -> int -> unit = "prelude_aia_set" [@@noalloc]

external cas : t -> int -> int -> int -> bool = "prelude_aia_cas" [@@noalloc]
(** [cas a i expected desired] atomically replaces [a.(i)] with
    [desired] if it equals [expected], returning whether it did. *)
