let sort g =
  let n = Graph.node_count g in
  let indeg = Array.init n (Graph.in_degree g) in
  (* min-heap on node id for deterministic output *)
  let ready = Prelude.Heap.create ~cmp:compare ~dummy:0 () in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then Prelude.Heap.push ready u
  done;
  let order = Array.make n 0 in
  let k = ref 0 in
  let rec drain () =
    match Prelude.Heap.pop ready with
    | None -> ()
    | Some u ->
      order.(!k) <- u;
      incr k;
      Graph.iter_succ g u (fun ~dst ~eid:_ ->
          indeg.(dst) <- indeg.(dst) - 1;
          if indeg.(dst) = 0 then Prelude.Heap.push ready dst);
      drain ()
  in
  drain ();
  if !k = n then Some order else None

let sort_exn g =
  match sort g with
  | Some order -> order
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

let is_dag g = Option.is_some (sort g)

let check_order g order =
  let n = Graph.node_count g in
  if Array.length order <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun i u ->
        if u < 0 || u >= n || pos.(u) >= 0 then ok := false else pos.(u) <- i)
      order;
    if !ok then
      Graph.iter_edges g (fun ~src ~dst ~eid:_ ->
          if pos.(src) >= pos.(dst) then ok := false);
    !ok
  end
