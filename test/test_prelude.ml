(* Unit and property tests for the prelude: Vec, Bitset, Heap, Rng, Stats. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---------- Vec ---------- *)

let vec_basic () =
  let v = Prelude.Vec.create ~dummy:0 () in
  check_bool "empty" true (Prelude.Vec.is_empty v);
  Prelude.Vec.push v 1;
  Prelude.Vec.push v 2;
  Prelude.Vec.push v 3;
  check_int "length" 3 (Prelude.Vec.length v);
  check_int "get 0" 1 (Prelude.Vec.get v 0);
  check_int "get 2" 3 (Prelude.Vec.get v 2);
  Prelude.Vec.set v 1 42;
  check_int "set" 42 (Prelude.Vec.get v 1);
  Alcotest.(check (option int)) "pop" (Some 3) (Prelude.Vec.pop v);
  check_int "after pop" 2 (Prelude.Vec.length v)

let vec_growth () =
  let v = Prelude.Vec.create ~capacity:1 ~dummy:(-1) () in
  for i = 0 to 999 do
    Prelude.Vec.push v i
  done;
  check_int "length" 1000 (Prelude.Vec.length v);
  for i = 0 to 999 do
    if Prelude.Vec.get v i <> i then Alcotest.failf "slot %d corrupted" i
  done

let vec_bounds () =
  let v = Prelude.Vec.create ~dummy:0 () in
  Prelude.Vec.push v 7;
  Alcotest.check_raises "get -1" (Invalid_argument "Vec: index -1 out of bounds [0,1)")
    (fun () -> ignore (Prelude.Vec.get v (-1)));
  Alcotest.check_raises "get 1" (Invalid_argument "Vec: index 1 out of bounds [0,1)")
    (fun () -> ignore (Prelude.Vec.get v 1))

let vec_clear_and_top () =
  let v = Prelude.Vec.create ~dummy:0 () in
  Prelude.Vec.push v 5;
  Alcotest.(check (option int)) "top" (Some 5) (Prelude.Vec.top v);
  Prelude.Vec.clear v;
  check_int "cleared" 0 (Prelude.Vec.length v);
  Alcotest.(check (option int)) "top empty" None (Prelude.Vec.top v);
  Alcotest.(check (option int)) "pop empty" None (Prelude.Vec.pop v)

let vec_swap_remove () =
  let v = Prelude.Vec.of_array ~dummy:0 [| 10; 20; 30; 40 |] in
  let removed = Prelude.Vec.swap_remove v 1 in
  check_int "removed" 20 removed;
  check_int "length" 3 (Prelude.Vec.length v);
  check_int "swapped in" 40 (Prelude.Vec.get v 1);
  let removed = Prelude.Vec.swap_remove v 2 in
  check_int "removed last" 30 removed;
  check_int "length" 2 (Prelude.Vec.length v)

let vec_iterators () =
  let v = Prelude.Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  check_int "fold" 10 (Prelude.Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Prelude.Vec.exists (fun x -> x = 3) v);
  check_bool "not exists" false (Prelude.Vec.exists (fun x -> x = 9) v);
  let acc = ref [] in
  Prelude.Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Prelude.Vec.to_list v)

let vec_qcheck =
  QCheck.Test.make ~name:"vec: to_array mirrors pushes" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let v = Prelude.Vec.create ~dummy:0 () in
      List.iter (Prelude.Vec.push v) xs;
      Prelude.Vec.to_list v = xs)

let vec_swap_remove_qcheck =
  QCheck.Test.make ~name:"vec: swap_remove preserves multiset" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 20) small_int) small_int)
    (fun (xs, k) ->
      let v = Prelude.Vec.create ~dummy:0 () in
      List.iter (Prelude.Vec.push v) xs;
      let i = k mod List.length xs in
      let removed = Prelude.Vec.swap_remove v i in
      let remaining = List.sort compare (Prelude.Vec.to_list v) in
      List.sort compare (removed :: remaining) = List.sort compare xs)

(* ---------- Bitset ---------- *)

let bitset_basic () =
  let b = Prelude.Bitset.create 200 in
  check_bool "empty" true (Prelude.Bitset.is_empty b);
  Prelude.Bitset.add b 0;
  Prelude.Bitset.add b 63;
  Prelude.Bitset.add b 64;
  Prelude.Bitset.add b 199;
  check_int "cardinal" 4 (Prelude.Bitset.cardinal b);
  check_bool "mem 63" true (Prelude.Bitset.mem b 63);
  check_bool "mem 62" false (Prelude.Bitset.mem b 62);
  Prelude.Bitset.add b 63;
  check_int "idempotent add" 4 (Prelude.Bitset.cardinal b);
  Prelude.Bitset.remove b 63;
  check_bool "removed" false (Prelude.Bitset.mem b 63);
  check_int "cardinal after remove" 3 (Prelude.Bitset.cardinal b);
  Prelude.Bitset.remove b 63;
  check_int "idempotent remove" 3 (Prelude.Bitset.cardinal b)

let bitset_bounds () =
  let b = Prelude.Bitset.create 10 in
  Alcotest.check_raises "add 10" (Invalid_argument "Bitset: 10 out of bounds [0,10)")
    (fun () -> Prelude.Bitset.add b 10);
  Alcotest.check_raises "mem -1" (Invalid_argument "Bitset: -1 out of bounds [0,10)")
    (fun () -> ignore (Prelude.Bitset.mem b (-1)))

let bitset_range () =
  let b = Prelude.Bitset.create 300 in
  Prelude.Bitset.add b 100;
  check_bool "inside" true (Prelude.Bitset.exists_in_range b ~lo:50 ~hi:150);
  check_bool "exact" true (Prelude.Bitset.exists_in_range b ~lo:100 ~hi:100);
  check_bool "below" false (Prelude.Bitset.exists_in_range b ~lo:0 ~hi:99);
  check_bool "above" false (Prelude.Bitset.exists_in_range b ~lo:101 ~hi:299);
  check_bool "inverted" false (Prelude.Bitset.exists_in_range b ~lo:150 ~hi:50);
  Alcotest.(check (option int)) "first" (Some 100)
    (Prelude.Bitset.first_in_range b ~lo:0 ~hi:299);
  Alcotest.(check (option int)) "first none" None
    (Prelude.Bitset.first_in_range b ~lo:101 ~hi:299)

let bitset_iter_sorted () =
  let b = Prelude.Bitset.create 500 in
  List.iter (Prelude.Bitset.add b) [ 400; 3; 64; 65; 128 ];
  Alcotest.(check (list int)) "sorted members" [ 3; 64; 65; 128; 400 ]
    (Prelude.Bitset.to_list b)

let bitset_copy_clear () =
  let b = Prelude.Bitset.create 100 in
  Prelude.Bitset.add b 5;
  let c = Prelude.Bitset.copy b in
  Prelude.Bitset.add c 6;
  check_bool "copy independent" false (Prelude.Bitset.mem b 6);
  Prelude.Bitset.clear b;
  check_int "clear" 0 (Prelude.Bitset.cardinal b);
  check_int "copy unaffected" 2 (Prelude.Bitset.cardinal c)

let bitset_range_qcheck =
  QCheck.Test.make ~name:"bitset: exists_in_range matches naive" ~count:500
    QCheck.(triple (list_of_size Gen.(0 -- 30) (int_bound 199)) (int_bound 199) (int_bound 199))
    (fun (members, a, b) ->
      let lo = min a b and hi = max a b in
      let set = Prelude.Bitset.create 200 in
      List.iter (Prelude.Bitset.add set) members;
      let naive = List.exists (fun x -> x >= lo && x <= hi) members in
      Prelude.Bitset.exists_in_range set ~lo ~hi = naive)

let bitset_first_qcheck =
  QCheck.Test.make ~name:"bitset: first_in_range matches naive" ~count:500
    QCheck.(triple (list_of_size Gen.(0 -- 30) (int_bound 199)) (int_bound 199) (int_bound 199))
    (fun (members, a, b) ->
      let lo = min a b and hi = max a b in
      let set = Prelude.Bitset.create 200 in
      List.iter (Prelude.Bitset.add set) members;
      let naive =
        List.sort compare members |> List.find_opt (fun x -> x >= lo && x <= hi)
      in
      Prelude.Bitset.first_in_range set ~lo ~hi = naive)

(* ---------- Heap ---------- *)

let heap_basic () =
  let h = Prelude.Heap.create ~cmp:compare ~dummy:0 () in
  List.iter (Prelude.Heap.push h) [ 5; 1; 4; 1; 3 ];
  check_int "size" 5 (Prelude.Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Prelude.Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 3; 4; 5 ]
    (Prelude.Heap.to_sorted_list h);
  check_bool "drained" true (Prelude.Heap.is_empty h)

let heap_of_array () =
  let h = Prelude.Heap.of_array ~cmp:compare ~dummy:0 [| 9; 2; 7; 2; 8; 1 |] in
  Alcotest.(check (list int)) "heapify" [ 1; 2; 2; 7; 8; 9 ]
    (Prelude.Heap.to_sorted_list h)

let heap_custom_cmp () =
  let h = Prelude.Heap.create ~cmp:(fun a b -> compare b a) ~dummy:0 () in
  List.iter (Prelude.Heap.push h) [ 3; 9; 5 ];
  Alcotest.(check (option int)) "max-heap" (Some 9) (Prelude.Heap.pop h)

let heap_qcheck =
  QCheck.Test.make ~name:"heap: drain equals sort" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = Prelude.Heap.create ~cmp:compare ~dummy:0 () in
      List.iter (Prelude.Heap.push h) xs;
      Prelude.Heap.to_sorted_list h = List.sort compare xs)

let remove_one v l =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest -> if x = v then List.rev_append acc rest else go (x :: acc) rest
  in
  go [] l

let heap_interleaved_qcheck =
  QCheck.Test.make ~name:"heap: pop is always current minimum" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Prelude.Heap.create ~cmp:compare ~dummy:0 () in
      let model = ref [] in
      List.for_all
        (fun (is_pop, x) ->
          if is_pop then begin
            let expect =
              match !model with [] -> None | l -> Some (List.fold_left min max_int l)
            in
            let got = Prelude.Heap.pop h in
            (match got with Some v -> model := remove_one v !model | None -> ());
            expect = got
          end
          else begin
            Prelude.Heap.push h x;
            model := x :: !model;
            true
          end)
        ops)

(* ---------- Rng ---------- *)

let rng_determinism () =
  let a = Prelude.Rng.create 42 and b = Prelude.Rng.create 42 in
  for _ = 1 to 100 do
    if Prelude.Rng.int64 a <> Prelude.Rng.int64 b then Alcotest.fail "diverged"
  done

let rng_seed_sensitivity () =
  let a = Prelude.Rng.create 1 and b = Prelude.Rng.create 2 in
  check_bool "different seeds differ" true (Prelude.Rng.int64 a <> Prelude.Rng.int64 b)

let rng_int_bounds () =
  let r = Prelude.Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Prelude.Rng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prelude.Rng.int r 0))

let rng_float_range () =
  let r = Prelude.Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Prelude.Rng.float r in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let rng_shuffle_permutation () =
  let r = Prelude.Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Prelude.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let rng_sample () =
  let r = Prelude.Rng.create 5 in
  let s = Prelude.Rng.sample_without_replacement r ~k:10 ~n:30 in
  check_int "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate sample"
  done;
  Array.iter (fun x -> if x < 0 || x >= 30 then Alcotest.fail "out of range") s

let rng_gaussian_moments () =
  let r = Prelude.Rng.create 13 in
  let acc = Prelude.Stats.Acc.create () in
  for _ = 1 to 20_000 do
    Prelude.Stats.Acc.add acc (Prelude.Rng.gaussian r ~mu:5.0 ~sigma:2.0)
  done;
  let mean = Prelude.Stats.Acc.mean acc and sd = Prelude.Stats.Acc.stddev acc in
  check_bool "mean near 5" true (abs_float (mean -. 5.0) < 0.1);
  check_bool "sd near 2" true (abs_float (sd -. 2.0) < 0.1)

let rng_lognormal_positive () =
  let r = Prelude.Rng.create 17 in
  for _ = 1 to 1000 do
    if Prelude.Rng.lognormal r ~mu:0.0 ~sigma:1.5 <= 0.0 then
      Alcotest.fail "lognormal must be positive"
  done

let rng_exponential () =
  let r = Prelude.Rng.create 19 in
  let acc = Prelude.Stats.Acc.create () in
  for _ = 1 to 20_000 do
    Prelude.Stats.Acc.add acc (Prelude.Rng.exponential r ~rate:2.0)
  done;
  check_bool "mean near 1/rate" true
    (abs_float (Prelude.Stats.Acc.mean acc -. 0.5) < 0.02)

(* ---------- Stats ---------- *)

let stats_summary () =
  let s = Prelude.Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check_int "count" 4 s.Prelude.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Prelude.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Prelude.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Prelude.Stats.max;
  Alcotest.(check (float 1e-9)) "total" 10.0 s.Prelude.Stats.total;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Prelude.Stats.stddev

let stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Prelude.Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 30.0 (Prelude.Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Prelude.Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25" 20.0 (Prelude.Stats.percentile xs 25.0);
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Prelude.Stats.percentile [||] 50.0))

let stats_acc_matches_batch =
  QCheck.Test.make ~name:"stats: streaming equals batch" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let batch = Prelude.Stats.summarize arr in
      let acc = Prelude.Stats.Acc.create () in
      Array.iter (Prelude.Stats.Acc.add acc) arr;
      let s = Prelude.Stats.Acc.summary acc in
      abs_float (s.Prelude.Stats.mean -. batch.Prelude.Stats.mean) < 1e-9
      && abs_float (s.Prelude.Stats.stddev -. batch.Prelude.Stats.stddev) < 1e-9
      && s.Prelude.Stats.count = batch.Prelude.Stats.count)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "prelude"
    [
      ( "vec",
        [
          test `Quick "basic ops" vec_basic;
          test `Quick "growth preserves contents" vec_growth;
          test `Quick "bounds checking" vec_bounds;
          test `Quick "clear and top" vec_clear_and_top;
          test `Quick "swap_remove" vec_swap_remove;
          test `Quick "iterators" vec_iterators;
        ]
        @ qsuite [ vec_qcheck; vec_swap_remove_qcheck ] );
      ( "bitset",
        [
          test `Quick "basic ops" bitset_basic;
          test `Quick "bounds checking" bitset_bounds;
          test `Quick "range queries" bitset_range;
          test `Quick "iteration is sorted" bitset_iter_sorted;
          test `Quick "copy and clear" bitset_copy_clear;
        ]
        @ qsuite [ bitset_range_qcheck; bitset_first_qcheck ] );
      ( "heap",
        [
          test `Quick "basic ops" heap_basic;
          test `Quick "of_array heapifies" heap_of_array;
          test `Quick "custom comparator" heap_custom_cmp;
        ]
        @ qsuite [ heap_qcheck; heap_interleaved_qcheck ] );
      ( "rng",
        [
          test `Quick "deterministic per seed" rng_determinism;
          test `Quick "seed sensitivity" rng_seed_sensitivity;
          test `Quick "int stays in bounds" rng_int_bounds;
          test `Quick "float in [0,1)" rng_float_range;
          test `Quick "shuffle is a permutation" rng_shuffle_permutation;
          test `Quick "sampling without replacement" rng_sample;
          test `Slow "gaussian moments" rng_gaussian_moments;
          test `Quick "lognormal positive" rng_lognormal_positive;
          test `Slow "exponential mean" rng_exponential;
        ] );
      ( "stats",
        [
          test `Quick "summary of known sample" stats_summary;
          test `Quick "percentiles" stats_percentile;
        ]
        @ qsuite [ stats_acc_matches_batch ] );
    ]
