lib/sched/lookahead.ml: Array Dag Intf Level_based Prelude Printf Queue
