(* Minimal JSON: just enough to read back the trace files and bench
   JSON this repo emits (tests, [dms trace], tools/bench_check). No
   external dependency; strict — anything outside RFC 8259 (bare NaN,
   trailing commas, comments) is a parse error, which is the point for
   a well-formedness check. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" pos msg))

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected '%s'" word)

let utf8_of_code buf u =
  (* code point to UTF-8 bytes; lone surrogates are kept as-is (the
     replacement would lose information a test might care about) *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st.pos "truncated \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let u =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st.pos "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        utf8_of_code buf u
      | _ -> fail st.pos "bad escape");
      go ()
    | Some c when Char.code c < 0x20 -> fail st.pos "control character in string"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> fail start ("bad number " ^ s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Object []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st.pos "expected ',' or '}'"
      in
      Object (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Array []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st.pos "expected ',' or ']'"
      in
      Array (elements [])
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st.pos "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let member key = function
  | Object kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function Array l -> Some l | _ -> None

let to_assoc = function Object kvs -> Some kvs | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
