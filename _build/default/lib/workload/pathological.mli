(** Adversarial instances from the paper's analysis.

    - {!tight_example}: the Theorem 9 / Figure 2 construction on which
      LevelBased is Θ(L²) while the optimal schedule is Θ(L).
    - {!deep_chain}: a fully-active path; drives the quadratic
      active-queue rescanning of the LogicBlox scheduler while
      LevelBased stays linear.
    - {!interval_blowup}: dense random bipartite layers whose ancestor
      sets fragment into Θ(width) intervals per node — the O(V²)
      interval-list memory worst case, and the expensive-scan instance
      behind the hybrid scheduler's "rescue" anecdote of Section VI.
    - {!unit_layers}: unit tasks in uniform layers; the workload for
      checking the Lemma 3 bound (makespan <= w/P + L). *)

val tight_example : levels:int -> Trace.t
(** Chain j_1 -> ... -> j_L of unit tasks; each j_{i-1} also releases a
    sequential task k_i with work = span = L - i + 1. All edges
    propagate changes; j_1 is initially dirty. Requires [levels >= 2]. *)

val deep_chain : n:int -> Trace.t
(** A path of [n] unit tasks, all activated from the single source.
    Note that the active queue stays tiny here (activation is revealed
    one hop at a time), so this stresses depth, not queue scanning. *)

val broom : spine:int -> fan:int -> Trace.t
(** The LogicBlox-killer of the Section VI anecdote: a spine of [spine]
    chained unit tasks whose head also fans out to [fan] tasks, each of
    which additionally depends on the spine's tail. The fan is activated
    immediately but stays blocked until the whole spine has run, so the
    scheduler's active queue holds [fan] unready tasks through [spine]
    completions — Theta(spine * fan) wasted ancestor queries for any
    scan-based scheduler, O(spine + fan) for LevelBased. *)

val interval_blowup : width:int -> layers:int -> density:float -> seed:int -> Trace.t
(** [layers] ranks of [width] nodes; each consecutive pair is connected
    by a random bipartite graph of the given [density] (plus a spanning
    parent to pin levels). All edges propagate; the whole first layer is
    initially dirty. Unit tasks. *)

val unit_layers : width:int -> layers:int -> fanout:int -> seed:int -> Trace.t
(** Uniform layered DAG of unit tasks, everything active. *)
