/* Monotonic clock for the multicore executor: CLOCK_MONOTONIC seconds
   as a float, immune to wall-clock adjustments (Unix.gettimeofday is
   not). The unboxed native variant makes a reading allocation-free,
   which matters when every task logs two timestamps. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim double prelude_mclock_now_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

CAMLprim value prelude_mclock_now(value unit)
{
  return caml_copy_double(prelude_mclock_now_unboxed(unit));
}
