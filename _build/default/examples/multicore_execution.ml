(* Running a maintenance schedule for real: the same online scheduler
   protocol that drives the simulator dispatches actual OCaml 5 domains,
   with the scheduler consulted under a dispatch lock and activations
   revealed by genuine task completions.

   On a multi-core host the wall clock tracks the simulator's predicted
   makespan; on a single-core container everything serializes, and the
   interesting output is the validated schedule itself (also exported as
   a Chrome trace for chrome://tracing).

   Run with: dune exec examples/multicore_execution.exe *)

let () =
  Format.printf "host cores (recommended domain count): %d@.@."
    (Domain.recommended_domain_count ());
  (* a build-system-flavoured dependency graph: 120 modules in 8 layers *)
  let buf = Buffer.create 4096 in
  let rng = Prelude.Rng.create 2026 in
  for m = 8 to 119 do
    (* each module depends on a couple of lower-numbered ones *)
    for _ = 1 to 2 do
      Buffer.add_string buf
        (Printf.sprintf "dep(\"m%d\",\"m%d\").\n" m (Prelude.Rng.int rng m))
    done
  done;
  let session =
    Incr_sched.materialize
      (Buffer.contents buf
      ^ {|
        needs(X, Y) :- dep(X, Y).
        needs(X, Z) :- needs(X, Y), dep(Y, Z).
        fanin(Y, cnt(X)) :- needs(X, Y).
      |})
  in
  (* work_unit 1.0: a task's duration is its tuples-examined count *)
  let tt =
    Incr_sched.update session ~work_unit:1.0
      ~additions:[ {|dep("m3","m0")|}; {|dep("m119","m2")|} ]
      ~deletions:[ {|dep("m10","m1")|} ]
  in
  let trace = tt.Datalog.To_trace.trace in
  Format.printf "maintenance DAG: %a@.@." Workload.Trace.pp_stats
    (Workload.Trace.stats trace);
  let domains = 4 in
  let work_unit = 5e-6 (* seconds of real work per tuple examined *) in
  List.iter
    (fun name ->
      let factory = Sched.Registry.find_exn name in
      let predicted =
        (Simulator.Engine.run
           ~config:{ Simulator.Engine.procs = domains; op_cost = 0.0; record_log = false }
           ~sched:factory trace)
          .Simulator.Engine.metrics
          .Simulator.Metrics.makespan
        *. work_unit
      in
      let r = Parallel.Executor.run ~domains ~work_unit ~sched:factory trace in
      let verdict =
        match Parallel.Executor.check trace r with Ok () -> "valid" | Error e -> e
      in
      Format.printf "%-12s predicted %.4fs, measured %.4fs over %d tasks (%s)@." name
        predicted r.Parallel.Executor.wall_makespan r.Parallel.Executor.tasks_executed
        verdict)
    [ "levelbased"; "logicblox"; "hybrid" ];
  (* export one real schedule for chrome://tracing *)
  let r = Parallel.Executor.run ~domains ~work_unit ~sched:Sched.Hybrid.factory trace in
  let entries =
    Array.map
      (fun (e : Parallel.Executor.task_record) ->
        { Simulator.Engine.task = e.task; start = e.start; finish = e.finish })
      r.Parallel.Executor.log
  in
  let labels u = tt.Datalog.To_trace.labels.(u) in
  Simulator.Trace_export.to_file ~labels "multicore_schedule.json" ~procs:domains entries;
  Format.printf "@.real schedule written to multicore_schedule.json@."
