(** Chrome [trace_event] JSON export and re-import.

    The written file is the object form ({"traceEvents": [...]}),
    loadable in chrome://tracing and {{:https://ui.perfetto.dev}
    Perfetto}: one process, one track (tid) per worker ring, spans as
    "X" complete events with microsecond [ts]/[dur], wakes as
    thread-scoped instants, and a per-worker dropped-record count
    under "otherData". The event kind always travels in the "cat"
    field and the payload in [args.v], so {!events_of_json} can map a
    parsed file losslessly back onto ring records. *)

val write : ?task_label:(int -> string) -> out_channel -> Trace.t -> unit
(** [task_label] names task spans (and suffixes DRed phase spans) by
    their id — e.g. condensation-component labels; defaults to the
    bare kind name. Call only after the trace's writers quiesced. *)

val to_file : ?task_label:(int -> string) -> string -> Trace.t -> unit

val events_of_json : Json.t -> Summary.event list
(** Normalized events of a parsed trace file; skips metadata records
    and events of unknown kind. Raises {!Json.Parse_error} when there
    is no [traceEvents] array at all. *)

val dropped_of_json : Json.t -> int array option
(** The per-worker dropped counts from "otherData", when present. *)

val summary_of_json : Json.t -> Summary.t
(** [Summary.of_events] over {!events_of_json}, with domain count
    inferred from the largest tid. *)
