(** The LevelBased scheduler (paper, Section III).

    Precomputation: node levels, O(V+E) time and O(V) space. At run
    time the scheduler maintains per-level FIFO buckets of active
    unstarted tasks and dispatches from the lowest populated level; a
    task at level [l] is safe exactly when no active or running task
    sits at a level below [l] (Lemma 1).

    The paper's O(n+L) runtime assumes activations arrive
    level-monotonically, which holds when LevelBased runs alone. Under
    the hybrid scheme a co-scheduler may complete deep tasks early and
    thereby activate tasks below the current bucket pointer, so this
    implementation uses lazy min-heaps over populated levels instead of
    a monotone pointer: O((n+L) log L) worst case, same O(n) state. *)

module Core : sig
  type t

  val create : ?ops:Intf.ops -> ?levels:int array -> Dag.Graph.t -> t
  (** [levels] skips the precomputation (caller guarantees validity). *)

  val graph : t -> Dag.Graph.t
  val levels : t -> int array
  val ops : t -> Intf.ops
  val active : t -> Prelude.Bitset.t
  (** Tasks activated and not yet completed (includes running ones). *)

  val is_started : t -> Intf.task -> bool
  val on_activated : t -> Intf.task -> unit
  val on_started : t -> Intf.task -> unit
  val on_completed : t -> Intf.task -> unit

  val min_queued_level : t -> int option
  (** Lowest level holding an active, unstarted task. *)

  val min_running_level : t -> int option

  val next_ready : t -> Intf.task option

  val next_ready_into : t -> Intf.task array -> int -> int
  (** Batched, allocation-free [next_ready]+[on_started] pairs; see
      {!Intf.instance}. *)

  val memory_words : t -> int
  (** Resident scheduler state: levels array, per-level counters, and
      two capacity-[n] bitsets at [(n + 62) / 63] words each. *)
end

val make : ?ops:Intf.ops -> ?levels:int array -> Dag.Graph.t -> Intf.instance

val factory : Intf.factory
