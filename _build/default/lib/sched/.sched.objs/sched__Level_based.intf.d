lib/sched/level_based.mli: Dag Intf Prelude
