let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let check_coverage (trace : Workload.Trace.t) (log : Engine.log_entry array) =
  let w = Workload.Trace.active_set trace in
  let seen = Prelude.Bitset.create (Dag.Graph.node_count trace.graph) in
  let rec entries i =
    if i >= Array.length log then Ok ()
    else begin
      let e = log.(i) in
      if not (Prelude.Bitset.mem w e.Engine.task) then
        err "task %d executed but not in the active set" e.Engine.task
      else if Prelude.Bitset.mem seen e.Engine.task then
        err "task %d executed twice" e.Engine.task
      else begin
        Prelude.Bitset.add seen e.Engine.task;
        entries (i + 1)
      end
    end
  in
  let* () = entries 0 in
  if Prelude.Bitset.cardinal seen <> Prelude.Bitset.cardinal w then
    err "executed %d tasks but the active set has %d"
      (Prelude.Bitset.cardinal seen)
      (Prelude.Bitset.cardinal w)
  else Ok ()

let check_times (trace : Workload.Trace.t) (log : Engine.log_entry array) =
  let eps = 1e-9 in
  let rec go i =
    if i >= Array.length log then Ok ()
    else begin
      let e = log.(i) in
      let span =
        match trace.kind.(e.Engine.task) with
        | Workload.Trace.Predicate -> 0.0
        | Workload.Trace.Task -> Workload.Trace.shape_span trace.shape.(e.Engine.task)
      in
      if e.Engine.start > e.Engine.finish +. eps then
        err "task %d starts after it finishes" e.Engine.task
      else if e.Engine.finish -. e.Engine.start +. eps < span then
        err "task %d ran for %.9f but its span is %.9f" e.Engine.task
          (e.Engine.finish -. e.Engine.start)
          span
      else go (i + 1)
    end
  in
  go 0

let check_precedence (trace : Workload.Trace.t) (log : Engine.log_entry array) =
  let w = Workload.Trace.active_set trace in
  let n = Dag.Graph.node_count trace.graph in
  let finish = Array.make n infinity in
  Array.iter (fun e -> finish.(e.Engine.task) <- e.Engine.finish) log;
  let eps = 1e-9 in
  let rec go i =
    if i >= Array.length log then Ok ()
    else begin
      let e = log.(i) in
      let anc = Dag.Reach.ancestors trace.graph e.Engine.task in
      let bad = ref None in
      Prelude.Bitset.iter
        (fun a ->
          if
            Prelude.Bitset.mem w a
            && finish.(a) > e.Engine.start +. eps
            && !bad = None
          then bad := Some a)
        anc;
      match !bad with
      | Some a ->
        err "task %d started at %.9f before active ancestor %d finished at %.9f"
          e.Engine.task e.Engine.start a finish.(a)
      | None -> go (i + 1)
    end
  in
  go 0

let check ?(check_spans = true) trace log =
  let* () = check_coverage trace log in
  let* () = if check_spans then check_times trace log else Ok () in
  check_precedence trace log

let check_run trace (r : Engine.run) =
  match r.Engine.log with
  | None -> Error "run recorded no log (set record_log)"
  | Some log -> check trace log
