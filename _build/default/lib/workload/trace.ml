type node_kind = Task | Predicate

type shape =
  | Unit
  | Seq of float
  | Par of float
  | Stages of { width : int; length : int; chip : float }

let shape_work = function
  | Unit -> 1.0
  | Seq w -> w
  | Par w -> w
  | Stages { width; length; chip } -> float_of_int (width * length) *. chip

let shape_span = function
  | Unit -> 1.0
  | Seq w -> w
  | Par w -> if w <= 0.0 then 0.0 else 1.0
  | Stages { length; chip; _ } -> float_of_int length *. chip

type t = {
  name : string;
  graph : Dag.Graph.t;
  kind : node_kind array;
  shape : shape array;
  initial : int array;
  edge_changed : bool array;
}

let validate_shape = function
  | Unit -> ()
  | Seq w | Par w ->
    if w < 0.0 || not (Float.is_finite w) then invalid_arg "Trace: negative work"
  | Stages { width; length; chip } ->
    if width < 1 || length < 1 || chip < 0.0 || not (Float.is_finite chip) then
      invalid_arg "Trace: bad stages shape"

let create ~name ~graph ~kind ~shape ~initial ~edge_changed =
  let n = Dag.Graph.node_count graph in
  let m = Dag.Graph.edge_count graph in
  if Array.length kind <> n then invalid_arg "Trace.create: kind length";
  if Array.length shape <> n then invalid_arg "Trace.create: shape length";
  if Array.length edge_changed <> m then invalid_arg "Trace.create: edge_changed length";
  if not (Dag.Topo.is_dag graph) then invalid_arg "Trace.create: graph has a cycle";
  Array.iter validate_shape shape;
  let prev = ref (-1) in
  Array.iter
    (fun u ->
      if u < 0 || u >= n then invalid_arg "Trace.create: initial out of range";
      if u <= !prev then invalid_arg "Trace.create: initial not sorted/distinct";
      prev := u)
    initial;
  { name; graph; kind; shape; initial; edge_changed }

let active_set t =
  let n = Dag.Graph.node_count t.graph in
  let w = Prelude.Bitset.create n in
  let queue = Queue.create () in
  Array.iter
    (fun s ->
      Prelude.Bitset.add w s;
      Queue.add s queue)
    t.initial;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Dag.Graph.iter_succ t.graph u (fun ~dst ~eid ->
        if t.edge_changed.(eid) && not (Prelude.Bitset.mem w dst) then begin
          Prelude.Bitset.add w dst;
          Queue.add dst queue
        end)
  done;
  w

let work t u =
  match t.kind.(u) with Predicate -> 0.0 | Task -> shape_work t.shape.(u)

let total_active_work t =
  let w = active_set t in
  let total = ref 0.0 in
  Prelude.Bitset.iter (fun u -> total := !total +. work t u) w;
  !total

type stats = {
  nodes : int;
  edges : int;
  initial_tasks : int;
  active_jobs : int;
  levels : int;
  activatable : int;
  active_work : float;
}

let levels t = Dag.Levels.compute t.graph

let stats t =
  let w = active_set t in
  let active_work = ref 0.0 in
  Prelude.Bitset.iter (fun u -> active_work := !active_work +. work t u) w;
  let activatable =
    Array.fold_left (fun acc k -> match k with Task -> acc + 1 | Predicate -> acc) 0 t.kind
  in
  {
    nodes = Dag.Graph.node_count t.graph;
    edges = Dag.Graph.edge_count t.graph;
    initial_tasks = Array.length t.initial;
    active_jobs = Prelude.Bitset.cardinal w - Array.length t.initial;
    levels = Dag.Levels.count (levels t);
    activatable;
    active_work = !active_work;
  }

let active_critical_path t =
  let w = active_set t in
  let order = Dag.Topo.sort_exn t.graph in
  let n = Dag.Graph.node_count t.graph in
  let best = Array.make n 0.0 in
  let answer = ref 0.0 in
  for i = n - 1 downto 0 do
    let u = order.(i) in
    if Prelude.Bitset.mem w u then begin
      let deepest = ref 0.0 in
      Dag.Graph.iter_succ t.graph u (fun ~dst ~eid ->
          if t.edge_changed.(eid) && Prelude.Bitset.mem w dst && best.(dst) > !deepest
          then deepest := best.(dst));
      best.(u) <- work t u +. !deepest;
      if best.(u) > !answer then answer := best.(u)
    end
  done;
  !answer

let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d edges=%d initial=%d active_jobs=%d levels=%d activatable=%d work=%.3f"
    s.nodes s.edges s.initial_tasks s.active_jobs s.levels s.activatable
    s.active_work
