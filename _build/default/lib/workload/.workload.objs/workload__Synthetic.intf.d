lib/workload/synthetic.mli: Prelude Trace
