(** Precomputation shared across runs.

    A Datalog system schedules a {e stream} of updates against the same
    computation DAG, so the schedulers' precomputed structures — node
    levels for LevelBased/LBL, the interval-list ancestor encoding for
    LogicBlox — should be built once and reused (the paper's cost model
    charges precomputation once, outside every makespan).

    [prepare g] performs both precomputations; the [*_factory] functions
    then mint fresh per-run scheduler instances that share them. Run
    state (buckets, active queues, started sets) is still per-instance,
    so instances from one preparation are independent. *)

type t

val prepare : Dag.Graph.t -> t
(** O(V+E) for levels plus the interval-list construction. *)

val graph : t -> Dag.Graph.t

val levels : t -> int array

val interval_list : t -> Dag.Interval_list.t
(** Ancestor encoding (built over the transposed DAG). *)

val level_based_factory : t -> Intf.factory

val lookahead_factory : t -> k:int -> Intf.factory

val logicblox_factory : ?scan_batch:int -> t -> Intf.factory

val hybrid_factory : ?scan_batch:int -> t -> Intf.factory

val signal_factory : t -> Intf.factory
(** Signal propagation has no precomputation; included for symmetry. *)
