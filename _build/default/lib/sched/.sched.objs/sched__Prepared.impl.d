lib/sched/prepared.ml: Dag Hybrid Intf Level_based Logicblox Lookahead Printf Signal
