type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free modulo is fine for our bounds (<< 2^62) *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) land max_int in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t < p

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n Fun.id in
  shuffle t a;
  Array.sub a 0 k
