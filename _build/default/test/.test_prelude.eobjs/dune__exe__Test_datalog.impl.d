test/test_datalog.ml: Alcotest Array Buffer Dag Datalog Format Hashtbl List Option Prelude Printf QCheck QCheck_alcotest Scanf Sched Simulator String Workload
