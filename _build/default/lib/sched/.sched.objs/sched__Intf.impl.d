lib/sched/intf.ml: Dag Format
