(* Per-worker event ring. Four parallel int arrays (no records on the
   hot path, nothing for the GC to scan), power-of-two capacity so the
   write index is a mask, overwrite-oldest on overflow with exact
   dropped-count accounting.

   Single-writer protocol: only the owning worker calls [emit]; the
   [published] cursor is the one field a consumer may look at from
   another domain. The writer fills the four slot arrays (plain
   stores) and THEN bumps [published] — readers that observe cursor n
   see record n-1's fields. [published] goes through Prelude.Vatomic
   so the analysis build checks exactly this argument (see the
   ring-publish scenario in lib/analysis); consumers in this repo
   additionally only iterate after the writing domain has joined. *)

module V = Prelude.Vatomic

type t = {
  kinds : int array;
  stamps : int array;
  aargs : int array;
  bargs : int array;
  mask : int;
  enabled : bool;
  epoch : float;
  published : int V.t;
}

let null =
  {
    kinds = [| 0 |];
    stamps = [| 0 |];
    aargs = [| 0 |];
    bargs = [| 0 |];
    mask = 0;
    enabled = false;
    epoch = 0.0;
    published = V.make 0;
  }

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 16384) ~epoch () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  {
    kinds = Array.make cap 0;
    stamps = Array.make cap 0;
    aargs = Array.make cap 0;
    bargs = Array.make cap 0;
    mask = cap - 1;
    enabled = true;
    epoch;
    published = V.make 0;
  }

let enabled t = t.enabled

let epoch t = t.epoch

let capacity t = Array.length t.kinds

(* Stamps are ns since the ring's epoch: at nanosecond resolution an
   OCaml int overflows after ~146 years of tracing, and keeping them
   int-sized is what keeps the record flat. *)
let[@inline] ns_of t abs = int_of_float ((abs -. t.epoch) *. 1e9)

let[@inline] now_ns t = ns_of t (Prelude.Mclock.now ())

let[@inline] emit_at t ~t_ns ~kind ~a ~b =
  if t.enabled then begin
    let n = V.get t.published in
    let i = n land t.mask in
    Array.unsafe_set t.kinds i kind;
    Array.unsafe_set t.stamps i t_ns;
    Array.unsafe_set t.aargs i a;
    Array.unsafe_set t.bargs i b;
    (* publish after the slot is fully written (single writer) *)
    V.set t.published (n + 1)
  end

let[@inline] emit t ~kind ~a ~b =
  if t.enabled then emit_at t ~t_ns:(now_ns t) ~kind ~a ~b

let written t = V.get t.published

let length t = min (written t) (capacity t)

let dropped t = written t - length t

let iter t f =
  let w = written t in
  let first = w - length t in
  for n = first to w - 1 do
    let i = n land t.mask in
    f ~kind:t.kinds.(i) ~t_ns:t.stamps.(i) ~a:t.aargs.(i) ~b:t.bargs.(i)
  done
