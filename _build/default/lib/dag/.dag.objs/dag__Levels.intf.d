lib/dag/levels.mli: Graph
