lib/sched/clairvoyant.mli: Dag Intf
