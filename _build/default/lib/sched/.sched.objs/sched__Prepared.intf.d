lib/sched/prepared.mli: Dag Intf
