(** Static program analysis: effect sets, ownership verification, and
    the maintenance-strategy advisor.

    The paper's scheduling argument rests on knowing, before execution,
    which relations each maintenance task reads and writes. This module
    computes that knowledge from the artifacts the runtime actually
    executes: per-rule {e effect sets} extracted from compiled
    {!Plan} instruction sequences (with an AST fallback where no plan
    can exist — aggregate rules, the interpretive engine), rolled up per
    condensation component. Three consumers:

    - {!check_ownership} turns the component-ownership rule of
      {!Incremental.apply_parallel} — a task writes only its own
      component's relations and reads only upstream ones — from a
      trusted convention into a verified property;
    - the {e advisor} ({!comp_info.verdict}) drives [--maint auto],
      choosing Counting or DRed per stratum from static features
      (recursion class, negation, aggregates, exit-rule fraction,
      shardability);
    - [dms analyze] renders the whole analysis as a report
      ({!pp_report}, {!json_report}). *)

type strategy = Dred | Counting

type recursion = Nonrecursive | Linear | Nonlinear
(** [Linear]: every recursive rule of the component has exactly one
    positive body atom inside the component. [Nonlinear]: some rule
    rejoins the component more than once (e.g. [p(X,Z) :- p(X,Y), p(Y,Z)]). *)

type rule_info = {
  rule_index : int;  (** position in the program; facts are skipped *)
  head : string;
  reads : string list;  (** sorted, distinct; see {!Plan.reads} *)
  plan_derived : bool;
      (** reads came from compiled instruction steps; [false] means the
          AST fallback ({!Plan.body_reads}) was used *)
  in_comp_pos : int;
      (** positive body atoms (with multiplicity) whose predicate lies
          in the head's component — 0 for exit rules *)
}

type comp_info = {
  comp : int;  (** condensation component id *)
  stratum : int;
  members : string list;  (** sorted predicate names *)
  extensional : bool;  (** facts only: nothing to maintain *)
  rule_count : int;  (** non-fact rules headed in this component *)
  exit_rules : int;  (** rules with no in-component body atom *)
  recursion : recursion;
  has_negation : bool;
  has_aggregate : bool;
  reads : string list;  (** union of member-rule read sets, sorted *)
  external_reads : string list;  (** [reads] minus [members] *)
  writes : string list;  (** head predicates of member rules *)
  deltas : string list;
      (** predicates whose (added, removed) delta pair the component's
          maintenance touches: every positive body predicate (read side)
          and every member head (write side) *)
  shardable : bool;
      (** every member has arity >= 1, so the column-0 hash partitioning
          of {!Relation.Sharded} applies *)
  level_index : bool;
      (** the counting engine's well-founded support index (per-tuple
          first-derivation [level] plus strictly-lower-witness [low]
          count) applies: intensional, linear recursion, no negation or
          aggregates, compiled plans — derivations flow through each
          recursive rule's single in-component atom, so the index can
          attribute them to a witness *)
  verdict : strategy;
  reason : string;  (** one-line justification of [verdict] *)
}

type t = {
  anal : Stratify.t;
  engine : Plan.engine;
  rules : rule_info array;  (** non-fact rules, program order *)
  comps : comp_info array;  (** indexed by component id *)
}

val run : ?engine:Plan.engine -> anal:Stratify.t -> Ast.program -> t
(** Analyze [program] against an existing stratification. [engine]
    (default {!Plan.default_engine}) determines whether effect sets are
    extracted from compiled plans and whether the advisor may pick
    Counting (the counting engine requires compiled plans, so under
    [Interpreted] every verdict is [Dred]). Never raises on rules a
    plan cannot be built for — those fall back to AST-derived reads. *)

val program : ?engine:Plan.engine -> Ast.program -> t
(** [run] composed with {!Stratify.analyze}.
    @raise Stratify.Unstratifiable as {!Stratify.analyze} does. *)

val comp_of_pred : t -> string -> int option

val check_ownership :
  Stratify.t -> comp:int -> writes:string list -> reads:string list ->
  (unit, string) result
(** The parallel-maintenance ownership rule: a task for [comp] may write
    only predicates of [comp] itself and read only predicates of [comp]
    or of components upstream of it in the condensation (its
    dependencies, transitively). [Error] carries a message naming the
    offending predicate and components. *)

val verify : t -> (unit, string) result
(** {!check_ownership} applied to every component's own effect sets — a
    static self-check that the extracted effects respect the ownership
    discipline before any task is spawned. *)

val strategy_name : strategy -> string
(** ["dred"] / ["counting"]. *)

val recursion_name : recursion -> string
(** ["nonrecursive"] / ["linear"] / ["nonlinear"]. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable report: predicates, strata, per-component effect
    sets, recursion class, shardability, advisor verdicts, and the
    ownership verification result. *)

val json_report : t -> string
(** The same report as a strict JSON object (parseable by [Obs.Json]). *)
