lib/datalog/database.ml: Array Ast Format Hashtbl List Printf Relation String Symbol
