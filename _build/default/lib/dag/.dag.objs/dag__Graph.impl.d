lib/dag/graph.ml: Array Format Prelude Printf
