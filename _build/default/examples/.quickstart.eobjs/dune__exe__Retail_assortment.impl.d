examples/retail_assortment.ml: Buffer Datalog Format Incr_sched List Prelude Printf Workload
