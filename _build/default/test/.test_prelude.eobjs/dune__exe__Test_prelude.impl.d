test/test_prelude.ml: Alcotest Array Fun Gen List Prelude QCheck QCheck_alcotest
