(** Epoch engine behind [dms serve]: admission queue, commit runs,
    immutable post-commit snapshots.

    {b Epoch lifecycle.} Epoch 0 is the initial materialization. Each
    commit drains the admission queue, runs one
    {!Incr_sched.update} maintenance pass over the live database, and
    {e publishes} epoch [N+1]: an immutable snapshot (frozen
    {!Datalog.Relation} copies) that all queries are served from. Only
    relations the commit actually changed are re-copied — unchanged
    predicates share the previous epoch's frozen view, so snapshot
    cost is proportional to the change, not the database.

    {b Snapshot discipline.} Queries never touch the live database,
    so a background commit may mutate it freely while readers on the
    current epoch see bit-identical results. The only shared mutable
    structure a query reads is the symbol table, whose interning is
    append-only and domain-safe.

    {b Admission batching.} [insert]/[remove] are validated at submit
    time (syntax, groundedness, extensional predicate, arity) and
    queued as canonical text. Within one batch the same fact appears
    on at most one side — a later submit of the same fact overwrites
    the earlier op (last wins), keeping the batch a well-formed
    {!Datalog.Incremental.apply} input. A commit requested while a
    background commit is in flight is {e coalesced}: its ops keep
    queueing and one run serves them all when the inflight epoch
    publishes — the paper's amortization knob, live.

    Threading model: one client thread calls everything here; the only
    concurrency is the single background commit domain. *)

type t

type commit_stats = {
  epoch : int;  (** the epoch this commit published *)
  ops : int;  (** admitted operations (additions + deletions) *)
  additions : int;
  deletions : int;
  changed : int;
      (** total net tuple change over all predicates (added + removed
          of the maintenance report) *)
  run_s : float;  (** the maintenance run itself *)
  latency_s : float;
      (** commit request to snapshot publication; for a coalesced
          commit the clock starts at the earliest unserved request *)
}

val create :
  ?maint:Datalog.Incremental.maint ->
  ?domains:int ->
  ?shards:int ->
  ?obs:Obs.Trace.t ->
  Incr_sched.datalog_session ->
  t
(** Wrap a materialized session (see {!Incr_sched.materialize}) and
    publish epoch 0. [maint] (default Dred) / [domains] / [shards]
    configure every commit's maintenance pass. [obs] (default
    disabled) must carry [domains + shards - 1] rings (see
    {!Incr_sched.update}); the engine adds server spans —
    [srv-admit] / [srv-commit] / [srv-epoch] — on ring 0, emitted only
    while no background commit is running, preserving the
    single-writer ring contract. *)

val epoch : t -> int
(** The published epoch queries are served from. *)

val pending_ops : t -> int
(** Admitted operations waiting for the next commit. *)

val inflight : t -> bool
(** Is a background commit running right now? *)

val commits : t -> int
(** Total commits published. *)

val snapshot_facts : t -> int
(** Total tuples in the published snapshot. *)

val maint : t -> Datalog.Incremental.maint

val domains : t -> int

val shards : t -> int

val submit : t -> [ `Insert | `Remove ] -> string -> (unit, string) result
(** Validate and queue one operation. Errors (reported, never raised):
    atom syntax, non-ground atom, intensional (derived) predicate,
    arity mismatch against the published snapshot. A predicate the
    snapshot has never seen is admitted — it becomes a fresh base
    relation at commit. *)

val commit : t -> commit_stats list
(** Synchronous commit: wait out any inflight/coalesced background
    work, then drain the queue and run the batch in the calling
    thread. Returns all commits published by this call, oldest first —
    the last element is the batch this call ran (an empty queue still
    publishes an epoch). *)

val commit_async : t -> [ `Started of int | `Coalesced ]
(** Request a background commit. [`Started e]: no commit was inflight,
    the queue was drained and a domain is now maintaining toward epoch
    [e]. [`Coalesced]: a commit is already running; this request (and
    any ops queued meanwhile) will be served by one follow-up commit
    started automatically when the inflight one publishes. *)

val drain : t -> commit_stats list
(** Non-blocking harvest: publish any background commit that has
    finished (auto-starting a coalesced follow-up), and return the
    commits completed since the last [drain]/[await]/[commit], oldest
    first. *)

val await : t -> commit_stats list
(** Block until no commit is inflight or coalesced, then report like
    {!drain}. *)

val query : t -> string -> (Datalog.Ast.atom list * int, string) result
(** Match a pattern atom against the published snapshot; returns the
    sorted facts and the epoch they belong to. Variables match
    anything; [_] is anonymous (repeats do not constrain); a repeated
    named variable forces equality; a bare predicate name matches
    every fact. Errors: pattern syntax, unknown predicate, arity
    mismatch, aggregate terms. Safe while a commit is inflight — the
    snapshot is immutable. *)

val db : t -> Datalog.Database.t
(** The live database — for parity checks against a reference run.
    Callers must {!await} first: the background commit mutates it. *)

val export : t -> string -> unit
(** Write the engine's trace (commit maintenance spans plus the server
    spans) as Chrome trace_event JSON, task spans labeled by component
    predicates of the latest commit. Call only when an [obs] trace was
    supplied, after {!await}. *)
