examples/pathological_rescue.mli:
