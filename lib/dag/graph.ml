type t = {
  n : int;
  m : int;
  succ_off : int array;
  succ_dst : int array;
  succ_eid : int array;
  pred_off : int array;
  pred_src : int array;
  pred_eid : int array;
  e_src : int array;
  e_dst : int array;
}

module Builder = struct
  type t = {
    mutable nodes : int;
    srcs : int Prelude.Vec.t;
    dsts : int Prelude.Vec.t;
  }

  let create ?(nodes = 0) () =
    if nodes < 0 then invalid_arg "Graph.Builder.create";
    {
      nodes;
      srcs = Prelude.Vec.create ~dummy:0 ();
      dsts = Prelude.Vec.create ~dummy:0 ();
    }

  let add_node b =
    let id = b.nodes in
    b.nodes <- b.nodes + 1;
    id

  let node_count b = b.nodes

  let add_edge b u v =
    if u < 0 || u >= b.nodes || v < 0 || v >= b.nodes then
      invalid_arg
        (Printf.sprintf "Graph.Builder.add_edge: (%d,%d) with %d nodes" u v
           b.nodes);
    let eid = Prelude.Vec.length b.srcs in
    Prelude.Vec.push b.srcs u;
    Prelude.Vec.push b.dsts v;
    eid

  (* Build CSR by counting sort on endpoints: O(n + m). *)
  let build b =
    let n = b.nodes in
    let m = Prelude.Vec.length b.srcs in
    let e_src = Prelude.Vec.to_array b.srcs in
    let e_dst = Prelude.Vec.to_array b.dsts in
    let succ_off = Array.make (n + 1) 0 in
    let pred_off = Array.make (n + 1) 0 in
    for e = 0 to m - 1 do
      succ_off.(e_src.(e) + 1) <- succ_off.(e_src.(e) + 1) + 1;
      pred_off.(e_dst.(e) + 1) <- pred_off.(e_dst.(e) + 1) + 1
    done;
    for i = 1 to n do
      succ_off.(i) <- succ_off.(i) + succ_off.(i - 1);
      pred_off.(i) <- pred_off.(i) + pred_off.(i - 1)
    done;
    let succ_dst = Array.make m 0 and succ_eid = Array.make m 0 in
    let pred_src = Array.make m 0 and pred_eid = Array.make m 0 in
    let scur = Array.copy succ_off and pcur = Array.copy pred_off in
    for e = 0 to m - 1 do
      let u = e_src.(e) and v = e_dst.(e) in
      succ_dst.(scur.(u)) <- v;
      succ_eid.(scur.(u)) <- e;
      scur.(u) <- scur.(u) + 1;
      pred_src.(pcur.(v)) <- u;
      pred_eid.(pcur.(v)) <- e;
      pcur.(v) <- pcur.(v) + 1
    done;
    { n; m; succ_off; succ_dst; succ_eid; pred_off; pred_src; pred_eid; e_src; e_dst }
end

let of_edges ~nodes edges =
  let b = Builder.create ~nodes () in
  Array.iter (fun (u, v) -> ignore (Builder.add_edge b u v)) edges;
  Builder.build b

let empty n = of_edges ~nodes:n [||]

let node_count g = g.n

let edge_count g = g.m

let check_node g u =
  if u < 0 || u >= g.n then
    invalid_arg (Printf.sprintf "Graph: node %d out of bounds [0,%d)" u g.n)

let out_degree g u =
  check_node g u;
  g.succ_off.(u + 1) - g.succ_off.(u)

let in_degree g u =
  check_node g u;
  g.pred_off.(u + 1) - g.pred_off.(u)

let csr_succ g = (g.succ_off, g.succ_dst, g.succ_eid)

let iter_succ g u f =
  check_node g u;
  for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
    f ~dst:g.succ_dst.(i) ~eid:g.succ_eid.(i)
  done

let iter_pred g v f =
  check_node g v;
  for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
    f ~src:g.pred_src.(i) ~eid:g.pred_eid.(i)
  done

let succ g u =
  check_node g u;
  Array.sub g.succ_dst g.succ_off.(u) (out_degree g u)

let pred g v =
  check_node g v;
  Array.sub g.pred_src g.pred_off.(v) (in_degree g v)

let check_edge g e =
  if e < 0 || e >= g.m then
    invalid_arg (Printf.sprintf "Graph: edge %d out of bounds [0,%d)" e g.m)

let edge_src g e =
  check_edge g e;
  g.e_src.(e)

let edge_dst g e =
  check_edge g e;
  g.e_dst.(e)

let iter_edges g f =
  for e = 0 to g.m - 1 do
    f ~src:g.e_src.(e) ~dst:g.e_dst.(e) ~eid:e
  done

let sources g =
  let acc = Prelude.Vec.create ~dummy:0 () in
  for u = 0 to g.n - 1 do
    if in_degree g u = 0 then Prelude.Vec.push acc u
  done;
  Prelude.Vec.to_array acc

let sinks g =
  let acc = Prelude.Vec.create ~dummy:0 () in
  for u = 0 to g.n - 1 do
    if out_degree g u = 0 then Prelude.Vec.push acc u
  done;
  Prelude.Vec.to_array acc

let transpose g =
  {
    g with
    succ_off = g.pred_off;
    succ_dst = g.pred_src;
    succ_eid = g.pred_eid;
    pred_off = g.succ_off;
    pred_src = g.succ_dst;
    pred_eid = g.succ_eid;
    e_src = g.e_dst;
    e_dst = g.e_src;
  }

let mem_edge g u v =
  check_node g u;
  check_node g v;
  let rec scan i =
    i < g.succ_off.(u + 1) && (g.succ_dst.(i) = v || scan (i + 1))
  in
  scan g.succ_off.(u)

let pp_stats ppf g =
  Format.fprintf ppf "nodes=%d edges=%d sources=%d sinks=%d" g.n g.m
    (Array.length (sources g))
    (Array.length (sinks g))
