(* Tests for lib/analysis: vector clocks always; the model checker's
   exploration, pruning and pinned counterexample schedules only when
   Vatomic is instrumented (dune runtest --profile analysis) — under
   the default profile interleavings cannot be controlled, so those
   cases skip rather than pretend to check anything. *)

module Mc = Analysis.Mc
module Scenarios = Analysis.Scenarios
module Vclock = Analysis.Vclock
module V = Prelude.Vatomic

(* ---- vector clocks --------------------------------------------- *)

let test_vclock_basics () =
  let a = Vclock.make 3 in
  let b = Vclock.make 3 in
  Alcotest.(check bool) "zero leq zero" true (Vclock.leq a b);
  Alcotest.(check bool) "equal" true (Vclock.compare a b = Vclock.Equal);
  Vclock.tick a 0;
  Vclock.tick a 0;
  Vclock.tick a 2;
  Alcotest.(check int) "tick" 2 (Vclock.get a 0);
  Alcotest.(check bool) "b before a" true (Vclock.compare b a = Vclock.Before);
  Alcotest.(check bool) "a after b" true (Vclock.compare a b = Vclock.After);
  Vclock.tick b 1;
  Alcotest.(check bool) "concurrent" true (Vclock.compare a b = Vclock.Concurrent);
  let c = Vclock.copy a in
  Vclock.join ~into:c b;
  Alcotest.(check bool) "join dominates a" true (Vclock.leq a c);
  Alcotest.(check bool) "join dominates b" true (Vclock.leq b c);
  Alcotest.(check int) "join componentwise" 2 (Vclock.get c 0);
  Alcotest.(check int) "join componentwise" 1 (Vclock.get c 1);
  (* join is the least upper bound: nothing below both dominates *)
  Vclock.set c 2 0;
  Alcotest.(check bool) "dropped component breaks leq" false (Vclock.leq a c)

let test_vclock_join_idempotent () =
  let a = Vclock.make 4 in
  Vclock.tick a 1;
  Vclock.tick a 3;
  let c = Vclock.copy a in
  Vclock.join ~into:c a;
  Alcotest.(check bool) "join idempotent" true
    (Vclock.compare a c = Vclock.Equal)

(* ---- model checker (instrumented builds only) ------------------- *)

let requires_instrumented f () =
  if V.instrumented then f ()
  else Alcotest.skip ()

(* Tiny synthetic scenarios for targeted checker properties. *)

let independent_ops =
  (* two processes touching disjoint locations: every interleaving is
     equivalent, so sleep sets should collapse the space to ~1 run *)
  {
    Mc.name = "test-independent";
    nprocs = 2;
    instantiate =
      (fun () ->
        let a = V.make 0 and b = V.make 0 in
        let body p =
          let c = if p = 0 then a else b in
          V.incr c;
          V.incr c;
          V.incr c
        in
        let finish () = assert (V.get a = 3 && V.get b = 3) in
        (body, finish));
  }

let spinlock_pingpong =
  (* two processes contending on a CAS spinlock: terminates only if
     futile respins are treated as blocking rather than explored *)
  {
    Mc.name = "test-spinlock";
    nprocs = 2;
    instantiate =
      (fun () ->
        let m = V.make 0 and count = V.make 0 in
        let body _ =
          for _ = 1 to 2 do
            while not (V.compare_and_set m 0 1) do
              ()
            done;
            V.incr count;
            V.set m 0
          done
        in
        let finish () = assert (V.get count = 4) in
        (body, finish));
  }

let test_exhaustive_safe () =
  List.iter
    (fun s ->
      let o = Mc.explore s in
      (match o.Mc.violation with
      | None -> ()
      | Some v ->
        Alcotest.failf "%s (sleep sets): %s [%s]" s.Mc.name v.Mc.message v.Mc.schedule);
      Alcotest.(check bool)
        (s.Mc.name ^ " explored to completion") false o.Mc.stats.capped;
      let o = Mc.explore ~preemption_bound:2 s in
      match o.Mc.violation with
      | None -> ()
      | Some v ->
        Alcotest.failf "%s (bound 2): %s [%s]" s.Mc.name v.Mc.message v.Mc.schedule)
    Scenarios.safe

let test_buggy_found () =
  let expected_kind name =
    match name with
    | "lifecycle-buggy-activate" -> Mc.Assertion
    | "park-wake-buggy-lost-wakeup" -> Mc.Deadlock
    | "protected-batch-buggy-early-bump" -> Mc.Assertion
    | "plain-race-buggy" -> Mc.Race
    | "comp-ownership-buggy-eager" -> Mc.Race
    | "shard-ownership-buggy-cross-write" -> Mc.Race
    | "ring-publish-buggy-early-cursor" -> Mc.Race
    | n -> Alcotest.failf "unexpected buggy scenario %s" n
  in
  List.iter
    (fun s ->
      match (Mc.explore s).Mc.violation with
      | None -> Alcotest.failf "%s: checker missed the planted bug" s.Mc.name
      | Some v ->
        Alcotest.(check bool)
          (s.Mc.name ^ " violation kind")
          true
          (v.Mc.vkind = expected_kind s.Mc.name))
    Scenarios.buggy

(* Counterexample schedules pinned from a known-good checker build:
   replaying them must reproduce the same violation kind on the same
   schedule. If one of these starts diverging, either the scenario or
   the scheduler semantics changed — both are worth a close look. *)
let pinned =
  [
    ("lifecycle-buggy-activate", "001111110000000", Mc.Assertion);
    ("park-wake-buggy-lost-wakeup", "111000001111", Mc.Deadlock);
    ("protected-batch-buggy-early-bump", "00111", Mc.Assertion);
    ("plain-race-buggy", "001", Mc.Race);
    ("comp-ownership-buggy-eager", "000011", Mc.Race);
    ("shard-ownership-buggy-cross-write", "001", Mc.Race);
    ("ring-publish-buggy-early-cursor", "0011", Mc.Race);
  ]

let test_pinned_replays () =
  List.iter
    (fun (name, schedule, kind) ->
      match Mc.replay (Scenarios.find name) schedule with
      | None -> Alcotest.failf "%s: pinned schedule %s no longer violates" name schedule
      | Some v ->
        Alcotest.(check bool) (name ^ " kind") true (v.Mc.vkind = kind);
        Alcotest.(check string) (name ^ " schedule") schedule v.Mc.schedule)
    pinned

let test_replay_roundtrip () =
  (* whatever schedule explore reports must replay to the same
     violation — the seed+schedule pair is the reproducer we print *)
  List.iter
    (fun s ->
      match (Mc.explore s).Mc.violation with
      | None -> Alcotest.failf "%s: no violation to round-trip" s.Mc.name
      | Some v -> (
        match Mc.replay s v.Mc.schedule with
        | None -> Alcotest.failf "%s: schedule %s did not replay" s.Mc.name v.Mc.schedule
        | Some v' ->
          Alcotest.(check bool) (s.Mc.name ^ " same kind") true (v.Mc.vkind = v'.Mc.vkind);
          Alcotest.(check string) (s.Mc.name ^ " same schedule") v.Mc.schedule v'.Mc.schedule))
    Scenarios.buggy

let test_replay_divergence () =
  (* an impossible schedule must be reported, not silently accepted *)
  match Mc.replay (Scenarios.find "lifecycle") "0000000" with
  | Some { Mc.vkind = Mc.Replay_divergence; _ } -> ()
  | Some v ->
    Alcotest.failf "expected divergence, got %s"
      (Format.asprintf "%a" Mc.pp_violation_kind v.Mc.vkind)
  | None -> Alcotest.fail "expected divergence, replay came back clean"

let test_sleep_set_pruning () =
  (* disjoint-location processes: unreduced bound-99 exploration walks
     many interleavings, sleep sets collapse them to a single trace *)
  let reduced = Mc.explore independent_ops in
  let unreduced = Mc.explore ~preemption_bound:99 independent_ops in
  Alcotest.(check (option string)) "reduced clean" None
    (Option.map (fun v -> v.Mc.message) reduced.Mc.violation);
  Alcotest.(check (option string)) "unreduced clean" None
    (Option.map (fun v -> v.Mc.message) unreduced.Mc.violation);
  let r = reduced.Mc.stats.executions + reduced.Mc.stats.cut_sleep in
  Alcotest.(check bool)
    (Printf.sprintf "pruning works (%d reduced vs %d unreduced runs)" r
       unreduced.Mc.stats.executions)
    true
    (r < unreduced.Mc.stats.executions && unreduced.Mc.stats.executions >= 20)

let test_spin_futility () =
  (* must terminate without tripping the step budget, and explore more
     than the trivial schedule *)
  let o = Mc.explore spinlock_pingpong in
  (match o.Mc.violation with
  | None -> ()
  | Some v -> Alcotest.failf "spinlock: %s [%s]" v.Mc.message v.Mc.schedule);
  Alcotest.(check bool) "several interleavings" true (o.Mc.stats.executions > 1)

let test_random_walk_deterministic () =
  let s = Scenarios.find "park-wake-buggy-lost-wakeup" in
  let o1 = Mc.random_walk ~seed:42 ~walks:300 s in
  let o2 = Mc.random_walk ~seed:42 ~walks:300 s in
  let sched o =
    match o.Mc.violation with Some v -> Some v.Mc.schedule | None -> None
  in
  Alcotest.(check (option string)) "same seed, same outcome" (sched o1) (sched o2)

let () =
  Alcotest.run "analysis"
    [
      ( "vclock",
        [
          Alcotest.test_case "basics" `Quick test_vclock_basics;
          Alcotest.test_case "join idempotent" `Quick test_vclock_join_idempotent;
        ] );
      ( "model-checker",
        [
          Alcotest.test_case "safe scenarios exhaustively clean" `Quick
            (requires_instrumented test_exhaustive_safe);
          Alcotest.test_case "planted bugs found" `Quick
            (requires_instrumented test_buggy_found);
          Alcotest.test_case "pinned counterexample replays" `Quick
            (requires_instrumented test_pinned_replays);
          Alcotest.test_case "explore/replay round trip" `Quick
            (requires_instrumented test_replay_roundtrip);
          Alcotest.test_case "replay divergence detected" `Quick
            (requires_instrumented test_replay_divergence);
          Alcotest.test_case "sleep-set pruning" `Quick
            (requires_instrumented test_sleep_set_pruning);
          Alcotest.test_case "spin futility" `Quick
            (requires_instrumented test_spin_futility);
          Alcotest.test_case "random walk deterministic" `Quick
            (requires_instrumented test_random_walk_deterministic);
        ] );
    ]
