(* Datalog engine tests: lexing, parsing, stratification, semi-naive
   evaluation against the naive reference, DRed incremental maintenance
   against from-scratch recomputation (the load-bearing property), and
   the extraction of scheduling traces from updates. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse = Datalog.Parser.parse

let atom = Datalog.Parser.parse_atom

let cardinal db pred =
  match Datalog.Database.find db pred with
  | None -> 0
  | Some r -> Datalog.Relation.cardinality r

(* ---------- Lexer ---------- *)

let lexer_tokens () =
  let toks = Datalog.Lexer.tokenize "p(X, \"a b\") :- q(X), X != 3. % c" in
  let kinds = List.map (fun t -> t.Datalog.Lexer.token) toks in
  check_bool "shape" true
    (kinds
    = [
        Datalog.Lexer.IDENT "p"; LPAREN; VAR "X"; COMMA; STRING "a b"; RPAREN;
        TURNSTILE; IDENT "q"; LPAREN; VAR "X"; RPAREN; COMMA; VAR "X";
        OP Datalog.Ast.Neq; INT 3; PERIOD; EOF;
      ])

let lexer_comments_and_escapes () =
  let toks = Datalog.Lexer.tokenize "// line\n% other\np(\"q\\\"r\\n\")." in
  check_bool "escape handling" true
    (List.exists
       (fun t -> t.Datalog.Lexer.token = Datalog.Lexer.STRING "q\"r\n")
       toks)

let lexer_negative_int () =
  let toks = Datalog.Lexer.tokenize "p(-42)." in
  check_bool "negative int" true
    (List.exists (fun t -> t.Datalog.Lexer.token = Datalog.Lexer.INT (-42)) toks)

let lexer_errors () =
  let bad src =
    match Datalog.Lexer.tokenize src with
    | exception Datalog.Lexer.Error { line; _ } -> check_bool "line >= 1" true (line >= 1)
    | _ -> Alcotest.failf "expected lexer error on %S" src
  in
  bad "p(\"unterminated";
  bad "p :- q, @";
  bad "p : q."

(* ---------- Parser ---------- *)

let parser_fact_and_rule () =
  let prog = parse "e(\"a\", 1).\np(X, Y) :- e(X, Y).\n" in
  check_int "two clauses" 2 (List.length prog);
  check_bool "first is a fact" true (Datalog.Ast.rule_is_fact (List.hd prog))

let parser_negation_and_cmp () =
  let prog = parse "p(X) :- q(X), !r(X), X >= 2." in
  match (List.hd prog).Datalog.Ast.body with
  | [ Datalog.Ast.Pos _; Datalog.Ast.Neg _; Datalog.Ast.Cmp (Datalog.Ast.Ge, _, _) ] -> ()
  | _ -> Alcotest.fail "unexpected body shape"

let parser_zero_arity () =
  let prog = parse "flag.\np(X) :- q(X), flag." in
  check_bool "zero arity fact" true
    ((List.hd prog).Datalog.Ast.head.Datalog.Ast.args = [])

let parser_range_restriction () =
  let bad src =
    match parse src with
    | exception Datalog.Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected rejection: %s" src
  in
  bad "p(X) :- q(Y).";
  bad "p(X) :- !q(X).";
  bad "p(X) :- q(X), Y > 2.";
  bad "p(X)." (* non-ground fact *)

let parser_errors_have_positions () =
  match parse "p(X) :- q(X)" (* missing period *) with
  | exception Datalog.Parser.Error { line; col; _ } ->
    check_bool "position" true (line >= 1 && col >= 1)
  | _ -> Alcotest.fail "expected parse error"

let parser_atom_roundtrip () =
  let a = atom "edge(\"x\", 7)" in
  check_bool "pred" true (a.Datalog.Ast.pred = "edge");
  check_int "arity" 2 (List.length a.Datalog.Ast.args)

let ast_printing_parses_back () =
  let prog =
    parse "e(\"a\",\"b\"). p(X,Z) :- e(X,Y), e(Y,Z), X != Z. q(X) :- e(X,Y), !p(X,Y)."
  in
  let printed = Format.asprintf "%a" Datalog.Ast.pp_program prog in
  let reparsed = parse printed in
  check_bool "round trip" true (prog = reparsed)

(* ---------- Symbols, relations, database ---------- *)

let symbol_interning () =
  let s = Datalog.Symbol.create () in
  let a = Datalog.Symbol.intern s (Datalog.Ast.Sym "x") in
  let b = Datalog.Symbol.intern s (Datalog.Ast.Sym "x") in
  let c = Datalog.Symbol.intern s (Datalog.Ast.Int 5) in
  check_int "stable" a b;
  check_bool "distinct" true (a <> c);
  check_bool "roundtrip" true (Datalog.Symbol.const_of s c = Datalog.Ast.Int 5);
  check_bool "numeric order" true (Datalog.Symbol.compare_codes s c a < 0)

let relation_ops () =
  let r = Datalog.Relation.create ~arity:2 in
  check_bool "add" true (Datalog.Relation.add r [| 1; 2 |]);
  check_bool "dup" false (Datalog.Relation.add r [| 1; 2 |]);
  check_bool "mem" true (Datalog.Relation.mem r [| 1; 2 |]);
  ignore (Datalog.Relation.add r [| 1; 3 |]);
  ignore (Datalog.Relation.add r [| 2; 3 |]);
  check_int "find col 0" 2 (List.length (Datalog.Relation.find r ~col:0 ~value:1));
  check_int "find col 1" 2 (List.length (Datalog.Relation.find r ~col:1 ~value:3));
  check_bool "remove" true (Datalog.Relation.remove r [| 1; 3 |]);
  check_int "index updated" 1 (List.length (Datalog.Relation.find r ~col:0 ~value:1));
  check_bool "remove absent" false (Datalog.Relation.remove r [| 9; 9 |])

(* The tuple hashtbl switched to an FNV-1a hash over the int elements
   with monomorphic equality; add/mem/remove semantics must be exactly
   those of a reference set, including for negative components (the
   hash must stay non-negative) and high-collision key ranges. *)
let relation_hash_semantics () =
  let module Ref = Set.Make (struct
    type t = int list

    let compare = compare
  end) in
  let r = Datalog.Relation.create ~arity:3 in
  let reference = ref Ref.empty in
  let rng = Random.State.make [| 0x5eed |] in
  for _ = 1 to 3000 do
    let tup = Array.init 3 (fun _ -> Random.State.int rng 7 - 3) in
    let key = Array.to_list tup in
    match Random.State.int rng 3 with
    | 0 ->
      check_bool "add agrees" (not (Ref.mem key !reference)) (Datalog.Relation.add r tup);
      reference := Ref.add key !reference
    | 1 ->
      check_bool "remove agrees" (Ref.mem key !reference) (Datalog.Relation.remove r tup);
      reference := Ref.remove key !reference
    | _ -> check_bool "mem agrees" (Ref.mem key !reference) (Datalog.Relation.mem r tup)
  done;
  check_int "final cardinality" (Ref.cardinal !reference) (Datalog.Relation.cardinality r)

let relation_qcheck =
  QCheck.Test.make ~name:"relation: behaves like a set with index" ~count:300
    QCheck.(list (pair bool (pair (int_bound 5) (int_bound 5))))
    (fun ops ->
      let r = Datalog.Relation.create ~arity:2 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (is_add, (a, b)) ->
          let tup = [| a; b |] in
          if is_add then begin
            let fresh = not (Hashtbl.mem model (a, b)) in
            Hashtbl.replace model (a, b) ();
            Datalog.Relation.add r tup = fresh
          end
          else begin
            let present = Hashtbl.mem model (a, b) in
            Hashtbl.remove model (a, b);
            Datalog.Relation.remove r tup = present
          end
          &&
          (* index agrees with the model on a probe *)
          let expect =
            Hashtbl.fold (fun (x, y) () acc -> if x = a then (x, y) :: acc else acc) model []
          in
          List.length (Datalog.Relation.find r ~col:0 ~value:a) = List.length expect)
        ops)

let database_arity_clash () =
  let db = Datalog.Database.create () in
  ignore (Datalog.Database.relation db "p" ~arity:2);
  Alcotest.check_raises "clash"
    (Invalid_argument "Database: predicate p used with arity 3, declared 2") (fun () ->
      ignore (Datalog.Database.relation db "p" ~arity:3))

let database_facts () =
  let db = Datalog.Database.create () in
  check_bool "add" true (Datalog.Database.add_fact db (atom "e(\"a\",\"b\")"));
  check_bool "dup" false (Datalog.Database.add_fact db (atom "e(\"a\",\"b\")"));
  check_bool "mem" true (Datalog.Database.mem_fact db (atom "e(\"a\",\"b\")"));
  check_bool "remove" true (Datalog.Database.remove_fact db (atom "e(\"a\",\"b\")"));
  check_int "empty" 0 (Datalog.Database.total_tuples db)

(* ---------- Stratification ---------- *)

let strat_simple () =
  let prog = parse "p(X) :- e(X, Y). q(X) :- p(X), !r(X). r(X) :- e(X, X)." in
  let t = Datalog.Stratify.analyze prog in
  check_bool "e is edb" true t.Datalog.Stratify.edb.(Hashtbl.find t.Datalog.Stratify.index_of "e");
  check_bool "p not edb" false
    t.Datalog.Stratify.edb.(Hashtbl.find t.Datalog.Stratify.index_of "p");
  check_bool "q above r" true
    (Datalog.Stratify.stratum t "q" > Datalog.Stratify.stratum t "r")

let strat_recursive_same_stratum () =
  let prog = parse "p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), e(Y,Z)." in
  let t = Datalog.Stratify.analyze prog in
  check_int "one stratum" 1 t.Datalog.Stratify.stratum_count

let strat_unstratifiable () =
  let prog = parse "p(X) :- e(X), !q(X). q(X) :- e(X), !p(X)." in
  match Datalog.Stratify.analyze prog with
  | exception Datalog.Stratify.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected Unstratifiable"

let strat_negative_self () =
  let prog = parse "p(X) :- e(X), !p(X)." in
  match Datalog.Stratify.analyze prog with
  | exception Datalog.Stratify.Unstratifiable p -> check_bool "names p" true (p = "p")
  | _ -> Alcotest.fail "expected Unstratifiable"

let strat_scc_order_topological () =
  let prog =
    parse
      "a(X) :- e(X). b(X) :- a(X). c(X) :- b(X), a(X). d(X) :- c(X), !b(X)."
  in
  let t = Datalog.Stratify.analyze prog in
  let order = Datalog.Stratify.scc_order t in
  let pos = Array.make t.Datalog.Stratify.condensation.Dag.Scc.count 0 in
  Array.iteri (fun i c -> pos.(c) <- i) order;
  Dag.Graph.iter_edges t.Datalog.Stratify.condensation.Dag.Scc.dag
    (fun ~src ~dst ~eid:_ ->
      check_bool "topological" true (pos.(src) < pos.(dst)))

(* ---------- Evaluation ---------- *)

let tc_program edges =
  let facts =
    List.map (fun (a, b) -> Printf.sprintf "edge(\"n%d\", \"n%d\")." a b) edges
    |> String.concat "\n"
  in
  facts ^ "\npath(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n"

let eval_tc_known () =
  let db = Datalog.Database.create () in
  let _anal, _stats = Datalog.Eval.run db (parse (tc_program [ (0, 1); (1, 2); (2, 3) ])) in
  (* path = all ordered reachable pairs: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3) *)
  check_int "path count" 6 (cardinal db "path")

let eval_cycle_terminates () =
  let db = Datalog.Database.create () in
  let _ = Datalog.Eval.run db (parse (tc_program [ (0, 1); (1, 2); (2, 0) ])) in
  check_int "3x3 pairs" 9 (cardinal db "path")

let eval_negation () =
  let db = Datalog.Database.create () in
  let src =
    tc_program [ (0, 1); (1, 2) ]
    ^ "node(X) :- edge(X, Y).\nnode(Y) :- edge(X, Y).\n\
       unreached(X, Y) :- node(X), node(Y), !path(X, Y), X != Y.\n"
  in
  let _ = Datalog.Eval.run db (parse src) in
  (* pairs: 6 ordered distinct pairs, path holds for (0,1)(0,2)(1,2) -> 3 left *)
  check_int "unreached" 3 (cardinal db "unreached")

let eval_comparisons () =
  let db = Datalog.Database.create () in
  let src = "v(1). v(2). v(3). big(X) :- v(X), X >= 2. pairlt(X,Y) :- v(X), v(Y), X < Y." in
  let _ = Datalog.Eval.run db (parse src) in
  check_int "big" 2 (cardinal db "big");
  check_int "pairs" 3 (cardinal db "pairlt")

let eval_same_generation () =
  let db = Datalog.Database.create () in
  let src =
    "parent(\"r\",\"a\"). parent(\"r\",\"b\"). parent(\"a\",\"c\"). parent(\"b\",\"d\").\n\
     sg(X,Y) :- parent(P,X), parent(P,Y), X != Y.\n\
     sg(X,Y) :- parent(PX,X), sg(PX,PY), parent(PY,Y).\n"
  in
  let _ = Datalog.Eval.run db (parse src) in
  (* a~b (siblings), c~d (cousins): ordered pairs -> 4 *)
  check_int "same generation" 4 (cardinal db "sg")

let random_edges rng n m =
  List.init m (fun _ -> (Prelude.Rng.int rng n, Prelude.Rng.int rng n))
  |> List.filter (fun (a, b) -> a <> b)
  |> List.sort_uniq compare

let eval_seminaive_equals_naive =
  QCheck.Test.make ~name:"eval: semi-naive equals naive on random TC+negation" ~count:60
    QCheck.(pair (2 -- 7) (0 -- 25))
    (fun (n, m) ->
      let rng = Prelude.Rng.create ((n * 100) + m) in
      let edges = random_edges rng n m in
      let src =
        tc_program edges
        ^ "node(X) :- edge(X,Y).\nnode(Y) :- edge(X,Y).\n\
           far(X,Y) :- node(X), node(Y), !path(X,Y), X != Y.\n"
      in
      let prog = parse src in
      let a = Datalog.Database.create () in
      let _ = Datalog.Eval.run a prog in
      let b = Datalog.Database.create () in
      Datalog.Eval.run_naive b prog;
      Datalog.Eval.databases_agree a b = Ok ())

(* ---------- Incremental maintenance (DRed) ---------- *)

(* The load-bearing property: incremental update == from-scratch
   evaluation of the updated fact base, across random updates on
   programs with recursion and stratified negation. *)

let check_incremental program_rules base_facts additions deletions =
  let fact_atoms = List.map atom base_facts in
  let adds = List.map atom additions in
  let dels = List.map atom deletions in
  let rules = parse program_rules in
  (* incremental path *)
  let db = Datalog.Database.create () in
  List.iter (fun a -> ignore (Datalog.Database.add_fact db a)) fact_atoms;
  let _ = Datalog.Eval.run db rules in
  let _report = Datalog.Incremental.apply db rules ~additions:adds ~deletions:dels in
  (* from-scratch path *)
  let scratch = Datalog.Database.create () in
  List.iter (fun a -> ignore (Datalog.Database.add_fact scratch a)) fact_atoms;
  List.iter (fun a -> ignore (Datalog.Database.remove_fact scratch a)) dels;
  List.iter (fun a -> ignore (Datalog.Database.add_fact scratch a)) adds;
  let _ = Datalog.Eval.run scratch rules in
  Datalog.Eval.databases_agree db scratch

let incr_tc_insert () =
  check_bool "ok" true
    (check_incremental
       "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)."
       [ "edge(\"a\",\"b\")"; "edge(\"b\",\"c\")" ]
       [ "edge(\"c\",\"d\")" ] []
    = Ok ())

let incr_tc_delete () =
  check_bool "ok" true
    (check_incremental
       "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)."
       [ "edge(\"a\",\"b\")"; "edge(\"b\",\"c\")"; "edge(\"a\",\"c\")" ]
       []
       [ "edge(\"b\",\"c\")" ]
    = Ok ())

let incr_rederivation () =
  (* deleting one support must keep facts with alternative derivations *)
  check_bool "ok" true
    (check_incremental
       "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)."
       [
         "edge(\"a\",\"b\")"; "edge(\"b\",\"d\")"; "edge(\"a\",\"c\")";
         "edge(\"c\",\"d\")"; "edge(\"d\",\"e\")";
       ]
       []
       [ "edge(\"b\",\"d\")" ]
    = Ok ())

let incr_negation_addition_removes () =
  (* adding a fact under negation must delete derived tuples *)
  check_bool "ok" true
    (check_incremental
       "ok(X) :- cand(X), !banned(X)."
       [ "cand(\"x\")"; "cand(\"y\")"; "banned(\"y\")" ]
       [ "banned(\"x\")" ] []
    = Ok ())

let incr_negation_deletion_adds () =
  check_bool "ok" true
    (check_incremental
       "ok(X) :- cand(X), !banned(X)."
       [ "cand(\"x\")"; "banned(\"x\")" ]
       []
       [ "banned(\"x\")" ]
    = Ok ())

let incr_rejects_intensional () =
  let rules = parse "p(X) :- e(X)." in
  let db = Datalog.Database.create () in
  ignore (Datalog.Database.add_fact db (atom "e(\"a\")"));
  let _ = Datalog.Eval.run db rules in
  match
    Datalog.Incremental.apply db rules ~additions:[ atom "p(\"b\")" ] ~deletions:[]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of intensional update"

let incremental_equals_scratch_qcheck =
  QCheck.Test.make
    ~name:"DRed: incremental equals from-scratch on random graphs and updates"
    ~count:60
    QCheck.(triple (2 -- 6) (0 -- 18) (0 -- 6))
    (fun (n, m, delta) ->
      let rng = Prelude.Rng.create ((n * 7919) + (m * 131) + delta) in
      let edges = random_edges rng n m in
      let base =
        List.map (fun (a, b) -> Printf.sprintf "edge(\"n%d\",\"n%d\")" a b) edges
      in
      let mk () =
        Printf.sprintf "edge(\"n%d\",\"n%d\")" (Prelude.Rng.int rng n)
          (Prelude.Rng.int rng n)
      in
      let adds =
        List.init (Prelude.Rng.int rng (delta + 1)) (fun _ -> mk ())
        |> List.filter (fun s -> not (List.mem s base))
        |> List.sort_uniq compare
      in
      (* avoid self loops in additions *)
      let adds =
        List.filter
          (fun s -> Scanf.sscanf s "edge(\"n%d\",\"n%d\")" (fun a b -> a <> b))
          adds
      in
      let dels =
        List.filteri (fun i _ -> i mod 2 = delta mod 2) base |> List.filteri (fun i _ -> i < delta)
      in
      let rules =
        "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).\n\
         node(X) :- edge(X,Y). node(Y) :- edge(X,Y).\n\
         far(X,Y) :- node(X), node(Y), !path(X,Y), X != Y.\n\
         sg(X,Y) :- edge(P,X), edge(P,Y), X != Y.\n\
         sg(X,Y) :- edge(PX,X), sg(PX,PY), edge(PY,Y).\n"
      in
      check_incremental rules base adds dels = Ok ())

let incremental_report_changes () =
  let rules = parse "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)." in
  let db = Datalog.Database.create () in
  ignore (Datalog.Database.add_fact db (atom "edge(\"a\",\"b\")"));
  let _ = Datalog.Eval.run db rules in
  let report =
    Datalog.Incremental.apply db rules
      ~additions:[ atom "edge(\"b\",\"c\")" ]
      ~deletions:[]
  in
  let changed p =
    List.exists
      (fun (c : Datalog.Incremental.pred_change) -> c.Datalog.Incremental.pred = p)
      report.Datalog.Incremental.changes
  in
  check_bool "edge changed" true (changed "edge");
  check_bool "path changed" true (changed "path");
  let path_change =
    List.find
      (fun (c : Datalog.Incremental.pred_change) -> c.Datalog.Incremental.pred = "path")
      report.Datalog.Incremental.changes
  in
  (* b->c and a->c appear *)
  check_int "path additions" 2 path_change.Datalog.Incremental.added;
  check_int "path removals" 0 path_change.Datalog.Incremental.removed

let incremental_noop_update () =
  let rules = parse "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)." in
  let db = Datalog.Database.create () in
  ignore (Datalog.Database.add_fact db (atom "edge(\"a\",\"b\")"));
  let _ = Datalog.Eval.run db rules in
  let report = Datalog.Incremental.apply db rules ~additions:[] ~deletions:[] in
  check_int "no changes" 0 (List.length report.Datalog.Incremental.changes);
  List.iter
    (fun (a : Datalog.Incremental.comp_activity) ->
      check_bool "nothing flagged" true (not a.Datalog.Incremental.output_changed))
    report.Datalog.Incremental.activity

(* ---------- random-program fuzzing ---------- *)

(* Generate random stratified programs: derived predicates p1..pk, each
   defined by 1-2 rules whose bodies draw positively from the EDB and
   any predicate, and negatively only from strictly lower-indexed
   predicates (stratification by construction, recursion allowed through
   same-index self-reference). All unary/binary over a small domain.
   Bodies may end in a comparison between the two bound variables; with
   [aggregates] the program also folds the EDB and the top predicate
   through fresh aggregate heads (cnt/min/max only — the domain is
   symbols, and sum over symbols is rejected by design). *)
let random_program ?(aggregates = false) rng ~preds =
  let buf = Buffer.create 512 in
  let atom_of ~arity name vars =
    if arity = 1 then Printf.sprintf "%s(%s)" name (List.nth vars 0)
    else Printf.sprintf "%s(%s,%s)" name (List.nth vars 0) (List.nth vars 1)
  in
  let arity = Array.init (preds + 1) (fun _ -> 1 + Prelude.Rng.int rng 2) in
  (* index 0 is the edb predicate "e" with arity 2 *)
  arity.(0) <- 2;
  let pname i = if i = 0 then "e" else Printf.sprintf "p%d" i in
  for i = 1 to preds do
    let nrules = 1 + Prelude.Rng.int rng 2 in
    for _ = 1 to nrules do
      (* head variables *)
      let head_vars = if arity.(i) = 1 then [ "X" ] else [ "X"; "Y" ] in
      (* first body literal: positive, binds X and Y *)
      let first =
        if Prelude.Rng.bool rng || i = 1 then "e(X,Y)"
        else begin
          let j = 1 + Prelude.Rng.int rng i (* <= i: recursion allowed *) in
          if arity.(j) = 2 then atom_of ~arity:2 (pname j) [ "X"; "Y" ]
          else Printf.sprintf "%s(X), e(X,Y)" (pname j)
        end
      in
      let extras = ref [] in
      (* maybe a positive join *)
      if Prelude.Rng.bool rng then begin
        let j = Prelude.Rng.int rng (i + 1) in
        let a =
          if arity.(j) = 2 then atom_of ~arity:2 (pname j) [ "Y"; "Z" ] else
            atom_of ~arity:1 (pname j) [ "Y" ]
        in
        extras := a :: !extras
      end;
      (* maybe a negation on a strictly lower stratum *)
      if i > 1 && Prelude.Rng.bool rng then begin
        let j = 1 + Prelude.Rng.int rng (i - 1) in
        let a =
          if arity.(j) = 2 then atom_of ~arity:2 (pname j) [ "X"; "Y" ]
          else atom_of ~arity:1 (pname j) [ "X" ]
        in
        extras := ("!" ^ a) :: !extras
      end;
      (* maybe a comparison between the two always-bound variables *)
      if Prelude.Rng.bool rng then
        extras :=
          !extras @ [ (if Prelude.Rng.bool rng then "X != Y" else "X < Y") ];
      let head = atom_of ~arity:(arity.(i)) (pname i) head_vars in
      Buffer.add_string buf
        (Printf.sprintf "%s :- %s%s.\n" head first
           (String.concat "" (List.map (fun a -> ", " ^ a) !extras)))
    done
  done;
  if aggregates then begin
    Buffer.add_string buf "agg_deg(X, cnt(Y)) :- e(X,Y).\n";
    let top = pname preds in
    if arity.(preds) = 2 then
      Buffer.add_string buf
        (Printf.sprintf
           "agg_top(X, cnt(Y), max(Y)) :- %s(X,Y).\nagg_all(cnt(X)) :- %s(X,Y).\n"
           top top)
    else
      Buffer.add_string buf
        (Printf.sprintf "agg_all(cnt(X), min(X)) :- %s(X).\n" top)
  end;
  Buffer.contents buf

let fuzz_seminaive_vs_naive =
  QCheck.Test.make ~name:"fuzz: random programs, semi-naive equals naive" ~count:60
    QCheck.(triple (1 -- 4) (0 -- 20) (0 -- 1000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 31) + (preds * 7) + nfacts) in
      let prog = random_program rng ~preds in
      let facts =
        List.init nfacts (fun _ ->
            Printf.sprintf "e(\"n%d\",\"n%d\").\n" (Prelude.Rng.int rng 5)
              (Prelude.Rng.int rng 5))
        |> String.concat ""
      in
      let src = facts ^ prog in
      let a = Datalog.Database.create () in
      let _ = Datalog.Eval.run a (parse src) in
      let b = Datalog.Database.create () in
      Datalog.Eval.run_naive b (parse src);
      Datalog.Eval.databases_agree a b = Ok ())

let fuzz_incremental_vs_scratch =
  QCheck.Test.make ~name:"fuzz: random programs, incremental equals from-scratch"
    ~count:60
    QCheck.(triple (1 -- 4) (2 -- 18) (0 -- 1000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 131) + (preds * 17) + nfacts) in
      let prog = random_program rng ~preds in
      let mk () =
        Printf.sprintf "e(\"n%d\",\"n%d\")" (Prelude.Rng.int rng 5)
          (Prelude.Rng.int rng 5)
      in
      let base = List.init nfacts (fun _ -> mk ()) |> List.sort_uniq compare in
      let adds =
        List.init 2 (fun _ -> mk ())
        |> List.sort_uniq compare
        |> List.filter (fun f -> not (List.mem f base))
      in
      let dels = List.filteri (fun i _ -> i < 2) base in
      check_incremental prog base adds dels = Ok ())

(* ---------- compiled plans vs the interpretive oracle ---------- *)

let relation_iter_matching () =
  let r = Datalog.Relation.create ~arity:2 in
  List.iter (fun t -> ignore (Datalog.Relation.add r t)) [ [| 1; 2 |]; [| 1; 3 |]; [| 2; 3 |] ];
  let collect col value =
    let acc = ref [] in
    Datalog.Relation.iter_matching r ~col ~value (fun t -> acc := Array.to_list t :: !acc);
    List.sort compare !acc
  in
  check_bool "col 0 bucket" true (collect 0 1 = [ [ 1; 2 ]; [ 1; 3 ] ]);
  check_bool "col 1 bucket" true (collect 1 3 = [ [ 1; 3 ]; [ 2; 3 ] ]);
  check_bool "empty bucket" true (collect 0 9 = []);
  check_int "fold counts the bucket" 2
    (Datalog.Relation.fold_matching r ~col:0 ~value:1 (fun acc _ -> acc + 1) 0);
  (* find stays a faithful wrapper over the fold *)
  check_int "find agrees" 2 (List.length (Datalog.Relation.find r ~col:0 ~value:1));
  ignore (Datalog.Relation.remove r [| 1; 3 |]);
  check_bool "index updated" true (collect 0 1 = [ [ 1; 2 ] ]);
  check_bool "other bucket updated" true (collect 1 3 = [ [ 2; 3 ] ])

(* Relation iteration walks live hashtable buckets; a callback that
   mutates the iterated relation must be caught by the version tripwire
   rather than silently skipping tuples after a bucket resize. *)
let relation_mutation_tripwire () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  let fill () =
    let r = Datalog.Relation.create ~arity:2 in
    for i = 1 to 64 do
      ignore (Datalog.Relation.add r [| 1; i |])
    done;
    r
  in
  let r = fill () in
  let n = ref 65 in
  check_bool "iter rejects add" true
    (raises (fun () ->
         Datalog.Relation.iter
           (fun _ ->
             incr n;
             ignore (Datalog.Relation.add r [| 1; !n |]))
           r));
  let r = fill () in
  let n = ref 65 in
  check_bool "iter_matching rejects add" true
    (raises (fun () ->
         Datalog.Relation.iter_matching r ~col:0 ~value:1 (fun _ ->
             incr n;
             ignore (Datalog.Relation.add r [| 1; !n |]))));
  let r = fill () in
  check_bool "iter_matching rejects remove" true
    (raises (fun () ->
         Datalog.Relation.iter_matching r ~col:0 ~value:1 (fun t ->
             ignore (Datalog.Relation.remove r (Array.copy t)))));
  (* mutating a different relation is fine *)
  let r = fill () in
  let other = Datalog.Relation.create ~arity:2 in
  Datalog.Relation.iter_matching r ~col:0 ~value:1 (fun t ->
      ignore (Datalog.Relation.add other t));
  check_int "cross-relation writes allowed" 64 (Datalog.Relation.cardinality other)

(* A plan's flat environment and head buffer are scratch state: running
   the same plan from inside its own on_derived must raise, not corrupt
   bindings. *)
let plan_reentrant_run_rejected () =
  let db = Datalog.Database.create () in
  List.iter
    (fun s -> ignore (Datalog.Database.add_fact db (atom s)))
    [ "e(\"a\",\"b\")"; "e(\"b\",\"c\")" ];
  let rule = List.hd (parse "h(X,Y) :- e(X,Y).") in
  let symbols = Datalog.Database.symbols db in
  let card = cardinal db in
  let plan = Datalog.Plan.compile ~symbols ~card rule in
  let view = Datalog.Matcher.view_of_db db in
  let work = ref 0 in
  let inner_raised = ref false in
  let outer = ref 0 in
  Datalog.Plan.run ~view ~work
    ~on_derived:(fun _ ->
      incr outer;
      match Datalog.Plan.run ~view ~work ~on_derived:(fun _ -> ()) plan with
      | exception Invalid_argument _ -> inner_raised := true
      | () -> ())
    plan;
  check_bool "reentrant run raises" true !inner_raised;
  check_int "outer run completes" 2 !outer;
  (* the running flag is reset by the guard: the plan stays usable *)
  let again = ref 0 in
  Datalog.Plan.run ~view ~work ~on_derived:(fun _ -> incr again) plan;
  check_int "plan reusable after the reentrancy error" 2 !again

(* Regression: a doubly-recursive rule probes [path] while staging grows
   [path] — with live-bucket iteration and undeferred staging, resizes
   mid-probe silently dropped derivations on cyclic data. The cycle of
   [n] nodes must close to exactly n^2 paths. *)
let eval_recursive_self_join_on_cycle () =
  let n = 48 in
  let facts =
    List.init n (fun i -> Printf.sprintf "edge(\"n%d\",\"n%d\").\n" i ((i + 1) mod n))
    |> String.concat ""
  in
  let src = facts ^ "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y).\n" in
  List.iter
    (fun engine ->
      let db = Datalog.Database.create () in
      let _ = Datalog.Eval.run ~engine db (parse src) in
      check_int "n^2 paths on a cycle" (n * n) (cardinal db "path"))
    [ Datalog.Plan.Compiled; Datalog.Plan.Interpreted ]

(* Same shape under maintenance: deleting a cycle edge overdeletes the
   whole closure and rederives the surviving chain, probing [path] while
   phases A/B mutate it. *)
let incr_recursive_self_join_on_cycle () =
  let n = 24 in
  let base =
    List.init n (fun i -> Printf.sprintf "edge(\"n%d\",\"n%d\")" i ((i + 1) mod n))
  in
  let prog = "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y)." in
  (match check_incremental prog base [] [ List.hd base ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match check_incremental prog base [ "edge(\"n3\",\"n0\")" ] [ List.nth base 1 ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* Run one compiled plan (with a delta literal, exercising reordering,
   probe elision and the scratch head buffer) directly against the
   interpreter on the same rule and view. *)
let plan_matches_interpreter () =
  let db = Datalog.Database.create () in
  List.iter
    (fun s -> ignore (Datalog.Database.add_fact db (atom s)))
    [
      "e(\"a\",\"b\")"; "e(\"b\",\"c\")"; "e(\"c\",\"d\")"; "e(\"a\",\"d\")";
      "q(\"b\")"; "q(\"c\")";
    ];
  let rule =
    List.hd (parse "h(X,Z) :- e(X,Y), e(Y,Z), q(Y), X != Z.")
  in
  let view = Datalog.Matcher.view_of_db db in
  let delta = Option.get (Datalog.Database.find db "e") in
  let run f =
    let acc = ref [] in
    let work = ref 0 in
    f ~work ~on_derived:(fun t -> acc := Array.to_list t :: !acc);
    List.sort_uniq compare !acc
  in
  List.iter
    (fun pos ->
      let symbols = Datalog.Database.symbols db in
      let card p =
        match Datalog.Database.find db p with
        | Some r -> Datalog.Relation.cardinality r
        | None -> 0
      in
      let plan = Datalog.Plan.compile ~delta:pos ~symbols ~card rule in
      let compiled =
        run (fun ~work ~on_derived ->
            Datalog.Plan.run ~delta ~view ~work ~on_derived plan)
      in
      let interpreted =
        run (fun ~work ~on_derived ->
            Datalog.Matcher.eval_rule ~symbols ~view ~delta:(pos, delta) ~work
              ~on_derived rule)
      in
      check_bool
        (Printf.sprintf "delta position %d agrees" pos)
        true
        (compiled = interpreted && compiled <> []))
    [ 0; 1 ]

(* The satellite acceptance property: randomized programs exercising
   recursion, negation, comparisons and aggregates produce identical
   databases under both engines — after materialization and after each
   of several randomized insert/retract batches applied to twin
   databases. *)
let engine_differential_qcheck =
  QCheck.Test.make
    ~name:"engines: compiled equals interpreter under materialization and updates"
    ~count:120
    QCheck.(triple (1 -- 4) (0 -- 18) (0 -- 10_000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 523) + (preds * 19) + nfacts) in
      let prog_src = random_program ~aggregates:true rng ~preds in
      let program = parse prog_src in
      let mk () =
        Printf.sprintf {|e("n%d","n%d")|} (Prelude.Rng.int rng 5)
          (Prelude.Rng.int rng 5)
      in
      let base = List.init nfacts (fun _ -> mk ()) |> List.sort_uniq compare in
      let load () =
        let db = Datalog.Database.create () in
        List.iter (fun f -> ignore (Datalog.Database.add_fact db (atom f))) base;
        db
      in
      let dbc = load () and dbi = load () in
      let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled dbc program in
      let _ = Datalog.Eval.run ~engine:Datalog.Plan.Interpreted dbi program in
      let ok = ref (Datalog.Eval.databases_agree dbc dbi = Ok ()) in
      for _ = 1 to 3 do
        let adds = List.init (Prelude.Rng.int rng 3) (fun _ -> atom (mk ())) in
        (* deletions may name absent facts: a no-op for both engines *)
        let dels = List.init (Prelude.Rng.int rng 2) (fun _ -> atom (mk ())) in
        ignore
          (Datalog.Incremental.apply ~engine:Datalog.Plan.Compiled dbc program
             ~additions:adds ~deletions:dels);
        ignore
          (Datalog.Incremental.apply ~engine:Datalog.Plan.Interpreted dbi program
             ~additions:adds ~deletions:dels);
        ok := !ok && Datalog.Eval.databases_agree dbc dbi = Ok ()
      done;
      !ok)

(* ---------- Parallel maintenance (apply_parallel) ---------- *)

(* The parallel-maintenance acceptance property: running the DRed
   component tasks on the multicore executor at any domain count
   restores exactly the serial database and reports the same net
   changes and the same activation flags. [work] counts are excluded
   on purpose: the rederive fixpoint's round structure depends on
   hash-iteration order, which parallel interning perturbs. *)
let parallel_differential_qcheck =
  QCheck.Test.make
    ~name:"parallel maintenance equals serial apply at 1/2/4 domains"
    ~count:100
    QCheck.(triple (1 -- 4) (0 -- 18) (0 -- 10_000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 911) + (preds * 23) + nfacts) in
      let prog_src = random_program ~aggregates:true rng ~preds in
      let program = parse prog_src in
      let mk () =
        Printf.sprintf {|e("n%d","n%d")|} (Prelude.Rng.int rng 5)
          (Prelude.Rng.int rng 5)
      in
      let base = List.init nfacts (fun _ -> mk ()) |> List.sort_uniq compare in
      let load () =
        let db = Datalog.Database.create () in
        List.iter (fun f -> ignore (Datalog.Database.add_fact db (atom f))) base;
        let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
        db
      in
      let flags r =
        List.map
          (fun (a : Datalog.Incremental.comp_activity) ->
            (a.Datalog.Incremental.comp, a.Datalog.Incremental.output_changed,
             a.Datalog.Incremental.input_changed))
          r.Datalog.Incremental.activity
      in
      let serial = load () in
      let twins = List.map (fun d -> (d, load ())) [ 1; 2; 4 ] in
      let ok = ref true in
      for _ = 1 to 3 do
        let adds = List.init (Prelude.Rng.int rng 3) (fun _ -> atom (mk ())) in
        let dels = List.init (Prelude.Rng.int rng 2) (fun _ -> atom (mk ())) in
        let r0 =
          Datalog.Incremental.apply ~engine:Datalog.Plan.Compiled serial program
            ~additions:adds ~deletions:dels
        in
        List.iter
          (fun (domains, db) ->
            let r =
              Datalog.Incremental.apply_parallel ~engine:Datalog.Plan.Compiled
                ~domains db program ~additions:adds ~deletions:dels
            in
            ok := !ok && Datalog.Eval.databases_agree serial db = Ok ();
            ok := !ok && r.Datalog.Incremental.changes = r0.Datalog.Incremental.changes;
            ok := !ok && flags r = flags r0)
          twins
      done;
      !ok)

let parallel_rejects_interpreter () =
  let program = parse "p(X,Y) :- e(X,Y). e(\"a\",\"b\")." in
  let db = Datalog.Database.create () in
  let _ = Datalog.Eval.run db program in
  match
    Datalog.Incremental.apply_parallel ~engine:Datalog.Plan.Interpreted ~domains:2
      db program ~additions:[ atom {|e("b","c")|} ] ~deletions:[]
  with
  | _ -> Alcotest.fail "interpreted engine must be rejected at domains > 1"
  | exception Invalid_argument _ -> ()

(* ---------- Sharded maintenance (apply_parallel ~shards) ---------- *)

let sharded_relation_units () =
  let s = Datalog.Relation.Sharded.create ~arity:2 ~shards:4 in
  check_int "shard count" 4 (Datalog.Relation.Sharded.shards s);
  let tuples = List.init 32 (fun i -> [| i * 7; i |]) in
  List.iter (fun t -> check_bool "fresh add" true (Datalog.Relation.Sharded.add s t)) tuples;
  List.iter
    (fun t -> check_bool "dup add" false (Datalog.Relation.Sharded.add s t))
    tuples;
  check_int "cardinality" 32 (Datalog.Relation.Sharded.cardinality s);
  (* routing: every tuple sits in exactly the sub-store its key hashes to *)
  List.iter
    (fun t ->
      let owner = Datalog.Relation.shard_of_tuple ~col:0 ~shards:4 t in
      check_bool "routed" true
        (Datalog.Relation.mem (Datalog.Relation.Sharded.shard s owner) t);
      for o = 0 to 3 do
        if o <> owner then
          check_bool "not elsewhere" false
            (Datalog.Relation.mem (Datalog.Relation.Sharded.shard s o) t)
      done;
      check_bool "mem routes" true (Datalog.Relation.Sharded.mem s t))
    tuples;
  (* canonical iteration = shard 0..k-1, each in insertion order; a
     second identically built store iterates identically *)
  let order t =
    let acc = ref [] in
    Datalog.Relation.Sharded.iter (fun tup -> acc := Array.to_list tup :: !acc) t;
    List.rev !acc
  in
  let s' = Datalog.Relation.Sharded.create ~arity:2 ~shards:4 in
  List.iter (fun t -> ignore (Datalog.Relation.Sharded.add s' t)) tuples;
  check_bool "deterministic canonical order" true (order s = order s');
  (* merge lands in canonical order and reports only new tuples *)
  let dst = Datalog.Relation.create ~arity:2 in
  ignore (Datalog.Relation.add dst [| 0; 0 |]);
  check_int "merged new" 31 (Datalog.Relation.Sharded.merge_into s dst);
  check_int "merged cardinality" 32 (Datalog.Relation.cardinality dst)

(* The sharding acceptance property: maintenance fanned out over any
   shards x domains grid restores exactly the serial database, net
   changes, and activation flags. [serial_threshold:0] forces the
   domains > 1 configurations onto the executor so the crew runs under
   concurrent component tasks; the (1, 4) configuration keeps the
   default threshold, exercising the small-update serial fallback. *)
let sharded_differential_qcheck =
  QCheck.Test.make
    ~name:"sharded maintenance equals serial apply over the shards x domains grid"
    ~count:100
    QCheck.(triple (1 -- 4) (0 -- 18) (0 -- 10_000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 977) + (preds * 29) + nfacts) in
      let prog_src = random_program ~aggregates:true rng ~preds in
      let program = parse prog_src in
      let mk () =
        Printf.sprintf {|e("n%d","n%d")|} (Prelude.Rng.int rng 5)
          (Prelude.Rng.int rng 5)
      in
      let base = List.init nfacts (fun _ -> mk ()) |> List.sort_uniq compare in
      let load () =
        let db = Datalog.Database.create () in
        List.iter (fun f -> ignore (Datalog.Database.add_fact db (atom f))) base;
        let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
        db
      in
      let flags r =
        List.map
          (fun (a : Datalog.Incremental.comp_activity) ->
            (a.Datalog.Incremental.comp, a.Datalog.Incremental.output_changed,
             a.Datalog.Incremental.input_changed))
          r.Datalog.Incremental.activity
      in
      let grid = [ (2, 1, Some 0); (4, 1, None); (2, 2, Some 0); (4, 4, Some 0); (1, 4, None) ] in
      let serial = load () in
      let twins = List.map (fun cfg -> (cfg, load ())) grid in
      let ok = ref true in
      for _ = 1 to 3 do
        let adds = List.init (Prelude.Rng.int rng 3) (fun _ -> atom (mk ())) in
        let dels = List.init (Prelude.Rng.int rng 2) (fun _ -> atom (mk ())) in
        let r0 =
          Datalog.Incremental.apply ~engine:Datalog.Plan.Compiled serial program
            ~additions:adds ~deletions:dels
        in
        List.iter
          (fun ((shards, domains, serial_threshold), db) ->
            (* sanitize:true on every parallel twin: the write-set
               sanitizer must be inert on safe runs — bit-identical
               results, no violations, across the whole grid *)
            let r =
              Datalog.Incremental.apply_parallel ~engine:Datalog.Plan.Compiled
                ~shards ~domains ?serial_threshold ~sanitize:true db program
                ~additions:adds ~deletions:dels
            in
            ok := !ok && Datalog.Eval.databases_agree serial db = Ok ();
            ok := !ok && r.Datalog.Incremental.changes = r0.Datalog.Incremental.changes;
            ok := !ok && flags r = flags r0)
          twins
      done;
      !ok)

(* The merge is deterministic, not merely set-equal: two runs of the
   same sharded update produce every relation in the same insertion
   (iteration) order, because the coordinator merges the per-shard
   buffers in shard order behind the crew barrier. *)
let sharded_merge_deterministic () =
  let program =
    parse
      "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).\n\
       reach(X) :- path(X,Y)."
  in
  let base =
    List.init 24 (fun i ->
        Printf.sprintf {|edge("n%d","n%d")|} (i mod 12) ((i * 5 + 1) mod 12))
    |> List.sort_uniq compare
  in
  let run () =
    let db = Datalog.Database.create () in
    List.iter (fun f -> ignore (Datalog.Database.add_fact db (atom f))) base;
    let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
    ignore
      (Datalog.Incremental.apply_parallel ~engine:Datalog.Plan.Compiled ~shards:4
         ~domains:2 ~serial_threshold:0 db program
         ~additions:[ atom {|edge("n3","n0")|}; atom {|edge("n12","n1")|} ]
         ~deletions:[ atom {|edge("n0","n1")|} ]);
    List.map
      (fun pred ->
        match Datalog.Database.find db pred with
        | None -> (pred, [])
        | Some rel ->
          (pred, List.map Array.to_list (Datalog.Relation.to_list rel)))
      [ "edge"; "path"; "reach" ]
  in
  let a = run () in
  let b = run () in
  check_bool "identical iteration order across runs" true (a = b)

(* The task-count fallback: a small update on [domains > 1] skips the
   executor entirely (no task spans recorded), unless the threshold is
   forced to zero. *)
let sharded_fallback_serial () =
  let program =
    parse "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)."
  in
  let load () =
    let db = Datalog.Database.create () in
    ignore (Datalog.Database.add_fact db (atom {|edge("a","b")|}));
    let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
    db
  in
  let task_spans ?serial_threshold () =
    let domains = 4 in
    let obs = Obs.Trace.create ~domains () in
    let db = load () in
    ignore
      (Datalog.Incremental.apply_parallel ~engine:Datalog.Plan.Compiled ~domains
         ?serial_threshold ~obs db program
         ~additions:[ atom {|edge("b","c")|} ]
         ~deletions:[]);
    let n = ref 0 in
    for w = 0 to domains - 1 do
      Obs.Ring.iter (Obs.Trace.ring obs w) (fun ~kind ~t_ns:_ ~a:_ ~b:_ ->
          if kind = Obs.Event.task then incr n)
    done;
    !n
  in
  (* the program has 2 components; the default threshold
     (serial_task_threshold = 8) sends the update down the serial walk *)
  check_bool "threshold exceeds wavefront" true
    (Datalog.Incremental.serial_task_threshold > 2);
  check_int "fallback runs no executor tasks" 0 (task_spans ());
  check_bool "forced executor runs tasks" true
    (task_spans ~serial_threshold:0 () > 0)

(* ---------- Counting maintenance (apply ~maint:Counting) ---------- *)

(* The counting acceptance property: maintaining by derivation counts
   restores exactly the database DRed restores — which the DRed suite
   already pins to from-scratch recomputation — with the same net
   changes and activation flags, across multi-batch streams that mix
   insertions with deletions of genuinely live facts. The explicit
   from-scratch twin keeps the oracle independent: a bug shared by both
   engines would still be caught. *)
let counting_differential_qcheck =
  QCheck.Test.make
    ~name:"counting maintenance equals DRed and from-scratch over update streams"
    ~count:120
    QCheck.(triple (1 -- 4) (0 -- 18) (0 -- 10_000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 1013) + (preds * 37) + nfacts) in
      let prog_src = random_program ~aggregates:true rng ~preds in
      let program = parse prog_src in
      let mk () =
        Printf.sprintf {|e("n%d","n%d")|} (Prelude.Rng.int rng 5)
          (Prelude.Rng.int rng 5)
      in
      let base = List.init nfacts (fun _ -> mk ()) |> List.sort_uniq compare in
      let load facts =
        let db = Datalog.Database.create () in
        List.iter (fun f -> ignore (Datalog.Database.add_fact db (atom f))) facts;
        let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
        db
      in
      let flags r =
        List.map
          (fun (a : Datalog.Incremental.comp_activity) ->
            (a.Datalog.Incremental.comp, a.Datalog.Incremental.output_changed,
             a.Datalog.Incremental.input_changed))
          r.Datalog.Incremental.activity
      in
      let dred = load base and cnt = load base in
      (* half the streams start from primed counts, half force the
         transparent stale rebuild inside the first apply *)
      if Prelude.Rng.bool rng then
        ignore (Datalog.Incremental.prime cnt program);
      let live = ref base in
      let ok = ref true in
      for _ = 1 to 3 do
        let adds =
          List.init (Prelude.Rng.int rng 3) (fun _ -> mk ())
          |> List.sort_uniq compare
          |> List.filter (fun f -> not (List.mem f !live))
        in
        (* deletion-heavy: up to three live facts, plus maybe an absent
           one (a no-op for every engine) *)
        let ndel = min (Prelude.Rng.int rng 4) (List.length !live) in
        let dels =
          List.filteri
            (fun i _ -> i mod (1 + (List.length !live / max 1 ndel)) = 0)
            !live
          |> List.filteri (fun i _ -> i < ndel)
        in
        let dels =
          if Prelude.Rng.bool rng then
            (mk () :: dels) |> List.sort_uniq compare
            |> List.filter (fun f -> List.mem f dels || not (List.mem f !live))
          else dels
        in
        live := List.filter (fun f -> not (List.mem f dels)) !live @ adds;
        let additions = List.map atom adds and deletions = List.map atom dels in
        let r0 =
          Datalog.Incremental.apply ~engine:Datalog.Plan.Compiled
            ~maint:Datalog.Incremental.Dred dred program ~additions ~deletions
        in
        let r =
          Datalog.Incremental.apply ~engine:Datalog.Plan.Compiled
            ~maint:Datalog.Incremental.Counting cnt program ~additions ~deletions
        in
        ok := !ok && Datalog.Eval.databases_agree dred cnt = Ok ();
        ok := !ok && r.Datalog.Incremental.changes = r0.Datalog.Incremental.changes;
        ok := !ok && flags r = flags r0;
        let scratch = load !live in
        ok := !ok && Datalog.Eval.databases_agree scratch cnt = Ok ()
      done;
      !ok)

(* The count invariant: after any maintained stream, every relation's
   derivation counts equal the counts a fresh [prime] computes on a
   from-scratch twin — incremental bookkeeping never drifts from the
   ground truth. *)
let counting_counts_invariant_qcheck =
  (* decode tuples back to atoms: the twin databases intern constants
     in different orders, so raw tuple ints are not comparable *)
  let counts_of db =
    Datalog.Database.predicates db
    |> List.map (fun (name, rel) ->
           let cells =
             match Datalog.Relation.counts_synced rel with
             | None -> None
             | Some c ->
               let acc = ref [] in
               Datalog.Relation.counts_iter
                 (fun tup (cell : Datalog.Relation.count_cell) ->
                   acc :=
                     ( Format.asprintf "%a" Datalog.Ast.pp_atom
                         (Datalog.Database.tuple_to_atom db name tup),
                       cell.exits, cell.recs )
                     :: !acc)
                 c;
               Some (List.sort compare !acc)
           in
           (name, cells))
    |> List.sort compare
  in
  QCheck.Test.make
    ~name:"counting: maintained counts equal a fresh prime of the same database"
    ~count:100
    QCheck.(triple (1 -- 4) (2 -- 18) (0 -- 10_000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 1117) + (preds * 41) + nfacts) in
      let prog_src = random_program rng ~preds in
      let program = parse prog_src in
      let mk () =
        Printf.sprintf {|e("n%d","n%d")|} (Prelude.Rng.int rng 5)
          (Prelude.Rng.int rng 5)
      in
      let base = List.init nfacts (fun _ -> mk ()) |> List.sort_uniq compare in
      let load facts =
        let db = Datalog.Database.create () in
        List.iter (fun f -> ignore (Datalog.Database.add_fact db (atom f))) facts;
        let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
        db
      in
      let cnt = load base in
      (* prime upfront: components an update never activates keep their
         side tables lazily absent otherwise, which is not drift *)
      ignore (Datalog.Incremental.prime cnt program);
      let live = ref base in
      for _ = 1 to 3 do
        let adds =
          List.init (Prelude.Rng.int rng 3) (fun _ -> mk ())
          |> List.sort_uniq compare
          |> List.filter (fun f -> not (List.mem f !live))
        in
        let dels = List.filteri (fun i _ -> i < Prelude.Rng.int rng 3) !live in
        live := List.filter (fun f -> not (List.mem f dels)) !live @ adds;
        ignore
          (Datalog.Incremental.apply ~engine:Datalog.Plan.Compiled
             ~maint:Datalog.Incremental.Counting cnt program
             ~additions:(List.map atom adds) ~deletions:(List.map atom dels))
      done;
      let scratch = load !live in
      ignore (Datalog.Incremental.prime scratch program);
      counts_of cnt = counts_of scratch)

(* Hand-computed counts on the diamond: path(a,d) is derivable through
   b and through c — two recursive derivations, no exit derivation —
   so deleting one diagonal must decrement it to 1 and keep it alive,
   and deleting the second must kill it. *)
let counting_diamond_counts () =
  let program =
    parse
      {|edge("a","b"). edge("a","c"). edge("b","d"). edge("c","d").
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- path(X,Y), edge(Y,Z).|}
  in
  let db = Datalog.Database.create () in
  let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
  ignore (Datalog.Incremental.prime db program);
  let cell_of x y =
    let rel = Option.get (Datalog.Database.find db "path") in
    match Datalog.Relation.counts_synced rel with
    | None -> None
    | Some c ->
      Datalog.Relation.count_find c
        (Datalog.Database.intern_atom db
           (atom (Printf.sprintf {|path("%s","%s")|} x y)))
  in
  (match cell_of "a" "d" with
  | Some cell ->
    check_int "path(a,d) exits" 0 cell.Datalog.Relation.exits;
    check_int "path(a,d) recs" 2 cell.Datalog.Relation.recs;
    (* first derived on fixpoint round 1, both witnesses at level 0 *)
    check_int "path(a,d) level" 1 cell.Datalog.Relation.level;
    check_int "path(a,d) low" 2 cell.Datalog.Relation.low
  | None -> Alcotest.fail "path(a,d) has no count cell");
  (match cell_of "a" "b" with
  | Some cell ->
    check_int "path(a,b) exits" 1 cell.Datalog.Relation.exits;
    check_int "path(a,b) recs" 0 cell.Datalog.Relation.recs;
    check_int "path(a,b) level" 0 cell.Datalog.Relation.level;
    check_int "path(a,b) low" 0 cell.Datalog.Relation.low
  | None -> Alcotest.fail "path(a,b) has no count cell");
  ignore
    (Datalog.Incremental.apply ~maint:Datalog.Incremental.Counting db program
       ~additions:[] ~deletions:[ atom {|edge("b","d")|} ]);
  check_bool "path(a,d) survives one diagonal" true
    (Datalog.Database.mem_fact db (atom {|path("a","d")|}));
  (match cell_of "a" "d" with
  | Some cell ->
    check_int "path(a,d) recs after delete" 1 cell.Datalog.Relation.recs;
    (* the dead diagonal's index entry dies with it; the survivor's
       stays, and the level is immutable *)
    check_int "path(a,d) level after delete" 1 cell.Datalog.Relation.level;
    check_int "path(a,d) low after delete" 1 cell.Datalog.Relation.low
  | None -> Alcotest.fail "path(a,d) lost its count cell");
  ignore
    (Datalog.Incremental.apply ~maint:Datalog.Incremental.Counting db program
       ~additions:[] ~deletions:[ atom {|edge("c","d")|} ]);
  check_bool "path(a,d) dies at count zero" false
    (Datalog.Database.mem_fact db (atom {|path("a","d")|}));
  check_bool "path(a,d) cell dropped" true (cell_of "a" "d" = None)

(* Interleaving the two algorithms on one database: a DRed update bumps
   the relation versions, so the next counting update must detect the
   stale side tables and rebuild them transparently. *)
let counting_survives_dred_interleaving () =
  let program =
    parse
      {|edge("a","b"). edge("b","c"). edge("c","d"). edge("a","c").
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- path(X,Y), edge(Y,Z).|}
  in
  let load () =
    let db = Datalog.Database.create () in
    let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
    db
  in
  let db = load () and scratch = load () in
  let steps =
    [
      (Datalog.Incremental.Counting, [ {|edge("d","a")|} ], []);
      (Datalog.Incremental.Dred, [], [ {|edge("b","c")|} ]);
      (Datalog.Incremental.Counting, [ {|edge("b","d")|} ], [ {|edge("a","c")|} ]);
    ]
  in
  List.iter
    (fun (maint, adds, dels) ->
      let additions = List.map atom adds and deletions = List.map atom dels in
      ignore (Datalog.Incremental.apply ~maint db program ~additions ~deletions);
      ignore (Datalog.Incremental.apply ~maint:Datalog.Incremental.Dred scratch
                program ~additions ~deletions))
    steps;
  check_bool "interleaved engines agree" true
    (Datalog.Eval.databases_agree scratch db = Ok ())

(* Regression: an unfounded cycle must not survive the backward
   search. After deleting the sole exit fact, p("a") and p("b") support
   only each other through the link cycle; a backward search that
   spreads suspicion lazily (or exempts a cone member off its own stale
   level certificate) proves each off the other and keeps both alive.
   DRed overdeletes and gets this right structurally; counting must
   agree. *)
let counting_unfounded_cycle () =
  let program =
    parse
      {|e0("a"). link("a","b"). link("b","a").
        p(X) :- e0(X).
        p(X) :- p(Y), link(Y,X).|}
  in
  let load () =
    let db = Datalog.Database.create () in
    let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
    db
  in
  let dred = load () and cnt = load () in
  ignore (Datalog.Incremental.prime cnt program);
  let deletions = [ atom {|e0("a")|} ] in
  ignore
    (Datalog.Incremental.apply ~maint:Datalog.Incremental.Dred dred program
       ~additions:[] ~deletions);
  ignore
    (Datalog.Incremental.apply ~maint:Datalog.Incremental.Counting cnt program
       ~additions:[] ~deletions);
  check_bool "p(a) gone" false (Datalog.Database.mem_fact cnt (atom {|p("a")|}));
  check_bool "p(b) gone" false (Datalog.Database.mem_fact cnt (atom {|p("b")|}));
  check_bool "counting agrees with dred" true
    (Datalog.Eval.databases_agree dred cnt = Ok ())

(* The level-index invariant on transitive closure, where the oracle is
   exact: a fresh prime assigns path(x,z) the BFS round of its first
   well-founded derivation (shortest edge count minus one), [exits] is
   the direct edge, [recs] counts the y with path(x,y), edge(y,z), and
   [low] the subset whose prefix sits at a strictly smaller distance.
   After maintained deletions levels are immutable, so the maintained
   cells must still satisfy the conservative reading: counts exact,
   [low] never exceeding the derivations whose witness cell sits at a
   strictly lower level than the head cell. *)
let counting_level_index_qcheck =
  let nodes = 6 in
  let program =
    parse {|path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).|}
  in
  (* dist.(z) = least edge count of a nonempty x-to-z walk *)
  let dists edges x =
    let dist = Array.make nodes max_int in
    let q = Queue.create () in
    List.iter
      (fun (a, b) ->
        if a = x && dist.(b) = max_int then begin
          dist.(b) <- 1;
          Queue.add b q
        end)
      edges;
    while not (Queue.is_empty q) do
      let y = Queue.pop q in
      List.iter
        (fun (a, b) ->
          if a = y && dist.(b) > dist.(y) + 1 then begin
            dist.(b) <- dist.(y) + 1;
            Queue.add b q
          end)
        edges
    done;
    dist
  in
  let cell_of db x z =
    let rel = Option.get (Datalog.Database.find db "path") in
    match Datalog.Relation.counts_synced rel with
    | None -> None
    | Some c ->
      Datalog.Relation.count_find c
        (Datalog.Database.intern_atom db
           (atom (Printf.sprintf {|path("n%d","n%d")|} x z)))
  in
  let mem_path db x z =
    Datalog.Database.mem_fact db (atom (Printf.sprintf {|path("n%d","n%d")|} x z))
  in
  QCheck.Test.make ~name:"counting: level index obeys the BFS oracle" ~count:100
    QCheck.(pair (4 -- 14) (0 -- 10_000))
    (fun (nedges, seed) ->
      let rng = Prelude.Rng.create ((seed * 733) + nedges) in
      let edges =
        ref
          (List.init nedges (fun _ ->
               (Prelude.Rng.int rng nodes, Prelude.Rng.int rng nodes))
          |> List.sort_uniq compare)
      in
      let db = Datalog.Database.create () in
      List.iter
        (fun (a, b) ->
          ignore
            (Datalog.Database.add_fact db
               (atom (Printf.sprintf {|edge("n%d","n%d")|} a b))))
        !edges;
      let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
      ignore (Datalog.Incremental.prime db program);
      let ok = ref true in
      let check_pair ~exact x z =
        let dist = dists !edges x in
        let reach = Array.map (fun d -> d < max_int) dist in
        let expect = reach.(z) in
        if mem_path db x z <> expect then ok := false;
        match cell_of db x z with
        | None -> if expect then ok := false
        | Some cell ->
          if not expect then ok := false
          else begin
            let exits = if List.mem (x, z) !edges then 1 else 0 in
            let recs =
              List.length (List.filter (fun (y, b) -> b = z && reach.(y)) !edges)
            in
            if cell.Datalog.Relation.exits <> exits then ok := false;
            if cell.Datalog.Relation.recs <> recs then ok := false;
            if exact then begin
              let low =
                List.length
                  (List.filter
                     (fun (y, b) -> b = z && reach.(y) && dist.(y) < dist.(z))
                     !edges)
              in
              if cell.Datalog.Relation.level <> dist.(z) - 1 then ok := false;
              if cell.Datalog.Relation.low <> low then ok := false
            end
            else begin
              (* conservative: [low] counts only derivations whose
                 witness cell sits strictly below this cell's level *)
              let lvl xx yy =
                match cell_of db xx yy with
                | Some c -> c.Datalog.Relation.level
                | None -> max_int
              in
              let bound =
                List.length
                  (List.filter
                     (fun (y, b) -> b = z && mem_path db x y && lvl x y < lvl x z)
                     !edges)
              in
              if cell.Datalog.Relation.low < 0 then ok := false;
              if cell.Datalog.Relation.low > bound then ok := false
            end
          end
      in
      for x = 0 to nodes - 1 do
        for z = 0 to nodes - 1 do
          check_pair ~exact:true x z
        done
      done;
      (* deletion-only stream: levels stay immutable, the conservative
         reading must keep holding on the maintained cells *)
      for _ = 1 to 2 do
        let ndel = min (1 + Prelude.Rng.int rng 3) (List.length !edges) in
        let dels = List.filteri (fun i _ -> i < ndel) !edges in
        edges := List.filter (fun e -> not (List.mem e dels)) !edges;
        ignore
          (Datalog.Incremental.apply ~maint:Datalog.Incremental.Counting db program
             ~additions:[]
             ~deletions:
               (List.map
                  (fun (a, b) ->
                    atom (Printf.sprintf {|edge("n%d","n%d")|} a b))
                  dels));
        for x = 0 to nodes - 1 do
          for z = 0 to nodes - 1 do
            check_pair ~exact:false x z
          done
        done
      done;
      !ok)

(* The sharded grid: counting with sharded count tables must restore
   the same database as serial DRed and as from-scratch recomputation
   at every point of {shards 1, 2, 4} x {domains 1, 2}. *)
let counting_sharded_differential_qcheck =
  QCheck.Test.make
    ~name:"sharded counting equals serial DRed and from-scratch across the grid"
    ~count:100
    QCheck.(triple (1 -- 3) (2 -- 14) (0 -- 10_000))
    (fun (preds, nfacts, seed) ->
      let rng = Prelude.Rng.create ((seed * 911) + (preds * 53) + nfacts) in
      let prog_src = random_program ~aggregates:true rng ~preds in
      let program = parse prog_src in
      let mk () =
        Printf.sprintf {|e("n%d","n%d")|} (Prelude.Rng.int rng 5)
          (Prelude.Rng.int rng 5)
      in
      let base = List.init nfacts (fun _ -> mk ()) |> List.sort_uniq compare in
      let load facts =
        let db = Datalog.Database.create () in
        List.iter (fun f -> ignore (Datalog.Database.add_fact db (atom f))) facts;
        let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
        db
      in
      let grid = [ (1, 1); (2, 1); (4, 1); (1, 2); (2, 2); (4, 2) ] in
      let dred = load base in
      let cnts = List.map (fun cfg -> (cfg, load base)) grid in
      let live = ref base in
      let ok = ref true in
      for _ = 1 to 2 do
        let adds =
          List.init (Prelude.Rng.int rng 3) (fun _ -> mk ())
          |> List.sort_uniq compare
          |> List.filter (fun f -> not (List.mem f !live))
        in
        let ndel = min (Prelude.Rng.int rng 3) (List.length !live) in
        let dels = List.filteri (fun i _ -> i < ndel) !live in
        live := List.filter (fun f -> not (List.mem f dels)) !live @ adds;
        let additions = List.map atom adds and deletions = List.map atom dels in
        ignore
          (Datalog.Incremental.apply ~engine:Datalog.Plan.Compiled
             ~maint:Datalog.Incremental.Dred dred program ~additions ~deletions);
        List.iter
          (fun ((shards, domains), db) ->
            ignore
              (Datalog.Incremental.apply_parallel ~maint:Datalog.Incremental.Counting
                 ~shards ~domains db program ~additions ~deletions))
          cnts;
        let scratch = load !live in
        List.iter
          (fun (_, db) ->
            ok := !ok && Datalog.Eval.databases_agree dred db = Ok ();
            ok := !ok && Datalog.Eval.databases_agree scratch db = Ok ())
          cnts
      done;
      !ok)

let msg_mentions needle msg =
  let nl = String.length needle and hl = String.length msg in
  let rec find i = i + nl <= hl && (String.sub msg i nl = needle || find (i + 1)) in
  find 0

(* Counting is compiled-only: that misuse is still rejected loudly.
   Counting + shards > 1, by contrast, now runs natively — the count
   side tables shard like the tuple stores — with no downgrade
   warning and the same database as the serial walk. *)
let counting_rejects_unsupported () =
  let program = parse "p(X,Y) :- e(X,Y). e(\"a\",\"b\")." in
  let load () =
    let db = Datalog.Database.create () in
    let _ = Datalog.Eval.run db program in
    db
  in
  let db = load () in
  let adds = [ atom {|e("b","c")|} ] in
  (match
     Datalog.Incremental.apply ~engine:Datalog.Plan.Interpreted
       ~maint:Datalog.Incremental.Counting db program ~additions:adds
       ~deletions:[]
   with
  | _ -> Alcotest.fail "interpreted engine must be rejected under counting"
  | exception Invalid_argument _ -> ());
  (* counting + shards > 1: native sharded counting, no warning *)
  let serial = load () in
  ignore
    (Datalog.Incremental.apply ~maint:Datalog.Incremental.Counting serial program
       ~additions:adds ~deletions:[]);
  let warned = ref [] in
  let r =
    Datalog.Incremental.apply_parallel ~maint:Datalog.Incremental.Counting
      ~shards:2 ~on_warn:(fun m -> warned := m :: !warned) db program
      ~additions:adds ~deletions:[]
  in
  check_bool "sharded counting matches the serial database" true
    (Datalog.Eval.databases_agree serial db = Ok ());
  check_bool "sharded counting reports the change" true
    (List.exists
       (fun (c : Datalog.Incremental.pred_change) -> c.Datalog.Incremental.pred = "p")
       r.Datalog.Incremental.changes);
  (match List.rev !warned with
  | [] -> ()
  | l -> Alcotest.failf "expected no downgrade warning, got %d" (List.length l));
  (match Datalog.Incremental.prime ~engine:Datalog.Plan.Interpreted db program with
  | _ -> Alcotest.fail "prime must reject the interpreted engine"
  | exception Invalid_argument _ -> ());
  (* domains > 1 with shards = 1 stays legal: component-level
     parallelism is algorithm-agnostic *)
  ignore
    (Datalog.Incremental.apply_parallel ~maint:Datalog.Incremental.Counting
       ~domains:2 db program ~additions:adds ~deletions:[])

(* ---------- Static analysis (Analyze) ---------- *)

let comp_info t pred =
  match Datalog.Analyze.comp_of_pred t pred with
  | Some c -> t.Datalog.Analyze.comps.(c)
  | None -> Alcotest.failf "no component for %s" pred

let rule_infos t pred =
  Array.to_list t.Datalog.Analyze.rules
  |> List.filter (fun (ri : Datalog.Analyze.rule_info) -> ri.Datalog.Analyze.head = pred)

let analyze_tc_effects () =
  let t =
    Datalog.Analyze.program
      (parse
         {|edge("a","b"). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).|})
  in
  let ci = comp_info t "path" in
  check_bool "linear" true (ci.Datalog.Analyze.recursion = Datalog.Analyze.Linear);
  check_int "rules" 2 ci.Datalog.Analyze.rule_count;
  check_int "exit rules" 1 ci.Datalog.Analyze.exit_rules;
  check_bool "reads" true (ci.Datalog.Analyze.reads = [ "edge"; "path" ]);
  check_bool "external reads" true (ci.Datalog.Analyze.external_reads = [ "edge" ]);
  check_bool "writes" true (ci.Datalog.Analyze.writes = [ "path" ]);
  check_bool "deltas" true (ci.Datalog.Analyze.deltas = [ "edge"; "path" ]);
  check_bool "shardable" true ci.Datalog.Analyze.shardable;
  check_bool "advised counting" true
    (ci.Datalog.Analyze.verdict = Datalog.Analyze.Counting);
  (* per-rule effects come from compiled instruction steps *)
  (match rule_infos t "path" with
  | [ exit_rule; rec_rule ] ->
    check_bool "exit plan-derived" true exit_rule.Datalog.Analyze.plan_derived;
    check_bool "exit reads" true (exit_rule.Datalog.Analyze.reads = [ "edge" ]);
    check_int "exit in-comp atoms" 0 exit_rule.Datalog.Analyze.in_comp_pos;
    check_bool "rec reads" true (rec_rule.Datalog.Analyze.reads = [ "edge"; "path" ]);
    check_int "rec in-comp atoms" 1 rec_rule.Datalog.Analyze.in_comp_pos
  | l -> Alcotest.failf "expected two path rules, got %d" (List.length l));
  check_bool "self-verify" true (Datalog.Analyze.verify t = Ok ())

let analyze_same_generation () =
  let t =
    Datalog.Analyze.program
      (parse
         {|flat("a","b"). up("a","b"). down("a","b").
           sg(X,Y) :- flat(X,Y).
           sg(X,Y) :- up(X,A), sg(A,B), down(B,Y).|})
  in
  let ci = comp_info t "sg" in
  check_bool "linear" true (ci.Datalog.Analyze.recursion = Datalog.Analyze.Linear);
  check_bool "reads all three inputs" true
    (ci.Datalog.Analyze.external_reads = [ "down"; "flat"; "up" ]);
  check_bool "advised counting" true
    (ci.Datalog.Analyze.verdict = Datalog.Analyze.Counting)

let analyze_negation_effects () =
  let t =
    Datalog.Analyze.program
      (parse
         {|node("a"). edge("a","b").
           path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).
           lonely(X) :- node(X), !path(X,X).|})
  in
  let ci = comp_info t "lonely" in
  check_bool "negation recorded" true ci.Datalog.Analyze.has_negation;
  (* the negated predicate shows up in the effect set: it is read by the
     compiled Reject step *)
  check_bool "reads the negated relation" true
    (ci.Datalog.Analyze.reads = [ "node"; "path" ]);
  check_bool "advised dred" true (ci.Datalog.Analyze.verdict = Datalog.Analyze.Dred);
  (match rule_infos t "lonely" with
  | [ ri ] -> check_bool "plan-derived" true ri.Datalog.Analyze.plan_derived
  | l -> Alcotest.failf "expected one lonely rule, got %d" (List.length l))

let analyze_aggregate_effects () =
  let t =
    Datalog.Analyze.program
      (parse {|line("o1","a",3). total(O, sum(N)) :- line(O, I, N).|})
  in
  let ci = comp_info t "total" in
  check_bool "aggregate recorded" true ci.Datalog.Analyze.has_aggregate;
  check_bool "advised dred" true (ci.Datalog.Analyze.verdict = Datalog.Analyze.Dred);
  (* no plan exists for aggregate rules: reads fall back to the AST *)
  (match rule_infos t "total" with
  | [ ri ] ->
    check_bool "ast fallback" true (not ri.Datalog.Analyze.plan_derived);
    check_bool "reads" true (ri.Datalog.Analyze.reads = [ "line" ])
  | l -> Alcotest.failf "expected one total rule, got %d" (List.length l))

let analyze_nonlinear_and_weak_exit () =
  let t =
    Datalog.Analyze.program
      (parse {|e("a","b"). p(X,Y) :- e(X,Y). p(X,Z) :- p(X,Y), p(Y,Z).|})
  in
  let ci = comp_info t "p" in
  check_bool "nonlinear" true (ci.Datalog.Analyze.recursion = Datalog.Analyze.Nonlinear);
  check_bool "nonlinear advised dred" true
    (ci.Datalog.Analyze.verdict = Datalog.Analyze.Dred);
  (* linear but exit-starved: 1 exit rule against 3 recursive ones *)
  let t =
    Datalog.Analyze.program
      (parse
         {|a("x","y"). b("x","y"). c("x","y").
           q(X,Y) :- a(X,Y).
           q(X,Z) :- q(X,Y), a(Y,Z).
           q(X,Z) :- q(X,Y), b(Y,Z).
           q(X,Z) :- q(X,Y), c(Y,Z).|})
  in
  let ci = comp_info t "q" in
  check_bool "linear" true (ci.Datalog.Analyze.recursion = Datalog.Analyze.Linear);
  check_bool "weak exit advised dred" true
    (ci.Datalog.Analyze.verdict = Datalog.Analyze.Dred)

let analyze_check_ownership () =
  let t =
    Datalog.Analyze.program
      (parse {|e("x","x"). a(X) :- e(X,X). b(X) :- a(X).|})
  in
  let anal = t.Datalog.Analyze.anal in
  let comp p = Option.get (Datalog.Analyze.comp_of_pred t p) in
  check_bool "own write, upstream read" true
    (Datalog.Analyze.check_ownership anal ~comp:(comp "b") ~writes:[ "b" ]
       ~reads:[ "a"; "b" ]
    = Ok ());
  (match
     Datalog.Analyze.check_ownership anal ~comp:(comp "a") ~writes:[ "b" ] ~reads:[]
   with
  | Error m -> check_bool "names the foreign write" true (msg_mentions "writes b" m)
  | Ok () -> Alcotest.fail "foreign write must be rejected");
  (match
     Datalog.Analyze.check_ownership anal ~comp:(comp "a") ~writes:[ "a" ]
       ~reads:[ "b" ]
   with
  | Error m -> check_bool "names the downstream read" true (msg_mentions "reads b" m)
  | Ok () -> Alcotest.fail "downstream read must be rejected")

(* ---------- Write-set sanitizer ---------- *)

let sanitizer_catches_violation () =
  let r = Datalog.Relation.create ~arity:1 in
  Datalog.Relation.Sanitize.set_owner r ~name:"path" ~owner:"component 1 [path]";
  (* a mutation outside any writer scope *)
  (match Datalog.Relation.add r [| 1 |] with
  | _ -> Alcotest.fail "expected a violation outside any scope"
  | exception Datalog.Relation.Sanitize.Violation m ->
    check_bool "names relation and owner" true
      (msg_mentions "path" m && msg_mentions "component 1" m));
  (* a mutation from the wrong component's scope — even a no-op write *)
  Datalog.Relation.Sanitize.with_writer "component 2 [q]" (fun () ->
      match Datalog.Relation.remove r [| 1 |] with
      | _ -> Alcotest.fail "expected a violation from a foreign writer"
      | exception Datalog.Relation.Sanitize.Violation m ->
        check_bool "names the offender" true (msg_mentions "component 2" m));
  check_bool "relation untouched" true (Datalog.Relation.cardinality r = 0);
  (* the owner writes fine; clearing the tag disarms the checks *)
  Datalog.Relation.Sanitize.with_writer "component 1 [path]" (fun () ->
      check_bool "owner writes" true (Datalog.Relation.add r [| 1 |]));
  Datalog.Relation.Sanitize.clear_owner r;
  check_bool "untagged writes" true (Datalog.Relation.add r [| 2 |])

let sanitizer_inert_and_cleans_up () =
  let program =
    parse
      {|edge("a","b"). edge("b","c").
        path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).|}
  in
  let load () =
    let db = Datalog.Database.create () in
    let _ = Datalog.Eval.run db program in
    db
  in
  let plain = load () and armed = load () in
  let adds = [ atom {|edge("c","d")|} ] and dels = [ atom {|edge("a","b")|} ] in
  let r0 = Datalog.Incremental.apply plain program ~additions:adds ~deletions:dels in
  let r =
    Datalog.Incremental.apply ~sanitize:true armed program ~additions:adds
      ~deletions:dels
  in
  check_bool "sanitizer is inert on a safe run" true
    (Datalog.Eval.databases_agree plain armed = Ok ()
    && r.Datalog.Incremental.changes = r0.Datalog.Incremental.changes);
  (* ownership tags are removed before apply returns *)
  let path = Option.get (Datalog.Database.find armed "path") in
  check_bool "tags removed" true (Datalog.Relation.Sanitize.owner path = None)

(* ---------- Auto maintenance (--maint auto) ---------- *)

let auto_differential () =
  let program =
    parse
      {|edge("a","b"). edge("b","c"). edge("c","d"). node("a"). node("d"). node("e").
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- path(X,Y), edge(Y,Z).
        unreachable(X) :- node(X), !path("a",X).
        total(cnt(Y)) :- path("a",Y).|}
  in
  (* the advisor splits the program: counting for the TC component,
     DRed for negation and aggregation *)
  let t = Datalog.Analyze.program program in
  check_bool "path advised counting" true
    ((comp_info t "path").Datalog.Analyze.verdict = Datalog.Analyze.Counting);
  check_bool "unreachable advised dred" true
    ((comp_info t "unreachable").Datalog.Analyze.verdict = Datalog.Analyze.Dred);
  check_bool "total advised dred" true
    ((comp_info t "total").Datalog.Analyze.verdict = Datalog.Analyze.Dred);
  let load () =
    let db = Datalog.Database.create () in
    let _ = Datalog.Eval.run ~engine:Datalog.Plan.Compiled db program in
    db
  in
  let dred = load () and auto = load () and par = load () in
  let rounds =
    [
      ([ {|edge("d","e")|} ], [ {|edge("b","c")|} ]);
      ([ {|node("b")|}; {|edge("b","c")|} ], []);
      ([], [ {|edge("a","b")|}; {|node("e")|} ]);
    ]
  in
  List.iter
    (fun (adds, dels) ->
      let additions = List.map atom adds and deletions = List.map atom dels in
      let r0 =
        Datalog.Incremental.apply ~maint:Datalog.Incremental.Dred dred program
          ~additions ~deletions
      in
      let r =
        Datalog.Incremental.apply ~maint:Datalog.Incremental.Auto auto program
          ~additions ~deletions
      in
      let rp =
        Datalog.Incremental.apply_parallel ~maint:Datalog.Incremental.Auto
          ~domains:2 ~serial_threshold:0 par program ~additions ~deletions
      in
      check_bool "auto equals dred" true
        (Datalog.Eval.databases_agree dred auto = Ok ()
        && r.Datalog.Incremental.changes = r0.Datalog.Incremental.changes);
      check_bool "parallel auto equals dred" true
        (Datalog.Eval.databases_agree dred par = Ok ()
        && rp.Datalog.Incremental.changes = r0.Datalog.Incremental.changes))
    rounds

(* ---------- Aggregates ---------- *)

let agg_db src =
  let db = Datalog.Database.create () in
  let _ = Datalog.Eval.run db (parse src) in
  db

let facts db pred =
  match Datalog.Database.find db pred with
  | None -> []
  | Some r ->
    Datalog.Relation.to_list r
    |> List.map (Datalog.Database.tuple_to_atom db pred)
    |> List.sort compare

let agg_eval_basic () =
  let db =
    agg_db
      {|line("o1","a",3). line("o1","b",2). line("o2","a",5).
        total(O, cnt(I), sum(N)) :- line(O, I, N).
        hi(max(N)) :- line(O, I, N).
        lo(min(N)) :- line(O, I, N).|}
  in
  check_int "groups" 2 (cardinal db "total");
  Alcotest.(check string) "o1 totals" {|total("o1", 2, 5)|}
    (Format.asprintf "%a" Datalog.Ast.pp_atom
       (List.hd (facts db "total")));
  Alcotest.(check string) "max" "hi(5)"
    (Format.asprintf "%a" Datalog.Ast.pp_atom (List.hd (facts db "hi")));
  Alcotest.(check string) "min" "lo(2)"
    (Format.asprintf "%a" Datalog.Ast.pp_atom (List.hd (facts db "lo")))

let agg_distinct_semantics () =
  (* two derivations of the same (group, value) binding count once *)
  let db =
    agg_db
      {|e("x","a",1). f("x","a",1).
        both(K,V) :- e(K,A,V). both(K,V) :- f(K,A,V).
        t(K, sum(V), cnt(V)) :- both(K, V).|}
  in
  Alcotest.(check string) "no double count" {|t("x", 1, 1)|}
    (Format.asprintf "%a" Datalog.Ast.pp_atom (List.hd (facts db "t")))

let agg_min_max_on_symbols () =
  let db = agg_db {|name("b"). name("a"). name("c").
                    first(min(X)) :- name(X). last(max(X)) :- name(X).|} in
  Alcotest.(check string) "min sym" {|first("a")|}
    (Format.asprintf "%a" Datalog.Ast.pp_atom (List.hd (facts db "first")));
  Alcotest.(check string) "max sym" {|last("c")|}
    (Format.asprintf "%a" Datalog.Ast.pp_atom (List.hd (facts db "last")))

let agg_sum_rejects_symbols () =
  match agg_db {|v("x"). s(sum(X)) :- v(X).|} with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of sum over symbols"

let agg_stratified_below_use () =
  (* aggregates over an aggregate work across strata *)
  let db =
    agg_db
      {|e("a",1). e("b",2). e("c",3).
        total(X, sum(N)) :- e(X, N).
        grand(sum(T)) :- total(X, T).|}
  in
  Alcotest.(check string) "two-level fold" "grand(6)"
    (Format.asprintf "%a" Datalog.Ast.pp_atom (List.hd (facts db "grand")));
  (* recursion through an aggregate must be rejected *)
  match
    agg_db
      {|e("a",1). t(sum(N)) :- e2(X,N). e2(X,N) :- e(X,N). e2(X,N) :- e(X,N), t(N).|}
  with
  | exception Datalog.Stratify.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected Unstratifiable through aggregate recursion"

let agg_single_rule_enforced () =
  match agg_db {|e("a",1). t(sum(N)) :- e(X,N). t(9).|} with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of multi-rule aggregate"

let agg_body_aggregate_rejected () =
  match parse {|p(X) :- q(sum(X)).|} with
  | exception Datalog.Parser.Error _ -> ()
  | prog -> (
    (* the parser treats body sum(..) as a predicate named sum; ensure
       no aggregate term leaked into the body *)
    match prog with
    | [ r ] ->
      check_bool "parsed as predicate" true
        (List.exists
           (function
             | Datalog.Ast.Pos a -> a.Datalog.Ast.pred = "q"
             | _ -> false)
           r.Datalog.Ast.body)
    | _ -> Alcotest.fail "unexpected parse")

let agg_naive_agrees () =
  let src =
    {|line("o1","a",3). line("o1","b",2). line("o2","a",5). line("o2","b",2).
      total(O, sum(N)) :- line(O, I, N).
      grand(sum(T)) :- total(O, T).|}
  in
  let a = Datalog.Database.create () in
  let _ = Datalog.Eval.run a (parse src) in
  let b = Datalog.Database.create () in
  Datalog.Eval.run_naive b (parse src);
  check_bool "agree" true (Datalog.Eval.databases_agree a b = Ok ())

let agg_incremental_equals_scratch () =
  check_bool "insert+delete" true
    (check_incremental
       {|total(O, cnt(I), sum(N)) :- line(O, I, N).
         grand(sum(T)) :- total(O, C, T).
         busy(O) :- total(O, C, T), C >= 2.|}
       [ {|line("o1","a",3)|}; {|line("o1","b",2)|}; {|line("o2","a",5)|} ]
       [ {|line("o1","c",7)|}; {|line("o3","z",1)|} ]
       [ {|line("o2","a",5)|} ]
    = Ok ())

let agg_naive_qcheck =
  QCheck.Test.make ~name:"aggregates: semi-naive equals naive on random data" ~count:40
    QCheck.(pair (1 -- 4) (0 -- 14))
    (fun (orders, lines) ->
      let rng = Prelude.Rng.create ((orders * 613) + lines) in
      let facts =
        List.init lines (fun _ ->
            Printf.sprintf {|line("o%d","i%d",%d).|} (Prelude.Rng.int rng orders)
              (Prelude.Rng.int rng 5)
              (1 + Prelude.Rng.int rng 9))
        |> String.concat "\n"
      in
      let src =
        facts
        ^ {| total(O, cnt(I), sum(N)) :- line(O, I, N).
             hi(max(N)) :- line(O, I, N).
             grand(sum(T)) :- total(O, C, T). |}
      in
      let a = Datalog.Database.create () in
      let _ = Datalog.Eval.run a (parse src) in
      let b = Datalog.Database.create () in
      Datalog.Eval.run_naive b (parse src);
      Datalog.Eval.databases_agree a b = Ok ())

let agg_incremental_qcheck =
  QCheck.Test.make ~name:"aggregates: incremental equals from-scratch" ~count:40
    QCheck.(triple (1 -- 4) (0 -- 12) (0 -- 4))
    (fun (orders, lines, delta) ->
      let rng = Prelude.Rng.create ((orders * 31) + (lines * 7) + delta) in
      let mk () =
        Printf.sprintf {|line("o%d","i%d",%d)|} (Prelude.Rng.int rng orders)
          (Prelude.Rng.int rng 6)
          (1 + Prelude.Rng.int rng 9)
      in
      let base = List.sort_uniq compare (List.init lines (fun _ -> mk ())) in
      let adds =
        List.sort_uniq compare (List.init delta (fun _ -> mk ()))
        |> List.filter (fun s -> not (List.mem s base))
      in
      let dels = List.filteri (fun i _ -> i < delta) base in
      let rules =
        {|total(O, cnt(I), sum(N)) :- line(O, I, N).
          hi(O, max(N)) :- line(O, I, N).
          grand(sum(T)) :- total(O, C, T).
          busy(O) :- total(O, C, T), C >= 2.|}
      in
      check_incremental rules base adds dels = Ok ())

(* ---------- To_trace ---------- *)

let to_trace_basic () =
  let rules =
    "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).\n\
     big(X) :- path(X, Y), path(Y, X)."
  in
  let db = Datalog.Database.create () in
  List.iter
    (fun s -> ignore (Datalog.Database.add_fact db (atom s)))
    [ "edge(\"a\",\"b\")"; "edge(\"b\",\"a\")" ];
  let _ = Datalog.Eval.run db (parse rules) in
  let tt =
    Datalog.To_trace.of_update db (parse rules)
      ~additions:[ atom "edge(\"b\",\"c\")" ]
      ~deletions:[]
  in
  let trace = tt.Datalog.To_trace.trace in
  let s = Workload.Trace.stats trace in
  check_int "one task per component" 3 s.Workload.Trace.nodes;
  check_int "edge component dirty" 1 s.Workload.Trace.initial_tasks;
  check_bool "trace is schedulable" true
    (let r =
       Simulator.Engine.run
         ~config:{ Simulator.Engine.procs = 2; op_cost = 0.0; record_log = true }
         ~sched:Sched.Level_based.factory trace
     in
     Simulator.Validate.check_run trace r = Ok ());
  check_bool "labels name predicates" true
    (Array.exists (fun l -> l = "path") tt.Datalog.To_trace.labels);
  check_bool "node_of_pred finds path" true
    (Datalog.To_trace.node_of_pred tt "path" <> None)

let to_trace_activation_matches_report () =
  let rules =
    "p(X) :- e(X). q(X) :- p(X). r(X) :- f(X). s(X) :- q(X), r(X)."
  in
  let db = Datalog.Database.create () in
  List.iter
    (fun s -> ignore (Datalog.Database.add_fact db (atom s)))
    [ "e(\"a\")"; "f(\"b\")" ];
  let _ = Datalog.Eval.run db (parse rules) in
  (* update touches only e: the f -> r chain must stay inactive *)
  let tt =
    Datalog.To_trace.of_update db (parse rules)
      ~additions:[ atom "e(\"c\")" ]
      ~deletions:[]
  in
  let trace = tt.Datalog.To_trace.trace in
  let active = Workload.Trace.active_set trace in
  let node name = Option.get (Datalog.To_trace.node_of_pred tt name) in
  check_bool "e active" true (Prelude.Bitset.mem active (node "e"));
  check_bool "p active" true (Prelude.Bitset.mem active (node "p"));
  check_bool "r inactive" false (Prelude.Bitset.mem active (node "r"));
  check_bool "f inactive" false (Prelude.Bitset.mem active (node "f"))

(* ---------- Lint ---------- *)

(* The error cases can't go through the parser (it rejects them with a
   bare "not range-restricted"); building the Ast directly is exactly
   the hole Lint covers. *)
let mk_rule head body = { Datalog.Ast.head; body }

let pos p args = Datalog.Ast.Pos { Datalog.Ast.pred = p; args }

let v x = Datalog.Ast.Var x

let codes ds = List.map (fun d -> d.Datalog.Lint.code) ds

let lint_clean_program () =
  let p = parse "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z)." in
  check_bool "no diagnostics" true (Datalog.Lint.check p = [])

let lint_names_unbound_head_var () =
  let r = mk_rule { Datalog.Ast.pred = "p"; args = [ v "X"; v "Y" ] } [ pos "e" [ v "X" ] ] in
  check_bool "range_restricted agrees" false (Datalog.Ast.range_restricted r);
  match Datalog.Lint.errors (Datalog.Lint.check_rule ~rule_index:0 r) with
  | [ d ] ->
    check_bool "code" true (d.Datalog.Lint.code = "unrestricted-head-variable");
    check_bool "names the variable" true
      (String.length d.Datalog.Lint.message >= 15
      && String.sub d.Datalog.Lint.message 0 15 = "head variable Y");
    check_bool "pred recorded" true (d.Datalog.Lint.pred = "p")
  | ds -> Alcotest.failf "expected exactly one error, got %d" (List.length ds)

let lint_unbound_negation_and_cmp () =
  let r =
    mk_rule
      { Datalog.Ast.pred = "p"; args = [ v "X" ] }
      [
        pos "e" [ v "X" ];
        Datalog.Ast.Neg { Datalog.Ast.pred = "q"; args = [ v "Z" ] };
        Datalog.Ast.Cmp (Datalog.Ast.Lt, v "W", Datalog.Ast.Const (Datalog.Ast.Int 3));
      ]
  in
  check_bool "range_restricted agrees" false (Datalog.Ast.range_restricted r);
  let errs = Datalog.Lint.errors (Datalog.Lint.check_rule ~rule_index:3 r) in
  check_bool "both reported" true
    (List.sort compare (codes errs)
    = [ "unbound-comparison-variable"; "unbound-negated-variable" ]);
  check_bool "rule index kept" true
    (List.for_all (fun d -> d.Datalog.Lint.rule_index = 3) errs)

let lint_body_aggregate () =
  let r =
    mk_rule
      { Datalog.Ast.pred = "p"; args = [ v "X" ] }
      [ pos "e" [ v "X"; Datalog.Ast.Agg (Datalog.Ast.Count, "X") ] ]
  in
  check_bool "range_restricted agrees" false (Datalog.Ast.range_restricted r);
  check_bool "reported" true
    (codes (Datalog.Lint.errors (Datalog.Lint.check_rule ~rule_index:0 r))
    = [ "body-aggregate" ])

let lint_singleton_warning () =
  let p = parse "odd(X) :- edge(X, Unused). fine(X) :- edge(X, _Ignored)." in
  let ds = Datalog.Lint.check p in
  check_bool "no errors" true (Datalog.Lint.errors ds = []);
  match List.filter (fun d -> d.Datalog.Lint.code = "singleton-variable") ds with
  | [ d ] ->
    check_bool "on first rule only" true (d.Datalog.Lint.rule_index = 0);
    check_bool "severity" true (d.Datalog.Lint.severity = Datalog.Lint.Warning)
  | l -> Alcotest.failf "expected exactly one singleton warning, got %d" (List.length l)

let lint_duplicate_rule () =
  (* rules 1 and 2 are alpha-equivalent; rule 3 permutes the body, which
     is a different syntactic rule and must not be flagged *)
  let p =
    parse
      "path(X,Z) :- edge(X,Y), edge(Y,Z). path(A,C) :- edge(A,B), edge(B,C). \
       path(X,Z) :- edge(Y,Z), edge(X,Y). path(X,Y) :- edge(X,Y). q(X) :- \
       path(X,X)."
  in
  match List.filter (fun d -> d.Datalog.Lint.code = "duplicate-rule") (Datalog.Lint.check p) with
  | [ d ] ->
    check_bool "flagged on the later rule" true (d.Datalog.Lint.rule_index = 1);
    check_bool "warning, not error" true (d.Datalog.Lint.severity = Datalog.Lint.Warning);
    check_bool "names the earlier rule" true
      (d.Datalog.Lint.message = "rule duplicates rule 0 up to variable renaming; it adds no derivations")
  | l -> Alcotest.failf "expected exactly one duplicate warning, got %d" (List.length l)

let lint_unused_idb () =
  (* path feeds q, q feeds nothing: only q is flagged, once, at its
     first defining rule; extensional edge is never flagged *)
  let p =
    parse
      "edge(\"a\",\"b\"). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), \
       edge(Y,Z). q(X) :- path(X,X). q(X) :- edge(X,X)."
  in
  match
    List.filter (fun d -> d.Datalog.Lint.code = "unused-idb-predicate") (Datalog.Lint.check p)
  with
  | [ d ] ->
    check_bool "flags q" true (d.Datalog.Lint.pred = "q");
    check_bool "at its first rule" true (d.Datalog.Lint.rule_index = 3);
    check_bool "warning" true (d.Datalog.Lint.severity = Datalog.Lint.Warning)
  | l -> Alcotest.failf "expected exactly one unused-idb warning, got %d" (List.length l)

let lint_agrees_with_range_restricted () =
  (* on a grab-bag of rules, errors = [] iff Ast.range_restricted *)
  let cases =
    [
      mk_rule { Datalog.Ast.pred = "p"; args = [ v "X" ] } [ pos "e" [ v "X" ] ];
      mk_rule { Datalog.Ast.pred = "p"; args = [ v "X" ] } [];
      mk_rule { Datalog.Ast.pred = "p"; args = [] } [];
      mk_rule
        { Datalog.Ast.pred = "p"; args = [ Datalog.Ast.Agg (Datalog.Ast.Sum, "X") ] }
        [ pos "e" [ v "X" ] ];
      mk_rule
        { Datalog.Ast.pred = "p"; args = [ Datalog.Ast.Agg (Datalog.Ast.Sum, "X") ] }
        [ pos "e" [ v "Y" ] ];
      mk_rule { Datalog.Ast.pred = "p"; args = [ v "X" ] }
        [ pos "e" [ v "X" ]; Datalog.Ast.Neg { Datalog.Ast.pred = "q"; args = [ v "X" ] } ];
    ]
  in
  List.iteri
    (fun i r ->
      check_bool
        (Printf.sprintf "case %d" i)
        (Datalog.Ast.range_restricted r)
        (Datalog.Lint.errors (Datalog.Lint.check_rule ~rule_index:i r) = []))
    cases

let lint_gates_eval () =
  let bad =
    [ mk_rule { Datalog.Ast.pred = "p"; args = [ v "X"; v "Y" ] } [ pos "e" [ v "X" ] ] ]
  in
  let db = Datalog.Database.create () in
  (match Datalog.Eval.run ~lint:true db bad with
  | _ -> Alcotest.fail "lint should have rejected the program"
  | exception Datalog.Lint.Failed [ d ] ->
    check_bool "code" true (d.Datalog.Lint.code = "unrestricted-head-variable")
  | exception Datalog.Lint.Failed ds ->
    Alcotest.failf "expected one error, got %d" (List.length ds));
  (* the same program without lint is the historical behaviour *)
  let db2 = Datalog.Database.create () in
  let good = parse "p(X) :- e(X). e(\"a\")." in
  let _ = Datalog.Eval.run ~lint:true db2 good in
  check_int "lint passes clean programs through" 1 (cardinal db2 "p")

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "datalog"
    [
      ( "lexer",
        [
          test `Quick "token stream" lexer_tokens;
          test `Quick "comments and escapes" lexer_comments_and_escapes;
          test `Quick "negative integers" lexer_negative_int;
          test `Quick "errors carry positions" lexer_errors;
        ] );
      ( "parser",
        [
          test `Quick "facts and rules" parser_fact_and_rule;
          test `Quick "negation and comparisons" parser_negation_and_cmp;
          test `Quick "zero-arity predicates" parser_zero_arity;
          test `Quick "range restriction enforced" parser_range_restriction;
          test `Quick "errors carry positions" parser_errors_have_positions;
          test `Quick "single atoms" parser_atom_roundtrip;
          test `Quick "printing parses back" ast_printing_parses_back;
        ] );
      ( "storage",
        [
          test `Quick "symbol interning" symbol_interning;
          test `Quick "relation ops and indexes" relation_ops;
          test `Quick "tuple hash preserves set semantics" relation_hash_semantics;
          test `Quick "database arity clash" database_arity_clash;
          test `Quick "database facts" database_facts;
        ]
        @ qsuite [ relation_qcheck ] );
      ( "stratify",
        [
          test `Quick "strata ordering" strat_simple;
          test `Quick "recursion shares a stratum" strat_recursive_same_stratum;
          test `Quick "mutual negation rejected" strat_unstratifiable;
          test `Quick "negative self loop rejected" strat_negative_self;
          test `Quick "scc order is topological" strat_scc_order_topological;
        ] );
      ( "lint",
        [
          test `Quick "clean program" lint_clean_program;
          test `Quick "unbound head variable named" lint_names_unbound_head_var;
          test `Quick "unbound negation and comparison" lint_unbound_negation_and_cmp;
          test `Quick "body aggregate rejected" lint_body_aggregate;
          test `Quick "singleton variable warning" lint_singleton_warning;
          test `Quick "duplicate rule warning" lint_duplicate_rule;
          test `Quick "unused IDB predicate warning" lint_unused_idb;
          test `Quick "errors iff not range-restricted" lint_agrees_with_range_restricted;
          test `Quick "eval ~lint gate" lint_gates_eval;
        ] );
      ( "eval",
        [
          test `Quick "transitive closure" eval_tc_known;
          test `Quick "cycles terminate" eval_cycle_terminates;
          test `Quick "stratified negation" eval_negation;
          test `Quick "comparisons" eval_comparisons;
          test `Quick "same generation" eval_same_generation;
        ]
        @ qsuite [ eval_seminaive_equals_naive ] );
      ( "incremental",
        [
          test `Quick "TC insertion" incr_tc_insert;
          test `Quick "TC deletion" incr_tc_delete;
          test `Quick "rederivation keeps supported facts" incr_rederivation;
          test `Quick "addition under negation deletes" incr_negation_addition_removes;
          test `Quick "deletion under negation adds" incr_negation_deletion_adds;
          test `Quick "intensional updates rejected" incr_rejects_intensional;
          test `Quick "report lists net changes" incremental_report_changes;
          test `Quick "no-op update changes nothing" incremental_noop_update;
        ]
        @ qsuite [ incremental_equals_scratch_qcheck ] );
      ( "fuzz",
        qsuite [ fuzz_seminaive_vs_naive; fuzz_incremental_vs_scratch ] );
      ( "plan",
        [
          test `Quick "iter_matching and fold_matching" relation_iter_matching;
          test `Quick "mutation during iteration trips" relation_mutation_tripwire;
          test `Quick "reentrant plan execution rejected" plan_reentrant_run_rejected;
          test `Quick "recursive self-join on a cycle" eval_recursive_self_join_on_cycle;
          test `Quick "incremental self-join on a cycle"
            incr_recursive_self_join_on_cycle;
          test `Quick "compiled plan matches interpreter" plan_matches_interpreter;
        ]
        @ qsuite [ engine_differential_qcheck ] );
      ( "parallel-maintenance",
        [ test `Quick "interpreted engine rejected" parallel_rejects_interpreter ]
        @ qsuite [ parallel_differential_qcheck ] );
      ( "sharded-maintenance",
        [
          test `Quick "sharded relation routing and merge" sharded_relation_units;
          test `Quick "merge order deterministic across runs"
            sharded_merge_deterministic;
          test `Quick "small updates fall back to the serial walk"
            sharded_fallback_serial;
        ]
        @ qsuite [ sharded_differential_qcheck ] );
      ( "analyze",
        [
          test `Quick "TC effect sets and advice" analyze_tc_effects;
          test `Quick "same generation" analyze_same_generation;
          test `Quick "negation read via Reject" analyze_negation_effects;
          test `Quick "aggregates fall back to the AST" analyze_aggregate_effects;
          test `Quick "nonlinear and weak-exit advised dred"
            analyze_nonlinear_and_weak_exit;
          test `Quick "ownership rule checked" analyze_check_ownership;
        ] );
      ( "sanitizer",
        [
          test `Quick "violations caught with names" sanitizer_catches_violation;
          test `Quick "inert on safe runs, tags cleaned up"
            sanitizer_inert_and_cleans_up;
        ] );
      ( "auto-maintenance",
        [ test `Quick "auto equals dred on a mixed program" auto_differential ] );
      ( "counting-maintenance",
        [
          test `Quick "diamond derivation counts" counting_diamond_counts;
          test `Quick "unfounded cycle removed" counting_unfounded_cycle;
          test `Quick "stale counts rebuilt after DRed interleaving"
            counting_survives_dred_interleaving;
          test `Quick "unsupported configurations rejected"
            counting_rejects_unsupported;
        ]
        @ qsuite
            [
              counting_differential_qcheck;
              counting_counts_invariant_qcheck;
              counting_level_index_qcheck;
              counting_sharded_differential_qcheck;
            ] );
      ( "aggregates",
        [
          test `Quick "count, sum, min, max" agg_eval_basic;
          test `Quick "distinct-binding semantics" agg_distinct_semantics;
          test `Quick "min/max over symbols" agg_min_max_on_symbols;
          test `Quick "sum over symbols rejected" agg_sum_rejects_symbols;
          test `Quick "stratified, recursion rejected" agg_stratified_below_use;
          test `Quick "single defining rule enforced" agg_single_rule_enforced;
          test `Quick "no aggregate terms in bodies" agg_body_aggregate_rejected;
          test `Quick "naive agrees" agg_naive_agrees;
          test `Quick "incremental equals from-scratch" agg_incremental_equals_scratch;
        ]
        @ qsuite [ agg_naive_qcheck; agg_incremental_qcheck ] );
      ( "to-trace",
        [
          test `Quick "condensed DAG trace" to_trace_basic;
          test `Quick "activation matches dependency cone"
            to_trace_activation_matches_report;
        ] );
    ]
