(** Monotonic clock.

    [now ()] is CLOCK_MONOTONIC in seconds as a float: strictly
    non-decreasing, unaffected by NTP slews or wall-clock changes.
    Differences of two readings are meaningful; the absolute value is
    not (the epoch is arbitrary, typically boot time). Used by the
    multicore executor for timestamps and calibrated busy-waiting,
    where [Unix.gettimeofday] would both distort under clock
    adjustment and cost a timeval conversion per call. *)

external now : unit -> (float[@unboxed])
  = "prelude_mclock_now" "prelude_mclock_now_unboxed"
[@@noalloc]
(** Exported as an [external] so cross-module callers use the unboxed
    native convention; a [val] here would route every call through the
    boxing wrapper — one minor allocation per reading. *)
