lib/sched/clairvoyant.ml: Array Dag Intf Prelude Queue
