(** Reimplementation of the production LogicBlox scheduler
    (paper, Sections II-C and VI-B).

    Precomputation: an interval-list encoding of every node's ancestor
    set, built over the transposed DAG (worst-case O(V^2) space).

    Runtime: a ready queue plus a queue of active tasks. Whenever the
    ready queue runs dry, the scheduler scans the active queue; a task
    is safe when none of its ancestor intervals intersects the set of
    currently active (unexecuted or running) nodes, maintained as a
    bitset over interval positions. Worst case O(n^3) over a run: n
    scans x n tasks x O(n) interval probes (Section II-C). *)

val make :
  ?ops:Intf.ops ->
  ?scan_batch:int ->
  ?ilist:Dag.Interval_list.t ->
  Dag.Graph.t ->
  Intf.instance
(** [ilist] supplies a prebuilt ancestor encoding (must be built on the
    transpose of the same graph; see {!Prepared}).

    [scan_batch] bounds how many active-queue entries one scan pass
    examines while tasks are running (a resumable cursor spreads the
    queue across passes; with nothing running the scan is always
    exhaustive, so liveness is unaffected). The default is unbounded —
    the faithful production baseline whose every pass rescans the whole
    queue. The hybrid scheduler uses a small batch, which is the
    "modify it to avoid unnecessary work" refinement the authors
    report LogicBlox adopted after the 100x anecdote (Section VI).
    @raise Invalid_argument if [scan_batch < 1]. *)

val factory : Intf.factory

val precomputed_memory_words : Dag.Graph.t -> int
(** Size of the interval-list structure alone, for memory-budget
    experiments (Theorem 10). *)
