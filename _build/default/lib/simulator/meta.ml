type result = {
  winner : string;
  a_aborted : bool;
  makespan : float;
  a_metrics : Metrics.t option;
  lb_metrics : Metrics.t;
  memory_words : int;
  budget_words : int;
}

let run ?(config = Engine.default_config) ~budget_words ~a trace =
  let probe = a.Sched.Intf.make trace.Workload.Trace.graph in
  let a_memory = probe.Sched.Intf.memory_words () in
  if 2 * a_memory > budget_words then begin
    (* drop A, LevelBased takes all processors (Theorem 10, overflow arm) *)
    let r = Engine.run ~config ~sched:Sched.Level_based.factory trace in
    {
      winner = r.Engine.metrics.Metrics.scheduler;
      a_aborted = true;
      makespan = r.Engine.metrics.Metrics.makespan;
      a_metrics = None;
      lb_metrics = r.Engine.metrics;
      memory_words = r.Engine.metrics.Metrics.memory_words;
      budget_words;
    }
  end
  else begin
    let half = { config with Engine.procs = max 1 (config.Engine.procs / 2) } in
    let ra = Engine.run ~config:half ~sched:a trace in
    let rb = Engine.run ~config:half ~sched:Sched.Level_based.factory trace in
    let ma = ra.Engine.metrics and mb = rb.Engine.metrics in
    let winner, makespan =
      if ma.Metrics.makespan <= mb.Metrics.makespan then
        (ma.Metrics.scheduler, ma.Metrics.makespan)
      else (mb.Metrics.scheduler, mb.Metrics.makespan)
    in
    {
      winner;
      a_aborted = false;
      makespan;
      a_metrics = Some ma;
      lb_metrics = mb;
      memory_words = ma.Metrics.memory_words + mb.Metrics.memory_words;
      budget_words;
    }
  end

let pp_result ppf r =
  Format.fprintf ppf
    "meta: winner=%s makespan=%.6f aborted_a=%b memory=%d/%d words" r.winner
    r.makespan r.a_aborted r.memory_words r.budget_words
