(** The seed's big-lock executor, retained as a benchmark baseline.

    Serializes [next_ready], status transitions, activation
    propagation and log appends through one global mutex, and wakes
    every waiting worker with [Condition.broadcast] on each
    completion. Protocol and result are identical to {!Executor}.
    Scheduler op counters are attributed per worker with the same
    snapshot/credit scheme as {!Sched.Protected} (initial activations
    credited to worker 0); [steals] is 0 structurally — there are no
    worker-local buffers to steal from, which trace summaries should
    read as "no stealing exists here", not "stealing was free. "
    Exists so [bench/main.exe -- dispatch] can measure the
    coordination cost the sharded executor removes; new code should
    use {!Executor.run}. *)

val run :
  ?domains:int ->
  ?work_unit:float ->
  ?obs:Obs.Trace.t ->
  sched:Sched.Intf.factory ->
  Workload.Trace.t ->
  Executor.result
(** [obs] (default disabled) records task spans, big-lock scheduler
    sections (refill = [next_ready]+[on_started], complete =
    activations+[on_completed]; the span's wait field is 0 because the
    big lock is held across the whole dispatch loop) and
    condition-wait park spans into the per-worker rings. *)
