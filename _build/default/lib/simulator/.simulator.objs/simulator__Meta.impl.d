lib/simulator/meta.ml: Engine Format Metrics Sched Workload
