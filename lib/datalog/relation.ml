type tuple = int array

module Tuple_tbl = Hashtbl.Make (struct
  type t = tuple

  (* Monomorphic element-wise comparison: polymorphic [=] on arrays
     walks the generic structural-equality runtime path per tuple
     probe. *)
  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec eq i = i = n || (Array.unsafe_get a i = Array.unsafe_get b i && eq (i + 1)) in
    eq 0

  (* FNV-1a over the int elements directly. The previous
     [Hashtbl.hash (Array.to_list a)] allocated a list per lookup and
     hashed through the generic serializer; this is a tight loop with
     no allocation. Fold each element in as its own FNV byte-block
     (multiply-xor per element, not per byte — int elements here are
     small term/constant ids, one mixing round each is plenty), then
     mask to the non-negative range Hashtbl expects. *)
  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193
    done;
    !h land max_int
end)

(* ---- derivation-count side table (counting maintenance) ----

   Per-tuple derivation counts for {!Incremental}'s counting engine,
   kept in a side table next to the tuple store rather than inside it:
   the non-counting hot path ([add]/[remove]/[mem]/probes) never reads
   or writes the field, so the DRed engine pays nothing for its
   existence. Counts are split into [exits] (derivations by rules with
   no same-component body atom — acyclic support by construction) and
   [recs] (derivations by recursive rules); the backward phase uses the
   split to skip tuples that are exit-supported.

   [level] and [low] form the well-founded support index. [level] is
   the stratified-fixpoint round of the tuple's first well-founded
   derivation (Soufflé's @iteration): 0 for exit-supported tuples,
   [r] for tuples first leveled in recursive round [r], [max_int] for
   "unknown". Levels are immutable once assigned — lowering a level
   retroactively changes how later derivation deaths classify against
   it, which can leave [low] overcounting (unsound). [low] counts the
   surviving recursive derivations whose supporter is known to sit at
   a strictly lower level; it may undercount (unknown supporters are
   never counted) but must never overcount, because [exits = 0 &&
   low > 0] exempts a suspect from the full backward probe.

   [synced_version] records the relation version the counts were last
   consistent with: any mutation outside the counting engine bumps the
   version, so stale counts are detected and rebuilt instead of
   silently trusted. The cells are partitioned into [nshards] tables
   by the same FNV hash on key column 0 that [Sharded] uses for
   tuples, so sharded counting rounds can route cell traffic without
   cross-shard contention; with [nshards = 1] the routing is a
   constant 0. *)

type count_cell = {
  mutable exits : int;
  mutable recs : int;
  mutable level : int;
  mutable low : int;
  mutable debt : int;
      (* backward-phase scratch: [low] entries condemned this call.
         Zero between calls — the phase unwinds what it filed. Living
         in the cell keeps the O(1) well-foundedness check free of
         side-table hashing. *)
}

type counts = {
  nshards : int;
  cells : count_cell Tuple_tbl.t array;
  mutable synced_version : int;
}

(* ---- write-set sanitizer ----------------------------------------

   Debug-mode enforcement of the ownership discipline the static
   analysis ({!Analyze}) verifies on plans: when maintenance runs with
   the sanitizer on, every relation a component owns is tagged with
   that component's owner string, each maintenance task executes inside
   a [with_writer] scope carrying its own tag, and every mutation
   checks tag against scope. The current writer lives in domain-local
   storage so the check works unchanged under parallel maintenance.
   With no tag set (the default), the cost is one field read per
   mutation. *)

exception Sanitize_violation of string

let sanitize_writer_key : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

type t = {
  arity : int;
  tuples : unit Tuple_tbl.t;
  mutable owner : (string * string) option;
      (* (relation name, owner tag): mutations outside a matching
         [Sanitize.with_writer] scope raise [Sanitize_violation] *)
  mutable counts : counts option;
  indexes : (int, unit Tuple_tbl.t) Hashtbl.t option Atomic.t array;
      (* indexes.(col), built lazily; kept consistent once built. Each
         slot is an [Atomic.t] so a lazy build on a relation shared
         read-only across domains publishes a *fully constructed*
         index: plain-field publication could be observed partially
         initialized under the OCaml memory model. Concurrent probers
         may race to build the same column; the loser's table is
         simply dropped (both are complete, last [Atomic.set] wins).
         Mutation ([add]/[remove]/[clear]) remains single-owner, as
         everywhere in this module. *)
  mutable version : int;
      (* bumped by every successful add/remove and by clear. Iteration
         walks live hashtable buckets, and OCaml Hashtbl mutation during
         iteration is unspecified (a resize relinks bucket cells, so a
         walk can silently skip pre-existing tuples); the guards below
         compare against this counter to fail fast instead. *)
}

let create ~arity =
  if arity < 0 then invalid_arg "Relation.create: negative arity";
  {
    arity;
    tuples = Tuple_tbl.create 64;
    owner = None;
    counts = None;
    indexes = Array.init (max arity 1) (fun _ -> Atomic.make None);
    version = 0;
  }

let arity t = t.arity

let cardinality t = Tuple_tbl.length t.tuples

let check t tup =
  if Array.length tup <> t.arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple arity %d, expected %d" (Array.length tup) t.arity)

let mem t tup =
  check t tup;
  Tuple_tbl.mem t.tuples tup

(* Every mutation entry point calls this first. Attempted writes count
   even when they would be no-ops (a duplicate [add], an absent
   [remove]): a task reaching for a relation it does not own is an
   ownership bug regardless of whether the store happened to change. *)
let sanitize_check t =
  match t.owner with
  | None -> ()
  | Some (rel_name, owner) -> (
    match Domain.DLS.get sanitize_writer_key with
    | Some w when String.equal w owner -> ()
    | Some w ->
      raise
        (Sanitize_violation
           (Printf.sprintf "relation %s is owned by %s but was mutated by %s"
              rel_name owner w))
    | None ->
      raise
        (Sanitize_violation
           (Printf.sprintf
              "relation %s is owned by %s but was mutated outside any writer scope"
              rel_name owner)))

let bucket_of idx value =
  match Hashtbl.find_opt idx value with
  | Some b -> b
  | None ->
    let b = Tuple_tbl.create 8 in
    Hashtbl.add idx value b;
    b

let index_add t tup =
  Array.iteri
    (fun col slot ->
      match Atomic.get slot with
      | None -> ()
      | Some idx -> Tuple_tbl.replace (bucket_of idx tup.(col)) tup ())
    t.indexes

let index_remove t tup =
  Array.iteri
    (fun col slot ->
      match Atomic.get slot with
      | None -> ()
      | Some idx -> (
        match Hashtbl.find_opt idx tup.(col) with
        | Some b -> Tuple_tbl.remove b tup
        | None -> ()))
    t.indexes

let add t tup =
  check t tup;
  sanitize_check t;
  if Tuple_tbl.mem t.tuples tup then false
  else begin
    let tup = Array.copy tup in
    t.version <- t.version + 1;
    Tuple_tbl.replace t.tuples tup ();
    index_add t tup;
    true
  end

let remove t tup =
  check t tup;
  sanitize_check t;
  if Tuple_tbl.mem t.tuples tup then begin
    t.version <- t.version + 1;
    Tuple_tbl.remove t.tuples tup;
    index_remove t tup;
    true
  end
  else false

(* Best-effort fail-fast check, evaluated before handing out each tuple:
   catches a callback that mutated the relation on any tuple but the
   last one of a walk. *)
let guard t v0 =
  if t.version <> v0 then
    invalid_arg
      "Relation: mutation during iteration (defer updates until the walk finishes)"

let iter f t =
  let v0 = t.version in
  Tuple_tbl.iter
    (fun tup () ->
      guard t v0;
      f tup)
    t.tuples

let fold f acc t =
  let v0 = t.version in
  Tuple_tbl.fold
    (fun tup () acc ->
      guard t v0;
      f acc tup)
    t.tuples acc

let to_list t = fold (fun acc tup -> tup :: acc) [] t

let copy t =
  let fresh = create ~arity:t.arity in
  iter (fun tup -> ignore (add fresh tup)) t;
  fresh

let clear t =
  sanitize_check t;
  t.version <- t.version + 1;
  Tuple_tbl.reset t.tuples;
  t.counts <- None;
  Array.iter (fun slot -> Atomic.set slot None) t.indexes

(* ---- sharding ----------------------------------------------------

   Shard assignment reuses the FNV-1a mixing step of [Tuple_tbl.hash]
   on a single key column, so the partition is a pure function of the
   tuple — identical on every domain and every run, which is what
   per-shard ownership and deterministic merge rest on. *)

let shard_of_value ~shards v =
  if shards <= 1 then 0
  else ((0x811c9dc5 lxor v) * 0x01000193 land max_int) mod shards

let shard_of_tuple ~col ~shards (tup : tuple) =
  if shards <= 1 || Array.length tup = 0 then 0
  else
    let col = if col < Array.length tup then col else 0 in
    shard_of_value ~shards tup.(col)

(* ---- count operations --------------------------------------------

   All mutation of counts is single-owner, like the store itself. The
   cells tables are keyed by copies of the tuples (a caller's scratch
   array must not alias a key), mirroring [add]. Routing between the
   shard tables is [shard_of_tuple ~col:0], the same pure hash the
   [Sharded] tuple stores use; iteration walks shards 0..k-1 so the
   order is canonical regardless of how cells were inserted. *)

let counts_create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Relation.counts_create: shards < 1";
  {
    nshards = shards;
    cells = Array.init shards (fun _ -> Tuple_tbl.create 64);
    synced_version = min_int;
  }

let counts_attach ?shards t =
  let c = counts_create ?shards () in
  t.counts <- Some c;
  c

let counts_detach t = t.counts <- None

let counts_synced t =
  match t.counts with
  | Some c when c.synced_version = t.version -> Some c
  | Some _ | None -> None

let counts_sync t =
  match t.counts with
  | Some c -> c.synced_version <- t.version
  | None -> ()

let counts_shards c = c.nshards

let count_shard c tup = shard_of_tuple ~col:0 ~shards:c.nshards tup

let count_find c tup = Tuple_tbl.find_opt c.cells.(count_shard c tup) tup

let count_cell c tup =
  let cells = c.cells.(count_shard c tup) in
  match Tuple_tbl.find_opt cells tup with
  | Some cell -> cell
  | None ->
    let cell = { exits = 0; recs = 0; level = max_int; low = 0; debt = 0 } in
    Tuple_tbl.replace cells (Array.copy tup) cell;
    cell

let count_total cell = cell.exits + cell.recs

let count_drop c tup = Tuple_tbl.remove c.cells.(count_shard c tup) tup

let counts_iter f c = Array.iter (fun cells -> Tuple_tbl.iter f cells) c.cells

let counts_cardinality c =
  Array.fold_left (fun acc cells -> acc + Tuple_tbl.length cells) 0 c.cells

(* Build fully, publish atomically: a sibling domain either sees [None]
   (and builds its own complete copy) or a finished index — never a
   hashtable under construction. *)
let build_index t col =
  let idx = Hashtbl.create 64 in
  iter (fun tup -> Tuple_tbl.replace (bucket_of idx tup.(col)) tup ()) t;
  Atomic.set t.indexes.(col) (Some idx);
  idx

(* The probe hot path: hand matching tuples to [f] straight out of the
   index bucket, no intermediate list. *)
let iter_matching t ~col ~value f =
  if col < 0 || col >= t.arity then invalid_arg "Relation.iter_matching: bad column";
  let idx =
    match Atomic.get t.indexes.(col) with Some idx -> idx | None -> build_index t col
  in
  match Hashtbl.find_opt idx value with
  | None -> ()
  | Some b ->
    let v0 = t.version in
    Tuple_tbl.iter
      (fun tup () ->
        guard t v0;
        f tup)
      b

let fold_matching t ~col ~value f acc =
  if col < 0 || col >= t.arity then invalid_arg "Relation.fold_matching: bad column";
  let idx =
    match Atomic.get t.indexes.(col) with Some idx -> idx | None -> build_index t col
  in
  match Hashtbl.find_opt idx value with
  | None -> acc
  | Some b ->
    let v0 = t.version in
    Tuple_tbl.fold
      (fun tup () acc ->
        guard t v0;
        f acc tup)
      b acc

let find t ~col ~value = fold_matching t ~col ~value (fun acc tup -> tup :: acc) []

let prepare ?cols t =
  let build col =
    if col < 0 || col >= t.arity then invalid_arg "Relation.prepare: bad column";
    match Atomic.get t.indexes.(col) with
    | Some _ -> ()
    | None -> ignore (build_index t col)
  in
  match cols with
  | Some cols -> List.iter build cols
  | None ->
    for col = 0 to t.arity - 1 do
      build col
    done

let choose_probe_col t ~bound =
  let rec go col = if col >= t.arity then None else if bound col then Some col else go (col + 1) in
  go 0

type relation = t

let base_create = create
let base_add = add
let base_mem = mem
let base_iter = iter
let base_cardinality = cardinality

module Sharded = struct
  (* A relation partitioned into [shards] sub-stores by FNV hash of
     the key column. Used for the per-shard round-delta buffers of
     sharded maintenance: shard task [s] reads and writes only
     [shard t s], and the coordinator merges shards in index order
     0..k-1 — canonical, hence run-to-run deterministic. *)
  type t = { col : int; nshards : int; subs : relation array }

  let create ~arity ~shards =
    if shards < 1 then invalid_arg "Relation.Sharded.create: shards < 1";
    {
      col = 0;
      nshards = shards;
      subs = Array.init shards (fun _ -> base_create ~arity);
    }

  let shards (t : t) = t.nshards

  let shard (t : t) s =
    if s < 0 || s >= t.nshards then invalid_arg "Relation.Sharded.shard: bad index";
    t.subs.(s)

  let owner t tup = shard_of_tuple ~col:t.col ~shards:t.nshards tup

  let add t tup = base_add t.subs.(owner t tup) tup

  let mem t tup = base_mem t.subs.(owner t tup) tup

  let cardinality t =
    Array.fold_left (fun acc r -> acc + base_cardinality r) 0 t.subs

  (* canonical iteration order: shard 0..k-1 *)
  let iter f t = Array.iter (fun r -> base_iter f r) t.subs

  let merge_into t dst =
    let fresh = ref 0 in
    iter (fun tup -> if base_add dst tup then incr fresh) t;
    !fresh
end

module Sanitize = struct
  exception Violation = Sanitize_violation

  let set_owner t ~name ~owner = t.owner <- Some (name, owner)

  let clear_owner t = t.owner <- None

  let owner t = Option.map snd t.owner

  let writer () = Domain.DLS.get sanitize_writer_key

  let with_writer tag f =
    let prev = Domain.DLS.get sanitize_writer_key in
    Domain.DLS.set sanitize_writer_key (Some tag);
    Fun.protect ~finally:(fun () -> Domain.DLS.set sanitize_writer_key prev) f
end

let () =
  Printexc.register_printer (function
    | Sanitize_violation msg -> Some ("ownership sanitizer: " ^ msg)
    | _ -> None)
