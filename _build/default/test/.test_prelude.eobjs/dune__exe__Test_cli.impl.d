test/test_cli.ml: Alcotest Buffer Filename List String Sys Unix
