(* Constant interning, shared by every relation of a database.

   The symbol table is the one Datalog-side structure that parallel
   maintenance cannot partition by component: aggregate recomputation
   mints data-dependent constants (group counts, sums) at task run
   time, so [intern] must be callable from any worker domain. The
   store is therefore split by access pattern:

   - writes ([intern]) serialize on a mutex — they are rare at
     maintenance time (a handful of aggregate results per update;
     everything else was interned during parsing or plan compilation);
   - reads ([const_of], [compare_codes], [count]) are lock-free over
     an atomically published snapshot. The consts array is only ever
     replaced wholesale (grow-by-copy, then [Atomic.set]), and a code
     is handed out only after its slot is written, the array holding
     it published, and finally [count] bumped. A reader that validates
     [code < count] is thereby guaranteed to reach the slot: the SC
     load of [count] orders its subsequent load of [consts] after the
     writer's publication, and every later snapshot is a superset.
     This matters on the hot path — [compare_codes] backs every
     comparison filter in compiled plans. *)

type t = {
  lock : Mutex.t;
  codes : (Ast.const, int) Hashtbl.t;  (* guarded by [lock] *)
  consts : Ast.const array Atomic.t;  (* slots below [count] are frozen *)
  count : int Atomic.t;
}

let dummy = Ast.Int 0

let create () =
  {
    lock = Mutex.create ();
    codes = Hashtbl.create 64;
    consts = Atomic.make (Array.make 64 dummy);
    count = Atomic.make 0;
  }

let intern t c =
  Mutex.lock t.lock;
  let code =
    match Hashtbl.find_opt t.codes c with
    | Some code -> code
    | None ->
      let code = Atomic.get t.count in
      let arr = Atomic.get t.consts in
      let arr =
        if code < Array.length arr then arr
        else begin
          let bigger = Array.make (2 * Array.length arr) dummy in
          Array.blit arr 0 bigger 0 code;
          bigger
        end
      in
      (* publication order: slot, then (if grown) the array, then the
         count — a reader gated on [count] can always reach the slot *)
      arr.(code) <- c;
      if arr != Atomic.get t.consts then Atomic.set t.consts arr;
      Atomic.set t.count (code + 1);
      Hashtbl.add t.codes c code;
      code
  in
  Mutex.unlock t.lock;
  code

let const_of t code =
  if code < 0 || code >= Atomic.get t.count then
    invalid_arg (Printf.sprintf "Symbol.const_of: unknown code %d" code);
  (Atomic.get t.consts).(code)

let count t = Atomic.get t.count

let compare_codes t a b = Ast.compare_const (const_of t a) (const_of t b)
