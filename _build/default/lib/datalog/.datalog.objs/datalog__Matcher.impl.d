lib/datalog/matcher.ml: Array Ast Database List Printf Relation Symbol
