lib/datalog/lexer.mli: Ast Format
