lib/prelude/bitset.mli:
