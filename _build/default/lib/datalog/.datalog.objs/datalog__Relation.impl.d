lib/datalog/relation.ml: Array Hashtbl Printf
