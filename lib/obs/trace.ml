type t = { rings : Ring.t array; epoch : float; enabled : bool }

let disabled = { rings = [||]; epoch = 0.0; enabled = false }

let create ?capacity ~domains () =
  if domains < 1 then invalid_arg "Trace.create: need at least one domain";
  let epoch = Prelude.Mclock.now () in
  {
    rings = Array.init domains (fun _ -> Ring.create ?capacity ~epoch ());
    epoch;
    enabled = true;
  }

let enabled t = t.enabled

let epoch t = t.epoch

let domains t = Array.length t.rings

let ring t wid =
  if wid >= 0 && wid < Array.length t.rings then t.rings.(wid) else Ring.null

let written t = Array.fold_left (fun acc r -> acc + Ring.written r) 0 t.rings

let dropped t = Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings
