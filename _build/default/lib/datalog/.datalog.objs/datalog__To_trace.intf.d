lib/datalog/to_trace.mli: Ast Database Incremental Workload
