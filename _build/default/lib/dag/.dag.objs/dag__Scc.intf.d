lib/dag/scc.mli: Graph
