lib/workload/trace_io.ml: Array Dag Filename Fun List Option Prelude Printf String Trace
