(** Real multicore execution of a trace (OCaml 5 domains).

    Where {!Simulator.Engine} charges virtual time, this executor runs
    the schedule for real: one domain per simulated processor, task
    durations realized as calibrated busy-work, and the online scheduler
    consulted under a global dispatch lock — the concrete form of the
    engine's "scheduler thread holding the dispatch lock" cost model,
    and of the paper's interleaved hybrid (Section V).

    The protocol is identical to the simulator's: a worker that goes
    idle asks [next_ready] under the lock; completions deliver
    activations to the scheduler (children on changed edges) before
    [on_completed]; every task runs exactly once. Workers block on a
    condition variable while no work is available and exit when every
    activated task has completed with none running.

    Intended for laptop-scale demonstrations and cross-checking the
    simulator; durations below ~50 us are dominated by scheduling
    noise. Inner task parallelism ([Par]/[Stages]) is executed
    sequentially inside the owning worker (its work, not its span, is
    what the wall clock sees). *)

type task_record = {
  task : int;
  start : float;  (** seconds since the run began (monotonic-ish) *)
  finish : float;
  worker : int;  (** domain index that executed the task *)
}

type result = {
  wall_makespan : float;  (** real seconds from start to last completion *)
  tasks_executed : int;
  tasks_activated : int;
  ops : Sched.Intf.ops;
  log : task_record array;  (** completion order *)
  work_executed : float;  (** simulated-work units actually spun *)
}

val run :
  ?domains:int ->
  ?work_unit:float ->
  sched:Sched.Intf.factory ->
  Workload.Trace.t ->
  result
(** [run ~domains ~work_unit ~sched trace] executes the whole active set
    on [domains] worker domains (default 4), spinning [work_unit] real
    seconds per unit of task work (default [1e-4]).
    @raise Failure if the scheduler deadlocks (no ready task while
    activated tasks remain and nothing is running). *)

val check : Workload.Trace.t -> result -> (unit, string) Stdlib.result
(** Model validation on the real timestamps: exactly the active set ran,
    each task once, and no task started before its activated ancestors
    finished. *)
