(* Rule compilation: each rule is planned once — constants pre-interned,
   variables mapped to integer slots, body literals reordered by a
   static selectivity heuristic — and then executed many times over a
   flat reusable [int array] environment with allocation-free index
   probes. The interpretive matcher ({!Matcher.eval_rule}) survives as
   the reference oracle; {!executor} picks between the two. *)

type src = Sconst of int | Sslot of int

(* One argument position of a positive atom, specialized at compile
   time by what is known to be bound when the literal executes. Because
   execution is depth-first over a fixed literal order, boundness is
   static: a slot is written exactly by the [Bind] of its first
   occurrence on every path that reads it, so no unbinding or occupancy
   bitmap is needed. *)
type arg_op =
  | Check_const of int * int  (* column must equal the interned code *)
  | Check_slot of int * int  (* column must equal an already-bound slot *)
  | Bind of int * int  (* first occurrence: write column into slot *)

type probe =
  | Scan  (* no argument bound at this point: full relation scan *)
  | Probe of int * src  (* indexed probe on (column, value source) *)

type step =
  | Match of {
      pred : string;
      arity : int;
      probe : probe;
      ops : arg_op array;
      late : bool;
      orig : int;
    }
      (* [late]: the literal's *original* body position is after the
         delta position, so under split-view execution it reads
         [late_view] instead of [view]. Baked at compile time (the
         delta position is a compile parameter), invariant under the
         selectivity reorder: telescoped signed-delta maintenance
         evaluates Δ at position i against new₁…newᵢ₋₁ · oldᵢ₊₁…oldₖ,
         and "before/after i" refers to syntactic positions.

         [orig] is the literal's original (syntactic) body position;
         the selectivity reorder permutes steps but preserves it, so
         witness extraction ({!run}'s [?witness]) can name a literal
         independently of the chosen join order. *)
  | Delta of { arity : int; ops : arg_op array; orig : int }
      (* the semi-naive literal: ranges over the delta relation passed
         to {!run} instead of the view *)
  | Reject of { pred : string; args : src array; scratch : int array; late : bool }
      (* negated atom, all arguments bound: membership must fail *)
  | Filter of { op : Ast.cmp; a : src; b : src }

type t = {
  symbols : Symbol.t;
  steps : step array;
  head : src array;
  env : int array;  (* slot scratch, reused across executions *)
  head_buf : int array;  (* head tuple scratch; valid only inside on_derived *)
  mutable running : bool;
      (* the scratch above makes a plan non-reentrant; [run] raises
         instead of silently corrupting bindings *)
}

let term_src slots symbols = function
  | Ast.Const c -> Some (Sconst (Symbol.intern symbols c))
  | Ast.Var v -> (
    match Hashtbl.find_opt slots v with Some s -> Some (Sslot s) | None -> None)
  | Ast.Agg _ -> invalid_arg "Plan: aggregate term in a rule body"

let compile ?delta ~symbols ~card (rule : Ast.rule) =
  (* [slots] doubles as the bound-variable set: a variable has a slot
     iff some already-emitted step binds it. *)
  let slots : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let nslots = ref 0 in
  let alloc v =
    let s = !nslots in
    incr nslots;
    Hashtbl.add slots v s;
    s
  in
  (* Compile an atom's argument list; allocates slots for first
     occurrences. [skip_col] is the probed column, already guaranteed
     equal by the index bucket. *)
  let compile_args ~skip_col (args : Ast.term list) =
    let ops = ref [] in
    List.iteri
      (fun col t ->
        match t with
        | Ast.Const c ->
          if col <> skip_col then
            ops := Check_const (col, Symbol.intern symbols c) :: !ops
        | Ast.Var v -> (
          match Hashtbl.find_opt slots v with
          | Some s -> if col <> skip_col then ops := Check_slot (col, s) :: !ops
          | None -> ops := Bind (col, alloc v) :: !ops)
        | Ast.Agg _ -> invalid_arg "Plan: aggregate term in a body atom")
      args;
    Array.of_list (List.rev !ops)
  in
  (* original body position [i] > delta position ⇒ the literal reads
     the late view under split-view execution *)
  let is_late i = match delta with Some di -> i > di | None -> false in
  let compile_pos ~late ~orig (a : Ast.atom) =
    (* probe on the first argument resolvable before this literal binds
       anything new — same column the interpreter would pick *)
    let probe =
      let rec go col = function
        | [] -> Scan
        | t :: rest -> (
          match term_src slots symbols t with
          | Some s -> Probe (col, s)
          | None -> go (col + 1) rest)
      in
      go 0 a.Ast.args
    in
    let skip_col = match probe with Probe (col, _) -> col | Scan -> -1 in
    let ops = compile_args ~skip_col a.Ast.args in
    Match { pred = a.Ast.pred; arity = List.length a.Ast.args; probe; ops; late; orig }
  in
  let ground_srcs (a : Ast.atom) =
    Array.of_list
      (List.map
         (fun t ->
           match term_src slots symbols t with
           | Some s -> s
           | None ->
             invalid_arg
               (Printf.sprintf
                  "Plan: unbound variable in %s (not range-restricted?)" a.Ast.pred))
         a.Ast.args)
  in
  let term_ready = function
    | Ast.Const _ -> true
    | Ast.Var v -> Hashtbl.mem slots v
    | Ast.Agg _ -> false
  in
  let lit_ready = function
    | Ast.Pos _ -> false (* generators are scheduled by selectivity, not readiness *)
    | Ast.Neg a -> List.for_all term_ready a.Ast.args
    | Ast.Cmp (_, t1, t2) -> term_ready t1 && term_ready t2
  in
  (* distinct variables of the atom not yet bound *)
  let unbound_count (a : Ast.atom) =
    let seen = Hashtbl.create 4 in
    List.iter
      (fun t ->
        match t with
        | Ast.Var v when not (Hashtbl.mem slots v) -> Hashtbl.replace seen v ()
        | Ast.Var _ | Ast.Const _ | Ast.Agg _ -> ())
      a.Ast.args;
    Hashtbl.length seen
  in
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  let remaining = ref (List.mapi (fun i l -> (i, l)) rule.Ast.body) in
  (* The delta literal leads unconditionally: semi-naive maintenance is
     driven by the (small) changed set, so every later literal probes
     with delta-bound values. *)
  (match delta with
  | None -> ()
  | Some di -> (
    match List.assoc_opt di !remaining with
    | Some (Ast.Pos a) ->
      emit
        (Delta
           { arity = List.length a.Ast.args;
             ops = compile_args ~skip_col:(-1) a.Ast.args;
             orig = di });
      remaining := List.filter (fun (i, _) -> i <> di) !remaining
    | Some (Ast.Neg _ | Ast.Cmp _) | None ->
      invalid_arg "Plan.compile: delta literal must be a positive body atom"));
  while !remaining <> [] do
    (* filters fire as soon as their variables are bound: they only
       shrink the enumeration *)
    let ready, rest = List.partition (fun (_, l) -> lit_ready l) !remaining in
    if ready <> [] then begin
      List.iter
        (fun (i, l) ->
          match l with
          | Ast.Neg a ->
            emit
              (Reject
                 { pred = a.Ast.pred;
                   args = ground_srcs a;
                   scratch = Array.make (List.length a.Ast.args) 0;
                   late = is_late i })
          | Ast.Cmp (op, t1, t2) ->
            let s t =
              match term_src slots symbols t with Some s -> s | None -> assert false
            in
            emit (Filter { op; a = s t1; b = s t2 })
          | Ast.Pos _ -> assert false)
        ready;
      remaining := rest
    end
    else begin
      (* most selective generator next: fewest unbound variables (most
         join constraints), then smallest relation at plan time *)
      let best = ref None in
      List.iter
        (fun (i, l) ->
          match l with
          | Ast.Pos a ->
            let key = (unbound_count a, card a.Ast.pred, i) in
            (match !best with
            | Some (bkey, _, _) when bkey <= key -> ()
            | Some _ | None -> best := Some (key, i, a))
          | Ast.Neg _ | Ast.Cmp _ -> ())
        !remaining;
      match !best with
      | None ->
        (* only negations/comparisons with unbound variables remain *)
        invalid_arg
          (Printf.sprintf "Plan: rule for %s is not range-restricted"
             rule.Ast.head.Ast.pred)
      | Some (_, i, a) ->
        emit (compile_pos ~late:(is_late i) ~orig:i a);
        remaining := List.filter (fun (j, _) -> j <> i) !remaining
    end
  done;
  let head =
    Array.of_list
      (List.map
         (fun t ->
           match t with
           | Ast.Agg _ -> invalid_arg "Plan: aggregate term in a rule head"
           | Ast.Const _ | Ast.Var _ -> (
             match term_src slots symbols t with
             | Some s -> s
             | None ->
               invalid_arg
                 (Printf.sprintf "Plan: unbound variable in the head of %s"
                    rule.Ast.head.Ast.pred)))
         rule.Ast.head.Ast.args)
  in
  {
    symbols;
    steps = Array.of_list (List.rev !steps);
    head;
    env = Array.make !nslots 0;
    head_buf = Array.make (Array.length head) 0;
    running = false;
  }

(* Element-wise unification of a planned argument list against a
   concrete tuple. [unsafe_get]/[unsafe_set] are justified by the
   arity check at each Match/Delta step: columns < arity = tuple
   length, and slot indexes are < |env| by construction. *)
let unify_ops env ops tup =
  let n = Array.length ops in
  let rec go j =
    j = n
    || (match Array.unsafe_get ops j with
       | Check_const (col, code) -> Array.unsafe_get tup col = code
       | Check_slot (col, s) -> Array.unsafe_get tup col = Array.unsafe_get env s
       | Bind (col, s) ->
         Array.unsafe_set env s (Array.unsafe_get tup col);
         true)
       && go (j + 1)
  in
  go 0

let cmp_ok op c =
  match op with
  | Ast.Eq -> c = 0
  | Ast.Neq -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let run ?delta ?shard ?late_view ?witness ~view ~work ~on_derived p =
  if p.running then
    invalid_arg "Plan.run: reentrant execution of a plan (its scratch state is live)";
  p.running <- true;
  Fun.protect ~finally:(fun () -> p.running <- false) @@ fun () ->
  (* split-view execution: literals whose original position follows the
     delta position read [late_view]; everything else reads [view].
     Defaulting [late_view] to [view] makes the single-view case free. *)
  let lview = match late_view with Some v -> v | None -> view in
  let env = p.env in
  let steps = p.steps in
  let nsteps = Array.length steps in
  let value = function Sconst c -> c | Sslot s -> Array.unsafe_get env s in
  (* witness extraction: remember the tuple last unified at the body
     position [wpos] and hand it to [wfn] alongside each emission. The
     stash is the store's own array — valid only inside the callback,
     copy to retain (same contract as [on_derived]'s buffer). *)
  let wpos, wfn =
    match witness with Some (w, f) -> (w, f) | None -> (-1, fun _ -> ())
  in
  let wit = ref [||] in
  let rec exec i =
    if i = nsteps then begin
      let head = p.head in
      let buf = p.head_buf in
      for j = 0 to Array.length head - 1 do
        buf.(j) <- value (Array.unsafe_get head j)
      done;
      if wpos >= 0 then wfn !wit;
      on_derived buf
    end
    else
      match Array.unsafe_get steps i with
      | Match { pred; arity; probe; ops; late; orig } ->
        let v = if late then lview else view in
        let stash = orig = wpos in
        let try_tuple tup =
          incr work;
          if Array.length tup <> arity then
            invalid_arg (Printf.sprintf "Plan: arity mismatch on %s" pred);
          if unify_ops env ops tup then begin
            if stash then wit := tup;
            exec (i + 1)
          end
        in
        (match probe with
        | Scan -> v.Matcher.iter pred try_tuple
        | Probe (col, s) -> v.Matcher.iter_matching pred ~col ~value:(value s) try_tuple)
      | Delta { arity; ops; orig } -> (
        match delta with
        | None -> invalid_arg "Plan.run: plan has a delta literal but no ~delta"
        | Some d ->
          (* shard-restricted mode: this task ranges only over its own
             hash partition of the delta; sibling tasks cover the rest,
             and the union over all shards is exactly the full delta *)
          let owned =
            match shard with
            | None -> fun _ -> true
            | Some (s, k) -> fun tup -> Relation.shard_of_tuple ~col:0 ~shards:k tup = s
          in
          let stash = orig = wpos in
          Relation.iter
            (fun tup ->
              incr work;
              if Array.length tup <> arity then
                invalid_arg "Plan: arity mismatch on the delta relation";
              if owned tup && unify_ops env ops tup then begin
                if stash then wit := tup;
                exec (i + 1)
              end)
            d)
      | Reject { pred; args; scratch; late } ->
        incr work;
        for j = 0 to Array.length args - 1 do
          scratch.(j) <- value (Array.unsafe_get args j)
        done;
        let v = if late then lview else view in
        if not (v.Matcher.mem pred scratch) then exec (i + 1)
      | Filter { op; a; b } ->
        incr work;
        if cmp_ok op (Symbol.compare_codes p.symbols (value a) (value b)) then
          exec (i + 1)
  in
  exec 0

(* ---- engine dispatch: compiled plans vs the interpretive oracle ---- *)

type engine = Compiled | Interpreted

let default_engine = Compiled

type exec =
  | Interp of { rule : Ast.rule; symbols : Symbol.t }
  | Plans of {
      rule : Ast.rule;
      symbols : Symbol.t;
      card : string -> int;
      mutable base : t option;
      deltas : (int, t) Hashtbl.t;  (* keyed by delta body position *)
    }

let executor ~engine ~symbols ~card (rule : Ast.rule) =
  match engine with
  | Interpreted -> Interp { rule; symbols }
  | Compiled -> Plans { rule; symbols; card; base = None; deltas = Hashtbl.create 4 }

let exec_rule ?delta ?shard ?late_view ?witness ~view ~work ~on_derived e =
  match e with
  | Interp { rule; symbols } ->
    if late_view <> None then
      invalid_arg
        "Plan.exec_rule: the interpretive oracle has no split-view mode \
         (counting maintenance requires the Compiled engine)";
    if witness <> None then
      invalid_arg
        "Plan.exec_rule: the interpretive oracle has no witness extraction \
         (the well-founded support index requires the Compiled engine)";
    (* the interpretive oracle has no shard mode; restrict its delta by
       materializing this shard's partition (oracle-only, cost is fine) *)
    let delta =
      match (delta, shard) with
      | Some (i, d), Some (s, k) when k > 1 ->
        let filtered = Relation.create ~arity:(Relation.arity d) in
        Relation.iter
          (fun tup ->
            if Relation.shard_of_tuple ~col:0 ~shards:k tup = s then
              ignore (Relation.add filtered tup))
          d;
        Some (i, filtered)
      | _ -> delta
    in
    Matcher.eval_rule ~symbols ~view ?delta ~work ~on_derived rule
  | Plans p -> (
    match delta with
    | None ->
      let plan =
        match p.base with
        | Some plan -> plan
        | None ->
          let plan = compile ~symbols:p.symbols ~card:p.card p.rule in
          p.base <- Some plan;
          plan
      in
      run ?late_view ?witness ~view ~work ~on_derived plan
    | Some (i, d) ->
      let plan =
        match Hashtbl.find_opt p.deltas i with
        | Some plan -> plan
        | None ->
          let plan = compile ~delta:i ~symbols:p.symbols ~card:p.card p.rule in
          Hashtbl.add p.deltas i plan;
          plan
      in
      run ~delta:d ?shard ?late_view ?witness ~view ~work ~on_derived plan)

(* Force the compilation a later [exec_rule ?delta] call would perform
   lazily. Compilation interns the rule's constants into the shared
   symbol table and consults [card]; a parallel maintenance driver
   pre-compiles every plan it may need serially, so that task-time
   execution only reads the plan store. *)
let prepare ?delta e =
  match e with
  | Interp _ -> ()
  | Plans p -> (
    match delta with
    | None -> (
      match p.base with
      | Some _ -> ()
      | None -> p.base <- Some (compile ~symbols:p.symbols ~card:p.card p.rule))
    | Some i ->
      if not (Hashtbl.mem p.deltas i) then
        Hashtbl.add p.deltas i (compile ~delta:i ~symbols:p.symbols ~card:p.card p.rule))

(* ---- static effect extraction ------------------------------------ *)

(* Read sets come from the instruction sequence itself — the artifact
   that actually executes — not from re-deriving them off the AST, so a
   planner bug that probed an unplanned relation would be visible to the
   ownership verifier. The [Delta] step carries no predicate (the delta
   relation is caller-supplied), but every delta-compiled plan is a
   restriction of the base plan, whose [Match]/[Reject] steps mention
   every body literal. *)

let add_pred acc p = if List.mem p acc then acc else p :: acc

let reads p =
  let acc =
    Array.fold_left
      (fun acc step ->
        match step with
        | Match { pred; _ } | Reject { pred; _ } -> add_pred acc pred
        | Delta _ | Filter _ -> acc)
      [] p.steps
  in
  List.sort String.compare acc

let body_reads (rule : Ast.rule) =
  let acc =
    List.fold_left
      (fun acc lit ->
        match lit with
        | Ast.Pos a | Ast.Neg a -> add_pred acc a.Ast.pred
        | Ast.Cmp _ -> acc)
      [] rule.Ast.body
  in
  List.sort String.compare acc

let exec_reads e =
  match e with
  | Interp { rule; _ } -> body_reads rule
  | Plans p -> (
    match p.base with
    | Some base ->
      let acc =
        Hashtbl.fold (fun _ plan acc -> List.fold_left add_pred acc (reads plan))
          p.deltas (reads base)
      in
      List.sort_uniq String.compare acc
    | None ->
      (* nothing compiled yet (or only delta plans, which elide the delta
         predicate): the rule body is the authoritative superset *)
      body_reads p.rule)

(* Evaluation callbacks in {!Eval} and {!Incremental} mutate the very
   relations the rule body is probing — the head relation when it also
   occurs as a body literal (recursive rules), and the net-delta overlay
   relations during maintenance. Those probes walk live index buckets,
   so mutation mid-enumeration is forbidden ({!Relation.iter_matching}).
   Enumerate first against the frozen state, buffering head tuples that
   pass [keep], then hand them to [on_derived] once no iteration is
   live. [keep] is a read-only pre-filter evaluated on the scratch
   buffer (typically a membership probe of the head relation) so that
   already-known derivations are never copied; [on_derived] must still
   dedupe, since one call can buffer the same new tuple twice. *)
let exec_rule_deferred ?delta ?shard ?late_view ~view ~work ~keep ~on_derived e =
  let buf = ref [] in
  exec_rule ?delta ?shard ?late_view ~view ~work
    ~on_derived:(fun tup -> if keep tup then buf := Array.copy tup :: !buf)
    e;
  List.iter on_derived (List.rev !buf)
