(* Simulation engine tests: virtual-time semantics, task-shape
   expansion, overhead charging, failure detection, schedule validation,
   the meta-scheduler, and the paper's makespan bounds (Lemmas 3 and 5)
   as properties. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_float = Alcotest.(check (float 1e-9))

let cfg ?(procs = 2) ?(op_cost = 0.0) ?(record_log = true) () =
  { Simulator.Engine.procs; op_cost; record_log }

let unit_trace ~nodes ~edges ~initial ~changed =
  let graph = Dag.Graph.of_edges ~nodes edges in
  Workload.Trace.create ~name:"t" ~graph
    ~kind:(Array.make nodes Workload.Trace.Task)
    ~shape:(Array.make nodes Workload.Trace.Unit)
    ~initial ~edge_changed:changed

let lb = Sched.Level_based.factory

(* ---------- basic virtual-time semantics ---------- *)

let serial_chain () =
  let t = Workload.Pathological.deep_chain ~n:5 in
  let r = Simulator.Engine.run ~config:(cfg ~procs:4 ()) ~sched:lb t in
  check_float "chain is serial regardless of procs" 5.0
    r.Simulator.Engine.metrics.Simulator.Metrics.makespan;
  check_int "executed" 5 r.Simulator.Engine.metrics.Simulator.Metrics.tasks_executed

let parallel_sources () =
  (* 4 independent dirty sources, 2 procs: two waves *)
  let t =
    unit_trace ~nodes:4 ~edges:[||] ~initial:[| 0; 1; 2; 3 |] ~changed:[||]
  in
  let r = Simulator.Engine.run ~config:(cfg ~procs:2 ()) ~sched:lb t in
  check_float "two waves" 2.0 r.Simulator.Engine.metrics.Simulator.Metrics.makespan;
  let r4 = Simulator.Engine.run ~config:(cfg ~procs:4 ()) ~sched:lb t in
  check_float "one wave with 4 procs" 1.0
    r4.Simulator.Engine.metrics.Simulator.Metrics.makespan

let activation_stops_at_unchanged_edge () =
  let t =
    unit_trace ~nodes:3
      ~edges:[| (0, 1); (1, 2) |]
      ~initial:[| 0 |]
      ~changed:[| true; false |]
  in
  let r = Simulator.Engine.run ~config:(cfg ()) ~sched:lb t in
  check_int "only 0 and 1 run" 2 r.Simulator.Engine.metrics.Simulator.Metrics.tasks_executed

let predicate_nodes_are_free () =
  let graph = Dag.Graph.of_edges ~nodes:3 [| (0, 1); (1, 2) |] in
  let t =
    Workload.Trace.create ~name:"pred" ~graph
      ~kind:[| Workload.Trace.Task; Predicate; Task |]
      ~shape:[| Workload.Trace.Seq 1.0; Seq 99.0; Seq 1.0 |]
      ~initial:[| 0 |]
      ~edge_changed:[| true; true |]
  in
  let r = Simulator.Engine.run ~config:(cfg ()) ~sched:lb t in
  check_float "predicate shape ignored" 2.0
    r.Simulator.Engine.metrics.Simulator.Metrics.makespan

(* ---------- task shapes ---------- *)

let par_task_uses_processors () =
  let graph = Dag.Graph.empty 1 in
  let t =
    Workload.Trace.create ~name:"par" ~graph ~kind:[| Workload.Trace.Task |]
      ~shape:[| Workload.Trace.Par 8.0 |]
      ~initial:[| 0 |] ~edge_changed:[||]
  in
  let r1 = Simulator.Engine.run ~config:(cfg ~procs:1 ()) ~sched:lb t in
  check_float "serial" 8.0 r1.Simulator.Engine.metrics.Simulator.Metrics.makespan;
  let r8 = Simulator.Engine.run ~config:(cfg ~procs:8 ()) ~sched:lb t in
  check_float "fully parallel" 1.0 r8.Simulator.Engine.metrics.Simulator.Metrics.makespan;
  check_float "same total work" 8.0
    r8.Simulator.Engine.metrics.Simulator.Metrics.total_work

let stages_respect_barriers () =
  let graph = Dag.Graph.empty 1 in
  let t =
    Workload.Trace.create ~name:"stages" ~graph ~kind:[| Workload.Trace.Task |]
      ~shape:[| Workload.Trace.Stages { width = 4; length = 3; chip = 1.0 } |]
      ~initial:[| 0 |] ~edge_changed:[||]
  in
  (* with 2 procs: each stage is 4 chips / 2 procs = 2 units; 3 stages *)
  let r = Simulator.Engine.run ~config:(cfg ~procs:2 ()) ~sched:lb t in
  check_float "stage barriers" 6.0 r.Simulator.Engine.metrics.Simulator.Metrics.makespan;
  (* with 8 procs: each stage 1 unit *)
  let r8 = Simulator.Engine.run ~config:(cfg ~procs:8 ()) ~sched:lb t in
  check_float "span with many procs" 3.0
    r8.Simulator.Engine.metrics.Simulator.Metrics.makespan

let zero_work_par () =
  let graph = Dag.Graph.empty 1 in
  let t =
    Workload.Trace.create ~name:"z" ~graph ~kind:[| Workload.Trace.Task |]
      ~shape:[| Workload.Trace.Par 0.0 |]
      ~initial:[| 0 |] ~edge_changed:[||]
  in
  let r = Simulator.Engine.run ~config:(cfg ()) ~sched:lb t in
  check_float "instant" 0.0 r.Simulator.Engine.metrics.Simulator.Metrics.makespan

(* ---------- overhead charging ---------- *)

let op_cost_scales_overhead () =
  let t = Workload.Pathological.deep_chain ~n:50 in
  let cheap = Simulator.Engine.run ~config:(cfg ~op_cost:1e-6 ()) ~sched:lb t in
  let pricey = Simulator.Engine.run ~config:(cfg ~op_cost:1e-3 ()) ~sched:lb t in
  let oc = cheap.Simulator.Engine.metrics.Simulator.Metrics.sched_overhead in
  let op = pricey.Simulator.Engine.metrics.Simulator.Metrics.sched_overhead in
  check_bool "overhead scales with op cost" true (op > 100.0 *. oc);
  check_bool "makespan includes overhead" true
    (pricey.Simulator.Engine.metrics.Simulator.Metrics.makespan
    >= pricey.Simulator.Engine.metrics.Simulator.Metrics.exec_time)

let free_scheduling_zero_overhead () =
  let t = Workload.Pathological.deep_chain ~n:10 in
  let r = Simulator.Engine.run ~config:(cfg ~op_cost:0.0 ()) ~sched:lb t in
  check_float "no overhead at zero op cost" 0.0
    r.Simulator.Engine.metrics.Simulator.Metrics.sched_overhead

(* ---------- failure detection ---------- *)

let lazy_scheduler : Sched.Intf.factory =
  {
    Sched.Intf.fname = "lazy";
    make =
      (fun _g ->
        {
          Sched.Intf.name = "lazy";
          on_activated = (fun _ -> ());
          on_started = (fun _ -> ());
          on_completed = (fun _ -> ());
          next_ready = (fun () -> None);
          next_ready_into = None;
          ops = Sched.Intf.zero_ops ();
          memory_words = (fun () -> 0);
        })
  }

let deadlock_detected () =
  let t = Workload.Pathological.deep_chain ~n:3 in
  match Simulator.Engine.run ~config:(cfg ()) ~sched:lazy_scheduler t with
  | exception Simulator.Engine.Deadlock { remaining; _ } ->
    check_int "remaining tasks" 1 remaining
  | _ -> Alcotest.fail "expected Deadlock"

let eager_scheduler : Sched.Intf.factory =
  (* returns node 1 immediately even though only node 0 is active *)
  {
    Sched.Intf.fname = "eager";
    make =
      (fun _g ->
        let served = ref false in
        {
          Sched.Intf.name = "eager";
          on_activated = (fun _ -> ());
          on_started = (fun _ -> ());
          on_completed = (fun _ -> ());
          next_ready =
            (fun () ->
              if !served then None
              else begin
                served := true;
                Some 1
              end);
          next_ready_into = None;
          ops = Sched.Intf.zero_ops ();
          memory_words = (fun () -> 0);
        })
  }

let premature_detected () =
  let t = Workload.Pathological.deep_chain ~n:3 in
  match Simulator.Engine.run ~config:(cfg ()) ~sched:eager_scheduler t with
  | exception Simulator.Engine.Premature u -> check_int "culprit" 1 u
  | _ -> Alcotest.fail "expected Premature"

let double_scheduler : Sched.Intf.factory =
  {
    Sched.Intf.fname = "double";
    make =
      (fun _g ->
        let count = ref 0 in
        {
          Sched.Intf.name = "double";
          on_activated = (fun _ -> ());
          on_started = (fun _ -> ());
          on_completed = (fun _ -> ());
          next_ready =
            (fun () ->
              incr count;
              if !count <= 2 then Some 0 else None);
          next_ready_into = None;
          ops = Sched.Intf.zero_ops ();
          memory_words = (fun () -> 0);
        })
  }

let double_start_detected () =
  (* node 0 takes long enough that the second (bogus) offer arrives
     while it is still running *)
  let graph = Dag.Graph.empty 2 in
  let t =
    Workload.Trace.create ~name:"dbl" ~graph
      ~kind:(Array.make 2 Workload.Trace.Task)
      ~shape:(Array.make 2 (Workload.Trace.Seq 5.0))
      ~initial:[| 0; 1 |] ~edge_changed:[||]
  in
  match Simulator.Engine.run ~config:(cfg ~procs:2 ()) ~sched:double_scheduler t with
  | exception Simulator.Engine.Double_start u -> check_int "culprit" 0 u
  | _ -> Alcotest.fail "expected Double_start"

(* ---------- validator ---------- *)

let validator_catches_violations () =
  let t =
    unit_trace ~nodes:3
      ~edges:[| (0, 1); (1, 2) |]
      ~initial:[| 0 |]
      ~changed:[| true; true |]
  in
  let ok =
    [|
      { Simulator.Engine.task = 0; start = 0.0; finish = 1.0 };
      { Simulator.Engine.task = 1; start = 1.0; finish = 2.0 };
      { Simulator.Engine.task = 2; start = 2.0; finish = 3.0 };
    |]
  in
  check_bool "valid log accepted" true (Simulator.Validate.check t ok = Ok ());
  let premature =
    [|
      { Simulator.Engine.task = 0; start = 0.0; finish = 1.0 };
      { Simulator.Engine.task = 1; start = 0.5; finish = 1.5 };
      { Simulator.Engine.task = 2; start = 2.0; finish = 3.0 };
    |]
  in
  check_bool "precedence violation caught" true
    (Result.is_error (Simulator.Validate.check t premature));
  let missing = [| { Simulator.Engine.task = 0; start = 0.0; finish = 1.0 } |] in
  check_bool "missing task caught" true
    (Result.is_error (Simulator.Validate.check t missing));
  let doubled = Array.append ok [| ok.(2) |] in
  check_bool "double execution caught" true
    (Result.is_error (Simulator.Validate.check t doubled));
  let foreign = Array.append ok [| { Simulator.Engine.task = 5; start = 0.; finish = 0. } |] in
  ignore foreign;
  let too_fast =
    [|
      { Simulator.Engine.task = 0; start = 0.0; finish = 0.1 };
      { Simulator.Engine.task = 1; start = 1.0; finish = 2.0 };
      { Simulator.Engine.task = 2; start = 2.0; finish = 3.0 };
    |]
  in
  check_bool "span violation caught" true
    (Result.is_error (Simulator.Validate.check t too_fast))

let validator_requires_log () =
  let t = Workload.Pathological.deep_chain ~n:2 in
  let r = Simulator.Engine.run ~config:(cfg ~record_log:false ()) ~sched:lb t in
  check_bool "no log error" true (Result.is_error (Simulator.Validate.check_run t r))

(* ---------- meta scheduler (Theorem 10) ---------- *)

let meta_abort_on_budget () =
  let t = Workload.Pathological.interval_blowup ~width:30 ~layers:3 ~density:0.5 ~seed:2 in
  let r =
    Simulator.Meta.run ~config:(cfg ~procs:4 ())
      ~budget_words:100 (* absurdly small: LogicBlox intervals never fit *)
      ~a:Sched.Logicblox.factory t
  in
  check_bool "aborted" true r.Simulator.Meta.a_aborted;
  check_bool "fell back to LevelBased" true
    (r.Simulator.Meta.winner = "LevelBased");
  check_bool "within budget story" true (r.Simulator.Meta.a_metrics = None)

let meta_min_behaviour () =
  let t = Workload.Pathological.tight_example ~levels:10 in
  let r =
    Simulator.Meta.run ~config:(cfg ~procs:8 ()) ~budget_words:max_int
      ~a:Sched.Logicblox.factory t
  in
  check_bool "not aborted" true (not r.Simulator.Meta.a_aborted);
  let ma = Option.get r.Simulator.Meta.a_metrics in
  let expected =
    Float.min ma.Simulator.Metrics.makespan
      r.Simulator.Meta.lb_metrics.Simulator.Metrics.makespan
  in
  check_float "makespan is the min" expected r.Simulator.Meta.makespan;
  (* Theorem 10: meta on P procs <= 2 * each full-width run *)
  let full =
    Simulator.Engine.run ~config:(cfg ~procs:8 ()) ~sched:Sched.Logicblox.factory t
  in
  check_bool "2-competitive vs A" true
    (r.Simulator.Meta.makespan
    <= (2.0 *. full.Simulator.Engine.metrics.Simulator.Metrics.makespan) +. 1e-9)

let meta_pp () =
  let t = Workload.Pathological.deep_chain ~n:4 in
  let r =
    Simulator.Meta.run ~config:(cfg ()) ~budget_words:max_int ~a:Sched.Signal.factory t
  in
  let s = Format.asprintf "%a" Simulator.Meta.pp_result r in
  check_bool "pp mentions winner" true (String.length s > 10)

(* ---------- makespan bounds (Lemmas 3 and 5) ---------- *)

let random_unit_trace_gen ~shape_of =
  QCheck.Gen.(
    2 -- 20 >>= fun n ->
    list_size (0 -- (3 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >|= fun pairs ->
    let edges =
      pairs
      |> List.filter_map (fun (a, b) ->
             if a < b then Some (a, b) else if b < a then Some (b, a) else None)
      |> List.sort_uniq compare
      |> Array.of_list
    in
    let graph = Dag.Graph.of_edges ~nodes:n edges in
    let sources = Dag.Graph.sources graph in
    Workload.Trace.create ~name:"bound" ~graph
      ~kind:(Array.make n Workload.Trace.Task)
      ~shape:(Array.init n shape_of) ~initial:sources
      ~edge_changed:(Array.make (Array.length edges) true))

let lemma3_unit_tasks =
  QCheck.Test.make ~name:"Lemma 3: unit tasks, LB makespan <= w/P + L" ~count:200
    (QCheck.make (random_unit_trace_gen ~shape_of:(fun _ -> Workload.Trace.Unit)))
    (fun t ->
      let procs = 2 in
      let r = Simulator.Engine.run ~config:(cfg ~procs ()) ~sched:lb t in
      let w = Workload.Trace.total_active_work t in
      let levels = (Workload.Trace.stats t).Workload.Trace.levels in
      r.Simulator.Engine.metrics.Simulator.Metrics.makespan
      <= (w /. float_of_int procs) +. float_of_int levels +. 1e-9)

let lemma5_fully_parallel =
  QCheck.Test.make
    ~name:"Lemma 5: fully parallelizable tasks, LB makespan <= w/P + sum(span)"
    ~count:200
    (QCheck.make
       (random_unit_trace_gen ~shape_of:(fun i ->
            Workload.Trace.Par (1.0 +. float_of_int (i mod 5)))))
    (fun t ->
      (* chips of a Par task have duration w/ceil(w) <= 1, so each level
         drains within one chip-length once processors free up; the
         bound takes the per-level max chip size as the level cost. *)
      let procs = 3 in
      let r = Simulator.Engine.run ~config:(cfg ~procs ()) ~sched:lb t in
      let w = Workload.Trace.total_active_work t in
      let levels = (Workload.Trace.stats t).Workload.Trace.levels in
      r.Simulator.Engine.metrics.Simulator.Metrics.makespan
      <= (w /. float_of_int procs) +. float_of_int levels +. 1e-9)

(* Lemma 7: arbitrary length and parallelism — the per-level span sum
   bound w/P + sum_i S_i, where S_i is the max task span at level i. *)
let lemma7_arbitrary_tasks =
  QCheck.Test.make ~name:"Lemma 7: arbitrary tasks, LB makespan <= w/P + sum(S_i)"
    ~count:150
    (QCheck.make
       (random_unit_trace_gen ~shape_of:(fun i ->
            Workload.Trace.Stages
              { width = 1 + (i mod 3); length = 1 + (i mod 4); chip = 1.0 })))
    (fun t ->
      let procs = 2 in
      let r = Simulator.Engine.run ~config:(cfg ~procs ()) ~sched:lb t in
      let w = Workload.Trace.total_active_work t in
      let levels = Workload.Trace.levels t in
      let nlevels = Dag.Levels.count levels in
      let span_at = Array.make (max nlevels 1) 0.0 in
      let active = Workload.Trace.active_set t in
      Prelude.Bitset.iter
        (fun u ->
          let s = Workload.Trace.shape_span t.Workload.Trace.shape.(u) in
          if s > span_at.(levels.(u)) then span_at.(levels.(u)) <- s)
        active;
      let sum_spans = Array.fold_left ( +. ) 0.0 span_at in
      r.Simulator.Engine.metrics.Simulator.Metrics.makespan
      <= (w /. float_of_int procs) +. sum_spans +. 1e-9)

let engine_deterministic =
  QCheck.Test.make ~name:"engine: identical reruns give identical makespans" ~count:60
    (QCheck.make (random_unit_trace_gen ~shape_of:(fun _ -> Workload.Trace.Unit)))
    (fun t ->
      let factories =
        [ lb; Sched.Logicblox.factory; Sched.Hybrid.factory; Sched.Signal.factory ]
      in
      List.for_all
        (fun f ->
          let m1 = (Simulator.Engine.run ~config:(cfg ()) ~sched:f t).Simulator.Engine.metrics in
          let m2 = (Simulator.Engine.run ~config:(cfg ()) ~sched:f t).Simulator.Engine.metrics in
          m1.Simulator.Metrics.makespan = m2.Simulator.Metrics.makespan
          && Sched.Intf.total_ops m1.Simulator.Metrics.ops
             = Sched.Intf.total_ops m2.Simulator.Metrics.ops)
        factories)

(* ---------- trace export ---------- *)

let export_wellformed () =
  let t = Workload.Pathological.tight_example ~levels:6 in
  let r = Simulator.Engine.run ~config:(cfg ~procs:4 ()) ~sched:lb t in
  let log = Option.get r.Simulator.Engine.log in
  let tmp = Filename.temp_file "sched" ".json" in
  Simulator.Trace_export.to_file tmp ~procs:4 log;
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  check_bool "json array" true
    (String.length contents > 2 && contents.[0] = '[');
  (* one event per executed task *)
  let count = ref 0 in
  String.iter (fun c -> if c = 'X' then incr count) contents;
  check_int "one event per task" (Array.length log) !count

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "simulator"
    [
      ( "engine",
        [
          test `Quick "serial chain" serial_chain;
          test `Quick "parallel sources" parallel_sources;
          test `Quick "activation stops at unchanged edges"
            activation_stops_at_unchanged_edge;
          test `Quick "predicate nodes are free" predicate_nodes_are_free;
        ] );
      ( "task-shapes",
        [
          test `Quick "par uses processors" par_task_uses_processors;
          test `Quick "stage barriers" stages_respect_barriers;
          test `Quick "zero-work par" zero_work_par;
        ] );
      ( "overhead",
        [
          test `Quick "op cost scales overhead" op_cost_scales_overhead;
          test `Quick "zero op cost, zero overhead" free_scheduling_zero_overhead;
        ] );
      ( "failures",
        [
          test `Quick "deadlock detected" deadlock_detected;
          test `Quick "premature execution detected" premature_detected;
          test `Quick "double start detected" double_start_detected;
        ] );
      ( "validator",
        [
          test `Quick "catches violations" validator_catches_violations;
          test `Quick "requires a log" validator_requires_log;
        ] );
      ( "meta",
        [
          test `Quick "aborts over budget" meta_abort_on_budget;
          test `Quick "min of both arms" meta_min_behaviour;
          test `Quick "printable" meta_pp;
        ] );
      ("export", [ test `Quick "chrome trace wellformed" export_wellformed ]);
      ( "bounds",
        qsuite
          [
            lemma3_unit_tasks;
            lemma5_fully_parallel;
            lemma7_arbitrary_tasks;
            engine_deterministic;
          ] );
    ]
