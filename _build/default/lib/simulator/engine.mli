(** Discrete-event scheduling simulator (paper, Section VI-A).

    Reconstructs the dataflow DAG from a trace, attaches processing
    times, and simulates the given online scheduler against [procs]
    virtual processors. Activations are revealed dynamically: when a
    task completes, exactly the out-edges flagged as changed dirty their
    targets — the scheduler never sees the oracle.

    Tasks expand into chips per their {!Workload.Trace.shape}: a chip
    occupies one processor for its duration; a task's next stage is
    released when the current stage drains; greedy FIFO chip placement.

    Scheduling overhead is charged in virtual time: every abstract
    operation the scheduler performs advances the clock by [op_cost]
    weighted by operation kind (see {!Sched.Intf.weighted_ops}),
    serializing decision work with execution exactly as a scheduler
    thread holding a dispatch lock would — though decision work done
    while processors are busy is absorbed, as in a real system. The
    makespan therefore includes overhead, as in the paper's Tables II
    and III; the precomputation phase is timed but excluded, also as in
    the paper.

    @raise Deadlock if the scheduler stalls with active tasks left.
    @raise Double_start if it hands out a task twice (engine guard). *)

exception Deadlock of { time : float; remaining : int }

exception Double_start of int

exception Premature of int
(** A task ran before being activated, or received an activation after
    running — the single-execution invariant of Section II was broken. *)

type config = {
  procs : int;
  op_cost : float;  (** virtual seconds per abstract scheduler op *)
  record_log : bool;  (** keep a (task, start, finish) log for validation *)
}

val default_config : config
(** 8 processors (as in the paper), [op_cost = 1e-7], no log. *)

type log_entry = { task : int; start : float; finish : float }

type run = { metrics : Metrics.t; log : log_entry array option }

val run : ?config:config -> sched:Sched.Intf.factory -> Workload.Trace.t -> run

val run_all :
  ?config:config -> scheds:Sched.Intf.factory list -> Workload.Trace.t -> run list

val clairvoyant_factory : ?procs:int -> Workload.Trace.t -> Sched.Intf.factory
(** The offline reference scheduler for this trace (it receives the
    change oracle the online schedulers are denied). [procs] is unused
    here but kept for symmetry. *)
