(* Epoch engine: admission queue -> one Incr_sched.update per commit
   -> immutable published snapshot. See the .mli for the lifecycle;
   the key invariants here are

   - queries only ever read the published snapshot (frozen relation
     copies) and the append-only symbol table, so the background
     commit domain owns the live database exclusively;
   - the obs rings are written by at most one party at a time: the
     maintenance run inside the commit (caller thread or background
     domain), or the engine's own srv spans, emitted strictly before a
     run starts / after its domain is joined. *)

type op = Add | Del

type commit_stats = {
  epoch : int;
  ops : int;
  additions : int;
  deletions : int;
  changed : int;
  run_s : float;
  latency_s : float;
}

type snapshot = {
  snap_epoch : int;
  rels : (string, Datalog.Relation.t) Hashtbl.t;
  published_ns : int;  (* ring stamp of publication, for srv-epoch *)
}

type job = {
  target : int;
  job_ops : int;
  job_adds : int;
  job_dels : int;
  request : float;  (* Mclock at the commit request *)
  start_ns : int;  (* ring stamp at run start, for srv-commit *)
  done_ : bool Atomic.t;
  handle : (Datalog.To_trace.t * float, exn) result Domain.t;
}

type t = {
  session : Incr_sched.datalog_session;
  maint : Datalog.Incremental.maint;
  domains : int;
  shards : int;
  obs : Obs.Trace.t;
  idb : (string, unit) Hashtbl.t;
  pending : (string, op) Hashtbl.t;
  mutable pending_order : string list;  (* first-seen order, reversed *)
  mutable snapshot : snapshot;
  mutable epoch : int;
  mutable ncommits : int;
  mutable inflight : job option;
  mutable commit_queued : bool;
  mutable queued_request : float;
  mutable completed : commit_stats list;  (* oldest first *)
  mutable labels : string array;  (* component labels of the latest run *)
}

let ring t = Obs.Trace.ring t.obs 0

let freeze_all db =
  let rels = Hashtbl.create 32 in
  List.iter
    (fun (name, rel) -> Hashtbl.replace rels name (Datalog.Relation.copy rel))
    (Datalog.Database.predicates db);
  rels

let create ?(maint = Datalog.Incremental.Dred) ?(domains = 1) ?(shards = 1)
    ?(obs = Obs.Trace.disabled) (session : Incr_sched.datalog_session) =
  let idb = Hashtbl.create 16 in
  List.iter
    (fun (r : Datalog.Ast.rule) ->
      if r.body <> [] then Hashtbl.replace idb r.head.pred ())
    session.program;
  {
    session;
    maint;
    domains = max 1 domains;
    shards = max 1 shards;
    obs;
    idb;
    pending = Hashtbl.create 64;
    pending_order = [];
    snapshot =
      { snap_epoch = 0; rels = freeze_all session.db; published_ns = 0 };
    epoch = 0;
    ncommits = 0;
    inflight = None;
    commit_queued = false;
    queued_request = 0.0;
    completed = [];
    labels = [||];
  }

let epoch (t : t) = t.epoch
let pending_ops t = Hashtbl.length t.pending
let inflight t = t.inflight <> None
let commits t = t.ncommits
let maint t = t.maint
let domains t = t.domains
let shards t = t.shards
let db t = t.session.db

let snapshot_facts t =
  Hashtbl.fold
    (fun _ rel acc -> acc + Datalog.Relation.cardinality rel)
    t.snapshot.rels 0

(* ---- admission ---- *)

let canonical (atom : Datalog.Ast.atom) =
  if atom.args = [] then atom.pred
  else Format.asprintf "%a" Datalog.Ast.pp_atom atom

let submit t side text =
  match Datalog.Parser.parse_atom text with
  | exception Datalog.Parser.Error { col; message; _ } ->
    Error (Printf.sprintf "bad fact (column %d): %s" col message)
  | atom ->
    if not (Datalog.Ast.atom_is_ground atom) then
      Error "fact must be ground (no variables)"
    else if Hashtbl.mem t.idb atom.pred then
      Error
        (Printf.sprintf "%s is derived; only base facts can be updated"
           atom.pred)
    else begin
      match Hashtbl.find_opt t.snapshot.rels atom.pred with
      | Some rel
        when Datalog.Relation.arity rel <> List.length atom.args ->
        Error
          (Printf.sprintf "%s has arity %d, not %d" atom.pred
             (Datalog.Relation.arity rel)
             (List.length atom.args))
      | Some _ | None ->
        let key = canonical atom in
        if not (Hashtbl.mem t.pending key) then
          t.pending_order <- key :: t.pending_order;
        (* last wins: one batch carries a fact on at most one side *)
        Hashtbl.replace t.pending key
          (match side with `Insert -> Add | `Remove -> Del);
        Ok ()
    end

let take_batch t =
  let keys = List.rev t.pending_order in
  let additions =
    List.filter (fun k -> Hashtbl.find t.pending k = Add) keys
  in
  let deletions =
    List.filter (fun k -> Hashtbl.find t.pending k = Del) keys
  in
  Hashtbl.reset t.pending;
  t.pending_order <- [];
  (additions, deletions)

(* ---- commit machinery ---- *)

let run_batch t ~additions ~deletions =
  Incr_sched.update ~maint:t.maint ~domains:t.domains ~shards:t.shards
    ~obs:t.obs t.session ~additions ~deletions

(* Publish the post-commit snapshot for [target]: re-freeze only the
   predicates the report says changed, share every other frozen view
   with the superseded snapshot. Caller thread only, after the run has
   quiesced. *)
let publish t ~(report : Datalog.Incremental.report) ~target ~start_ns =
  let changed =
    List.fold_left
      (fun acc (c : Datalog.Incremental.pred_change) ->
        acc + c.added + c.removed)
      0 report.changes
  in
  let dirty = Hashtbl.create 16 in
  List.iter
    (fun (c : Datalog.Incremental.pred_change) ->
      Hashtbl.replace dirty c.pred ())
    report.changes;
  let old = t.snapshot in
  let rels = Hashtbl.create 32 in
  List.iter
    (fun (name, rel) ->
      let frozen =
        if Hashtbl.mem dirty name then Datalog.Relation.copy rel
        else
          match Hashtbl.find_opt old.rels name with
          | Some view -> view
          | None -> Datalog.Relation.copy rel
      in
      Hashtbl.replace rels name frozen)
    (Datalog.Database.predicates t.session.db);
  let r = ring t in
  let now = Obs.Ring.now_ns r in
  Obs.Ring.emit r ~kind:Obs.Event.srv_epoch ~a:old.snap_epoch
    ~b:old.published_ns;
  Obs.Ring.emit_at r ~t_ns:now ~kind:Obs.Event.srv_commit ~a:target
    ~b:start_ns;
  t.snapshot <- { snap_epoch = target; rels; published_ns = now };
  t.epoch <- target;
  t.ncommits <- t.ncommits + 1;
  changed

let finish t ~(tt : Datalog.To_trace.t) ~run_s ~target ~start_ns ~request
    ~ops ~additions ~deletions =
  let changed = publish t ~report:tt.report ~target ~start_ns in
  t.labels <- tt.labels;
  {
    epoch = target;
    ops;
    additions;
    deletions;
    changed;
    run_s;
    latency_s = Prelude.Mclock.now () -. request;
  }

let start_async t ~request =
  let additions, deletions = take_batch t in
  let nadds = List.length additions and ndels = List.length deletions in
  let target = t.epoch + 1 in
  let r = ring t in
  Obs.Ring.emit r ~kind:Obs.Event.srv_admit ~a:(nadds + ndels) ~b:target;
  let start_ns = Obs.Ring.now_ns r in
  let done_ = Atomic.make false in
  let handle =
    Domain.spawn (fun () ->
        let r =
          try
            let t0 = Prelude.Mclock.now () in
            let tt = run_batch t ~additions ~deletions in
            Ok (tt, Prelude.Mclock.now () -. t0)
          with e -> Error e
        in
        Atomic.set done_ true;
        r)
  in
  t.inflight <-
    Some
      {
        target;
        job_ops = nadds + ndels;
        job_adds = nadds;
        job_dels = ndels;
        request;
        start_ns;
        done_;
        handle;
      }

(* Join one inflight job, publish it, and auto-start the coalesced
   follow-up if one was requested. Blocks if the job is still running. *)
let harvest t (j : job) =
  let result = Domain.join j.handle in
  t.inflight <- None;
  (match result with
  | Ok (tt, run_s) ->
    let stats =
      finish t ~tt ~run_s ~target:j.target ~start_ns:j.start_ns
        ~request:j.request ~ops:j.job_ops ~additions:j.job_adds
        ~deletions:j.job_dels
    in
    t.completed <- t.completed @ [ stats ]
  | Error e ->
    (* the queued follow-up is dropped with the failed epoch; the
       client sees the failure on its next interaction *)
    t.commit_queued <- false;
    raise e);
  if t.commit_queued then begin
    t.commit_queued <- false;
    start_async t ~request:t.queued_request
  end

let take_completed t =
  let out = t.completed in
  t.completed <- [];
  out

let drain t =
  (match t.inflight with
  | Some j when Atomic.get j.done_ -> harvest t j
  | Some _ | None -> ());
  take_completed t

let rec await t =
  match t.inflight with
  | Some j ->
    harvest t j;
    await t
  | None ->
    if t.commit_queued then begin
      (* unreachable today (coalescing implies an inflight job), kept
         for safety: serve the request rather than dropping it *)
      t.commit_queued <- false;
      start_async t ~request:t.queued_request;
      await t
    end
    else take_completed t

let commit_async t =
  match t.inflight with
  | Some _ ->
    if not t.commit_queued then begin
      t.commit_queued <- true;
      t.queued_request <- Prelude.Mclock.now ()
    end;
    `Coalesced
  | None ->
    start_async t ~request:(Prelude.Mclock.now ());
    `Started (t.epoch + 1)

let commit t =
  let earlier = await t in
  let request = Prelude.Mclock.now () in
  let additions, deletions = take_batch t in
  let nadds = List.length additions and ndels = List.length deletions in
  let target = t.epoch + 1 in
  let r = ring t in
  Obs.Ring.emit r ~kind:Obs.Event.srv_admit ~a:(nadds + ndels) ~b:target;
  let start_ns = Obs.Ring.now_ns r in
  let t0 = Prelude.Mclock.now () in
  let tt = run_batch t ~additions ~deletions in
  let run_s = Prelude.Mclock.now () -. t0 in
  let stats =
    finish t ~tt ~run_s ~target ~start_ns ~request ~ops:(nadds + ndels)
      ~additions:nadds ~deletions:ndels
  in
  earlier @ [ stats ]

(* ---- queries ---- *)

let query t text =
  match Datalog.Parser.parse_atom text with
  | exception Datalog.Parser.Error { col; message; _ } ->
    Error (Printf.sprintf "bad pattern (column %d): %s" col message)
  | pattern ->
    let snap = t.snapshot in
    (match Hashtbl.find_opt snap.rels pattern.pred with
    | None -> Error (Printf.sprintf "unknown predicate %s" pattern.pred)
    | Some rel ->
      let arity = Datalog.Relation.arity rel in
      let args = Array.of_list pattern.args in
      let nargs = Array.length args in
      if
        Array.exists
          (function Datalog.Ast.Agg _ -> true | _ -> false)
          args
      then Error "aggregate terms are not allowed in query patterns"
      else if nargs > 0 && nargs <> arity then
        Error
          (Printf.sprintf "%s has arity %d, not %d" pattern.pred arity nargs)
      else begin
        (* nargs = 0: bare predicate, match every fact *)
        let syms = Datalog.Database.symbols t.session.db in
        let const_code =
          Array.map
            (function
              | Datalog.Ast.Const c -> Some (Datalog.Symbol.intern syms c)
              | Datalog.Ast.Var _ | Datalog.Ast.Agg _ -> None)
            args
        in
        (* positions sharing a named variable must agree; [_] never
           constrains *)
        let groups = Hashtbl.create 4 in
        Array.iteri
          (fun i term ->
            match term with
            | Datalog.Ast.Var v when v <> "_" ->
              Hashtbl.replace groups v
                (i
                :: Option.value (Hashtbl.find_opt groups v) ~default:[])
            | _ -> ())
          args;
        let matches (tup : Datalog.Relation.tuple) =
          let ok = ref true in
          Array.iteri
            (fun i code ->
              match code with
              | Some code -> if tup.(i) <> code then ok := false
              | None -> ())
            const_code;
          if !ok then
            Hashtbl.iter
              (fun _ positions ->
                match positions with
                | p0 :: rest ->
                  List.iter
                    (fun p -> if tup.(p) <> tup.(p0) then ok := false)
                    rest
                | [] -> ())
              groups;
          !ok
        in
        let facts =
          Datalog.Relation.fold
            (fun acc tup ->
              if matches tup then
                Datalog.Database.tuple_to_atom t.session.db pattern.pred tup
                :: acc
              else acc)
            [] rel
        in
        Ok (List.sort Stdlib.compare facts, snap.snap_epoch)
      end)

let export t path =
  let labels = t.labels in
  let task_label c =
    if c >= 0 && c < Array.length labels then labels.(c)
    else string_of_int c
  in
  Obs.Export.to_file ~task_label path t.obs
