(* Multicore executor tests. The container may expose a single core, so
   these check protocol correctness (coverage, single execution,
   precedence on real timestamps, deadlock detection) rather than
   wall-clock speedup. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let run_checked ?(domains = 3) ?(work_unit = 5e-5) trace factory =
  let r = Parallel.Executor.run ~domains ~work_unit ~sched:factory trace in
  (match Parallel.Executor.check trace r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid parallel schedule: %s" factory.Sched.Intf.fname e);
  r

let all_schedulers_valid () =
  let trace = Workload.Pathological.unit_layers ~width:10 ~layers:6 ~fanout:2 ~seed:11 in
  List.iter
    (fun factory ->
      let r = run_checked trace factory in
      check_int
        (Printf.sprintf "%s executes the active set" factory.Sched.Intf.fname)
        60 r.Parallel.Executor.tasks_executed)
    [
      Sched.Level_based.factory;
      Sched.Lookahead.factory ~k:3;
      Sched.Logicblox.factory;
      Sched.Signal.factory;
      Sched.Hybrid.factory;
    ]

let partial_activation_respected () =
  (* chain whose second half never activates *)
  let graph = Dag.Graph.of_edges ~nodes:6 [| (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) |] in
  let trace =
    Workload.Trace.create ~name:"half" ~graph
      ~kind:(Array.make 6 Workload.Trace.Task)
      ~shape:(Array.make 6 Workload.Trace.Unit)
      ~initial:[| 0 |]
      ~edge_changed:[| true; true; false; true; true |]
  in
  let r = run_checked trace Sched.Hybrid.factory in
  check_int "stops at the dead edge" 3 r.Parallel.Executor.tasks_executed;
  check_int "activations counted" 3 r.Parallel.Executor.tasks_activated

let precedence_on_wallclock () =
  let trace = Workload.Pathological.tight_example ~levels:8 in
  let r = run_checked ~domains:4 trace Sched.Level_based.factory in
  (* sanity beyond [check]: the j-chain must appear in order *)
  let finish = Array.make 64 0.0 in
  Array.iter
    (fun e -> finish.(e.Parallel.Executor.task) <- e.Parallel.Executor.finish)
    r.Parallel.Executor.log;
  Array.iter
    (fun (e : Parallel.Executor.task_record) ->
      if e.task >= 1 && e.task < 8 then
        check_bool "chain ordered" true (e.start >= finish.(e.task - 1) -. 1e-6))
    r.Parallel.Executor.log

let deadlock_detected () =
  let lazy_factory =
    {
      Sched.Intf.fname = "lazy";
      make =
        (fun _g ->
          {
            Sched.Intf.name = "lazy";
            on_activated = (fun _ -> ());
            on_started = (fun _ -> ());
            on_completed = (fun _ -> ());
            next_ready = (fun () -> None);
            ops = Sched.Intf.zero_ops ();
            memory_words = (fun () -> 0);
          })
    }
  in
  let trace = Workload.Pathological.deep_chain ~n:3 in
  match Parallel.Executor.run ~domains:2 ~sched:lazy_factory trace with
  | exception Failure msg ->
    check_bool "mentions the stall" true
      (String.length msg > 0
      && String.sub msg 0 8 = "Executor")
  | _ -> Alcotest.fail "expected a deadlock failure"

let work_accounting () =
  let graph = Dag.Graph.empty 3 in
  let trace =
    Workload.Trace.create ~name:"w" ~graph
      ~kind:(Array.make 3 Workload.Trace.Task)
      ~shape:[| Workload.Trace.Seq 2.0; Seq 3.0; Seq 4.0 |]
      ~initial:[| 0; 1; 2 |] ~edge_changed:[||]
  in
  let r = run_checked trace Sched.Level_based.factory in
  Alcotest.(check (float 1e-9)) "work executed" 9.0 r.Parallel.Executor.work_executed;
  check_bool "wall at least the critical work" true
    (r.Parallel.Executor.wall_makespan >= 4.0 *. 5e-5 *. 0.5)

let agrees_with_simulator_counts () =
  let trace = Workload.Pathological.broom ~spine:15 ~fan:20 in
  let r = run_checked trace Sched.Hybrid.factory in
  let sim =
    Simulator.Engine.run
      ~config:{ Simulator.Engine.procs = 3; op_cost = 0.0; record_log = false }
      ~sched:Sched.Hybrid.factory trace
  in
  check_int "same execution count"
    sim.Simulator.Engine.metrics.Simulator.Metrics.tasks_executed
    r.Parallel.Executor.tasks_executed

let () =
  Alcotest.run "parallel"
    [
      ( "executor",
        [
          test `Quick "all schedulers valid on real domains" all_schedulers_valid;
          test `Quick "partial activation respected" partial_activation_respected;
          test `Quick "precedence on wall clock" precedence_on_wallclock;
          test `Quick "deadlock detected" deadlock_detected;
          test `Quick "work accounting" work_accounting;
          test `Quick "agrees with the simulator" agrees_with_simulator_counts;
        ] );
    ]
