lib/dag/critical_path.ml: Array Graph Topo
