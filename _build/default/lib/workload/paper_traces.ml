type spec = {
  id : int;
  nodes : int;
  edges : int;
  initial_tasks : int;
  active_jobs : int;
  levels : int;
  target_exec : float;
  paper_makespan_logicblox : float option;
  paper_overhead_logicblox : float option;
  paper_makespan_levelbased : float option;
  paper_overhead_levelbased : float option;
  paper_makespan_hybrid : float option;
  paper_overhead_hybrid : float option;
  paper_lbl : (int * float) list;
}

let processors = 8

(* Table I structure; Table II/III timings. [target_exec] is the
   published makespan of the scheduler least distorted by overhead,
   minus its reported overhead where available. *)
let specs =
  [|
    {
      id = 1; nodes = 64910; edges = 101327; initial_tasks = 5;
      active_jobs = 532; levels = 171; target_exec = 26.5;
      paper_makespan_logicblox = Some 26.5; paper_overhead_logicblox = None;
      paper_makespan_levelbased = Some 57.74; paper_overhead_levelbased = None;
      paper_makespan_hybrid = None; paper_overhead_hybrid = None;
      paper_lbl = [ (5, 36.72); (10, 33.09); (15, 31.25); (20, 30.99) ];
    };
    {
      id = 2; nodes = 64903; edges = 101319; initial_tasks = 16;
      active_jobs = 1936; levels = 171; target_exec = 9736.0;
      paper_makespan_logicblox = Some 9736.0; paper_overhead_logicblox = None;
      paper_makespan_levelbased = Some 20979.3; paper_overhead_levelbased = None;
      paper_makespan_hybrid = None; paper_overhead_hybrid = None;
      paper_lbl = [ (5, 11906.9); (10, 9846.16); (15, 9866.64); (20, 9860.42) ];
    };
    {
      id = 3; nodes = 29185; edges = 41506; initial_tasks = 76;
      active_jobs = 560; levels = 149; target_exec = 187.0;
      paper_makespan_logicblox = Some 187.0; paper_overhead_logicblox = None;
      paper_makespan_levelbased = Some 448.40; paper_overhead_levelbased = None;
      paper_makespan_hybrid = None; paper_overhead_hybrid = None;
      paper_lbl = [ (5, 299.34); (10, 285.91); (15, 230.22); (20, 229.34) ];
    };
    {
      id = 4; nodes = 64507; edges = 100779; initial_tasks = 26;
      active_jobs = 1342; levels = 171; target_exec = 303.0;
      paper_makespan_logicblox = Some 303.0; paper_overhead_logicblox = None;
      paper_makespan_levelbased = Some 866.66; paper_overhead_levelbased = None;
      paper_makespan_hybrid = None; paper_overhead_hybrid = None;
      paper_lbl = [ (5, 576.49); (10, 490.15); (15, 444.67); (20, 426.22) ];
    };
    {
      id = 5; nodes = 1719; edges = 2430; initial_tasks = 6;
      active_jobs = 296; levels = 39; target_exec = 23.0;
      paper_makespan_logicblox = Some 23.0; paper_overhead_logicblox = None;
      paper_makespan_levelbased = Some 29.32; paper_overhead_levelbased = None;
      paper_makespan_hybrid = None; paper_overhead_hybrid = None;
      paper_lbl = [ (5, 24.52); (10, 24.52); (15, 24.52); (20, 24.52) ];
    };
    {
      id = 6; nodes = 379500; edges = 557702; initial_tasks = 125544;
      active_jobs = 126979; levels = 11; target_exec = 0.46;
      paper_makespan_logicblox = Some 33.24; paper_overhead_logicblox = Some 21.69;
      paper_makespan_levelbased = Some 0.49; paper_overhead_levelbased = Some 0.027;
      paper_makespan_hybrid = Some 21.93; paper_overhead_hybrid = Some 10.89;
      paper_lbl = [];
    };
    {
      id = 7; nodes = 35283; edges = 50511; initial_tasks = 76;
      active_jobs = 645; levels = 198; target_exec = 155.66;
      paper_makespan_logicblox = Some 155.77; paper_overhead_logicblox = Some 0.109;
      paper_makespan_levelbased = Some 348.35; paper_overhead_levelbased = Some 3.8e-5;
      paper_makespan_hybrid = Some 187.08; paper_overhead_hybrid = Some 0.077;
      paper_lbl = [];
    };
    {
      id = 8; nodes = 35283; edges = 50511; initial_tasks = 9;
      active_jobs = 177; levels = 198; target_exec = 28.67;
      paper_makespan_logicblox = Some 28.69; paper_overhead_logicblox = Some 0.022;
      paper_makespan_levelbased = Some 28.29; paper_overhead_levelbased = Some 9.0e-6;
      paper_makespan_hybrid = Some 25.52; paper_overhead_hybrid = Some 0.020;
      paper_lbl = [];
    };
    {
      id = 9; nodes = 65541; edges = 102219; initial_tasks = 10;
      active_jobs = 111; levels = 171; target_exec = 0.037;
      paper_makespan_logicblox = Some 0.048; paper_overhead_logicblox = Some 0.0107;
      paper_makespan_levelbased = Some 0.037; paper_overhead_levelbased = Some 1.3e-5;
      paper_makespan_hybrid = Some 0.041; paper_overhead_hybrid = Some 0.009;
      paper_lbl = [];
    };
    {
      id = 10; nodes = 65541; edges = 102219; initial_tasks = 16;
      active_jobs = 1936; levels = 171; target_exec = 9892.96;
      paper_makespan_logicblox = Some 9893.29; paper_overhead_logicblox = Some 0.327;
      paper_makespan_levelbased = Some 20897.9; paper_overhead_levelbased = Some 1.59e-4;
      paper_makespan_hybrid = Some 10123.74; paper_overhead_hybrid = Some 0.289;
      paper_lbl = [];
    };
    {
      id = 11; nodes = 465127; edges = 465158; initial_tasks = 131104;
      active_jobs = 132162; levels = 5; target_exec = 667.35;
      paper_makespan_logicblox = Some 688.38; paper_overhead_logicblox = Some 21.03;
      paper_makespan_levelbased = Some 694.24; paper_overhead_levelbased = Some 0.042;
      paper_makespan_hybrid = Some 630.01; paper_overhead_hybrid = Some 7.47;
      paper_lbl = [];
    };
  |]

let spec id =
  if id < 1 || id > Array.length specs then
    invalid_arg (Printf.sprintf "Paper_traces.spec: no job trace #%d" id);
  specs.(id - 1)

(* Fraction of activatable task nodes: 20134/64910 for trace #1
   (Figure 1); reused elsewhere, except the shallow bulk-update traces
   where every node is a task. *)
let task_fraction s =
  if s.initial_tasks > 1000 then 1.0
  else if s.id = 1 then 20134.0 /. 64910.0
  else 0.31

(* Figure 1: the five updated tasks of trace #1 have 1,680 descendants. *)
let descendant_target s = if s.id = 1 then Some 1680 else None

(* Seeds chosen (once, offline) so the activation-closure calibration
   lands on the published active-job count exactly; the percolation is
   chunky on a few structures, where a different seed gives the greedy
   refinement finer cones to work with. *)
let seed_of = function 4 -> 10004 | 5 -> 8005 | id -> 7000 + id

let generate id =
  let s = spec id in
  let params =
    {
      Synthetic.nodes = s.nodes;
      edges = s.edges;
      levels = s.levels;
      initial = s.initial_tasks;
      active_jobs = s.active_jobs;
      descendants = descendant_target s;
      task_fraction = task_fraction s;
      seed = seed_of s.id;
    }
  in
  let name = Printf.sprintf "jobtrace-%d" s.id in
  let duration rng _u = Trace.Seq (Prelude.Rng.lognormal rng ~mu:0.0 ~sigma:0.9) in
  let t = Synthetic.generate ~duration ~name params in
  (* Calibrate durations: the execution part of the published makespan
     is bounded below by both the active critical path and w/P. *)
  let cp = Trace.active_critical_path t in
  let w = Trace.total_active_work t in
  let estimate = Float.max cp (w /. float_of_int processors) in
  if estimate <= 0.0 then t
  else Synthetic.scale_shapes t ~factor:(s.target_exec /. estimate)
