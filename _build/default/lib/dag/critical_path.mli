(** Weighted critical path.

    The critical path [C] of a DAG with node weights is the maximum
    total weight along any directed path. The LevelBased makespan bound
    for arbitrary jobs is O(w/P + C) (Section II-B). *)

val length : Graph.t -> weights:float array -> float
(** Maximum path weight (sum of node weights along the path). Zero for
    an empty graph. @raise Invalid_argument on a cycle. *)

val path : Graph.t -> weights:float array -> int list
(** One maximizing path, source to sink order. *)

val longest_from_sources : Graph.t -> weights:float array -> float array
(** Per-node maximum path weight ending at that node (inclusive). *)
