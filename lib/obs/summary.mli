(** Measured makespan breakdown.

    Aggregates a trace into per-worker busy / scheduler / steal /
    park / idle seconds, task and steal counts, DRed phase totals and
    a critical-path utilization figure
    ([total busy / (workers x makespan)]). "Scheduler" time is the
    measured cost of the batched scheduler lock — wait plus hold — the
    quantity the paper models with abstract op counts; setting the two
    against each other is the point of this module. *)

type event = { wid : int; kind : Event.kind; t0_ns : int; t1_ns : int; arg : int }
(** A normalized event: a closed span [t0, t1] (equal for instants)
    with its payload argument. *)

type worker = {
  wid : int;
  busy_s : float;  (** inside executor tasks (or DRed phases when the
                       worker ran no executor tasks — the serial path) *)
  sched_s : float;  (** scheduler-lock sections, wait + hold *)
  steal_s : float;  (** steal attempts, successful or not *)
  park_s : float;  (** blocked on the eventcount *)
  idle_s : float;  (** makespan minus the above, clamped at 0 *)
  tasks : int;
  steal_attempts : int;
  stolen : int;
  wakes : int;
  events : int;
  dropped : int;
}

type t = {
  workers : worker array;
  makespan_s : float;  (** first event start to last event end *)
  busy_s : float;
  sched_s : float;
  steal_s : float;
  park_s : float;
  idle_s : float;
  utilization : float;
  dred_delete_s : float;
  dred_rederive_s : float;
  dred_insert_s : float;
  cnt_propagate_s : float;
  cnt_backward_s : float;
  cnt_forward_s : float;
      (** counting-maintenance phase totals; like the DRed phases they
          count toward a worker's busy time on the serial path *)
  cnt_o1_hits : int;
      (** deletion-suspects disposed of by the O(1) well-founded
          support index, no body re-evaluation *)
  cnt_full_probes : int;
      (** deletion-suspects that needed a full goal-directed probe *)
  srv_commit_s : float;
      (** total update-server commit-span seconds (admission to
          snapshot publication); the maintenance phases inside a
          commit do their own busy accounting, so this is not added
          to any worker's busy time *)
  srv_epoch_s : float;  (** total closed-epoch lifetime seconds *)
  srv_commits : int;  (** server commits recorded *)
  srv_epochs : int;  (** server epochs closed (snapshot superseded) *)
  srv_admitted : int;  (** client operations admitted across commits *)
  events : int;
  dropped : int;
}

val of_trace : Trace.t -> t
(** Summarize live rings (after the writers have quiesced). *)

val of_events : domains:int -> ?dropped:int array -> event list -> t
(** Summarize normalized events, e.g. re-read from a Chrome file by
    {!Export.events_of_json}. [dropped] is per-worker wraparound loss
    when known. *)

val sched_overhead_s : t -> float
(** Total measured scheduler time (= [sched_s]); named for the
    measured-vs-modeled comparison in bench output. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable table (use within a vertical box). *)

val json : t -> string
(** The breakdown as a JSON object string, for embedding in
    [BENCH_*.json]. *)
