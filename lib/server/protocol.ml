(* Line protocol: keyword + optional payload. Payloads stay raw text —
   Datalog parsing is admission's job, so a bad atom is a per-command
   error reply, not a protocol failure. *)

type command =
  | Insert of string
  | Remove of string
  | Commit
  | Query of string
  | Stats
  | Help
  | Quit

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

(* split a trimmed line into (keyword, trimmed rest) *)
let split line =
  let n = String.length line in
  let rec gap i = if i < n && not (is_space line.[i]) then gap (i + 1) else i in
  let cut = gap 0 in
  (String.sub line 0 cut, trim (String.sub line cut (n - cut)))

let parse line =
  let line = trim line in
  if line = "" then Error "empty command; try help"
  else begin
    let keyword, rest = split line in
    let with_payload what mk =
      if rest = "" then
        Error (Printf.sprintf "%s needs a fact, e.g. %s edge(\"a\", \"b\")" what what)
      else Ok (mk rest)
    in
    let bare cmd =
      if rest = "" then Ok cmd
      else Error (Printf.sprintf "%s takes no argument (got %S)" keyword rest)
    in
    match keyword with
    | "insert" -> with_payload "insert" (fun a -> Insert a)
    | "remove" -> with_payload "remove" (fun a -> Remove a)
    | "query" ->
      if rest = "" then
        Error "query needs a pattern, e.g. query path(\"a\", X)"
      else Ok (Query rest)
    | "commit" -> bare Commit
    | "stats" -> bare Stats
    | "help" -> bare Help
    | "quit" -> bare Quit
    | _ -> Error (Printf.sprintf "unknown command %S; try help" keyword)
  end

let format = function
  | Insert a -> "insert " ^ a
  | Remove a -> "remove " ^ a
  | Commit -> "commit"
  | Query a -> "query " ^ a
  | Stats -> "stats"
  | Help -> "help"
  | Quit -> "quit"
