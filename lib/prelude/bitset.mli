(** Fixed-capacity bitsets over [0, capacity).

    Backed by an [int array] with [Sys.int_size] bits per word. Used by
    the LogicBlox scheduler for interval-vs-active-set intersection
    queries, where [exists_in_range] is the hot operation. *)

type t

val create : int -> t
(** [create n] is an empty bitset over the universe [0, n). *)

val capacity : t -> int

val storage_words : t -> int
(** Number of words in the backing array: [(capacity + int_size - 1) /
    int_size + 1] (one slack word). The reference for memory-footprint
    accounting of bitset-backed scheduler state. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int
(** Number of elements currently set. O(1): maintained incrementally. *)

val is_empty : t -> bool

val clear : t -> unit

val exists_in_range : t -> lo:int -> hi:int -> bool
(** [exists_in_range t ~lo ~hi] is [true] iff some element of [t] lies in
    the inclusive range [lo..hi]. Word-parallel: O((hi-lo)/int_size). *)

val first_in_range : t -> lo:int -> hi:int -> int option
(** Smallest member of [t] in [lo..hi], if any. *)

val iter : (int -> unit) -> t -> unit

val to_list : t -> int list

val copy : t -> t
