(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI) plus the analytical claims of Sections II-V,
   on the reconstructed workloads of DESIGN.md.

   Usage:
     dune exec bench/main.exe                # everything
     dune exec bench/main.exe -- table2 fig2 # selected sections

   Sections: table1 table2 table3 fig1 fig2 overhead memory bounds
             rescue datalog datalog-smoke maintain-par maintain-par-smoke
             maintain-shard maintain-shard-smoke maintain-count
             maintain-count-smoke serve serve-smoke ablation parallel
             dispatch dispatch-smoke stream micro

   [--legacy-executor] restricts the dispatch sections to the retained
   big-lock baseline (and implies the dispatch section when no section
   is named). *)

let procs = Workload.Paper_traces.processors

let banner fmt =
  Format.printf "@.==========================================================@.";
  Format.kfprintf
    (fun ppf -> Format.fprintf ppf "@.==========================================================@.")
    Format.std_formatter fmt

(* Trace cache: each paper trace is generated once per process. *)
let trace_cache : (int, Workload.Trace.t) Hashtbl.t = Hashtbl.create 11

let paper_trace id =
  match Hashtbl.find_opt trace_cache id with
  | Some t -> t
  | None ->
    let t = Workload.Paper_traces.generate id in
    Hashtbl.add trace_cache id t;
    t

let run_sched ?(p = procs) trace name =
  Incr_sched.schedule ~procs:p ~sched:name trace

let opt_str = function Some v -> Printf.sprintf "%12.3f" v | None -> "           -"

(* ---------------------------------------------------------------- *)
(* Table I: structural statistics of the job traces                  *)
(* ---------------------------------------------------------------- *)

let table1 () =
  banner "Table I: workload traces (paper target vs reconstruction)";
  Format.printf
    "%-6s %10s %10s %9s %9s %7s   %10s %10s %9s %9s %7s@." "trace" "nodes" "edges"
    "initial" "active" "levels" "nodes'" "edges'" "initial'" "active'" "levels'";
  for id = 1 to 11 do
    let sp = Workload.Paper_traces.spec id in
    let s = Workload.Trace.stats (paper_trace id) in
    Format.printf "#%-5d %10d %10d %9d %9d %7d   %10d %10d %9d %9d %7d@." id
      sp.Workload.Paper_traces.nodes sp.Workload.Paper_traces.edges
      sp.Workload.Paper_traces.initial_tasks sp.Workload.Paper_traces.active_jobs
      sp.Workload.Paper_traces.levels s.Workload.Trace.nodes s.Workload.Trace.edges
      s.Workload.Trace.initial_tasks s.Workload.Trace.active_jobs
      s.Workload.Trace.levels
  done;
  Format.printf
    "@.(primed columns: our reconstruction; nodes/edges/initial/levels are exact@.\
     by construction, active jobs matched by threshold calibration.)@."

(* ---------------------------------------------------------------- *)
(* Table II: total makespan, traces #1-#5, P = 8                     *)
(* ---------------------------------------------------------------- *)

let table2 () =
  banner "Table II: total makespan (s), traces #1-#5, P=%d" procs;
  Format.printf "%-6s | %-6s %12s %12s %12s %12s %12s %12s@." "trace" "" "LogicBlox"
    "LevelBased" "LBL(5)" "LBL(10)" "LBL(15)" "LBL(20)";
  for id = 1 to 5 do
    let t = paper_trace id in
    let sp = Workload.Paper_traces.spec id in
    let m name = (run_sched t name).Simulator.Metrics.makespan in
    let ours =
      [ m "logicblox"; m "levelbased"; m "lbl:5"; m "lbl:10"; m "lbl:15"; m "lbl:20" ]
    in
    let paper =
      [
        sp.Workload.Paper_traces.paper_makespan_logicblox;
        sp.Workload.Paper_traces.paper_makespan_levelbased;
        List.assoc_opt 5 sp.Workload.Paper_traces.paper_lbl;
        List.assoc_opt 10 sp.Workload.Paper_traces.paper_lbl;
        List.assoc_opt 15 sp.Workload.Paper_traces.paper_lbl;
        List.assoc_opt 20 sp.Workload.Paper_traces.paper_lbl;
      ]
    in
    Format.printf "#%-5d | %-6s" id "paper";
    List.iter (fun v -> Format.printf " %s" (opt_str v)) paper;
    Format.printf "@.%-6s | %-6s" "" "ours";
    List.iter (fun v -> Format.printf " %12.3f" v) ours;
    Format.printf "@."
  done;
  Format.printf
    "@.(expected shape: LevelBased worst, LBL(k) improving with k and@.\
     approaching LogicBlox by k=15-20; scheduling overhead negligible here.)@."

(* ---------------------------------------------------------------- *)
(* Table III: makespan and scheduling overhead, traces #6-#11        *)
(* ---------------------------------------------------------------- *)

let table3 () =
  banner "Table III: (makespan s, overhead s), traces #6-#11, P=%d" procs;
  Format.printf "%-6s %-6s | %12s %12s | %12s %12s | %12s %12s@." "trace" "" "LogicBlox"
    "" "LevelBased" "" "Hybrid" "";
  Format.printf "%-6s %-6s | %12s %12s | %12s %12s | %12s %12s@." "" "" "makespan"
    "overhead" "makespan" "overhead" "makespan" "overhead";
  for id = 6 to 11 do
    let t = paper_trace id in
    let sp = Workload.Paper_traces.spec id in
    Format.printf "#%-5d %-6s | %s %s | %s %s | %s %s@." id "paper"
      (opt_str sp.Workload.Paper_traces.paper_makespan_logicblox)
      (opt_str sp.Workload.Paper_traces.paper_overhead_logicblox)
      (opt_str sp.Workload.Paper_traces.paper_makespan_levelbased)
      (opt_str sp.Workload.Paper_traces.paper_overhead_levelbased)
      (opt_str sp.Workload.Paper_traces.paper_makespan_hybrid)
      (opt_str sp.Workload.Paper_traces.paper_overhead_hybrid);
    let mx = run_sched t "logicblox" in
    let ml = run_sched t "levelbased" in
    let mh = run_sched t "hybrid" in
    Format.printf "%-6s %-6s | %12.3f %12.4f | %12.3f %12.4f | %12.3f %12.4f@."
      "" "ours" mx.Simulator.Metrics.makespan mx.Simulator.Metrics.sched_overhead
      ml.Simulator.Metrics.makespan ml.Simulator.Metrics.sched_overhead
      mh.Simulator.Metrics.makespan mh.Simulator.Metrics.sched_overhead;
    let ratio =
      if mh.Simulator.Metrics.sched_overhead > 0.0 then
        mx.Simulator.Metrics.sched_overhead /. mh.Simulator.Metrics.sched_overhead
      else infinity
    in
    Format.printf "%-6s %-6s | hybrid cuts LogicBlox overhead by %.1fx@." "" "" ratio
  done;
  Format.printf
    "@.(expected shape: hybrid makespan tracks the better of the other two;@.\
     hybrid overhead consistently below LogicBlox, sharply on the shallow@.\
     traces #6 and #11.)@."

(* ---------------------------------------------------------------- *)
(* Figure 1: anatomy of trace #1's DAG                               *)
(* ---------------------------------------------------------------- *)

let fig1 () =
  banner "Figure 1: anatomy of job trace #1";
  let t = paper_trace 1 in
  let s = Workload.Trace.stats t in
  let g = t.Workload.Trace.graph in
  let descendants = Dag.Reach.descendants_of_set g t.Workload.Trace.initial in
  let active = Workload.Trace.active_set t in
  Format.printf "nodes (predicate nodes)           %d  (paper: 64,910)@."
    s.Workload.Trace.nodes;
  Format.printf "edges (dependencies)              %d  (paper: 101,327)@."
    s.Workload.Trace.edges;
  Format.printf "activatable task nodes            %d  (paper: 20,134)@."
    s.Workload.Trace.activatable;
  Format.printf "initially updated tasks           %d  (paper: 5)@."
    s.Workload.Trace.initial_tasks;
  Format.printf "total descendants of the update   %d  (paper: 1,680)@."
    (Prelude.Bitset.cardinal descendants);
  Format.printf "descendants actually activated    %d  (paper: 532)@."
    (Prelude.Bitset.cardinal active - s.Workload.Trace.initial_tasks);
  (* export the active subgraph for rendering (the full DAG would print
     a mile long at 300 DPI, as the paper notes) *)
  let ids = Prelude.Bitset.to_list active in
  let remap = Hashtbl.create 64 in
  List.iteri (fun i u -> Hashtbl.add remap u i) ids;
  let b = Dag.Graph.Builder.create ~nodes:(List.length ids) () in
  Dag.Graph.iter_edges g (fun ~src ~dst ~eid:_ ->
      match (Hashtbl.find_opt remap src, Hashtbl.find_opt remap dst) with
      | Some a, Some c -> ignore (Dag.Graph.Builder.add_edge b a c)
      | _ -> ());
  let sub = Dag.Graph.Builder.build b in
  let path = "fig1_active_subgraph.dot" in
  Dag.Dot.to_file path sub;
  Format.printf "active subgraph written to %s (%d nodes, %d edges)@." path
    (Dag.Graph.node_count sub) (Dag.Graph.edge_count sub)

(* ---------------------------------------------------------------- *)
(* Figure 2 / Theorem 9: the tight example                           *)
(* ---------------------------------------------------------------- *)

let fig2 () =
  banner "Figure 2 / Theorem 9: tight example, LevelBased Theta(L^2) vs optimal Theta(L)";
  Format.printf "%8s %14s %14s %14s %14s %10s@." "L" "LevelBased" "LBL(L)" "Hybrid"
    "Clairvoyant" "LB/OPT";
  List.iter
    (fun levels ->
      let t = Workload.Pathological.tight_example ~levels in
      let config =
        { Simulator.Engine.procs = levels + 2; op_cost = 0.0; record_log = false }
      in
      let m sched =
        (Simulator.Engine.run ~config ~sched t).Simulator.Engine.metrics
          .Simulator.Metrics.makespan
      in
      let lb = m Sched.Level_based.factory in
      let lbl = m (Sched.Lookahead.factory ~k:levels) in
      let hy = m Sched.Hybrid.factory in
      let opt = m (Simulator.Engine.clairvoyant_factory t) in
      Format.printf "%8d %14.1f %14.1f %14.1f %14.1f %10.2f@." levels lb lbl hy opt
        (lb /. opt))
    [ 8; 16; 32; 64; 128; 256 ];
  Format.printf
    "@.(LB/OPT grows linearly in L: the Theta(L^2) vs Theta(L) separation;@.\
     lookahead and the hybrid both recover the optimal shape.)@."

(* ---------------------------------------------------------------- *)
(* Theorem 2: scheduler decision cost scaling                        *)
(* ---------------------------------------------------------------- *)

let overhead () =
  banner "Theorem 2: decision-operation scaling (broom instances)";
  Format.printf "%10s %16s %16s %16s %12s@." "n" "LevelBased ops" "LogicBlox ops"
    "Hybrid ops" "LBX/LB";
  List.iter
    (fun n ->
      let t = Workload.Pathological.broom ~spine:n ~fan:n in
      let ops name = Sched.Intf.total_ops (run_sched ~p:8 t name).Simulator.Metrics.ops in
      let lb = ops "levelbased" and lbx = ops "logicblox" and hy = ops "hybrid" in
      Format.printf "%10d %16d %16d %16d %12.1f@." (2 * n) lb lbx hy
        (float_of_int lbx /. float_of_int lb))
    [ 250; 500; 1000; 2000 ];
  Format.printf
    "@.(LogicBlox ops grow quadratically — the O(n^3) family of Section II-C —@.\
     while LevelBased stays linear in n + L, Theorem 2; the hybrid tracks@.\
     LevelBased because the shared ready queue starves the scan loop.)@."

let memory () =
  banner "Interval-list memory: O(V^2) worst case vs O(V) LevelBased state";
  Format.printf "%10s %18s %18s %12s@." "width" "LogicBlox words" "LevelBased words"
    "ratio";
  List.iter
    (fun width ->
      let t =
        Workload.Pathological.interval_blowup ~width ~layers:4 ~density:0.5 ~seed:99
      in
      let m name = (run_sched ~p:8 t name).Simulator.Metrics.memory_words in
      let lbx = m "logicblox" and lb = m "levelbased" in
      Format.printf "%10d %18d %18d %12.1f@." width lbx lb
        (float_of_int lbx /. float_of_int lb))
    [ 50; 100; 200; 400 ];
  Format.printf "@.(doubling the width quadruples the LogicBlox footprint.)@."

(* ---------------------------------------------------------------- *)
(* Lemmas 3 and 5: makespan bounds on random workloads               *)
(* ---------------------------------------------------------------- *)

let bounds () =
  banner "Lemmas 3/5: LevelBased makespan <= w/P + L on unit / fully-parallel tasks";
  let check_kind name shape_of =
    let worst = ref 0.0 in
    for seed = 1 to 40 do
      let t0 =
        Workload.Pathological.unit_layers ~width:(10 + (seed mod 13))
          ~layers:(5 + (seed mod 17)) ~fanout:2 ~seed
      in
      let n = Dag.Graph.node_count t0.Workload.Trace.graph in
      let t = { t0 with Workload.Trace.shape = Array.init n shape_of } in
      let p = 4 in
      let m =
        (Simulator.Engine.run
           ~config:{ Simulator.Engine.procs = p; op_cost = 0.0; record_log = false }
           ~sched:Sched.Level_based.factory t)
          .Simulator.Engine.metrics
      in
      let w = Workload.Trace.total_active_work t in
      let levels = (Workload.Trace.stats t).Workload.Trace.levels in
      let bound = (w /. float_of_int p) +. float_of_int levels in
      let ratio = m.Simulator.Metrics.makespan /. bound in
      if ratio > !worst then worst := ratio
    done;
    Format.printf "  %-24s worst makespan / (w/P + L) over 40 instances: %.3f@." name
      !worst;
    if !worst > 1.0 +. 1e-9 then Format.printf "  *** BOUND VIOLATED ***@."
  in
  check_kind "unit tasks" (fun _ -> Workload.Trace.Unit);
  check_kind "fully parallelizable" (fun i ->
      Workload.Trace.Par (1.0 +. float_of_int (i mod 7)))

(* ---------------------------------------------------------------- *)
(* Section VI anecdote: the hybrid rescue                            *)
(* ---------------------------------------------------------------- *)

let rescue () =
  banner "Section VI anecdote: instance where the hybrid runs ~100x ahead";
  let t = Workload.Pathological.broom ~spine:5000 ~fan:5000 in
  let lbx = run_sched ~p:8 t "logicblox" in
  let hy = run_sched ~p:8 t "hybrid" in
  Format.printf "LogicBlox : makespan %10.3f  overhead %10.4f  ops %12d@."
    lbx.Simulator.Metrics.makespan lbx.Simulator.Metrics.sched_overhead
    (Sched.Intf.total_ops lbx.Simulator.Metrics.ops);
  Format.printf "Hybrid    : makespan %10.3f  overhead %10.4f  ops %12d@."
    hy.Simulator.Metrics.makespan hy.Simulator.Metrics.sched_overhead
    (Sched.Intf.total_ops hy.Simulator.Metrics.ops);
  Format.printf "overhead ratio: %.0fx@."
    (lbx.Simulator.Metrics.sched_overhead /. hy.Simulator.Metrics.sched_overhead)

(* ---------------------------------------------------------------- *)
(* Datalog end-to-end: compiled plans vs the interpretive oracle      *)
(* ---------------------------------------------------------------- *)

(* Evaluation-engine benchmark for the rule-compilation layer. Each
   program is materialized from scratch and then maintained through a
   stream of randomized insert/retract batches, once per engine, on twin
   databases fed identical updates; [Eval.databases_agree] is asserted
   after every run so the numbers can only come from equivalent
   computations. Throughput is job tuples per second — derived tuples
   for materialization, net changed tuples for maintenance — so the
   compiled/interpreted speedup equals the wall-time ratio on the same
   job. A final row composes the compiled engine with the low-contention
   parallel executor over a [To_trace]-derived update, against the
   interpreter + big-lock legacy executor baseline. *)

type dlrow = {
  dl_program : string;
  dl_phase : string;  (* "materialize" | "maintain" *)
  dl_engine : string;
  dl_tuples : int;
  dl_seconds : float;
  dl_rate : float;
}

let dl_engines = [ (Datalog.Plan.Interpreted, "interpreted"); (Datalog.Plan.Compiled, "compiled") ]

(* (name, program, update batches): base facts live in the program
   source; deletions rotate through distinct base facts so every batch
   really retracts something, additions are fresh random facts. *)
let dl_programs ~smoke =
  let rng = Prelude.Rng.create 4242 in
  let batches = if smoke then 5 else 30 in
  let mk name rules gen_fact n_base =
    let base = List.init n_base (fun _ -> gen_fact ()) |> List.sort_uniq compare in
    let src =
      String.concat "" (List.map (fun f -> f ^ ".\n") base) ^ rules
    in
    let program = Datalog.Parser.parse src in
    let base_arr = Array.of_list base in
    let cursor = ref 0 in
    let updates =
      List.init batches (fun _ ->
          let adds = List.init 3 (fun _ -> Datalog.Parser.parse_atom (gen_fact ())) in
          let dels =
            List.init 2 (fun _ ->
                let f = base_arr.(!cursor mod Array.length base_arr) in
                incr cursor;
                Datalog.Parser.parse_atom f)
          in
          (adds, dels))
    in
    (name, program, updates)
  in
  let tc_n = if smoke then 40 else 100 in
  let edge () =
    Printf.sprintf {|edge("v%d","v%d")|} (Prelude.Rng.int rng tc_n)
      (Prelude.Rng.int rng tc_n)
  in
  let sg_n = if smoke then 25 else 60 in
  let parent () =
    let c = 1 + Prelude.Rng.int rng (sg_n - 1) in
    Printf.sprintf {|parent("n%d","n%d")|} (Prelude.Rng.int rng c) c
  in
  let ord_n = if smoke then 15 else 40 in
  let line () =
    Printf.sprintf {|line("o%d","i%d",%d)|} (Prelude.Rng.int rng ord_n)
      (Prelude.Rng.int rng (3 * ord_n))
      (1 + Prelude.Rng.int rng 9)
  in
  let syn_n = if smoke then 18 else 36 in
  let e () =
    Printf.sprintf {|e("w%d","w%d")|} (Prelude.Rng.int rng syn_n)
      (Prelude.Rng.int rng syn_n)
  in
  [
    mk "tc-neg"
      "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n\
       node(X) :- edge(X,Y).\nnode(Y) :- edge(X,Y).\n\
       far(X,Y) :- node(X), node(Y), !path(X,Y), X != Y.\n"
      edge
      (if smoke then 90 else 300);
    mk "same-gen"
      "sg(X,Y) :- parent(P,X), parent(P,Y), X != Y.\n\
       sg(X,Y) :- parent(PX,X), sg(PX,PY), parent(PY,Y).\n"
      parent
      (if smoke then 60 else 150);
    mk "orders-agg"
      "total(O, cnt(I), sum(N)) :- line(O, I, N).\n\
       hi(O, max(N)) :- line(O, I, N).\n\
       grand(sum(T)) :- total(O, C, T).\n\
       busy(O) :- total(O, C, T), C >= 3.\n"
      line
      (if smoke then 120 else 400);
    mk "synthetic"
      "t1(X,Y) :- e(X,Y).\nt1(X,Z) :- t1(X,Y), e(Y,Z).\n\
       t2(X,Y) :- t1(X,Y), X != Y.\n\
       t3(X,Z) :- t2(X,Y), t2(Y,Z), X < Z.\n\
       t4(X) :- t3(X,Y), !t2(Y,X).\n\
       t5(X, cnt(Y)) :- t3(X,Y).\n"
      e
      (if smoke then 45 else 110);
  ]

let dl_run_engine engine program updates =
  let db = Datalog.Database.create () in
  let t0 = Unix.gettimeofday () in
  let _, stats = Datalog.Eval.run ~engine db program in
  let mat_s = Unix.gettimeofday () -. t0 in
  let derived =
    List.fold_left (fun acc s -> acc + s.Datalog.Eval.derived) 0 stats
  in
  let changed = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (adds, dels) ->
      let r = Datalog.Incremental.apply ~engine db program ~additions:adds ~deletions:dels in
      List.iter
        (fun (c : Datalog.Incremental.pred_change) ->
          changed := !changed + c.Datalog.Incremental.added + c.Datalog.Incremental.removed)
        r.Datalog.Incremental.changes)
    updates;
  let maint_s = Unix.gettimeofday () -. t0 in
  (db, mat_s, derived, maint_s, !changed)

(* Compiled evaluation composed with the real parallel executor: one
   update's wall time is (maintenance + executing the revealed DAG),
   where task processing time is tuples-examined at 1 us per tuple.
   The baseline is the interpreter feeding the retained big-lock
   executor — the two PRs' gains in one number. *)
let dl_end_to_end ~smoke =
  let rng = Prelude.Rng.create 515 in
  let n = if smoke then 40 else 100 in
  let edge () =
    Printf.sprintf {|edge("v%d","v%d")|} (Prelude.Rng.int rng n) (Prelude.Rng.int rng n)
  in
  let base = List.init (if smoke then 90 else 300) (fun _ -> edge ()) |> List.sort_uniq compare in
  let src =
    String.concat "" (List.map (fun f -> f ^ ".\n") base)
    ^ "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n\
       node(X) :- edge(X,Y).\nnode(Y) :- edge(X,Y).\n\
       far(X,Y) :- node(X), node(Y), !path(X,Y), X != Y.\n"
  in
  let program = Datalog.Parser.parse src in
  let additions = List.init 3 (fun _ -> Datalog.Parser.parse_atom (edge ())) in
  let deletions =
    [ Datalog.Parser.parse_atom (List.hd base); Datalog.Parser.parse_atom (List.nth base 1) ]
  in
  let sched = Sched.Registry.find_exn "levelbased" in
  let run engine legacy =
    let db = Datalog.Database.create () in
    ignore (Datalog.Eval.run ~engine db program);
    let t0 = Unix.gettimeofday () in
    let tt = Datalog.To_trace.of_update ~work_unit:1.0 ~engine db program ~additions ~deletions in
    let maint = Unix.gettimeofday () -. t0 in
    let trace = tt.Datalog.To_trace.trace in
    let domains = 4 in
    let r =
      if legacy then Parallel.Legacy.run ~domains ~work_unit:1e-6 ~sched trace
      else Parallel.Executor.run ~domains ~work_unit:1e-6 ~batch:256 ~sched trace
    in
    (maint, r.Parallel.Executor.wall_makespan, r.Parallel.Executor.tasks_executed)
  in
  let im, iw, _ = run Datalog.Plan.Interpreted true in
  let cm, cw, tasks = run Datalog.Plan.Compiled false in
  let interp_total = im +. iw and comp_total = cm +. cw in
  Format.printf
    "@.end-to-end (tc-neg update, maintenance + parallel execution of the revealed DAG, %d tasks):@."
    tasks;
  Format.printf "  interpreter + legacy executor : %.4f s  (maintain %.4f + execute %.4f)@."
    interp_total im iw;
  Format.printf "  compiled    + new executor    : %.4f s  (maintain %.4f + execute %.4f)@."
    comp_total cm cw;
  Format.printf "  composed speedup: %.2fx@." (interp_total /. Float.max comp_total 1e-9);
  (interp_total, comp_total, tasks)

let datalog_json rows headline end_to_end path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"datalog\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ()));
  (match headline with
  | Some (prog, interp, comp) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"headline\": {\"program\": \"%s\", \"phase\": \"maintain\", \
          \"interpreted_s\": %.6f, \"compiled_s\": %.6f, \
          \"compiled_tuples_per_sec\": %.0f, \"speedup\": %.3f},\n"
         prog interp.dl_seconds comp.dl_seconds comp.dl_rate
         (interp.dl_seconds /. Float.max comp.dl_seconds 1e-9))
  | None -> ());
  (match end_to_end with
  | Some (interp_total, comp_total, tasks) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"end_to_end\": {\"program\": \"tc-neg\", \"tasks\": %d, \
          \"interpreted_plus_legacy_s\": %.6f, \"compiled_plus_executor_s\": %.6f, \
          \"speedup\": %.3f},\n"
         tasks interp_total comp_total (interp_total /. Float.max comp_total 1e-9))
  | None -> ());
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"program\": \"%s\", \"phase\": \"%s\", \"engine\": \"%s\", \
            \"tuples\": %d, \"seconds\": %.6f, \"tuples_per_sec\": %.0f}%s\n"
           r.dl_program r.dl_phase r.dl_engine r.dl_tuples r.dl_seconds r.dl_rate
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "@.wrote %s@." path

let datalog_core ~smoke () =
  banner "Datalog engine: compiled plans vs interpreter (materialize + maintain)";
  let programs = dl_programs ~smoke in
  let rows = ref [] in
  let maint = Hashtbl.create 8 in
  Format.printf "%-12s %-12s %-12s %10s %12s %14s@." "program" "phase" "engine"
    "tuples" "seconds" "tuples/s";
  List.iter
    (fun (name, program, updates) ->
      let results =
        List.map
          (fun (engine, ename) -> (ename, dl_run_engine engine program updates))
          dl_engines
      in
      (match results with
      | [ (_, (db_a, _, _, _, _)); (_, (db_b, _, _, _, _)) ] -> (
        match Datalog.Eval.databases_agree db_a db_b with
        | Ok () -> ()
        | Error e -> Format.printf "  *** ENGINES DISAGREE on %s: %s ***@." name e)
      | _ -> ());
      List.iter
        (fun (ename, (_, mat_s, derived, maint_s, changed)) ->
          let row phase tuples seconds =
            let r =
              { dl_program = name; dl_phase = phase; dl_engine = ename;
                dl_tuples = tuples; dl_seconds = seconds;
                dl_rate = float_of_int tuples /. Float.max seconds 1e-9 }
            in
            rows := r :: !rows;
            Format.printf "%-12s %-12s %-12s %10d %12.4f %14.0f@." name phase ename
              tuples seconds r.dl_rate;
            r
          in
          ignore (row "materialize" derived mat_s);
          let r = row "maintain" changed maint_s in
          Hashtbl.replace maint (name, ename) r)
        results)
    programs;
  let rows = List.rev !rows in
  (* headline: the program where compilation helps maintenance most *)
  let headline =
    List.fold_left
      (fun best (name, _, _) ->
        match (Hashtbl.find_opt maint (name, "interpreted"), Hashtbl.find_opt maint (name, "compiled")) with
        | Some i, Some c ->
          let sp = i.dl_seconds /. Float.max c.dl_seconds 1e-9 in
          (match best with
          | Some (_, bi, bc) when bi.dl_seconds /. Float.max bc.dl_seconds 1e-9 >= sp -> best
          | _ -> Some (name, i, c))
        | _ -> best)
      None programs
  in
  (match headline with
  | Some (prog, i, c) ->
    Format.printf
      "@.headline: %s maintenance — interpreter %.4f s, compiled %.4f s: %.2fx@."
      prog i.dl_seconds c.dl_seconds (i.dl_seconds /. Float.max c.dl_seconds 1e-9)
  | None -> ());
  let e2e = dl_end_to_end ~smoke in
  datalog_json rows
    (Option.map (fun (p, i, c) -> (p, i, c)) headline)
    (Some e2e)
    (if smoke then "BENCH_datalog_smoke.json" else "BENCH_datalog.json")

let datalog () = datalog_core ~smoke:false ()

let datalog_smoke () = datalog_core ~smoke:true ()

(* ---------------------------------------------------------------- *)
(* maintain-par: real parallel maintenance on the executor           *)
(* ---------------------------------------------------------------- *)

(* The paper's Table III quantity, finally measured for real: wall
   clock of DRed maintenance when the condensation components run as
   actual tasks on P worker domains (Incremental.apply_parallel, one
   task per component, LevelBased scheduling) vs the serial walk —
   same compiled engine on both sides, so the ratio isolates the
   scheduling. Workloads: the datalog-section programs plus a wide
   synthetic one (many independent TC groups) whose condensation has
   enough mutually-independent components to keep 8 domains busy. *)

type mp_row = {
  mp_workload : string;
  mp_mode : string;  (* "serial" or "par-N" *)
  mp_seconds : float;
  mp_changed : int;
  mp_speedup : float;  (* serial seconds / this mode's seconds *)
}

let mp_wide ~smoke =
  let rng = Prelude.Rng.create 777 in
  let groups = if smoke then 6 else 48 in
  let verts = if smoke then 12 else 26 in
  let nedges = if smoke then 30 else 90 in
  let batches = if smoke then 3 else 12 in
  let edge g () =
    Printf.sprintf {|edge%d("v%d","v%d")|} g (Prelude.Rng.int rng verts)
      (Prelude.Rng.int rng verts)
  in
  let base =
    List.concat (List.init groups (fun g -> List.init nedges (fun _ -> edge g ())))
    |> List.sort_uniq compare
  in
  let rules =
    String.concat ""
      (List.init groups (fun g ->
           Printf.sprintf
             "path%d(X,Y) :- edge%d(X,Y).\npath%d(X,Z) :- path%d(X,Y), edge%d(Y,Z).\n"
             g g g g g))
  in
  let src = String.concat "" (List.map (fun f -> f ^ ".\n") base) ^ rules in
  let program = Datalog.Parser.parse src in
  let base_arr = Array.of_list base in
  let cursor = ref 0 in
  let updates =
    List.init batches (fun _ ->
        let adds = List.init groups (fun g -> Datalog.Parser.parse_atom (edge g ())) in
        let dels =
          List.init groups (fun _ ->
              let f = base_arr.(!cursor mod Array.length base_arr) in
              incr cursor;
              Datalog.Parser.parse_atom f)
        in
        (adds, dels))
  in
  (Printf.sprintf "wide-%dtc" groups, program, updates)

let mp_run ?(obs = Obs.Trace.disabled) ?(shards = 1) ?serial_threshold ~domains
    program updates =
  let engine = Datalog.Plan.Compiled in
  let db = Datalog.Database.create () in
  ignore (Datalog.Eval.run ~engine db program);
  let changed = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (adds, dels) ->
      let r =
        if domains <= 1 && shards <= 1 then
          Datalog.Incremental.apply ~engine ~obs db program ~additions:adds
            ~deletions:dels
        else
          Datalog.Incremental.apply_parallel ~engine ~domains ~shards
            ?serial_threshold ~obs db program ~additions:adds ~deletions:dels
      in
      List.iter
        (fun (c : Datalog.Incremental.pred_change) ->
          changed := !changed + c.Datalog.Incremental.added + c.Datalog.Incremental.removed)
        r.Datalog.Incremental.changes)
    updates;
  let s = Unix.gettimeofday () -. t0 in
  (db, s, !changed)

let maintain_par_json rows headline breakdown domain_set path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"maintain-par\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host_cores\": %d,\n  \"sched\": \"levelbased\",\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "  \"breakdown\": %s,\n" (Obs.Summary.json breakdown));
  Buffer.add_string b
    (Printf.sprintf "  \"domains\": [%s],\n"
       (String.concat ", " (List.map string_of_int domain_set)));
  (match headline with
  | Some (wl, d, serial_s, par_s) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"headline\": {\"workload\": \"%s\", \"domains\": %d, \
          \"serial_s\": %.6f, \"parallel_s\": %.6f, \"speedup\": %.3f},\n"
         wl d serial_s par_s (serial_s /. Float.max par_s 1e-9))
  | None -> ());
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"mode\": \"%s\", \"changed\": %d, \
            \"seconds\": %.6f, \"speedup\": %.3f}%s\n"
           r.mp_workload r.mp_mode r.mp_changed r.mp_seconds r.mp_speedup
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "@.wrote %s@." path

let maintain_par_core ~smoke () =
  banner "Parallel incremental maintenance: serial vs P-domain DRed (compiled engine)";
  let cores = Domain.recommended_domain_count () in
  let domain_set = if smoke then [ 2 ] else [ 2; 4; 8 ] in
  let workloads = dl_programs ~smoke @ [ mp_wide ~smoke ] in
  let rows = ref [] in
  let best = ref None in
  Format.printf "%-12s %-8s %10s %12s %10s@." "workload" "mode" "changed" "seconds"
    "speedup";
  List.iter
    (fun (name, program, updates) ->
      let db_serial, serial_s, serial_changed = mp_run ~domains:1 program updates in
      let emit mode seconds changed =
        let r =
          { mp_workload = name; mp_mode = mode; mp_seconds = seconds;
            mp_changed = changed; mp_speedup = serial_s /. Float.max seconds 1e-9 }
        in
        rows := r :: !rows;
        Format.printf "%-12s %-8s %10d %12.4f %9.2fx@." name mode changed seconds
          r.mp_speedup
      in
      emit "serial" serial_s serial_changed;
      List.iter
        (fun domains ->
          let db_par, par_s, par_changed = mp_run ~domains program updates in
          (* the differential guarantee, asserted on every bench run:
             parallel maintenance restores exactly the serial database *)
          (match Datalog.Eval.databases_agree db_serial db_par with
          | Ok () -> ()
          | Error e ->
            Format.printf "  *** PARALLEL DISAGREES on %s at %d domains: %s ***@."
              name domains e;
            failwith "maintain-par: parity violation");
          if par_changed <> serial_changed then
            failwith "maintain-par: changed-tuple counts diverge";
          emit (Printf.sprintf "par-%d" domains) par_s par_changed;
          match !best with
          | Some (_, bd, bs, bp)
            when domains < bd
                 || (domains = bd && serial_s /. Float.max par_s 1e-9 <= bs /. Float.max bp 1e-9)
            -> ()
          | _ -> best := Some (name, domains, serial_s, par_s))
        domain_set)
    workloads;
  (match !best with
  | Some (wl, d, serial_s, par_s) ->
    Format.printf "@.headline: %s at %d domains — serial %.4f s, parallel %.4f s: %.2fx@."
      wl d serial_s par_s (serial_s /. Float.max par_s 1e-9)
  | None -> ());
  if cores < List.fold_left max 1 domain_set then
    Format.printf
      "(host has %d core(s): domains beyond the core count park and add no \
       speedup here; run on a >= 8-core host for the Table III ratios)@."
      cores;
  (* traced rerun of the wide workload at the largest domain count: the
     measured per-worker breakdown — where maintenance wall time
     actually goes — attached to the bench JSON *)
  let breakdown =
    let _, program, updates = mp_wide ~smoke in
    let domains = List.fold_left max 2 domain_set in
    let obs = Obs.Trace.create ~domains () in
    let _db, _s, _changed = mp_run ~obs ~domains program updates in
    let s = Obs.Summary.of_trace obs in
    Format.printf
      "@.measured breakdown (wide workload, %d domains, traced rerun):@.@[<v>%a@]@."
      domains Obs.Summary.pp s;
    s
  in
  maintain_par_json (List.rev !rows) !best breakdown domain_set
    (if smoke then "BENCH_maintain_par_smoke.json" else "BENCH_maintain_par.json")

let maintain_par () = maintain_par_core ~smoke:false ()

let maintain_par_smoke () = maintain_par_core ~smoke:true ()

(* ---------------------------------------------------------------- *)
(* maintain-shard: intra-component parallelism via sharded rounds    *)
(* ---------------------------------------------------------------- *)

(* The complement of maintain-par: a workload that is ONE big SCC, so
   component-level task parallelism has nothing to chew on and any
   speedup must come from the sharded phase rounds inside the
   component (Incremental.apply_parallel ~shards). A dense transitive
   closure with a negation stratum on top: edge deletions trigger deep
   overdelete/rederive cascades whose per-round delta is large enough
   to split. The grid runs every shards x domains combination with
   [serial_threshold:0] (the tiny condensation would otherwise always
   take the fallback) and asserts the sharded database equals the
   serial one on every cell. *)

type ms_row = {
  ms_shards : int;
  ms_domains : int;
  ms_seconds : float;
  ms_changed : int;
  ms_speedup : float;  (* serial seconds / this cell's seconds *)
  ms_agree : bool;
}

let shard_workload ~smoke =
  let rng = Prelude.Rng.create 4243 in
  let verts = if smoke then 20 else 64 in
  let nedges = if smoke then 60 else 340 in
  let batches = if smoke then 2 else 4 in
  let edge () =
    Printf.sprintf {|edge("v%d","v%d")|} (Prelude.Rng.int rng verts)
      (Prelude.Rng.int rng verts)
  in
  let base = List.init nedges (fun _ -> edge ()) |> List.sort_uniq compare in
  let rules =
    "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n\
     node(X) :- edge(X,Y).\nnode(Y) :- edge(X,Y).\n\
     unreached(X,Y) :- node(X), node(Y), !path(X,Y).\n"
  in
  let src = String.concat "" (List.map (fun f -> f ^ ".\n") base) ^ rules in
  let program = Datalog.Parser.parse src in
  let base_arr = Array.of_list base in
  let cursor = ref 0 in
  let updates =
    List.init batches (fun _ ->
        let adds = List.init 4 (fun _ -> Datalog.Parser.parse_atom (edge ())) in
        let dels =
          List.init 3 (fun _ ->
              let f = base_arr.(!cursor mod Array.length base_arr) in
              cursor := !cursor + 7;
              Datalog.Parser.parse_atom f)
        in
        (adds, dels))
  in
  (Printf.sprintf "tc-neg-%dv" verts, program, updates)

let maintain_shard_json workload rows headline shard_set domain_set path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"maintain-shard\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host_cores\": %d,\n  \"sched\": \"levelbased\",\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b (Printf.sprintf "  \"workload\": \"%s\",\n" workload);
  Buffer.add_string b
    (Printf.sprintf "  \"shards\": [%s],\n"
       (String.concat ", " (List.map string_of_int shard_set)));
  Buffer.add_string b
    (Printf.sprintf "  \"domains\": [%s],\n"
       (String.concat ", " (List.map string_of_int domain_set)));
  (match headline with
  | Some (sh, dm, serial_s, par_s) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"headline\": {\"shards\": %d, \"domains\": %d, \"serial_s\": %.6f, \
          \"sharded_s\": %.6f, \"speedup\": %.3f},\n"
         sh dm serial_s par_s (serial_s /. Float.max par_s 1e-9))
  | None -> ());
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shards\": %d, \"domains\": %d, \"changed\": %d, \"seconds\": \
            %.6f, \"speedup\": %.3f, \"databases_agree\": %b}%s\n"
           r.ms_shards r.ms_domains r.ms_changed r.ms_seconds r.ms_speedup
           r.ms_agree
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "@.wrote %s@." path

let maintain_shard_core ~smoke () =
  banner "Sharded incremental maintenance: shards x domains grid on one big SCC";
  let cores = Domain.recommended_domain_count () in
  let shard_set = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let domain_set = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let name, program, updates = shard_workload ~smoke in
  Format.printf "workload %s on a %d-core host@.@." name cores;
  let db_serial, serial_s, serial_changed = mp_run ~domains:1 program updates in
  Format.printf "%-12s %7s %8s %10s %12s %10s@." "workload" "shards" "domains"
    "changed" "seconds" "speedup";
  let rows = ref [] in
  let best = ref None in
  List.iter
    (fun shards ->
      List.iter
        (fun domains ->
          let seconds, changed =
            if shards = 1 && domains = 1 then (serial_s, serial_changed)
            else begin
              let db, s, ch =
                mp_run ~shards ~serial_threshold:0 ~domains program updates
              in
              (* the differential guarantee, asserted on every cell:
                 sharded maintenance restores exactly the serial
                 database and the same net change count *)
              (match Datalog.Eval.databases_agree db_serial db with
              | Ok () -> ()
              | Error e ->
                Format.printf
                  "  *** SHARDED DISAGREES at %d shards x %d domains: %s ***@."
                  shards domains e;
                failwith "maintain-shard: parity violation");
              if ch <> serial_changed then
                failwith "maintain-shard: changed-tuple counts diverge";
              (s, ch)
            end
          in
          let speedup = serial_s /. Float.max seconds 1e-9 in
          rows :=
            { ms_shards = shards; ms_domains = domains; ms_seconds = seconds;
              ms_changed = changed; ms_speedup = speedup; ms_agree = true }
            :: !rows;
          Format.printf "%-12s %7d %8d %10d %12.4f %9.2fx@." name shards domains
            changed seconds speedup;
          if shards > 1 then
            match !best with
            | Some (_, _, bs) when serial_s /. Float.max bs 1e-9 >= speedup -> ()
            | _ -> best := Some (shards, domains, seconds))
        domain_set)
    shard_set;
  (match !best with
  | Some (sh, dm, par_s) ->
    Format.printf
      "@.headline: %d shards x %d domains — serial %.4f s, sharded %.4f s: %.2fx@."
      sh dm serial_s par_s (serial_s /. Float.max par_s 1e-9)
  | None -> ());
  if cores < 4 then
    Format.printf
      "(host has %d core(s): shard fan-out adds coordination without extra \
       parallelism here; expect <= 1x — the grid still checks parity on every \
       cell)@."
      cores;
  maintain_shard_json name (List.rev !rows)
    (Option.map (fun (sh, dm, s) -> (sh, dm, serial_s, s)) !best)
    shard_set domain_set
    (if smoke then "BENCH_maintain_shard_smoke.json" else "BENCH_maintain_shard.json")

let maintain_shard () = maintain_shard_core ~smoke:false ()

let maintain_shard_smoke () = maintain_shard_core ~smoke:true ()

(* ---------------------------------------------------------------- *)
(* maintain-count: counting vs DRed on deletion-heavy streams        *)
(* ---------------------------------------------------------------- *)

(* The maintenance-algorithm benchmark: the same update stream applied
   to twin materializations, once under DRed and once under counting
   (Incremental.apply ~maint). Streams come from
   Synthetic.Update_stream — banded acyclic edge spaces where derived
   tuples carry many alternative derivations, the regime where DRed's
   overdelete/rederive storm is at its worst and counting's
   decrement-only propagation at its best. Counting rows prime the
   derivation counts outside the timed region (the cost is reported,
   once, next to the row). [Eval.databases_agree] is asserted on every
   program x mix cell, so the speedups can only come from equivalent
   computations. *)

type mc_row = {
  mc_program : string;
  mc_mix : string;
  mc_maint : string;  (* "dred" | "counting" | "auto" | "counting-sK" *)
  mc_batches : int;
  mc_changed : int;
  mc_seconds : float;
  mc_speedup : float;  (* dred seconds / this row's seconds *)
  mc_agree : bool;
  mc_advice : string;  (* the static advisor's per-program summary *)
}

let mc_programs =
  [
    ( "hops-nr",
      false,
      "hop2(X,Z) :- edge(X,Y), edge(Y,Z).\n\
       hop3(X,W) :- hop2(X,Y), edge(Y,W).\n" );
    ("tc", true, "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n");
  ]

let mc_mixes = [ ("del90", 0.9); ("mix50", 0.5) ]

(* the non-recursive program gets a larger base relation: its per-batch
   DRed cost is one rederivation pass over the full joins, so a bigger
   store widens the gap counting is supposed to show, and pushes the
   measured interval out of timer-noise territory (the tc stream stays
   smaller — path's quadratic blowup already dominates there) *)
let mc_stream ~smoke ~recursive ~mix_id delete_fraction =
  Workload.Synthetic.Update_stream.generate
    {
      Workload.Synthetic.Update_stream.nodes =
        (if smoke then 36 else if recursive then 220 else 700);
      span = (if smoke then 4 else 12);
      base_edges = (if smoke then 110 else if recursive then 1500 else 5000);
      batches = (if smoke then 3 else 6);
      batch_ops = (if smoke then 14 else 48);
      delete_fraction;
      seed = 9091 + mix_id;
    }

(* one word summarizing the advisor over the program's derived
   components: "dred" / "counting" when unanimous, "mixed" otherwise *)
let mc_advice program =
  let t = Datalog.Analyze.program ~engine:Datalog.Plan.Compiled program in
  let verdicts =
    Array.to_list t.Datalog.Analyze.comps
    |> List.filter_map (fun (c : Datalog.Analyze.comp_info) ->
           if c.Datalog.Analyze.extensional then None
           else Some (Datalog.Analyze.strategy_name c.Datalog.Analyze.verdict))
    |> List.sort_uniq Stdlib.compare
  in
  match verdicts with [] -> "dred" | [ one ] -> one | _ -> "mixed"

let mc_run ?(obs = Obs.Trace.disabled) ?(shards = 1) ~maint program steps =
  let engine = Datalog.Plan.Compiled in
  let db = Datalog.Database.create () in
  ignore (Datalog.Eval.run ~engine db program);
  let prime_s =
    if maint <> Datalog.Incremental.Dred then begin
      let t0 = Unix.gettimeofday () in
      ignore (Datalog.Incremental.prime ~engine db program);
      Unix.gettimeofday () -. t0
    end
    else 0.0
  in
  let changed = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (adds, dels) ->
      let r =
        if shards > 1 then
          (* counting composes with sharded phase rounds: any warning
             here (a downgrade) would invalidate the row *)
          Datalog.Incremental.apply_parallel ~engine ~maint ~domains:1 ~shards
            ~on_warn:(fun m -> failwith ("maintain-count: unexpected warning: " ^ m))
            ~obs db program ~additions:adds ~deletions:dels
        else
          Datalog.Incremental.apply ~engine ~maint ~obs db program ~additions:adds
            ~deletions:dels
      in
      List.iter
        (fun (c : Datalog.Incremental.pred_change) ->
          changed := !changed + c.Datalog.Incremental.added + c.Datalog.Incremental.removed)
        r.Datalog.Incremental.changes)
    steps;
  let s = Unix.gettimeofday () -. t0 in
  (db, s, !changed, prime_s)

let maintain_count_json rows headline breakdown path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"maintain-count\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host_cores\": %d,\n  \"engine\": \"compiled\",\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "  \"breakdown\": %s,\n" (Obs.Summary.json breakdown));
  (let p = breakdown.Obs.Summary.cnt_propagate_s
   and bw = breakdown.Obs.Summary.cnt_backward_s
   and f = breakdown.Obs.Summary.cnt_forward_s in
   Buffer.add_string b
     (Printf.sprintf
        "  \"counting_phases\": {\"propagate_s\": %.6f, \"backward_s\": %.6f, \
         \"forward_s\": %.6f, \"backward_share\": %.4f, \"o1_hits\": %d, \
         \"full_probes\": %d},\n"
        p bw f
        (bw /. Float.max (p +. bw +. f) 1e-9)
        breakdown.Obs.Summary.cnt_o1_hits breakdown.Obs.Summary.cnt_full_probes));
  (match headline with
  | Some ((np, nm, nd, nc), (rp, rm, rd, rc)) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"headline\": {\n\
         \    \"nonrecursive\": {\"program\": \"%s\", \"mix\": \"%s\", \
          \"dred_s\": %.6f, \"counting_s\": %.6f, \"speedup\": %.3f},\n\
         \    \"recursive\": {\"program\": \"%s\", \"mix\": \"%s\", \
          \"dred_s\": %.6f, \"counting_s\": %.6f, \"speedup\": %.3f}},\n"
         np nm nd nc
         (nd /. Float.max nc 1e-9)
         rp rm rd rc
         (rd /. Float.max rc 1e-9))
  | None -> ());
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"program\": \"%s\", \"mix\": \"%s\", \"maint\": \"%s\", \
            \"batches\": %d, \"changed\": %d, \"seconds\": %.6f, \"speedup\": \
            %.3f, \"databases_agree\": %b, \"advice\": \"%s\"}%s\n"
           r.mc_program r.mc_mix r.mc_maint r.mc_batches r.mc_changed
           r.mc_seconds r.mc_speedup r.mc_agree r.mc_advice
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "@.wrote %s@." path

let maintain_count_core ~smoke () =
  banner "Counting vs DRed maintenance on deletion-heavy update streams";
  let rows = ref [] in
  (* best counting speedup seen per recursion class, for the headline *)
  let best_nonrec = ref None and best_rec = ref None in
  Format.printf "%-10s %-8s %-10s %10s %12s %10s@." "program" "mix" "maint"
    "changed" "seconds" "speedup";
  List.iter
    (fun (pname, recursive, rules) ->
      List.iteri
        (fun mix_id (mix, delete_fraction) ->
          let stream = mc_stream ~smoke ~recursive ~mix_id delete_fraction in
          let src =
            String.concat ""
              (List.map (fun f -> f ^ ".\n")
                 stream.Workload.Synthetic.Update_stream.base)
            ^ rules
          in
          let program = Datalog.Parser.parse src in
          let steps =
            List.map
              (fun (adds, dels) ->
                ( List.map Datalog.Parser.parse_atom adds,
                  List.map Datalog.Parser.parse_atom dels ))
              stream.Workload.Synthetic.Update_stream.steps
          in
          let nbatches = List.length steps in
          let db_dred, dred_s, dred_changed, _ =
            mc_run ~maint:Datalog.Incremental.Dred program steps
          in
          let db_cnt, cnt_s, cnt_changed, prime_s =
            mc_run ~maint:Datalog.Incremental.Counting program steps
          in
          let db_auto, auto_s, auto_changed, _ =
            mc_run ~maint:Datalog.Incremental.Auto program steps
          in
          let db_s2, s2_s, s2_changed, _ =
            mc_run ~shards:2 ~maint:Datalog.Incremental.Counting program steps
          in
          let db_s4, s4_s, s4_changed, _ =
            mc_run ~shards:4 ~maint:Datalog.Incremental.Counting program steps
          in
          let advice = mc_advice program in
          (* the differential guarantee, asserted on every cell: all
             strategies restore exactly the same database *)
          let agree name other =
            match Datalog.Eval.databases_agree db_dred other with
            | Ok () -> ()
            | Error e ->
              Format.printf "  *** ENGINES DISAGREE (%s) on %s/%s: %s ***@."
                name pname mix e;
              failwith "maintain-count: parity violation"
          in
          agree "counting" db_cnt;
          agree "auto" db_auto;
          agree "counting-s2" db_s2;
          agree "counting-s4" db_s4;
          if
            dred_changed <> cnt_changed || dred_changed <> auto_changed
            || dred_changed <> s2_changed || dred_changed <> s4_changed
          then failwith "maintain-count: changed-tuple counts diverge";
          let emit maint seconds note =
            let r =
              { mc_program = pname; mc_mix = mix; mc_maint = maint;
                mc_batches = nbatches; mc_changed = dred_changed;
                mc_seconds = seconds;
                mc_speedup = dred_s /. Float.max seconds 1e-9;
                mc_agree = true; mc_advice = advice }
            in
            rows := r :: !rows;
            Format.printf "%-10s %-8s %-10s %10d %12.4f %9.2fx%s@." pname mix
              maint dred_changed seconds r.mc_speedup note
          in
          emit "dred" dred_s "";
          emit "counting" cnt_s
            (Printf.sprintf "  (primed in %.4f s)" prime_s);
          emit "auto" auto_s (Printf.sprintf "  (advice %s)" advice);
          emit "counting-s2" s2_s "";
          emit "counting-s4" s4_s "";
          let speedup = dred_s /. Float.max cnt_s 1e-9 in
          let best = if recursive then best_rec else best_nonrec in
          match !best with
          | Some (_, _, bd, bc) when bd /. Float.max bc 1e-9 >= speedup -> ()
          | _ -> best := Some (pname, mix, dred_s, cnt_s))
        mc_mixes)
    mc_programs;
  let headline =
    match (!best_nonrec, !best_rec) with
    | Some n, Some r -> Some (n, r)
    | _ -> None
  in
  (match headline with
  | Some ((np, nm, nd, nc), (rp, rm, rd, rc)) ->
    Format.printf
      "@.headline: %s/%s — DRed %.4f s, counting %.4f s: %.2fx; %s/%s — DRed \
       %.4f s, counting %.4f s: %.2fx@."
      np nm nd nc
      (nd /. Float.max nc 1e-9)
      rp rm rd rc
      (rd /. Float.max rc 1e-9)
  | None -> ());
  (* traced rerun of the recursive deletion-heavy cell under counting:
     the per-phase breakdown (propagate / backward / forward) attached
     to the bench JSON *)
  let breakdown =
    let _, _, rules = List.nth mc_programs 1 in
    let stream = mc_stream ~smoke ~recursive:true ~mix_id:0 0.9 in
    let src =
      String.concat ""
        (List.map (fun f -> f ^ ".\n") stream.Workload.Synthetic.Update_stream.base)
      ^ rules
    in
    let program = Datalog.Parser.parse src in
    let steps =
      List.map
        (fun (adds, dels) ->
          ( List.map Datalog.Parser.parse_atom adds,
            List.map Datalog.Parser.parse_atom dels ))
        stream.Workload.Synthetic.Update_stream.steps
    in
    let obs = Obs.Trace.create ~domains:1 () in
    let _db, _s, _changed, _prime =
      mc_run ~obs ~maint:Datalog.Incremental.Counting program steps
    in
    let s = Obs.Summary.of_trace obs in
    Format.printf
      "@.measured breakdown (tc del90, counting, traced rerun):@.@[<v>%a@]@."
      Obs.Summary.pp s;
    let tot =
      s.Obs.Summary.cnt_propagate_s +. s.Obs.Summary.cnt_backward_s
      +. s.Obs.Summary.cnt_forward_s
    in
    Format.printf
      "backward share %.1f%%; suspects: %d O(1) by the level index, %d full probes@."
      (100.0 *. s.Obs.Summary.cnt_backward_s /. Float.max tot 1e-9)
      s.Obs.Summary.cnt_o1_hits s.Obs.Summary.cnt_full_probes;
    s
  in
  maintain_count_json (List.rev !rows) headline breakdown
    (if smoke then "BENCH_maintain_count_smoke.json" else "BENCH_maintain_count.json")

let maintain_count () = maintain_count_core ~smoke:false ()

let maintain_count_smoke () = maintain_count_core ~smoke:true ()

(* ---------------------------------------------------------------- *)
(* serve: sustained update-server throughput (open-loop replay)      *)
(* ---------------------------------------------------------------- *)

(* The epoch-server benchmark: a driver replays a Synthetic.Update_stream
   against Server.Engine at a fixed arrival rate — open loop, so a slow
   commit cannot slow the offered load, only grow its own latency. Sync
   rows commit every batch in the driver thread (one epoch per batch:
   commit count, ops and net change are deterministic and parity-checked
   against the baseline). Async rows commit on the background domain with
   coalescing on, so the number of actual maintenance runs is timing-
   dependent — those rows report it under non-whitelisted keys and the
   correctness claim rests on [databases_agree] against a plain per-step
   Incr_sched.update twin of the same stream (both walks go through the
   stream cursor, so neither side can drift). *)

type sv_row = {
  sv_mode : string;  (* "sync" | "async" *)
  sv_maint : string;
  sv_batches : int;
  sv_ops : int;  (* operations admitted over the whole run *)
  sv_runs : int;  (* maintenance runs published (= batches when sync) *)
  sv_changed : int;  (* net tuple churn over all commits *)
  sv_wall_s : float;
  sv_p50_ms : float;
  sv_p99_ms : float;
  sv_agree : bool;
}

let sv_rules = "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n"

let sv_stream ~smoke =
  Workload.Synthetic.Update_stream.generate
    {
      Workload.Synthetic.Update_stream.nodes = (if smoke then 36 else 220);
      span = (if smoke then 4 else 12);
      base_edges = (if smoke then 110 else 1500);
      batches = (if smoke then 12 else 120);
      batch_ops = (if smoke then 10 else 32);
      delete_fraction = 0.5;
      seed = 7177;
    }

let sv_materialize stream =
  Incr_sched.materialize
    (String.concat ""
       (List.map (fun f -> f ^ ".\n")
          stream.Workload.Synthetic.Update_stream.base)
    ^ sv_rules)

(* per-step Incr_sched.update twin — the reference the server database
   must agree with *)
let sv_reference ~maint stream =
  let twin = sv_materialize stream in
  let cur = Workload.Synthetic.Update_stream.cursor stream in
  let rec loop () =
    match Workload.Synthetic.Update_stream.next cur with
    | None -> ()
    | Some (additions, deletions) ->
      ignore (Incr_sched.update ~maint twin ~additions ~deletions);
      loop ()
  in
  loop ();
  twin

let sv_submit engine side fact =
  match Server.Engine.submit engine side fact with
  | Ok () -> ()
  | Error m -> failwith ("serve: stream fact rejected: " ^ m)

(* Open-loop replay: batch i is offered at t0 + i/rate regardless of
   how the server is doing; pacing gaps poll for finished background
   commits. Returns every commit published plus the driver wall time. *)
let sv_drive ~mode ~rate engine stream =
  let cur = Workload.Synthetic.Update_stream.cursor stream in
  let stats = ref [] in
  let collect more = stats := !stats @ more in
  let t0 = Prelude.Mclock.now () in
  let i = ref 0 in
  let rec loop () =
    match Workload.Synthetic.Update_stream.next cur with
    | None -> ()
    | Some (additions, deletions) ->
      let arrival = t0 +. (float_of_int !i /. rate) in
      while Prelude.Mclock.now () < arrival do
        collect (Server.Engine.drain engine)
      done;
      incr i;
      List.iter (sv_submit engine `Insert) additions;
      List.iter (sv_submit engine `Remove) deletions;
      (match mode with
      | `Sync -> collect (Server.Engine.commit engine)
      | `Async ->
        ignore (Server.Engine.commit_async engine);
        collect (Server.Engine.drain engine));
      loop ()
  in
  loop ();
  collect (Server.Engine.await engine);
  (!stats, Prelude.Mclock.now () -. t0)

let sv_run ~smoke ~mode ~maint ?obs () =
  let stream = sv_stream ~smoke in
  let session = sv_materialize stream in
  let engine =
    Server.Engine.create ~maint ?obs session
  in
  let rate = if smoke then 400.0 else 150.0 in
  let stats, wall = sv_drive ~mode ~rate engine stream in
  let twin = sv_reference ~maint:Datalog.Incremental.Dred stream in
  let agree =
    match
      Datalog.Eval.databases_agree (Server.Engine.db engine) twin.Incr_sched.db
    with
    | Ok () -> true
    | Error e ->
      Format.printf "  *** SERVER DIVERGED from the one-shot run: %s ***@." e;
      failwith "serve: parity violation"
  in
  let ops =
    List.fold_left (fun a (s : Server.Engine.commit_stats) -> a + s.ops) 0 stats
  in
  let changed =
    List.fold_left
      (fun a (s : Server.Engine.commit_stats) -> a + s.changed)
      0 stats
  in
  let lat =
    Array.of_list
      (List.map
         (fun (s : Server.Engine.commit_stats) -> 1000.0 *. s.latency_s)
         stats)
  in
  {
    sv_mode = (match mode with `Sync -> "sync" | `Async -> "async");
    sv_maint =
      (match maint with
      | Datalog.Incremental.Dred -> "dred"
      | Datalog.Incremental.Counting -> "counting"
      | Datalog.Incremental.Auto -> "auto");
    sv_batches =
      List.length stream.Workload.Synthetic.Update_stream.steps;
    sv_ops = ops;
    sv_runs = List.length stats;
    sv_changed = changed;
    sv_wall_s = wall;
    sv_p50_ms = Prelude.Stats.percentile lat 50.0;
    sv_p99_ms = Prelude.Stats.percentile lat 99.0;
    sv_agree = agree;
  }

let sv_json rows rate breakdown path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"serve\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"host_cores\": %d,\n  \"workload\": \"tc-mix50\",\n  \"rate\": %.1f,\n"
       (Domain.recommended_domain_count ())
       rate);
  Buffer.add_string b
    (Printf.sprintf "  \"breakdown\": %s,\n" (Obs.Summary.json breakdown));
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      (* sync rows: op/run/changed counts are deterministic —
         parity-checked keys. Async rows: coalescing makes all three
         timing-dependent (merged batches dedup facts across steps), so
         they travel under non-whitelisted names. *)
      let counts =
        if r.sv_mode = "sync" then
          Printf.sprintf "\"ops\": %d, \"commits\": %d, \"changed\": %d"
            r.sv_ops r.sv_runs r.sv_changed
        else
          Printf.sprintf "\"admitted\": %d, \"runs\": %d, \"net_changed\": %d"
            r.sv_ops r.sv_runs r.sv_changed
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"maint\": \"%s\", \"batches\": %d, %s, \
            \"databases_agree\": %b, \"seconds\": %.6f, \
            \"commits_per_s\": %.1f, \"updates_per_s\": %.1f, \"p50_ms\": \
            %.3f, \"p99_ms\": %.3f}%s\n"
           r.sv_mode r.sv_maint r.sv_batches counts r.sv_agree
           r.sv_wall_s
           (float_of_int r.sv_runs /. Float.max r.sv_wall_s 1e-9)
           (float_of_int r.sv_ops /. Float.max r.sv_wall_s 1e-9)
           r.sv_p50_ms r.sv_p99_ms
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "@.wrote %s@." path

let serve_core ~smoke () =
  banner "Sustained update-server throughput (open-loop stream replay)";
  let rate = if smoke then 400.0 else 150.0 in
  Format.printf "offered load: %.0f commits/s, workload tc-mix50@.@." rate;
  Format.printf "%-7s %-10s %8s %8s %6s %10s %10s %9s %9s@." "mode" "maint"
    "batches" "ops" "runs" "commits/s" "updates/s" "p50 ms" "p99 ms";
  let rows =
    List.concat_map
      (fun mode ->
        List.map
          (fun maint ->
            let r = sv_run ~smoke ~mode ~maint () in
            Format.printf "%-7s %-10s %8d %8d %6d %10.1f %10.1f %9.3f %9.3f@."
              r.sv_mode r.sv_maint r.sv_batches r.sv_ops r.sv_runs
              (float_of_int r.sv_runs /. Float.max r.sv_wall_s 1e-9)
              (float_of_int r.sv_ops /. Float.max r.sv_wall_s 1e-9)
              r.sv_p50_ms r.sv_p99_ms;
            r)
          [ Datalog.Incremental.Dred; Datalog.Incremental.Counting ])
      [ `Sync; `Async ]
  in
  (* traced sync/dred rerun: the commit spans and epoch lifetimes land
     in the summary's srv section, attached as the (skipped) breakdown *)
  let breakdown =
    let obs = Obs.Trace.create ~domains:1 () in
    let _r = sv_run ~smoke ~mode:`Sync ~maint:Datalog.Incremental.Dred ~obs () in
    let s = Obs.Summary.of_trace obs in
    Format.printf "@.measured breakdown (sync dred, traced rerun):@.@[<v>%a@]@."
      Obs.Summary.pp s;
    s
  in
  sv_json rows rate breakdown
    (if smoke then "BENCH_serve_smoke.json" else "BENCH_serve.json")

let serve () = serve_core ~smoke:false ()

let serve_smoke () = serve_core ~smoke:true ()

(* ---------------------------------------------------------------- *)
(* Ablations: design choices called out in DESIGN.md                 *)
(* ---------------------------------------------------------------- *)

let ablation () =
  banner "Ablation 1: hybrid co-scheduler scan batch (broom 2000x2000)";
  let t = Workload.Pathological.broom ~spine:2000 ~fan:2000 in
  Format.printf "%12s %16s %14s %14s@." "scan batch" "total ops" "overhead" "makespan";
  List.iter
    (fun scan_batch ->
      let config = { Simulator.Engine.procs = 8; op_cost = 1e-7; record_log = false } in
      let m =
        (Simulator.Engine.run ~config
           ~sched:(Sched.Hybrid.factory_batched ~scan_batch)
           t)
          .Simulator.Engine.metrics
      in
      Format.printf "%12d %16d %14.4f %14.3f@." scan_batch
        (Sched.Intf.total_ops m.Simulator.Metrics.ops)
        m.Simulator.Metrics.sched_overhead m.Simulator.Metrics.makespan)
    [ 1; 8; 32; 128; 1024; max_int ];
  Format.printf
    "@.(smaller batches amortize the scan across completions; unbounded@.\
     degenerates to LogicBlox-plus-LevelBased cost.)@.";
  banner "Ablation 2: Theorem 10 meta-scheduler under a memory budget";
  let t = Workload.Pathological.interval_blowup ~width:150 ~layers:4 ~density:0.5 ~seed:5 in
  let config = { Simulator.Engine.procs = 8; op_cost = 1e-7; record_log = false } in
  let lbx_mem = Sched.Logicblox.precomputed_memory_words t.Workload.Trace.graph in
  Format.printf "LogicBlox precomputed footprint: %d words@." lbx_mem;
  List.iter
    (fun budget ->
      let r = Simulator.Meta.run ~config ~budget_words:budget ~a:Sched.Logicblox.factory t in
      Format.printf "  budget %10d: winner=%-12s aborted=%b makespan=%.3f memory=%d@."
        budget r.Simulator.Meta.winner r.Simulator.Meta.a_aborted
        r.Simulator.Meta.makespan r.Simulator.Meta.memory_words)
    [ lbx_mem / 2; 2 * lbx_mem; 8 * lbx_mem ];
  Format.printf
    "@.(with the budget below A's footprint the meta-scheduler drops A and@.\
     gives LevelBased every processor — Theorem 10's overflow arm.)@."

(* ---------------------------------------------------------------- *)
(* Real multicore execution (OCaml 5 domains)                        *)
(* ---------------------------------------------------------------- *)

let parallel () =
  banner "Real multicore execution: simulator prediction vs wall clock";
  Format.printf "host exposes %d core(s) (Domain.recommended_domain_count)@.@."
    (Domain.recommended_domain_count ());
  let work_unit = 1e-4 in
  let cases =
    [
      ("unit-layers 16x10", Workload.Pathological.unit_layers ~width:16 ~layers:10 ~fanout:2 ~seed:3);
      ("tight example L=24", Workload.Pathological.tight_example ~levels:24);
      ("broom 50x200", Workload.Pathological.broom ~spine:50 ~fan:200);
    ]
  in
  Format.printf "%-22s %-12s %12s %12s %8s@." "trace" "scheduler" "predicted s"
    "measured s" "ratio";
  List.iter
    (fun (name, trace) ->
      List.iter
        (fun sname ->
          let factory = Sched.Registry.find_exn sname in
          let domains = 4 in
          let sim =
            (Simulator.Engine.run
               ~config:{ Simulator.Engine.procs = domains; op_cost = 0.0; record_log = false }
               ~sched:factory trace)
              .Simulator.Engine.metrics
              .Simulator.Metrics.makespan
          in
          let predicted = sim *. work_unit in
          let r = Parallel.Executor.run ~domains ~work_unit ~sched:factory trace in
          (match Parallel.Executor.check trace r with
          | Ok () -> ()
          | Error e -> Format.printf "  INVALID (%s): %s@." sname e);
          Format.printf "%-22s %-12s %12.4f %12.4f %8.2f@." name sname predicted
            r.Parallel.Executor.wall_makespan
            (r.Parallel.Executor.wall_makespan /. Float.max predicted 1e-9))
        [ "levelbased"; "hybrid" ])
    cases;
  Format.printf
    "@.(measured/predicted ~ 1 on multicore hosts; on a single-core container@.\
     the wall clock serializes everything, so expect ratios near the@.\
     domains count for parallel traces. The point: the same online@.\
     protocol drives real domains, with the scheduler under the dispatch@.\
     lock, and the schedule validates against the Section II model.)@."

(* ---------------------------------------------------------------- *)
(* Dispatch throughput: low-contention executor vs big-lock baseline *)
(* ---------------------------------------------------------------- *)

(* Scheduler-throughput benchmark for the multicore executor rebuild.
   Zero-work tasks ([work_unit = 0]) make the measurement pure
   dispatch: status CAS traffic, ready-buffer refills, batched
   completion delivery, and the scheduler critical sections. Both
   executors run the same LevelBased scheduler and measure
   [wall_makespan] from the same post-spawn barrier epoch, so the
   difference is executor protocol alone. The seed's big-lock executor
   is retained as [Parallel.Legacy] — pass [--legacy-executor] to run
   only that baseline. *)

let legacy_only = ref false

type drow = {
  d_trace : string;
  d_exec : string;
  d_domains : int;
  d_tasks : int;
  d_makespan : float;
  d_rate : float;
}

let dispatch_traces ~smoke =
  (* (name, full_check, trace): [full_check] runs [Executor.check] on
     every configuration — cheap now that precedence validation is a
     linear topological DP rather than a per-task ancestor BFS. *)
  if smoke then
    [
      ("wide", true, Workload.Pathological.unit_layers ~width:120 ~layers:6 ~fanout:3 ~seed:7);
      ("deep", true, Workload.Pathological.deep_chain ~n:1_500);
      ("pathological", true, Workload.Pathological.broom ~spine:150 ~fan:150);
    ]
  else
    [
      ("wide-paper11", true, paper_trace 11);
      ("deep-chain", true, Workload.Pathological.deep_chain ~n:100_000);
      ("pathological-broom", true, Workload.Pathological.broom ~spine:20_000 ~fan:20_000);
    ]

let dispatch_run ~legacy ~domains ~reps trace =
  let sched = Sched.Registry.find_exn "levelbased" in
  let best = ref None in
  for _ = 1 to reps do
    let r =
      if legacy then Parallel.Legacy.run ~domains ~work_unit:0.0 ~sched trace
      else Parallel.Executor.run ~domains ~work_unit:0.0 ~batch:256 ~sched trace
    in
    match !best with
    | Some b when b.Parallel.Executor.wall_makespan <= r.Parallel.Executor.wall_makespan -> ()
    | _ -> best := Some r
  done;
  Option.get !best

let dispatch_json rows headline sched_overhead path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"dispatch\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host_cores\": %d,\n  \"work_unit\": 0.0,\n  \"batch\": 256,\n"
       (Domain.recommended_domain_count ()));
  (match sched_overhead with
  | Some (tname, domains, measured, ops, modeled, util) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"sched_overhead\": {\"trace\": \"%s\", \"domains\": %d, \
          \"measured_sched_s\": %.6f, \"ops\": %d, \"modeled_s\": %.6f, \
          \"measured_over_modeled\": %.3f, \"utilization\": %.4f},\n"
         tname domains measured ops modeled
         (measured /. Float.max modeled 1e-12)
         util)
  | None -> ());
  (match headline with
  | Some (l, n) ->
    Buffer.add_string b
      (Printf.sprintf
         "  \"headline\": {\"trace\": \"%s\", \"domains\": 8, \"legacy_tasks_per_sec\": %.0f, \"new_tasks_per_sec\": %.0f, \"speedup\": %.3f},\n"
         l.d_trace l.d_rate n.d_rate (n.d_rate /. l.d_rate))
  | None -> ());
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"trace\": \"%s\", \"executor\": \"%s\", \"domains\": %d, \"tasks\": %d, \"wall_makespan_s\": %.6f, \"tasks_per_sec\": %.0f}%s\n"
           r.d_trace r.d_exec r.d_domains r.d_tasks r.d_makespan r.d_rate
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "@.wrote %s@." path

let dispatch_core ~smoke () =
  banner "Dispatch throughput: Executor vs big-lock Legacy (work_unit = 0)";
  Format.printf "host exposes %d core(s); best of several reps per cell@.@."
    (Domain.recommended_domain_count ());
  let traces = dispatch_traces ~smoke in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let execs = if !legacy_only then [ ("legacy", true) ] else [ ("legacy", true); ("new", false) ] in
  let rows = ref [] in
  Format.printf "%-20s %-7s %8s %10s %14s %12s@." "trace" "exec" "domains"
    "tasks" "makespan s" "tasks/s";
  List.iter
    (fun (tname, full_check, trace) ->
      List.iter
        (fun (ename, legacy) ->
          List.iter
            (fun domains ->
              (* best-of-7: on a shared host a single rep can land on a
                 descheduled interval; the max is the stable statistic *)
              let reps = if smoke then 2 else 7 in
              let r = dispatch_run ~legacy ~domains ~reps trace in
              let tasks = r.Parallel.Executor.tasks_executed in
              if tasks <> r.Parallel.Executor.tasks_activated then
                Format.printf "  COUNT MISMATCH: %d executed, %d activated@." tasks
                  r.Parallel.Executor.tasks_activated;
              (* wide paper trace: full check once, on the headline
                 configuration, below; everything else every time *)
              if full_check then (
                match Parallel.Executor.check trace r with
                | Ok () -> ()
                | Error e -> Format.printf "  INVALID (%s d=%d): %s@." ename domains e);
              let m = r.Parallel.Executor.wall_makespan in
              let rate = float_of_int tasks /. Float.max m 1e-9 in
              rows :=
                { d_trace = tname; d_exec = ename; d_domains = domains;
                  d_tasks = tasks; d_makespan = m; d_rate = rate }
                :: !rows;
              Format.printf "%-20s %-7s %8d %10d %14.6f %12.0f@." tname ename
                domains tasks m rate)
            domain_counts)
        execs)
    traces;
  let rows = List.rev !rows in
  (* full check of the headline configuration on the wide trace *)
  (if not smoke && not !legacy_only then
     let _, _, trace = List.find (fun (n, _, _) -> n = "wide-paper11") traces in
     let r = dispatch_run ~legacy:false ~domains:8 ~reps:1 trace in
     match Parallel.Executor.check trace r with
     | Ok () -> Format.printf "@.Executor.check (wide, new, d=8): OK@."
     | Error e -> Format.printf "@.Executor.check (wide, new, d=8): INVALID: %s@." e);
  let find t e d =
    List.find_opt (fun r -> r.d_trace = t && r.d_exec = e && r.d_domains = d) rows
  in
  let wide_name = if smoke then "wide" else "wide-paper11" in
  let headline =
    match (find wide_name "legacy" 8, find wide_name "new" 8) with
    | Some l, Some n ->
      Format.printf
        "@.headline: wide trace, 8 domains — legacy %.0f tasks/s, new %.0f tasks/s: %.2fx@."
        l.d_rate n.d_rate (n.d_rate /. l.d_rate);
      Some (l, n)
    | _ -> None
  in
  ignore headline;
  (* traced rerun on the wide trace: measured scheduler-lock seconds
     (wait + hold, from the ring timeline) against the paper's abstract
     op-count model at the default 1e-7 s/op — the quantity Tables
     II/III call "overhead", finally measured instead of charged *)
  let sched_overhead =
    if !legacy_only then None
    else begin
      let _, _, trace = List.find (fun (n, _, _) -> n = wide_name) traces in
      let domains = 8 in
      let obs = Obs.Trace.create ~domains () in
      let sched = Sched.Registry.find_exn "levelbased" in
      let r =
        Parallel.Executor.run ~domains ~work_unit:0.0 ~batch:256 ~obs ~sched trace
      in
      let s = Obs.Summary.of_trace obs in
      let ops = Sched.Intf.total_ops r.Parallel.Executor.ops in
      let measured = Obs.Summary.sched_overhead_s s in
      let modeled = float_of_int ops *. 1e-7 in
      Format.printf
        "@.scheduler overhead (wide, new, d=%d, traced): measured %.6f s over \
         %d ops; op-count model at 1e-7 s/op: %.6f s (measured/modeled %.2fx); \
         utilization %.1f%%@."
        domains measured ops modeled
        (measured /. Float.max modeled 1e-12)
        (100.0 *. s.Obs.Summary.utilization);
      Some (wide_name, domains, measured, ops, modeled, s.Obs.Summary.utilization)
    end
  in
  dispatch_json rows headline sched_overhead
    (if smoke then "BENCH_executor_smoke.json" else "BENCH_executor.json")

let dispatch () = dispatch_core ~smoke:false ()

let dispatch_smoke () = dispatch_core ~smoke:true ()

(* ---------------------------------------------------------------- *)
(* Update streams: amortized incremental maintenance + scheduling     *)
(* ---------------------------------------------------------------- *)

let stream () =
  banner "Update stream: incremental maintenance vs from-scratch, 60 updates";
  let n_nodes = 120 in
  let rng = Prelude.Rng.create 414 in
  let fact () =
    Printf.sprintf {|edge("v%d","v%d")|} (Prelude.Rng.int rng n_nodes)
      (Prelude.Rng.int rng n_nodes)
  in
  let base = List.init 500 (fun _ -> fact ()) |> List.sort_uniq compare in
  let rules =
    "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n\
     node(X) :- edge(X,Y).\nnode(Y) :- edge(X,Y).\n\
     indeg(Y, cnt(X)) :- edge(X, Y).\n"
  in
  let src = String.concat ".\n" base ^ ".\n" ^ rules in
  let session = Incr_sched.materialize src in
  (* precompute the schedulers once: the DAG is stable across updates *)
  let probe =
    Incr_sched.update session ~additions:[] ~deletions:[]
  in
  let graph = probe.Datalog.To_trace.trace.Workload.Trace.graph in
  let prep = Sched.Prepared.prepare graph in
  let incr_time = ref 0.0 in
  let insert_time = ref 0.0 in
  let insert_count = ref 0 in
  let delete_time = ref 0.0 in
  let delete_count = ref 0 in
  let scratch_time = ref 0.0 in
  let sched_rows = Hashtbl.create 4 in
  let updates = 60 in
  let current = ref base in
  for _ = 1 to updates do
    let adds =
      List.init 2 (fun _ -> fact ()) |> List.filter (fun f -> not (List.mem f !current))
    in
    (* retail-style stream: mostly inserts; deletions are rare (and are
       DRed's expensive case — dense TC overdeletes broadly) *)
    let dels =
      match !current with
      | f :: _ when Prelude.Rng.int rng 6 = 0 -> [ f ]
      | _ -> []
    in
    current := adds @ List.filter (fun f -> not (List.mem f dels)) !current;
    (* incremental *)
    let t0 = Unix.gettimeofday () in
    let tt = Incr_sched.update session ~additions:adds ~deletions:dels in
    let dt = Unix.gettimeofday () -. t0 in
    incr_time := !incr_time +. dt;
    if dels = [] then begin
      insert_time := !insert_time +. dt;
      incr insert_count
    end
    else begin
      delete_time := !delete_time +. dt;
      incr delete_count
    end;
    (* from-scratch reference *)
    let t0 = Unix.gettimeofday () in
    let scratch = Incr_sched.materialize (String.concat ".\n" !current ^ ".\n" ^ rules) in
    ignore scratch;
    scratch_time := !scratch_time +. (Unix.gettimeofday () -. t0);
    (* schedule the revealed DAG with prepared (precompute-free) factories *)
    let trace = tt.Datalog.To_trace.trace in
    List.iter
      (fun (name, factory) ->
        let config = { Simulator.Engine.procs = 4; op_cost = 1e-7; record_log = false } in
        let m = (Simulator.Engine.run ~config ~sched:factory trace).Simulator.Engine.metrics in
        let tot, pre =
          Option.value (Hashtbl.find_opt sched_rows name) ~default:(0.0, 0.0)
        in
        Hashtbl.replace sched_rows name
          ( tot +. m.Simulator.Metrics.makespan,
            pre +. m.Simulator.Metrics.precompute_wallclock ))
      [
        ("levelbased", Sched.Prepared.level_based_factory prep);
        ("logicblox", Sched.Prepared.logicblox_factory prep);
        ("hybrid", Sched.Prepared.hybrid_factory prep);
      ]
  done;
  Format.printf "maintenance: incremental %.3fs vs from-scratch %.3fs (%.1fx faster)@."
    !incr_time !scratch_time (!scratch_time /. !incr_time);
  Format.printf
    "  insert-only updates: %d at %.1f ms avg; updates with a deletion: %d at %.1f ms avg@."
    !insert_count
    (1000.0 *. !insert_time /. float_of_int (max 1 !insert_count))
    !delete_count
    (1000.0 *. !delete_time /. float_of_int (max 1 !delete_count));
  Format.printf
    "(deletions are DRed's worst case on dense closures — overdeletion@.\
     touches most of `path` — so delete-heavy streams approach recompute@.\
     cost while insert-heavy streams win big.)@.";
  Format.printf "scheduling with shared precomputation (totals over %d updates):@." updates;
  Hashtbl.iter
    (fun name (makespan, precompute) ->
      Format.printf "  %-12s sum makespan %.6f s, sum precompute wallclock %.4f s@."
        name makespan precompute)
    sched_rows;
  Format.printf
    "@.(the DAG is stable across the stream, so levels and interval lists@.\
     are built once; per-update scheduler setup is then near-free, which@.\
     is how the paper accounts precomputation.)@."

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one per table/figure                   *)
(* ---------------------------------------------------------------- *)

let estimate_ns tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) -> (name, ns) :: acc
      | Some [] | None -> (name, nan) :: acc)
    results []

let micro () =
  banner "Bechamel micro-benchmarks (ns per full scheduling pass, small instances)";
  let t5 = paper_trace 5 in
  let broom = Workload.Pathological.broom ~spine:150 ~fan:150 in
  let tight = Workload.Pathological.tight_example ~levels:40 in
  let run_of trace factory () =
    let config = { Simulator.Engine.procs = 8; op_cost = 0.0; record_log = false } in
    ignore (Simulator.Engine.run ~config ~sched:factory trace)
  in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"tables"
      [
        Test.make ~name:"table1/levels-precompute"
          (Staged.stage (fun () -> ignore (Dag.Levels.compute t5.Workload.Trace.graph)));
        Test.make ~name:"table2/levelbased-pass"
          (Staged.stage (run_of t5 Sched.Level_based.factory));
        Test.make ~name:"table2/lbl15-pass"
          (Staged.stage (run_of t5 (Sched.Lookahead.factory ~k:15)));
        Test.make ~name:"table3/hybrid-pass"
          (Staged.stage (run_of broom Sched.Hybrid.factory));
        Test.make ~name:"table3/logicblox-pass"
          (Staged.stage (run_of broom Sched.Logicblox.factory));
        Test.make ~name:"fig1/active-closure"
          (Staged.stage (fun () -> ignore (Workload.Trace.active_set t5)));
        Test.make ~name:"fig2/tight-example-lbl"
          (Staged.stage (run_of tight (Sched.Lookahead.factory ~k:40)));
      ]
  in
  List.iter
    (fun (name, ns) -> Format.printf "  %-32s %14.0f ns/run@." name ns)
    (List.sort compare (estimate_ns tests))

(* ---------------------------------------------------------------- *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig1", fig1);
    ("fig2", fig2);
    ("overhead", overhead);
    ("memory", memory);
    ("bounds", bounds);
    ("rescue", rescue);
    ("datalog", datalog);
    ("datalog-smoke", datalog_smoke);
    ("maintain-par", maintain_par);
    ("maintain-par-smoke", maintain_par_smoke);
    ("maintain-shard", maintain_shard);
    ("maintain-shard-smoke", maintain_shard_smoke);
    ("maintain-count", maintain_count);
    ("maintain-count-smoke", maintain_count_smoke);
    ("serve", serve);
    ("serve-smoke", serve_smoke);
    ("ablation", ablation);
    ("parallel", parallel);
    ("dispatch", dispatch);
    ("dispatch-smoke", dispatch_smoke);
    ("stream", stream);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) ->
      let flags, names = List.partition (fun a -> a = "--legacy-executor") args in
      if flags <> [] then legacy_only := true;
      if names = [] then [ "dispatch" ] else names
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Format.eprintf "unknown section %S; known: %s@." name
          (String.concat " " (List.map fst sections));
        exit 1)
    requested;
  Format.printf "@.done.@."
