(** Layered random DAG generator, calibrated to structural targets.

    Generates traces matching exact node/edge/level/initial counts and
    an approximate active-set size, which is how the proprietary
    LogicBlox production traces of Table I are reconstructed (see
    DESIGN.md, substitution table). The construction places every
    non-source node at its level by giving it at least one parent on the
    previous layer; extra edges go to random lower layers. Per-edge
    change flags are thresholded against fixed per-edge uniforms, and
    the threshold is binary-searched so the activation closure hits the
    requested active-job count as closely as possible (the closure size
    is monotone in the threshold). *)

type params = {
  nodes : int;
  edges : int;  (** must be >= nodes - (size of layer 0) *)
  levels : int;
  initial : int;  (** number of initially-dirty sources *)
  active_jobs : int;  (** target |W| - initial (best effort) *)
  descendants : int option;
      (** optional target for the number of descendants of the dirty
          sources (Figure 1 reports this for trace #1); steers which
          sources get dirtied. Requires a source layer of <= 4096 nodes
          to take effect. *)
  task_fraction : float;
      (** fraction of nodes that are activatable tasks; realized as an
          exact count (dirty sources are always tasks) *)
  seed : int;
}

val generate :
  ?duration:(Prelude.Rng.t -> int -> Trace.shape) ->
  name:string ->
  params ->
  Trace.t
(** [duration rng u] draws the shape of task node [u]; default samples
    [Seq] durations from a lognormal with unit scale. Predicate nodes
    always get [Seq 0.]. @raise Invalid_argument on infeasible params
    (e.g. more levels than nodes, or too few edges to realize them). *)

val scale_shapes : Trace.t -> factor:float -> Trace.t
(** Multiply every duration by [factor] — used to calibrate a trace's
    total active work against a published makespan. *)
