(** LevelBased with LookAhead — LBL(k) (paper, Sections III and VI-B).

    Extends LevelBased: when the level gate blocks (a task on a lower
    level is still running), search the next [k] levels for active tasks
    that are not descendants of any unexecuted active or running task,
    and dispatch those early. The search is a forward BFS from the set
    of blockers, bounded to levels <= gate + k; worst case O(n^2) over a
    run, but cheap when levels are thin — which is exactly when
    plain LevelBased stalls. *)

val make : ?ops:Intf.ops -> ?levels:int array -> k:int -> Dag.Graph.t -> Intf.instance
(** @raise Invalid_argument if [k < 1]. *)

val factory : k:int -> Intf.factory
(** Factory named ["lbl:<k>"]. *)
