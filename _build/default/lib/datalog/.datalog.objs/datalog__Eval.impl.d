lib/datalog/eval.ml: Aggregate Array Ast Dag Database Hashtbl List Matcher Printf Relation Stratify
