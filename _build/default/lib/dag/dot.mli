(** Graphviz export (Figure 1 rendering). *)

type style = {
  label : int -> string;
  (** Node label; default is the node id. *)
  color : int -> string option;
  (** Fill color, e.g. highlight activated nodes. *)
  rankdir : string;  (** "TB" or "LR". *)
}

val default_style : style

val pp : ?style:style -> Format.formatter -> Graph.t -> unit

val to_file : ?style:style -> string -> Graph.t -> unit
