(** Offline (clairvoyant) reference scheduler.

    Knows the full active graph [H = (W, F)] in advance — the oracle the
    online schedulers lack. A task is dispatched as soon as all of its
    H-parents have completed, in order of decreasing remaining critical
    path. Its makespan realizes the "optimal execution time of H"
    (the realized span [S] of Definition 4) when enough processors are
    available, and serves as the optimal baseline of the Theorem 9 tight
    example and the lower-bound reference in the benches.

    Not registered in {!Registry}: it is not implementable online. *)

val make :
  ?ops:Intf.ops ->
  initial:int array ->
  edge_changed:(int -> bool) ->
  work:float array ->
  Dag.Graph.t ->
  Intf.instance
(** [initial] are the initially-dirtied nodes; [edge_changed eid] is the
    change oracle for edge [eid]; [work] drives the critical-path
    priority (use an all-ones array for unit tasks). *)
