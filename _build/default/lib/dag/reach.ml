let bfs_from graph seeds ~expand =
  let n = Graph.node_count graph in
  let seen = Prelude.Bitset.create n in
  let queue = Queue.create () in
  Array.iter (fun s -> Queue.add s queue) seeds;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    expand u (fun v ->
        if not (Prelude.Bitset.mem seen v) then begin
          Prelude.Bitset.add seen v;
          Queue.add v queue
        end)
  done;
  seen

let descendants g u =
  bfs_from g [| u |] ~expand:(fun x push ->
      Graph.iter_succ g x (fun ~dst ~eid:_ -> push dst))

let ancestors g u =
  bfs_from g [| u |] ~expand:(fun x push ->
      Graph.iter_pred g x (fun ~src ~eid:_ -> push src))

let descendants_of_set g seeds =
  bfs_from g seeds ~expand:(fun x push ->
      Graph.iter_succ g x (fun ~dst ~eid:_ -> push dst))

let is_ancestor g ~anc ~desc =
  anc <> desc && Prelude.Bitset.mem (descendants g anc) desc

let count_descendants g u = Prelude.Bitset.cardinal (descendants g u)

let reachable_within g ~seeds ~max_level ~levels =
  bfs_from g seeds ~expand:(fun x push ->
      if levels.(x) < max_level then
        Graph.iter_succ g x (fun ~dst ~eid:_ ->
            if levels.(dst) <= max_level then push dst))
