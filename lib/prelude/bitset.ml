let bits = Sys.int_size

type t = { words : int array; n : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + bits - 1) / bits + 1) 0; n; card = 0 }

let capacity t = t.n

let storage_words t = Array.length t.words

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: %d out of bounds [0,%d)" i t.n)

let mem t i =
  check t i;
  t.words.(i / bits) land (1 lsl (i mod bits)) <> 0

let add t i =
  check t i;
  let w = i / bits and b = 1 lsl (i mod bits) in
  if t.words.(w) land b = 0 then begin
    t.words.(w) <- t.words.(w) lor b;
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let w = i / bits and b = 1 lsl (i mod bits) in
  if t.words.(w) land b <> 0 then begin
    t.words.(w) <- t.words.(w) land lnot b;
    t.card <- t.card - 1
  end

let cardinal t = t.card

let is_empty t = t.card = 0

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

(* Mask with ones at bit positions [a..b] within a word, 0 <= a <= b < bits. *)
let range_mask a b =
  let hi = if b = bits - 1 then -1 else (1 lsl (b + 1)) - 1 in
  let lo = (1 lsl a) - 1 in
  hi land lnot lo

let exists_in_range t ~lo ~hi =
  if lo > hi || t.card = 0 then false
  else begin
    let lo = max lo 0 and hi = min hi (t.n - 1) in
    if lo > hi then false
    else begin
      let wlo = lo / bits and whi = hi / bits in
      if wlo = whi then t.words.(wlo) land range_mask (lo mod bits) (hi mod bits) <> 0
      else begin
        let found = ref (t.words.(wlo) land range_mask (lo mod bits) (bits - 1) <> 0) in
        let w = ref (wlo + 1) in
        while (not !found) && !w < whi do
          if t.words.(!w) <> 0 then found := true;
          incr w
        done;
        !found || t.words.(whi) land range_mask 0 (hi mod bits) <> 0
      end
    end
  end

let first_set_bit w = if w = 0 then None else Some (
  (* count trailing zeros via de-looping; ints are small enough to loop bits *)
  let rec go i = if w land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0)

let first_in_range t ~lo ~hi =
  if lo > hi || t.card = 0 then None
  else begin
    let lo = max lo 0 and hi = min hi (t.n - 1) in
    let rec scan w =
      if w > hi / bits then None
      else begin
        let word = t.words.(w) in
        let word =
          if w = lo / bits then word land lnot ((1 lsl (lo mod bits)) - 1) else word
        in
        let word =
          if w = hi / bits then word land range_mask 0 (hi mod bits) else word
        in
        match first_set_bit word with
        | Some b -> Some ((w * bits) + b)
        | None -> scan (w + 1)
      end
    in
    if lo > hi then None else scan (lo / bits)
  end

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits) + b)
      done
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let copy t = { words = Array.copy t.words; n = t.n; card = t.card }
