examples/datalog_incremental.ml: Array Buffer Datalog Format Incr_sched List Printf Workload
