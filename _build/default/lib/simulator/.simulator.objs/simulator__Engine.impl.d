lib/simulator/engine.ml: Array Dag List Metrics Prelude Queue Sched Unix Workload
