(** Incremental maintenance of a materialized database under base-fact
    updates — the delete-rederive (DRed) algorithm with stratified
    negation, processed stratum by stratum:

    + {e overdelete}: semi-naively propagate deletions (and additions
      under negated literals), matching the remaining body against the
      pre-update snapshot; remove everything possibly affected;
    + {e rederive}: re-add overdeleted tuples with surviving alternative
      derivations, to fixpoint;
    + {e insert}: semi-naively propagate additions (and deletions under
      negated literals) against the post-update state.

    This is the computation whose task DAG the paper's schedulers order:
    each dependency-graph component is one task, activated exactly when
    the update actually changes one of its inputs. {!apply} records per-
    component activity so {!To_trace} can build that DAG. *)

type pred_change = {
  pred : string;
  added : int;  (** net tuples gained vs. the pre-update state *)
  removed : int;  (** net tuples lost *)
}

type comp_activity = {
  comp : int;  (** component id in the {!Stratify.t} condensation *)
  work : int;  (** tuples examined while maintaining this component *)
  output_changed : bool;  (** did any predicate of the component change *)
  input_changed : bool;
      (** did any predicate feeding this component change (i.e. would
          the paper's runtime have activated this task) *)
}

type report = {
  changes : pred_change list;  (** predicates with a net change, sorted *)
  activity : comp_activity list;  (** every component, evaluation order *)
  analysis : Stratify.t;
}

val apply :
  ?engine:Plan.engine ->
  ?obs:Obs.Trace.t ->
  Database.t ->
  Ast.program ->
  additions:Ast.atom list ->
  deletions:Ast.atom list ->
  report
(** Update base facts and restore the materialization. [db] must hold a
    completed materialization of [program] (via {!Eval.run}). Atoms must
    be ground and extensional. [engine] (default {!Plan.Compiled})
    selects compiled plans or the interpretive oracle; both restore the
    same database. [obs] (default disabled) records a DRed phase span
    (delete / rederive / insert, tagged with the component id) per
    maintained component on the trace's ring 0.
    @raise Invalid_argument on a non-ground or intensional atom. *)

val apply_parallel :
  ?engine:Plan.engine ->
  ?domains:int ->
  ?sched:Sched.Intf.factory ->
  ?obs:Obs.Trace.t ->
  Database.t ->
  Ast.program ->
  additions:Ast.atom list ->
  deletions:Ast.atom list ->
  report
(** {!apply}, with the components maintained as real tasks on the
    multicore executor ({!Parallel.Executor}) under [sched] (default
    the paper's LevelBased scheduler), [domains] worker domains
    (default 4; [domains <= 1] falls back to the serial walk). The
    task DAG is the condensation of the predicate dependency graph
    with every edge marked changed — which inputs actually changed is
    only discovered as tasks run — and the changed extensional
    components as initial tasks. Each task writes only its own
    component's relations and deltas and reads upstream state that the
    scheduler's precedence guarantees is quiescent, so the final
    database and report are the serial ones (up to interning order of
    aggregate-minted constants, and [work] counts, whose phase-B round
    structure may differ with hashing order). All plans are compiled
    and delta tables created serially before the first task runs.
    [obs] (default disabled) threads the executor's per-worker tracing
    (task / steal / park / scheduler-lock events) through the run and
    adds DRed phase spans on the executing worker's ring; recording
    never changes maintenance results.
    @raise Invalid_argument on a non-ground or intensional atom, or if
    [engine] is {!Plan.Interpreted} with [domains > 1]
    @raise Failure if a maintenance task raises. *)
