lib/simulator/meta.mli: Engine Format Metrics Sched Workload
