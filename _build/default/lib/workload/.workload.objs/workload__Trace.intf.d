lib/workload/trace.mli: Dag Format Prelude
