lib/dag/scc.ml: Array Graph Hashtbl Prelude Queue
