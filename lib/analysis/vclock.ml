(* Fixed-width vector clocks over process ids [0, n). The model
   checker allocates a handful per run (one per process plus one per
   shared location), so a plain int array is plenty; operations are
   O(n) with n <= 8. *)

type t = int array

let make n = Array.make n 0

let size = Array.length

let get (t : t) i = t.(i)

let set (t : t) i v = t.(i) <- v

let tick (t : t) i = t.(i) <- t.(i) + 1

let copy = Array.copy

let join ~into src =
  for i = 0 to Array.length into - 1 do
    if src.(i) > into.(i) then into.(i) <- src.(i)
  done

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

type cmp = Equal | Before | After | Concurrent

let compare a b =
  let le = leq a b and ge = leq b a in
  if le && ge then Equal
  else if le then Before
  else if ge then After
  else Concurrent

let pp ppf (t : t) =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t)))
