lib/parallel/executor.ml: Array Condition Dag Domain Float List Mutex Prelude Printf Sched Simulator Sys Unix Workload
