type t = {
  scheduler : string;
  makespan : float;
  sched_overhead : float;
  exec_time : float;
  total_work : float;
  tasks_executed : int;
  tasks_activated : int;
  ops : Sched.Intf.ops;
  precompute_wallclock : float;
  sched_wallclock : float;
  memory_words : int;
  utilization : float;
  procs : int;
}

let pp ppf m =
  Format.fprintf ppf
    "@[<v>scheduler      %s@,\
     makespan       %.6f s@,\
     overhead       %.6f s@,\
     exec time      %.6f s@,\
     total work     %.6f s@,\
     executed       %d tasks (activated %d)@,\
     ops            %a@,\
     precompute     %.4f s (wallclock)@,\
     sched wall     %.4f s@,\
     memory         %d words@,\
     utilization    %.1f%% on %d procs@]"
    m.scheduler m.makespan m.sched_overhead m.exec_time m.total_work
    m.tasks_executed m.tasks_activated Sched.Intf.pp_ops m.ops
    m.precompute_wallclock m.sched_wallclock m.memory_words
    (100.0 *. m.utilization) m.procs

let pp_row ppf m =
  Format.fprintf ppf "%-20s makespan=%12.4f overhead=%12.6f ops=%10d mem=%10d"
    m.scheduler m.makespan m.sched_overhead (Sched.Intf.total_ops m.ops)
    m.memory_words
