/* Atomic operations on the fields of a plain OCaml int array:
   acquire loads, release stores, sequentially consistent
   compare-and-swap — the orderings a status state machine needs
   (every transition that must be globally ordered goes through the
   CAS; the plain store is only ever a final-state publication whose
   visibility is additionally guaranteed by a later lock release).

   OCaml 5.1 has no atomic arrays: an [int Atomic.t array] costs one
   heap block and one dependent pointer load per element, which on a
   multi-hundred-thousand-task status array means an extra cache miss
   on every state transition. Int array fields are immediates (tagged
   ints), so no write barrier is needed and a C11 atomic on the field
   itself is sound. The operations run with the domain lock held (no
   blocking-section release), so a moving minor collection cannot run
   concurrently with an in-flight access; the array pointer is
   re-derived from the value argument on every call. */

#include <caml/mlvalues.h>

CAMLprim value prelude_aia_get(value arr, value idx)
{
  return (value)__atomic_load_n(&Field(arr, Long_val(idx)), __ATOMIC_ACQUIRE);
}

CAMLprim value prelude_aia_set(value arr, value idx, value v)
{
  __atomic_store_n(&Field(arr, Long_val(idx)), v, __ATOMIC_RELEASE);
  return Val_unit;
}

CAMLprim value prelude_aia_cas(value arr, value idx, value expected, value desired)
{
  value e = expected;
  return Val_bool(__atomic_compare_exchange_n(&Field(arr, Long_val(idx)), &e,
                                              desired, 0, __ATOMIC_SEQ_CST,
                                              __ATOMIC_SEQ_CST));
}
